file(REMOVE_RECURSE
  "librt_lcm.a"
)
