file(REMOVE_RECURSE
  "CMakeFiles/rt_lcm.dir/lc_cell.cpp.o"
  "CMakeFiles/rt_lcm.dir/lc_cell.cpp.o.d"
  "CMakeFiles/rt_lcm.dir/tag_array.cpp.o"
  "CMakeFiles/rt_lcm.dir/tag_array.cpp.o.d"
  "librt_lcm.a"
  "librt_lcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_lcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
