
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lcm/lc_cell.cpp" "src/lcm/CMakeFiles/rt_lcm.dir/lc_cell.cpp.o" "gcc" "src/lcm/CMakeFiles/rt_lcm.dir/lc_cell.cpp.o.d"
  "/root/repo/src/lcm/tag_array.cpp" "src/lcm/CMakeFiles/rt_lcm.dir/tag_array.cpp.o" "gcc" "src/lcm/CMakeFiles/rt_lcm.dir/tag_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/rt_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
