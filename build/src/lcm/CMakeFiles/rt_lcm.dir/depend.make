# Empty dependencies file for rt_lcm.
# This may be replaced when dependencies are built.
