# Empty dependencies file for rt_analysis.
# This may be replaced when dependencies are built.
