file(REMOVE_RECURSE
  "librt_analysis.a"
)
