file(REMOVE_RECURSE
  "CMakeFiles/rt_analysis.dir/emulation_error.cpp.o"
  "CMakeFiles/rt_analysis.dir/emulation_error.cpp.o.d"
  "CMakeFiles/rt_analysis.dir/emulator.cpp.o"
  "CMakeFiles/rt_analysis.dir/emulator.cpp.o.d"
  "CMakeFiles/rt_analysis.dir/min_distance.cpp.o"
  "CMakeFiles/rt_analysis.dir/min_distance.cpp.o.d"
  "CMakeFiles/rt_analysis.dir/optimizer.cpp.o"
  "CMakeFiles/rt_analysis.dir/optimizer.cpp.o.d"
  "librt_analysis.a"
  "librt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
