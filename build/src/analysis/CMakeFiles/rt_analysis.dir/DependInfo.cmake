
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/emulation_error.cpp" "src/analysis/CMakeFiles/rt_analysis.dir/emulation_error.cpp.o" "gcc" "src/analysis/CMakeFiles/rt_analysis.dir/emulation_error.cpp.o.d"
  "/root/repo/src/analysis/emulator.cpp" "src/analysis/CMakeFiles/rt_analysis.dir/emulator.cpp.o" "gcc" "src/analysis/CMakeFiles/rt_analysis.dir/emulator.cpp.o.d"
  "/root/repo/src/analysis/min_distance.cpp" "src/analysis/CMakeFiles/rt_analysis.dir/min_distance.cpp.o" "gcc" "src/analysis/CMakeFiles/rt_analysis.dir/min_distance.cpp.o.d"
  "/root/repo/src/analysis/optimizer.cpp" "src/analysis/CMakeFiles/rt_analysis.dir/optimizer.cpp.o" "gcc" "src/analysis/CMakeFiles/rt_analysis.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/rt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/lcm/CMakeFiles/rt_lcm.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/rt_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
