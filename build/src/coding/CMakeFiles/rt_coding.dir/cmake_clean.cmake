file(REMOVE_RECURSE
  "CMakeFiles/rt_coding.dir/crc.cpp.o"
  "CMakeFiles/rt_coding.dir/crc.cpp.o.d"
  "CMakeFiles/rt_coding.dir/reed_solomon.cpp.o"
  "CMakeFiles/rt_coding.dir/reed_solomon.cpp.o.d"
  "librt_coding.a"
  "librt_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
