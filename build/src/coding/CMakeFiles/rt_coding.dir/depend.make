# Empty dependencies file for rt_coding.
# This may be replaced when dependencies are built.
