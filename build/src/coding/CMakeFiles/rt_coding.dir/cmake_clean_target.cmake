file(REMOVE_RECURSE
  "librt_coding.a"
)
