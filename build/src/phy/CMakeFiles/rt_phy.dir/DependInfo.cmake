
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/demodulator.cpp" "src/phy/CMakeFiles/rt_phy.dir/demodulator.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/demodulator.cpp.o.d"
  "/root/repo/src/phy/equalizer.cpp" "src/phy/CMakeFiles/rt_phy.dir/equalizer.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/equalizer.cpp.o.d"
  "/root/repo/src/phy/mobile.cpp" "src/phy/CMakeFiles/rt_phy.dir/mobile.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/mobile.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/rt_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/pulse_model.cpp" "src/phy/CMakeFiles/rt_phy.dir/pulse_model.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/pulse_model.cpp.o.d"
  "/root/repo/src/phy/training.cpp" "src/phy/CMakeFiles/rt_phy.dir/training.cpp.o" "gcc" "src/phy/CMakeFiles/rt_phy.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/rt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/lcm/CMakeFiles/rt_lcm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
