# Empty dependencies file for rt_phy.
# This may be replaced when dependencies are built.
