file(REMOVE_RECURSE
  "CMakeFiles/rt_phy.dir/demodulator.cpp.o"
  "CMakeFiles/rt_phy.dir/demodulator.cpp.o.d"
  "CMakeFiles/rt_phy.dir/equalizer.cpp.o"
  "CMakeFiles/rt_phy.dir/equalizer.cpp.o.d"
  "CMakeFiles/rt_phy.dir/mobile.cpp.o"
  "CMakeFiles/rt_phy.dir/mobile.cpp.o.d"
  "CMakeFiles/rt_phy.dir/preamble.cpp.o"
  "CMakeFiles/rt_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/rt_phy.dir/pulse_model.cpp.o"
  "CMakeFiles/rt_phy.dir/pulse_model.cpp.o.d"
  "CMakeFiles/rt_phy.dir/training.cpp.o"
  "CMakeFiles/rt_phy.dir/training.cpp.o.d"
  "librt_phy.a"
  "librt_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
