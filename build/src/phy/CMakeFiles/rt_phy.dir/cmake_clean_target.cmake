file(REMOVE_RECURSE
  "librt_phy.a"
)
