# Empty compiler generated dependencies file for rt_signal.
# This may be replaced when dependencies are built.
