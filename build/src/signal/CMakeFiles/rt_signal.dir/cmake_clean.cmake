file(REMOVE_RECURSE
  "CMakeFiles/rt_signal.dir/fir.cpp.o"
  "CMakeFiles/rt_signal.dir/fir.cpp.o.d"
  "CMakeFiles/rt_signal.dir/mls.cpp.o"
  "CMakeFiles/rt_signal.dir/mls.cpp.o.d"
  "librt_signal.a"
  "librt_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
