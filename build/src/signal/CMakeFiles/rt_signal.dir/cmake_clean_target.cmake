file(REMOVE_RECURSE
  "librt_signal.a"
)
