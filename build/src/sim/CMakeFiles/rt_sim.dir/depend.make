# Empty dependencies file for rt_sim.
# This may be replaced when dependencies are built.
