file(REMOVE_RECURSE
  "CMakeFiles/rt_sim.dir/channel.cpp.o"
  "CMakeFiles/rt_sim.dir/channel.cpp.o.d"
  "CMakeFiles/rt_sim.dir/link_sim.cpp.o"
  "CMakeFiles/rt_sim.dir/link_sim.cpp.o.d"
  "CMakeFiles/rt_sim.dir/trace.cpp.o"
  "CMakeFiles/rt_sim.dir/trace.cpp.o.d"
  "librt_sim.a"
  "librt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
