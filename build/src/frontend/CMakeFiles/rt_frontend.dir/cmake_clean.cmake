file(REMOVE_RECURSE
  "CMakeFiles/rt_frontend.dir/receiver_chain.cpp.o"
  "CMakeFiles/rt_frontend.dir/receiver_chain.cpp.o.d"
  "librt_frontend.a"
  "librt_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
