file(REMOVE_RECURSE
  "librt_frontend.a"
)
