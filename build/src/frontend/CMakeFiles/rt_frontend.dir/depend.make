# Empty dependencies file for rt_frontend.
# This may be replaced when dependencies are built.
