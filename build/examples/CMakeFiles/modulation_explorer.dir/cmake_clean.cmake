file(REMOVE_RECURSE
  "CMakeFiles/modulation_explorer.dir/modulation_explorer.cpp.o"
  "CMakeFiles/modulation_explorer.dir/modulation_explorer.cpp.o.d"
  "modulation_explorer"
  "modulation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modulation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
