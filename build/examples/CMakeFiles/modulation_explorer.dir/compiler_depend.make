# Empty compiler generated dependencies file for modulation_explorer.
# This may be replaced when dependencies are built.
