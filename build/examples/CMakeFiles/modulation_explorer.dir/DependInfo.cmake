
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/modulation_explorer.cpp" "examples/CMakeFiles/modulation_explorer.dir/modulation_explorer.cpp.o" "gcc" "examples/CMakeFiles/modulation_explorer.dir/modulation_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coding/CMakeFiles/rt_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/rt_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/lcm/CMakeFiles/rt_lcm.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rt_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/rt_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
