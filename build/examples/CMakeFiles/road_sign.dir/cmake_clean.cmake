file(REMOVE_RECURSE
  "CMakeFiles/road_sign.dir/road_sign.cpp.o"
  "CMakeFiles/road_sign.dir/road_sign.cpp.o.d"
  "road_sign"
  "road_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
