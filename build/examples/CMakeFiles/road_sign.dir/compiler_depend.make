# Empty compiler generated dependencies file for road_sign.
# This may be replaced when dependencies are built.
