file(REMOVE_RECURSE
  "CMakeFiles/warehouse_sensors.dir/warehouse_sensors.cpp.o"
  "CMakeFiles/warehouse_sensors.dir/warehouse_sensors.cpp.o.d"
  "warehouse_sensors"
  "warehouse_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
