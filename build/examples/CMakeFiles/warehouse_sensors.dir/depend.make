# Empty dependencies file for warehouse_sensors.
# This may be replaced when dependencies are built.
