# Empty dependencies file for bench_fig18c_rate_adaptation.
# This may be replaced when dependencies are built.
