file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dsm.dir/bench_ablation_dsm.cpp.o"
  "CMakeFiles/bench_ablation_dsm.dir/bench_ablation_dsm.cpp.o.d"
  "bench_ablation_dsm"
  "bench_ablation_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
