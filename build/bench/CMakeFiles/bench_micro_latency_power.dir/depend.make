# Empty dependencies file for bench_micro_latency_power.
# This may be replaced when dependencies are built.
