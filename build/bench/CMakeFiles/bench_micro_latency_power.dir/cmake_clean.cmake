file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_latency_power.dir/bench_micro_latency_power.cpp.o"
  "CMakeFiles/bench_micro_latency_power.dir/bench_micro_latency_power.cpp.o.d"
  "bench_micro_latency_power"
  "bench_micro_latency_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_latency_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
