file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18b_coding_gain.dir/bench_fig18b_coding_gain.cpp.o"
  "CMakeFiles/bench_fig18b_coding_gain.dir/bench_fig18b_coding_gain.cpp.o.d"
  "bench_fig18b_coding_gain"
  "bench_fig18b_coding_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18b_coding_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
