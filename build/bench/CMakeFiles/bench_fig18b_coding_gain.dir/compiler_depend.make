# Empty compiler generated dependencies file for bench_fig18b_coding_gain.
# This may be replaced when dependencies are built.
