file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17a_dfe_branches.dir/bench_fig17a_dfe_branches.cpp.o"
  "CMakeFiles/bench_fig17a_dfe_branches.dir/bench_fig17a_dfe_branches.cpp.o.d"
  "bench_fig17a_dfe_branches"
  "bench_fig17a_dfe_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17a_dfe_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
