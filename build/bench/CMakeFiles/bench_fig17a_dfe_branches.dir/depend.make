# Empty dependencies file for bench_fig17a_dfe_branches.
# This may be replaced when dependencies are built.
