# Empty dependencies file for bench_fig16d_ambient.
# This may be replaced when dependencies are built.
