file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16d_ambient.dir/bench_fig16d_ambient.cpp.o"
  "CMakeFiles/bench_fig16d_ambient.dir/bench_fig16d_ambient.cpp.o.d"
  "bench_fig16d_ambient"
  "bench_fig16d_ambient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16d_ambient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
