file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_mobility.dir/bench_tab4_mobility.cpp.o"
  "CMakeFiles/bench_tab4_mobility.dir/bench_tab4_mobility.cpp.o.d"
  "bench_tab4_mobility"
  "bench_tab4_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
