# Empty dependencies file for bench_ext_pixel_calibration.
# This may be replaced when dependencies are built.
