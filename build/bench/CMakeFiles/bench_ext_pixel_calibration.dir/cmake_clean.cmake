file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pixel_calibration.dir/bench_ext_pixel_calibration.cpp.o"
  "CMakeFiles/bench_ext_pixel_calibration.dir/bench_ext_pixel_calibration.cpp.o.d"
  "bench_ext_pixel_calibration"
  "bench_ext_pixel_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pixel_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
