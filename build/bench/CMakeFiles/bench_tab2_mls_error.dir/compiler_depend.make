# Empty compiler generated dependencies file for bench_tab2_mls_error.
# This may be replaced when dependencies are built.
