# Empty dependencies file for bench_fig16a_rate_distance.
# This may be replaced when dependencies are built.
