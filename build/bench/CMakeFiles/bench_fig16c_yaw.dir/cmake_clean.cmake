file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16c_yaw.dir/bench_fig16c_yaw.cpp.o"
  "CMakeFiles/bench_fig16c_yaw.dir/bench_fig16c_yaw.cpp.o.d"
  "bench_fig16c_yaw"
  "bench_fig16c_yaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16c_yaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
