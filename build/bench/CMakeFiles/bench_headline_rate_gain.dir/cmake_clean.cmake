file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_rate_gain.dir/bench_headline_rate_gain.cpp.o"
  "CMakeFiles/bench_headline_rate_gain.dir/bench_headline_rate_gain.cpp.o.d"
  "bench_headline_rate_gain"
  "bench_headline_rate_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_rate_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
