# Empty dependencies file for bench_headline_rate_gain.
# This may be replaced when dependencies are built.
