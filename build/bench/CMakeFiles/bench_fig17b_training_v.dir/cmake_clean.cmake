file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17b_training_v.dir/bench_fig17b_training_v.cpp.o"
  "CMakeFiles/bench_fig17b_training_v.dir/bench_fig17b_training_v.cpp.o.d"
  "bench_fig17b_training_v"
  "bench_fig17b_training_v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17b_training_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
