# Empty compiler generated dependencies file for bench_fig17b_training_v.
# This may be replaced when dependencies are built.
