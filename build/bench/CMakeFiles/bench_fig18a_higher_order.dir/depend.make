# Empty dependencies file for bench_fig18a_higher_order.
# This may be replaced when dependencies are built.
