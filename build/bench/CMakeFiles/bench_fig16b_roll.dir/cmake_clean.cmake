file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16b_roll.dir/bench_fig16b_roll.cpp.o"
  "CMakeFiles/bench_fig16b_roll.dir/bench_fig16b_roll.cpp.o.d"
  "bench_fig16b_roll"
  "bench_fig16b_roll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16b_roll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
