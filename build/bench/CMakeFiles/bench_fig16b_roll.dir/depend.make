# Empty dependencies file for bench_fig16b_roll.
# This may be replaced when dependencies are built.
