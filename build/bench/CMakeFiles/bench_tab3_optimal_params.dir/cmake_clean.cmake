file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_optimal_params.dir/bench_tab3_optimal_params.cpp.o"
  "CMakeFiles/bench_tab3_optimal_params.dir/bench_tab3_optimal_params.cpp.o.d"
  "bench_tab3_optimal_params"
  "bench_tab3_optimal_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_optimal_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
