# Empty compiler generated dependencies file for bench_tab3_optimal_params.
# This may be replaced when dependencies are built.
