file(REMOVE_RECURSE
  "CMakeFiles/test_mobile.dir/test_mobile.cpp.o"
  "CMakeFiles/test_mobile.dir/test_mobile.cpp.o.d"
  "test_mobile"
  "test_mobile.pdb"
  "test_mobile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
