# Empty compiler generated dependencies file for test_mobile.
# This may be replaced when dependencies are built.
