file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_ext.dir/test_analysis_ext.cpp.o"
  "CMakeFiles/test_analysis_ext.dir/test_analysis_ext.cpp.o.d"
  "test_analysis_ext"
  "test_analysis_ext.pdb"
  "test_analysis_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
