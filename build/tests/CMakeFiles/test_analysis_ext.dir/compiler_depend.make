# Empty compiler generated dependencies file for test_analysis_ext.
# This may be replaced when dependencies are built.
