# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_optics[1]_include.cmake")
include("/root/repo/build/tests/test_lcm[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_mobile[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_ext[1]_include.cmake")
