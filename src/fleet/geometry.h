// Deployment-scale geometry: readers, tag placement, shard assignment.
//
// A fleet deployment is a corridor of readers (light fixtures with a
// reader photodiode each) at a fixed pitch, with tags scattered around
// the reader line. Per-(tag, reader) SNR comes from the retroreflective
// link budget (optics::LinkBudget) applied to Euclidean distance; each
// tag homes to its argmax-SNR reader, which partitions the population
// into per-reader *shards* -- the unit of TDMA inventory in
// fleet/campaign.h. Readers whose coverage regions overlap (a tag of one
// is audible at the other above the hearing floor) are the inter-cell
// interference edges fleet/scheduler.h colors around.
//
// Placement is a pure function of (config, seed) via rt::split_seed, so
// a deployment can be rebuilt bit-identically inside any worker.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"
#include "optics/link_budget.h"

namespace rt::fleet {

struct DeploymentConfig {
  int readers = 4;
  int tags = 1000;
  double reader_spacing_m = 6.0;  ///< reader pitch along the corridor line
  double min_range_m = 0.8;       ///< closest tag-to-corridor placement radius
  double max_range_m = 3.5;       ///< farthest tag-to-corridor placement radius
  optics::LinkBudget budget = optics::LinkBudget::wide_beam();
  /// A reader hears a tag at or above this SNR (wide-beam 14 dB ~= the
  /// 4.3 m edge of the Fig. 18c study); below it the tag is invisible to
  /// that reader, above it the tag both registers and interferes.
  double hearing_floor_db = 14.0;

  friend bool operator==(const DeploymentConfig&, const DeploymentConfig&) = default;
};

/// One tag's placement and shard assignment. Data-derived only, so two
/// deployments built from the same (config, seed) compare bit-identical.
struct TagSite {
  double x_m = 0.0;
  double y_m = 0.0;
  std::uint32_t home_reader = 0;  ///< argmax-SNR reader (ties -> lower index)
  double home_snr_db = 0.0;       ///< uplink SNR at the home reader
  std::uint32_t heard_by = 0;     ///< readers whose SNR clears the hearing floor

  friend bool operator==(const TagSite&, const TagSite&) = default;
};

struct Deployment {
  DeploymentConfig cfg;
  std::vector<double> reader_x_m;                   ///< reader positions on y = 0
  std::vector<TagSite> tags;                        ///< indexed by tag id
  std::vector<std::vector<std::uint32_t>> shards;   ///< tag ids per home reader
  /// audible[r][q]: tags homed at reader q that reader r can hear. The
  /// diagonal is the shard size; off-diagonal entries are the inter-cell
  /// interference loads the scheduler and the uncoordinated collision
  /// model consume.
  std::vector<std::vector<std::uint32_t>> audible;

  [[nodiscard]] double snr_db_at(const TagSite& t, std::size_t reader) const {
    const double dx = t.x_m - reader_x_m[reader];
    const double d = std::sqrt(dx * dx + t.y_m * t.y_m);
    // Floor the range at 10 cm: a tag cannot occupy the fixture itself.
    return cfg.budget.snr_db_at(d < 0.1 ? 0.1 : d);
  }

  /// True when readers r and q mutually interfere: either can hear a tag
  /// homed at the other.
  [[nodiscard]] bool conflicts(std::size_t r, std::size_t q) const {
    return r != q && (audible[r][q] > 0 || audible[q][r] > 0);
  }

  friend bool operator==(const Deployment&, const Deployment&) = default;
};

namespace detail {

/// Fills shard/audibility tables from already-placed tag coordinates.
inline void assign_shards(Deployment& d) {
  const std::size_t readers = d.reader_x_m.size();
  d.shards.assign(readers, {});
  d.audible.assign(readers, std::vector<std::uint32_t>(readers, 0));
  for (std::size_t id = 0; id < d.tags.size(); ++id) {
    TagSite& t = d.tags[id];
    t.home_reader = 0;
    t.home_snr_db = d.snr_db_at(t, 0);
    t.heard_by = 0;
    for (std::size_t r = 1; r < readers; ++r) {
      const double snr = d.snr_db_at(t, r);
      if (snr > t.home_snr_db) {
        t.home_snr_db = snr;
        t.home_reader = narrow_cast<std::uint32_t>(r);
      }
    }
    d.shards[t.home_reader].push_back(narrow_cast<std::uint32_t>(id));
    for (std::size_t r = 0; r < readers; ++r) {
      if (d.snr_db_at(t, r) >= d.cfg.hearing_floor_db) {
        ++t.heard_by;
        ++d.audible[r][t.home_reader];
      }
    }
  }
}

}  // namespace detail

/// Builds a deployment from explicit tag coordinates (tests use this to
/// pin geometry exactly; the campaign only reads sites through the
/// deployment, so explicit and random placements behave identically).
[[nodiscard]] inline Deployment place_fleet(const DeploymentConfig& cfg,
                                            const std::vector<std::pair<double, double>>& sites) {
  RT_ENSURE(cfg.readers >= 1, "fleet needs at least one reader");
  RT_ENSURE(!sites.empty(), "fleet needs at least one tag");
  Deployment d;
  d.cfg = cfg;
  d.cfg.tags = narrow_cast<int>(sites.size());
  d.reader_x_m.resize(static_cast<std::size_t>(cfg.readers));
  for (std::size_t r = 0; r < d.reader_x_m.size(); ++r)
    d.reader_x_m[r] = static_cast<double>(r) * cfg.reader_spacing_m;
  d.tags.resize(sites.size());
  for (std::size_t id = 0; id < sites.size(); ++id) {
    d.tags[id].x_m = sites[id].first;
    d.tags[id].y_m = sites[id].second;
  }
  detail::assign_shards(d);
  return d;
}

/// Builds a deployment with randomized tag placement: tag `id` draws its
/// site from the disjoint stream rt::split_seed(seed, id), making the
/// whole deployment a pure function of (cfg, seed). Tags land uniformly
/// along the corridor span with a uniform lateral offset in
/// [min_range_m, max_range_m] on either side.
[[nodiscard]] inline Deployment place_fleet(const DeploymentConfig& cfg, std::uint64_t seed) {
  RT_ENSURE(cfg.readers >= 1, "fleet needs at least one reader");
  RT_ENSURE(cfg.tags >= 1, "fleet needs at least one tag");
  RT_ENSURE(cfg.min_range_m > 0.0 && cfg.max_range_m >= cfg.min_range_m,
            "tag placement range must be positive and ordered");
  std::vector<std::pair<double, double>> sites(static_cast<std::size_t>(cfg.tags));
  const double span = static_cast<double>(cfg.readers - 1) * cfg.reader_spacing_m;
  for (std::size_t id = 0; id < sites.size(); ++id) {
    Rng rng(split_seed(seed, static_cast<std::uint64_t>(id)));
    const double x = rng.uniform(-cfg.reader_spacing_m / 2.0, span + cfg.reader_spacing_m / 2.0);
    const double y = rng.uniform(cfg.min_range_m, cfg.max_range_m);
    sites[id] = {x, rng.bernoulli() ? y : -y};
  }
  return place_fleet(cfg, sites);
}

}  // namespace rt::fleet
