// Fleet inventory campaign: sharded TDMA across readers, in parallel.
//
// The paper's network study (section 7.3) stops at n ~ 8 tags on one
// reader; this module scales the same MAC machinery to deployment size:
// thousands of tags partitioned into per-reader shards
// (fleet/geometry.h), a cross-reader slot schedule (fleet/scheduler.h),
// and one mac::RateController per reader adapting its cell's rate to the
// shard's worst uplink SNR.
//
// Execution follows the codebase's deterministic batch discipline
// (runtime/batch.h, the parallel_sweep pattern):
//
//   Phase D  (parallel over readers)  -- shard discovery. Each reader
//     runs slotted-ALOHA rounds over its own shard; round k of reader r
//     draws from the disjoint stream split_seed(seed, r, D + k).
//   Phase E  (repeated per epoch):
//     E.1 (parallel over reader x round-batch) -- inventory rounds. Rate
//       assignments are frozen for the epoch, so every round is a pure
//       function of (seed, reader, global round) and lands in its own
//       pre-sized slot; batches carry sweep_batch spans.
//     E.2 (serial merge, fleet_merge span) -- each reader's controller
//       consumes its epoch of SNR estimates in round order and re-freezes
//       the next epoch's assignment. Controller state is sequential by
//       nature, exactly like run_closed_loop_study's phase 2.
//
// Every result field is data-derived, so serial and N-thread runs
// compare bit-identical at any thread count (tests/test_fleet.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"
#include "fleet/geometry.h"
#include "fleet/scheduler.h"
#include "mac/goodput.h"
#include "mac/rate_controller.h"
#include "mac/rate_table.h"
#include "obs/trace.h"
#include "runtime/batch.h"

namespace rt::fleet {

namespace detail {
/// Seed-stream bases: tag placement uses stream b = 0 (geometry.h),
/// discovery round k of reader r uses b = kDiscoveryStreamBase + k, and
/// data round g uses b = kDataStreamBase + g -- disjoint by construction.
inline constexpr std::uint64_t kDiscoveryStreamBase = std::uint64_t{1} << 20;
inline constexpr std::uint64_t kDataStreamBase = std::uint64_t{1} << 21;
}  // namespace detail

struct FleetConfig {
  DeploymentConfig deployment{};
  /// true: colored schedule, zero cross-cell collisions, 1/num_colors
  /// airtime. false: every reader polls the whole frame and pays the
  /// cross-cell corruption probability instead.
  bool coordinate_readers = true;
  int epochs = 4;                 ///< controller merge points
  int rounds_per_epoch = 25;      ///< inventory rounds between merges
  int batch_rounds = 8;           ///< rounds per pool task
  int discovery_frame_slots = 0;  ///< 0 = adaptive: max(remaining, 2)
  int discovery_max_rounds = 4096;
  std::size_t payload_bytes = 16;  ///< uplink payload per inventory slot
  double estimate_noise_db = 0.8;  ///< reader-side SNR-estimate jitter (PR 5)
  mac::RateControllerConfig controller{};
  unsigned threads = 1;  ///< batch-phase workers (1 = serial reference)
  std::uint64_t seed = 2026;
};

/// Per-reader campaign outcome. Data-derived only.
struct ReaderOutcome {
  std::uint32_t reader = 0;
  std::uint32_t color = 0;        ///< slot-schedule color class
  std::uint64_t shard_tags = 0;
  int discovery_rounds = 0;
  std::uint64_t discovery_collision_slots = 0;
  std::uint64_t slots = 0;        ///< uplink slots granted (attempted packets)
  std::uint64_t delivered = 0;
  std::uint64_t cross_collisions = 0;
  std::uint64_t rate_switches = 0;
  std::size_t assigned_index = 0;  ///< final rate-table assignment
  double worst_snr_db = 0.0;       ///< shard-limiting SNR the cell adapts to
  double goodput_bps = 0.0;        ///< cell goodput at the final assignment

  friend bool operator==(const ReaderOutcome&, const ReaderOutcome&) = default;
};

struct FleetResult {
  std::vector<ReaderOutcome> readers;
  std::vector<std::uint32_t> discovery_round;  ///< per tag, 1-based
  std::uint32_t num_colors = 1;
  std::uint64_t slots = 0;
  std::uint64_t delivered = 0;
  std::uint64_t cross_collisions = 0;
  double fleet_goodput_bps = 0.0;
  double delivery_rate = 0.0;
  double collision_rate = 0.0;        ///< cross-cell corrupted / attempted
  double mean_discovery_rounds = 0.0; ///< mean over tags of discovery_round
  obs::MetricsRegistry metrics;       ///< empty unless RT_OBS=ON
  std::vector<obs::SpanRecord> trace; ///< empty unless RT_OBS=ON

  /// Bitwise equality of everything data-derived: the serial-vs-parallel
  /// acceptance gate of test_fleet and bench_fleet_inventory.
  [[nodiscard]] bool identical(const FleetResult& o) const {
    return readers == o.readers && discovery_round == o.discovery_round &&
           num_colors == o.num_colors && metrics == o.metrics;
  }
};

/// Runs the campaign on an explicit deployment (tests pin geometry this
/// way; the seed-built overload below is the normal entry point).
[[nodiscard]] inline FleetResult run_fleet_campaign(const mac::RateTable& table,
                                                    const mac::GoodputModel& model,
                                                    const FleetConfig& cfg,
                                                    const Deployment& dep) {
  RT_ENSURE(cfg.epochs >= 1, "fleet campaign needs at least one epoch");
  RT_ENSURE(cfg.rounds_per_epoch >= 1, "fleet campaign needs at least one round per epoch");
  RT_ENSURE(cfg.batch_rounds >= 1, "fleet batch_rounds must be positive");
  RT_ENSURE(cfg.payload_bytes >= 1, "fleet payload cannot be empty");
  RT_ENSURE(cfg.discovery_max_rounds >= 1 &&
                static_cast<std::uint64_t>(cfg.discovery_max_rounds) <
                    detail::kDataStreamBase - detail::kDiscoveryStreamBase,
            "discovery_max_rounds outside the discovery seed-stream window");
  RT_ENSURE(static_cast<std::uint64_t>(cfg.epochs) *
                    static_cast<std::uint64_t>(cfg.rounds_per_epoch) <
                detail::kDataStreamBase,
            "epoch plan outside the data seed-stream window");

  const std::size_t readers = dep.reader_x_m.size();
  const SlotSchedule sched = plan_slot_schedule(dep, cfg.coordinate_readers);
  const unsigned workers = cfg.threads == 0 ? 1 : cfg.threads;

  FleetResult out;
  out.readers.resize(readers);
  out.discovery_round.assign(dep.tags.size(), 0);
  out.num_colors = sched.num_colors;

  // Serial recorder: setup + merge-phase telemetry, merged into the
  // result once at the end (run_closed_loop_study's control_rec pattern).
  obs::Recorder serial_rec;
  {
    const obs::ScopedBind bind(serial_rec);
    for (std::size_t r = 0; r < readers; ++r)
      RT_OBS_OBSERVE(kFleetShardTags, static_cast<double>(dep.shards[r].size()));
  }

  // Uncoordinated cross-cell corruption probability at reader r: one
  // minus the chance that no conflicting neighbor's concurrent uplink is
  // audible at r. Coordinated schedules never poll conflicting readers
  // concurrently, so the probability is exactly zero there.
  std::vector<double> p_cross(readers, 0.0);
  if (!sched.coordinated) {
    for (std::size_t r = 0; r < readers; ++r) {
      double p_clear = 1.0;
      for (std::size_t q = 0; q < readers; ++q) {
        if (q == r || dep.shards[q].empty()) continue;
        p_clear *= 1.0 - static_cast<double>(dep.audible[r][q]) /
                             static_cast<double>(dep.shards[q].size());
      }
      p_cross[r] = 1.0 - p_clear;
    }
  }

  // --- Phase D: shard discovery, one task per reader. ---
  struct DiscoveryOut {
    int rounds = 0;
    std::uint64_t collision_slots = 0;
  };
  std::vector<DiscoveryOut> disc(readers);
  {
    std::vector<std::function<runtime::BatchObs()>> tasks;
    tasks.reserve(readers);
    for (std::size_t r = 0; r < readers; ++r) {
      tasks.push_back([&out, &disc, &dep, &cfg, r] {
        return runtime::record_batch([&] {
          RT_TRACE_SPAN("fleet_discovery");
          const auto& shard = dep.shards[r];
          std::vector<std::uint32_t> remaining(shard.begin(), shard.end());
          std::vector<std::uint32_t> next;
          std::vector<std::uint32_t> slot_of;
          std::vector<std::uint32_t> occupancy;
          int round = 0;
          while (!remaining.empty() && round < cfg.discovery_max_rounds) {
            ++round;
            RT_OBS_COUNT(kMacDiscoveryRounds, 1);
            Rng rng(split_seed(cfg.seed, static_cast<std::uint64_t>(r),
                               detail::kDiscoveryStreamBase +
                                   static_cast<std::uint64_t>(round)));
            const std::size_t frame =
                cfg.discovery_frame_slots > 0
                    ? static_cast<std::size_t>(cfg.discovery_frame_slots)
                    : std::max<std::size_t>(remaining.size(), 2);
            occupancy.assign(frame, 0);
            slot_of.resize(remaining.size());
            for (std::size_t i = 0; i < remaining.size(); ++i) {
              slot_of[i] = narrow_cast<std::uint32_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(frame) - 1));
              ++occupancy[slot_of[i]];
            }
            next.clear();
            for (std::size_t i = 0; i < remaining.size(); ++i) {
              if (occupancy[slot_of[i]] == 1) {
                // Shards partition the tag ids, so writes stay disjoint
                // across the per-reader tasks.
                out.discovery_round[remaining[i]] = narrow_cast<std::uint32_t>(round);
                RT_OBS_COUNT(kFleetTagsDiscovered, 1);
                RT_OBS_OBSERVE(kFleetDiscoveryRound, static_cast<double>(round));
              } else {
                next.push_back(remaining[i]);
              }
            }
            for (std::size_t s = 0; s < frame; ++s)
              if (occupancy[s] > 1) ++disc[r].collision_slots;
            remaining.swap(next);
          }
          RT_ENSURE(remaining.empty(), "fleet discovery exceeded discovery_max_rounds");
          disc[r].rounds = round;
        });
      });
    }
    const auto obs = runtime::run_deterministic_batches(std::move(tasks), workers);
    if constexpr (obs::kEnabled) {
      out.metrics.merge(obs.metrics);
      out.trace.insert(out.trace.end(), obs.spans.begin(), obs.spans.end());
    }
  }

  // --- Phase E: inventory epochs. ---
  const int total_rounds = cfg.epochs * cfg.rounds_per_epoch;
  struct RoundOut {
    std::uint32_t attempted = 0;
    std::uint32_t delivered = 0;
    std::uint32_t cross = 0;
    double snr_estimate_db = 0.0;
  };
  std::vector<std::vector<RoundOut>> round_out(
      readers, std::vector<RoundOut>(static_cast<std::size_t>(total_rounds)));

  // The shard-limiting SNR each reader adapts its cell to: the whole
  // shard must decode the assigned option, so the worst tag sets it.
  std::vector<double> worst_snr(readers, 0.0);
  for (std::size_t r = 0; r < readers; ++r) {
    double w = 0.0;
    bool first = true;
    for (const std::uint32_t id : dep.shards[r]) {
      const double snr = dep.tags[id].home_snr_db;
      if (first || snr < w) w = snr;
      first = false;
    }
    worst_snr[r] = w;
  }

  std::vector<mac::RateController> controllers;
  controllers.reserve(readers);
  for (std::size_t r = 0; r < readers; ++r) controllers.emplace_back(table, cfg.controller);
  std::vector<std::size_t> assign(readers, table.most_robust_index());
  std::vector<double> p_ok(dep.tags.size(), 0.0);

  for (int e = 0; e < cfg.epochs; ++e) {
    // E.0 (serial): freeze the epoch's per-tag delivery probabilities
    // under each reader's current assignment.
    for (std::size_t r = 0; r < readers; ++r) {
      const mac::RateOption& opt = table.option(assign[r]);
      for (const std::uint32_t id : dep.shards[r])
        p_ok[id] = model.packet_success(opt, dep.tags[id].home_snr_db, cfg.payload_bytes);
    }

    // E.1 (parallel): (reader, round-batch) tasks; round g of reader r
    // draws only from split_seed(seed, r, kDataStreamBase + g) and writes
    // only round_out[r][g], so any task order yields identical state.
    std::vector<std::function<runtime::BatchObs()>> tasks;
    for (std::size_t r = 0; r < readers; ++r) {
      for (int b0 = 0; b0 < cfg.rounds_per_epoch; b0 += cfg.batch_rounds) {
        const int b1 = std::min(b0 + cfg.batch_rounds, cfg.rounds_per_epoch);
        tasks.push_back([&round_out, &dep, &cfg, &p_ok, &p_cross, &worst_snr, r, e, b0, b1] {
          return runtime::record_batch([&] {
            RT_TRACE_SPAN("sweep_batch");
            RT_OBS_COUNT(kSweepBatches, 1);
            for (int t = b0; t < b1; ++t) {
              const int g = e * cfg.rounds_per_epoch + t;
              Rng rng(split_seed(cfg.seed, static_cast<std::uint64_t>(r),
                                 detail::kDataStreamBase + static_cast<std::uint64_t>(g)));
              RT_OBS_COUNT(kFleetRounds, 1);
              RoundOut ro;
              for (const std::uint32_t id : dep.shards[r]) {
                ++ro.attempted;
                RT_OBS_COUNT(kFleetSlots, 1);
                // Fixed draw order per slot: the cross-collision draw
                // (when the cell is exposed at all), then the channel
                // draw -- so the stream layout is schedule-independent.
                const bool cross = p_cross[r] > 0.0 && rng.uniform() < p_cross[r];
                const double u = rng.uniform();
                if (cross) {
                  ++ro.cross;
                  RT_OBS_COUNT(kFleetCrossCollisions, 1);
                  RT_OBS_COUNT(kFleetPacketsLost, 1);
                } else if (u < p_ok[id]) {
                  ++ro.delivered;
                  RT_OBS_COUNT(kFleetPacketsDelivered, 1);
                } else {
                  RT_OBS_COUNT(kFleetPacketsLost, 1);
                }
              }
              ro.snr_estimate_db = worst_snr[r] + rng.gaussian(0.0, cfg.estimate_noise_db);
              round_out[r][static_cast<std::size_t>(g)] = ro;
            }
          });
        });
      }
    }
    const auto obs = runtime::run_deterministic_batches(std::move(tasks), workers);
    if constexpr (obs::kEnabled) {
      out.metrics.merge(obs.metrics);
      out.trace.insert(out.trace.end(), obs.spans.begin(), obs.spans.end());
    }

    // E.2 (serial): controllers consume the epoch in round order and the
    // next epoch's assignments are frozen from their state.
    {
      const obs::ScopedBind bind(serial_rec);
      RT_TRACE_SPAN("fleet_merge");
      for (std::size_t r = 0; r < readers; ++r) {
        if (dep.shards[r].empty()) continue;  // no uplink, nothing to adapt
        for (int t = 0; t < cfg.rounds_per_epoch; ++t) {
          const std::size_t g = static_cast<std::size_t>(e * cfg.rounds_per_epoch + t);
          static_cast<void>(controllers[r].update(round_out[r][g].snr_estimate_db));
        }
        assign[r] = controllers[r].current_index();
      }
    }
  }

  // --- Accounting (serial): fold rounds into per-reader outcomes. ---
  for (std::size_t r = 0; r < readers; ++r) {
    ReaderOutcome& o = out.readers[r];
    o.reader = narrow_cast<std::uint32_t>(r);
    o.color = sched.colors[r];
    o.shard_tags = dep.shards[r].size();
    o.discovery_rounds = disc[r].rounds;
    o.discovery_collision_slots = disc[r].collision_slots;
    for (const RoundOut& ro : round_out[r]) {
      o.slots += ro.attempted;
      o.delivered += ro.delivered;
      o.cross_collisions += ro.cross;
    }
    o.rate_switches = controllers[r].switches();
    o.assigned_index = assign[r];
    o.worst_snr_db = worst_snr[r];
    const double dr =
        o.slots > 0 ? static_cast<double>(o.delivered) / static_cast<double>(o.slots) : 0.0;
    o.goodput_bps = table.option(assign[r]).effective_rate_bps() * dr * sched.airtime_share();
    out.slots += o.slots;
    out.delivered += o.delivered;
    out.cross_collisions += o.cross_collisions;
    out.fleet_goodput_bps += o.goodput_bps;
  }
  if (out.slots > 0) {
    out.delivery_rate = static_cast<double>(out.delivered) / static_cast<double>(out.slots);
    out.collision_rate =
        static_cast<double>(out.cross_collisions) / static_cast<double>(out.slots);
  }
  double round_sum = 0.0;
  for (const std::uint32_t dr : out.discovery_round) round_sum += static_cast<double>(dr);
  out.mean_discovery_rounds =
      out.discovery_round.empty() ? 0.0
                                  : round_sum / static_cast<double>(out.discovery_round.size());
#if RT_OBS_ENABLED
  out.metrics.merge(serial_rec.metrics);
  const auto serial_spans = serial_rec.trace.spans();
  out.trace.insert(out.trace.end(), serial_spans.begin(), serial_spans.end());
#endif
  return out;
}

/// Builds the deployment from (cfg.deployment, cfg.seed) and runs the
/// campaign on it: the whole result is a pure function of cfg.
[[nodiscard]] inline FleetResult run_fleet_campaign(const mac::RateTable& table,
                                                    const mac::GoodputModel& model,
                                                    const FleetConfig& cfg) {
  return run_fleet_campaign(table, model, cfg, place_fleet(cfg.deployment, cfg.seed));
}

}  // namespace rt::fleet
