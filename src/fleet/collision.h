// Waveform-level collision calibration, batched over the pool.
//
// The fleet campaign (fleet/campaign.h) charges cross-cell interference
// as a per-slot corruption probability; this study grounds that model in
// the PHY: it pushes sim::superimpose_tags collisions through the real
// single-tag demodulator across a sweep of interferer gains, measuring
// how hard a concurrent neighbor-cell uplink actually hits BER. This is
// the still-serial sim::multi_tag path ported onto the deterministic
// batch discipline: trial t of gain point i is a pure function of
// (seed, i * trials + t) via sim::collision_slot_seed, every trial lands
// in its own pre-sized slot, and per-task obs snapshots merge in
// submission order -- so serial and N-thread runs are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "mac/closed_loop.h"
#include "obs/trace.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "runtime/batch.h"
#include "sim/link_sim.h"
#include "sim/multi_tag.h"

namespace rt::fleet {

struct CollisionStudyConfig {
  /// Probe-grade PHY (mac::probe_params): decodes cleanly at the study
  /// SNR, so measured degradation is the interferer's doing.
  phy::PhyParams params = mac::probe_params();
  std::vector<double> interferer_gains = {0.0, 0.25, 0.5, 1.0};
  int trials = 4;  ///< payload/noise realizations per gain point
  std::size_t payload_bits = 64;
  double snr_db = 35.0;
  double interferer_roll_rad = deg_to_rad(30.0);
  std::uint64_t interferer_tag_seed = 77;  ///< pixel-heterogeneity stream
  unsigned threads = 1;
  std::uint64_t seed = 99;
};

struct CollisionPoint {
  double interferer_gain = 0.0;
  sim::LinkStats stats;

  friend bool operator==(const CollisionPoint&, const CollisionPoint&) = default;
};

struct CollisionStudyResult {
  std::vector<CollisionPoint> points;
  obs::MetricsRegistry metrics;       ///< empty unless RT_OBS=ON
  std::vector<obs::SpanRecord> trace; ///< empty unless RT_OBS=ON

  [[nodiscard]] bool identical(const CollisionStudyResult& o) const {
    return points == o.points && metrics == o.metrics;
  }
};

/// Runs the gain sweep. Each (gain, trial) task modulates a fresh wanted
/// + interferer payload pair, superimposes them at the trial's noise
/// slot, and demodulates with the unmodified single-tag receiver.
[[nodiscard]] inline CollisionStudyResult run_collision_study(const CollisionStudyConfig& cfg) {
  RT_ENSURE(!cfg.interferer_gains.empty(), "collision study needs at least one gain point");
  RT_ENSURE(cfg.trials >= 1, "collision study needs at least one trial");
  RT_ENSURE(cfg.payload_bits >= 1, "collision study payload cannot be empty");

  // One offline model shared by every trial's demodulator (the same
  // discipline as the BER sweeps: the offline step is gain-independent).
  const auto offline = sim::train_offline_model(cfg.params, cfg.params.tag_config());

  CollisionStudyResult out;
  out.points.resize(cfg.interferer_gains.size());
  std::vector<std::vector<sim::LinkStats>> slots(
      cfg.interferer_gains.size(),
      std::vector<sim::LinkStats>(static_cast<std::size_t>(cfg.trials)));

  std::vector<std::function<runtime::BatchObs()>> tasks;
  tasks.reserve(cfg.interferer_gains.size() * static_cast<std::size_t>(cfg.trials));
  for (std::size_t i = 0; i < cfg.interferer_gains.size(); ++i) {
    for (int t = 0; t < cfg.trials; ++t) {
      tasks.push_back([&slots, &cfg, &offline, i, t] {
        return runtime::record_batch([&] {
          RT_TRACE_SPAN("sweep_batch");
          RT_OBS_COUNT(kSweepBatches, 1);
          const phy::PhyParams& p = cfg.params;
          // Global trial id keys the seed slots: stream 0/1 are the two
          // tags' payloads, stream 2 (== tags.size()) the AWGN.
          const std::uint64_t gid =
              static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(cfg.trials) +
              static_cast<std::uint64_t>(t);
          Rng wanted_rng(sim::collision_slot_seed(cfg.seed, gid, 0));
          Rng interferer_rng(sim::collision_slot_seed(cfg.seed, gid, 1));
          const auto bits_a = wanted_rng.bits(cfg.payload_bits);
          const auto bits_b = interferer_rng.bits(cfg.payload_bits);
          const phy::Modulator mod(p);
          const auto pkt_a = mod.modulate(bits_a);
          const auto pkt_b = mod.modulate(bits_b);
          sim::ConcurrentTag wanted{p.tag_config(), sim::Pose{}, 1.0, pkt_a.firings};
          sim::ConcurrentTag interferer{p.tag_config(),
                                        sim::Pose{2.0, cfg.interferer_roll_rad, 0.0},
                                        cfg.interferer_gains[i], pkt_b.firings};
          interferer.tag.seed = cfg.interferer_tag_seed;
          const auto rx = sim::superimpose_tags(p, {wanted, interferer},
                                                pkt_a.duration_s + p.symbol_duration_s(),
                                                cfg.snr_db,
                                                sim::collision_slot_seed(cfg.seed, gid, 2));
          const phy::Demodulator demod(p, offline);
          phy::DemodOptions opts;
          opts.search_limit = 2 * p.samples_per_slot();
          const auto res = demod.demodulate(rx, pkt_a.layout.payload_slots, opts);
          sim::LinkStats s;
          s.packets = 1;
          s.total_bits = bits_a.size();
          if (!res.preamble_found) {
            s.preamble_failures = 1;
            s.bit_errors = bits_a.size();  // a lost preamble loses the packet
          } else {
            for (std::size_t b = 0; b < bits_a.size(); ++b)
              s.bit_errors += res.bits[b] != bits_a[b] ? 1 : 0;
          }
          slots[i][static_cast<std::size_t>(t)] = s;
        });
      });
    }
  }
  const auto obs =
      runtime::run_deterministic_batches(std::move(tasks), cfg.threads == 0 ? 1 : cfg.threads);
  if constexpr (obs::kEnabled) {
    out.metrics.merge(obs.metrics);
    out.trace.insert(out.trace.end(), obs.spans.begin(), obs.spans.end());
  }

  for (std::size_t i = 0; i < cfg.interferer_gains.size(); ++i) {
    out.points[i].interferer_gain = cfg.interferer_gains[i];
    for (const sim::LinkStats& s : slots[i]) out.points[i].stats.merge(s);
  }
  return out;
}

}  // namespace rt::fleet
