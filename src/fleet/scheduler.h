// Cross-reader slot scheduling: coloring the reader interference graph.
//
// Two readers whose coverage regions overlap cannot poll concurrently
// without risking inter-cell collisions (a tag answering reader A is
// audible at reader B, corrupting whatever B's own tag is sending). The
// coordinated schedule partitions the frame into color classes: readers
// sharing an interference edge get distinct colors and poll in disjoint
// time slices, trading airtime (1/num_colors per reader) for a collision
// rate of exactly zero. The uncoordinated schedule gives every reader
// the full frame and lets fleet/campaign.h charge the resulting
// cross-cell corruption probability instead -- the quantitative case for
// coordination that bench_fleet_inventory sweeps.
//
// Coloring is greedy smallest-free-color in reader-index order:
// deterministic, and never worse than max_degree + 1 colors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "fleet/geometry.h"

namespace rt::fleet {

struct SlotSchedule {
  std::vector<std::uint32_t> colors;  ///< color class per reader
  std::uint32_t num_colors = 1;
  bool coordinated = true;

  /// Fraction of the frame a reader may poll in: coordinated readers get
  /// one color class's slice; uncoordinated readers poll the whole frame.
  [[nodiscard]] double airtime_share() const {
    return coordinated ? 1.0 / static_cast<double>(num_colors) : 1.0;
  }

  friend bool operator==(const SlotSchedule&, const SlotSchedule&) = default;
};

/// Plans the slot schedule for a deployment. `coordinate` selects the
/// colored (collision-free) schedule; false yields the single-class
/// free-for-all the campaign uses as the collision baseline.
[[nodiscard]] inline SlotSchedule plan_slot_schedule(const Deployment& d, bool coordinate) {
  RT_ENSURE(!d.reader_x_m.empty(), "schedule needs at least one reader");
  const std::size_t readers = d.reader_x_m.size();
  SlotSchedule s;
  s.coordinated = coordinate;
  s.colors.assign(readers, 0);
  if (!coordinate) return s;

  std::uint32_t max_color = 0;
  std::vector<char> used;
  for (std::size_t r = 0; r < readers; ++r) {
    used.assign(readers, 0);
    for (std::size_t q = 0; q < r; ++q)
      if (d.conflicts(r, q)) used[s.colors[q]] = 1;
    std::uint32_t c = 0;
    while (used[c] != 0) ++c;
    s.colors[r] = c;
    if (c > max_color) max_color = c;
  }
  s.num_colors = max_color + 1;
  return s;
}

}  // namespace rt::fleet
