// Householder-QR least squares over real or complex scalars.
//
// The receiver solves many small least-squares problems per packet: the
// preamble rotation regression (a, b, c in C), per-symbol regression in the
// DFE, and the online channel-training coefficient solve. QR on the
// augmented system is numerically safer than normal equations for the
// ill-conditioned tail-effect bases, at negligible cost at these sizes.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/matrix.h"

namespace rt::linalg {

namespace detail {

// Kernel-dispatched y[k] -= a * x[k] (the MGS projection update).
inline void axpy_sub(std::size_t n, double a, const double* x, double* y) {
  kernels::axpy_sub_real(n, a, x, y);
}
inline void axpy_sub(std::size_t n, std::complex<double> a, const std::complex<double>* x,
                     std::complex<double>* y) {
  kernels::axpy_sub_cplx(n, a, x, y);
}

}  // namespace detail

template <typename T>
struct QrResult {
  Matrix<T> q;  ///< m x n with orthonormal columns (thin QR)
  Matrix<T> r;  ///< n x n upper triangular
};

/// Reusable scratch for the in-place QR solve path. A workspace held
/// across packets stops allocating once it has seen the largest problem
/// size; every buffer is fully overwritten per solve, so reuse cannot
/// leak state between solves.
///
/// Q is stored column-major (column j at q[j*m .. j*m+m)), so the MGS
/// projections run over contiguous spans with exactly the arithmetic the
/// copying qr_decompose() performs on extracted columns -- results are
/// bit-identical between the two entry points.
template <typename T>
struct LsWorkspace {
  std::vector<T> q;     ///< m x n orthonormal columns, column-major
  Matrix<T> r;          ///< n x n upper triangular
  std::vector<T> work;  ///< m x n column-major copy of A (mutated by MGS)
  std::vector<T> y;     ///< n rhs projection Q^H b
  std::vector<T> x;     ///< n solution
  std::size_t m = 0;    ///< rows of the last decomposed A
  std::size_t n = 0;    ///< cols of the last decomposed A
};

namespace detail {

/// MGS with reorthogonalization over the column-major ws.work copy of A
/// (dimensions already in ws.m/ws.n, ws.q/ws.r already sized). Shared by
/// the row-major and column-major qr_decompose entry points.
template <typename T>
void mgs_on_workspace(LsWorkspace<T>& ws) {
  const std::size_t m = ws.m;
  const std::size_t n = ws.n;
  for (std::size_t j = 0; j < n; ++j) {
    const std::span<T> v(ws.work.data() + j * m, m);
    const double original_norm = norm<T>(v);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < j; ++i) {
        const std::span<const T> qi(ws.q.data() + i * m, m);
        const T proj = dot<T>(qi, v);
        ws.r(i, j) += proj;
        detail::axpy_sub(m, proj, qi.data(), v.data());
      }
    }
    const double nv = norm<T>(std::span<const T>(v));
    RT_ENSURE(nv > 1e-300 && nv > 1e-10 * original_norm, "qr_decompose: rank-deficient matrix");
    ws.r(j, j) = T{nv};
    for (std::size_t k = 0; k < m; ++k) ws.q[j * m + k] = v[k] / T{nv};
  }
}

}  // namespace detail

/// Thin QR via modified Gram-Schmidt with reorthogonalization.
/// Requires rows >= cols and full column rank.
template <typename T>
[[nodiscard]] QrResult<T> qr_decompose(const Matrix<T>& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RT_ENSURE(m >= n, "qr_decompose requires rows >= cols");
  Matrix<T> q(m, n);
  Matrix<T> r(n, n);
  std::vector<std::vector<T>> cols(n);
  for (std::size_t j = 0; j < n; ++j) cols[j] = a.col(j);
  for (std::size_t j = 0; j < n; ++j) {
    auto& v = cols[j];
    const double original_norm = norm<T>(v);
    // Two MGS passes for numerical robustness; both projections accumulate
    // into R (iterative reorthogonalization).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < j; ++i) {
        const T proj = dot<T>(q.col(i), v);
        r(i, j) += proj;
        const auto qi = q.col(i);
        detail::axpy_sub(m, proj, qi.data(), v.data());
      }
    }
    const double nv = norm<T>(v);
    // Relative rank test: a column (numerically) inside the span of its
    // predecessors makes the system rank deficient.
    RT_ENSURE(nv > 1e-300 && nv > 1e-10 * original_norm, "qr_decompose: rank-deficient matrix");
    r(j, j) = T{nv};
    for (std::size_t k = 0; k < m; ++k) q(k, j) = v[k] / T{nv};
  }
  return {std::move(q), std::move(r)};
}

/// Thin QR via modified Gram-Schmidt into a reusable workspace. Same
/// algorithm (and bit-identical results) as qr_decompose(), but the only
/// heap traffic is growth of the workspace buffers on first use.
template <typename T>
void qr_decompose_into(const Matrix<T>& a, LsWorkspace<T>& ws) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RT_ENSURE(m >= n, "qr_decompose requires rows >= cols");
  ws.m = m;
  ws.n = n;
  ws.q.resize(m * n);
  ws.r.resize(n, n);
  ws.work.resize(m * n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < m; ++k) ws.work[j * m + k] = a(k, j);
  detail::mgs_on_workspace(ws);
}

/// qr_decompose_into() for a design matrix that is ALREADY column-major
/// (column j occupies a_cm[j*m .. j*m+m)). Skips the row-major transpose
/// copy; the MGS arithmetic -- and therefore the result -- is bit-identical
/// to the row-major entry point on the same matrix.
template <typename T>
void qr_decompose_cm_into(std::span<const T> a_cm, std::size_t m, std::size_t n,
                          LsWorkspace<T>& ws) {
  RT_ENSURE(m >= n, "qr_decompose requires rows >= cols");
  RT_ENSURE(a_cm.size() == m * n, "qr_decompose_cm_into size mismatch");
  ws.m = m;
  ws.n = n;
  ws.q.resize(m * n);
  ws.r.resize(n, n);
  ws.work.assign(a_cm.begin(), a_cm.end());
  detail::mgs_on_workspace(ws);
}

/// Solves min ||A x - b|| for the A last passed to qr_decompose_into.
/// Returns a span over ws.x (valid until the next solve). Reusing the
/// decomposition amortizes QR across multiple right-hand sides.
template <typename T>
[[nodiscard]] std::span<const T> solve_after_qr(std::span<const T> b, LsWorkspace<T>& ws) {
  RT_ENSURE(b.size() == ws.m, "solve_after_qr dimension mismatch");
  const std::size_t m = ws.m;
  const std::size_t n = ws.n;
  ws.y.resize(n);
  for (std::size_t j = 0; j < n; ++j)
    ws.y[j] = dot<T>(std::span<const T>(ws.q.data() + j * m, m), b);
  ws.x.resize(n);
  for (std::size_t ii = 0; ii < n; ++ii) {
    const std::size_t i = n - 1 - ii;
    T s = ws.y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= ws.r(i, j) * ws.x[j];
    RT_ENSURE(abs_sq(ws.r(i, i)) > 0.0, "back_substitute: singular R");
    ws.x[i] = s / ws.r(i, i);
  }
  return ws.x;
}

/// Workspace form of solve_least_squares(): same solution, zero steady-
/// state allocations. Returns a span over ws.x.
template <typename T>
[[nodiscard]] std::span<const T> solve_least_squares_into(const Matrix<T>& a,
                                                          std::span<const T> b,
                                                          LsWorkspace<T>& ws) {
  RT_ENSURE(a.rows() == b.size(), "solve_least_squares dimension mismatch");
  qr_decompose_into(a, ws);
  return solve_after_qr(b, ws);
}

/// Solves R x = y for upper-triangular R by back substitution.
template <typename T>
[[nodiscard]] std::vector<T> back_substitute(const Matrix<T>& r, std::span<const T> y) {
  const std::size_t n = r.cols();
  RT_ENSURE(r.rows() == n && y.size() == n, "back_substitute dimension mismatch");
  std::vector<T> x(n);
  for (std::size_t ii = 0; ii < n; ++ii) {
    const std::size_t i = n - 1 - ii;
    T s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    RT_ENSURE(abs_sq(r(i, i)) > 0.0, "back_substitute: singular R");
    x[i] = s / r(i, i);
  }
  return x;
}

/// Minimizes ||A x - b||_2 and returns x (thin-QR solve).
template <typename T>
[[nodiscard]] std::vector<T> solve_least_squares(const Matrix<T>& a, std::span<const T> b) {
  RT_ENSURE(a.rows() == b.size(), "solve_least_squares dimension mismatch");
  const auto [q, r] = qr_decompose(a);
  // y = Q^H b
  std::vector<T> y(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) y[j] = dot<T>(q.col(j), b);
  return back_substitute(r, std::span<const T>(y));
}

/// Residual norm ||A x - b||_2 for a candidate solution. Accumulates row
/// by row without materializing A*x (hot paths call this per packet).
template <typename T>
[[nodiscard]] double residual_norm(const Matrix<T>& a, std::span<const T> x,
                                   std::span<const T> b) {
  RT_ENSURE(a.cols() == x.size(), "residual_norm dimension mismatch");
  RT_ENSURE(a.rows() == b.size(), "residual_norm dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row = a.row(i);
    T ax;
    if constexpr (detail::is_complex<T>::value) {
      ax = kernels::cdotu(row.size(), row.data(), x.data());
    } else {
      ax = kernels::dot_real(row.size(), row.data(), x.data());
    }
    s += abs_sq(ax - b[i]);
  }
  return std::sqrt(s);
}

// Vector-argument conveniences (span deduction does not see through
// std::vector at a template call site).
template <typename T>
[[nodiscard]] std::vector<T> solve_least_squares(const Matrix<T>& a, const std::vector<T>& b) {
  return solve_least_squares(a, std::span<const T>(b));
}

template <typename T>
[[nodiscard]] double residual_norm(const Matrix<T>& a, const std::vector<T>& x,
                                   const std::vector<T>& b) {
  return residual_norm(a, std::span<const T>(x), std::span<const T>(b));
}

}  // namespace rt::linalg
