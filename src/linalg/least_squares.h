// Householder-QR least squares over real or complex scalars.
//
// The receiver solves many small least-squares problems per packet: the
// preamble rotation regression (a, b, c in C), per-symbol regression in the
// DFE, and the online channel-training coefficient solve. QR on the
// augmented system is numerically safer than normal equations for the
// ill-conditioned tail-effect bases, at negligible cost at these sizes.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/matrix.h"

namespace rt::linalg {

template <typename T>
struct QrResult {
  Matrix<T> q;  ///< m x n with orthonormal columns (thin QR)
  Matrix<T> r;  ///< n x n upper triangular
};

/// Thin QR via modified Gram-Schmidt with reorthogonalization.
/// Requires rows >= cols and full column rank.
template <typename T>
[[nodiscard]] QrResult<T> qr_decompose(const Matrix<T>& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RT_ENSURE(m >= n, "qr_decompose requires rows >= cols");
  Matrix<T> q(m, n);
  Matrix<T> r(n, n);
  std::vector<std::vector<T>> cols(n);
  for (std::size_t j = 0; j < n; ++j) cols[j] = a.col(j);
  for (std::size_t j = 0; j < n; ++j) {
    auto& v = cols[j];
    const double original_norm = norm<T>(v);
    // Two MGS passes for numerical robustness; both projections accumulate
    // into R (iterative reorthogonalization).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < j; ++i) {
        const T proj = dot<T>(q.col(i), v);
        r(i, j) += proj;
        const auto qi = q.col(i);
        for (std::size_t k = 0; k < m; ++k) v[k] -= proj * qi[k];
      }
    }
    const double nv = norm<T>(v);
    // Relative rank test: a column (numerically) inside the span of its
    // predecessors makes the system rank deficient.
    RT_ENSURE(nv > 1e-300 && nv > 1e-10 * original_norm, "qr_decompose: rank-deficient matrix");
    r(j, j) = T{nv};
    for (std::size_t k = 0; k < m; ++k) q(k, j) = v[k] / T{nv};
  }
  return {std::move(q), std::move(r)};
}

/// Solves R x = y for upper-triangular R by back substitution.
template <typename T>
[[nodiscard]] std::vector<T> back_substitute(const Matrix<T>& r, std::span<const T> y) {
  const std::size_t n = r.cols();
  RT_ENSURE(r.rows() == n && y.size() == n, "back_substitute dimension mismatch");
  std::vector<T> x(n);
  for (std::size_t ii = 0; ii < n; ++ii) {
    const std::size_t i = n - 1 - ii;
    T s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    RT_ENSURE(abs_sq(r(i, i)) > 0.0, "back_substitute: singular R");
    x[i] = s / r(i, i);
  }
  return x;
}

/// Minimizes ||A x - b||_2 and returns x (thin-QR solve).
template <typename T>
[[nodiscard]] std::vector<T> solve_least_squares(const Matrix<T>& a, std::span<const T> b) {
  RT_ENSURE(a.rows() == b.size(), "solve_least_squares dimension mismatch");
  const auto [q, r] = qr_decompose(a);
  // y = Q^H b
  std::vector<T> y(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) y[j] = dot<T>(q.col(j), b);
  return back_substitute(r, std::span<const T>(y));
}

/// Residual norm ||A x - b||_2 for a candidate solution.
template <typename T>
[[nodiscard]] double residual_norm(const Matrix<T>& a, std::span<const T> x,
                                   std::span<const T> b) {
  const auto ax = a * x;
  RT_ENSURE(ax.size() == b.size(), "residual_norm dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) s += abs_sq(ax[i] - b[i]);
  return std::sqrt(s);
}

// Vector-argument conveniences (span deduction does not see through
// std::vector at a template call site).
template <typename T>
[[nodiscard]] std::vector<T> solve_least_squares(const Matrix<T>& a, const std::vector<T>& b) {
  return solve_least_squares(a, std::span<const T>(b));
}

template <typename T>
[[nodiscard]] double residual_norm(const Matrix<T>& a, const std::vector<T>& x,
                                   const std::vector<T>& b) {
  return residual_norm(a, std::span<const T>(x), std::span<const T>(b));
}

}  // namespace rt::linalg
