// Dense row-major matrix over real or complex scalars.
//
// RetroTurbo needs only small/medium dense problems: the offline-training
// matrix E is (2^V * m) x n with n ~ tens of orientations, and the online
// training solves ~2*S*L unknowns. A simple, well-tested dense type keeps
// the whole system dependency-free.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "kernels/kernels.h"

namespace rt::linalg {

namespace detail {

template <typename T>
struct is_complex : std::false_type {};
template <typename T>
struct is_complex<std::complex<T>> : std::true_type {};

}  // namespace detail

/// Complex conjugate that is the identity for real scalars.
template <typename T>
[[nodiscard]] constexpr T conj_if_complex(const T& v) {
  if constexpr (detail::is_complex<T>::value) {
    return std::conj(v);
  } else {
    return v;
  }
}

/// |v|^2 valid for both real and complex scalars.
template <typename T>
[[nodiscard]] constexpr double abs_sq(const T& v) {
  if constexpr (detail::is_complex<T>::value) {
    return std::norm(v);
  } else {
    return static_cast<double>(v) * static_cast<double>(v);
  }
}

template <typename T>
class Matrix {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, std::complex<double>>,
                "Matrix supports double and std::complex<double>");

 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from row-major initializer data; `data.size()` must be rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    RT_ENSURE(data_.size() == rows_ * cols_, "matrix data size mismatch");
  }

  /// Reshapes to rows x cols and zero-fills. Reuses the existing heap
  /// buffer whenever capacity allows, so workspace-held matrices stop
  /// allocating once they have seen their largest problem size.
  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    RT_ENSURE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    RT_ENSURE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> row(std::size_t r) {
    RT_ENSURE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    RT_ENSURE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<T> col(std::size_t c) const {
    RT_ENSURE(c < cols_, "column index out of range");
    std::vector<T> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  void set_col(std::size_t c, std::span<const T> values) {
    RT_ENSURE(c < cols_ && values.size() == rows_, "set_col size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Conjugate transpose (plain transpose for real scalars).
  [[nodiscard]] Matrix adjoint() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = conj_if_complex((*this)(r, c));
    return out;
  }

  [[nodiscard]] Matrix operator*(const Matrix& rhs) const {
    RT_ENSURE(cols_ == rhs.rows_, "matrix multiply dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(r, k);
        if (a == T{}) continue;
        for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<T> operator*(std::span<const T> v) const {
    RT_ENSURE(cols_ == v.size(), "matrix-vector dimension mismatch");
    std::vector<T> out(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
    return out;
  }

  [[nodiscard]] Matrix operator+(const Matrix& rhs) const {
    RT_ENSURE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix add dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
    return out;
  }

  [[nodiscard]] Matrix operator-(const Matrix& rhs) const {
    RT_ENSURE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix subtract dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
    return out;
  }

  [[nodiscard]] Matrix operator*(T scalar) const {
    Matrix out = *this;
    for (auto& v : out.data_) v *= scalar;
    return out;
  }

  [[nodiscard]] double frobenius_norm() const {
    double s = 0.0;
    for (const auto& v : data_) s += abs_sq(v);
    return std::sqrt(s);
  }

  [[nodiscard]] std::span<const T> data() const { return data_; }
  [[nodiscard]] std::span<T> data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

/// Inner product <a, b> = sum conj(a_i) * b_i. Dispatches to the kernel
/// layer (src/kernels): the scalar backend is the original sequential
/// loop; the AVX2 backend reassociates within the documented tolerance.
template <typename T>
[[nodiscard]] T dot(std::span<const T> a, std::span<const T> b) {
  RT_ENSURE(a.size() == b.size(), "dot dimension mismatch");
  if constexpr (detail::is_complex<T>::value) {
    return kernels::cdotc(a.size(), a.data(), b.data());
  } else {
    return kernels::dot_real(a.size(), a.data(), b.data());
  }
}

/// Euclidean norm of a vector (kernel-dispatched, see dot()).
template <typename T>
[[nodiscard]] double norm(std::span<const T> v) {
  if constexpr (detail::is_complex<T>::value) {
    return std::sqrt(kernels::sum_norm_cplx(v.size(), v.data()));
  } else {
    return std::sqrt(kernels::sum_sq_real(v.size(), v.data()));
  }
}

}  // namespace rt::linalg
