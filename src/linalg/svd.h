// One-sided Jacobi singular value decomposition (real matrices).
//
// Offline channel training (paper section 4.3.3) stacks pulse fingerprints
// collected at n orientations into E = [r(x_1) ... r(x_n)] (rows: 2^V * m
// waveform samples, cols: orientations) and extracts the leading S left
// singular vectors as the invariant reference bases -- a truncated
// Karhunen-Loeve expansion. n is small (tens), so one-sided Jacobi, which
// orthogonalizes the columns by plane rotations, is simple and accurate.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "linalg/matrix.h"

namespace rt::linalg {

struct SvdResult {
  RealMatrix u;                   ///< m x k, orthonormal columns (k = min(m, n))
  std::vector<double> sigma;      ///< k singular values, descending
  RealMatrix v;                   ///< n x k, orthonormal columns
};

/// Computes the thin SVD A = U diag(sigma) V^T via one-sided Jacobi.
[[nodiscard]] inline SvdResult svd(const RealMatrix& a_in, int max_sweeps = 60,
                                   double tol = 1e-12) {
  const std::size_t m = a_in.rows();
  const std::size_t n = a_in.cols();
  RT_ENSURE(m > 0 && n > 0, "svd requires a non-empty matrix");
  // Work on columns of A; V accumulates the rotations.
  RealMatrix a = a_in;
  RealMatrix v = RealMatrix::identity(n);

  const auto col_dot = [&](std::size_t p, std::size_t q) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += a(r, p) * a(r, q);
    return s;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double app = col_dot(p, p);
        const double aqq = col_dot(q, q);
        const double apq = col_dot(p, q);
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) continue;
        rotated = true;
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, zeta) / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t r = 0; r < m; ++r) {
          const double ap = a(r, p);
          const double aq = a(r, q);
          a(r, p) = c * ap - s * aq;
          a(r, q) = s * ap + c * aq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Singular values are the column norms; sort descending.
  const std::size_t k = std::min(m, n);
  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += a(r, j) * a(r, j);
    norms[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return norms[i] > norms[j]; });

  SvdResult out;
  out.u = RealMatrix(m, k);
  out.v = RealMatrix(n, k);
  out.sigma.resize(k);
  for (std::size_t jj = 0; jj < k; ++jj) {
    const std::size_t j = order[jj];
    out.sigma[jj] = norms[j];
    if (norms[j] > 0.0) {
      for (std::size_t r = 0; r < m; ++r) out.u(r, jj) = a(r, j) / norms[j];
    } else if (jj > 0) {
      // Zero singular value: leave the U column zero (caller truncates anyway).
    }
    for (std::size_t r = 0; r < n; ++r) out.v(r, jj) = v(r, j);
  }
  return out;
}

/// Returns the first `rank` left singular vectors as columns (the truncated
/// Karhunen-Loeve basis used by offline channel training).
[[nodiscard]] inline RealMatrix truncated_basis(const SvdResult& s, std::size_t rank) {
  RT_ENSURE(rank >= 1 && rank <= s.sigma.size(), "truncated_basis: bad rank");
  RealMatrix u(s.u.rows(), rank);
  for (std::size_t c = 0; c < rank; ++c)
    for (std::size_t r = 0; r < s.u.rows(); ++r) u(r, c) = s.u(r, c);
  return u;
}

}  // namespace rt::linalg
