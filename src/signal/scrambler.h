// Additive (synchronous) scrambler.
//
// Footnote 4 of the paper: the transmitter avoids DC stress on the liquid
// crystal by applying a data scrambler, so long runs of identical symbols
// do not park the constellation at one point. The same LFSR whitening is
// applied at both ends (XOR is its own inverse).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::sig {

/// Self-synchronous additive scrambler over bit vectors using the CCITT
/// V.34-style polynomial x^7 + x^4 + 1.
class Scrambler {
 public:
  explicit Scrambler(std::uint8_t seed = 0x7F) : seed_(seed & 0x7F) {
    RT_ENSURE(seed_ != 0, "scrambler seed must be non-zero");
  }

  /// XORs the input bit stream with the LFSR keystream. Applying twice with
  /// the same seed restores the original data.
  [[nodiscard]] std::vector<std::uint8_t> apply(std::span<const std::uint8_t> bits) const {
    std::vector<std::uint8_t> out(bits.size());
    std::uint8_t state = seed_;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const std::uint8_t key = narrow_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1U);
      out[i] = narrow_cast<std::uint8_t>((bits[i] & 1U) ^ key);
      state = narrow_cast<std::uint8_t>(((state << 1) | key) & 0x7F);
    }
    return out;
  }

  /// In-place variant for caller-owned buffers (XOR is its own inverse, so
  /// this both scrambles and descrambles). Same keystream as apply().
  void apply_in_place(std::span<std::uint8_t> bits) const {
    std::uint8_t state = seed_;
    for (auto& b : bits) {
      const std::uint8_t key = narrow_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1U);
      b = narrow_cast<std::uint8_t>((b & 1U) ^ key);
      state = narrow_cast<std::uint8_t>(((state << 1) | key) & 0x7F);
    }
  }

  /// Descrambles per-bit LLRs in place: XOR-ing a bit with keystream bit 1
  /// flips its meaning, which on the soft side is a sign flip (positive =
  /// bit 0 convention). Same keystream as apply().
  void apply_sign_in_place(std::span<float> llrs) const {
    std::uint8_t state = seed_;
    for (auto& llr : llrs) {
      const std::uint8_t key = narrow_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1U);
      if (key) llr = -llr;
      state = narrow_cast<std::uint8_t>(((state << 1) | key) & 0x7F);
    }
  }

 private:
  std::uint8_t seed_;
};

}  // namespace rt::sig
