// Additive white Gaussian noise injection and SNR bookkeeping.
//
// The paper's trace-driven emulation (section 7.3) superimposes AWGN of
// controlled level on recorded reference waveforms; these helpers implement
// that, for both real photodiode traces and complex two-channel signals.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "signal/waveform.h"

namespace rt::sig {

/// Adds real AWGN such that the resulting SNR (signal mean power over noise
/// power) equals `snr_db`, measuring signal power from the waveform itself.
inline void add_awgn(Waveform& w, double snr_db, Rng& rng) {
  const double p = w.mean_power();
  if (p == 0.0) return;
  const double sigma = std::sqrt(p / from_db(snr_db));
  for (auto& s : w.samples) s += rng.gaussian(0.0, sigma);
}

/// Adds circularly-symmetric complex AWGN at the given SNR. Noise power is
/// split evenly between the I and Q (0deg / 45deg polarization) channels.
inline void add_awgn(IqWaveform& w, double snr_db, Rng& rng) {
  const double p = w.mean_power();
  if (p == 0.0) return;
  const double sigma = std::sqrt(p / from_db(snr_db) / 2.0);
  for (auto& s : w.samples) s += Complex(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma));
}

/// Adds noise with an absolute per-sample standard deviation (used by the
/// photodiode model where the noise floor is set by the circuit, not the
/// signal).
inline void add_noise_sigma(Waveform& w, double sigma, Rng& rng) {
  for (auto& s : w.samples) s += rng.gaussian(0.0, sigma);
}

inline void add_noise_sigma(IqWaveform& w, double sigma_per_axis, Rng& rng) {
  for (auto& s : w.samples)
    s += Complex(rng.gaussian(0.0, sigma_per_axis), rng.gaussian(0.0, sigma_per_axis));
}

/// SNR in dB given measured signal and noise powers.
[[nodiscard]] inline double snr_db_from_powers(double signal_power, double noise_power) {
  RT_ENSURE(noise_power > 0.0, "noise power must be positive");
  return to_db(signal_power / noise_power);
}

}  // namespace rt::sig
