// Sampled waveform containers.
//
// Real waveforms model single-photodiode intensity traces; complex (IQ)
// waveforms model the two-polarization-channel reception where the 0deg
// receiver maps to the real axis and the 45deg receiver to the imaginary
// axis (paper section 4.2.3: p_I(t) = sqrt(-1) p_Q(t)).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace rt::sig {

using Complex = std::complex<double>;

/// A uniformly sampled scalar signal tagged with its sample rate.
template <typename T>
struct BasicWaveform {
  double sample_rate_hz = 0.0;
  std::vector<T> samples;

  BasicWaveform() = default;
  BasicWaveform(double fs, std::vector<T> s) : sample_rate_hz(fs), samples(std::move(s)) {
    RT_ENSURE(fs > 0.0, "sample rate must be positive");
  }
  BasicWaveform(double fs, std::size_t n) : sample_rate_hz(fs), samples(n, T{}) {
    RT_ENSURE(fs > 0.0, "sample rate must be positive");
  }

  [[nodiscard]] std::size_t size() const { return samples.size(); }
  [[nodiscard]] double duration_s() const {
    return sample_rate_hz > 0.0 ? static_cast<double>(samples.size()) / sample_rate_hz : 0.0;
  }
  [[nodiscard]] T& operator[](std::size_t i) { return samples[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return samples[i]; }

  /// Mean power (|x|^2 averaged over samples).
  [[nodiscard]] double mean_power() const {
    if (samples.empty()) return 0.0;
    double s = 0.0;
    for (const auto& v : samples) s += std::norm(Complex(v));
    return s / static_cast<double>(samples.size());
  }

  /// Index of the sample nearest to time `t` seconds.
  [[nodiscard]] std::size_t index_at(double t) const {
    RT_ENSURE(t >= 0.0, "time must be non-negative");
    return static_cast<std::size_t>(t * sample_rate_hz + 0.5);
  }
};

using Waveform = BasicWaveform<double>;
using IqWaveform = BasicWaveform<Complex>;

/// Element-wise a += b (b may be shorter; added from offset 0).
template <typename T>
void accumulate(BasicWaveform<T>& a, const BasicWaveform<T>& b, std::size_t offset = 0) {
  RT_ENSURE(a.sample_rate_hz == b.sample_rate_hz, "sample rate mismatch");
  const std::size_t n = std::min(b.size(), a.size() > offset ? a.size() - offset : 0);
  for (std::size_t i = 0; i < n; ++i) a.samples[offset + i] += b.samples[i];
}

/// Root-mean-square difference between two equal-rate waveforms over the
/// overlapping prefix.
template <typename T>
[[nodiscard]] double rms_error(const BasicWaveform<T>& a, const BasicWaveform<T>& b) {
  RT_ENSURE(a.sample_rate_hz == b.sample_rate_hz, "sample rate mismatch");
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::norm(Complex(a.samples[i]) - Complex(b.samples[i]));
  return std::sqrt(s / static_cast<double>(n));
}

}  // namespace rt::sig
