// Windowed-sinc FIR filter design and application.
//
// The reader front end (paper section 6) band-passes the photodiode signal
// around the 455 kHz switching carrier to reject ambient light (which is DC
// after photodetection) before IQ down-conversion and decimation.
#pragma once

#include <vector>

#include "signal/waveform.h"

namespace rt::sig {

/// FIR filter described by its tap vector; applies via direct convolution.
class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  /// Designs a low-pass filter (Hamming window) with given cutoff.
  [[nodiscard]] static FirFilter low_pass(double sample_rate_hz, double cutoff_hz,
                                          std::size_t num_taps);

  /// Designs a band-pass filter between [low_hz, high_hz].
  [[nodiscard]] static FirFilter band_pass(double sample_rate_hz, double low_hz, double high_hz,
                                           std::size_t num_taps);

  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

  /// Taps in reversed order (cached so the kernel-layer convolution can
  /// walk both operands ascending).
  [[nodiscard]] const std::vector<double>& taps_reversed() const { return taps_rev_; }

  /// Group delay in samples ((N-1)/2 for the symmetric designs here).
  [[nodiscard]] std::size_t group_delay() const { return (taps_.size() - 1) / 2; }

  /// Filters a real waveform (same length output, zero-padded edges,
  /// group delay compensated so features stay time-aligned).
  [[nodiscard]] Waveform apply(const Waveform& in) const;

  /// Filters a complex waveform.
  [[nodiscard]] IqWaveform apply(const IqWaveform& in) const;

 private:
  template <typename T>
  [[nodiscard]] BasicWaveform<T> apply_impl(const BasicWaveform<T>& in) const;

  std::vector<double> taps_;
  std::vector<double> taps_rev_;
};

/// Keeps every `factor`-th sample (caller is responsible for pre-filtering).
[[nodiscard]] IqWaveform decimate(const IqWaveform& in, std::size_t factor);
[[nodiscard]] Waveform decimate(const Waveform& in, std::size_t factor);

}  // namespace rt::sig
