#include "signal/fir.h"

#include <cmath>
#include <type_traits>

#include "common/error.h"
#include "common/units.h"
#include "kernels/kernels.h"

namespace rt::sig {

namespace {

/// sin(x)/x with the removable singularity handled.
double sinc(double x) { return x == 0.0 ? 1.0 : std::sin(x) / x; }

std::vector<double> hamming_window(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) / static_cast<double>(n - 1));
  return w;
}

}  // namespace

FirFilter::FirFilter(std::vector<double> taps)
    : taps_(std::move(taps)), taps_rev_(taps_.rbegin(), taps_.rend()) {
  RT_ENSURE(!taps_.empty(), "FIR filter needs at least one tap");
  RT_ENSURE(taps_.size() % 2 == 1, "FIR designs here use odd tap counts (integer group delay)");
}

FirFilter FirFilter::low_pass(double sample_rate_hz, double cutoff_hz, std::size_t num_taps) {
  RT_ENSURE(sample_rate_hz > 0.0 && cutoff_hz > 0.0, "rates must be positive");
  RT_ENSURE(cutoff_hz < sample_rate_hz / 2.0, "cutoff must be below Nyquist");
  RT_ENSURE(num_taps >= 3 && num_taps % 2 == 1, "need an odd tap count >= 3");
  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto w = hamming_window(num_taps);
  std::vector<double> taps(num_taps);
  const double mid = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double x = static_cast<double>(i) - mid;
    taps[i] = 2.0 * fc * sinc(2.0 * kPi * fc * x) * w[i];
    sum += taps[i];
  }
  // Normalize to unity DC gain.
  for (auto& t : taps) t /= sum;
  return FirFilter(std::move(taps));
}

FirFilter FirFilter::band_pass(double sample_rate_hz, double low_hz, double high_hz,
                               std::size_t num_taps) {
  RT_ENSURE(low_hz > 0.0 && high_hz > low_hz, "need 0 < low < high");
  RT_ENSURE(high_hz < sample_rate_hz / 2.0, "high edge must be below Nyquist");
  RT_ENSURE(num_taps >= 3 && num_taps % 2 == 1, "need an odd tap count >= 3");
  // Band-pass = high-cutoff low-pass minus low-cutoff low-pass, built from
  // un-normalized kernels so the subtraction is spectrally correct.
  std::vector<double> taps(num_taps);
  const auto build = [&](double cutoff) {
    const double fc = cutoff / sample_rate_hz;
    const auto w = hamming_window(num_taps);
    std::vector<double> t(num_taps);
    const double mid = static_cast<double>(num_taps - 1) / 2.0;
    for (std::size_t i = 0; i < num_taps; ++i) {
      const double x = static_cast<double>(i) - mid;
      t[i] = 2.0 * fc * sinc(2.0 * kPi * fc * x) * w[i];
    }
    return t;
  };
  const auto hi = build(high_hz);
  const auto lo = build(low_hz);
  for (std::size_t i = 0; i < num_taps; ++i) taps[i] = hi[i] - lo[i];
  // Normalize to unity gain at band centre.
  const double f0 = (low_hz + high_hz) / 2.0 / sample_rate_hz;
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    re += taps[i] * std::cos(2.0 * kPi * f0 * static_cast<double>(i));
    im -= taps[i] * std::sin(2.0 * kPi * f0 * static_cast<double>(i));
  }
  const double gain = std::sqrt(re * re + im * im);
  RT_ENSURE(gain > 1e-12, "band-pass design produced zero centre gain");
  for (auto& t : taps) t /= gain;
  return FirFilter(std::move(taps));
}

template <typename T>
BasicWaveform<T> FirFilter::apply_impl(const BasicWaveform<T>& in) const {
  BasicWaveform<T> out(in.sample_rate_hz, in.size());
  const std::size_t delay = group_delay();
  const auto n = static_cast<std::ptrdiff_t>(in.size());
  const auto nt = static_cast<std::ptrdiff_t>(taps_.size());
  const auto d = static_cast<std::ptrdiff_t>(delay);
  // Edge samples -- where the tap window clips either end of the input --
  // keep the guarded per-tap walk of the original loop.
  const auto edge = [&](std::ptrdiff_t i) {
    T acc{};
    // Output sample i corresponds to input centred at i (delay compensated).
    const std::ptrdiff_t base = i + d;
    for (std::ptrdiff_t k = 0; k < nt; ++k) {
      const std::ptrdiff_t j = base - k;
      if (j < 0 || j >= n) continue;
      acc += in.samples[static_cast<std::size_t>(j)] * taps_[static_cast<std::size_t>(k)];
    }
    out.samples[static_cast<std::size_t>(i)] = acc;
  };
  // Interior: the full window [base - nt + 1, base] is in range, so the
  // bounds checks drop out and the tap dot runs through the kernel layer
  // (the scalar backend walks taps ascending exactly like `edge`).
  const std::ptrdiff_t lo = std::min(n, nt - 1 - d);
  const std::ptrdiff_t hi = std::max(lo, std::min(n, n - d));
  for (std::ptrdiff_t i = 0; i < lo; ++i) edge(i);
  for (std::ptrdiff_t i = lo; i < hi; ++i) {
    const T* xw = in.samples.data() + (i + d - (nt - 1));
    if constexpr (std::is_same_v<T, Complex>) {
      out.samples[static_cast<std::size_t>(i)] =
          kernels::fir_dot(taps_.size(), taps_.data(), taps_rev_.data(), xw);
    } else {
      out.samples[static_cast<std::size_t>(i)] =
          kernels::fir_dot_real(taps_.size(), taps_.data(), taps_rev_.data(), xw);
    }
  }
  for (std::ptrdiff_t i = hi; i < n; ++i) edge(i);
  return out;
}

Waveform FirFilter::apply(const Waveform& in) const { return apply_impl(in); }
IqWaveform FirFilter::apply(const IqWaveform& in) const { return apply_impl(in); }

namespace {

template <typename T>
BasicWaveform<T> decimate_impl(const BasicWaveform<T>& in, std::size_t factor) {
  RT_ENSURE(factor >= 1, "decimation factor must be >= 1");
  BasicWaveform<T> out(in.sample_rate_hz / static_cast<double>(factor),
                       (in.size() + factor - 1) / factor);
  for (std::size_t i = 0, j = 0; i < in.size(); i += factor, ++j) out.samples[j] = in.samples[i];
  return out;
}

}  // namespace

IqWaveform decimate(const IqWaveform& in, std::size_t factor) { return decimate_impl(in, factor); }
Waveform decimate(const Waveform& in, std::size_t factor) { return decimate_impl(in, factor); }

}  // namespace rt::sig
