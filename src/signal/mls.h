// Maximum-length sequences (m-sequences) via Fibonacci LFSRs.
//
// Section 5.2 of the paper characterizes the nonlinear LCM with a V-th
// order MLS drive pattern: every V-bit history appears exactly once per
// period, so one period of the sequence suffices to collect a complete
// fingerprint table R_[b1..bV](t). Channel training (section 4.3.3)
// likewise enumerates histories by an MLS.
#pragma once

#include <cstdint>
#include <vector>

namespace rt::sig {

/// Generates one full period (2^order - 1 bits) of a maximal-length
/// sequence for LFSR orders 2..24.
[[nodiscard]] std::vector<std::uint8_t> mls(unsigned order);

/// Verifies the balance property (#ones = 2^(order-1)) -- used by tests.
[[nodiscard]] bool is_maximal_length(const std::vector<std::uint8_t>& seq, unsigned order);

}  // namespace rt::sig
