// Gray code mapping.
//
// PQAM maps bits to the sqrt(P) amplitude levels of each polarization axis
// with Gray labelling (section 5.1 notes Gray code keeps symbol errors to
// single bit errors), so adjacent constellation points differ by one bit.
#pragma once

#include <cstdint>

namespace rt::sig {

/// Binary -> Gray.
[[nodiscard]] constexpr std::uint32_t gray_encode(std::uint32_t v) { return v ^ (v >> 1); }

/// Gray -> binary.
[[nodiscard]] constexpr std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t v = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) v ^= v >> shift;
  return v;
}

}  // namespace rt::sig
