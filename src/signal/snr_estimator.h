// SNR estimation from received waveforms.
//
// The rate-adaptive MAC (section 4.4) assigns bit/coding rates from the
// measured uplink SNR. The reader estimates it without ground truth using
// the preamble: the regression fit separates the deterministic reference
// component from the residual, whose energy is the noise estimate.
#pragma once

#include <algorithm>
#include <span>

#include "common/error.h"
#include "common/units.h"
#include "signal/waveform.h"

namespace rt::sig {

/// Estimates are clamped to +-kSnrEstimateCapDb. A clean channel (oracle
/// probe, zero-noise emulation) has zero residual, which would otherwise
/// divide to infinity; the closed rate-adaptation loop needs a finite,
/// capped reading it can feed straight into the rate table. The cap sits
/// well above the highest demodulation threshold (55 dB for 32 Kbps), so
/// capping never changes a rate assignment.
inline constexpr double kSnrEstimateCapDb = 80.0;

struct SnrEstimate {
  double snr_db = 0.0;
  double signal_power = 0.0;
  double noise_power = 0.0;
};

namespace detail {

/// Clamped dB conversion of a signal/noise power pair. Zero noise maps to
/// the cap (perfectly clean) and zero signal to the negative cap; the
/// result is always finite.
[[nodiscard]] inline double capped_snr_db(double p_sig, double p_noise) {
  if (!(p_noise > 0.0)) return p_sig > 0.0 ? kSnrEstimateCapDb : -kSnrEstimateCapDb;
  if (!(p_sig > 0.0)) return -kSnrEstimateCapDb;
  return std::clamp(rt::to_db(p_sig / p_noise), -kSnrEstimateCapDb, kSnrEstimateCapDb);
}

}  // namespace detail

/// Estimates SNR by comparing a received segment against the known (fitted)
/// reference: signal power from the reference, noise power from the
/// residual. Both spans must be aligned and equal length. The estimate is
/// always finite: a zero residual yields the +kSnrEstimateCapDb cap.
[[nodiscard]] inline SnrEstimate estimate_snr(std::span<const Complex> received,
                                              std::span<const Complex> fitted_reference) {
  RT_ENSURE(received.size() == fitted_reference.size() && !received.empty(),
            "aligned equal-length spans required");
  double p_sig = 0.0;
  double p_noise = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    p_sig += std::norm(fitted_reference[i]);
    p_noise += std::norm(received[i] - fitted_reference[i]);
  }
  p_sig /= static_cast<double>(received.size());
  p_noise /= static_cast<double>(received.size());
  return {detail::capped_snr_db(p_sig, p_noise), p_sig, p_noise};
}

/// Blind moment-based estimate for constant-envelope segments: separates
/// mean (signal) from variance (noise) per axis. Used for quick link
/// probing when no reference is available. A zero-variance (noiseless)
/// segment yields the capped estimate instead of aborting.
[[nodiscard]] inline SnrEstimate estimate_snr_blind(std::span<const Complex> received) {
  RT_ENSURE(received.size() >= 8, "need at least 8 samples");
  Complex mean{};
  for (const auto& v : received) mean += v;
  mean /= static_cast<double>(received.size());
  double var = 0.0;
  for (const auto& v : received) var += std::norm(v - mean);
  var /= static_cast<double>(received.size() - 1);
  return {detail::capped_snr_db(std::norm(mean), var), std::norm(mean), var};
}

}  // namespace rt::sig
