// Sliding-window correlation / matched filtering helpers used by the
// preamble detector.
#pragma once

#include <span>
#include <vector>

#include "signal/waveform.h"

namespace rt::sig {

/// Normalized cross-correlation magnitude of `ref` against every alignment
/// of `x` (output length: x.size() - ref.size() + 1). The magnitude is
/// rotation-invariant, which matters because an uncorrected polarization
/// misalignment rotates the whole complex signal.
[[nodiscard]] inline std::vector<double> sliding_correlation(std::span<const Complex> x,
                                                             std::span<const Complex> ref) {
  if (ref.empty() || x.size() < ref.size()) return {};
  const std::size_t n = x.size() - ref.size() + 1;
  double ref_energy = 0.0;
  for (const auto& r : ref) ref_energy += std::norm(r);
  std::vector<double> out(n, 0.0);
  if (ref_energy == 0.0) return out;
  for (std::size_t t = 0; t < n; ++t) {
    Complex acc{};
    double x_energy = 0.0;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      acc += std::conj(ref[k]) * x[t + k];
      x_energy += std::norm(x[t + k]);
    }
    out[t] = x_energy > 0.0 ? std::abs(acc) / std::sqrt(ref_energy * x_energy) : 0.0;
  }
  return out;
}

/// A reference waveform pre-centred (zero mean) with its energy cached, so
/// repeated correlations against the same reference skip the per-call
/// centring pass. Build once with make_centered_ref().
struct CenteredRef {
  std::vector<Complex> ref;  ///< zero-mean reference samples
  double energy = 0.0;       ///< sum |ref_i|^2 after centring
};

[[nodiscard]] inline CenteredRef make_centered_ref(std::span<const Complex> ref_in) {
  CenteredRef out;
  out.ref.assign(ref_in.begin(), ref_in.end());
  if (out.ref.empty()) return out;
  Complex ref_mean{};
  for (const auto& r : out.ref) ref_mean += r;
  ref_mean /= static_cast<double>(out.ref.size());
  for (auto& r : out.ref) {
    r -= ref_mean;
    out.energy += std::norm(r);
  }
  return out;
}

/// Reusable prefix-sum scratch for sliding_correlation_centered_into().
struct SlidingScratch {
  std::vector<Complex> psum;
  std::vector<double> penergy;
};

/// Workspace form of sliding_correlation_centered(): correlates a
/// pre-centred reference against every alignment of `x`, writing into a
/// caller-owned output buffer. Bit-identical to the allocating variant.
inline void sliding_correlation_centered_into(std::span<const Complex> x,
                                              const CenteredRef& cref, SlidingScratch& scratch,
                                              std::vector<double>& out) {
  const auto& ref = cref.ref;
  if (ref.empty() || x.size() < ref.size()) {
    out.clear();
    return;
  }
  const std::size_t n = x.size() - ref.size() + 1;
  out.assign(n, 0.0);
  if (cref.energy == 0.0) return;

  // Prefix sums for windowed mean/energy.
  scratch.psum.assign(x.size() + 1, Complex{});
  scratch.penergy.assign(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    scratch.psum[i + 1] = scratch.psum[i] + x[i];
    scratch.penergy[i + 1] = scratch.penergy[i] + std::norm(x[i]);
  }
  const auto k = ref.size();
  for (std::size_t t = 0; t < n; ++t) {
    Complex acc{};
    for (std::size_t i = 0; i < k; ++i) acc += std::conj(ref[i]) * x[t + i];
    const Complex wsum = scratch.psum[t + k] - scratch.psum[t];
    const double wenergy = scratch.penergy[t + k] - scratch.penergy[t];
    const double centred_energy = wenergy - std::norm(wsum) / static_cast<double>(k);
    out[t] = centred_energy > 1e-300 ? std::abs(acc) / std::sqrt(cref.energy * centred_energy)
                                     : 0.0;
  }
}

/// Complex-valued centred normalized correlation at ONE alignment `t`.
/// Unlike the sliding variants, the window mean/energy are accumulated
/// inside the window itself (no prefix sums), so the result is an exact
/// pure function of x[t, t + ref) alone -- independent of where the
/// enclosing buffer starts. The streaming receiver's continuous scan
/// depends on this for bit-identical chunk-size invariance: its scratch
/// block origins move with stream arrival, which would perturb
/// prefix-sum rounding. |result| matches the magnitude variant up to
/// floating-point rounding of the normalization.
[[nodiscard]] inline Complex correlation_centered_at(std::span<const Complex> x,
                                                     const CenteredRef& cref, std::size_t t) {
  const auto& ref = cref.ref;
  const std::size_t k = ref.size();
  if (k == 0 || cref.energy == 0.0 || t + k > x.size()) return Complex{};
  Complex acc{};
  Complex wsum{};
  double wenergy = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const Complex v = x[t + i];
    acc += std::conj(ref[i]) * v;
    wsum += v;
    wenergy += std::norm(v);
  }
  const double centred_energy = wenergy - std::norm(wsum) / static_cast<double>(k);
  return centred_energy > 1e-300 ? acc / std::sqrt(cref.energy * centred_energy) : Complex{};
}

/// Mean-invariant normalized correlation: both the reference and each
/// window of `x` are centred before correlating, so a DC offset (the
/// relaxed-pixel baseline in VLBC reception) cannot bias the peak. Using a
/// zero-mean reference makes the numerator window-DC-invariant for free;
/// the window energy is corrected via prefix sums.
[[nodiscard]] inline std::vector<double> sliding_correlation_centered(
    std::span<const Complex> x, std::span<const Complex> ref_in) {
  const CenteredRef cref = make_centered_ref(ref_in);
  SlidingScratch scratch;
  std::vector<double> out;
  sliding_correlation_centered_into(x, cref, scratch, out);
  return out;
}

}  // namespace rt::sig
