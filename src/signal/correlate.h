// Sliding-window correlation / matched filtering helpers used by the
// preamble detector.
#pragma once

#include <span>
#include <vector>

#include "signal/waveform.h"

namespace rt::sig {

/// Normalized cross-correlation magnitude of `ref` against every alignment
/// of `x` (output length: x.size() - ref.size() + 1). The magnitude is
/// rotation-invariant, which matters because an uncorrected polarization
/// misalignment rotates the whole complex signal.
[[nodiscard]] inline std::vector<double> sliding_correlation(std::span<const Complex> x,
                                                             std::span<const Complex> ref) {
  if (ref.empty() || x.size() < ref.size()) return {};
  const std::size_t n = x.size() - ref.size() + 1;
  double ref_energy = 0.0;
  for (const auto& r : ref) ref_energy += std::norm(r);
  std::vector<double> out(n, 0.0);
  if (ref_energy == 0.0) return out;
  for (std::size_t t = 0; t < n; ++t) {
    Complex acc{};
    double x_energy = 0.0;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      acc += std::conj(ref[k]) * x[t + k];
      x_energy += std::norm(x[t + k]);
    }
    out[t] = x_energy > 0.0 ? std::abs(acc) / std::sqrt(ref_energy * x_energy) : 0.0;
  }
  return out;
}

/// Mean-invariant normalized correlation: both the reference and each
/// window of `x` are centred before correlating, so a DC offset (the
/// relaxed-pixel baseline in VLBC reception) cannot bias the peak. Using a
/// zero-mean reference makes the numerator window-DC-invariant for free;
/// the window energy is corrected via prefix sums.
[[nodiscard]] inline std::vector<double> sliding_correlation_centered(
    std::span<const Complex> x, std::span<const Complex> ref_in) {
  if (ref_in.empty() || x.size() < ref_in.size()) return {};
  std::vector<Complex> ref(ref_in.begin(), ref_in.end());
  Complex ref_mean{};
  for (const auto& r : ref) ref_mean += r;
  ref_mean /= static_cast<double>(ref.size());
  double ref_energy = 0.0;
  for (auto& r : ref) {
    r -= ref_mean;
    ref_energy += std::norm(r);
  }
  const std::size_t n = x.size() - ref.size() + 1;
  std::vector<double> out(n, 0.0);
  if (ref_energy == 0.0) return out;

  // Prefix sums for windowed mean/energy.
  std::vector<Complex> psum(x.size() + 1, Complex{});
  std::vector<double> penergy(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    psum[i + 1] = psum[i] + x[i];
    penergy[i + 1] = penergy[i] + std::norm(x[i]);
  }
  const auto k = ref.size();
  for (std::size_t t = 0; t < n; ++t) {
    Complex acc{};
    for (std::size_t i = 0; i < k; ++i) acc += std::conj(ref[i]) * x[t + i];
    const Complex wsum = psum[t + k] - psum[t];
    const double wenergy = penergy[t + k] - penergy[t];
    const double centred_energy =
        wenergy - std::norm(wsum) / static_cast<double>(k);
    out[t] = centred_energy > 1e-300 ? std::abs(acc) / std::sqrt(ref_energy * centred_energy)
                                     : 0.0;
  }
  return out;
}

}  // namespace rt::sig
