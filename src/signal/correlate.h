// Sliding-window correlation / matched filtering helpers used by the
// preamble detector.
#pragma once

#include <span>
#include <vector>

#include "kernels/kernels.h"
#include "signal/waveform.h"

namespace rt::sig {

/// Normalized cross-correlation magnitude of `ref` against every alignment
/// of `x` (output length: x.size() - ref.size() + 1). The magnitude is
/// rotation-invariant, which matters because an uncorrected polarization
/// misalignment rotates the whole complex signal.
[[nodiscard]] inline std::vector<double> sliding_correlation(std::span<const Complex> x,
                                                             std::span<const Complex> ref) {
  if (ref.empty() || x.size() < ref.size()) return {};
  const std::size_t n = x.size() - ref.size() + 1;
  double ref_energy = 0.0;
  for (const auto& r : ref) ref_energy += std::norm(r);
  std::vector<double> out(n, 0.0);
  if (ref_energy == 0.0) return out;
  for (std::size_t t = 0; t < n; ++t) {
    // Independent accumulation chains, so the split kernel calls keep the
    // scalar backend bit-identical to the old fused loop.
    const Complex acc = kernels::cdotc(ref.size(), ref.data(), x.data() + t);
    const double x_energy = kernels::sum_norm_cplx(ref.size(), x.data() + t);
    out[t] = x_energy > 0.0 ? std::abs(acc) / std::sqrt(ref_energy * x_energy) : 0.0;
  }
  return out;
}

/// A reference waveform pre-centred (zero mean) with its energy cached, so
/// repeated correlations against the same reference skip the per-call
/// centring pass. Build once with make_centered_ref().
struct CenteredRef {
  std::vector<Complex> ref;  ///< zero-mean reference samples
  double energy = 0.0;       ///< sum |ref_i|^2 after centring
};

[[nodiscard]] inline CenteredRef make_centered_ref(std::span<const Complex> ref_in) {
  CenteredRef out;
  out.ref.assign(ref_in.begin(), ref_in.end());
  if (out.ref.empty()) return out;
  Complex ref_mean{};
  for (const auto& r : out.ref) ref_mean += r;
  ref_mean /= static_cast<double>(out.ref.size());
  for (auto& r : out.ref) {
    r -= ref_mean;
    out.energy += std::norm(r);
  }
  return out;
}

/// Reusable prefix-sum scratch for sliding_correlation_centered_into().
struct SlidingScratch {
  std::vector<Complex> psum;
  std::vector<double> penergy;
};

/// Workspace form of sliding_correlation_centered(): correlates a
/// pre-centred reference against every alignment of `x`, writing into a
/// caller-owned output buffer. Bit-identical to the allocating variant.
inline void sliding_correlation_centered_into(std::span<const Complex> x,
                                              const CenteredRef& cref, SlidingScratch& scratch,
                                              std::vector<double>& out) {
  const auto& ref = cref.ref;
  if (ref.empty() || x.size() < ref.size()) {
    out.clear();
    return;
  }
  const std::size_t n = x.size() - ref.size() + 1;
  out.assign(n, 0.0);
  if (cref.energy == 0.0) return;

  // Prefix sums for windowed mean/energy.
  scratch.psum.assign(x.size() + 1, Complex{});
  scratch.penergy.assign(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    scratch.psum[i + 1] = scratch.psum[i] + x[i];
    scratch.penergy[i + 1] = scratch.penergy[i] + std::norm(x[i]);
  }
  const auto k = ref.size();
  for (std::size_t t = 0; t < n; ++t) {
    const Complex acc = kernels::cdotc(k, ref.data(), x.data() + t);
    const Complex wsum = scratch.psum[t + k] - scratch.psum[t];
    const double wenergy = scratch.penergy[t + k] - scratch.penergy[t];
    const double centred_energy = wenergy - std::norm(wsum) / static_cast<double>(k);
    out[t] = centred_energy > 1e-300 ? std::abs(acc) / std::sqrt(cref.energy * centred_energy)
                                     : 0.0;
  }
}

/// Normalizes raw window sums into the centred correlation value:
/// acc / sqrt(ref_energy * (wenergy - |wsum|^2 / k)). Shared by
/// correlation_centered_at and the streaming receiver's split-plane scan,
/// so both normalize with the exact same op chain.
[[nodiscard]] inline Complex centered_correlation_from_stats(const kernels::CorrStats& st,
                                                             double ref_energy, std::size_t k) {
  if (k == 0 || ref_energy == 0.0) return Complex{};
  const double centred_energy = st.wenergy - std::norm(st.wsum) / static_cast<double>(k);
  return centred_energy > 1e-300 ? st.acc / std::sqrt(ref_energy * centred_energy) : Complex{};
}

/// Complex-valued centred normalized correlation at ONE alignment `t`.
/// Unlike the sliding variants, the window mean/energy are accumulated
/// inside the window itself (no prefix sums), so the result is an exact
/// pure function of x[t, t + ref) alone -- independent of where the
/// enclosing buffer starts. The streaming receiver's continuous scan
/// depends on this for bit-identical chunk-size invariance: its scratch
/// block origins move with stream arrival, which would perturb
/// prefix-sum rounding. |result| matches the magnitude variant up to
/// floating-point rounding of the normalization.
[[nodiscard]] inline Complex correlation_centered_at(std::span<const Complex> x,
                                                     const CenteredRef& cref, std::size_t t) {
  const auto& ref = cref.ref;
  const std::size_t k = ref.size();
  if (k == 0 || cref.energy == 0.0 || t + k > x.size()) return Complex{};
  const kernels::CorrStats st = kernels::corr_stats(k, ref.data(), x.data() + t);
  return centered_correlation_from_stats(st, cref.energy, k);
}

/// Mean-invariant normalized correlation: both the reference and each
/// window of `x` are centred before correlating, so a DC offset (the
/// relaxed-pixel baseline in VLBC reception) cannot bias the peak. Using a
/// zero-mean reference makes the numerator window-DC-invariant for free;
/// the window energy is corrected via prefix sums.
[[nodiscard]] inline std::vector<double> sliding_correlation_centered(
    std::span<const Complex> x, std::span<const Complex> ref_in) {
  const CenteredRef cref = make_centered_ref(ref_in);
  SlidingScratch scratch;
  std::vector<double> out;
  sliding_correlation_centered_into(x, cref, scratch, out);
  return out;
}

}  // namespace rt::sig
