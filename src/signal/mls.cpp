#include "signal/mls.h"

#include <array>
#include <cstddef>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::sig {

namespace {

// Maximal-length Fibonacci LFSR tap positions (1-indexed stages), from the
// standard table in Xilinx XAPP052. Feedback is the XOR of the tapped
// stages; with a non-zero seed the register cycles through all 2^n - 1
// non-zero states.
constexpr std::array<std::array<int, 4>, 25> kTaps = {{
    {0, 0, 0, 0},      // order 0 (unused)
    {0, 0, 0, 0},      // order 1 (unused)
    {2, 1, 0, 0},      // 2
    {3, 2, 0, 0},      // 3
    {4, 3, 0, 0},      // 4
    {5, 3, 0, 0},      // 5
    {6, 5, 0, 0},      // 6
    {7, 6, 0, 0},      // 7
    {8, 6, 5, 4},      // 8
    {9, 5, 0, 0},      // 9
    {10, 7, 0, 0},     // 10
    {11, 9, 0, 0},     // 11
    {12, 6, 4, 1},     // 12
    {13, 4, 3, 1},     // 13
    {14, 5, 3, 1},     // 14
    {15, 14, 0, 0},    // 15
    {16, 15, 13, 4},   // 16
    {17, 14, 0, 0},    // 17
    {18, 11, 0, 0},    // 18
    {19, 6, 2, 1},     // 19
    {20, 17, 0, 0},    // 20
    {21, 19, 0, 0},    // 21
    {22, 21, 0, 0},    // 22
    {23, 18, 0, 0},    // 23
    {24, 23, 22, 17},  // 24
}};

}  // namespace

std::vector<std::uint8_t> mls(unsigned order) {
  RT_ENSURE(order >= 2 && order <= 24, "mls order must be in [2, 24]");
  const auto& taps = kTaps[order];
  const std::size_t period = (std::size_t{1} << order) - 1;
  // rt-check: alloc-ok (setup-time: MLS sequences are built once at construction, never per packet)
  std::vector<std::uint8_t> out;
  out.reserve(period);
  // State bit i (0-based) holds shift-register stage i+1.
  std::uint32_t state = 1;
  const std::uint32_t mask = (order == 32) ? 0xFFFFFFFFU : ((1U << order) - 1U);
  for (std::size_t i = 0; i < period; ++i) {
    // Output the last stage.
    out.push_back(narrow_cast<std::uint8_t>((state >> (order - 1)) & 1U));
    std::uint32_t feedback = 0;
    for (const int t : taps) {
      if (t == 0) break;
      feedback ^= (state >> (t - 1)) & 1U;
    }
    state = ((state << 1) | feedback) & mask;
  }
  return out;
}

bool is_maximal_length(const std::vector<std::uint8_t>& seq, unsigned order) {
  const std::size_t period = (std::size_t{1} << order) - 1;
  if (seq.size() != period) return false;
  std::size_t ones = 0;
  for (const auto b : seq) ones += b;
  // Balance property of m-sequences.
  if (ones != (std::size_t{1} << (order - 1))) return false;
  // Every non-zero `order`-bit window must appear exactly once (span property).
  std::vector<std::uint8_t> seen(period + 1, 0);
  for (std::size_t i = 0; i < period; ++i) {
    std::uint32_t window = 0;
    for (unsigned k = 0; k < order; ++k) window = (window << 1) | seq[(i + k) % period];
    if (window == 0 || seen[window]) return false;
    seen[window] = 1;
  }
  return true;
}

}  // namespace rt::sig
