// Pull-style sample sources feeding the streaming receiver.
//
// One interface covers every input the reader daemon consumes: in-memory
// waveforms (concatenated simulator output, sim_source.h), CSV capture
// replays (sim::trace via BufferSource), and -- eventually -- live
// hardware front-ends. A source hands out samples in caller-sized chunks
// so the driver loop, not the source, decides the streaming granularity;
// the receiver's results are invariant to that choice by contract.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>

#include "common/error.h"
#include "signal/waveform.h"

namespace rt::stream {

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  [[nodiscard]] virtual double sample_rate_hz() const = 0;

  /// Fills up to `out.size()` samples; returns the count written. A
  /// return of 0 signals end of stream (sources never block here).
  [[nodiscard]] virtual std::size_t read(std::span<sig::Complex> out) = 0;
};

/// Replays an in-memory waveform -- the adapter that turns a sim::trace
/// CSV capture (read_trace_csv) or a concatenated simulator stream into a
/// SampleSource.
class BufferSource final : public SampleSource {
 public:
  explicit BufferSource(sig::IqWaveform wave) : wave_(std::move(wave)) {
    RT_ENSURE(wave_.sample_rate_hz > 0.0, "buffer source needs a tagged sample rate");
  }

  [[nodiscard]] double sample_rate_hz() const override { return wave_.sample_rate_hz; }

  [[nodiscard]] std::size_t read(std::span<sig::Complex> out) override {
    const std::size_t n = std::min(out.size(), wave_.size() - pos_);
    std::copy_n(wave_.samples.begin() + static_cast<std::ptrdiff_t>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }

  /// Rewinds to the start of the waveform (replay the same capture).
  void rewind() { pos_ = 0; }

 private:
  sig::IqWaveform wave_;
  std::size_t pos_ = 0;
};

}  // namespace rt::stream
