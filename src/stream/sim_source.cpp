#include "stream/sim_source.h"

#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"
#include "lcm/tag_array.h"
#include "sim/packet_workspace.h"

namespace rt::stream {

namespace {

// Sub-stream tags for the gap material's split_seed derivations
// (independent of the packet streams, which hang off the simulator
// seeds inside render_packet_rx).
constexpr std::uint64_t kGapNoiseStream = 0;
constexpr std::uint64_t kGapFiringStream = 1;

}  // namespace

StreamTruth build_stream(const sim::LinkSimulator& sim, const StreamScenario& sc) {
  RT_ENSURE(sc.packets >= 1, "a stream scenario needs at least one packet");
  RT_ENSURE(sc.gap_slots >= 0 && sc.lead_in_slots >= 0 && sc.tail_slots >= 0,
            "gap lengths cannot be negative");
  const phy::PhyParams& p = sim.params();

  StreamTruth out;
  out.waveform.sample_rate_hz = p.sample_rate_hz;

  sim::PacketWorkspace ws;
  auto realization = sim.channel().make_realization();
  lcm::SynthScratch gap_scratch;
  sig::IqWaveform gap;
  std::vector<lcm::Firing> firings;
  std::uint64_t gap_index = 0;

  const auto append_gap = [&](int slots) {
    if (sc.gap == StreamScenario::Gap::kNone || slots <= 0) return;
    const double duration = slots * p.slot_s;
    Rng noise(split_seed(sc.gap_seed, gap_index, kGapNoiseStream));
    firings.clear();
    if (sc.gap == StreamScenario::Gap::kGarbage) {
      // One random firing per slot (except the last, which discharges):
      // tag-like energy with none of the preamble's MLS structure.
      Rng frng(split_seed(sc.gap_seed, gap_index, kGapFiringStream));
      for (int s = 0; s + 1 < slots; ++s) {
        lcm::Firing f;
        f.time_s = s * p.slot_s;
        f.module = narrow_cast<int>(frng.uniform_int(0, p.dsm_order - 1));
        f.level_i = narrow_cast<int>(frng.uniform_int(0, p.levels_per_axis() - 1));
        f.level_q =
            p.use_q_channel ? narrow_cast<int>(frng.uniform_int(0, p.levels_per_axis() - 1)) : 0;
        firings.push_back(f);
      }
    }
    realization.synthesize_into(firings, duration, &noise, gap_scratch, gap);
    out.waveform.samples.insert(out.waveform.samples.end(), gap.samples.begin(),
                                gap.samples.end());
    ++gap_index;
  };

  append_gap(sc.lead_in_slots);
  for (int i = 0; i < sc.packets; ++i) {
    if (i > 0) append_gap(sc.gap_slots);
    const auto rendered =
        sim.render_packet_rx(static_cast<std::uint64_t>(i), sc.payload_bytes, ws);
    FrameTruth truth;
    truth.packet_offset = out.waveform.size();
    truth.start_sample = out.waveform.size() + rendered.pad_samples;
    truth.payload_bits = rendered.payload_bits;
    truth.first_payload_bit = out.payload_bits.size();
    out.frames.push_back(truth);
    out.payload_bits.insert(out.payload_bits.end(), ws.payload.begin(), ws.payload.end());
    out.waveform.samples.insert(out.waveform.samples.end(), ws.rx.samples.begin(),
                                ws.rx.samples.end());
    out.payload_slots = rendered.payload_slots;
  }
  append_gap(sc.tail_slots);
  return out;
}

}  // namespace rt::stream
