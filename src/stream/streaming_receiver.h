// Streaming sample-level receiver: finds and decodes frames in an
// unbounded IQ stream.
//
// The packet pipeline (phy::Demodulator) expects a pre-framed window; a
// real reader front-end gets a continuous photodiode stream and must find
// the frames itself. StreamingReceiver closes that gap with a three-state
// machine over a fixed-capacity SampleRing:
//
//   SEARCHING  continuous preamble scan: centred normalized correlation
//              against the offline reference, scored through a bank of
//              phase-hypothesis matched filters (phase_bank.h); the first
//              alignment whose score crosses `scan_gate` arms a sync.
//   SYNCED     peak resolution: once one full correlation span past the
//              crossing is buffered, the magnitude argmax pins the
//              candidate start t*, and the bit-error-tolerant soft SOF
//              check (sof_matcher.h) must accept the per-slot pattern --
//              otherwise the crossing is a false alarm and the scan
//              resumes past it.
//   DECODING   once the full frame window [t* - lead, t* + frame + W) is
//              buffered, it is copied out of the ring and handed to the
//              unmodified zero-allocation packet pipeline
//              (Demodulator::demodulate_into); accepted frames go to the
//              FrameSink, rejects resync past the candidate preamble.
//
// Contracts (tests/test_streaming.cpp):
//   - Chunk invariance: every state transition fires at a fixed absolute
//     sample index, so decode results are bit-identical whether the
//     stream arrives one sample at a time or all at once.
//   - Packet-path equivalence: over a concatenation of run_packet
//     waveforms, decoded bits/stats reproduce the packet-at-a-time path
//     bit for bit (the decode window hands demodulate_into the same
//     samples run_packet would).
//   - Zero allocations in steady state: all buffers are sized at
//     construction (tests/test_alloc.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/trace.h"
#include "phy/demodulator.h"
#include "stream/phase_bank.h"
#include "stream/ring_buffer.h"
#include "stream/sof_matcher.h"

namespace rt::stream {

struct StreamOptions {
  /// Expected payload length in slots (the fixed-geometry frame contract;
  /// sim_source computes it from the payload byte count). Required.
  int payload_slots = 0;
  /// Detection gate on the phase-bank correlation score. Noise floors at
  /// ~1/sqrt(reference length) (< 0.05 for any supported preamble), a
  /// real preamble peaks near 1; 0.45 leaves margin both ways.
  double scan_gate = 0.45;
  int phase_hypotheses = 8;
  /// Scan decimation: only every `scan_stride`-th alignment is scored in
  /// SEARCHING. SYNCED re-resolves the peak at full resolution, so any
  /// stride yields the same decodes; larger strides trade detection
  /// latency for scan throughput.
  std::size_t scan_stride = 1;
  /// Alignments scored per scan batch (bounds the scratch buffers).
  std::size_t scan_block = 512;
  /// SOF mismatch budget in slots; -1 = preamble_slots / 4 (noise decides
  /// ~half the slots wrong, so a quarter is a comfortable wall).
  int sof_max_bit_errors = -1;
  /// Ring capacity in samples; 0 = min_ring_capacity(). Smaller values
  /// are rejected -- the state machine could deadlock waiting for a
  /// window that can never fit.
  std::size_t ring_capacity = 0;
  /// Options forwarded to the packet pipeline (search_limit is managed by
  /// the receiver; set the rest to mirror the packet-at-a-time run).
  phy::DemodOptions demod;
};

/// One decoded frame, delivered through FrameSink::on_frame. The spans
/// point into receiver-owned buffers and are valid only for the duration
/// of the callback.
struct StreamFrame {
  std::uint64_t start_sample = 0;      ///< absolute preamble start in the stream
  std::span<const std::uint8_t> bits;  ///< decoded payload bits (padded length)
  phy::PreambleDetection detection;    ///< start_sample here is window-relative
  double snr_estimate_db = 0.0;
};

class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void on_frame(const StreamFrame& frame) = 0;
};

/// Always-compiled receiver statistics (the obs counters mirror these
/// when RT_OBS=ON, but scenario tests must not depend on the obs build).
struct StreamStats {
  std::uint64_t samples_pushed = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t sof_rejects = 0;       ///< gate crossings the SOF check refused
  std::uint64_t decode_rejects = 0;    ///< windows the packet pipeline refused
  std::uint64_t truncated_frames = 0;  ///< frames cut off by end-of-stream
};

class StreamingReceiver {
 public:
  /// `demod` must outlive the receiver (it is the trained packet pipeline
  /// the stream hands windows to -- sharing it with the packet path is
  /// what makes the two bit-identical).
  StreamingReceiver(const phy::Demodulator& demod, const StreamOptions& options);

  /// Feeds a chunk of the stream; decoded frames are delivered to `sink`
  /// as soon as their window completes. Chunks may have any size,
  /// including one sample.
  void push_samples(std::span<const sig::Complex> chunk, FrameSink& sink);

  /// Signals end of stream: resolves any pending sync and counts a frame
  /// whose window can no longer complete as truncated. The receiver
  /// returns to SEARCHING and can keep consuming a new stream.
  void flush(FrameSink& sink);

  [[nodiscard]] const StreamStats& stats() const { return stats_; }

  /// Smallest legal ring capacity for this geometry (the decode window
  /// plus the sync-resolution working set).
  [[nodiscard]] std::size_t min_ring_capacity() const { return min_capacity_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_.capacity(); }

  enum class State { kSearching, kSynced, kDecoding };
  [[nodiscard]] State state() const { return state_; }

  /// Stage spans/counters recorded while pushing (RT_OBS builds).
  [[nodiscard]] obs::Recorder& recorder() { return obs_; }

 private:
  void advance(FrameSink& sink);
  [[nodiscard]] bool step_searching();
  [[nodiscard]] bool step_synced();
  [[nodiscard]] bool step_decoding(FrameSink& sink);
  /// Peak resolution + SOF decision shared by step_synced and flush.
  /// `clip` bounds the argmax span by end-of-stream instead of waiting.
  [[nodiscard]] bool resolve_sync(bool clip);
  void retire_history();

  const phy::Demodulator* demod_;
  StreamOptions opts_;

  // Geometry, all derived from (PhyParams, payload_slots) at construction.
  std::size_t spslot_ = 0;
  std::size_t ref_len_ = 0;       ///< preamble reference length in samples
  std::size_t peak_span_ = 0;     ///< alignments searched past a gate crossing
  std::size_t frame_samples_ = 0; ///< total_slots * samples_per_slot
  std::size_t window_len_ = 0;    ///< decode window length (lead + frame + W)
  std::size_t min_capacity_ = 0;
  static constexpr std::size_t kLeadMax = 3;  ///< refinement look-back (preamble +-3)

  SampleRing ring_;
  PhaseBank bank_;
  SofMatcher sof_;

  State state_ = State::kSearching;
  std::uint64_t scan_pos_ = 0;    ///< next alignment to score (SEARCHING)
  std::uint64_t sync_lo_ = 0;     ///< first alignment of the peak-resolution span
  std::uint64_t sync_hi_ = 0;     ///< last alignment of the peak-resolution span
  std::uint64_t t_star_ = 0;      ///< resolved candidate preamble start
  std::uint64_t win_start_ = 0;   ///< absolute start of the decode window
  std::size_t lead_ = 0;          ///< samples of look-back in the window

  // Preallocated working buffers (sized at construction; the hot path
  // never grows them). The scan works on split re/im planes (SoA): the
  // block is split once, then every alignment's correlation statistics
  // run over contiguous doubles (kernels::corr_stats_split).
  std::vector<sig::Complex> scan_buf_;
  std::vector<double> scan_re_;
  std::vector<double> scan_im_;
  std::vector<double> cref_re_;  ///< split centred reference (fixed)
  std::vector<double> cref_im_;
  double cref_energy_ = 0.0;
  sig::IqWaveform win_;
  phy::DemodWorkspace dws_;
  phy::DemodResult result_;

  StreamStats stats_;
  obs::Recorder obs_;
};

}  // namespace rt::stream
