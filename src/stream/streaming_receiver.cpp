#include "stream/streaming_receiver.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "kernels/kernels.h"
#include "phy/frame.h"
#include "signal/correlate.h"

namespace rt::stream {

namespace {

std::size_t frame_samples_for(const phy::PhyParams& p, int payload_slots) {
  RT_ENSURE(payload_slots >= 1, "streaming receiver needs the frame's payload slot count");
  const auto layout = phy::FrameLayout::for_params(p, payload_slots);
  return static_cast<std::size_t>(layout.total_slots()) * p.samples_per_slot();
}

std::size_t clamped_stride(const StreamOptions& o) { return std::max<std::size_t>(1, o.scan_stride); }

}  // namespace

StreamingReceiver::StreamingReceiver(const phy::Demodulator& demod, const StreamOptions& options)
    : demod_(&demod),
      opts_(options),
      spslot_(demod.params().samples_per_slot()),
      ref_len_(demod.preamble().reference().size()),
      peak_span_(ref_len_ + spslot_),
      frame_samples_(frame_samples_for(demod.params(), options.payload_slots)),
      window_len_(kLeadMax + frame_samples_ + demod.params().samples_per_symbol()),
      // The ring must hold the larger of the two waiting states' working
      // sets -- the full decode window, or the peak-resolution span plus
      // one reference -- with the retention slack on top.
      min_capacity_(std::max(peak_span_ + clamped_stride(options) + ref_len_, window_len_) +
                    kLeadMax + 8),
      ring_(options.ring_capacity != 0 ? options.ring_capacity : min_capacity_),
      bank_(options.phase_hypotheses),
      sof_(demod.params(), demod.preamble().reference()) {
  RT_ENSURE(opts_.scan_gate > 0.0 && opts_.scan_gate < 1.0, "scan gate must be in (0, 1)");
  RT_ENSURE(opts_.scan_stride >= 1, "scan stride must be at least 1");
  RT_ENSURE(opts_.scan_block >= 1, "scan block must be at least one alignment");
  RT_ENSURE(ring_.capacity() >= min_capacity_,
            "ring capacity below the streaming state machine's working set");
  if (opts_.sof_max_bit_errors < 0) opts_.sof_max_bit_errors = demod.params().preamble_slots / 4;
  // Preallocate every buffer the hot path touches: the scan copy span,
  // the (larger of) peak-resolution span, and the decode window.
  const std::size_t scan_span = (opts_.scan_block - 1) * opts_.scan_stride + ref_len_;
  const std::size_t sync_span = peak_span_ + opts_.scan_stride + ref_len_;
  scan_buf_.reserve(std::max(scan_span, sync_span));
  scan_re_.reserve(std::max(scan_span, sync_span));
  scan_im_.reserve(std::max(scan_span, sync_span));
  win_.sample_rate_hz = demod.params().sample_rate_hz;
  win_.samples.reserve(window_len_);
  // Split the centred reference once: the scan statistic then runs on
  // re/im planes (bitwise-identical accumulation; see corr_stats_split).
  const auto& cref = demod.preamble().centered_reference();
  cref_re_.resize(cref.ref.size());
  cref_im_.resize(cref.ref.size());
  kernels::split_complex(cref.ref.size(), cref.ref.data(), cref_re_.data(), cref_im_.data());
  cref_energy_ = cref.energy;
}

void StreamingReceiver::push_samples(std::span<const sig::Complex> chunk, FrameSink& sink) {
  const obs::ScopedBind obs_bind(obs_);
  stats_.samples_pushed += chunk.size();
  RT_OBS_COUNT(kStreamSamplesPushed, chunk.size());
  std::size_t off = 0;
  while (off < chunk.size()) {
    if (ring_.free_space() == 0) {
      advance(sink);
      RT_ENSURE(ring_.free_space() > 0,
                "streaming receiver stalled: ring cannot fit the pending state's window");
    }
    const std::size_t n = std::min(chunk.size() - off, ring_.free_space());
    ring_.append(chunk.subspan(off, n));
    off += n;
    advance(sink);
  }
}

void StreamingReceiver::flush(FrameSink& sink) {
  const obs::ScopedBind obs_bind(obs_);
  advance(sink);
  if (state_ == State::kSynced) static_cast<void>(resolve_sync(/*clip=*/true));
  if (state_ == State::kDecoding) {
    const std::size_t need = window_len_ - (kLeadMax - lead_);
    if (win_start_ + need <= ring_.abs_end()) {
      static_cast<void>(step_decoding(sink));
    } else {
      ++stats_.truncated_frames;
      RT_OBS_COUNT(kStreamTruncatedFrames, 1);
      state_ = State::kSearching;
      scan_pos_ = ring_.abs_end();
    }
  }
  retire_history();
}

void StreamingReceiver::advance(FrameSink& sink) {
  bool progress = true;
  while (progress) {
    switch (state_) {
      case State::kSearching: progress = step_searching(); break;
      case State::kSynced: progress = step_synced(); break;
      case State::kDecoding: progress = step_decoding(sink); break;
    }
  }
  retire_history();
}

bool StreamingReceiver::step_searching() {
  const std::uint64_t end = ring_.abs_end();
  if (scan_pos_ + ref_len_ > end) return false;
  RT_TRACE_SPAN("stream_scan");
  const std::size_t stride = opts_.scan_stride;
  const std::uint64_t max_align = end - ref_len_;
  std::size_t m = static_cast<std::size_t>((max_align - scan_pos_) / stride) + 1;
  m = std::min(m, opts_.scan_block);
  const std::size_t span = (m - 1) * stride + ref_len_;
  scan_buf_.resize(span);
  ring_.copy_out(scan_pos_, std::span(scan_buf_.data(), span));
  scan_re_.resize(span);
  scan_im_.resize(span);
  kernels::split_complex(span, scan_buf_.data(), scan_re_.data(), scan_im_.data());
  for (std::size_t j = 0; j < m; ++j) {
    // The split-plane statistic is a pure function of the window samples
    // alone (and bitwise equal to correlation_centered_at on the same
    // window), so the crossing decision at an absolute alignment does not
    // depend on where this scan block happened to start (chunk-size
    // invariance).
    const kernels::CorrStats st =
        kernels::corr_stats_split(ref_len_, cref_re_.data(), cref_im_.data(),
                                  scan_re_.data() + j * stride, scan_im_.data() + j * stride);
    const sig::Complex c = sig::centered_correlation_from_stats(st, cref_energy_, ref_len_);
    if (bank_.score(c) >= opts_.scan_gate) {
      const std::uint64_t t_c = scan_pos_ + j * stride;
      // The true peak can trail the crossing by up to one reference
      // length (the correlation ramps while the windows overlap) and
      // lead it by at most stride - 1 (the grid may have skipped it).
      sync_lo_ = t_c - std::min<std::uint64_t>(t_c, stride - 1);
      sync_hi_ = t_c + peak_span_;
      scan_pos_ = t_c;
      state_ = State::kSynced;
      return true;
    }
  }
  scan_pos_ += m * stride;
  return true;
}

bool StreamingReceiver::step_synced() {
  if (sync_hi_ + ref_len_ > ring_.abs_end()) return false;  // wait for the full span
  return resolve_sync(/*clip=*/false);
}

bool StreamingReceiver::resolve_sync(bool clip) {
  const std::uint64_t end = ring_.abs_end();
  std::uint64_t hi = sync_hi_;
  if (clip) {
    if (end < sync_lo_ + ref_len_) {  // not even one alignment left
      state_ = State::kSearching;
      scan_pos_ = sync_lo_;
      return false;
    }
    hi = std::min(hi, end - ref_len_);
  }
  RT_TRACE_SPAN("stream_sync");
  const auto n_align = static_cast<std::size_t>(hi - sync_lo_) + 1;
  const std::size_t span = n_align - 1 + ref_len_;
  scan_buf_.resize(span);
  ring_.copy_out(sync_lo_, std::span(scan_buf_.data(), span));
  const auto& cref = demod_->preamble().centered_reference();
  const std::span<const sig::Complex> buf(scan_buf_);
  // Full-resolution magnitude argmax over the span: the best alignment
  // the packet path's coarse stage could also have chosen.
  std::size_t best = 0;
  double best_mag = -1.0;
  for (std::size_t j = 0; j < n_align; ++j) {
    const double mag = std::abs(sig::correlation_centered_at(buf, cref, j));
    if (mag > best_mag) {
      best_mag = mag;
      best = j;
    }
  }
  t_star_ = sync_lo_ + best;
  // Soft start-of-frame: the per-slot on/off pattern must match the MLS
  // preamble up to the mismatch budget, or the crossing was a false alarm
  // (structured garbage can cross the correlation gate; it cannot also
  // reproduce the slot pattern).
  const int bad = sof_.mismatches(buf.subspan(best, sof_.window_samples()));
  if (bad > opts_.sof_max_bit_errors) {
    ++stats_.sof_rejects;
    RT_OBS_COUNT(kStreamSofRejects, 1);
    state_ = State::kSearching;
    scan_pos_ = hi + 1;  // resume past the rejected span
    return true;
  }
  lead_ = static_cast<std::size_t>(std::min<std::uint64_t>(kLeadMax, t_star_));
  win_start_ = t_star_ - lead_;
  state_ = State::kDecoding;
  return true;
}

bool StreamingReceiver::step_decoding(FrameSink& sink) {
  const std::size_t need = window_len_ - (kLeadMax - lead_);
  if (win_start_ + need > ring_.abs_end()) return false;  // wait for the window
  RT_TRACE_SPAN("stream_decode");
  win_.samples.resize(need);
  ring_.copy_out(win_start_, std::span(win_.samples.data(), need));
  // Hand the aligned window to the unmodified packet pipeline. The lead
  // keeps the packet path's +-3 refinement candidates available, and the
  // small search limit pins its coarse search to our resolved peak.
  phy::DemodOptions dopts = opts_.demod;
  dopts.search_limit = lead_ + 4;
  demod_->demodulate_into(win_, opts_.payload_slots, dopts, dws_, result_);
  if (result_.preamble_found) {
    StreamFrame frame;
    frame.start_sample = win_start_ + result_.detection.start_sample;
    frame.bits = std::span<const std::uint8_t>(result_.bits);
    frame.detection = result_.detection;
    frame.snr_estimate_db = result_.detection.snr.snr_db;
    ++stats_.frames_decoded;
    RT_OBS_COUNT(kStreamFramesDecoded, 1);
    sink.on_frame(frame);
    // Resume the scan at the end of the decoded frame (the trailing
    // discharge carries no preamble energy, so scanning it is harmless).
    scan_pos_ = frame.start_sample + frame_samples_;
  } else {
    ++stats_.decode_rejects;
    RT_OBS_COUNT(kStreamDecodeRejects, 1);
    scan_pos_ = t_star_ + sof_.window_samples();  // hop past the bad candidate
  }
  state_ = State::kSearching;
  return true;
}

void StreamingReceiver::retire_history() {
  std::uint64_t keep = 0;
  switch (state_) {
    case State::kSearching: {
      // Keep enough look-back for a crossing at scan_pos_ itself: the
      // sync span reaches back stride - 1, and the decode window another
      // kLeadMax for the refinement candidates.
      const std::uint64_t back = kLeadMax + opts_.scan_stride - 1;
      keep = scan_pos_ - std::min<std::uint64_t>(scan_pos_, back);
      break;
    }
    case State::kSynced:
      keep = sync_lo_ - std::min<std::uint64_t>(sync_lo_, kLeadMax);
      break;
    case State::kDecoding:
      keep = win_start_;
      break;
  }
  ring_.discard_to(std::min(keep, ring_.abs_end()));
}

}  // namespace rt::stream
