// Bank of phase-hypothesis matched filters for the continuous preamble
// scan (after FiendChain's DAB PreambleDetector: K rotors e^{j phi_k}
// spread over the circle, statistic max_k Re(rotor_k * c)).
//
// The scan statistic must be rotation-invariant -- an uncorrected
// polarization roll rotates the whole complex correlation -- but |c| per
// alignment costs a sqrt. Projecting onto K phase hypotheses and taking
// the max underestimates |c| by at most a factor cos(pi/K) (0.98 for
// K = 8), which a fixed detection gate absorbs, and additionally reports
// WHICH hypothesis won -- a coarse roll estimate for telemetry.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "signal/waveform.h"

namespace rt::stream {

class PhaseBank {
 public:
  explicit PhaseBank(int hypotheses) {
    RT_ENSURE(hypotheses >= 1 && hypotheses <= 64, "phase hypothesis count out of range");
    rotors_.reserve(static_cast<std::size_t>(hypotheses));
    for (int k = 0; k < hypotheses; ++k) {
      const double phi = 2.0 * std::numbers::pi * k / hypotheses;
      rotors_.emplace_back(std::cos(phi), std::sin(phi));
    }
  }

  [[nodiscard]] int size() const { return narrow_cast<int>(rotors_.size()); }

  /// max_k Re(rotor_k * c): a cheap lower bound on |c| that stays within
  /// cos(pi/K) of it for any phase of `c`.
  [[nodiscard]] double score(sig::Complex c) const {
    double best = rotors_[0].real() * c.real() - rotors_[0].imag() * c.imag();
    for (std::size_t k = 1; k < rotors_.size(); ++k) {
      const double s = rotors_[k].real() * c.real() - rotors_[k].imag() * c.imag();
      if (s > best) best = s;
    }
    return best;
  }

  /// Index of the winning hypothesis (phi = 2 pi k / K).
  [[nodiscard]] int best_hypothesis(sig::Complex c) const {
    int best = 0;
    double best_s = rotors_[0].real() * c.real() - rotors_[0].imag() * c.imag();
    for (std::size_t k = 1; k < rotors_.size(); ++k) {
      const double s = rotors_[k].real() * c.real() - rotors_[k].imag() * c.imag();
      if (s > best_s) {
        best_s = s;
        best = narrow_cast<int>(k);
      }
    }
    return best;
  }

 private:
  std::vector<sig::Complex> rotors_;
};

}  // namespace rt::stream
