// Bank of phase-hypothesis matched filters for the continuous preamble
// scan (after FiendChain's DAB PreambleDetector: K rotors e^{j phi_k}
// spread over the circle, statistic max_k Re(rotor_k * c)).
//
// The scan statistic must be rotation-invariant -- an uncorrected
// polarization roll rotates the whole complex correlation -- but |c| per
// alignment costs a sqrt. Projecting onto K phase hypotheses and taking
// the max underestimates |c| by at most a factor cos(pi/K) (0.98 for
// K = 8), which a fixed detection gate absorbs, and additionally reports
// WHICH hypothesis won -- a coarse roll estimate for telemetry.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "kernels/kernels.h"
#include "signal/waveform.h"

namespace rt::stream {

class PhaseBank {
 public:
  explicit PhaseBank(int hypotheses) {
    RT_ENSURE(hypotheses >= 1 && hypotheses <= 64, "phase hypothesis count out of range");
    // Rotors are stored as split planes (SoA) so the per-alignment score
    // is one branch-free kernel sweep over contiguous doubles.
    rotors_re_.reserve(static_cast<std::size_t>(hypotheses));
    rotors_im_.reserve(static_cast<std::size_t>(hypotheses));
    for (int k = 0; k < hypotheses; ++k) {
      const double phi = 2.0 * std::numbers::pi * k / hypotheses;
      rotors_re_.push_back(std::cos(phi));
      rotors_im_.push_back(std::sin(phi));
    }
  }

  [[nodiscard]] int size() const { return narrow_cast<int>(rotors_re_.size()); }

  /// max_k Re(rotor_k * c): a cheap lower bound on |c| that stays within
  /// cos(pi/K) of it for any phase of `c`.
  [[nodiscard]] double score(sig::Complex c) const {
    return kernels::phase_score_max(rotors_re_.size(), rotors_re_.data(), rotors_im_.data(),
                                    c.real(), c.imag());
  }

  /// Index of the winning hypothesis (phi = 2 pi k / K). Cold path (once
  /// per detection, for telemetry), so it stays a plain scalar argmax.
  [[nodiscard]] int best_hypothesis(sig::Complex c) const {
    int best = 0;
    double best_s = rotors_re_[0] * c.real() - rotors_im_[0] * c.imag();
    for (std::size_t k = 1; k < rotors_re_.size(); ++k) {
      const double s = rotors_re_[k] * c.real() - rotors_im_[k] * c.imag();
      if (s > best_s) {
        best_s = s;
        best = narrow_cast<int>(k);
      }
    }
    return best;
  }

 private:
  std::vector<double> rotors_re_;
  std::vector<double> rotors_im_;
};

}  // namespace rt::stream
