// Fixed-capacity IQ sample ring addressed by absolute stream indices.
//
// The streaming receiver's only sample store: capacity is fixed at
// construction, append() never reallocates, and every sample keeps its
// absolute index within the unbounded input stream. Addressing the ring
// by absolute index (not by buffer offset) is what makes the receiver's
// state machine chunk-size invariant -- a decision taken "at sample t"
// means the same thing no matter how the stream was sliced into pushes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "signal/waveform.h"

namespace rt::stream {

class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity) : buf_(capacity) {
    RT_ENSURE(capacity >= 1, "sample ring needs a non-zero capacity");
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t free_space() const { return buf_.size() - size_; }

  /// Absolute index of the oldest retained sample.
  [[nodiscard]] std::uint64_t abs_begin() const { return begin_abs_; }
  /// One past the absolute index of the newest sample (= total pushed,
  /// counting discarded history).
  [[nodiscard]] std::uint64_t abs_end() const { return begin_abs_ + size_; }

  /// Appends samples; the caller must have checked free_space().
  void append(std::span<const sig::Complex> chunk) {
    RT_ENSURE(chunk.size() <= free_space(), "sample ring overflow");
    std::size_t w = offset_of(abs_end());
    for (const auto& s : chunk) {
      buf_[w] = s;
      w = w + 1 == buf_.size() ? 0 : w + 1;
    }
    size_ += chunk.size();
  }

  /// Drops every sample with absolute index < `abs` (clamped to the
  /// retained range; discarding ahead of abs_end() is a bug upstream).
  void discard_to(std::uint64_t abs) {
    if (abs <= begin_abs_) return;
    RT_ENSURE(abs <= abs_end(), "cannot discard samples that were never pushed");
    const auto n = static_cast<std::size_t>(abs - begin_abs_);
    head_off_ = (head_off_ + n) % buf_.size();
    begin_abs_ = abs;
    size_ -= n;
  }

  [[nodiscard]] const sig::Complex& at(std::uint64_t abs) const {
    RT_ASSERT(abs >= begin_abs_ && abs < abs_end());
    return buf_[offset_of(abs)];
  }

  /// Copies `out.size()` retained samples starting at absolute index
  /// `abs_first` into a contiguous caller buffer (handles wraparound).
  void copy_out(std::uint64_t abs_first, std::span<sig::Complex> out) const {
    RT_ENSURE(abs_first >= begin_abs_ && abs_first + out.size() <= abs_end(),
              "sample ring copy_out range outside the retained window");
    std::size_t r = offset_of(abs_first);
    std::size_t copied = 0;
    while (copied < out.size()) {
      const std::size_t run = std::min(out.size() - copied, buf_.size() - r);
      std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(r), run,
                  out.begin() + static_cast<std::ptrdiff_t>(copied));
      copied += run;
      r = 0;
    }
  }

 private:
  [[nodiscard]] std::size_t offset_of(std::uint64_t abs) const {
    return static_cast<std::size_t>((head_off_ + (abs - begin_abs_)) % buf_.size());
  }

  std::vector<sig::Complex> buf_;
  std::uint64_t begin_abs_ = 0;  ///< absolute index of buf_[head_off_]
  std::size_t size_ = 0;
  std::size_t head_off_ = 0;     ///< physical offset of the oldest sample
};

}  // namespace rt::stream
