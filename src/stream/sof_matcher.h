// Bit-error-tolerant soft start-of-frame check (after openstint's
// preamble_pos scan: per-slot decisions packed into words, XOR against
// the expected pattern, accept while popcount stays under a mismatch
// budget).
//
// The matched-filter gate alone can fire on structured garbage whose
// correlation accidentally crosses the threshold. Before committing a
// full decode window, the streaming receiver re-reads the candidate
// preamble as per-slot binary decisions and demands that they agree with
// the offline reference up to `max_bit_errors` slots -- tolerant of noise
// flipping individual slots, but a hard wall against windows with the
// wrong structure.
//
// The decision statistic is the slot's mean absolute deviation from the
// window mean: invariant to DC offset (relaxed-pixel baseline), rotation
// (uncorrected roll) and -- through the self-calibrating threshold --
// overall scale. The expected pattern is computed from the REFERENCE
// waveform with the same statistic, not from the raw firing bits: the LC
// charge/discharge dynamics decouple per-slot amplitude from the firing
// pattern, but a true window is a scaled/rotated/shifted copy of the
// reference (plus noise), so it reproduces the reference's own decisions.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "phy/params.h"
#include "signal/waveform.h"

namespace rt::stream {

class SofMatcher {
 public:
  /// `reference` is the offline preamble reference (at least the
  /// preamble body, preamble_slots * samples_per_slot samples).
  SofMatcher(const phy::PhyParams& params, std::span<const sig::Complex> reference)
      : spslot_(params.samples_per_slot()),
        slots_(static_cast<std::size_t>(params.preamble_slots)),
        slot_stat_(slots_, 0.0),
        observed_((slots_ + 63) / 64, 0) {
    RT_ENSURE(reference.size() >= window_samples(),
              "SOF matcher needs the full preamble body of the reference");
    expected_.assign(observed_.size(), 0);
    decide(reference, expected_);
  }

  /// Samples covered by the decision window (the preamble body; the
  /// reference's DSM discharge tail is not part of the decision).
  [[nodiscard]] std::size_t window_samples() const { return slots_ * spslot_; }

  /// Number of slot decisions disagreeing with the reference's for a
  /// candidate window starting at preamble slot 0. `window` must cover
  /// window_samples(). Zero-allocation: scratch is owned by the matcher.
  [[nodiscard]] int mismatches(std::span<const sig::Complex> window) {
    decide(window, observed_);
    int bad = 0;
    for (std::size_t w = 0; w < expected_.size(); ++w)
      bad += std::popcount(observed_[w] ^ expected_[w]);
    return bad;
  }

 private:
  /// Computes the per-slot statistic over `window` into slot_stat_ and
  /// packs the above-threshold decisions into `out` (one bit per slot).
  void decide(std::span<const sig::Complex> window, std::vector<std::uint64_t>& out) {
    RT_ENSURE(window.size() >= window_samples(), "SOF window shorter than the preamble");
    sig::Complex mean{};
    const std::size_t n = window_samples();
    for (std::size_t i = 0; i < n; ++i) mean += window[i];
    mean /= static_cast<double>(n);
    for (std::size_t s = 0; s < slots_; ++s) {
      double acc = 0.0;
      for (std::size_t i = 0; i < spslot_; ++i) acc += std::abs(window[s * spslot_ + i] - mean);
      slot_stat_[s] = acc / static_cast<double>(spslot_);
    }
    const double thr = threshold();
    for (auto& w : out) w = 0;
    for (std::size_t s = 0; s < slots_; ++s)
      if (slot_stat_[s] > thr) out[s / 64] |= std::uint64_t{1} << (s % 64);
  }

  /// Self-calibrating decision threshold: halfway between the quietest
  /// and loudest slot of the current slot_stat_, so absolute signal
  /// scale never matters.
  [[nodiscard]] double threshold() const {
    double lo = slot_stat_[0];
    double hi = slot_stat_[0];
    for (const double v : slot_stat_) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    return 0.5 * (lo + hi);
  }

  std::size_t spslot_;
  std::size_t slots_;
  std::vector<std::uint64_t> expected_;  ///< packed reference slot decisions
  std::vector<double> slot_stat_;        ///< per-slot scratch, sized at construction
  std::vector<std::uint64_t> observed_;  ///< packed decision scratch
};

}  // namespace rt::stream
