// Scenario builder: concatenates LinkSimulator packet waveforms into one
// continuous stream with configurable inter-frame material, plus the
// ground truth needed to judge a streaming receiver against it.
//
// Packet waveforms come from LinkSimulator::render_packet_rx -- the exact
// TX -> channel samples run_packet() demodulates -- so a streaming decode
// of the concatenation can be compared bit for bit against the
// packet-at-a-time path. Gaps are rendered through the same channel
// realization: kNoise renders the idle tag (baseline + AWGN), kGarbage
// renders random tag firings (signal-level energy with non-preamble
// structure, the false-alarm stressor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "signal/waveform.h"
#include "sim/link_sim.h"

namespace rt::stream {

struct StreamScenario {
  int packets = 4;
  std::size_t payload_bytes = 16;
  enum class Gap {
    kNone,     ///< packets butt up back to back
    kNoise,    ///< idle channel: baseline + AWGN
    kGarbage,  ///< random tag firings: energy without preamble structure
  };
  Gap gap = Gap::kNoise;
  int gap_slots = 8;      ///< inter-packet gap length in slots
  int lead_in_slots = 4;  ///< gap material before the first packet
  int tail_slots = 8;     ///< gap material after the last packet
  std::uint64_t gap_seed = 7;  ///< noise/firing streams for the gaps
};

/// Ground truth for one frame inside the stream.
struct FrameTruth {
  std::uint64_t start_sample = 0;    ///< nominal preamble start (padding included)
  std::uint64_t packet_offset = 0;   ///< where the packet waveform begins (before padding)
  std::size_t payload_bits = 0;
  std::size_t first_payload_bit = 0; ///< offset into StreamTruth::payload_bits
};

struct StreamTruth {
  sig::IqWaveform waveform;               ///< the concatenated stream
  std::vector<FrameTruth> frames;
  std::vector<std::uint8_t> payload_bits; ///< concatenated ground-truth bits
  int payload_slots = 0;                  ///< frame geometry for StreamOptions
};

/// Renders the scenario into one waveform + truth record. Deterministic:
/// a pure function of (simulator seeds, scenario).
[[nodiscard]] StreamTruth build_stream(const sim::LinkSimulator& sim,
                                       const StreamScenario& scenario);

}  // namespace rt::stream
