// RetroTurbo public API.
//
// One-stop facade over the full stack: pick a rate preset (or custom PHY
// parameters), describe the deployment (distance, orientation, ambient
// light), and move bytes across the simulated visible-light backscatter
// link exactly as the SIGCOMM'20 system would -- DSM-PQAM modulation on a
// liquid-crystal pixel array, preamble rotation correction, two-stage
// channel training and K-branch DFE demodulation at the reader.
//
//   retroturbo::LinkConfig cfg;
//   cfg.rate = retroturbo::RatePreset::k8kbps;
//   cfg.distance_m = 5.0;
//   retroturbo::Link link(cfg);
//   auto result = link.send_bytes(payload);
//
// Lower layers remain fully accessible (rt::phy, rt::lcm, rt::sim, ...)
// for research use; this header is the adopter entry point.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"
#include "fleet/campaign.h"
#include "fleet/collision.h"
#include "mac/arq.h"
#include "mac/frame.h"
#include "mac/mac_link.h"
#include "mac/rate_table.h"
#include "sim/link_sim.h"
#include "stream/sim_source.h"
#include "stream/source.h"
#include "stream/streaming_receiver.h"

namespace retroturbo {

/// Library version.
[[nodiscard]] inline std::string version() { return "1.0.0"; }

/// The paper's operating points (Tab. 3 / Fig. 18a).
enum class RatePreset { k1kbps, k4kbps, k8kbps, k16kbps, k32kbps };

[[nodiscard]] inline rt::phy::PhyParams phy_params_for(RatePreset preset) {
  switch (preset) {
    case RatePreset::k1kbps:
      return rt::phy::PhyParams::rate_1kbps();
    case RatePreset::k4kbps:
      return rt::phy::PhyParams::rate_4kbps();
    case RatePreset::k8kbps:
      return rt::phy::PhyParams::rate_8kbps();
    case RatePreset::k16kbps:
      return rt::phy::PhyParams::rate_16kbps();
    case RatePreset::k32kbps:
      return rt::phy::PhyParams::rate_32kbps();
  }
  throw rt::PreconditionError("unknown rate preset");
}

struct LinkConfig {
  RatePreset rate = RatePreset::k8kbps;
  /// Full PHY control when the presets are not enough (overrides `rate`).
  std::optional<rt::phy::PhyParams> custom_phy;

  // Deployment geometry and environment.
  double distance_m = 2.0;
  double roll_deg = 0.0;
  double yaw_deg = 0.0;
  double ambient_lux = 200.0;
  /// Direct SNR control for emulation studies (bypasses the link budget).
  std::optional<double> snr_override_db;

  // Tag hardware realism.
  double pixel_gain_spread = 0.03;
  double pixel_timing_spread = 0.02;
  double polarizer_error_deg = 1.0;

  /// Optional Reed-Solomon outer code (n, k); {0, 0} = uncoded.
  std::size_t rs_n = 0;
  std::size_t rs_k = 0;
  int max_retransmissions = 4;

  std::uint64_t seed = 1;
};

struct TransferResult {
  bool delivered = false;
  int attempts = 0;
  std::vector<std::uint8_t> received;  ///< payload as decoded at the reader
};

/// A point-to-point RetroTurbo uplink (tag -> reader) with MAC framing,
/// optional RS coding and stop-and-wait retransmission.
class Link {
 public:
  explicit Link(const LinkConfig& config)
      : cfg_(config),
        sim_(make_phy(config), make_tag(config), make_channel(config), make_sim_options(config)),
        mac_(sim_, config.rs_n > 0
                       ? std::optional<rt::coding::ReedSolomon>(
                             rt::coding::ReedSolomon(config.rs_n, config.rs_k))
                       : std::nullopt) {}

  /// Sends `payload` as one MAC frame; retransmits on CRC failure.
  [[nodiscard]] TransferResult send_bytes(std::span<const std::uint8_t> payload) {
    rt::mac::MacFrame frame;
    frame.tag_id = 1;
    frame.seq = seq_++;
    frame.payload.assign(payload.begin(), payload.end());
    const auto r = mac_.send(frame, rt::mac::StopAndWaitArq(cfg_.max_retransmissions));
    TransferResult out;
    out.delivered = r.delivered;
    out.attempts = r.attempts;
    if (r.received) out.received = r.received->payload;
    return out;
  }

  /// Raw-PHY BER measurement (the paper's 30-packet methodology).
  [[nodiscard]] rt::sim::LinkStats measure_ber(int packets = 30,
                                               std::size_t payload_bytes = 128) {
    return sim_.run(packets, payload_bytes);
  }

  [[nodiscard]] double snr_db() const { return sim_.snr_db(); }
  [[nodiscard]] double data_rate_bps() const { return sim_.params().data_rate_bps(); }
  [[nodiscard]] const rt::phy::PhyParams& phy() const { return sim_.params(); }
  [[nodiscard]] rt::sim::LinkSimulator& simulator() { return sim_; }

 private:
  [[nodiscard]] static rt::phy::PhyParams make_phy(const LinkConfig& c) {
    return c.custom_phy ? *c.custom_phy : phy_params_for(c.rate);
  }

  [[nodiscard]] static rt::lcm::TagConfig make_tag(const LinkConfig& c) {
    auto tag = make_phy(c).tag_config();
    tag.heterogeneity = {c.pixel_gain_spread, c.pixel_timing_spread,
                         rt::deg_to_rad(c.polarizer_error_deg)};
    tag.seed = c.seed;
    return tag;
  }

  [[nodiscard]] static rt::sim::ChannelConfig make_channel(const LinkConfig& c) {
    rt::sim::ChannelConfig ch;
    ch.pose.distance_m = c.distance_m;
    ch.pose.roll_rad = rt::deg_to_rad(c.roll_deg);
    ch.pose.yaw_rad = rt::deg_to_rad(c.yaw_deg);
    ch.ambient.illuminance_lux = c.ambient_lux;
    ch.snr_override_db = c.snr_override_db;
    ch.noise_seed = c.seed + 0x9E3779B9ULL;
    return ch;
  }

  [[nodiscard]] static rt::sim::SimOptions make_sim_options(const LinkConfig& c) {
    rt::sim::SimOptions o;
    o.seed = c.seed + 0x85EBCA6BULL;
    return o;
  }

  LinkConfig cfg_;
  rt::sim::LinkSimulator sim_;
  rt::mac::MacLink mac_;
  std::uint8_t seq_ = 0;
};

}  // namespace retroturbo
