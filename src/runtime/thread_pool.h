// Minimal fixed-size thread pool for the parallel sweep engine.
//
// Deliberately small: one FIFO queue, std::future results, exceptions
// propagated through std::packaged_task. Determinism is NOT the pool's
// job -- tasks built on counter-based RNG streams (rt::split_seed) are
// order-independent by construction, so the pool only has to execute
// every task exactly once.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::runtime {

/// Hardware concurrency with a floor of 1 (hardware_concurrency may
/// report 0 on exotic platforms).
[[nodiscard]] unsigned hardware_threads();

/// Worker count for sweep-style work: the RT_BENCH_THREADS environment
/// knob when set (clamped to >= 1), else hardware_threads().
[[nodiscard]] unsigned sweep_threads();

class ThreadPool {
 public:
  /// Spawns `threads` workers (floored to 1).
  explicit ThreadPool(unsigned threads = sweep_threads());

  /// Drains all queued work, then joins the workers: every future handed
  /// out by submit() is ready after destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return narrow_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. A task that
  /// throws stores the exception in the future (rethrown at get()).
  /// Submitting from inside a running task is allowed and cannot
  /// deadlock: workers never hold the queue lock while executing.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      RT_ENSURE(!stopping_, "submit() on a ThreadPool that is shutting down");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rt::runtime
