// Parallel BER-sweep engine: fans sweep points and per-point packet
// batches across a thread pool with bit-identical results at any thread
// count.
//
// Determinism contract: LinkSimulator::run_packet(p) is a pure function
// of (sim seed, channel noise seed, p) via counter-based RNG splitting
// (rt::split_seed), and LinkStats::merge is an associative/commutative
// sum -- so any partition of {0..packets-1} over any number of workers
// merges to exactly the stats of the serial LinkSimulator::run loop.
#pragma once

#include <span>
#include <vector>

#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "sim/link_sim.h"

namespace rt::runtime {

/// One BER point: a full link configuration. `sim.seed` is the per-point
/// base seed and `channel.noise_seed` the per-point noise seed; benches
/// typically derive them with rt::split_seed(base_seed, point_index).
struct SweepPoint {
  phy::PhyParams params;
  lcm::TagConfig tag;
  sim::ChannelConfig channel;
  sim::SimOptions sim;
};

struct SweepOptions {
  int packets = 10;             ///< packets per point (RT_BENCH_PACKETS)
  std::size_t payload_bytes = 32;  ///< payload per packet (RT_BENCH_PAYLOAD)
  unsigned threads = 0;         ///< worker count; 0 = sweep_threads()
  int batch_packets = 1;        ///< packets per task (load-balance grain)
};

struct SweepResult {
  std::vector<sim::LinkStats> stats;  ///< per point, in input order
  double wall_s = 0.0;                ///< wall-clock time of the sweep
  unsigned threads = 1;               ///< workers actually used

  // Observability (populated only when built with RT_OBS=ON; empty
  // otherwise). Each batch task records into its worker's recorder and
  // returns a snapshot with its stats; the snapshots are merged here.
  // Data-derived metrics are bit-identical at any thread count (the
  // LinkStats::merge discipline); timing samples (queue_wait_us, span
  // durations) are wall-clock and vary run to run.
  obs::MetricsRegistry metrics;
  std::vector<obs::SpanRecord> trace;  ///< all batch spans, submission order
};

/// Runs every point on a private pool of `options.threads` workers.
[[nodiscard]] SweepResult parallel_sweep(std::span<const SweepPoint> points,
                                         const SweepOptions& options = {});

/// Same, on a caller-owned pool (reused across sweeps).
[[nodiscard]] SweepResult parallel_sweep(std::span<const SweepPoint> points,
                                         const SweepOptions& options, ThreadPool& pool);

}  // namespace rt::runtime
