// Deterministic batch fan-out: the sweep engine's merge discipline as a
// reusable primitive.
//
// parallel_sweep (runtime/sweep.cpp) established the pattern every
// campaign in this codebase follows: tasks built on disjoint
// rt::split_seed slots write their data into pre-sized shared state (so
// results are bit-identical at any thread count), and each task's
// observability snapshot is merged in *submission* order (so the merged
// registry and trace are too). This header factors that discipline out
// of the sweep engine so higher layers (mac::run_closed_loop_study's
// descendants, fleet::run_fleet_campaign) can fan work out without
// re-implementing the recorder scoping and merge rules.
#pragma once

#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace rt::runtime {

/// One task's observability snapshot: empty unless RT_OBS=ON. Merging is
/// associative (integer sums + append), so merging snapshots in
/// submission order yields the same registry and trace regardless of
/// which worker ran which task.
struct BatchObs {
  obs::MetricsRegistry metrics;
  std::vector<obs::SpanRecord> spans;

  BatchObs& merge(const BatchObs& o) {
    metrics.merge(o.metrics);
    spans.insert(spans.end(), o.spans.begin(), o.spans.end());
    return *this;
  }
};

/// Runs `work` inside a per-batch recording scope: the calling worker's
/// thread-local recorder is cleared, bound, and snapshotted after `work`
/// returns -- so the snapshot covers exactly this batch, making the
/// merged result independent of which worker ran which batch (the same
/// scoping parallel_sweep applies around each packet batch).
template <typename Work>
[[nodiscard]] BatchObs record_batch(Work&& work) {
  static thread_local obs::Recorder rec;
  rec.clear();
  BatchObs out;
  {
    const obs::ScopedBind bind(rec);
    std::forward<Work>(work)();
  }
#if RT_OBS_ENABLED
  out.metrics = rec.metrics;
  const auto spans = rec.trace.spans();
  out.spans.assign(spans.begin(), spans.end());
#endif
  return out;
}

/// Executes every task exactly once and merges their snapshots in
/// submission order. `threads <= 1` runs the tasks inline, in order, on
/// the calling thread -- no pool, no futures -- which is the serial
/// reference the determinism tests compare against. Tasks must follow
/// the sweep contract: all data writes go to disjoint pre-sized slots,
/// all randomness comes from split_seed streams keyed by task indices.
[[nodiscard]] inline BatchObs run_deterministic_batches(
    std::vector<std::function<BatchObs()>> tasks, unsigned threads) {
  BatchObs merged;
  if (threads <= 1) {
    for (auto& task : tasks) merged.merge(task());
    return merged;
  }
  ThreadPool pool(threads);
  std::vector<std::future<BatchObs>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) futures.push_back(pool.submit(std::move(task)));
  for (auto& f : futures) merged.merge(f.get());
  return merged;
}

}  // namespace rt::runtime
