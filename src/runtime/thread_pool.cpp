// rt-lint: no-preconditions (the ctor floors bad thread counts by design;
// submit()'s RT_ENSURE lives in the header)
#include "runtime/thread_pool.h"

#include <cstdlib>

namespace rt::runtime {

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1U : n;
}

unsigned sweep_threads() {
  // rt-check: determinism-ok (thread-count knob only; sweep results are bit-identical at any thread count)
  const char* v = std::getenv("RT_BENCH_THREADS");
  if (v == nullptr || *v == '\0') return hardware_threads();
  const int n = std::atoi(v);
  return n < 1 ? 1U : narrow_cast<unsigned>(n);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1U : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rt::runtime
