#include "runtime/sweep.h"

#include <chrono>
#include <memory>

namespace rt::runtime {

namespace {

// rt-check: determinism-ok (queue-wait telemetry only; spans and metrics never feed results)
using Clock = std::chrono::steady_clock;

}  // namespace

SweepResult parallel_sweep(std::span<const SweepPoint> points, const SweepOptions& options) {
  ThreadPool pool(options.threads == 0 ? sweep_threads() : options.threads);
  return parallel_sweep(points, options, pool);
}

SweepResult parallel_sweep(std::span<const SweepPoint> points, const SweepOptions& options,
                           ThreadPool& pool) {
  RT_ENSURE(options.packets >= 1, "sweeps need at least one packet per point");
  RT_ENSURE(options.payload_bytes >= 1, "sweeps need at least one payload byte");
  const auto start = Clock::now();

  SweepResult result;
  result.threads = pool.size();
  if (points.empty()) return result;

  // Phase 1: construct one simulator per point, in parallel. Construction
  // runs the offline training when no shared model is provided, which can
  // dominate a short sweep.
  std::vector<std::future<std::shared_ptr<sim::LinkSimulator>>> sim_futures;
  sim_futures.reserve(points.size());
  for (const SweepPoint& point : points) {
    sim_futures.push_back(pool.submit([&point] {
      return std::make_shared<sim::LinkSimulator>(point.params, point.tag, point.channel,
                                                  point.sim);
    }));
  }
  std::vector<std::shared_ptr<sim::LinkSimulator>> sims;
  sims.reserve(points.size());
  for (auto& f : sim_futures) sims.push_back(f.get());

  // Phase 2: fan per-point packet batches out as flat (point, batch)
  // tasks. No nesting: tasks never wait on other tasks, so the engine
  // cannot deadlock regardless of pool size.
  const int batch = options.batch_packets < 1 ? 1 : options.batch_packets;
  const std::size_t payload = options.payload_bytes;
  struct BatchOut {
    sim::LinkStats stats;
    obs::MetricsRegistry metrics;       // empty unless RT_OBS=ON
    std::vector<obs::SpanRecord> spans;  // empty unless RT_OBS=ON
  };
  struct Batch {
    std::size_t point;
    std::future<BatchOut> out;
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (int begin = 0; begin < options.packets; begin += batch) {
      const int end = std::min(begin + batch, options.packets);
      // Submit timestamp for the queue-wait metric (observability builds).
      const std::int64_t submit_ns = obs::kEnabled ? obs::now_ns() : 0;
      auto task = [sim = sims[i], begin, end, payload, submit_ns] {
        // One packet workspace per worker thread, reused across batches
        // and sweeps: the packet pipeline stays allocation-free in steady
        // state, and run_packet's outcome is independent of workspace
        // history, so parallel results remain bit-identical to serial.
        static thread_local sim::PacketWorkspace ws;
        BatchOut out;
        {
          // Per-batch recording scope: the recorder is cleared so the
          // snapshot below covers exactly this batch, making the merged
          // result independent of which worker ran which batch.
          ws.obs.clear();
          const obs::ScopedBind obs_bind(ws.obs);
          RT_TRACE_SPAN("sweep_batch");
          RT_OBS_COUNT(kSweepBatches, 1);
          if constexpr (obs::kEnabled)
            RT_OBS_OBSERVE(kQueueWaitUs,
                           static_cast<double>(obs::now_ns() - submit_ns) / 1e3);
          for (int p = begin; p < end; ++p) {
            const auto outcome = sim->run_packet(static_cast<std::uint64_t>(p), payload, ws);
            ++out.stats.packets;
            if (!outcome.preamble_found) ++out.stats.preamble_failures;
            out.stats.bit_errors += outcome.bit_errors;
            out.stats.total_bits += outcome.bits;
          }
        }  // the sweep_batch span closes here, before the snapshot
#if RT_OBS_ENABLED
        out.metrics = ws.obs.metrics;
        const auto spans = ws.obs.trace.spans();
        out.spans.assign(spans.begin(), spans.end());
#endif
        return out;
      };
      batches.push_back({i, pool.submit(std::move(task))});
    }
  }

  // Merge batches. LinkStats::merge and MetricsRegistry::merge are
  // associative/commutative sums, so the merge order is immaterial --
  // collecting in submission order keeps the code obvious (and gives the
  // trace a stable batch order).
  result.stats.resize(points.size());
  for (auto& b : batches) {
    auto out = b.out.get();
    result.stats[b.point].merge(out.stats);
    if constexpr (obs::kEnabled) {
      result.metrics.merge(out.metrics);
      result.trace.insert(result.trace.end(), out.spans.begin(), out.spans.end());
    }
  }

  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace rt::runtime
