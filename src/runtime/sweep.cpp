#include "runtime/sweep.h"

#include <chrono>
#include <memory>

namespace rt::runtime {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

SweepResult parallel_sweep(std::span<const SweepPoint> points, const SweepOptions& options) {
  ThreadPool pool(options.threads == 0 ? sweep_threads() : options.threads);
  return parallel_sweep(points, options, pool);
}

SweepResult parallel_sweep(std::span<const SweepPoint> points, const SweepOptions& options,
                           ThreadPool& pool) {
  RT_ENSURE(options.packets >= 1, "sweeps need at least one packet per point");
  RT_ENSURE(options.payload_bytes >= 1, "sweeps need at least one payload byte");
  const auto start = Clock::now();

  SweepResult result;
  result.threads = pool.size();
  if (points.empty()) return result;

  // Phase 1: construct one simulator per point, in parallel. Construction
  // runs the offline training when no shared model is provided, which can
  // dominate a short sweep.
  std::vector<std::future<std::shared_ptr<sim::LinkSimulator>>> sim_futures;
  sim_futures.reserve(points.size());
  for (const SweepPoint& point : points) {
    sim_futures.push_back(pool.submit([&point] {
      return std::make_shared<sim::LinkSimulator>(point.params, point.tag, point.channel,
                                                  point.sim);
    }));
  }
  std::vector<std::shared_ptr<sim::LinkSimulator>> sims;
  sims.reserve(points.size());
  for (auto& f : sim_futures) sims.push_back(f.get());

  // Phase 2: fan per-point packet batches out as flat (point, batch)
  // tasks. No nesting: tasks never wait on other tasks, so the engine
  // cannot deadlock regardless of pool size.
  const int batch = options.batch_packets < 1 ? 1 : options.batch_packets;
  const std::size_t payload = options.payload_bytes;
  struct Batch {
    std::size_t point;
    std::future<sim::LinkStats> stats;
  };
  std::vector<Batch> batches;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (int begin = 0; begin < options.packets; begin += batch) {
      const int end = std::min(begin + batch, options.packets);
      auto task = [sim = sims[i], begin, end, payload] {
        // One packet workspace per worker thread, reused across batches
        // and sweeps: the packet pipeline stays allocation-free in steady
        // state, and run_packet's outcome is independent of workspace
        // history, so parallel results remain bit-identical to serial.
        static thread_local sim::PacketWorkspace ws;
        sim::LinkStats stats;
        for (int p = begin; p < end; ++p) {
          const auto outcome = sim->run_packet(static_cast<std::uint64_t>(p), payload, ws);
          ++stats.packets;
          if (!outcome.preamble_found) ++stats.preamble_failures;
          stats.bit_errors += outcome.bit_errors;
          stats.total_bits += outcome.bits;
        }
        return stats;
      };
      batches.push_back({i, pool.submit(std::move(task))});
    }
  }

  // Merge batches. LinkStats::merge is a plain sum, so the merge order is
  // immaterial -- collecting in submission order keeps the code obvious.
  result.stats.resize(points.size());
  for (auto& b : batches) result.stats[b.point].merge(b.stats.get());

  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace rt::runtime
