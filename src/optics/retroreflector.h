// Retroreflector substrate model (3M 8912-style retroreflective fabric).
//
// The retroreflector returns incident light toward its source within a
// narrow cone, which is what lets a sub-mW tag reach metres of range. We
// model its contribution as a gain applied once in the link budget plus a
// yaw-dependent efficiency roll-off; the sharp angular cut-off is why the
// reader must sit near the illumination axis.
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace rt::optics {

struct Retroreflector {
  double area_cm2 = 66.0;        ///< prototype: 66 cm^2 of fabric
  double efficiency = 0.7;       ///< fraction of incident light returned on-axis
  double cone_half_angle_deg = 1.5;  ///< observation-angle half width

  /// Relative returned intensity when the tag surface is yawed by
  /// `yaw_rad` from squarely facing the reader. Projection shrinks the
  /// effective area; microprism efficiency also degrades with entrance
  /// angle (modelled as an additional cosine power).
  [[nodiscard]] double gain(double yaw_rad = 0.0) const {
    const double c = std::cos(yaw_rad);
    RT_ENSURE(c > 1e-6, "yaw must be within +-90deg");
    return efficiency * area_cm2 * c * c;  // area projection both ways
  }
};

}  // namespace rt::optics
