// Stokes-vector / Mueller-matrix polarization calculus.
//
// The PHY fast path models polarization with the scalar channel
// coefficient cos 2(theta_t - theta_r). This module provides the full
// incoherent-light formalism -- Stokes 4-vectors and Mueller matrices for
// polarizers, rotators, partial depolarizers and retarders -- used to
// *derive and verify* that shortcut (tests pin the two against each
// other), and available for extensions such as birefringent-film tags
// (PolarTag-style, see related work) or ellipticity studies of the LC
// mid-transition state.
//
// Conventions: S = (I, Q, U, V); linear polarization angle theta has
// Q = I cos 2theta, U = I sin 2theta; V is circular (unused by the LCM
// chain but carried for completeness).
#pragma once

#include <array>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace rt::optics {

struct Stokes {
  double i = 0.0;
  double q = 0.0;
  double u = 0.0;
  double v = 0.0;

  /// Fully linearly polarized light of the given intensity and angle.
  [[nodiscard]] static Stokes linear(double intensity, double angle_rad) {
    RT_ENSURE(intensity >= 0.0, "intensity cannot be negative");
    return {intensity, intensity * std::cos(2.0 * angle_rad),
            intensity * std::sin(2.0 * angle_rad), 0.0};
  }

  /// Unpolarized light.
  [[nodiscard]] static Stokes unpolarized(double intensity) {
    RT_ENSURE(intensity >= 0.0, "intensity cannot be negative");
    return {intensity, 0.0, 0.0, 0.0};
  }

  [[nodiscard]] double degree_of_polarization() const {
    if (i <= 0.0) return 0.0;
    return std::sqrt(q * q + u * u + v * v) / i;
  }

  /// Angle of the linear-polarized component.
  [[nodiscard]] double linear_angle_rad() const { return 0.5 * std::atan2(u, q); }

  [[nodiscard]] Stokes operator+(const Stokes& o) const {
    return {i + o.i, q + o.q, u + o.u, v + o.v};
  }
  [[nodiscard]] Stokes operator*(double s) const { return {i * s, q * s, u * s, v * s}; }
};

/// 4x4 Mueller matrix.
class Mueller {
 public:
  Mueller() { m_.fill({0.0, 0.0, 0.0, 0.0}); }

  [[nodiscard]] static Mueller identity() {
    Mueller m;
    for (int k = 0; k < 4; ++k) m.m_[k][k] = 1.0;
    return m;
  }

  /// Ideal linear polarizer at `angle_rad`.
  [[nodiscard]] static Mueller polarizer(double angle_rad) {
    const double c = std::cos(2.0 * angle_rad);
    const double s = std::sin(2.0 * angle_rad);
    Mueller m;
    m.m_ = {{{0.5, 0.5 * c, 0.5 * s, 0.0},
             {0.5 * c, 0.5 * c * c, 0.5 * c * s, 0.0},
             {0.5 * s, 0.5 * c * s, 0.5 * s * s, 0.0},
             {0.0, 0.0, 0.0, 0.0}}};
    return m;
  }

  /// Optical rotator by `angle_rad` (the fully-relaxed twisted-nematic
  /// cell is a 90deg rotator).
  [[nodiscard]] static Mueller rotator(double angle_rad) {
    const double c = std::cos(2.0 * angle_rad);
    const double s = std::sin(2.0 * angle_rad);
    Mueller m = identity();
    m.m_[1] = {0.0, c, -s, 0.0};
    m.m_[2] = {0.0, s, c, 0.0};
    return m;
  }

  /// Linear retarder with retardance delta and fast axis at `axis_rad`
  /// (quarter-wave plate: delta = pi/2) -- for birefringent-film
  /// extensions.
  [[nodiscard]] static Mueller retarder(double delta_rad, double axis_rad) {
    const double c = std::cos(2.0 * axis_rad);
    const double s = std::sin(2.0 * axis_rad);
    const double cd = std::cos(delta_rad);
    const double sd = std::sin(delta_rad);
    Mueller m = identity();
    m.m_[1] = {0.0, c * c + s * s * cd, c * s * (1.0 - cd), -s * sd};
    m.m_[2] = {0.0, c * s * (1.0 - cd), s * s + c * c * cd, c * sd};
    m.m_[3] = {0.0, s * sd, -c * sd, cd};
    return m;
  }

  /// Ideal partial depolarizer: keeps the polarized components scaled by
  /// `keep` in [0, 1].
  [[nodiscard]] static Mueller depolarizer(double keep) {
    RT_ENSURE(keep >= 0.0 && keep <= 1.0, "keep fraction must be in [0, 1]");
    Mueller m = identity();
    for (int k = 1; k < 4; ++k) m.m_[k][k] = keep;
    return m;
  }

  /// The mid-transition LC cell as an incoherent mixture: fraction c acts
  /// as identity (charged, no rotation), fraction (1-c) as a 90deg
  /// rotator -- the physical basis of the pixel model's (2c - 1) swing.
  [[nodiscard]] static Mueller lc_cell(double alignment_c) {
    RT_ENSURE(alignment_c >= 0.0 && alignment_c <= 1.0, "alignment must be in [0, 1]");
    return identity() * alignment_c + rotator(rt::deg_to_rad(90.0)) * (1.0 - alignment_c);
  }

  [[nodiscard]] Stokes operator*(const Stokes& s) const {
    const std::array<double, 4> in = {s.i, s.q, s.u, s.v};
    std::array<double, 4> out{};
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) out[r] += m_[r][c] * in[c];
    return {out[0], out[1], out[2], out[3]};
  }

  [[nodiscard]] Mueller operator*(const Mueller& o) const {
    Mueller out;
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c)
        for (int k = 0; k < 4; ++k) out.m_[r][c] += m_[r][k] * o.m_[k][c];
    return out;
  }

  [[nodiscard]] Mueller operator*(double s) const {
    Mueller out = *this;
    for (auto& row : out.m_)
      for (auto& v : row) v *= s;
    return out;
  }

  [[nodiscard]] Mueller operator+(const Mueller& o) const {
    Mueller out = *this;
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 4; ++c) out.m_[r][c] += o.m_[r][c];
    return out;
  }

  [[nodiscard]] double at(int r, int c) const {
    RT_ENSURE(r >= 0 && r < 4 && c >= 0 && c < 4, "index out of range");
    return m_[r][c];
  }

 private:
  std::array<std::array<double, 4>, 4> m_;
};

/// Detected intensity behind a polarizer at `angle_rad` -- what one
/// photodiode of the reader sees.
[[nodiscard]] inline double detect_through_polarizer(const Stokes& s, double angle_rad) {
  return (Mueller::polarizer(angle_rad) * s).i;
}

/// Polarization-differential (PDR) reading at receiver angle theta_r:
/// detect(theta_r) - detect(theta_r + 90deg) = Q' in the rotated frame.
[[nodiscard]] inline double pdr_reading(const Stokes& s, double theta_r_rad) {
  return detect_through_polarizer(s, theta_r_rad) -
         detect_through_polarizer(s, theta_r_rad + rt::deg_to_rad(90.0));
}

}  // namespace rt::optics
