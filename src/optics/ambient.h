// Ambient light model.
//
// Section 7.2.1 (Fig. 16d): ambient light photodetects to a DC current
// plus shot noise. The DC term is rejected by the 455 kHz band-pass
// receiver; the residual effect is a small shot-noise floor increase. The
// three experimental conditions are Day (1000 lux), Night (200 lux) and
// Dark (20 lux).
#pragma once

#include <cmath>

#include "common/error.h"

namespace rt::optics {

struct AmbientLight {
  double illuminance_lux = 200.0;  ///< paper default: office at night

  /// DC photocurrent component (arbitrary intensity units proportional to
  /// lux; the proportionality constant folds into the photodiode model).
  [[nodiscard]] double dc_intensity(double lux_to_intensity = 1e-3) const {
    RT_ENSURE(illuminance_lux >= 0.0, "illuminance cannot be negative");
    return illuminance_lux * lux_to_intensity;
  }

  /// Shot-noise standard deviation scales with the square root of the
  /// total detected optical power (Poisson statistics).
  [[nodiscard]] double shot_noise_sigma(double coefficient = 1e-4) const {
    return coefficient * std::sqrt(std::max(0.0, illuminance_lux));
  }

  [[nodiscard]] static AmbientLight day() { return {1000.0}; }
  [[nodiscard]] static AmbientLight night() { return {200.0}; }
  [[nodiscard]] static AmbientLight dark() { return {20.0}; }
};

}  // namespace rt::optics
