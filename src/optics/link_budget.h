// Retroreflective uplink SNR model.
//
// Section 4.4: the retroreflective uplink's path loss is far more
// deterministic than RF (little multipath), so SNR maps to distance by a
// fitted power law. We calibrate two presets against the paper's anchor
// points:
//  * NarrowBeam (+-10deg FoV, the section 7.2 experiments): through
//    (7.5 m, 28 dB) and (10.5 m, 20 dB) -- the Fig. 16a working ranges at
//    the 8 / 4 Kbps demodulation thresholds of Tab. 3.
//  * WideBeam (50deg FoV, the Fig. 18c rate-adaptation study): through
//    (1 m, 65 dB) and (4.3 m, 14 dB).
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace rt::optics {

/// SNR(d) = snr_ref_db - slope_db_per_decade * log10(d / ref_distance_m).
class LinkBudget {
 public:
  LinkBudget(double ref_distance_m, double snr_ref_db, double slope_db_per_decade)
      : ref_m_(ref_distance_m), snr_ref_db_(snr_ref_db), slope_(slope_db_per_decade) {
    RT_ENSURE(ref_distance_m > 0.0, "reference distance must be positive");
    RT_ENSURE(slope_db_per_decade > 0.0, "path-loss slope must be positive");
  }

  /// Fits the power law through two (distance, SNR) anchor points.
  [[nodiscard]] static LinkBudget fit(double d1_m, double snr1_db, double d2_m, double snr2_db) {
    RT_ENSURE(d1_m > 0.0 && d2_m > 0.0 && d1_m != d2_m, "need two distinct positive distances");
    const double slope = (snr1_db - snr2_db) / std::log10(d2_m / d1_m);
    return LinkBudget(d1_m, snr1_db, slope);
  }

  /// Preset for the +-10deg FoV prototype experiments (section 7.2).
  [[nodiscard]] static LinkBudget narrow_beam() { return fit(7.5, 28.0, 10.5, 20.0); }

  /// Preset for the 50deg FoV rate-adaptation emulation (Fig. 18c).
  [[nodiscard]] static LinkBudget wide_beam() { return fit(1.0, 65.0, 4.3, 14.0); }

  [[nodiscard]] double snr_db_at(double distance_m) const {
    RT_ENSURE(distance_m > 0.0, "distance must be positive");
    return snr_ref_db_ - slope_ * std::log10(distance_m / ref_m_);
  }

  /// Inverse mapping: distance at which the link drops to `snr_db`.
  [[nodiscard]] double distance_at_snr_db(double snr_db) const {
    return ref_m_ * std::pow(10.0, (snr_ref_db_ - snr_db) / slope_);
  }

  /// Extra SNR loss (dB) from yaw misalignment: the tag's projected area
  /// shrinks by cos(yaw) for illumination and again for retroreflection.
  [[nodiscard]] static double yaw_loss_db(double yaw_rad) {
    const double c = std::cos(yaw_rad);
    RT_ENSURE(c > 1e-6, "yaw must be within +-90deg");
    return -2.0 * 10.0 * std::log10(c);
  }

  [[nodiscard]] double slope_db_per_decade() const { return slope_; }

  friend bool operator==(const LinkBudget&, const LinkBudget&) = default;

 private:
  double ref_m_;
  double snr_ref_db_;
  double slope_;
};

}  // namespace rt::optics
