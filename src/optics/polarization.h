// Linear-polarization algebra for the PQAM channel model.
//
// Paper section 4.2.1: light leaving an LCM pixel is linearly polarized at
// the back-polarizer angle theta_t (charged) or theta_t + 90deg
// (discharged); a receiver behind a polarizer at theta_r sees, by Malus's
// law, intensity I0 cos^2(dtheta). A polarization-differential (PDR)
// receiver pair reports I0 cos(2 dtheta), which is the channel coefficient
// h_tr = cos 2(theta_t - theta_r) the whole PQAM construction builds on.
//
// The key representation trick (section 4.2.3): with one PDR pair at 0deg
// and one at 45deg, a transmitter polarized at angle theta contributes
// exp(j 2 theta) to the complex receiver sample -- I-LCMs (0deg) land on
// the real axis, Q-LCMs (45deg) on the imaginary axis, and a physical roll
// of dtheta rotates the constellation by exactly 2 dtheta.
#pragma once

#include <complex>

#include "common/units.h"

namespace rt::optics {

using Complex = std::complex<double>;

/// Partially linearly polarized light: total intensity, polarization angle
/// of the polarized component (radians), and the polarized fraction
/// (0 = unpolarized ambient light, 1 = ideal polarizer output).
struct LightState {
  double intensity = 0.0;
  double angle_rad = 0.0;
  double polarized_fraction = 1.0;
};

/// Malus's law: transmitted intensity of `in` through an ideal polarizer at
/// `polarizer_angle_rad`. The unpolarized component passes at 1/2.
[[nodiscard]] inline double malus_intensity(const LightState& in, double polarizer_angle_rad) {
  const double d = in.angle_rad - polarizer_angle_rad;
  const double polarized = in.intensity * in.polarized_fraction * std::cos(d) * std::cos(d);
  const double unpolarized = in.intensity * (1.0 - in.polarized_fraction) * 0.5;
  return polarized + unpolarized;
}

/// Passes light through an ideal polarizer, returning the new (fully
/// polarized) state.
[[nodiscard]] inline LightState polarize(const LightState& in, double polarizer_angle_rad) {
  return {malus_intensity(in, polarizer_angle_rad), polarizer_angle_rad, 1.0};
}

/// PQAM channel coefficient between a transmit polarization angle and a
/// polarization-differential receiver: h = cos 2(theta_t - theta_r).
[[nodiscard]] inline double channel_coefficient(double theta_t_rad, double theta_r_rad) {
  return std::cos(2.0 * (theta_t_rad - theta_r_rad));
}

/// Complex receiver response of the two-PDR reader (pairs at 0deg and
/// 45deg) to fully polarized light at `theta_rad` with unit intensity:
/// cos(2 theta) + j sin(2 theta) = exp(j 2 theta).
[[nodiscard]] inline Complex pdr_response(double theta_rad) {
  return std::polar(1.0, 2.0 * theta_rad);
}

/// Constellation rotation produced by a physical roll misalignment:
/// exp(j 2 droll). Multiplying every received sample by this models the
/// tag being rotated by `roll_rad` about the optical axis.
[[nodiscard]] inline Complex roll_rotation(double roll_rad) {
  return std::polar(1.0, 2.0 * roll_rad);
}

/// Orthogonality check used by tests and parameter validation: two
/// transmitter groups are an orthogonal PQAM basis iff their polarization
/// angles differ by 45deg (mod 90deg).
[[nodiscard]] inline double basis_inner_product(double theta_a_rad, double theta_b_rad) {
  return std::cos(2.0 * theta_a_rad) * std::cos(2.0 * theta_b_rad) +
         std::sin(2.0 * theta_a_rad) * std::sin(2.0 * theta_b_rad);
}

}  // namespace rt::optics
