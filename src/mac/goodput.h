// Goodput model: expected delivered data rate for a (rate, coding) option
// at a given SNR under stop-and-wait ARQ.
//
// BER model: raw BER follows a complementary-error-function waterfall
// calibrated so BER = 1% exactly at the option's demodulation threshold
// (the paper's reliability criterion). Reed-Solomon block failure is the
// binomial tail beyond the correction radius; a packet retransmits until
// all its blocks decode (stop-and-wait, section 7.3). The same model can
// be built from measured BER curves instead (from_measurements), which the
// coding-gain bench does.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/units.h"
#include "mac/rate_table.h"

namespace rt::mac {

/// Raw BER at `snr_db` for a scheme whose 1%-BER threshold is
/// `threshold_db`: 0.5 erfc(k 10^((snr-th)/20)), k = erfc^-1(0.02).
[[nodiscard]] inline double waterfall_ber(double snr_db, double threshold_db) {
  constexpr double k = 1.6450;  // erfc(k) ~= 0.02
  const double margin = std::pow(10.0, (snr_db - threshold_db) / 20.0);
  return 0.5 * std::erfc(k * margin);
}

class GoodputModel {
 public:
  GoodputModel() = default;

  /// Overrides the analytic waterfall with measured (snr_db, ber) points
  /// for one option name; linear interpolation in log-BER, clamped ends.
  /// Duplicate SNR points are collapsed to their worst (highest) BER --
  /// repeated measurements at one SNR must not poison the interpolation
  /// divisor with a zero-width segment.
  void add_measurements(const std::string& option_name,
                        std::vector<std::pair<double, double>> snr_ber) {
    std::sort(snr_ber.begin(), snr_ber.end());
    std::vector<std::pair<double, double>> deduped;
    deduped.reserve(snr_ber.size());
    for (const auto& p : snr_ber) {
      if (!deduped.empty() && deduped.back().first == p.first)
        deduped.back().second = std::max(deduped.back().second, p.second);
      else
        deduped.push_back(p);
    }
    measured_[option_name] = std::move(deduped);
  }

  [[nodiscard]] double ber(const RateOption& option, double snr_db) const {
    const auto it = measured_.find(option.name);
    if (it == measured_.end() || it->second.empty())
      return waterfall_ber(snr_db, option.threshold_db);
    const auto& pts = it->second;
    if (snr_db <= pts.front().first) return pts.front().second;
    if (snr_db >= pts.back().first) return pts.back().second;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (snr_db > pts[i].first) continue;
      const auto [s0, b0] = pts[i - 1];
      const auto [s1, b1] = pts[i];
      // Points are deduped on insert, but guard the divisor anyway: a
      // zero-width segment interpolates to its left endpoint, never NaN.
      const double t = s1 > s0 ? (snr_db - s0) / (s1 - s0) : 0.0;
      const double lb0 = std::log10(std::max(b0, 1e-12));
      const double lb1 = std::log10(std::max(b1, 1e-12));
      return std::pow(10.0, lb0 + t * (lb1 - lb0));
    }
    return pts.back().second;
  }

  /// Probability one RS block decodes (non-RS options: handled at the
  /// packet level, so 1.0 here).
  [[nodiscard]] double block_success(const RateOption& option, double snr_db) const {
    if (option.code.kind != coding::CodeDescriptor::Kind::kReedSolomon) return 1.0;
    const double p_bit = ber(option, snr_db);
    const std::size_t n = option.code.n;
    const double p_sym = 1.0 - std::pow(1.0 - p_bit, 8.0);
    const std::size_t t = (n - option.code.k) / 2;
    // Binomial tail: P(errors <= t) over n symbols.
    double p_ok = 0.0;
    double log_comb = 0.0;  // log C(n, e) built incrementally
    for (std::size_t e = 0; e <= t; ++e) {
      if (e > 0)
        log_comb +=
            std::log(static_cast<double>(n - e + 1)) - std::log(static_cast<double>(e));
      const double log_p = log_comb + static_cast<double>(e) * std::log(std::max(p_sym, 1e-300)) +
                           static_cast<double>(n - e) * std::log1p(-p_sym);
      p_ok += std::exp(log_p);
    }
    return std::min(1.0, p_ok);
  }

  /// Packet delivery probability for `payload_bytes` of data.
  [[nodiscard]] double packet_success(const RateOption& option, double snr_db,
                                      std::size_t payload_bytes) const {
    switch (option.code.kind) {
      case coding::CodeDescriptor::Kind::kNone:
      case coding::CodeDescriptor::Kind::kConvolutional: {
        // The option's threshold is calibrated on the *post-decode* BER
        // (soft-decision coding gain included for CC options), so the
        // waterfall/measured curve already gives the residual per-bit
        // error probability of delivered data.
        const double p_bit = ber(option, snr_db);
        return std::pow(1.0 - p_bit, static_cast<double>(payload_bytes) * 8.0);
      }
      case coding::CodeDescriptor::Kind::kReedSolomon: {
        const std::size_t k = option.code.k;
        const std::size_t blocks = (payload_bytes + k - 1) / k;
        return std::pow(block_success(option, snr_db), static_cast<double>(blocks));
      }
    }
    return 0.0;
  }

  /// Expected goodput under stop-and-wait: effective rate x delivery
  /// probability (each failure costs one full retransmission).
  [[nodiscard]] double goodput_bps(const RateOption& option, double snr_db,
                                   std::size_t payload_bytes = 128) const {
    return option.effective_rate_bps() * packet_success(option, snr_db, payload_bytes);
  }

  /// Index of the best option in `table` for the SNR by expected goodput
  /// (the per-tag assignment the MAC telemetry records).
  [[nodiscard]] std::size_t best_option_index(const RateTable& table, double snr_db,
                                              std::size_t payload_bytes = 128) const {
    std::size_t best = 0;
    double best_g = -1.0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const double g = goodput_bps(table.option(i), snr_db, payload_bytes);
      if (g > best_g) {
        best_g = g;
        best = i;
      }
    }
    return best;
  }

  /// Best option in `table` for the SNR by expected goodput.
  [[nodiscard]] const RateOption& best_option(const RateTable& table, double snr_db,
                                              std::size_t payload_bytes = 128) const {
    return table.option(best_option_index(table, snr_db, payload_bytes));
  }

 private:
  std::map<std::string, std::vector<std::pair<double, double>>> measured_;
};

}  // namespace rt::mac
