// Closed-loop rate adaptation study (paper Fig. 18c, section 4.4).
//
// The deployable loop: at each distance the reader runs a short probe
// burst through the *real* PHY pipeline, reads the per-packet SNR
// estimate off the fitted preamble (PacketOutcome::snr_estimate_db), and
// feeds the estimate stream to a RateController. A twin controller fed
// the channel's ground-truth SNR gives the oracle upper bound, and the
// network-wide most-robust option gives the fixed-rate baseline; the gap
// between the three goodput curves is what bench_fig18c reports.
//
// Determinism contract (the PR 2 invariant): probe packet p of point i is
// a pure function of (seed, i, p) via rt::split_seed, and every probe
// writes its estimate into a disjoint pre-sized slot -- so the parallel
// phase is bit-identical at any thread count, and the controller phase is
// serial by construction. Probe workspaces are thread-local and reused,
// so the steady state allocates nothing (the PR 3 invariant).
#pragma once

#include <cmath>
#include <cstdint>
#include <future>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "mac/goodput.h"
#include "mac/rate_controller.h"
#include "mac/rate_table.h"
#include "obs/trace.h"
#include "optics/link_budget.h"
#include "runtime/thread_pool.h"
#include "sim/link_sim.h"
#include "sim/packet_workspace.h"

namespace rt::mac {

/// Fast, robust probe configuration: 16-PQAM DSM-4 at 1 ms slots with a
/// 32-slot preamble -- decodes across the study's whole 14..65 dB span,
/// so the probe burst measures SNR rather than losing packets.
[[nodiscard]] inline phy::PhyParams probe_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

struct ClosedLoopConfig {
  optics::LinkBudget budget = optics::LinkBudget::wide_beam();
  /// Study distances (m); defaults span the wide-beam 65..14 dB range.
  std::vector<double> distances_m = {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.3};
  phy::PhyParams probe = probe_params();
  int probe_packets = 12;            ///< probe burst length per distance
  std::size_t probe_payload_bytes = 8;
  std::size_t goodput_payload_bytes = 128;
  RateControllerConfig controller{};
  unsigned threads = 1;              ///< probe-phase workers (1 = serial)
  std::uint64_t seed = 2026;
};

/// One distance point of the study. Every field is data-derived, so two
/// runs of the same config compare bit-identical regardless of threads.
struct ClosedLoopPoint {
  double distance_m = 0.0;
  double snr_true_db = 0.0;
  int probes = 0;
  int probes_lost = 0;
  double mean_estimate_db = 0.0;      ///< over decoded probes
  std::size_t estimated_index = 0;    ///< controller assignment, estimated SNR
  std::size_t oracle_index = 0;       ///< controller assignment, true SNR
  std::uint64_t estimated_switches = 0;
  double goodput_estimated_bps = 0.0; ///< estimated assignment at the TRUE SNR
  double goodput_oracle_bps = 0.0;
  double goodput_baseline_bps = 0.0;  ///< network-wide most-robust option

  friend bool operator==(const ClosedLoopPoint&, const ClosedLoopPoint&) = default;
};

struct ClosedLoopResult {
  std::vector<ClosedLoopPoint> points;
  obs::MetricsRegistry metrics;  ///< probe + controller metrics (RT_OBS builds)

  /// Bitwise equality of everything data-derived: the serial-vs-parallel
  /// acceptance check of the bench.
  [[nodiscard]] bool identical(const ClosedLoopResult& o) const {
    return points == o.points && metrics == o.metrics;
  }
};

/// Runs the closed-loop study: parallel probe phase, serial control phase.
[[nodiscard]] inline ClosedLoopResult run_closed_loop_study(const RateTable& table,
                                                            const GoodputModel& model,
                                                            const ClosedLoopConfig& cfg) {
  RT_ENSURE(!cfg.distances_m.empty(), "closed-loop study needs at least one distance");
  RT_ENSURE(cfg.probe_packets >= 1, "closed-loop study needs at least one probe packet");
  ClosedLoopResult out;
  out.points.resize(cfg.distances_m.size());

  // One offline model shared by every probe simulator: the offline step
  // does not depend on distance/SNR (same discipline as the BER sweeps).
  const auto offline =
      sim::train_offline_model(cfg.probe, cfg.probe.tag_config(), {0.0}, 3);

  struct Probe {
    bool found = false;
    double estimate_db = 0.0;
  };
  std::vector<std::vector<Probe>> probes(cfg.distances_m.size());
  for (auto& v : probes) v.resize(static_cast<std::size_t>(cfg.probe_packets));

  // Phase 1: probe bursts, fanned as flat (point, packet-batch) tasks.
  // Each probe lands in its own pre-sized slot, so results are identical
  // at any thread count; per-task metric snapshots merge commutatively.
  const auto point_sim = [&](std::size_t i) {
    sim::ChannelConfig ch;
    ch.snr_override_db = cfg.budget.snr_db_at(cfg.distances_m[i]);
    ch.noise_seed = rt::split_seed(cfg.seed, static_cast<std::uint64_t>(i), 1);
    sim::SimOptions so;
    so.seed = rt::split_seed(cfg.seed, static_cast<std::uint64_t>(i), 0);
    so.offline_yaws_deg = {0.0};
    so.shared_offline_model = offline;
    return sim::LinkSimulator(cfg.probe, cfg.probe.tag_config(), ch, so);
  };
  const unsigned workers = cfg.threads == 0 ? 1 : cfg.threads;
  if (workers <= 1) {
    // run_packet binds ws.obs internally, so the snapshot must come from
    // the workspace recorder -- same discipline as the pool tasks below.
    sim::PacketWorkspace ws;
    for (std::size_t i = 0; i < cfg.distances_m.size(); ++i) {
      const auto sim = point_sim(i);
      ws.obs.clear();
      const obs::ScopedBind bind(ws.obs);
      {
        RT_TRACE_SPAN("closed_loop_probe");
        for (int p = 0; p < cfg.probe_packets; ++p) {
          const auto r =
              sim.run_packet(static_cast<std::uint64_t>(p), cfg.probe_payload_bytes, ws);
          probes[i][static_cast<std::size_t>(p)] = {r.preamble_found, r.snr_estimate_db};
        }
      }
#if RT_OBS_ENABLED
      out.metrics.merge(ws.obs.metrics);
#endif
    }
  } else {
    runtime::ThreadPool pool(workers);
    struct TaskOut {
      obs::MetricsRegistry metrics;  // empty unless RT_OBS=ON
    };
    std::vector<std::future<TaskOut>> tasks;
    constexpr int kBatch = 4;
    for (std::size_t i = 0; i < cfg.distances_m.size(); ++i) {
      // The simulator is shared by all batches of its point (run_packet is
      // const and thread-safe); constructing it inside the pool overlaps
      // per-point setup with probing.
      auto sim = std::make_shared<const sim::LinkSimulator>(point_sim(i));
      for (int begin = 0; begin < cfg.probe_packets; begin += kBatch) {
        const int end = std::min(begin + kBatch, cfg.probe_packets);
        tasks.push_back(pool.submit([&probes, &cfg, sim, i, begin, end] {
          static thread_local sim::PacketWorkspace ws;
          TaskOut t;
          ws.obs.clear();
          const obs::ScopedBind bind(ws.obs);
          {
            RT_TRACE_SPAN("closed_loop_probe");
            for (int p = begin; p < end; ++p) {
              const auto r =
                  sim->run_packet(static_cast<std::uint64_t>(p), cfg.probe_payload_bytes, ws);
              probes[i][static_cast<std::size_t>(p)] = {r.preamble_found, r.snr_estimate_db};
            }
          }
#if RT_OBS_ENABLED
          t.metrics = ws.obs.metrics;
#endif
          return t;
        }));
      }
    }
    for (auto& f : tasks) {
      auto t = f.get();
      if constexpr (obs::kEnabled) out.metrics.merge(t.metrics);
    }
  }

  // Phase 2: serial control loop per point, in packet order -- the
  // controller state is sequential by nature, so it never runs on the
  // pool. The oracle twin sees the ground-truth SNR at the same cadence.
  obs::Recorder control_rec;
  {
    const obs::ScopedBind bind(control_rec);
    const std::size_t baseline_index = table.most_robust_index();
    for (std::size_t i = 0; i < cfg.distances_m.size(); ++i) {
      ClosedLoopPoint& pt = out.points[i];
      pt.distance_m = cfg.distances_m[i];
      pt.snr_true_db = cfg.budget.snr_db_at(pt.distance_m);
      pt.probes = cfg.probe_packets;
      RateController estimated(table, cfg.controller);
      RateController oracle(table, cfg.controller);
      double sum_est = 0.0;
      int decoded = 0;
      for (const Probe& probe : probes[i]) {
        if (!probe.found) {
          ++pt.probes_lost;
          continue;  // a lost probe carries no estimate
        }
        static_cast<void>(estimated.update(probe.estimate_db));
        static_cast<void>(oracle.update(pt.snr_true_db));
        sum_est += probe.estimate_db;
        ++decoded;
      }
      pt.mean_estimate_db = decoded > 0 ? sum_est / decoded : 0.0;
      pt.estimated_index = estimated.current_index();
      pt.oracle_index = oracle.current_index();
      pt.estimated_switches = estimated.switches();
      // All three loops are scored at the TRUE SNR: a mis-estimate that
      // assigns too fast an option pays for it in delivery probability.
      pt.goodput_estimated_bps = model.goodput_bps(table.option(pt.estimated_index),
                                                   pt.snr_true_db, cfg.goodput_payload_bytes);
      pt.goodput_oracle_bps = model.goodput_bps(table.option(pt.oracle_index), pt.snr_true_db,
                                                cfg.goodput_payload_bytes);
      pt.goodput_baseline_bps = model.goodput_bps(table.option(baseline_index), pt.snr_true_db,
                                                  cfg.goodput_payload_bytes);
    }
  }
#if RT_OBS_ENABLED
  out.metrics.merge(control_rec.metrics);
#endif
  return out;
}

}  // namespace rt::mac
