// Networked rate-adaptation study (paper Fig. 18c).
//
// Tags are placed uniformly between `min_distance_m` and `max_distance_m`
// from a wide-beam reader; the reader discovers them, measures each
// uplink SNR through the link-budget model, and assigns the goodput-
// maximizing (rate, coding) option per tag. The baseline assigns every tag
// the single rate the worst tag can sustain. The metric is the mean
// per-tag goodput ratio (adaptive / baseline), reported over many trials.
//
// Per-tag telemetry: alongside the aggregate means, the study records for
// every tag index the discovery round it was found in, its assigned-rate
// index, and the ARQ retries of a short stop-and-wait exchange at its
// assigned option (delivery drawn from the goodput model's packet-success
// probability). The ARQ draws come from a dedicated counter-split stream
// (`telemetry_seed`), never from the placement Rng -- so the aggregate
// goodput numbers are bit-identical to the pre-telemetry study.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/narrow.h"
#include "common/rng.h"
#include "mac/goodput.h"
#include "mac/rate_table.h"
#include "mac/tdma.h"
#include "obs/trace.h"
#include "optics/link_budget.h"

namespace rt::mac {

struct NetworkStudyConfig {
  optics::LinkBudget budget = optics::LinkBudget::wide_beam();
  double min_distance_m = 1.0;
  double max_distance_m = 4.3;
  std::size_t payload_bytes = 128;
  int trials = 100;
  std::size_t discovery_frame_slots = 0;  // 0 = adaptive frame size
  int arq_packets_per_tag = 4;            ///< telemetry exchange length
  int arq_max_attempts = 8;               ///< stop-and-wait retry cap
  std::uint64_t telemetry_seed = 777;     ///< ARQ stream, split per trial
};

/// Accumulated per-tag-index counters. All fields are plain sums, so
/// merge() is associative and commutative: any partition of a trial set
/// merges to identical telemetry (the LinkStats::merge discipline).
struct TagTelemetry {
  std::uint64_t trials = 0;
  std::uint64_t discovery_rounds = 0;        ///< sum of 1-based rounds found in
  std::uint64_t arq_retries = 0;
  std::uint64_t packets_attempted = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t assigned_rate_index_sum = 0;

  [[nodiscard]] double mean_discovery_round() const {
    return trials > 0 ? static_cast<double>(discovery_rounds) / static_cast<double>(trials) : 0.0;
  }
  [[nodiscard]] double mean_assigned_index() const {
    return trials > 0 ? static_cast<double>(assigned_rate_index_sum) / static_cast<double>(trials)
                      : 0.0;
  }
  [[nodiscard]] double delivery_rate() const {
    return packets_attempted > 0
               ? static_cast<double>(packets_delivered) / static_cast<double>(packets_attempted)
               : 0.0;
  }

  TagTelemetry& merge(const TagTelemetry& o) {
    trials += o.trials;
    discovery_rounds += o.discovery_rounds;
    arq_retries += o.arq_retries;
    packets_attempted += o.packets_attempted;
    packets_delivered += o.packets_delivered;
    assigned_rate_index_sum += o.assigned_rate_index_sum;
    return *this;
  }

  friend bool operator==(const TagTelemetry&, const TagTelemetry&) = default;
};

struct NetworkStudyResult {
  int tags = 0;
  double mean_adaptive_bps = 0.0;
  double mean_baseline_bps = 0.0;
  double mean_discovery_rounds = 0.0;
  std::vector<TagTelemetry> per_tag;  ///< indexed by tag id

  [[nodiscard]] double gain() const {
    return mean_baseline_bps > 0.0 ? mean_adaptive_bps / mean_baseline_bps : 0.0;
  }
};

/// Runs the Fig. 18c experiment for `num_tags` tags.
[[nodiscard]] inline NetworkStudyResult rate_adaptation_study(int num_tags,
                                                              const RateTable& table,
                                                              const GoodputModel& model,
                                                              const NetworkStudyConfig& cfg,
                                                              Rng& rng) {
  RT_ENSURE(num_tags >= 1, "need at least one tag");
  RT_ENSURE(cfg.arq_max_attempts >= 1, "ARQ needs at least one attempt");
  NetworkStudyResult out;
  out.tags = num_tags;
  out.per_tag.resize(static_cast<std::size_t>(num_tags));
  double sum_adaptive = 0.0;
  double sum_baseline = 0.0;
  double sum_rounds = 0.0;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    // Place tags and compute their SNRs.
    std::vector<double> snrs(num_tags);
    std::vector<std::uint8_t> ids(num_tags);
    for (int i = 0; i < num_tags; ++i) {
      const double d = rng.uniform(cfg.min_distance_m, cfg.max_distance_m);
      snrs[i] = cfg.budget.snr_db_at(d);
      ids[i] = narrow<std::uint8_t>(i);
    }
    // Discovery (adds protocol fidelity + the rounds metric).
    const auto disc = discover_tags(ids, cfg.discovery_frame_slots, rng);
    sum_rounds += disc.rounds;
    RT_OBS_COUNT(kMacDiscoveryRounds, static_cast<std::uint64_t>(disc.rounds));
    for (std::size_t k = 0; k < disc.discovered.size(); ++k) {
      auto& tel = out.per_tag[disc.discovered[k]];
      ++tel.trials;
      tel.discovery_rounds += static_cast<std::uint64_t>(disc.discovery_round[k]);
    }

    // TDMA gives every tag an equal airtime share; mean per-tag goodput.
    // The ARQ telemetry stream splits off `telemetry_seed` per trial so
    // the placement/discovery draws above stay on their original seeds.
    Rng arq_rng(split_seed(cfg.telemetry_seed, static_cast<std::uint64_t>(trial)));
    double adaptive = 0.0;
    for (int i = 0; i < num_tags; ++i) {
      const double snr = snrs[i];
      const std::size_t assigned = model.best_option_index(table, snr, cfg.payload_bytes);
      const RateOption& opt = table.option(assigned);
      adaptive += model.goodput_bps(opt, snr, cfg.payload_bytes);
      auto& tel = out.per_tag[static_cast<std::size_t>(i)];
      tel.assigned_rate_index_sum += assigned;
      RT_OBS_OBSERVE(kAssignedRateIndex, static_cast<double>(assigned));
      // Short stop-and-wait exchange at the assignment: delivery is a
      // Bernoulli draw at the model's packet-success probability.
      const double p_ok = model.packet_success(opt, snr, cfg.payload_bytes);
      for (int pkt = 0; pkt < cfg.arq_packets_per_tag; ++pkt) {
        ++tel.packets_attempted;
        bool delivered = false;
        int attempts = 0;
        while (!delivered && attempts < cfg.arq_max_attempts) {
          ++attempts;
          delivered = arq_rng.uniform(0.0, 1.0) < p_ok;
        }
        if (delivered) ++tel.packets_delivered;
        const auto retries = static_cast<std::uint64_t>(attempts - 1);
        tel.arq_retries += retries;
        RT_OBS_COUNT(kMacArqRetries, retries);
      }
    }
    adaptive /= static_cast<double>(num_tags);

    // Baseline: one network-wide rate the worst tag can sustain.
    const double worst = *std::min_element(snrs.begin(), snrs.end());
    const auto& base_opt = model.best_option(table, worst, cfg.payload_bytes);
    double baseline = 0.0;
    for (const double snr : snrs) baseline += model.goodput_bps(base_opt, snr, cfg.payload_bytes);
    baseline /= static_cast<double>(num_tags);

    sum_adaptive += adaptive;
    sum_baseline += baseline;
  }
  out.mean_adaptive_bps = sum_adaptive / cfg.trials;
  out.mean_baseline_bps = sum_baseline / cfg.trials;
  out.mean_discovery_rounds = sum_rounds / cfg.trials;
  return out;
}

}  // namespace rt::mac
