// Networked rate-adaptation study (paper Fig. 18c).
//
// Tags are placed uniformly between `min_distance_m` and `max_distance_m`
// from a wide-beam reader; the reader discovers them, measures each
// uplink SNR through the link-budget model, and assigns the goodput-
// maximizing (rate, coding) option per tag. The baseline assigns every tag
// the single rate the worst tag can sustain. The metric is the mean
// per-tag goodput ratio (adaptive / baseline), reported over many trials.
#pragma once

#include <vector>

#include "common/narrow.h"
#include "common/rng.h"
#include "mac/goodput.h"
#include "mac/rate_table.h"
#include "mac/tdma.h"
#include "optics/link_budget.h"

namespace rt::mac {

struct NetworkStudyConfig {
  optics::LinkBudget budget = optics::LinkBudget::wide_beam();
  double min_distance_m = 1.0;
  double max_distance_m = 4.3;
  std::size_t payload_bytes = 128;
  int trials = 100;
  std::size_t discovery_frame_slots = 0;  // 0 = adaptive frame size
};

struct NetworkStudyResult {
  int tags = 0;
  double mean_adaptive_bps = 0.0;
  double mean_baseline_bps = 0.0;
  double mean_discovery_rounds = 0.0;

  [[nodiscard]] double gain() const {
    return mean_baseline_bps > 0.0 ? mean_adaptive_bps / mean_baseline_bps : 0.0;
  }
};

/// Runs the Fig. 18c experiment for `num_tags` tags.
[[nodiscard]] inline NetworkStudyResult rate_adaptation_study(int num_tags,
                                                              const RateTable& table,
                                                              const GoodputModel& model,
                                                              const NetworkStudyConfig& cfg,
                                                              Rng& rng) {
  RT_ENSURE(num_tags >= 1, "need at least one tag");
  NetworkStudyResult out;
  out.tags = num_tags;
  double sum_adaptive = 0.0;
  double sum_baseline = 0.0;
  double sum_rounds = 0.0;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    // Place tags and compute their SNRs.
    std::vector<double> snrs(num_tags);
    std::vector<std::uint8_t> ids(num_tags);
    for (int i = 0; i < num_tags; ++i) {
      const double d = rng.uniform(cfg.min_distance_m, cfg.max_distance_m);
      snrs[i] = cfg.budget.snr_db_at(d);
      ids[i] = narrow<std::uint8_t>(i);
    }
    // Discovery (adds protocol fidelity + the rounds metric).
    const auto disc = discover_tags(ids, cfg.discovery_frame_slots, rng);
    sum_rounds += disc.rounds;

    // TDMA gives every tag an equal airtime share; mean per-tag goodput.
    double adaptive = 0.0;
    for (const double snr : snrs)
      adaptive += model.goodput_bps(model.best_option(table, snr, cfg.payload_bytes), snr,
                                    cfg.payload_bytes);
    adaptive /= static_cast<double>(num_tags);

    // Baseline: one network-wide rate the worst tag can sustain.
    const double worst = *std::min_element(snrs.begin(), snrs.end());
    const auto& base_opt = model.best_option(table, worst, cfg.payload_bytes);
    double baseline = 0.0;
    for (const double snr : snrs) baseline += model.goodput_bps(base_opt, snr, cfg.payload_bytes);
    baseline /= static_cast<double>(num_tags);

    sum_adaptive += adaptive;
    sum_baseline += baseline;
  }
  out.mean_adaptive_bps = sum_adaptive / cfg.trials;
  out.mean_baseline_bps = sum_baseline / cfg.trials;
  out.mean_discovery_rounds = sum_rounds / cfg.trials;
  return out;
}

}  // namespace rt::mac
