// MAC frame format: [tag_id | seq | length | payload | CRC-16].
//
// The thin master-slave MAC (paper section 4.4) CRC-checks every uplink
// payload and triggers retransmission on failure.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/crc.h"
#include "common/error.h"
#include "common/narrow.h"

namespace rt::mac {

struct MacFrame {
  std::uint8_t tag_id = 0;
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const MacFrame&, const MacFrame&) = default;
};

/// Serializes to bytes: tag_id, seq, len_hi, len_lo, payload..., crc_hi,
/// crc_lo (CRC over everything before it).
[[nodiscard]] inline std::vector<std::uint8_t> serialize(const MacFrame& f) {
  RT_ENSURE(f.payload.size() <= 0xFFFF, "payload too large for the 16-bit length field");
  std::vector<std::uint8_t> out;
  out.reserve(f.payload.size() + 6);
  out.push_back(f.tag_id);
  out.push_back(f.seq);
  out.push_back(narrow_cast<std::uint8_t>(f.payload.size() >> 8));
  out.push_back(narrow_cast<std::uint8_t>(f.payload.size() & 0xFF));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  const std::uint16_t crc = coding::crc16_ccitt(out);
  out.push_back(narrow_cast<std::uint8_t>(crc >> 8));
  out.push_back(narrow_cast<std::uint8_t>(crc & 0xFF));
  return out;
}

/// Parses and CRC-checks; nullopt on any corruption.
[[nodiscard]] inline std::optional<MacFrame> parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 6) return std::nullopt;
  const std::size_t len = (static_cast<std::size_t>(bytes[2]) << 8) | bytes[3];
  if (bytes.size() != len + 6) return std::nullopt;
  const std::uint16_t crc = coding::crc16_ccitt(bytes.first(bytes.size() - 2));
  const std::uint16_t got =
      narrow_cast<std::uint16_t>((bytes[bytes.size() - 2] << 8) | bytes[bytes.size() - 1]);
  if (crc != got) return std::nullopt;
  MacFrame f;
  f.tag_id = bytes[0];
  f.seq = bytes[1];
  f.payload.assign(bytes.begin() + 4, bytes.end() - 2);
  return f;
}

/// Total serialized size for a payload of `payload_bytes`.
[[nodiscard]] constexpr std::size_t frame_overhead_bytes() { return 6; }

}  // namespace rt::mac
