// Reader-side inventory controller: drives the downlink command set to
// discover every tag, then assigns rates (section 4.4), command by
// command -- the message-accurate counterpart of the statistical
// discover_tags() shortcut.
#pragma once

#include <algorithm>
#include <vector>

#include "common/narrow.h"
#include "mac/downlink.h"
#include "mac/goodput.h"
#include "mac/rate_table.h"

namespace rt::mac {

struct InventoryConfig {
  /// Initial frame size; the reader adapts it to the estimated backlog
  /// (simplified Q-algorithm).
  std::uint16_t initial_frame_slots = 8;
  int max_commands = 100000;
  /// Downlink message loss probability (conventional VLC is robust but
  /// not perfect).
  double downlink_loss = 0.0;
};

struct InventoryOutcome {
  std::vector<std::uint8_t> discovered;  ///< in acknowledgement order
  int commands_sent = 0;
  int frames_opened = 0;
  int collisions = 0;
};

/// Runs a full inventory over `tags` (tag-side state machines). SNR per
/// tag (parallel to `tags`) feeds the rate assignment after discovery.
[[nodiscard]] inline InventoryOutcome run_inventory(std::vector<TagProtocol>& tags,
                                                    const std::vector<double>& tag_snrs_db,
                                                    const RateTable& table,
                                                    const GoodputModel& model,
                                                    const InventoryConfig& cfg, Rng& rng) {
  RT_ENSURE(tags.size() == tag_snrs_db.size(), "one SNR per tag required");
  InventoryOutcome out;

  const auto broadcast = [&](const DownlinkCommand& cmd) {
    ++out.commands_sent;
    std::vector<std::size_t> repliers;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (cfg.downlink_loss > 0.0 && rng.bernoulli(cfg.downlink_loss)) continue;
      const auto r = tags[i].on_command(cmd);
      if (r.replies_with_id) repliers.push_back(i);
    }
    return repliers;
  };

  auto remaining = [&] {
    return std::count_if(tags.begin(), tags.end(), [](const TagProtocol& t) {
      return t.state() != TagState::kInventoried && t.state() != TagState::kAsleep;
    });
  };

  std::uint16_t frame = cfg.initial_frame_slots;
  while (remaining() > 0 && out.commands_sent < cfg.max_commands) {
    ++out.frames_opened;
    // Open a frame sized to the estimated backlog (known here; a real
    // reader estimates it from collision statistics).
    frame = narrow_cast<std::uint16_t>(std::clamp<long>(remaining(), 2, 1024));
    auto repliers = broadcast({DownlinkType::kQuery, 0, frame, 0, 0});
    for (std::uint16_t slot = 0;; ++slot) {
      if (repliers.size() == 1) {
        const auto id = tags[repliers.front()].id();
        broadcast({DownlinkType::kAck, id, 0, 0, 0});
        out.discovered.push_back(id);
      } else if (repliers.size() > 1) {
        ++out.collisions;  // all repliers back off via the next QueryRep
      }
      if (slot + 1 >= frame) break;
      repliers = broadcast({DownlinkType::kQueryRep, 0, 0, 0, 0});
    }
  }
  RT_ENSURE(remaining() == 0, "inventory did not converge within max_commands");

  // Rate assignment pass.
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const auto& opt = model.best_option(table, tag_snrs_db[i]);
    const auto idx = narrow_cast<std::uint8_t>(&opt - table.all().data());
    (void)broadcast({DownlinkType::kRateAssign, tags[i].id(), 0, idx, 0});
  }
  return out;
}

}  // namespace rt::mac
