// Full-stack MAC link: MAC frame -> Reed-Solomon -> PHY waveform -> channel
// -> demodulation -> RS decode -> CRC check, with stop-and-wait ARQ.
//
// This is the real code path (no analytic shortcuts); the coding-gain
// bench (Fig. 18b) and the examples run on it.
#pragma once

#include <optional>

#include "coding/reed_solomon.h"
#include "common/bitio.h"
#include "mac/arq.h"
#include "mac/frame.h"
#include "sim/link_sim.h"

namespace rt::mac {

class MacLink {
 public:
  /// `rs` = nullopt for an uncoded link.
  MacLink(sim::LinkSimulator& sim, std::optional<coding::ReedSolomon> rs)
      : sim_(sim), rs_(std::move(rs)) {}

  struct SendResult {
    bool delivered = false;
    int attempts = 0;
    std::size_t bits_on_air_per_attempt = 0;
    std::optional<MacFrame> received;  ///< CRC-clean frame at the reader
  };

  /// Transmits one frame with up to `arq.max_attempts()` tries. Delivery
  /// means the reader recovered a CRC-clean frame (content equality is
  /// then guaranteed up to CRC collision).
  [[nodiscard]] SendResult send(const MacFrame& frame, const StopAndWaitArq& arq) {
    const auto frame_bytes = serialize(frame);
    const auto coded = rs_ ? rs_->encode(frame_bytes) : frame_bytes;
    const auto tx_bits = bytes_to_bits(coded);

    SendResult out;
    out.bits_on_air_per_attempt = tx_bits.size();
    const auto arq_result = arq.run([&] {
      const auto pkt = sim_.send_packet(tx_bits);
      if (!pkt.preamble_found) return false;
      const auto rx_frame = decode_attempt(pkt.received_bits, frame_bytes.size());
      if (!rx_frame) return false;
      out.received = rx_frame;
      return true;
    });
    out.delivered = arq_result.delivered;
    out.attempts = arq_result.attempts;
    return out;
  }

  /// Delivered payload bits over total bits on air (the goodput fraction
  /// relative to the raw PHY rate).
  [[nodiscard]] static double efficiency(const SendResult& r, std::size_t payload_bytes) {
    if (!r.delivered || r.attempts == 0) return 0.0;
    const double air = static_cast<double>(r.bits_on_air_per_attempt) * r.attempts;
    return static_cast<double>(payload_bytes) * 8.0 / air;
  }

 private:
  [[nodiscard]] std::optional<MacFrame> decode_attempt(
      const std::vector<std::uint8_t>& rx_bits, std::size_t frame_len) const {
    if (rx_bits.empty() || rx_bits.size() % 8 != 0) return std::nullopt;
    const auto rx_bytes = bits_to_bytes(rx_bits);
    if (rs_) {
      const auto decoded = rs_->decode(rx_bytes, frame_len);
      if (!decoded) return std::nullopt;
      return parse(*decoded);
    }
    return parse(rx_bytes);
  }

  sim::LinkSimulator& sim_;
  std::optional<coding::ReedSolomon> rs_;
};

}  // namespace rt::mac
