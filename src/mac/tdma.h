// TDMA scheduling and RFID-style tag discovery (paper section 4.4).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace rt::mac {

/// Round-robin TDMA: each registered tag gets one uplink slot per round.
class TdmaScheduler {
 public:
  void register_tag(std::uint8_t tag_id) {
    RT_ENSURE(!has_tag(tag_id), "tag already registered");
    tags_.push_back(tag_id);
  }

  [[nodiscard]] bool has_tag(std::uint8_t tag_id) const {
    return std::find(tags_.begin(), tags_.end(), tag_id) != tags_.end();
  }

  [[nodiscard]] std::size_t tag_count() const { return tags_.size(); }

  /// Tag owning uplink slot `slot` (slots cycle round-robin).
  [[nodiscard]] std::uint8_t owner(std::size_t slot) const {
    RT_ENSURE(!tags_.empty(), "no tags registered");
    return tags_[slot % tags_.size()];
  }

  /// Airtime fraction each tag receives.
  [[nodiscard]] double airtime_share() const {
    RT_ENSURE(!tags_.empty(), "no tags registered");
    return 1.0 / static_cast<double>(tags_.size());
  }

 private:
  std::vector<std::uint8_t> tags_;
};

/// Framed slotted-ALOHA discovery, as in RFID inventory: each round the
/// reader opens a frame of response slots; undiscovered tags pick one
/// uniformly; singleton slots are discovered and acknowledged.
/// `frame_slots` = 0 selects the adaptive (Q-algorithm-style) frame size,
/// matching the remaining population -- necessary for large fleets, since
/// a fixed small frame's singleton probability collapses as n grows.
struct DiscoveryResult {
  int rounds = 0;
  std::vector<std::uint8_t> discovered;  ///< in discovery order
  std::vector<int> discovery_round;      ///< 1-based round each tag was found in
};

[[nodiscard]] inline DiscoveryResult discover_tags(const std::vector<std::uint8_t>& tag_ids,
                                                   std::size_t frame_slots, Rng& rng,
                                                   int max_rounds = 1000) {
  DiscoveryResult out;
  std::set<std::uint8_t> remaining(tag_ids.begin(), tag_ids.end());
  while (!remaining.empty() && out.rounds < max_rounds) {
    ++out.rounds;
    const std::size_t slots_this_round =
        frame_slots > 0 ? frame_slots : std::max<std::size_t>(remaining.size(), 2);
    std::vector<std::vector<std::uint8_t>> slots(slots_this_round);
    for (const auto id : remaining)
      slots[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(slots_this_round) - 1))]
          .push_back(id);
    for (const auto& slot : slots) {
      if (slot.size() != 1) continue;  // empty or collision
      out.discovered.push_back(slot.front());
      out.discovery_round.push_back(out.rounds);
      remaining.erase(slot.front());
    }
  }
  RT_ENSURE(remaining.empty(), "discovery did not converge within max_rounds");
  return out;
}

}  // namespace rt::mac
