// Downlink command set and tag-side protocol state machine.
//
// Section 4.4: the reader manages tags master-slave over a TDMA uplink,
// with an RFID-style discovery protocol and rate/coding assignments
// piggybacked on downlink messages. The downlink itself is conventional
// (tens-of-Kbps) VLC and is modelled at message level with a configurable
// loss rate; this header defines the commands and the tag state machine
// that reacts to them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"

namespace rt::mac {

enum class DownlinkType : std::uint8_t {
  kQuery,       ///< open an inventory frame with `frame_slots` slots
  kQueryRep,    ///< advance to the next slot of the current frame
  kAck,         ///< acknowledge the tag that replied in this slot
  kRateAssign,  ///< assign (rate_code, coding_code) to `target`
  kPoll,        ///< TDMA: request an uplink frame from `target`
  kSleep,       ///< put `target` to sleep until the next inventory
};

struct DownlinkCommand {
  DownlinkType type = DownlinkType::kQuery;
  std::uint8_t target = 0;       ///< tag id (Ack/RateAssign/Poll/Sleep)
  std::uint16_t frame_slots = 0; ///< Query
  std::uint8_t rate_code = 0;    ///< RateAssign: index into the rate table
  std::uint8_t coding_code = 0;
};

/// Tag protocol states (RFID-inventory-like).
enum class TagState : std::uint8_t {
  kReady,        ///< listening; will join the next Query
  kArbitrating,  ///< picked a slot in the open frame, counting down
  kReplied,      ///< sent its id this slot; awaiting Ack
  kInventoried,  ///< acknowledged; participates in TDMA polls
  kAsleep,
};

[[nodiscard]] inline std::string to_string(TagState s) {
  switch (s) {
    case TagState::kReady: return "ready";
    case TagState::kArbitrating: return "arbitrating";
    case TagState::kReplied: return "replied";
    case TagState::kInventoried: return "inventoried";
    case TagState::kAsleep: return "asleep";
  }
  return "?";
}

/// Tag-side state machine: consumes downlink commands, produces uplink
/// intents (reply-with-id this slot / send data when polled).
class TagProtocol {
 public:
  TagProtocol(std::uint8_t id, Rng& rng) : id_(id), rng_(&rng) {}

  struct Reaction {
    bool replies_with_id = false;  ///< transmits its id in this slot
    bool sends_data = false;       ///< transmits a data frame (was polled)
  };

  Reaction on_command(const DownlinkCommand& cmd) {
    Reaction r;
    switch (cmd.type) {
      case DownlinkType::kQuery:
        if (state_ == TagState::kReady || state_ == TagState::kArbitrating ||
            state_ == TagState::kReplied) {
          RT_ENSURE(cmd.frame_slots >= 1, "Query must open at least one slot");
          countdown_ = narrow_cast<int>(rng_->uniform_int(0, cmd.frame_slots - 1));
          state_ = TagState::kArbitrating;
          if (countdown_ == 0) {
            state_ = TagState::kReplied;
            r.replies_with_id = true;
          }
        }
        break;
      case DownlinkType::kQueryRep:
        if (state_ == TagState::kArbitrating) {
          if (--countdown_ == 0) {
            state_ = TagState::kReplied;
            r.replies_with_id = true;
          }
        } else if (state_ == TagState::kReplied) {
          // Not acknowledged (collision or loss): rejoin the next frame.
          state_ = TagState::kReady;
        }
        break;
      case DownlinkType::kAck:
        if (state_ == TagState::kReplied && cmd.target == id_) state_ = TagState::kInventoried;
        break;
      case DownlinkType::kRateAssign:
        if (cmd.target == id_ && state_ == TagState::kInventoried) {
          rate_code_ = cmd.rate_code;
          coding_code_ = cmd.coding_code;
        }
        break;
      case DownlinkType::kPoll:
        if (cmd.target == id_ && state_ == TagState::kInventoried) r.sends_data = true;
        break;
      case DownlinkType::kSleep:
        if (cmd.target == id_) state_ = TagState::kAsleep;
        break;
    }
    return r;
  }

  [[nodiscard]] TagState state() const { return state_; }
  [[nodiscard]] std::uint8_t id() const { return id_; }
  [[nodiscard]] std::uint8_t rate_code() const { return rate_code_; }
  [[nodiscard]] std::uint8_t coding_code() const { return coding_code_; }

 private:
  std::uint8_t id_;
  Rng* rng_;
  TagState state_ = TagState::kReady;
  int countdown_ = 0;
  std::uint8_t rate_code_ = 0;
  std::uint8_t coding_code_ = 0;
};

}  // namespace rt::mac
