// Stop-and-wait ARQ (paper sections 4.4 and 7.3).
#pragma once

#include <functional>

#include "common/error.h"

namespace rt::mac {

struct ArqResult {
  bool delivered = false;
  int attempts = 0;
};

/// Retries `try_send` (returns true on CRC-clean delivery) up to
/// `max_attempts` times.
class StopAndWaitArq {
 public:
  explicit StopAndWaitArq(int max_attempts = 8) : max_attempts_(max_attempts) {
    RT_ENSURE(max_attempts >= 1, "need at least one attempt");
  }

  [[nodiscard]] ArqResult run(const std::function<bool()>& try_send) const {
    ArqResult r;
    while (r.attempts < max_attempts_) {
      ++r.attempts;
      if (try_send()) {
        r.delivered = true;
        return r;
      }
    }
    return r;
  }

  [[nodiscard]] int max_attempts() const { return max_attempts_; }

 private:
  int max_attempts_;
};

}  // namespace rt::mac
