// Closed-loop rate controller: EWMA-smoothed SNR tracking with hysteresis.
//
// The reader (section 4.4) assigns each tag a (bit rate, coding) option
// from its measured uplink SNR. Raw per-packet estimates jitter by a few
// dB around the true SNR, so selecting straight from the table would flap
// between adjacent options whenever the link sits near a threshold. The
// controller smooths the estimate stream with an exponential moving
// average and applies an asymmetric hysteresis band: stepping *up* to a
// faster option requires clearing its threshold by `hysteresis_db` extra
// margin, while the current option is kept as long as the smoothed SNR
// stays within `hysteresis_db` below its own threshold. Assignments
// therefore change only on sustained SNR moves, never on single-packet
// noise.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "mac/rate_table.h"
#include "obs/trace.h"

namespace rt::mac {

struct RateControllerConfig {
  double ewma_alpha = 0.25;   ///< smoothing weight of the newest estimate
  double hysteresis_db = 1.5; ///< extra margin to enter / slack to keep an option
};

class RateController {
 public:
  explicit RateController(const RateTable& table, RateControllerConfig cfg = {})
      : table_(&table), cfg_(cfg), current_(table.most_robust_index()) {
    RT_ENSURE(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0, "ewma_alpha must be in (0, 1]");
    RT_ENSURE(cfg_.hysteresis_db >= 0.0, "hysteresis_db cannot be negative");
  }

  /// Feeds one SNR estimate (dB); returns the rate-option index assigned
  /// after this observation. Deterministic: the assignment sequence is a
  /// pure function of the estimate sequence.
  std::size_t update(double snr_estimate_db) {
    if (!has_sample_) {
      smoothed_ = snr_estimate_db;
      has_sample_ = true;
    } else {
      smoothed_ += cfg_.ewma_alpha * (snr_estimate_db - smoothed_);
    }
    // Candidate selected with the raised entry bar; the incumbent only
    // yields when the candidate is strictly faster or the incumbent's own
    // threshold (minus slack) is no longer met.
    const std::size_t candidate = table_->select_index(smoothed_, cfg_.hysteresis_db);
    const RateOption& cur = table_->option(current_);
    const RateOption& cand = table_->option(candidate);
    const bool current_still_ok = smoothed_ >= cur.threshold_db - cfg_.hysteresis_db;
    const bool step_up = cand.effective_rate_bps() > cur.effective_rate_bps();
    if (step_up || !current_still_ok) {
      if (candidate != current_) {
        ++switches_;
        RT_OBS_COUNT(kMacRateSwitches, 1);
      }
      current_ = candidate;
    }
    RT_OBS_OBSERVE(kAssignedRateIndex, static_cast<double>(current_));
    return current_;
  }

  [[nodiscard]] std::size_t current_index() const { return current_; }
  [[nodiscard]] const RateOption& current_option() const { return table_->option(current_); }
  [[nodiscard]] double smoothed_snr_db() const { return smoothed_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] const RateControllerConfig& config() const { return cfg_; }

 private:
  const RateTable* table_;
  RateControllerConfig cfg_;
  std::size_t current_ = 0;
  double smoothed_ = 0.0;
  bool has_sample_ = false;
  std::uint64_t switches_ = 0;
};

}  // namespace rt::mac
