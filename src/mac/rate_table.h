// Rate/coding options and the SNR-indexed adaptation table.
//
// Section 4.4: the reader profiles a database mapping uplink SNR to the
// best (bit rate, coding rate) pair and piggybacks the assignment on the
// downlink. The default table uses the paper's operating points (Tab. 3 +
// Fig. 18a) with Reed-Solomon coding choices from the Fig. 18b study.
#pragma once

#include <string>
#include <vector>

#include "coding/code_descriptor.h"
#include "common/error.h"
#include "phy/params.h"

namespace rt::mac {

struct RateOption {
  std::string name;
  phy::PhyParams phy;
  double raw_rate_bps = 0.0;
  double threshold_db = 0.0;  ///< SNR at ~1% post-decode BER
  /// FEC paired with this modulation rate (the closed loop picks the
  /// (modulation rate, code) pair jointly).
  coding::CodeDescriptor code;

  [[nodiscard]] double code_rate() const { return code.rate(); }
  [[nodiscard]] double effective_rate_bps() const { return raw_rate_bps * code_rate(); }
};

class RateTable {
 public:
  explicit RateTable(std::vector<RateOption> options) : options_(std::move(options)) {
    RT_ENSURE(!options_.empty(), "rate table cannot be empty");
  }

  /// The paper's operating points. Thresholds: Tab. 3 for 1/4/8/16 Kbps,
  /// Fig. 18a for 32 Kbps. Each rate is also offered with three codes,
  /// with threshold offsets calibrated against this repo's measured
  /// benches rather than rule-of-thumb coding gains: light RS(255,223)
  /// buys ~1.5 dB at 1/8 throughput cost (the closed-loop study delivers
  /// it cleanly down to ~1.4 dB below the raw threshold), soft-decision
  /// CC(7,1/2) reaches 1% post-decode BER 3 dB below the raw threshold
  /// (Fig. 18b bench) at half throughput, and deep RS(255,127) holds to
  /// -7 dB for deep-fade operation (delivers fully at -6 in the
  /// closed-loop study).
  [[nodiscard]] static RateTable paper_default() {
    std::vector<RateOption> opts;
    const auto add = [&](const std::string& name, phy::PhyParams p, double rate, double th) {
      opts.push_back({name, p, rate, th, coding::CodeDescriptor::none()});
      opts.push_back(
          {name + "+RS(255,223)", p, rate, th - 1.5, coding::CodeDescriptor::reed_solomon(255, 223)});
      opts.push_back({name + "+CC(7,1/2)", p, rate, th - 3.0, coding::CodeDescriptor::convolutional(7)});
      opts.push_back(
          {name + "+RS(255,127)", p, rate, th - 7.0, coding::CodeDescriptor::reed_solomon(255, 127)});
    };
    add("1kbps", phy::PhyParams::rate_1kbps(), 1000.0, 0.0);
    add("4kbps", phy::PhyParams::rate_4kbps(), 4000.0, 20.0);
    add("8kbps", phy::PhyParams::rate_8kbps(), 8000.0, 28.0);
    add("16kbps", phy::PhyParams::rate_16kbps(), 16000.0, 33.0);
    add("32kbps", phy::PhyParams::rate_32kbps(), 32000.0, 55.0);
    return RateTable(std::move(opts));
  }

  /// Index of the highest-effective-rate option whose threshold the SNR
  /// clears (ties broken by first occurrence); falls back to the
  /// minimum-threshold option when none does. `margin_db` raises every
  /// entry requirement by that much -- the hysteresis band the closed-loop
  /// RateController selects through.
  [[nodiscard]] std::size_t select_index(double snr_db, double margin_db = 0.0) const {
    const RateOption* best = nullptr;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < options_.size(); ++i) {
      const RateOption& o = options_[i];
      if (snr_db < o.threshold_db + margin_db) continue;
      if (!best || o.effective_rate_bps() > best->effective_rate_bps()) {
        best = &o;
        best_index = i;
      }
    }
    return best ? best_index : most_robust_index();
  }

  /// Highest-effective-rate option whose threshold the SNR clears; falls
  /// back to the most robust (minimum-threshold) option when none does.
  [[nodiscard]] const RateOption& select(double snr_db) const {
    return options_[select_index(snr_db)];
  }

  /// Index of the lowest-threshold option (ties broken toward the lower
  /// effective rate): what a tag with no SNR margin at all must run.
  [[nodiscard]] std::size_t most_robust_index() const {
    std::size_t r = 0;
    for (std::size_t i = 1; i < options_.size(); ++i) {
      const RateOption& o = options_[i];
      if (o.threshold_db < options_[r].threshold_db ||
          (o.threshold_db == options_[r].threshold_db &&
           o.effective_rate_bps() < options_[r].effective_rate_bps()))
        r = i;
    }
    return r;
  }

  /// The lowest-rate option every tag can use (the Fig. 18c baseline
  /// assigns this to the whole network).
  [[nodiscard]] const RateOption& most_robust() const {
    return options_[most_robust_index()];
  }

  [[nodiscard]] const RateOption& option(std::size_t index) const {
    RT_ENSURE(index < options_.size(), "rate option index out of range");
    return options_[index];
  }
  [[nodiscard]] std::size_t size() const { return options_.size(); }
  [[nodiscard]] const std::vector<RateOption>& all() const { return options_; }

 private:
  std::vector<RateOption> options_;
};

}  // namespace rt::mac
