#include "phy/mobile.h"

#include "common/narrow.h"
#include "lcm/tag_array.h"
#include "linalg/least_squares.h"
#include "signal/mls.h"

namespace rt::phy {

namespace {

/// Guard length flanking each sync field: V idle cycles, so block-start
/// histories are exactly zero and data-pulse windows never reach into the
/// sync pattern.
int sync_guard_slots(const PhyParams& p) {
  return std::max(1, p.training_memory) * p.dsm_order;
}

}  // namespace

MobileModulator::MobileModulator(const PhyParams& params, const MobileConfig& config)
    : p_(params), cfg_(config), constellation_(params.bits_per_axis, params.use_q_channel) {
  p_.validate();
  cfg_.validate(p_);
  RT_ENSURE(p_.basic_rest_slots == 0, "mobile segmentation assumes overlapped DSM");
}

std::vector<lcm::Firing> MobileModulator::sync_firings(const PhyParams& p, int first_slot,
                                                       int sync_slots) {
  // A fixed MLS-derived on/off pattern, offset from the preamble's so the
  // two cannot be confused.
  const auto seq = sig::mls(7);
  const int max_level = p.levels_per_axis() - 1;
  std::vector<lcm::Firing> out;
  for (int i = 0; i < sync_slots; ++i) {
    lcm::Firing f;
    f.time_s = (first_slot + i) * p.slot_s;
    f.module = i % p.dsm_order;
    f.level_i = seq[(31 + static_cast<std::size_t>(i)) % seq.size()] ? max_level : 0;
    f.level_q = p.use_q_channel
                    ? (seq[(73 + static_cast<std::size_t>(i)) % seq.size()] ? max_level : 0)
                    : -1;
    out.push_back(f);
  }
  return out;
}

MobilePacket MobileModulator::modulate(std::span<const std::uint8_t> payload_bits,
                                       bool scramble) const {
  std::vector<std::uint8_t> bits(payload_bits.begin(), payload_bits.end());
  if (scramble) bits = scrambler_.apply(bits);
  const int bps = constellation_.bits_per_symbol();
  const std::size_t group_bits =
      static_cast<std::size_t>(p_.dsm_order) * static_cast<std::size_t>(bps);
  while (bits.size() % group_bits != 0) bits.push_back(0);
  const int total_symbols = narrow_cast<int>(bits.size()) / bps;

  MobilePacket out;
  out.layout = FrameLayout::for_params(p_, 0);
  const int guard = sync_guard_slots(p_);

  // Header (preamble + training) reuses the standard frame sections.
  out.firings = preamble_firings(p_, out.layout.preamble_begin());
  const auto tsched = training_schedule(p_, out.layout);
  const auto tfirings = training_firings(p_, tsched);
  out.firings.insert(out.firings.end(), tfirings.begin(), tfirings.end());

  int cursor = out.layout.payload_begin();
  int emitted = 0;
  int block_index = 0;
  while (emitted < total_symbols) {
    MobileBlock block;
    if (block_index > 0) {
      // guard | sync | guard
      block.sync_begin_slot = cursor + guard;
      const auto sf = sync_firings(p_, block.sync_begin_slot, cfg_.sync_slots);
      out.firings.insert(out.firings.end(), sf.begin(), sf.end());
      cursor = block.sync_begin_slot + cfg_.sync_slots + guard;
    }
    block.payload_begin_slot = cursor;
    block.payload_symbols = std::min(cfg_.block_symbols, total_symbols - emitted);
    block.payload_slots = block.payload_symbols;  // overlapped DSM: 1 symbol per slot
    for (int s = 0; s < block.payload_symbols; ++s) {
      const auto offset = static_cast<std::size_t>(emitted + s) * static_cast<std::size_t>(bps);
      const auto sym = constellation_.map(std::span(bits).subspan(offset, bps));
      out.payload_symbols.push_back(sym);
      lcm::Firing f;
      f.time_s = (block.payload_begin_slot + s) * p_.slot_s;
      f.module = s % p_.dsm_order;
      f.level_i = sym.level_i;
      f.level_q = sym.level_q;
      out.firings.push_back(f);
    }
    cursor += block.payload_slots;
    emitted += block.payload_symbols;
    out.blocks.push_back(block);
    ++block_index;
  }
  out.total_slots = cursor + p_.dsm_order;  // tail
  out.duration_s = out.total_slots * p_.slot_s;
  std::sort(out.firings.begin(), out.firings.end(),
            [](const lcm::Firing& a, const lcm::Firing& b) { return a.time_s < b.time_s; });
  return out;
}

MobileDemodulator::MobileDemodulator(const PhyParams& params, const MobileConfig& config,
                                     OfflineModel offline_model)
    : p_(params), cfg_(config), inner_(params, std::move(offline_model)) {
  cfg_.validate(p_);
  // Rotation-free sync reference from the ideal tag (same procedure as the
  // preamble reference).
  lcm::TagArray ideal(p_.tag_config());
  const auto firings = MobileModulator::sync_firings(p_, 0, cfg_.sync_slots);
  const double duration = (cfg_.sync_slots + p_.dsm_order) * p_.slot_s;
  const auto active = ideal.synthesize(firings, p_.sample_rate_hz, duration);
  lcm::TagArray idle(p_.tag_config());
  const auto base = idle.synthesize({}, p_.sample_rate_hz, duration);
  sync_reference_.resize(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) sync_reference_[i] = active[i] - base[i];
}

MobileDemodulator::Result MobileDemodulator::demodulate(const sig::IqWaveform& rx,
                                                        const MobilePacket& packet,
                                                        const DemodOptions& options) const {
  Result out;
  const auto det = inner_.preamble().detect(rx, options.search_limit);
  out.preamble_found = det.found;
  if (!det.found) return out;
  const std::size_t t_samps = p_.samples_per_slot();
  const std::size_t frame_start = det.start_sample;

  // One-time channel training on the header (section 4.3.3), valid for
  // pulse shapes; fast drift is handled per block below.
  const auto header_corrected = inner_.preamble().correct(rx, det);
  std::optional<PulseBank> trained;
  const PulseBank* bank = options.oracle;
  if (options.online_training) {
    trained = OnlineTrainer::train(p_, inner_.offline_model(), packet.layout, header_corrected,
                                   frame_start);
    bank = &*trained;
  }
  RT_ENSURE(bank != nullptr, "no pulse bank: enable online training or provide an oracle");
  const DfeEqualizer eq(p_, *bank);

  const int modules = p_.use_q_channel ? 2 * p_.dsm_order : p_.dsm_order;
  const std::vector<unsigned> zero_hist(
      static_cast<std::size_t>(modules) * static_cast<std::size_t>(p_.bits_per_axis), 0U);

  Constellation constellation(p_.bits_per_axis, p_.use_q_channel);

  // Pass 1: estimate (a, b, c) at every known anchor -- the preamble
  // (anchored at its centre) and every sync field. A drifting channel is
  // then tracked by interpolating the coefficients to each block's centre
  // rather than holding the last estimate (which would lag by up to a
  // guard + block).
  struct Anchor {
    double slot;  ///< centre position, in frame slots
    Complex a, b, c;
  };
  std::vector<Anchor> anchors;
  anchors.push_back({0.5 * p_.preamble_slots, det.a, det.b, det.c});
  for (const auto& block : packet.blocks) {
    if (block.sync_begin_slot == 0) continue;
    const std::size_t off =
        frame_start + static_cast<std::size_t>(block.sync_begin_slot) * t_samps;
    if (off + sync_reference_.size() > rx.size()) continue;
    linalg::ComplexMatrix design(sync_reference_.size(), 3);
    std::vector<Complex> y(sync_reference_.size());
    for (std::size_t i = 0; i < sync_reference_.size(); ++i) {
      const Complex x = rx[off + i];
      design(i, 0) = x;
      design(i, 1) = std::conj(x);
      design(i, 2) = Complex(1.0, 0.0);
      y[i] = sync_reference_[i];
    }
    try {
      const auto sol = linalg::solve_least_squares(design, y);
      anchors.push_back({block.sync_begin_slot + 0.5 * cfg_.sync_slots, sol[0], sol[1], sol[2]});
      ++out.blocks_resynced;
    } catch (const PreconditionError&) {
      // Degenerate sync window: skip this anchor.
    }
  }

  // Coefficients at an arbitrary slot: linear interpolation between the
  // bracketing anchors (amplitude/rotation drift is smooth on the packet
  // time scale), clamped at the ends.
  const auto coeffs_at = [&](double slot) -> Anchor {
    if (slot <= anchors.front().slot) return anchors.front();
    if (slot >= anchors.back().slot) return anchors.back();
    for (std::size_t i = 1; i < anchors.size(); ++i) {
      if (slot > anchors[i].slot) continue;
      const auto& lo = anchors[i - 1];
      const auto& hi = anchors[i];
      const double t = (slot - lo.slot) / (hi.slot - lo.slot);
      return {slot, lo.a + t * (hi.a - lo.a), lo.b + t * (hi.b - lo.b),
              lo.c + t * (hi.c - lo.c)};
    }
    return anchors.back();
  };

  // Pass 2: demodulate each block under its interpolated correction.
  for (const auto& block : packet.blocks) {
    const double centre = block.payload_begin_slot + 0.5 * block.payload_slots;
    const auto anchor = coeffs_at(centre);
    PreambleDetection block_det = det;
    block_det.a = anchor.a;
    block_det.b = anchor.b;
    block_det.c = anchor.c;
    out.block_rotation_deg.push_back(-0.5 * rt::rad_to_deg(std::arg(block_det.a)));
    const auto corrected = inner_.preamble().correct(rx, block_det);
    const std::size_t payload_begin =
        frame_start + static_cast<std::size_t>(block.payload_begin_slot) * t_samps;
    const auto eqr = eq.equalize(corrected, payload_begin, block.payload_slots, zero_hist);
    for (const auto& sym : eqr.symbols) {
      const auto bits = constellation.unmap(sym);
      out.bits.insert(out.bits.end(), bits.begin(), bits.end());
    }
  }
  if (options.descramble) out.bits = sig::Scrambler{}.apply(out.bits);
  return out;
}

}  // namespace rt::phy
