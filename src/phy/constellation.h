// PQAM constellation mapping: bits <-> per-axis drive levels <-> complex
// symbols.
//
// Each polarization axis carries an amplitude level in {0 .. sqrt(P)-1}
// realized by the binary-weighted pixels; Gray labelling keeps adjacent
// levels one bit apart. The canonical complex symbol places the normalized
// I level on the real axis and the Q level on the imaginary axis.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "signal/gray.h"

namespace rt::phy {

using Complex = std::complex<double>;

/// One PQAM symbol as drive levels (Q level is -1 when the Q channel is
/// unused by the scheme, e.g. OOK/PAM baselines).
struct SymbolLevels {
  int level_i = 0;
  int level_q = 0;

  friend bool operator==(const SymbolLevels&, const SymbolLevels&) = default;
};

class Constellation {
 public:
  Constellation(int bits_per_axis, bool use_q_channel)
      : bits_(bits_per_axis), use_q_(use_q_channel) {
    RT_ENSURE(bits_ >= 1 && bits_ <= 4, "bits per axis must be in [1, 4]");
  }

  [[nodiscard]] int bits_per_axis() const { return bits_; }
  [[nodiscard]] int levels_per_axis() const { return 1 << bits_; }
  [[nodiscard]] int bits_per_symbol() const { return use_q_ ? 2 * bits_ : bits_; }
  [[nodiscard]] bool uses_q() const { return use_q_; }

  /// All levels a symbol may take (Q fixed to -1 without the Q channel).
  [[nodiscard]] std::vector<SymbolLevels> alphabet() const {
    // rt-check: alloc-ok (cold: called only to refill the EqualizerWorkspace alphabet cache)
    std::vector<SymbolLevels> out;
    out.reserve(static_cast<std::size_t>(levels_per_axis()) *
                static_cast<std::size_t>(use_q_ ? levels_per_axis() : 1));
    for (int i = 0; i < levels_per_axis(); ++i) {
      if (use_q_) {
        for (int q = 0; q < levels_per_axis(); ++q) out.push_back({i, q});
      } else {
        out.push_back({i, -1});
      }
    }
    return out;
  }

  /// Maps `bits_per_symbol()` bits (MSB first: I bits then Q bits) to
  /// levels via Gray coding.
  [[nodiscard]] SymbolLevels map(std::span<const std::uint8_t> bits) const {
    RT_ENSURE(bits.size() == static_cast<std::size_t>(bits_per_symbol()),
              "wrong number of bits for one symbol");
    const auto to_level = [&](std::size_t offset) {
      std::uint32_t v = 0;
      for (int b = 0; b < bits_; ++b) v = (v << 1) | bits[offset + static_cast<std::size_t>(b)];
      return narrow_cast<int>(sig::gray_encode(v));
    };
    SymbolLevels s;
    s.level_i = to_level(0);
    s.level_q = use_q_ ? to_level(static_cast<std::size_t>(bits_)) : -1;
    return s;
  }

  /// Inverse of map().
  [[nodiscard]] std::vector<std::uint8_t> unmap(const SymbolLevels& s) const {
    std::vector<std::uint8_t> bits;
    bits.reserve(static_cast<std::size_t>(bits_per_symbol()));
    unmap_into(s, bits);
    return bits;
  }

  /// Appends the unmapped bits of `s` to a caller-owned buffer (no
  /// allocation once the buffer has capacity).
  void unmap_into(const SymbolLevels& s, std::vector<std::uint8_t>& bits) const {
    const auto push_level = [&](int level) {
      RT_ENSURE(level >= 0 && level < levels_per_axis(), "level out of range");
      const std::uint32_t v = sig::gray_decode(narrow_cast<std::uint32_t>(level));
      for (int b = bits_ - 1; b >= 0; --b)
        // rt-check: alloc-ok (appends into the caller's pooled buffer; capacity reached at warm-up)
        bits.push_back(narrow_cast<std::uint8_t>((v >> b) & 1U));
    };
    push_level(s.level_i);
    if (use_q_) push_level(s.level_q);
  }

  /// Appends max-log-MAP per-bit LLRs for one slot to a caller-owned
  /// buffer. `scores` holds one distance-style score per alphabet() entry
  /// (same i-major order); for each of the bits_per_symbol() bit positions
  /// the LLR is min-score-over-bit=1 minus min-score-over-bit=0, so
  /// positive = bit 0, and the magnitude is the decision margin in score
  /// units. Any additive constant shared by all scores cancels.
  void unmap_soft_into(std::span<const double> scores, std::vector<float>& llrs) const {
    const int nb = bits_per_symbol();
    RT_ENSURE(nb <= 8, "soft demapper supports at most 8 bits per symbol");
    constexpr double kInf = 1e300;
    std::array<double, 8> min0{};
    std::array<double, 8> min1{};
    min0.fill(kInf);
    min1.fill(kInf);
    const std::size_t per_axis = narrow_cast<std::size_t>(levels_per_axis());
    const std::size_t count = use_q_ ? per_axis * per_axis : per_axis;
    RT_ENSURE(scores.size() == count, "one score per alphabet entry required");
    for (std::size_t idx = 0; idx < count; ++idx) {
      // alphabet() is i-major, q-minor; the bit label Gray-decodes each axis
      // (matching unmap_into's MSB-first I-then-Q order).
      const std::uint32_t li = narrow_cast<std::uint32_t>(use_q_ ? idx / per_axis : idx);
      const std::uint32_t lq = narrow_cast<std::uint32_t>(use_q_ ? idx % per_axis : 0);
      const std::uint32_t label =
          use_q_ ? (sig::gray_decode(li) << bits_) | sig::gray_decode(lq) : sig::gray_decode(li);
      const double score = scores[idx];
      for (int j = 0; j < nb; ++j) {
        auto& slot = ((label >> (nb - 1 - j)) & 1U) ? min1[narrow_cast<std::size_t>(j)]
                                                    : min0[narrow_cast<std::size_t>(j)];
        slot = score < slot ? score : slot;
      }
    }
    for (int j = 0; j < nb; ++j)
      // rt-check: alloc-ok (appends into the caller's pooled buffer; capacity reached at warm-up)
      llrs.push_back(static_cast<float>(min1[narrow_cast<std::size_t>(j)] -
                                        min0[narrow_cast<std::size_t>(j)]));
  }

  /// Normalized drive fraction rho in [0, 1] for a level.
  [[nodiscard]] double rho(int level) const {
    if (level < 0) return 0.0;
    RT_ENSURE(level < levels_per_axis(), "level out of range");
    if (levels_per_axis() == 1) return static_cast<double>(level);
    return static_cast<double>(level) / static_cast<double>(levels_per_axis() - 1);
  }

  /// Canonical complex constellation point (rho_i, rho_q).
  [[nodiscard]] Complex point(const SymbolLevels& s) const {
    return {rho(s.level_i), use_q_ ? rho(s.level_q) : 0.0};
  }

 private:
  int bits_;
  bool use_q_;
};

}  // namespace rt::phy
