// PQAM constellation mapping: bits <-> per-axis drive levels <-> complex
// symbols.
//
// Each polarization axis carries an amplitude level in {0 .. sqrt(P)-1}
// realized by the binary-weighted pixels; Gray labelling keeps adjacent
// levels one bit apart. The canonical complex symbol places the normalized
// I level on the real axis and the Q level on the imaginary axis.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "signal/gray.h"

namespace rt::phy {

using Complex = std::complex<double>;

/// One PQAM symbol as drive levels (Q level is -1 when the Q channel is
/// unused by the scheme, e.g. OOK/PAM baselines).
struct SymbolLevels {
  int level_i = 0;
  int level_q = 0;

  friend bool operator==(const SymbolLevels&, const SymbolLevels&) = default;
};

class Constellation {
 public:
  Constellation(int bits_per_axis, bool use_q_channel)
      : bits_(bits_per_axis), use_q_(use_q_channel) {
    RT_ENSURE(bits_ >= 1 && bits_ <= 4, "bits per axis must be in [1, 4]");
  }

  [[nodiscard]] int bits_per_axis() const { return bits_; }
  [[nodiscard]] int levels_per_axis() const { return 1 << bits_; }
  [[nodiscard]] int bits_per_symbol() const { return use_q_ ? 2 * bits_ : bits_; }
  [[nodiscard]] bool uses_q() const { return use_q_; }

  /// All levels a symbol may take (Q fixed to -1 without the Q channel).
  [[nodiscard]] std::vector<SymbolLevels> alphabet() const {
    // rt-check: alloc-ok (cold: called only to refill the EqualizerWorkspace alphabet cache)
    std::vector<SymbolLevels> out;
    out.reserve(static_cast<std::size_t>(levels_per_axis()) *
                static_cast<std::size_t>(use_q_ ? levels_per_axis() : 1));
    for (int i = 0; i < levels_per_axis(); ++i) {
      if (use_q_) {
        for (int q = 0; q < levels_per_axis(); ++q) out.push_back({i, q});
      } else {
        out.push_back({i, -1});
      }
    }
    return out;
  }

  /// Maps `bits_per_symbol()` bits (MSB first: I bits then Q bits) to
  /// levels via Gray coding.
  [[nodiscard]] SymbolLevels map(std::span<const std::uint8_t> bits) const {
    RT_ENSURE(bits.size() == static_cast<std::size_t>(bits_per_symbol()),
              "wrong number of bits for one symbol");
    const auto to_level = [&](std::size_t offset) {
      std::uint32_t v = 0;
      for (int b = 0; b < bits_; ++b) v = (v << 1) | bits[offset + static_cast<std::size_t>(b)];
      return narrow_cast<int>(sig::gray_encode(v));
    };
    SymbolLevels s;
    s.level_i = to_level(0);
    s.level_q = use_q_ ? to_level(static_cast<std::size_t>(bits_)) : -1;
    return s;
  }

  /// Inverse of map().
  [[nodiscard]] std::vector<std::uint8_t> unmap(const SymbolLevels& s) const {
    std::vector<std::uint8_t> bits;
    bits.reserve(static_cast<std::size_t>(bits_per_symbol()));
    unmap_into(s, bits);
    return bits;
  }

  /// Appends the unmapped bits of `s` to a caller-owned buffer (no
  /// allocation once the buffer has capacity).
  void unmap_into(const SymbolLevels& s, std::vector<std::uint8_t>& bits) const {
    const auto push_level = [&](int level) {
      RT_ENSURE(level >= 0 && level < levels_per_axis(), "level out of range");
      const std::uint32_t v = sig::gray_decode(narrow_cast<std::uint32_t>(level));
      for (int b = bits_ - 1; b >= 0; --b)
        // rt-check: alloc-ok (appends into the caller's pooled buffer; capacity reached at warm-up)
        bits.push_back(narrow_cast<std::uint8_t>((v >> b) & 1U));
    };
    push_level(s.level_i);
    if (use_q_) push_level(s.level_q);
  }

  /// Normalized drive fraction rho in [0, 1] for a level.
  [[nodiscard]] double rho(int level) const {
    if (level < 0) return 0.0;
    RT_ENSURE(level < levels_per_axis(), "level out of range");
    if (levels_per_axis() == 1) return static_cast<double>(level);
    return static_cast<double>(level) / static_cast<double>(levels_per_axis() - 1);
  }

  /// Canonical complex constellation point (rho_i, rho_q).
  [[nodiscard]] Complex point(const SymbolLevels& s) const {
    return {rho(s.level_i), use_q_ ? rho(s.level_q) : 0.0};
  }

 private:
  int bits_;
  bool use_q_;
};

}  // namespace rt::phy
