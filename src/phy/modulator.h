// PHY modulator: payload bits -> complete packet firing schedule.
//
// Builds the preamble, training field and payload sections (frame.h) and
// maps payload bits onto DSM slots through the PQAM constellation: slot n
// fires module (n mod L) on each polarization group with the Gray-coded
// amplitude levels of the next log2(P) bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/narrow.h"
#include "lcm/tag_array.h"
#include "phy/constellation.h"
#include "phy/frame.h"
#include "phy/params.h"
#include "signal/scrambler.h"

namespace rt::phy {

struct PacketSchedule {
  std::vector<lcm::Firing> firings;  ///< sorted by time; feed to TagArray
  FrameLayout layout;
  std::vector<SymbolLevels> payload_symbols;  ///< ground truth for testing
  int payload_symbol_count = 0;               ///< PQAM symbols (= active slots used)
  double duration_s = 0.0;                    ///< total frame duration incl. tail
};

class Modulator {
 public:
  explicit Modulator(const PhyParams& params)
      : p_(params), constellation_(params.bits_per_axis, params.use_q_channel) {
    p_.validate();
  }

  /// Number of padding-free payload bits per slot.
  [[nodiscard]] int bits_per_slot() const { return constellation_.bits_per_symbol(); }

  /// Builds a full packet. `payload_bits` is scrambled (DC balance,
  /// footnote 4), zero-padded to a whole number of slots, and mapped to
  /// symbols. Set `scramble` false for raw-waveform experiments.
  [[nodiscard]] PacketSchedule modulate(std::span<const std::uint8_t> payload_bits,
                                        bool scramble = true) const {
    std::vector<std::uint8_t> bits(payload_bits.begin(), payload_bits.end());
    if (scramble) bits = scrambler_.apply(bits);
    const int bps = bits_per_slot();
    // Pad to whole firing groups so the receiver can derive the symbol
    // count from the slot count alone (basic DSM keeps whole periods).
    const std::size_t group_bits =
        static_cast<std::size_t>(p_.dsm_order) * static_cast<std::size_t>(bps);
    while (bits.size() % group_bits != 0) bits.push_back(0);
    const int payload_symbols = narrow_cast<int>(bits.size()) / bps;
    const int groups = payload_symbols / p_.dsm_order;
    const int payload_slots = groups * p_.period_slots();

    PacketSchedule out;
    out.layout = FrameLayout::for_params(p_, payload_slots);
    out.payload_symbol_count = payload_symbols;

    // Preamble.
    out.firings = preamble_firings(p_, out.layout.preamble_begin());
    // Training field.
    const auto tsched = training_schedule(p_, out.layout);
    const auto tfirings = training_firings(p_, tsched);
    out.firings.insert(out.firings.end(), tfirings.begin(), tfirings.end());
    // Pixel-calibration rounds (extension; empty when disabled).
    const auto pfirings = pixel_training_firings(p_, out.layout);
    out.firings.insert(out.firings.end(), pfirings.begin(), pfirings.end());
    // Payload: symbol s occupies the s-th *active* slot (basic DSM rests
    // for basic_rest_slots after every L-slot group).
    for (int s = 0; s < payload_symbols; ++s) {
      const auto offset = static_cast<std::size_t>(s) * static_cast<std::size_t>(bps);
      const auto sym = constellation_.map(std::span(bits).subspan(offset, bps));
      out.payload_symbols.push_back(sym);
      const int slot = (s / p_.dsm_order) * p_.period_slots() + (s % p_.dsm_order);
      lcm::Firing f;
      f.time_s = (out.layout.payload_begin() + slot) * p_.slot_s;
      f.module = s % p_.dsm_order;
      f.level_i = sym.level_i;
      f.level_q = sym.level_q;
      out.firings.push_back(f);
    }
    std::sort(out.firings.begin(), out.firings.end(),
              [](const lcm::Firing& a, const lcm::Firing& b) { return a.time_s < b.time_s; });
    out.duration_s = out.layout.total_slots() * p_.slot_s;
    return out;
  }

  /// Descrambles bits recovered by the demodulator (inverse of modulate's
  /// scrambling; additive scrambler, so the same operation).
  [[nodiscard]] std::vector<std::uint8_t> descramble(std::span<const std::uint8_t> bits) const {
    return scrambler_.apply(bits);
  }

  [[nodiscard]] const Constellation& constellation() const { return constellation_; }
  [[nodiscard]] const PhyParams& params() const { return p_; }

 private:
  PhyParams p_;
  Constellation constellation_;
  sig::Scrambler scrambler_{};
};

}  // namespace rt::phy
