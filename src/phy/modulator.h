// PHY modulator: payload bits -> complete packet firing schedule.
//
// Builds the preamble, training field and payload sections (frame.h) and
// maps payload bits onto DSM slots through the PQAM constellation: slot n
// fires module (n mod L) on each polarization group with the Gray-coded
// amplitude levels of the next log2(P) bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/narrow.h"
#include "lcm/tag_array.h"
#include "obs/trace.h"
#include "phy/constellation.h"
#include "phy/frame.h"
#include "phy/params.h"
#include "signal/scrambler.h"

namespace rt::phy {

struct PacketSchedule {
  std::vector<lcm::Firing> firings;  ///< sorted by time; feed to TagArray
  FrameLayout layout;
  std::vector<SymbolLevels> payload_symbols;  ///< ground truth for testing
  int payload_symbol_count = 0;               ///< PQAM symbols (= active slots used)
  double duration_s = 0.0;                    ///< total frame duration incl. tail
};

/// Reusable modulation scratch. The frame prefix (preamble + training +
/// pixel-calibration firings) is payload-independent, so it is built and
/// sorted once and replayed for every packet with the same geometry.
struct ModulatorWorkspace {
  std::vector<std::uint8_t> bits;       ///< scrambled, padded payload bits
  std::vector<lcm::Firing> prefix;      ///< sorted payload-independent firings
  FrameLayout prefix_layout;
  PhyParams prefix_params;
  bool prefix_valid = false;
};

class Modulator {
 public:
  explicit Modulator(const PhyParams& params)
      : p_(params), constellation_(params.bits_per_axis, params.use_q_channel) {
    p_.validate();
  }

  /// Number of padding-free payload bits per slot.
  [[nodiscard]] int bits_per_slot() const { return constellation_.bits_per_symbol(); }

  /// Payload slot count a `payload_bits`-bit payload occupies after
  /// padding to whole firing groups -- the frame-geometry contract a
  /// streaming receiver needs before it has seen any packet. Matches
  /// modulate()'s layout exactly.
  [[nodiscard]] int payload_slots_for(std::size_t payload_bits) const {
    const auto bps = static_cast<std::size_t>(bits_per_slot());
    const std::size_t group_bits = static_cast<std::size_t>(p_.dsm_order) * bps;
    const std::size_t padded = ((payload_bits + group_bits - 1) / group_bits) * group_bits;
    const int groups = narrow_cast<int>(padded / group_bits);
    return groups * p_.period_slots();
  }

  /// Builds a full packet. `payload_bits` is scrambled (DC balance,
  /// footnote 4), zero-padded to a whole number of slots, and mapped to
  /// symbols. Set `scramble` false for raw-waveform experiments.
  [[nodiscard]] PacketSchedule modulate(std::span<const std::uint8_t> payload_bits,
                                        bool scramble = true) const {
    ModulatorWorkspace ws;
    PacketSchedule out;
    modulate_into(payload_bits, ws, out, scramble);
    return out;
  }

  /// Workspace form of modulate(): rebuilds `out` inside its existing
  /// capacity and reuses the cached frame prefix. Bit-identical to
  /// modulate().
  void modulate_into(std::span<const std::uint8_t> payload_bits, ModulatorWorkspace& ws,
                     PacketSchedule& out, bool scramble = true) const {
    RT_TRACE_SPAN("modulate");
    auto& bits = ws.bits;
    bits.assign(payload_bits.begin(), payload_bits.end());
    if (scramble) scrambler_.apply_in_place(bits);
    const int bps = bits_per_slot();
    // Pad to whole firing groups so the receiver can derive the symbol
    // count from the slot count alone (basic DSM keeps whole periods).
    const std::size_t group_bits =
        static_cast<std::size_t>(p_.dsm_order) * static_cast<std::size_t>(bps);
    // rt-check: alloc-ok (pads less than one firing group inside pooled ws.bits capacity)
    while (bits.size() % group_bits != 0) bits.push_back(0);
    const int payload_symbols = narrow_cast<int>(bits.size()) / bps;
    const int groups = payload_symbols / p_.dsm_order;
    const int payload_slots = groups * p_.period_slots();

    out.layout = FrameLayout::for_params(p_, payload_slots);
    out.payload_symbol_count = payload_symbols;

    // Frame prefix (preamble + training + pixel calibration): depends only
    // on (params, layout), so replay the cached sorted copy when possible.
    if (!ws.prefix_valid || !(ws.prefix_params == p_) || !(ws.prefix_layout == out.layout)) {
      ws.prefix = preamble_firings(p_, out.layout.preamble_begin());
      const auto tsched = training_schedule(p_, out.layout);
      const auto tfirings = training_firings(p_, tsched);
      ws.prefix.insert(ws.prefix.end(), tfirings.begin(), tfirings.end());
      const auto pfirings = pixel_training_firings(p_, out.layout);
      ws.prefix.insert(ws.prefix.end(), pfirings.begin(), pfirings.end());
      std::sort(ws.prefix.begin(), ws.prefix.end(),
                [](const lcm::Firing& a, const lcm::Firing& b) { return a.time_s < b.time_s; });
      ws.prefix_params = p_;
      ws.prefix_layout = out.layout;
      ws.prefix_valid = true;
    }
    out.firings.clear();
    out.firings.reserve(ws.prefix.size() + static_cast<std::size_t>(payload_symbols));
    out.firings.insert(out.firings.end(), ws.prefix.begin(), ws.prefix.end());
    // Payload: symbol s occupies the s-th *active* slot (basic DSM rests
    // for basic_rest_slots after every L-slot group). Payload firing times
    // ascend and all exceed every prefix time, so appending keeps the
    // whole schedule sorted without re-sorting (all times are distinct --
    // the full-sort result is the same sequence).
    out.payload_symbols.clear();
    out.payload_symbols.reserve(static_cast<std::size_t>(payload_symbols));
    for (int s = 0; s < payload_symbols; ++s) {
      const auto offset = static_cast<std::size_t>(s) * static_cast<std::size_t>(bps);
      const auto sym = constellation_.map(std::span(bits).subspan(offset, bps));
      out.payload_symbols.push_back(sym);
      const int slot = (s / p_.dsm_order) * p_.period_slots() + (s % p_.dsm_order);
      lcm::Firing f;
      f.time_s = (out.layout.payload_begin() + slot) * p_.slot_s;
      f.module = s % p_.dsm_order;
      f.level_i = sym.level_i;
      f.level_q = sym.level_q;
      out.firings.push_back(f);
    }
    RT_ASSERT(std::is_sorted(out.firings.begin(), out.firings.end(),
                             [](const lcm::Firing& a, const lcm::Firing& b) {
                               return a.time_s < b.time_s;
                             }));
    out.duration_s = out.layout.total_slots() * p_.slot_s;
  }

  /// Descrambles bits recovered by the demodulator (inverse of modulate's
  /// scrambling; additive scrambler, so the same operation).
  [[nodiscard]] std::vector<std::uint8_t> descramble(std::span<const std::uint8_t> bits) const {
    return scrambler_.apply(bits);
  }

  [[nodiscard]] const Constellation& constellation() const { return constellation_; }
  [[nodiscard]] const PhyParams& params() const { return p_; }

 private:
  PhyParams p_;
  Constellation constellation_;
  sig::Scrambler scrambler_{};
};

}  // namespace rt::phy
