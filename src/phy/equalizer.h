// K-branch decision-feedback equalizer for the DSM-PQAM ISI channel
// (paper section 4.3.2, Fig. 10).
//
// DSM deliberately creates ISI spanning L symbols. The DFE keeps K
// candidate decision prefixes ("branches"); per slot it expands every
// branch by all P constellation points, scores each candidate on the first
// T-window of the residual against the fingerprint templates, keeps the K
// best, and subtracts the decided pulse (full W span) from each survivor's
// residual. With state merging enabled and K >= the number of distinct
// trellis states this becomes the Viterbi detector the paper cites as the
// optimal-but-costly reference; K = 1 is the naive DFE of Fig. 17a.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/constellation.h"
#include "phy/params.h"
#include "phy/pulse_model.h"
#include "signal/waveform.h"

namespace rt::phy {

struct EqualizerResult {
  std::vector<SymbolLevels> symbols;
  double final_metric = 0.0;  ///< cumulative squared error of the winner
};

class DfeEqualizer {
 public:
  DfeEqualizer(const PhyParams& params, const PulseBank& bank);

  /// Equalizes `n_slots` payload slots from `rx` starting at sample index
  /// `payload_begin`. `initial_histories` holds the V-bit firing history
  /// of each *pixel* (module-major: I modules 0..L-1 then Q modules, and
  /// within a module the weight pixels MSB-first) at the first payload
  /// slot.
  [[nodiscard]] EqualizerResult equalize(const sig::IqWaveform& rx, std::size_t payload_begin,
                                         int n_slots,
                                         std::span<const unsigned> initial_histories) const;

 private:
  const PhyParams p_;
  const PulseBank& bank_;
  Constellation constellation_;
};

}  // namespace rt::phy
