// K-branch decision-feedback equalizer for the DSM-PQAM ISI channel
// (paper section 4.3.2, Fig. 10).
//
// DSM deliberately creates ISI spanning L symbols. The DFE keeps K
// candidate decision prefixes ("branches"); per slot it expands every
// branch by all P constellation points, scores each candidate on the first
// T-window of the residual against the fingerprint templates, keeps the K
// best, and subtracts the decided pulse (full W span) from each survivor's
// residual. With state merging enabled and K >= the number of distinct
// trellis states this becomes the Viterbi detector the paper cites as the
// optimal-but-costly reference; K = 1 is the naive DFE of Fig. 17a.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernels.h"
#include "phy/constellation.h"
#include "phy/params.h"
#include "phy/pulse_model.h"
#include "signal/waveform.h"

namespace rt::phy {

struct EqualizerResult {
  std::vector<SymbolLevels> symbols;
  double final_metric = 0.0;  ///< cumulative squared error of the winner
  /// Per-bit LLRs (positive = bit 0) along the winning path, one
  /// bits_per_symbol() group per decided slot; empty unless the soft
  /// output was requested.
  std::vector<float> soft_bits;
};

/// Reusable branch pools and scratch for DfeEqualizer::equalize_into().
/// Branches live in two pools (current generation / survivors) whose inner
/// vectors keep their capacity across slots and packets, so the branch
/// expansion loop stops allocating once it has seen the deepest packet.
struct EqualizerWorkspace {
  struct Branch {
    double metric = 0.0;
    std::vector<SymbolLevels> decisions;
    std::vector<Complex> residual;     ///< upcoming window [nT, nT + W)
    std::vector<unsigned> pixel_hist;  ///< per-pixel V-bit firing history
    std::vector<float> llrs;           ///< per-bit LLRs along this prefix (soft mode)
  };
  struct Candidate {
    std::size_t parent;
    SymbolLevels sym;
    double metric;
  };
  std::vector<Branch> cur;   ///< live branches (first n_cur entries)
  std::vector<Branch> next;  ///< survivor pool being built
  std::size_t n_cur = 0;
  std::vector<Candidate> candidates;
  std::vector<kernels::CTerm> terms;       ///< per-candidate template/weight terms
  std::vector<kernels::CTerm> tail_terms;  ///< `terms` re-based at the feedback offset
  std::vector<SymbolLevels> alphabet;  ///< cached constellation alphabet
  int alphabet_bits = 0;               ///< cache key: bits per axis
  int alphabet_q = -1;                 ///< cache key: use_q (as int; -1 = invalid)
  std::vector<char> seen_keys;         ///< flat fixed-stride merge keys
  std::vector<double> slot_scores;     ///< pre-sort candidate scores (soft mode)
};

class DfeEqualizer {
 public:
  DfeEqualizer(const PhyParams& params, const PulseBank& bank);

  /// Equalizes `n_slots` payload slots from `rx` starting at sample index
  /// `payload_begin`. `initial_histories` holds the V-bit firing history
  /// of each *pixel* (module-major: I modules 0..L-1 then Q modules, and
  /// within a module the weight pixels MSB-first) at the first payload
  /// slot.
  [[nodiscard]] EqualizerResult equalize(const sig::IqWaveform& rx, std::size_t payload_begin,
                                         int n_slots,
                                         std::span<const unsigned> initial_histories) const;

  /// Workspace form of equalize(): writes the winning decision sequence
  /// into `out`, reusing the workspace pools. Bit-identical to equalize().
  /// With `soft_output`, each surviving branch additionally carries max-
  /// log-MAP per-bit LLRs (min-distance margins over this slot's candidate
  /// scores, conditioned on the branch's own decision prefix), and the
  /// winner's LLR stream is exported in `out.soft_bits`.
  void equalize_into(const sig::IqWaveform& rx, std::size_t payload_begin, int n_slots,
                     std::span<const unsigned> initial_histories, EqualizerWorkspace& ws,
                     EqualizerResult& out, bool soft_output = false) const;

 private:
  const PhyParams p_;
  const PulseBank& bank_;
  Constellation constellation_;
};

}  // namespace rt::phy
