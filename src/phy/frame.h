// PHY frame layout and the deterministic preamble / training-field
// patterns shared by modulator and demodulator.
//
// Frame structure (all in units of the DSM slot T):
//
//   | preamble | guard | training field | guard | payload | tail |
//
// * Preamble (section 4.3.1): a fixed MLS-derived on/off pattern across
//   both polarization channels, detected against an offline reference for
//   sample-level sync and rotation regression.
// * Training field (section 4.3.3): 2L rounds of W = L*T each; module m
//   (global index, I group 0..L-1 then Q group L..2L-1) fires at its slot
//   in every round r >= m (a lower-triangular pattern -- linearly
//   independent across the 2L transmitters, and exercising multiple
//   fingerprint histories). The receiver solves the per-module basis
//   coefficients from this field by least squares.
// * Guards of one DSM symbol let all pulses die out between sections.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "lcm/tag_array.h"
#include "phy/params.h"
#include "signal/mls.h"

namespace rt::phy {

/// Slot-indexed frame geometry for a packet with `payload_slots` slots.
struct FrameLayout {
  int preamble_slots = 0;
  int guard_slots = 0;
  int training_rounds = 0;  ///< 2L rounds, each dsm_order slots long
  int pixel_rounds = 0;     ///< per-pixel calibration rounds (0 = disabled)
  int payload_slots = 0;
  int tail_slots = 0;
  int dsm_order = 0;

  /// Layouts are pure functions of (PhyParams, payload_slots); equality
  /// lets workspace caches detect when a cached schedule still applies.
  [[nodiscard]] bool operator==(const FrameLayout&) const = default;

  [[nodiscard]] int preamble_begin() const { return 0; }
  [[nodiscard]] int training_begin() const { return preamble_slots + guard_slots; }
  [[nodiscard]] int training_slots() const { return training_rounds * dsm_order; }
  /// First slot of the pixel-calibration rounds (after the main training's
  /// guard, so the main online-training observation region stays pure).
  [[nodiscard]] int pixel_begin() const {
    return training_begin() + training_slots() + guard_slots;
  }
  [[nodiscard]] int pixel_slots() const { return pixel_rounds * dsm_order; }
  [[nodiscard]] int payload_begin() const {
    return pixel_begin() + pixel_slots() + (pixel_rounds > 0 ? guard_slots : 0);
  }
  [[nodiscard]] int total_slots() const { return payload_begin() + payload_slots + tail_slots; }

  /// Idle cycles in each guard (guard_slots / dsm_order).
  [[nodiscard]] int guard_cycles() const { return guard_slots / dsm_order; }

  [[nodiscard]] static FrameLayout for_params(const PhyParams& p, int payload_slots) {
    RT_ENSURE(payload_slots >= 0, "payload slot count cannot be negative");
    FrameLayout f;
    f.preamble_slots = p.preamble_slots;
    // Guards must cover the fingerprint memory: V idle cycles make the
    // known history at the start of the training field and the payload
    // exactly representable.
    f.guard_slots = std::max(1, p.training_memory) * p.dsm_order;
    f.training_rounds = 2 * p.dsm_order;
    f.pixel_rounds = p.pixel_calibration ? p.bits_per_axis : 0;
    f.payload_slots = payload_slots;
    f.tail_slots = p.dsm_order;
    f.dsm_order = p.dsm_order;
    return f;
  }
};

/// The fixed preamble on/off pattern: one bit per slot and channel, drawn
/// from an order-7 m-sequence (I channel) and a half-period-shifted copy
/// (Q channel) so both axes carry energy with low cross-correlation.
struct PreamblePattern {
  std::vector<std::uint8_t> bits_i;
  std::vector<std::uint8_t> bits_q;

  [[nodiscard]] static PreamblePattern standard(int slots) {
    RT_ENSURE(slots >= 1, "preamble needs at least one slot");
    const auto seq = sig::mls(7);  // period 127
    PreamblePattern p;
    p.bits_i.resize(slots);
    p.bits_q.resize(slots);
    for (int i = 0; i < slots; ++i) {
      p.bits_i[i] = seq[static_cast<std::size_t>(i) % seq.size()];
      p.bits_q[i] = seq[(static_cast<std::size_t>(i) + seq.size() / 2) % seq.size()];
    }
    return p;
  }
};

/// Firings for the preamble section starting at slot `first_slot`. Fires
/// at max level so the reference enjoys the full SNR.
[[nodiscard]] inline std::vector<lcm::Firing> preamble_firings(const PhyParams& p,
                                                               int first_slot) {
  const auto pattern = PreamblePattern::standard(p.preamble_slots);
  const int max_level = p.levels_per_axis() - 1;
  // rt-check: alloc-ok (setup-time schedule builder; hot callers cache the result per (params, layout))
  std::vector<lcm::Firing> out;
  out.reserve(static_cast<std::size_t>(p.preamble_slots));
  for (int i = 0; i < p.preamble_slots; ++i) {
    lcm::Firing f;
    f.time_s = (first_slot + i) * p.slot_s;
    f.module = i % p.dsm_order;
    f.level_i = pattern.bits_i[i] ? max_level : 0;
    f.level_q = p.use_q_channel ? (pattern.bits_q[i] ? max_level : 0) : -1;
    out.push_back(f);
  }
  return out;
}

/// One known training-field cycle of a module, annotated with the
/// receiver-side metadata for the online-training design matrix. Cycles
/// where the module does NOT fire still matter: the discharge tail of a
/// previous firing contributes a (history, fired=0) template.
struct TrainingFiring {
  int module_global = 0;  ///< 0..L-1 = I modules, L..2L-1 = Q modules
  int slot = 0;           ///< absolute slot index within the frame
  unsigned history = 0;   ///< V history bits (bit k-1 = fired k rounds ago)
  bool fired = false;     ///< module driven in this cycle
  /// Template-table key ((history << 1) | fired); 0 = nothing to model.
  [[nodiscard]] unsigned key() const { return (history << 1) | (fired ? 1U : 0U); }
};

/// Lower-triangular training schedule: module m fires in rounds r >= m.
/// Enumerates every cycle with a non-zero template key, including the
/// tail-only cycles in the trailing guard.
[[nodiscard]] inline std::vector<TrainingFiring> training_schedule(const PhyParams& p,
                                                                   const FrameLayout& layout) {
  // rt-check: alloc-ok (setup-time schedule builder; hot callers cache the result per (params, layout))
  std::vector<TrainingFiring> out;
  const int l = p.dsm_order;
  const int modules = p.use_q_channel ? 2 * l : l;
  const int rounds = layout.training_rounds;
  out.reserve(static_cast<std::size_t>(rounds + layout.guard_cycles()) *
              static_cast<std::size_t>(modules));
  for (int r = 0; r < rounds + layout.guard_cycles(); ++r) {
    for (int m = 0; m < modules; ++m) {
      TrainingFiring tf;
      tf.module_global = m;
      tf.slot = layout.training_begin() + r * l + (m % l);
      tf.fired = r < rounds && m <= r;  // lower-triangular, idle in the guard
      unsigned hist = 0;
      for (int k = 1; k <= p.training_memory; ++k) {
        const int rk = r - k;
        const bool fired_k = rk >= 0 && rk < rounds && m <= rk;
        hist |= fired_k ? (1U << (k - 1)) : 0U;
      }
      tf.history = hist;
      if (tf.key() == 0) continue;
      out.push_back(tf);
    }
  }
  return out;
}

/// Converts a training schedule into tag firings (max level; tail-only
/// cycles produce no drive).
[[nodiscard]] inline std::vector<lcm::Firing> training_firings(
    const PhyParams& p, const std::vector<TrainingFiring>& schedule) {
  const int l = p.dsm_order;
  const int max_level = p.levels_per_axis() - 1;
  // Group by slot: I and Q module of the same slot index merge into one
  // Firing record.
  // rt-check: alloc-ok (setup-time schedule builder; hot callers cache the result per (params, layout))
  std::vector<lcm::Firing> out;
  out.reserve(schedule.size());
  for (const auto& tf : schedule) {
    if (!tf.fired) continue;
    const int slot_module = tf.module_global % l;
    const bool is_q = tf.module_global >= l;
    const double t = tf.slot * p.slot_s;
    // Find an existing firing at this time/module.
    auto it = std::find_if(out.begin(), out.end(), [&](const lcm::Firing& f) {
      return f.module == slot_module && std::abs(f.time_s - t) < 1e-12;
    });
    if (it == out.end()) {
      lcm::Firing f;
      f.time_s = t;
      f.module = slot_module;
      f.level_i = is_q ? (p.use_q_channel ? 0 : -1) : max_level;
      f.level_q = p.use_q_channel ? (is_q ? max_level : 0) : -1;
      out.push_back(f);
    } else {
      if (is_q) {
        it->level_q = max_level;
      } else {
        it->level_i = max_level;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const lcm::Firing& a, const lcm::Firing& b) { return a.time_s < b.time_s; });
  return out;
}

/// One cycle of a module's weight pixel within the pixel-calibration
/// rounds: in round w every module fires ONLY weight pixel w (level
/// 2^(bits-1-w)), so individual pixel gains become observable.
struct PixelTrainingCycle {
  int module_global = 0;
  int weight_index = 0;   ///< wb: 0 = largest pixel .. bits-1 = smallest
  int slot = 0;           ///< absolute slot of the cycle
  unsigned key = 0;       ///< template key for THIS pixel ((hist << 1) | fired)
};

/// Enumerates, for every (module, weight pixel), each pixel-rounds cycle
/// with a non-zero key -- firings and tail-only cycles in the trailing
/// guard. Histories account for the main training field (all pixels fired
/// in the final rounds) and the single-pixel structure of the rounds.
[[nodiscard]] inline std::vector<PixelTrainingCycle> pixel_training_schedule(
    const PhyParams& p, const FrameLayout& layout) {
  // rt-check: alloc-ok (setup-time schedule builder; hot callers cache the result per (params, layout))
  std::vector<PixelTrainingCycle> out;
  if (layout.pixel_rounds == 0) return out;
  const int l = p.dsm_order;
  const int modules = p.use_q_channel ? 2 * l : l;
  const int bits = p.bits_per_axis;
  out.reserve(static_cast<std::size_t>(layout.pixel_rounds + layout.guard_cycles()) *
              static_cast<std::size_t>(modules) * static_cast<std::size_t>(bits));
  // Whether this pixel fired, r_rel cycles into the pixel rounds
  // (r_rel < 0 looks back through the guard into the main training, where
  // every pixel of a firing module is driven).
  const auto pixel_fired = [&](int m, int wb, int r_rel) {
    if (r_rel >= 0 && r_rel < layout.pixel_rounds) return r_rel == wb;
    if (r_rel >= layout.pixel_rounds) return false;  // trailing guard
    const int back = -r_rel;  // cycles before the pixel rounds
    if (back <= layout.guard_cycles()) return false;  // leading guard
    const int round = layout.training_rounds - (back - layout.guard_cycles());
    return round >= 0 && round < layout.training_rounds && m <= round;
  };
  for (int r = 0; r < layout.pixel_rounds + layout.guard_cycles(); ++r) {
    for (int m = 0; m < modules; ++m) {
      for (int wb = 0; wb < bits; ++wb) {
        const bool fired = pixel_fired(m, wb, r);
        unsigned hist = 0;
        for (int k = 1; k <= p.training_memory; ++k)
          hist |= pixel_fired(m, wb, r - k) ? (1U << (k - 1)) : 0U;
        const unsigned key = (hist << 1) | (fired ? 1U : 0U);
        if (key == 0) continue;
        PixelTrainingCycle pc;
        pc.module_global = m;
        pc.weight_index = wb;
        pc.slot = layout.pixel_begin() + r * l + (m % l);
        pc.key = key;
        out.push_back(pc);
      }
    }
  }
  return out;
}

/// Tag firings for the pixel-calibration rounds: round w drives weight
/// pixel w of every module.
[[nodiscard]] inline std::vector<lcm::Firing> pixel_training_firings(const PhyParams& p,
                                                                     const FrameLayout& layout) {
  // rt-check: alloc-ok (setup-time schedule builder; hot callers cache the result per (params, layout))
  std::vector<lcm::Firing> out;
  const int l = p.dsm_order;
  out.reserve(static_cast<std::size_t>(layout.pixel_rounds) * static_cast<std::size_t>(l));
  for (int r = 0; r < layout.pixel_rounds; ++r) {
    const int level = 1 << (p.bits_per_axis - 1 - r);
    for (int s = 0; s < l; ++s) {
      lcm::Firing f;
      f.time_s = (layout.pixel_begin() + r * l + s) * p.slot_s;
      f.module = s;
      f.level_i = level;
      f.level_q = p.use_q_channel ? level : -1;
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace rt::phy
