// Reference pulse model: per-module, history-fingerprinted templates.
//
// Section 4.3.3: a uniform pulse response p(t) fails in practice -- the
// pulse depends on the previous V firings of that module (tail effect) and
// varies per module (heterogeneity, illumination). The receiver therefore
// keeps, for each of the 2L modules and each of the 2^V histories, a
// complex template of one full DSM cycle (W = L*T), and the DFE selects
// the matching template for equalization and symbol regression.
#pragma once

#include <complex>
#include <functional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "lcm/tag_array.h"
#include "phy/params.h"
#include "signal/waveform.h"

namespace rt::phy {

using Complex = std::complex<double>;

/// Produces the received complex baseband for a given firing schedule over
/// `duration_s` -- implemented by the sim layer (full channel) or tests.
using WaveformSource =
    std::function<sig::IqWaveform(std::span<const lcm::Firing>, double duration_s)>;

class PulseBank {
 public:
  /// Empty bank for workspace reuse; call resize() before use.
  PulseBank() = default;

  /// `modules` = L (I only) or 2L (I+Q); `entries` = 2^V; `pulse_len` in
  /// samples (W * fs).
  PulseBank(int modules, int entries, std::size_t pulse_len) {
    resize(modules, entries, pulse_len);
  }

  /// Reshapes the bank and zero-fills every pulse, reusing inner buffer
  /// capacity so a workspace-held bank stops allocating after warm-up.
  /// Also drops any pixel gains (a resized bank is untrained).
  void resize(int modules, int entries, std::size_t pulse_len) {
    RT_ENSURE(modules >= 1 && entries >= 1 && pulse_len >= 1, "bad pulse bank dimensions");
    modules_ = modules;
    entries_ = entries;
    pulse_len_ = pulse_len;
    pulses_.resize(static_cast<std::size_t>(modules) * static_cast<std::size_t>(entries));
    for (auto& p : pulses_) p.assign(pulse_len, Complex{});
    pixel_gains_.clear();
    bits_per_axis_ = 0;
  }

  [[nodiscard]] int modules() const { return modules_; }
  [[nodiscard]] int entries() const { return entries_; }
  [[nodiscard]] std::size_t pulse_len() const { return pulse_len_; }

  [[nodiscard]] std::span<const Complex> pulse(int module_global, unsigned history) const {
    return pulses_[index(module_global, history)];
  }

  void set_pulse(int module_global, unsigned history, std::vector<Complex> pulse) {
    RT_ENSURE(pulse.size() == pulse_len_, "pulse length mismatch");
    pulses_[index(module_global, history)] = std::move(pulse);
  }

  /// Mutable in-place access for trainers that write templates directly
  /// into the bank instead of building and moving a temporary.
  [[nodiscard]] std::span<Complex> pulse_mut(int module_global, unsigned history) {
    return pulses_[index(module_global, history)];
  }

  /// Applies a complex correction (e.g. residual rotation) to every entry.
  void scale(Complex factor) {
    for (auto& p : pulses_)
      for (auto& v : p) v *= factor;
  }

  /// Per-pixel complex gain corrections from the calibration rounds
  /// (extension to the paper's footnote-6 area-proportionality
  /// assumption). Defaults to 1 for every pixel; the equalizer multiplies
  /// each weight pixel's area by its gain.
  void set_pixel_gains(std::vector<Complex> gains, int bits_per_axis) {
    set_pixel_gains(std::span<const Complex>(gains), bits_per_axis);
  }

  /// Span form: copies into the bank's own storage (capacity reused).
  void set_pixel_gains(std::span<const Complex> gains, int bits_per_axis) {
    RT_ENSURE(gains.size() ==
                  static_cast<std::size_t>(modules_) * static_cast<std::size_t>(bits_per_axis),
              "one gain per (module, weight pixel) required");
    pixel_gains_.assign(gains.begin(), gains.end());
    bits_per_axis_ = bits_per_axis;
  }

  /// Reverts to the unity-gain default (all pixels identical).
  void clear_pixel_gains() {
    pixel_gains_.clear();
    bits_per_axis_ = 0;
  }

  [[nodiscard]] Complex pixel_gain(int module_global, int weight_index) const {
    if (pixel_gains_.empty()) return Complex(1.0, 0.0);
    RT_ENSURE(module_global >= 0 && module_global < modules_ && weight_index >= 0 &&
                  weight_index < bits_per_axis_,
              "pixel gain index out of range");
    return pixel_gains_[static_cast<std::size_t>(module_global) * bits_per_axis_ + weight_index];
  }

  [[nodiscard]] bool has_pixel_gains() const { return !pixel_gains_.empty(); }

 private:
  [[nodiscard]] std::size_t index(int module_global, unsigned history) const {
    RT_ENSURE(module_global >= 0 && module_global < modules_, "module index out of range");
    RT_ENSURE(history < narrow_cast<unsigned>(entries_), "history index out of range");
    return static_cast<std::size_t>(module_global) * static_cast<std::size_t>(entries_) + history;
  }

  int modules_ = 0;
  int entries_ = 0;
  std::size_t pulse_len_ = 0;
  std::vector<std::vector<Complex>> pulses_;
  std::vector<Complex> pixel_gains_;  ///< empty = all unity
  int bits_per_axis_ = 0;
};

/// Measures ground-truth fingerprints by driving one module at a time with
/// an MLS history-enumeration pattern through `source` (paper section 5.2
/// methodology). Used for offline training data collection and as the
/// "oracle" bank in equalizer unit tests.
[[nodiscard]] PulseBank collect_fingerprints(const PhyParams& params, const WaveformSource& source);

}  // namespace rt::phy
