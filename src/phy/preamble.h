// Preamble detection and PQAM rotation correction (paper section 4.3.1).
//
// The detector matches the received signal against a rotation-free
// reference waveform recorded offline (here: synthesized from an ideal,
// heterogeneity-free tag), using the widely-linear regression
//
//   D(X, Y) = min_{a,b,c in C} || Y - (a X + b X* + c) ||^2
//
// where a models rotation+scaling (a roll of dtheta appears as the complex
// factor e^{-j 2 dtheta} on X), b absorbs I/Q imbalance and c the DC
// offset. Detection is two-stage: a rotation-invariant sliding correlation
// finds the coarse start, then the regression is solved in a small
// neighbourhood for sample-exact timing; the winning coefficients are
// applied to the rest of the packet before demodulation.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/least_squares.h"
#include "phy/constellation.h"
#include "phy/frame.h"
#include "phy/params.h"
#include "signal/correlate.h"
#include "signal/snr_estimator.h"
#include "signal/waveform.h"

namespace rt::phy {

struct PreambleDetection {
  bool found = false;
  std::size_t start_sample = 0;     ///< sample index of preamble slot 0
  Complex a{1.0, 0.0};              ///< rotation + scaling
  Complex b{0.0, 0.0};              ///< I/Q imbalance (conjugate term)
  Complex c{0.0, 0.0};              ///< DC offset
  double normalized_residual = 1.0; ///< ||Y - fit|| / ||Y||
  double correlation_peak = 0.0;    ///< centred normalized correlation at t0
  sig::SnrEstimate snr;             ///< receiver-side SNR over the fitted preamble
};

/// Reusable scratch for PreambleProcessor::detect(). Every buffer is fully
/// overwritten per call, so one workspace can serve any number of packets.
struct PreambleWorkspace {
  std::vector<double> corr;            ///< sliding correlation output
  sig::SlidingScratch corr_scratch;    ///< prefix sums for the correlation
  linalg::ComplexMatrix design;        ///< k x 3 widely-linear design
  linalg::ComplexMatrix reduced;       ///< k x 2 single-channel fallback
  std::vector<Complex> y;              ///< regression target (the reference)
  std::vector<Complex> fitted;         ///< corrected preamble window for SNR estimation
  linalg::LsWorkspace<Complex> ls;     ///< QR solve scratch
};

class PreambleProcessor {
 public:
  /// Builds the offline reference by synthesizing the standard preamble
  /// pattern on an ideal tag (no heterogeneity, no rotation, no noise) and
  /// subtracting the idle baseline.
  explicit PreambleProcessor(const PhyParams& params);

  /// Searches `rx` for the preamble. `search_limit` bounds the candidate
  /// start sample (0 = search the whole waveform).
  [[nodiscard]] PreambleDetection detect(const sig::IqWaveform& rx,
                                         std::size_t search_limit = 0) const;

  /// Workspace form of detect(): bit-identical result, zero steady-state
  /// allocations once `ws` has warmed up.
  [[nodiscard]] PreambleDetection detect(const sig::IqWaveform& rx, std::size_t search_limit,
                                         PreambleWorkspace& ws) const;

  /// Applies the regression coefficients: y[i] = a x[i] + b conj(x[i]) + c,
  /// mapping the received packet into the rotation-free reference frame.
  [[nodiscard]] sig::IqWaveform correct(const sig::IqWaveform& rx,
                                        const PreambleDetection& det) const;

  /// In-place form of correct(): rewrites `rx` sample by sample instead of
  /// copying the whole packet waveform.
  void correct_in_place(sig::IqWaveform& rx, const PreambleDetection& det) const;

  /// Residual threshold above which detect() reports not-found.
  [[nodiscard]] double detection_threshold() const { return threshold_; }
  void set_detection_threshold(double t) { threshold_ = t; }

  /// Normalized-correlation acceptance threshold (the low-SNR path).
  [[nodiscard]] double correlation_threshold() const { return corr_threshold_; }
  void set_correlation_threshold(double t) { corr_threshold_ = t; }

  [[nodiscard]] const std::vector<Complex>& reference() const { return reference_; }

  /// Pre-centred reference + cached energy, for callers running their own
  /// correlation scans against the same reference (the streaming
  /// receiver's continuous search).
  [[nodiscard]] const sig::CenteredRef& centered_reference() const { return centered_ref_; }

 private:
  /// Solves the (a, b, c) regression of the reference onto rx at `offset`;
  /// returns the normalized residual.
  [[nodiscard]] double regress(const sig::IqWaveform& rx, std::size_t offset, Complex& a,
                               Complex& b, Complex& c, PreambleWorkspace& ws) const;

  PhyParams p_;
  std::vector<Complex> reference_;
  sig::CenteredRef centered_ref_;  ///< zero-mean reference + energy, cached
  double ref_energy_ = 0.0;        ///< sum |reference_|^2 (uncentred)
  double threshold_ = 0.35;
  double corr_threshold_ = 0.30;
};

}  // namespace rt::phy
