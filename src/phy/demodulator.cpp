#include "phy/demodulator.h"

#include <cmath>

#include "common/error.h"
#include "obs/trace.h"

namespace rt::phy {

Demodulator::Demodulator(const PhyParams& params, OfflineModel offline_model)
    : p_(params),
      offline_(std::move(offline_model)),
      preamble_(params),
      constellation_(params.bits_per_axis, params.use_q_channel) {
  p_.validate();
}

std::vector<unsigned> Demodulator::initial_payload_histories(const PhyParams& p,
                                                             const FrameLayout& layout) {
  const int l = p.dsm_order;
  const int modules = p.use_q_channel ? 2 * l : l;
  const unsigned mask = p.history_mask();
  const int guard_cycles = layout.guard_cycles();
  // One history per pixel (modules x bits_per_axis); training fires every
  // pixel of a module at once, so all pixels of a module start identical.
  // rt-check: alloc-ok (cold: result cached in ws.histories keyed by (params, layout))
  std::vector<unsigned> hist(static_cast<std::size_t>(modules) *
                                 static_cast<std::size_t>(p.bits_per_axis),
                             0);
  for (int m = 0; m < modules; ++m) {
    for (int wb = 0; wb < p.bits_per_axis; ++wb) {
      unsigned h = 0;
      // Looking back k cycles (W each) from the module's first payload
      // firing: k <= guard_cycles lands in the idle guard; then the
      // pixel-calibration rounds (this pixel fired only in its own round);
      // then training round 2L - remainder, fired iff module_global <=
      // that round (lower-triangular schedule).
      for (int k = 1; k <= p.training_memory; ++k) {
        bool fired = false;
        if (k > guard_cycles) {
          int back = k - guard_cycles;  // cycles into pixel rounds
          if (back <= layout.pixel_rounds) {
            const int pixel_round = layout.pixel_rounds - back;
            fired = pixel_round == wb;
          } else {
            back -= layout.pixel_rounds;  // through the inner guard (if any)
            if (layout.pixel_rounds > 0) {
              if (back <= guard_cycles) {
                fired = false;
              } else {
                const int round = layout.training_rounds - (back - guard_cycles);
                fired = round >= 0 && round < layout.training_rounds && m <= round;
              }
            } else {
              const int round = layout.training_rounds - back;
              fired = round >= 0 && round < layout.training_rounds && m <= round;
            }
          }
        }
        if (fired) h |= 1U << (k - 1);
      }
      hist[static_cast<std::size_t>(m) * p.bits_per_axis + wb] = h & mask;
    }
  }
  return hist;
}

DemodResult Demodulator::demodulate(const sig::IqWaveform& rx, int payload_slots,
                                    const DemodOptions& options) const {
  sig::IqWaveform scratch_rx = rx;
  DemodWorkspace ws;
  DemodResult out;
  demodulate_into(scratch_rx, payload_slots, options, ws, out);
  return out;
}

void Demodulator::demodulate_into(sig::IqWaveform& rx, int payload_slots,
                                  const DemodOptions& options, DemodWorkspace& ws,
                                  DemodResult& out) const {
  RT_TRACE_SPAN("demodulate");
  RT_ENSURE(payload_slots >= 1, "need at least one payload slot");
  out.preamble_found = false;
  out.bits.clear();
  out.soft_bits.clear();
  out.equalizer_metric = 0.0;

  const auto det = preamble_.detect(rx, options.search_limit, ws.preamble);
  out.detection = det;
  out.preamble_found = det.found;
  if (!det.found) {
    RT_OBS_COUNT(kPreambleDetectFail, 1);
    return;
  }

  // The received buffer becomes the corrected-signal stage in place; every
  // downstream consumer reads the corrected samples.
  preamble_.correct_in_place(rx, det);
  const sig::IqWaveform& corrected = rx;
  const auto layout = FrameLayout::for_params(p_, payload_slots);
  const std::size_t frame_start = det.start_sample;
  const std::size_t t_samps = p_.samples_per_slot();

  const PulseBank* bank = options.oracle;
  if (options.online_training) {
    OnlineTrainer::train_into(p_, offline_, layout, corrected, frame_start, ws.trained,
                              ws.training);
    bank = &ws.trained;
  }
  RT_ENSURE(bank != nullptr, "no pulse bank: enable online training or provide an oracle");

  const DfeEqualizer eq(p_, *bank);
  if (!ws.histories_valid || !(ws.histories_params == p_) || !(ws.histories_layout == layout)) {
    ws.histories = initial_payload_histories(p_, layout);
    ws.histories_params = p_;
    ws.histories_layout = layout;
    ws.histories_valid = true;
  }
  const std::size_t payload_begin =
      frame_start + static_cast<std::size_t>(layout.payload_begin()) * t_samps;
  eq.equalize_into(corrected, payload_begin, payload_slots, ws.histories, ws.eq, ws.eq_result,
                   options.soft_output);
  out.equalizer_metric = ws.eq_result.final_metric;
  RT_DCHECK_FINITE(out.equalizer_metric);

  // One span around the whole unmap/descramble stage (per-symbol spans
  // would swamp the trace buffer).
  RT_TRACE_SPAN("unmap");
  out.bits.reserve(static_cast<std::size_t>(payload_slots) * constellation_.bits_per_symbol());
  for (const auto& sym : ws.eq_result.symbols) constellation_.unmap_into(sym, out.bits);
  if (options.descramble) scrambler_.apply_in_place(out.bits);
  if (options.soft_output) {
    out.soft_bits.assign(ws.eq_result.soft_bits.begin(), ws.eq_result.soft_bits.end());
    // Descrambling XORs keystream-1 positions, which on the soft side is a
    // sign flip; hard bits and LLR signs stay consistent bit for bit.
    if (options.descramble) scrambler_.apply_sign_in_place(out.soft_bits);
    // Align each LLR's sign with the surviving path's decision. The raw
    // sign is the demapper's per-slot min-distance vote, but the DFE
    // winner decides each bit with the benefit of every later slot's
    // evidence and is measurably more reliable; the magnitude keeps the
    // local margin. After this, sign-slicing the soft stream reproduces
    // the hard decisions exactly (a zero margin carries the decision in
    // its sign bit, so consumers slice with std::signbit).
    for (std::size_t i = 0; i < out.soft_bits.size() && i < out.bits.size(); ++i) {
      const float mag = std::fabs(out.soft_bits[i]);
      out.soft_bits[i] = out.bits[i] != 0 ? -mag : mag;
    }
  }
}

}  // namespace rt::phy
