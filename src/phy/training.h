// Two-stage channel training (paper section 4.3.3).
//
// Offline: pulse fingerprints r(x) -- the full set of history-conditioned
// templates for one module -- are collected at several orientations x,
// stacked into the matrix E = [r(x_1) ... r(x_n)], and the leading S left
// singular vectors are kept as invariant bases (truncated Karhunen-Loeve
// expansion: the best rank-S linear approximation in MSE).
//
// Online (per packet): only the S complex coefficients per module are
// solved, by least squares against the known lower-triangular training
// field -- 2*S*L unknowns from a few thousand received samples, cheap
// enough for real time and tolerant of the per-packet channel state
// (orientation, illumination, LCM heterogeneity).
#pragma once

#include <span>
#include <vector>

#include "common/narrow.h"
#include "linalg/least_squares.h"
#include "linalg/matrix.h"
#include "phy/frame.h"
#include "phy/params.h"
#include "phy/pulse_model.h"
#include "signal/waveform.h"

namespace rt::phy {

/// The offline-trained invariant basis set. Rows span the concatenated
/// fingerprint domain (2^V histories x W-samples); columns are the S bases.
/// `sigma` holds the corresponding singular values: the online solve uses
/// them as a prior (a weak basis should not absorb much energy from one
/// noisy packet).
struct OfflineModel {
  linalg::RealMatrix bases;
  std::vector<double> sigma;

  [[nodiscard]] int rank() const { return narrow_cast<int>(bases.cols()); }
  [[nodiscard]] std::size_t domain() const { return bases.rows(); }
};

class OfflineTrainer {
 public:
  /// Collects fingerprints through each source (one per orientation) and
  /// extracts `rank` bases. Every module contributes a column per
  /// orientation (modules share bases; per-module variation is captured by
  /// the online coefficients).
  [[nodiscard]] static OfflineModel train(const PhyParams& params,
                                          std::span<const WaveformSource> sources, int rank);

  /// Builds an OfflineModel directly from already-collected fingerprint
  /// banks (used by tests and by trace replay).
  [[nodiscard]] static OfflineModel train_from_banks(const PhyParams& params,
                                                     std::span<const PulseBank> banks, int rank);
};

/// Reusable scratch for the per-packet online training solve. The
/// training/pixel schedules are pure functions of (PhyParams, FrameLayout)
/// and are cached until those change; every other buffer is fully
/// overwritten per packet.
struct TrainingWorkspace {
  std::vector<TrainingFiring> schedule;
  std::vector<PixelTrainingCycle> pixel_schedule;
  bool schedule_valid = false;
  PhyParams schedule_params;
  FrameLayout schedule_layout;

  std::vector<double> a_cm;           ///< (n + unknowns) x unknowns design, column-major
  std::vector<double> bases_cm;       ///< rank x domain transpose of OfflineModel::bases
  std::vector<double> b_re;           ///< real part of the rhs
  std::vector<double> b_im;           ///< imaginary part of the rhs
  linalg::LsWorkspace<double> ls;     ///< QR solve scratch
  std::vector<double> g_re;           ///< solved coefficients (real)
  std::vector<double> g_im;           ///< solved coefficients (imag)
  linalg::RealMatrix pixel_a;         ///< pixel-calibration design
  std::vector<double> pixel_b;        ///< pixel-calibration rhs
  std::vector<Complex> pixel_gains;   ///< solved per-pixel gains
};

class OnlineTrainer {
 public:
  /// Fits the per-module complex basis coefficients to the (rotation-
  /// corrected) received training field and returns the reconstructed
  /// pulse bank for the equalizer. `corrected_rx` must be aligned so that
  /// sample index `frame_start` is frame slot 0.
  ///
  /// `ridge` is the Tikhonov regularization weight (relative to the mean
  /// squared column norm of the design matrix): it keeps the higher-order
  /// bases from amplifying noise when the training field barely excites
  /// them -- the "avoid overfitting to preserve noise tolerance" balance
  /// of section 4.3.3.
  [[nodiscard]] static PulseBank train(const PhyParams& params, const OfflineModel& model,
                                       const FrameLayout& layout,
                                       const sig::IqWaveform& corrected_rx,
                                       std::size_t frame_start, double ridge = 1e-4);

  /// Workspace form of train(): resizes and fills `bank` in place,
  /// reusing the workspace buffers. Bit-identical to train().
  static void train_into(const PhyParams& params, const OfflineModel& model,
                         const FrameLayout& layout, const sig::IqWaveform& corrected_rx,
                         std::size_t frame_start, PulseBank& bank, TrainingWorkspace& ws,
                         double ridge = 1e-4);

  /// Second-stage per-pixel gain estimation from the calibration rounds
  /// (runs automatically from train() when the frame carries them).
  static void calibrate_pixel_gains(const PhyParams& params, const FrameLayout& layout,
                                    const sig::IqWaveform& corrected_rx,
                                    std::size_t frame_start, PulseBank& bank);

  /// Workspace form of calibrate_pixel_gains().
  static void calibrate_pixel_gains_into(const PhyParams& params, const FrameLayout& layout,
                                         const sig::IqWaveform& corrected_rx,
                                         std::size_t frame_start, PulseBank& bank,
                                         TrainingWorkspace& ws);
};

/// Builds a PulseBank straight from ground-truth fingerprints measured at
/// the operating orientation (an "oracle" receiver with perfect channel
/// knowledge) -- the upper bound online training is judged against.
[[nodiscard]] inline PulseBank oracle_bank(const PhyParams& params, const WaveformSource& source) {
  return collect_fingerprints(params, source);
}

}  // namespace rt::phy
