// PHY-layer parameter set tying together DSM, PQAM and frame layout.
//
// A RetroTurbo PHY configuration is (L, P, T): L-order DSM interleaves L
// module firings T apart per polarization group; P-order PQAM sends
// log2(P) bits per slot across the two polarization axes. Data rate is
// log2(P) / T for overlapped DSM (section 4.1.2). The paper's named
// operating points:
//   1 Kbps:  L=8, P=4,   T=2 ms      (low-rate, lowest threshold)
//   4 Kbps:  L=8, P=4,   T=0.5 ms
//   8 Kbps:  L=8, P=16,  T=0.5 ms    (prototype default)
//   16 Kbps: L=8, P=256, T=0.5 ms    (prototype tag maximum, footnote 7)
//   32 Kbps: L=16, P=256, T=0.25 ms  (emulation, Fig. 18a)
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.h"
#include "common/units.h"
#include "lcm/tag_array.h"

namespace rt::phy {

struct PhyParams {
  int dsm_order = 8;                  ///< L
  int bits_per_axis = 2;              ///< log2(sqrt(P))
  double slot_s = rt::ms(0.5);        ///< T
  double charge_s = rt::ms(0.5);      ///< tau_1 drive duration
  double sample_rate_hz = 40e3;       ///< receiver baseband rate
  bool use_q_channel = true;          ///< false = single-polarization baselines (OOK/PAM)
  int training_memory = 2;            ///< V: fingerprint history depth
  int preamble_slots = 64;            ///< preamble length in slots
  int equalizer_branches = 16;        ///< K
  bool merge_equalizer_states = false;  ///< Viterbi-style state merging
  /// Basic DSM (section 4.1.1): idle slots appended after every L-slot
  /// firing group so each symbol fully discharges before the next.
  /// 0 = overlapped DSM (section 4.1.2), the RetroTurbo default.
  int basic_rest_slots = 0;
  /// Per-pixel gain calibration (extension): appends bits_per_axis extra
  /// training rounds in which every module fires a single weight pixel,
  /// letting the receiver estimate individual pixel gains instead of
  /// assuming exact area proportionality (paper footnote 6). Needed for
  /// dense constellations (>= 64-PQAM) on tags with manufacturing spread.
  bool pixel_calibration = false;

  /// All-scalar aggregate; equality lets workspace caches (training
  /// schedules, frame prefixes) detect parameter changes between packets.
  [[nodiscard]] bool operator==(const PhyParams&) const = default;

  [[nodiscard]] int pqam_order() const {
    return use_q_channel ? (1 << (2 * bits_per_axis)) : (1 << bits_per_axis);
  }
  [[nodiscard]] int levels_per_axis() const { return 1 << bits_per_axis; }
  [[nodiscard]] int bits_per_slot() const {
    return use_q_channel ? 2 * bits_per_axis : bits_per_axis;
  }
  /// DSM symbol duration W = L * T (also the pulse template span).
  [[nodiscard]] double symbol_duration_s() const { return dsm_order * slot_s; }
  [[nodiscard]] std::size_t samples_per_slot() const {
    return static_cast<std::size_t>(std::llround(slot_s * sample_rate_hz));
  }
  [[nodiscard]] std::size_t samples_per_symbol() const {
    return samples_per_slot() * static_cast<std::size_t>(dsm_order);
  }
  /// Slots per firing period: L for overlapped DSM, L + rest for basic.
  [[nodiscard]] int period_slots() const { return dsm_order + basic_rest_slots; }
  /// Whether payload slot `n` fires a module (basic DSM rests after the
  /// first L slots of each period).
  [[nodiscard]] bool slot_active(int n) const { return (n % period_slots()) < dsm_order; }
  /// Module fired at payload slot `n` (meaningful only when active).
  [[nodiscard]] int slot_module(int n) const { return n % period_slots(); }

  /// Data rate: log2(P) bits per active slot. Overlapped DSM
  /// (section 4.1.2) has every slot active; basic DSM (section 4.1.1)
  /// pays the tau_0 rest after each L-slot group.
  [[nodiscard]] double data_rate_bps() const {
    return bits_per_slot() * static_cast<double>(dsm_order) /
           (static_cast<double>(period_slots()) * slot_s);
  }
  /// Basic-DSM data rate (section 4.1.1): L slots of bits, then a full
  /// discharge of tau_0 before the next symbol.
  [[nodiscard]] double basic_dsm_rate_bps(double tau0_s) const {
    return (dsm_order * bits_per_slot()) / (dsm_order * charge_s + tau0_s);
  }
  /// Template-table size: one entry per (V-bit history, current-fired)
  /// window, exactly the R_[b1..bV]+current-bit model of section 5.2.
  /// Key layout: (history << 1) | fired; key 0 (idle, no history) is the
  /// identically-zero template.
  [[nodiscard]] int fingerprint_entries() const { return 1 << (training_memory + 1); }
  [[nodiscard]] unsigned history_mask() const {
    return (1U << training_memory) - 1U;
  }

  /// TagConfig matching this PHY configuration.
  [[nodiscard]] lcm::TagConfig tag_config() const {
    lcm::TagConfig cfg;
    cfg.dsm_order = dsm_order;
    cfg.bits_per_axis = bits_per_axis;
    cfg.slot_s = slot_s;
    cfg.charge_s = charge_s;
    return cfg;
  }

  void validate() const {
    RT_ENSURE(dsm_order >= 1 && dsm_order <= 64, "DSM order out of range");
    RT_ENSURE(bits_per_axis >= 1 && bits_per_axis <= 4, "bits per axis out of range");
    RT_ENSURE(slot_s > 0.0 && charge_s > 0.0, "timings must be positive");
    RT_ENSURE(charge_s <= symbol_duration_s(), "charge duration cannot exceed W");
    RT_ENSURE(sample_rate_hz * slot_s >= 4.0, "need at least 4 samples per slot");
    RT_ENSURE(std::abs(slot_s * sample_rate_hz - std::round(slot_s * sample_rate_hz)) < 1e-9,
              "slot duration must be an integer number of samples");
    RT_ENSURE(training_memory >= 0 && training_memory <= 8, "training memory out of range");
    RT_ENSURE(preamble_slots >= 8, "preamble too short for reliable detection");
    RT_ENSURE(equalizer_branches >= 1, "need at least one equalizer branch");
    RT_ENSURE(basic_rest_slots >= 0, "rest slots cannot be negative");
  }

  // Named operating points from the paper. Dense constellations need a
  // deeper fingerprint memory: the 16-level axes of 256-PQAM leave only
  // 1/15 of the swing between levels, so the un-modelled tail beyond V
  // cycles must shrink accordingly (the V-vs-accuracy tradeoff of
  // sections 5.2 / 7.2.2).
  [[nodiscard]] static PhyParams rate_1kbps() { return with(8, 1, rt::ms(2.0), 2); }
  [[nodiscard]] static PhyParams rate_4kbps() { return with(8, 1, rt::ms(0.5), 2); }
  [[nodiscard]] static PhyParams rate_8kbps() { return with(8, 2, rt::ms(0.5), 2); }
  [[nodiscard]] static PhyParams rate_16kbps() { return with(8, 4, rt::ms(0.5), 3); }
  [[nodiscard]] static PhyParams rate_32kbps() { return with(16, 4, rt::ms(0.25), 4); }

 private:
  [[nodiscard]] static PhyParams with(int l, int bits, double t, int v) {
    PhyParams p;
    p.dsm_order = l;
    p.bits_per_axis = bits;
    p.slot_s = t;
    p.training_memory = v;
    return p;
  }
};

}  // namespace rt::phy
