#include "phy/preamble.h"

#include <algorithm>

#include "common/error.h"
#include "kernels/kernels.h"
#include "lcm/tag_array.h"
#include "linalg/least_squares.h"
#include "obs/trace.h"
#include "signal/correlate.h"

namespace rt::phy {

PreambleProcessor::PreambleProcessor(const PhyParams& params) : p_(params) {
  p_.validate();
  // Ideal tag: the paper's reference is "collected and calibrated to be
  // rotation-free" at high SNR; our equivalent is the noiseless simulator
  // with zero heterogeneity.
  lcm::TagArray ideal(p_.tag_config());
  const auto firings = preamble_firings(p_, 0);
  // Include one DSM symbol of tail: the trailing discharges are part of the
  // deterministic preamble response and add matching energy.
  const double duration = (p_.preamble_slots + p_.dsm_order) * p_.slot_s;
  auto active = ideal.synthesize(firings, p_.sample_rate_hz, duration);
  lcm::TagArray idle_tag(p_.tag_config());
  const auto idle = idle_tag.synthesize(std::vector<lcm::Firing>{}, p_.sample_rate_hz, duration);
  reference_.resize(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) reference_[i] = active[i] - idle[i];
  // Cache what detect()/regress() would otherwise recompute per call: the
  // zero-mean correlation reference and the raw reference energy.
  centered_ref_ = sig::make_centered_ref(reference_);
  for (const auto& v : reference_) ref_energy_ += std::norm(v);
}

double PreambleProcessor::regress(const sig::IqWaveform& rx, std::size_t offset, Complex& a,
                                  Complex& b, Complex& c, PreambleWorkspace& ws) const {
  const std::size_t k = reference_.size();
  if (offset + k > rx.size()) return 1.0;
  RT_OBS_COUNT(kLsSolves, 1);
  ws.design.resize(k, 3);
  ws.y.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Complex x = rx[offset + i];
    ws.design(i, 0) = x;
    ws.design(i, 1) = std::conj(x);
    ws.design(i, 2) = Complex(1.0, 0.0);
    ws.y[i] = reference_[i];
  }
  std::span<const Complex> sol;
  try {
    sol = linalg::solve_least_squares_into(ws.design, std::span<const Complex>(ws.y), ws.ls);
  } catch (const PreconditionError&) {
    // X and conj(X) become linearly dependent when the signal is confined
    // to one polarization axis (single-channel baselines); refit without
    // the I/Q-imbalance term.
    ws.reduced.resize(k, 2);
    for (std::size_t i = 0; i < k; ++i) {
      ws.reduced(i, 0) = ws.design(i, 0);
      ws.reduced(i, 1) = Complex(1.0, 0.0);
    }
    std::span<const Complex> sol2;
    try {
      sol2 = linalg::solve_least_squares_into(ws.reduced, std::span<const Complex>(ws.y), ws.ls);
    } catch (const PreconditionError&) {
      return 1.0;  // fully degenerate window (e.g. all-zero signal)
    }
    a = sol2[0];
    b = Complex{};
    c = sol2[1];
    if (ref_energy_ == 0.0) return 1.0;
    return linalg::residual_norm(ws.reduced, sol2, std::span<const Complex>(ws.y)) /
           std::sqrt(ref_energy_);
  }
  a = sol[0];
  b = sol[1];
  c = sol[2];
  if (ref_energy_ == 0.0) return 1.0;
  const double resid = linalg::residual_norm(ws.design, sol, std::span<const Complex>(ws.y));
  return resid / std::sqrt(ref_energy_);
}

PreambleDetection PreambleProcessor::detect(const sig::IqWaveform& rx,
                                            std::size_t search_limit) const {
  PreambleWorkspace ws;
  return detect(rx, search_limit, ws);
}

PreambleDetection PreambleProcessor::detect(const sig::IqWaveform& rx, std::size_t search_limit,
                                            PreambleWorkspace& ws) const {
  RT_TRACE_SPAN("preamble_detect");
  RT_ENSURE(rx.sample_rate_hz == p_.sample_rate_hz,
            "received waveform sample rate does not match the PHY parameters");
  PreambleDetection det;
  if (rx.size() < reference_.size()) return det;

  // Stage 1: rotation-invariant coarse search, mean-invariant per window
  // (the raw signal carries the static bias of all relaxed pixels; the
  // regression's c term handles DC exactly in stage 2). Only the allowed
  // start-sample range is correlated.
  std::span<const Complex> haystack(rx.samples);
  if (search_limit > 0) {
    const std::size_t needed = search_limit + reference_.size();
    haystack = haystack.subspan(0, std::min(haystack.size(), needed));
  }
  sig::sliding_correlation_centered_into(haystack, centered_ref_, ws.corr_scratch, ws.corr);
  const auto& corr = ws.corr;
  if (corr.empty()) return det;
  std::size_t coarse = 0;
  for (std::size_t i = 1; i < corr.size(); ++i)
    if (corr[i] > corr[coarse]) coarse = i;

  // Stage 2: regression refinement in a +-3 sample neighbourhood.
  const std::size_t lo = coarse >= 3 ? coarse - 3 : 0;
  const std::size_t hi = std::min(coarse + 3, rx.size() - reference_.size());
  double best_resid = 2.0;
  for (std::size_t t = lo; t <= hi; ++t) {
    Complex a;
    Complex b;
    Complex c;
    const double r = regress(rx, t, a, b, c, ws);
    if (r < best_resid) {
      best_resid = r;
      det.start_sample = t;
      det.a = a;
      det.b = b;
      det.c = c;
    }
  }
  det.normalized_residual = best_resid;
  det.correlation_peak = corr[coarse];
  RT_OBS_OBSERVE(kPreambleResidual, best_resid);
  // Receiver-side SNR estimate (section 4.4): apply the winning regression
  // coefficients to the preamble window and compare against the known
  // reference -- signal power from the reference, noise power from what the
  // fit could not explain. This is what the closed rate-adaptation loop
  // feeds to the rate table; the estimate is capped-finite even when the
  // residual is zero (noiseless channel).
  if (det.start_sample + reference_.size() <= rx.size()) {
    const std::size_t k = reference_.size();
    ws.fitted.resize(k);
    kernels::wl_transform(k, rx.samples.data() + det.start_sample, ws.fitted.data(), det.a,
                          det.b, det.c);
    det.snr = sig::estimate_snr(ws.fitted, reference_);
  }
  // Two acceptance paths: a clean regression fit (high SNR), or a strong
  // normalized correlation peak. The latter carries the full processing
  // gain of the preamble length, which is what lets low-rate links
  // synchronize below 0 dB per-sample SNR (paper: 1 Kbps at -5 dB).
  det.found = best_resid < threshold_ || det.correlation_peak > corr_threshold_;
  return det;
}

sig::IqWaveform PreambleProcessor::correct(const sig::IqWaveform& rx,
                                           const PreambleDetection& det) const {
  sig::IqWaveform out = rx;
  correct_in_place(out, det);
  return out;
}

void PreambleProcessor::correct_in_place(sig::IqWaveform& rx,
                                         const PreambleDetection& det) const {
  RT_TRACE_SPAN("preamble_correct");
  RT_ENSURE(rx.sample_rate_hz == p_.sample_rate_hz,
            "received waveform sample rate does not match the PHY parameters");
  RT_DCHECK_FINITE(det.a);
  RT_DCHECK_FINITE(det.b);
  RT_DCHECK_FINITE(det.c);
  // In-place widely-linear correction: the kernel is elementwise, so
  // src == dst aliasing is safe under both backends.
  kernels::wl_transform(rx.size(), rx.samples.data(), rx.samples.data(), det.a, det.b, det.c);
}

}  // namespace rt::phy
