#include "phy/preamble.h"

#include <algorithm>

#include "common/error.h"
#include "lcm/tag_array.h"
#include "linalg/least_squares.h"
#include "signal/correlate.h"

namespace rt::phy {

PreambleProcessor::PreambleProcessor(const PhyParams& params) : p_(params) {
  p_.validate();
  // Ideal tag: the paper's reference is "collected and calibrated to be
  // rotation-free" at high SNR; our equivalent is the noiseless simulator
  // with zero heterogeneity.
  lcm::TagArray ideal(p_.tag_config());
  const auto firings = preamble_firings(p_, 0);
  // Include one DSM symbol of tail: the trailing discharges are part of the
  // deterministic preamble response and add matching energy.
  const double duration = (p_.preamble_slots + p_.dsm_order) * p_.slot_s;
  auto active = ideal.synthesize(firings, p_.sample_rate_hz, duration);
  lcm::TagArray idle_tag(p_.tag_config());
  const auto idle = idle_tag.synthesize(std::vector<lcm::Firing>{}, p_.sample_rate_hz, duration);
  reference_.resize(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) reference_[i] = active[i] - idle[i];
}

double PreambleProcessor::regress(const sig::IqWaveform& rx, std::size_t offset, Complex& a,
                                  Complex& b, Complex& c) const {
  const std::size_t k = reference_.size();
  if (offset + k > rx.size()) return 1.0;
  linalg::ComplexMatrix design(k, 3);
  std::vector<Complex> y(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Complex x = rx[offset + i];
    design(i, 0) = x;
    design(i, 1) = std::conj(x);
    design(i, 2) = Complex(1.0, 0.0);
    y[i] = reference_[i];
  }
  std::vector<Complex> sol;
  try {
    sol = linalg::solve_least_squares(design, y);
  } catch (const PreconditionError&) {
    // X and conj(X) become linearly dependent when the signal is confined
    // to one polarization axis (single-channel baselines); refit without
    // the I/Q-imbalance term.
    linalg::ComplexMatrix reduced(k, 2);
    for (std::size_t i = 0; i < k; ++i) {
      reduced(i, 0) = design(i, 0);
      reduced(i, 1) = Complex(1.0, 0.0);
    }
    std::vector<Complex> sol2;
    try {
      sol2 = linalg::solve_least_squares(reduced, y);
    } catch (const PreconditionError&) {
      return 1.0;  // fully degenerate window (e.g. all-zero signal)
    }
    a = sol2[0];
    b = Complex{};
    c = sol2[1];
    double ref_energy2 = 0.0;
    for (const auto& v : reference_) ref_energy2 += std::norm(v);
    if (ref_energy2 == 0.0) return 1.0;
    return linalg::residual_norm(reduced, sol2, y) / std::sqrt(ref_energy2);
  }
  a = sol[0];
  b = sol[1];
  c = sol[2];
  double ref_energy = 0.0;
  for (const auto& v : reference_) ref_energy += std::norm(v);
  if (ref_energy == 0.0) return 1.0;
  const double resid = linalg::residual_norm(design, sol, y);
  return resid / std::sqrt(ref_energy);
}

PreambleDetection PreambleProcessor::detect(const sig::IqWaveform& rx,
                                            std::size_t search_limit) const {
  RT_ENSURE(rx.sample_rate_hz == p_.sample_rate_hz,
            "received waveform sample rate does not match the PHY parameters");
  PreambleDetection det;
  if (rx.size() < reference_.size()) return det;

  // Stage 1: rotation-invariant coarse search, mean-invariant per window
  // (the raw signal carries the static bias of all relaxed pixels; the
  // regression's c term handles DC exactly in stage 2). Only the allowed
  // start-sample range is correlated.
  std::span<const Complex> haystack(rx.samples);
  if (search_limit > 0) {
    const std::size_t needed = search_limit + reference_.size();
    haystack = haystack.subspan(0, std::min(haystack.size(), needed));
  }
  const auto corr = sig::sliding_correlation_centered(haystack, reference_);
  if (corr.empty()) return det;
  std::size_t coarse = 0;
  for (std::size_t i = 1; i < corr.size(); ++i)
    if (corr[i] > corr[coarse]) coarse = i;

  // Stage 2: regression refinement in a +-3 sample neighbourhood.
  const std::size_t lo = coarse >= 3 ? coarse - 3 : 0;
  const std::size_t hi = std::min(coarse + 3, rx.size() - reference_.size());
  double best_resid = 2.0;
  for (std::size_t t = lo; t <= hi; ++t) {
    Complex a;
    Complex b;
    Complex c;
    const double r = regress(rx, t, a, b, c);
    if (r < best_resid) {
      best_resid = r;
      det.start_sample = t;
      det.a = a;
      det.b = b;
      det.c = c;
    }
  }
  det.normalized_residual = best_resid;
  det.correlation_peak = corr[coarse];
  // Two acceptance paths: a clean regression fit (high SNR), or a strong
  // normalized correlation peak. The latter carries the full processing
  // gain of the preamble length, which is what lets low-rate links
  // synchronize below 0 dB per-sample SNR (paper: 1 Kbps at -5 dB).
  det.found = best_resid < threshold_ || det.correlation_peak > corr_threshold_;
  return det;
}

sig::IqWaveform PreambleProcessor::correct(const sig::IqWaveform& rx,
                                           const PreambleDetection& det) const {
  RT_ENSURE(rx.sample_rate_hz == p_.sample_rate_hz,
            "received waveform sample rate does not match the PHY parameters");
  RT_DCHECK_FINITE(det.a);
  RT_DCHECK_FINITE(det.b);
  RT_DCHECK_FINITE(det.c);
  sig::IqWaveform out(rx.sample_rate_hz, rx.size());
  for (std::size_t i = 0; i < rx.size(); ++i)
    out[i] = det.a * rx[i] + det.b * std::conj(rx[i]) + det.c;
  return out;
}

}  // namespace rt::phy
