// End-to-end PHY receiver: preamble sync + rotation correction, per-packet
// online channel training, K-branch DFE equalization, symbol de-mapping
// and descrambling.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/equalizer.h"
#include "phy/modulator.h"
#include "phy/preamble.h"
#include "phy/training.h"

namespace rt::phy {

struct DemodOptions {
  bool descramble = true;
  bool online_training = true;  ///< false = use `oracle` (or fail if absent)
  const PulseBank* oracle = nullptr;  ///< bypasses training when set
  std::size_t search_limit = 0;       ///< preamble search bound (0 = whole waveform)
  bool soft_output = false;           ///< also export per-bit LLRs in soft_bits
};

struct DemodResult {
  bool preamble_found = false;
  std::vector<std::uint8_t> bits;  ///< recovered payload bits (padded length)
  /// Per-bit LLRs aligned with `bits` (positive = bit 0), descrambled by
  /// sign; empty unless DemodOptions::soft_output.
  std::vector<float> soft_bits;
  PreambleDetection detection;
  double equalizer_metric = 0.0;
};

/// Reusable per-packet receiver scratch: one sub-workspace per pipeline
/// stage plus the trained pulse bank and the cached initial histories
/// (a pure function of (PhyParams, FrameLayout)).
struct DemodWorkspace {
  PreambleWorkspace preamble;
  TrainingWorkspace training;
  PulseBank trained;            ///< online-trained bank, rebuilt in place
  EqualizerWorkspace eq;
  EqualizerResult eq_result;
  std::vector<unsigned> histories;
  bool histories_valid = false;
  PhyParams histories_params;
  FrameLayout histories_layout;
};

class Demodulator {
 public:
  Demodulator(const PhyParams& params, OfflineModel offline_model);

  /// Demodulates one packet of `payload_slots` slots from `rx`.
  [[nodiscard]] DemodResult demodulate(const sig::IqWaveform& rx, int payload_slots,
                                       const DemodOptions& options = {}) const;

  /// Workspace form of demodulate(): `rx` is rotation-corrected IN PLACE
  /// (the caller's waveform buffer doubles as the corrected-signal stage),
  /// and `out.bits` is rebuilt inside its existing capacity. Bit-identical
  /// to demodulate() on the same input.
  void demodulate_into(sig::IqWaveform& rx, int payload_slots, const DemodOptions& options,
                       DemodWorkspace& ws, DemodResult& out) const;

  /// Module firing histories at the first payload slot, derived from the
  /// frame layout (training field then guard).
  [[nodiscard]] static std::vector<unsigned> initial_payload_histories(const PhyParams& p,
                                                                       const FrameLayout& layout);

  [[nodiscard]] const PreambleProcessor& preamble() const { return preamble_; }
  [[nodiscard]] const PhyParams& params() const { return p_; }
  [[nodiscard]] const OfflineModel& offline_model() const { return offline_; }

 private:
  PhyParams p_;
  OfflineModel offline_;
  PreambleProcessor preamble_;
  Constellation constellation_;
  sig::Scrambler scrambler_{};
};

}  // namespace rt::phy
