#include "phy/equalizer.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/error.h"

namespace rt::phy {

namespace {

// The pulse bank stores per-module templates keyed by
// (V-bit pixel history << 1) | fired, measured at full level with uniform
// pixel history. Because pixel responses are proportional to area (paper
// footnote 6), a module's waveform for an arbitrary level and per-pixel
// histories decomposes as
//   sum_{weight pixels b} area_b * template[module][(hist_b << 1) | fired_b]
// with fired_b the level's weight bit. Unfired pixels with recent history
// still contribute their discharge tails (the fired=0 templates) -- the
// residue that would otherwise accumulate as an error floor for dense
// constellations. The equalizer therefore tracks a V-bit history per
// *pixel*.

struct Branch {
  double metric = 0.0;
  std::vector<SymbolLevels> decisions;
  std::vector<Complex> residual;    ///< upcoming window [nT, nT + W)
  std::vector<unsigned> pixel_hist; ///< per-pixel V-bit firing history
};

/// Key identifying branches with identical future behaviour: the last
/// (L - 1) decisions (whose pulses still overlap future slots) plus every
/// pixel history.
std::string merge_key(const Branch& b, int dsm_order) {
  std::string key;
  const std::size_t tail = std::min<std::size_t>(b.decisions.size(),
                                                 static_cast<std::size_t>(dsm_order - 1));
  for (std::size_t i = b.decisions.size() - tail; i < b.decisions.size(); ++i) {
    // rt-lint: narrowing-ok (opaque hash key; only equality matters)
    key.push_back(static_cast<char>(b.decisions[i].level_i + 2));
    key.push_back(static_cast<char>(b.decisions[i].level_q + 2));  // rt-lint: narrowing-ok
  }
  key.push_back('|');
  // rt-lint: narrowing-ok (opaque hash key; only equality matters)
  for (const auto h : b.pixel_hist) key.push_back(static_cast<char>(h));
  return key;
}

}  // namespace

DfeEqualizer::DfeEqualizer(const PhyParams& params, const PulseBank& bank)
    : p_(params), bank_(bank), constellation_(params.bits_per_axis, params.use_q_channel) {
  p_.validate();
  const int expected_modules = p_.use_q_channel ? 2 * p_.dsm_order : p_.dsm_order;
  RT_ENSURE(bank.modules() == expected_modules, "pulse bank module count mismatch");
  RT_ENSURE(bank.entries() == p_.fingerprint_entries(), "pulse bank key-space mismatch");
  RT_ENSURE(bank.pulse_len() == p_.samples_per_symbol(), "pulse bank template length mismatch");
}

EqualizerResult DfeEqualizer::equalize(const sig::IqWaveform& rx, std::size_t payload_begin,
                                       int n_slots,
                                       std::span<const unsigned> initial_histories) const {
  RT_ENSURE(n_slots >= 1, "need at least one slot");
  const int l = p_.dsm_order;
  const int modules = p_.use_q_channel ? 2 * l : l;
  const int bits = p_.bits_per_axis;
  const std::size_t n_pixels = static_cast<std::size_t>(modules) * static_cast<std::size_t>(bits);
  RT_ENSURE(initial_histories.size() == n_pixels,
            "initial history count must equal the pixel count (modules x bits_per_axis)");
  const std::size_t t_samps = p_.samples_per_slot();
  const std::size_t w_samps = p_.samples_per_symbol();
  const unsigned hist_mask = p_.history_mask();
  const double area_denom = static_cast<double>((1 << bits) - 1);

  // rx sample at absolute index, zero beyond the end.
  const auto rx_at = [&](std::size_t idx) -> Complex {
    return idx < rx.size() ? rx[idx] : Complex{};
  };

  // Module waveform terms for `level` given per-pixel histories: one
  // area-weighted template per pixel whose (history, fired) key is
  // non-zero -- including the tail terms of unfired pixels.
  struct PixelTerm {
    std::span<const Complex> tmpl;
    Complex weight;  ///< area x calibrated pixel gain
  };
  const auto gather_terms = [&](int module_global, int level,
                                std::span<const unsigned> pixel_hist,
                                std::vector<PixelTerm>& out) {
    const std::size_t base =
        static_cast<std::size_t>(module_global) * static_cast<std::size_t>(bits);
    for (int wb = 0; wb < bits; ++wb) {
      const int weight_bit = bits - 1 - wb;  // wb 0 = largest pixel
      const unsigned fired = (level > 0 && ((level >> weight_bit) & 1)) ? 1U : 0U;
      const unsigned h = pixel_hist[base + static_cast<std::size_t>(wb)] & hist_mask;
      const unsigned key = (h << 1) | fired;
      if (key == 0) continue;
      const double area = static_cast<double>(1 << weight_bit) / area_denom;
      out.push_back({bank_.pulse(module_global, key),
                     area * bank_.pixel_gain(module_global, wb)});
    }
  };

  Branch seed;
  seed.pixel_hist.assign(initial_histories.begin(), initial_histories.end());
  seed.residual.resize(w_samps);
  for (std::size_t k = 0; k < w_samps; ++k) seed.residual[k] = rx_at(payload_begin + k);
  std::vector<Branch> branches = {std::move(seed)};

  const auto alphabet = constellation_.alphabet();

  struct Candidate {
    std::size_t parent;
    SymbolLevels sym;
    double metric;
  };

  std::vector<PixelTerm> terms;

  for (int n = 0; n < n_slots; ++n) {
    if (!p_.slot_active(n)) {
      // Basic-DSM rest slot: no firing to decide. Score the window energy
      // (a correct past cancels to noise; a wrong decision leaves residual
      // here), then slide every branch forward one slot.
      for (auto& b : branches) {
        for (std::size_t k = 0; k < t_samps; ++k) b.metric += std::norm(b.residual[k]);
        for (std::size_t k = t_samps; k < w_samps; ++k) b.residual[k - t_samps] = b.residual[k];
        const std::size_t next_window_begin =
            payload_begin + (static_cast<std::size_t>(n) + 1) * t_samps + (w_samps - t_samps);
        for (std::size_t k = 0; k < t_samps; ++k)
          b.residual[w_samps - t_samps + k] = rx_at(next_window_begin + k);
      }
      continue;
    }
    const int m = p_.slot_module(n);
    std::vector<Candidate> candidates;
    candidates.reserve(branches.size() * alphabet.size());
    for (std::size_t bi = 0; bi < branches.size(); ++bi) {
      const auto& b = branches[bi];
      for (const auto& sym : alphabet) {
        terms.clear();
        gather_terms(m, sym.level_i, b.pixel_hist, terms);
        if (p_.use_q_channel) gather_terms(l + m, sym.level_q, b.pixel_hist, terms);
        double score = 0.0;
        for (std::size_t k = 0; k < t_samps; ++k) {
          Complex e = b.residual[k];
          for (const auto& t : terms) e -= t.weight * t.tmpl[k];
          score += std::norm(e);
        }
        candidates.push_back({bi, sym, b.metric + score});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.metric < b.metric; });

    // Survivor selection: optionally merge identical trellis states first.
    std::vector<Branch> next;
    next.reserve(static_cast<std::size_t>(p_.equalizer_branches));
    std::unordered_map<std::string, bool> seen_states;
    for (const auto& c : candidates) {
      if (next.size() >= static_cast<std::size_t>(p_.equalizer_branches)) break;
      const auto& parent = branches[c.parent];
      Branch nb;
      nb.metric = c.metric;
      nb.decisions = parent.decisions;
      nb.decisions.push_back(c.sym);
      nb.pixel_hist = parent.pixel_hist;
      // Per-pixel history update for the cycled modules. Histories count
      // in W-cycles; in basic DSM a firing period spans (L + rest) / L
      // cycles, so the shift distance grows accordingly (the rest cycles
      // are idle zeros).
      const int hist_shifts = std::max(1, (p_.period_slots() + l - 1) / l);  // ceil: basic DSM periods exceed W
      const auto update_hist = [&](int module_global, int level) {
        const std::size_t base =
            static_cast<std::size_t>(module_global) * static_cast<std::size_t>(bits);
        for (int wb = 0; wb < bits; ++wb) {
          const int weight_bit = bits - 1 - wb;
          const unsigned fired = (level > 0 && ((level >> weight_bit) & 1)) ? 1U : 0U;
          auto& h = nb.pixel_hist[base + static_cast<std::size_t>(wb)];
          h = ((h << hist_shifts) | (fired << (hist_shifts - 1))) & hist_mask;
        }
      };
      update_hist(m, c.sym.level_i);
      if (p_.use_q_channel) update_hist(l + m, c.sym.level_q);
      if (p_.merge_equalizer_states) {
        const auto key = merge_key(nb, l);
        if (seen_states.contains(key)) continue;  // a better-metric twin already survived
        seen_states.emplace(key, true);
      }
      // Decision feedback: subtract the decided cycle's waveform over its
      // full W span, then slide the window one slot forward.
      terms.clear();
      gather_terms(m, c.sym.level_i, parent.pixel_hist, terms);
      if (p_.use_q_channel) gather_terms(l + m, c.sym.level_q, parent.pixel_hist, terms);
      nb.residual.resize(w_samps);
      for (std::size_t k = t_samps; k < w_samps; ++k) {
        Complex e = parent.residual[k];
        for (const auto& t : terms) e -= t.weight * t.tmpl[k];
        nb.residual[k - t_samps] = e;
      }
      const std::size_t next_window_begin =
          payload_begin + (static_cast<std::size_t>(n) + 1) * t_samps + (w_samps - t_samps);
      for (std::size_t k = 0; k < t_samps; ++k)
        nb.residual[w_samps - t_samps + k] = rx_at(next_window_begin + k);
      next.push_back(std::move(nb));
    }
    branches = std::move(next);
    RT_ENSURE(!branches.empty(), "equalizer lost all branches");
  }

  RT_DCHECK_FINITE(branches.front().metric);
  const auto best = std::min_element(
      branches.begin(), branches.end(),
      [](const Branch& a, const Branch& b) { return a.metric < b.metric; });
  return {best->decisions, best->metric};
}

}  // namespace rt::phy
