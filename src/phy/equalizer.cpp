#include "phy/equalizer.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "obs/trace.h"

namespace rt::phy {

namespace {

// The pulse bank stores per-module templates keyed by
// (V-bit pixel history << 1) | fired, measured at full level with uniform
// pixel history. Because pixel responses are proportional to area (paper
// footnote 6), a module's waveform for an arbitrary level and per-pixel
// histories decomposes as
//   sum_{weight pixels b} area_b * template[module][(hist_b << 1) | fired_b]
// with fired_b the level's weight bit. Unfired pixels with recent history
// still contribute their discharge tails (the fired=0 templates) -- the
// residue that would otherwise accumulate as an error floor for dense
// constellations. The equalizer therefore tracks a V-bit history per
// *pixel*.

using Branch = EqualizerWorkspace::Branch;
using Candidate = EqualizerWorkspace::Candidate;

/// Writes the merge key of `b` -- the last (L - 1) decisions (whose pulses
/// still overlap future slots) plus every pixel history -- into `dst`
/// (fixed stride, zero-padded head). All branches compared within one slot
/// carry the same number of decisions, so the padded fixed-width layout
/// equals the variable-length key byte for byte where it matters.
void write_merge_key(const Branch& b, int dsm_order, std::span<char> dst) {
  std::memset(dst.data(), 0, dst.size());
  const std::size_t tail = std::min<std::size_t>(b.decisions.size(),
                                                 static_cast<std::size_t>(dsm_order - 1));
  std::size_t w = 0;
  for (std::size_t i = b.decisions.size() - tail; i < b.decisions.size(); ++i) {
    // rt-lint: narrowing-ok (opaque hash key; only equality matters)
    dst[w++] = static_cast<char>(b.decisions[i].level_i + 2);
    dst[w++] = static_cast<char>(b.decisions[i].level_q + 2);  // rt-lint: narrowing-ok
  }
  dst[w++] = '|';
  // rt-lint: narrowing-ok (opaque hash key; only equality matters)
  for (const auto h : b.pixel_hist) dst[w++] = static_cast<char>(h);
}

}  // namespace

DfeEqualizer::DfeEqualizer(const PhyParams& params, const PulseBank& bank)
    : p_(params), bank_(bank), constellation_(params.bits_per_axis, params.use_q_channel) {
  p_.validate();
  const int expected_modules = p_.use_q_channel ? 2 * p_.dsm_order : p_.dsm_order;
  RT_ENSURE(bank.modules() == expected_modules, "pulse bank module count mismatch");
  RT_ENSURE(bank.entries() == p_.fingerprint_entries(), "pulse bank key-space mismatch");
  RT_ENSURE(bank.pulse_len() == p_.samples_per_symbol(), "pulse bank template length mismatch");
}

EqualizerResult DfeEqualizer::equalize(const sig::IqWaveform& rx, std::size_t payload_begin,
                                       int n_slots,
                                       std::span<const unsigned> initial_histories) const {
  EqualizerWorkspace ws;
  EqualizerResult out;
  equalize_into(rx, payload_begin, n_slots, initial_histories, ws, out);
  return out;
}

void DfeEqualizer::equalize_into(const sig::IqWaveform& rx, std::size_t payload_begin,
                                 int n_slots, std::span<const unsigned> initial_histories,
                                 EqualizerWorkspace& ws, EqualizerResult& out,
                                 bool soft_output) const {
  RT_TRACE_SPAN("dfe");
  RT_ENSURE(n_slots >= 1, "need at least one slot");
  const int l = p_.dsm_order;
  const int modules = p_.use_q_channel ? 2 * l : l;
  const int bits = p_.bits_per_axis;
  const std::size_t n_pixels = static_cast<std::size_t>(modules) * static_cast<std::size_t>(bits);
  RT_ENSURE(initial_histories.size() == n_pixels,
            "initial history count must equal the pixel count (modules x bits_per_axis)");
  const std::size_t t_samps = p_.samples_per_slot();
  const std::size_t w_samps = p_.samples_per_symbol();
  const unsigned hist_mask = p_.history_mask();
  const double area_denom = static_cast<double>((1 << bits) - 1);

  // rx sample at absolute index, zero beyond the end.
  const auto rx_at = [&](std::size_t idx) -> Complex {
    return idx < rx.size() ? rx[idx] : Complex{};
  };

  // Module waveform terms for `level` given per-pixel histories: one
  // area-weighted template per pixel whose (history, fired) key is
  // non-zero -- including the tail terms of unfired pixels.
  const auto gather_terms = [&](int module_global, int level,
                                std::span<const unsigned> pixel_hist,
                                std::vector<kernels::CTerm>& out_terms) {
    const std::size_t base =
        static_cast<std::size_t>(module_global) * static_cast<std::size_t>(bits);
    for (int wb = 0; wb < bits; ++wb) {
      const int weight_bit = bits - 1 - wb;  // wb 0 = largest pixel
      const unsigned fired = (level > 0 && ((level >> weight_bit) & 1)) ? 1U : 0U;
      const unsigned h = pixel_hist[base + static_cast<std::size_t>(wb)] & hist_mask;
      const unsigned key = (h << 1) | fired;
      if (key == 0) continue;
      const double area = static_cast<double>(1 << weight_bit) / area_denom;
      // rt-check: alloc-ok (pooled ws.terms; capacity amortized across slots and packets)
      out_terms.push_back({bank_.pulse(module_global, key).data(),
                           area * bank_.pixel_gain(module_global, wb)});
    }
  };

  // Seed branch reuses pool slot 0; every field is fully rewritten.
  if (ws.cur.empty()) ws.cur.emplace_back();  // rt-check: alloc-ok (pool seeding, first packet only)
  {
    Branch& seed = ws.cur[0];
    seed.metric = 0.0;
    seed.decisions.clear();
    seed.llrs.clear();
    seed.pixel_hist.assign(initial_histories.begin(), initial_histories.end());
    seed.residual.resize(w_samps);
    for (std::size_t k = 0; k < w_samps; ++k) seed.residual[k] = rx_at(payload_begin + k);
  }
  ws.n_cur = 1;

  // Alphabet is a pure function of (bits_per_axis, use_q_channel); rebuild
  // only when the constellation changed since the last packet.
  if (ws.alphabet_bits != bits || ws.alphabet_q != (p_.use_q_channel ? 1 : 0)) {
    ws.alphabet = constellation_.alphabet();
    ws.alphabet_bits = bits;
    ws.alphabet_q = p_.use_q_channel ? 1 : 0;
  }
  const auto& alphabet = ws.alphabet;

  auto& terms = ws.terms;

  // Merge-key layout: fixed stride so keys live in one flat buffer.
  const std::size_t key_stride =
      2 * static_cast<std::size_t>(l > 0 ? l - 1 : 0) + 1 + n_pixels;
  const auto max_branches = static_cast<std::size_t>(p_.equalizer_branches);

  for (int n = 0; n < n_slots; ++n) {
    if (!p_.slot_active(n)) {
      // Basic-DSM rest slot: no firing to decide. Score the window energy
      // (a correct past cancels to noise; a wrong decision leaves residual
      // here), then slide every branch forward one slot.
      for (std::size_t bi = 0; bi < ws.n_cur; ++bi) {
        Branch& b = ws.cur[bi];
        for (std::size_t k = 0; k < t_samps; ++k) b.metric += std::norm(b.residual[k]);
        for (std::size_t k = t_samps; k < w_samps; ++k) b.residual[k - t_samps] = b.residual[k];
        const std::size_t next_window_begin =
            payload_begin + (static_cast<std::size_t>(n) + 1) * t_samps + (w_samps - t_samps);
        for (std::size_t k = 0; k < t_samps; ++k)
          b.residual[w_samps - t_samps + k] = rx_at(next_window_begin + k);
      }
      continue;
    }
    const int m = p_.slot_module(n);
    auto& candidates = ws.candidates;
    candidates.clear();
    candidates.reserve(ws.n_cur * alphabet.size());
    for (std::size_t bi = 0; bi < ws.n_cur; ++bi) {
      const auto& b = ws.cur[bi];
      for (const auto& sym : alphabet) {
        terms.clear();
        gather_terms(m, sym.level_i, b.pixel_hist, terms);
        if (p_.use_q_channel) gather_terms(l + m, sym.level_q, b.pixel_hist, terms);
        const double score =
            kernels::dfe_score(t_samps, b.residual.data(), terms.data(), terms.size());
        candidates.push_back({bi, sym, b.metric + score});
      }
    }
    if (soft_output) {
      // Snapshot the candidate scores before the sort scrambles them: row
      // `bi` holds one score per alphabet entry for parent branch `bi`,
      // exactly what the max-log-MAP demapper needs (the parent's
      // cumulative metric is a shared additive constant that cancels in
      // every bit margin).
      ws.slot_scores.resize(candidates.size());
      for (std::size_t ci = 0; ci < candidates.size(); ++ci)
        ws.slot_scores[ci] = candidates[ci].metric;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.metric < b.metric; });

    // Survivor selection into the `next` pool: optionally merge identical
    // trellis states first. Copy assignment into pooled branches reuses
    // the inner vectors' capacity.
    RT_OBS_COUNT(kDfeBranchesExpanded, candidates.size());
    std::size_t n_next = 0;
    std::size_t n_seen = 0;
    std::size_t n_merged = 0;
    if (p_.merge_equalizer_states) ws.seen_keys.resize(max_branches * key_stride);
    for (const auto& c : candidates) {
      if (n_next >= max_branches) break;
      const auto& parent = ws.cur[c.parent];
      // rt-check: alloc-ok (branch pool grows to K once, then steady state reuses the slots)
      if (n_next == ws.next.size()) ws.next.emplace_back();
      Branch& nb = ws.next[n_next];
      nb.metric = c.metric;
      nb.decisions = parent.decisions;
      // rt-check: alloc-ok (pooled branch buffer; capacity reaches the slot count at warm-up)
      nb.decisions.push_back(c.sym);
      nb.pixel_hist = parent.pixel_hist;
      // Per-pixel history update for the cycled modules. Histories count
      // in W-cycles; in basic DSM a firing period spans (L + rest) / L
      // cycles, so the shift distance grows accordingly (the rest cycles
      // are idle zeros).
      const int hist_shifts = std::max(1, (p_.period_slots() + l - 1) / l);  // ceil: basic DSM periods exceed W
      const auto update_hist = [&](int module_global, int level) {
        const std::size_t base =
            static_cast<std::size_t>(module_global) * static_cast<std::size_t>(bits);
        for (int wb = 0; wb < bits; ++wb) {
          const int weight_bit = bits - 1 - wb;
          const unsigned fired = (level > 0 && ((level >> weight_bit) & 1)) ? 1U : 0U;
          auto& h = nb.pixel_hist[base + static_cast<std::size_t>(wb)];
          h = ((h << hist_shifts) | (fired << (hist_shifts - 1))) & hist_mask;
        }
      };
      update_hist(m, c.sym.level_i);
      if (p_.use_q_channel) update_hist(l + m, c.sym.level_q);
      if (p_.merge_equalizer_states) {
        const std::span<char> key(ws.seen_keys.data() + n_seen * key_stride, key_stride);
        write_merge_key(nb, l, key);
        bool dup = false;
        for (std::size_t s = 0; s < n_seen; ++s) {
          if (std::memcmp(ws.seen_keys.data() + s * key_stride, key.data(), key_stride) == 0) {
            dup = true;  // a better-metric twin already survived
            break;
          }
        }
        if (dup) {
          ++n_merged;
          continue;
        }
        ++n_seen;
      }
      if (soft_output) {
        nb.llrs = parent.llrs;
        constellation_.unmap_soft_into(
            {ws.slot_scores.data() + c.parent * alphabet.size(), alphabet.size()}, nb.llrs);
      }
      // Decision feedback: subtract the decided cycle's waveform over its
      // full W span, then slide the window one slot forward.
      terms.clear();
      gather_terms(m, c.sym.level_i, parent.pixel_hist, terms);
      if (p_.use_q_channel) gather_terms(l + m, c.sym.level_q, parent.pixel_hist, terms);
      nb.residual.resize(w_samps);
      // Re-base every template at the feedback offset so the kernel walks
      // contiguous arrays: dst[k] = src[t_samps + k] - sum w * tmpl[t_samps + k].
      ws.tail_terms.resize(terms.size());
      for (std::size_t t = 0; t < terms.size(); ++t)
        ws.tail_terms[t] = {terms[t].tmpl + t_samps, terms[t].w};
      kernels::dfe_residual(w_samps - t_samps, parent.residual.data() + t_samps,
                            nb.residual.data(), ws.tail_terms.data(), ws.tail_terms.size());
      const std::size_t next_window_begin =
          payload_begin + (static_cast<std::size_t>(n) + 1) * t_samps + (w_samps - t_samps);
      for (std::size_t k = 0; k < t_samps; ++k)
        nb.residual[w_samps - t_samps + k] = rx_at(next_window_begin + k);
      ++n_next;
    }
    RT_OBS_COUNT(kDfeStateMerges, n_merged);
    RT_OBS_COUNT(kDfeBranchesPruned, candidates.size() - n_next - n_merged);
    std::swap(ws.cur, ws.next);
    ws.n_cur = n_next;
    RT_ENSURE(ws.n_cur > 0, "equalizer lost all branches");
  }

  RT_DCHECK_FINITE(ws.cur.front().metric);
  const auto best = std::min_element(
      ws.cur.begin(), ws.cur.begin() + static_cast<std::ptrdiff_t>(ws.n_cur),
      [](const Branch& a, const Branch& b) { return a.metric < b.metric; });
  out.symbols.assign(best->decisions.begin(), best->decisions.end());
  out.final_metric = best->metric;
  out.soft_bits.clear();
  if (soft_output) out.soft_bits.assign(best->llrs.begin(), best->llrs.end());
  RT_OBS_OBSERVE(kEqualizerResidual, out.final_metric);
}

}  // namespace rt::phy
