// Mobility support: segmented packets with mid-packet resynchronization.
//
// The paper's discussion (section 8) notes that the per-packet channel
// training assumes a static channel, and proposes "inserting multiple
// synchronization frames based on the mobility level and packet length".
// This module implements that extension:
//
//   | preamble | training |  block 0 | sync | block 1 | sync | block 2 ...
//
// Each sync field is a guard-flanked known firing pattern. The receiver
// re-runs the widely-linear rotation/gain/DC regression on every sync
// field and applies the refreshed correction to the following block, so a
// tag (or reader) rotating or fading *during* a long packet stays
// demodulable. Pulse-template shapes are still trained once per packet --
// sync fields track the fast linear drift (rotation, gain), training
// handles the slow structural state, matching the paper's split.
#pragma once

#include <vector>

#include "phy/demodulator.h"
#include "phy/modulator.h"

namespace rt::phy {

struct MobileConfig {
  /// Payload symbols per block (between sync fields).
  int block_symbols = 64;
  /// Sync-field firing slots (excluding the two L-slot guards around it).
  int sync_slots = 16;

  void validate(const PhyParams& p) const {
    RT_ENSURE(block_symbols >= p.dsm_order, "blocks must hold at least one firing group");
    RT_ENSURE(block_symbols % p.dsm_order == 0, "blocks must be whole firing groups");
    RT_ENSURE(sync_slots >= 8, "sync field too short for a stable regression");
  }
};

struct MobileBlock {
  int sync_begin_slot = 0;     ///< first slot of this block's sync field (block 0: none)
  int payload_begin_slot = 0;  ///< first payload slot of the block
  int payload_slots = 0;
  int payload_symbols = 0;
};

struct MobilePacket {
  std::vector<lcm::Firing> firings;
  FrameLayout layout;             ///< header layout (preamble/training/guards)
  std::vector<MobileBlock> blocks;
  std::vector<SymbolLevels> payload_symbols;  ///< ground truth across all blocks
  double duration_s = 0.0;
  int total_slots = 0;
};

class MobileModulator {
 public:
  MobileModulator(const PhyParams& params, const MobileConfig& config);

  [[nodiscard]] MobilePacket modulate(std::span<const std::uint8_t> payload_bits,
                                      bool scramble = true) const;

  /// The deterministic sync firing pattern (known to both ends).
  [[nodiscard]] static std::vector<lcm::Firing> sync_firings(const PhyParams& p, int first_slot,
                                                             int sync_slots);

  [[nodiscard]] const PhyParams& params() const { return p_; }
  [[nodiscard]] const MobileConfig& config() const { return cfg_; }

 private:
  PhyParams p_;
  MobileConfig cfg_;
  Constellation constellation_;
  sig::Scrambler scrambler_{};
};

class MobileDemodulator {
 public:
  MobileDemodulator(const PhyParams& params, const MobileConfig& config,
                    OfflineModel offline_model);

  struct Result {
    bool preamble_found = false;
    std::vector<std::uint8_t> bits;
    int blocks_resynced = 0;
    std::vector<double> block_rotation_deg;  ///< estimated correction per block
  };

  [[nodiscard]] Result demodulate(const sig::IqWaveform& rx, const MobilePacket& packet,
                                  const DemodOptions& options = {}) const;

 private:
  PhyParams p_;
  MobileConfig cfg_;
  Demodulator inner_;
  std::vector<Complex> sync_reference_;  ///< ideal-tag sync waveform (rotation-free)
};

}  // namespace rt::phy
