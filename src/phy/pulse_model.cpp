#include "phy/pulse_model.h"

#include "signal/mls.h"

namespace rt::phy {

PulseBank collect_fingerprints(const PhyParams& params, const WaveformSource& source) {
  params.validate();
  const int l = params.dsm_order;
  const int modules = params.use_q_channel ? 2 * l : l;
  const int v = params.training_memory;
  const int entries = params.fingerprint_entries();  // 2^(V+1) keys
  const std::size_t pulse_len = params.samples_per_symbol();
  PulseBank bank(modules, entries, pulse_len);

  const double w = params.symbol_duration_s();
  const int max_level = params.levels_per_axis() - 1;

  // History-enumeration drive pattern: an order-(V+1) m-sequence guarantees
  // every (history, fired) window appears; we run two periods and collect
  // from the second so wrap-around histories are physically real.
  std::vector<std::uint8_t> seq;
  if (v == 0) {
    seq = {1};
  } else {
    seq = sig::mls(narrow_cast<unsigned>(v + 1));
  }
  const std::size_t period = seq.size();
  const std::size_t cycles = 2 * period;

  // The idle baseline is module-independent: collect it once.
  const double duration = (static_cast<double>(cycles) + 1.0) * w;
  const auto idle = source(std::vector<lcm::Firing>{}, duration);

  for (int m = 0; m < modules; ++m) {
    const bool is_q = m >= l;
    const int slot_module = m % l;
    std::vector<lcm::Firing> schedule;
    for (std::size_t k = 0; k < cycles; ++k) {
      if (seq[k % period] == 0) continue;
      lcm::Firing f;
      f.time_s = (static_cast<double>(k) * static_cast<double>(l) + slot_module) * params.slot_s;
      f.module = slot_module;
      f.level_i = is_q ? -1 : max_level;
      f.level_q = is_q ? max_level : -1;
      schedule.push_back(f);
    }
    const auto active = source(schedule, duration);
    RT_ENSURE(active.size() == idle.size(), "waveform source returned inconsistent lengths");

    // Second-period collection: fingerprint = active - idle over one
    // cycle, keyed by (history << 1) | fired. The order-(V+1) m-sequence
    // covers every non-zero key exactly once; key 0 (idle with no recent
    // firing) stays the zero template. Unfired keys capture the discharge
    // tails that leak past the previous cycle's window.
    for (std::size_t k = period; k < cycles; ++k) {
      const unsigned fired = seq[k % period] ? 1U : 0U;
      unsigned hist = 0;
      for (int j = 1; j <= v; ++j)
        hist |= seq[(k - static_cast<std::size_t>(j)) % period] ? (1U << (j - 1)) : 0U;
      const unsigned key = (hist << 1) | fired;
      if (key == 0) continue;
      const double t_fire =
          (static_cast<double>(k) * static_cast<double>(l) + slot_module) * params.slot_s;
      const std::size_t begin = active.index_at(t_fire);
      RT_ENSURE(begin + pulse_len <= active.size(), "fingerprint window exceeds waveform");
      std::vector<Complex> pulse(pulse_len);
      for (std::size_t i = 0; i < pulse_len; ++i)
        pulse[i] = active[begin + i] - idle[begin + i];
      RT_DCHECK_FINITE(pulse);
      bank.set_pulse(m, key, std::move(pulse));
    }
  }
  return bank;
}

}  // namespace rt::phy
