#include "phy/training.h"

#include <cmath>

#include "common/error.h"
#include "kernels/kernels.h"
#include "linalg/least_squares.h"
#include "linalg/svd.h"
#include "obs/trace.h"

namespace rt::phy {

namespace {

/// Nominal complex axis of a module: I group on the real axis, Q group on
/// the imaginary axis (p_I = j p_Q, section 4.2.3).
Complex module_axis(int module_global, int dsm_order) {
  return module_global < dsm_order ? Complex(1.0, 0.0) : Complex(0.0, 1.0);
}

}  // namespace

OfflineModel OfflineTrainer::train(const PhyParams& params,
                                   std::span<const WaveformSource> sources, int rank) {
  RT_ENSURE(!sources.empty(), "offline training needs at least one orientation source");
  std::vector<PulseBank> banks;
  banks.reserve(sources.size());
  for (const auto& src : sources) banks.push_back(collect_fingerprints(params, src));
  return train_from_banks(params, banks, rank);
}

OfflineModel OfflineTrainer::train_from_banks(const PhyParams& params,
                                              std::span<const PulseBank> banks, int rank) {
  RT_ENSURE(!banks.empty(), "need at least one fingerprint bank");
  RT_ENSURE(rank >= 1, "rank must be >= 1");
  const int l = params.dsm_order;
  const int modules = params.use_q_channel ? 2 * l : l;
  const int entries = params.fingerprint_entries();
  const std::size_t pulse_len = params.samples_per_symbol();
  const std::size_t domain = static_cast<std::size_t>(entries) * pulse_len;

  const std::size_t n_cols = banks.size() * static_cast<std::size_t>(modules);
  linalg::RealMatrix e(domain, n_cols);
  std::size_t col = 0;
  for (const auto& bank : banks) {
    RT_ENSURE(bank.modules() == modules && bank.entries() == entries &&
                  bank.pulse_len() == pulse_len,
              "fingerprint bank does not match the PHY parameters");
    for (int m = 0; m < modules; ++m) {
      const Complex axis = module_axis(m, l);
      for (int h = 0; h < entries; ++h) {
        const auto pulse = bank.pulse(m, narrow_cast<unsigned>(h));
        for (std::size_t k = 0; k < pulse_len; ++k) {
          // Project onto the module's nominal axis; the tiny orthogonal
          // residue from polarizer attachment errors is noise to the basis.
          e(static_cast<std::size_t>(h) * pulse_len + k, col) =
              (pulse[k] * std::conj(axis)).real();
        }
      }
      ++col;
    }
  }

  const auto s = linalg::svd(e);
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(rank), s.sigma.size());
  OfflineModel model;
  model.bases = linalg::truncated_basis(s, k);
  model.sigma.assign(s.sigma.begin(), s.sigma.begin() + static_cast<std::ptrdiff_t>(k));
  return model;
}

PulseBank OnlineTrainer::train(const PhyParams& params, const OfflineModel& model,
                               const FrameLayout& layout, const sig::IqWaveform& corrected_rx,
                               std::size_t frame_start, double ridge) {
  TrainingWorkspace ws;
  PulseBank bank;
  train_into(params, model, layout, corrected_rx, frame_start, bank, ws, ridge);
  return bank;
}

namespace {

/// Recomputes the cached training / pixel schedules when the geometry
/// changed since the last packet (never in a steady-state sweep).
void refresh_schedules(const PhyParams& params, const FrameLayout& layout,
                       TrainingWorkspace& ws) {
  if (ws.schedule_valid && ws.schedule_params == params && ws.schedule_layout == layout) return;
  ws.schedule = training_schedule(params, layout);
  ws.pixel_schedule = pixel_training_schedule(params, layout);
  ws.schedule_params = params;
  ws.schedule_layout = layout;
  ws.schedule_valid = true;
}

}  // namespace

void OnlineTrainer::train_into(const PhyParams& params, const OfflineModel& model,
                               const FrameLayout& layout, const sig::IqWaveform& corrected_rx,
                               std::size_t frame_start, PulseBank& bank, TrainingWorkspace& ws,
                               double ridge) {
  RT_TRACE_SPAN("train");
  RT_OBS_COUNT(kTrainingSolves, 1);
  RT_ENSURE(ridge >= 0.0, "ridge weight cannot be negative");
  const int l = params.dsm_order;
  const int modules = params.use_q_channel ? 2 * l : l;
  const int s_rank = model.rank();
  const std::size_t pulse_len = params.samples_per_symbol();
  RT_ENSURE(model.domain() == static_cast<std::size_t>(params.fingerprint_entries()) * pulse_len,
            "offline model domain does not match the PHY parameters");

  const std::size_t t_samps = params.samples_per_slot();
  const int region_slots = layout.training_slots() + layout.guard_slots;
  const std::size_t n = static_cast<std::size_t>(region_slots) * t_samps;
  const std::size_t region_start =
      frame_start + static_cast<std::size_t>(layout.training_begin()) * t_samps;
  RT_ENSURE(region_start + n <= corrected_rx.size(),
            "received waveform too short for the training field");

  const std::size_t unknowns = static_cast<std::size_t>(modules) * static_cast<std::size_t>(s_rank);
  // Ridge regularization: stack sqrt(lambda) I under the design matrix so
  // the QR solve minimizes ||A g - b||^2 + lambda ||g||^2.
  //
  // The design is built column-major (column u at a_cm[u*rows ..]) with a
  // per-call transpose of the offline bases, so every accumulation below
  // runs over contiguous spans through the kernel layer. The additions per
  // element are unchanged in value and order, and qr_decompose_cm_into
  // feeds MGS the same column-major copy qr_decompose_into would build --
  // the solve is bit-identical to the old row-major path.
  const std::size_t rows = n + unknowns;
  ws.a_cm.assign(rows * unknowns, 0.0);
  const std::size_t domain = model.domain();
  ws.bases_cm.resize(static_cast<std::size_t>(s_rank) * domain);
  for (int s = 0; s < s_rank; ++s) {
    double* dst = ws.bases_cm.data() + static_cast<std::size_t>(s) * domain;
    for (std::size_t idx = 0; idx < domain; ++idx)
      dst[idx] = model.bases(idx, static_cast<std::size_t>(s));
  }
  ws.b_re.assign(n + unknowns, 0.0);
  ws.b_im.assign(n + unknowns, 0.0);
  auto& b_re = ws.b_re;
  auto& b_im = ws.b_im;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = corrected_rx[region_start + i];
    b_re[i] = v.real();
    b_im[i] = v.imag();
  }

  refresh_schedules(params, layout, ws);
  for (const auto& tf : ws.schedule) {
    const std::size_t off =
        static_cast<std::size_t>(tf.slot - layout.training_begin()) * t_samps;
    if (off >= n) continue;
    const std::size_t len = std::min(pulse_len, n - off);
    for (int s = 0; s < s_rank; ++s) {
      const std::size_t u = static_cast<std::size_t>(tf.module_global) * s_rank + s;
      const std::size_t key_base = static_cast<std::size_t>(tf.key()) * pulse_len;
      kernels::accum_real(len, ws.bases_cm.data() + static_cast<std::size_t>(s) * domain + key_base,
                          ws.a_cm.data() + u * rows + off);
    }
  }

  // Singular-value-weighted ridge: each coefficient's penalty scales with
  // its design-column norm (scale invariance) and with sigma_1/sigma_s --
  // the dominant basis is essentially unpenalized, weak bases are damped
  // toward zero unless the packet strongly supports them.
  if (ridge > 0.0) {
    const double sigma1 = model.sigma.empty() ? 1.0 : model.sigma.front();
    for (std::size_t u = 0; u < unknowns; ++u) {
      const double col_sq = kernels::sum_sq_real(n, ws.a_cm.data() + u * rows);
      const int s = narrow_cast<int>(u % static_cast<std::size_t>(s_rank));
      const double sig =
          (s < narrow_cast<int>(model.sigma.size()) && model.sigma[s] > 0.0) ? model.sigma[s]
                                                                             : sigma1;
      const double weight = sigma1 / sig;
      ws.a_cm[u * rows + n + u] = std::sqrt(ridge * col_sq) * weight;
    }
  }

  // A is real; solve the complex fit as two real least-squares problems
  // off one QR decomposition.
  RT_OBS_COUNT(kLsSolves, 2);
  linalg::qr_decompose_cm_into(std::span<const double>(ws.a_cm), rows, unknowns, ws.ls);
  const auto re_sol = linalg::solve_after_qr(std::span<const double>(b_re), ws.ls);
  ws.g_re.assign(re_sol.begin(), re_sol.end());
  const auto im_sol = linalg::solve_after_qr(std::span<const double>(b_im), ws.ls);
  ws.g_im.assign(im_sol.begin(), im_sol.end());
  const auto& g_re = ws.g_re;
  const auto& g_im = ws.g_im;
  RT_DCHECK_FINITE(g_re);
  RT_DCHECK_FINITE(g_im);

  // resize() zero-fills every template, so key 0 (the identically-zero
  // template) needs no write and the others accumulate from zero exactly
  // as the fresh-vector path did.
  bank.resize(modules, params.fingerprint_entries(), pulse_len);
  for (int m = 0; m < modules; ++m) {
    for (int key = 1; key < params.fingerprint_entries(); ++key) {
      const auto pulse = bank.pulse_mut(m, narrow_cast<unsigned>(key));
      for (int s = 0; s < s_rank; ++s) {
        const std::size_t u = static_cast<std::size_t>(m) * s_rank + s;
        const Complex gamma(g_re[u], g_im[u]);
        const std::size_t key_base = static_cast<std::size_t>(key) * pulse_len;
        kernels::caxpy_real(pulse_len, gamma,
                            ws.bases_cm.data() + static_cast<std::size_t>(s) * domain + key_base,
                            pulse.data());
      }
    }
  }

  if (layout.pixel_rounds > 0)
    calibrate_pixel_gains_into(params, layout, corrected_rx, frame_start, bank, ws);
}

void OnlineTrainer::calibrate_pixel_gains(const PhyParams& params, const FrameLayout& layout,
                                          const sig::IqWaveform& corrected_rx,
                                          std::size_t frame_start, PulseBank& bank) {
  TrainingWorkspace ws;
  calibrate_pixel_gains_into(params, layout, corrected_rx, frame_start, bank, ws);
}

void OnlineTrainer::calibrate_pixel_gains_into(const PhyParams& params,
                                               const FrameLayout& layout,
                                               const sig::IqWaveform& corrected_rx,
                                               std::size_t frame_start, PulseBank& bank,
                                               TrainingWorkspace& ws) {
  RT_TRACE_SPAN("pixel_cal");
  RT_OBS_COUNT(kPixelCalSolves, 1);
  RT_OBS_COUNT(kLsSolves, 1);
  // Second LS stage over the pixel-calibration rounds: each weight pixel's
  // waveform is g_{m,w} * area_w * T_m[key], with complex gains g as the
  // unknowns. The single-pixel firing structure of the rounds makes the
  // per-pixel columns linearly independent.
  const int l = params.dsm_order;
  const int modules = params.use_q_channel ? 2 * l : l;
  const int bits = params.bits_per_axis;
  const std::size_t pulse_len = params.samples_per_symbol();
  const std::size_t t_samps = params.samples_per_slot();
  const double area_denom = static_cast<double>((1 << bits) - 1);

  const int region_slots = layout.pixel_slots() + layout.guard_slots;
  const std::size_t n = static_cast<std::size_t>(region_slots) * t_samps;
  const std::size_t region_start =
      frame_start + static_cast<std::size_t>(layout.pixel_begin()) * t_samps;
  RT_ENSURE(region_start + n <= corrected_rx.size(),
            "received waveform too short for the pixel-calibration rounds");

  // Gains are REAL amplitude factors (manufacturing area/transmission
  // spread); solving a real system on stacked re/im rows also avoids the
  // rank deficiency of a complex solve, where an I module's template and
  // its Q sibling's (j times the same shape, fired in the same rounds)
  // are complex-proportional.
  const std::size_t unknowns =
      static_cast<std::size_t>(modules) * static_cast<std::size_t>(bits);
  auto& a = ws.pixel_a;
  a.resize(2 * n, unknowns);
  auto& b = ws.pixel_b;
  b.assign(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = corrected_rx[region_start + i].real();
    b[n + i] = corrected_rx[region_start + i].imag();
  }

  refresh_schedules(params, layout, ws);
  for (const auto& pc : ws.pixel_schedule) {
    const std::size_t off =
        static_cast<std::size_t>(pc.slot - layout.pixel_begin()) * t_samps;
    const std::size_t u =
        static_cast<std::size_t>(pc.module_global) * static_cast<std::size_t>(bits) +
        static_cast<std::size_t>(pc.weight_index);
    const double area = static_cast<double>(1 << (bits - 1 - pc.weight_index)) / area_denom;
    const auto tmpl = bank.pulse(pc.module_global, pc.key);
    for (std::size_t k = 0; k < pulse_len; ++k) {
      const std::size_t row = off + k;
      if (row >= n) break;
      a(row, u) += area * tmpl[k].real();
      a(n + row, u) += area * tmpl[k].imag();
    }
  }

  try {
    const auto gains = linalg::solve_least_squares_into(a, std::span<const double>(b), ws.ls);
    RT_DCHECK_FINITE(gains);
    ws.pixel_gains.resize(gains.size());
    for (std::size_t i = 0; i < gains.size(); ++i) ws.pixel_gains[i] = Complex(gains[i], 0.0);
    bank.set_pixel_gains(std::span<const Complex>(ws.pixel_gains), bits);
  } catch (const PreconditionError&) {
    // Degenerate calibration (e.g. a pixel never excited): keep unity
    // gains rather than fail the packet.
  }
}

}  // namespace rt::phy
