// Bit/byte packing helpers.
//
// PHY and MAC layers move data as bit vectors (std::vector<uint8_t> holding
// one bit per element, MSB-first within each source byte); the host side
// works in bytes. These converters are the single point of truth for that
// packing order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt {

/// Expands bytes to bits, MSB first.
[[nodiscard]] inline std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (const auto b : bytes)
    for (int i = 7; i >= 0; --i) bits.push_back(narrow_cast<std::uint8_t>((b >> i) & 1U));
  return bits;
}

/// Packs bits (MSB first) back into bytes. Size must be a multiple of 8.
[[nodiscard]] inline std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  RT_ENSURE(bits.size() % 8 == 0, "bit count must be a multiple of 8");
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    RT_ENSURE(bits[i] <= 1, "bit values must be 0 or 1");
    bytes[i / 8] = narrow_cast<std::uint8_t>((bytes[i / 8] << 1) | bits[i]);
  }
  return bytes;
}

/// Number of positions where the two bit vectors differ (for BER accounting).
[[nodiscard]] inline std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                                  std::span<const std::uint8_t> b) {
  RT_ENSURE(a.size() == b.size(), "hamming_distance requires equal lengths");
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]) ? 1 : 0;
  return d;
}

}  // namespace rt
