// Checked narrowing conversions (GSL-style `narrow`), Core Guidelines ES.46.
//
// Raw `static_cast` to a narrow integer type is banned in src/ by
// tools/rt_lint.py; pick the conversion that states your intent:
//
//   rt::narrow<T>(v)        Always-checked. Throws rt::RuntimeError if the
//                           value does not survive the round trip. Use at
//                           API boundaries and anywhere the input is not
//                           already range-restricted.
//   rt::narrow_cast<T>(v)   Intent-marked narrowing that is lossless by
//                           construction (masked values, loop bounds already
//                           validated, ...). Checked via RT_ASSERT in Debug
//                           and sanitizer builds, a plain static_cast in
//                           Release — zero cost on hot paths.
//   rt::saturate_cast<T>(v) Clamps to the representable range of T instead
//                           of failing. Use for quantizers / ADC models
//                           where clipping is the desired semantics.
#pragma once

#include <algorithm>
#include <limits>
#include <type_traits>

#include "common/error.h"

namespace rt {

namespace detail {

/// True when `v` converts to `To` and back without changing value or sign.
template <typename To, typename From>
constexpr bool narrowing_is_lossless(From v) {
  const auto out = static_cast<To>(v);
  if (static_cast<From>(out) != v) return false;
  if constexpr (std::is_signed_v<From> != std::is_signed_v<To>) {
    if ((v < From{}) != (out < To{})) return false;
  }
  return true;
}

}  // namespace detail

/// Converts `v` to `To`, throwing RuntimeError if the value does not survive
/// the round trip (lossy narrowing).
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From v) {
  if (!detail::narrowing_is_lossless<To>(v)) {
    if constexpr (std::is_signed_v<From> != std::is_signed_v<To>) {
      if ((v < From{}) != (static_cast<To>(v) < To{}))
        throw RuntimeError("narrowing conversion changed sign");
    }
    throw RuntimeError("narrowing conversion lost information");
  }
  return static_cast<To>(v);
}

/// Narrowing cast the caller asserts is lossless. Verified in checked builds
/// (RT_ENABLE_ASSERTS), free in Release.
template <typename To, typename From>
[[nodiscard]] constexpr To narrow_cast(From v) {
#if RT_ENABLE_ASSERTS
  RT_ASSERT(detail::narrowing_is_lossless<To>(v), "narrow_cast lost information");
#endif
  return static_cast<To>(v);
}

/// Converts `v` to the integral type `To`, clamping to To's representable
/// range. NaN input (floating From) clamps to To's minimum.
template <typename To, typename From>
[[nodiscard]] constexpr To saturate_cast(From v) {
  static_assert(std::is_integral_v<To>, "saturate_cast targets integral types");
  constexpr To lo = std::numeric_limits<To>::min();
  constexpr To hi = std::numeric_limits<To>::max();
  if constexpr (std::is_floating_point_v<From>) {
    if (!(v > static_cast<From>(lo))) return lo;  // also catches NaN
    if (v >= static_cast<From>(hi)) return hi;
    return static_cast<To>(v);
  } else {
    using Wide = std::common_type_t<From, To>;
    if constexpr (std::is_signed_v<From> && std::is_unsigned_v<To>) {
      if (v < From{}) return lo;
      return static_cast<Wide>(v) > static_cast<Wide>(hi) ? hi : static_cast<To>(v);
    } else if constexpr (std::is_unsigned_v<From> && std::is_signed_v<To>) {
      using UWide = std::make_unsigned_t<Wide>;
      return static_cast<UWide>(v) > static_cast<UWide>(hi) ? hi : static_cast<To>(v);
    } else {
      if (static_cast<Wide>(v) < static_cast<Wide>(lo)) return lo;
      if (static_cast<Wide>(v) > static_cast<Wide>(hi)) return hi;
      return static_cast<To>(v);
    }
  }
}

}  // namespace rt
