// Checked narrowing conversions (GSL-style `narrow`), Core Guidelines ES.46.
#pragma once

#include <type_traits>

#include "common/error.h"

namespace rt {

/// Converts `v` to `To`, throwing RuntimeError if the value does not survive
/// the round trip (lossy narrowing).
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From v) {
  const auto out = static_cast<To>(v);
  if (static_cast<From>(out) != v) throw RuntimeError("narrowing conversion lost information");
  if constexpr (std::is_signed_v<From> != std::is_signed_v<To>) {
    if ((v < From{}) != (out < To{})) throw RuntimeError("narrowing conversion changed sign");
  }
  return out;
}

}  // namespace rt
