// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in RetroTurbo (AWGN, pixel heterogeneity,
// scenario placement, ...) draws from an rt::Rng seeded explicitly, so a
// simulation run is a pure function of its configuration.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/narrow.h"

namespace rt {

/// SplitMix64 finalizer: bijective avalanche mix of a 64-bit word.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based stream split: the seed of sub-stream (a, b) of `base`.
///
/// A pure function of its inputs, so any task in a parallel run can
/// reconstruct its RNG stream from indices alone -- no shared engine to
/// advance, hence no ordering or thread-count dependence. This is the
/// foundation of the deterministic parallel sweep engine (src/runtime):
/// packet p of BER point i draws from split_seed(point_seed, p, stream).
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t base, std::uint64_t a,
                                                 std::uint64_t b = 0) {
  std::uint64_t h = mix_seed(base);
  h = mix_seed(h ^ mix_seed(a ^ 0xa5a5a5a5a5a5a5a5ULL));
  h = mix_seed(h ^ mix_seed(b ^ 0xc3c3c3c3c3c3c3c3ULL));
  return h;
}

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to the given sigma and mean.
  [[nodiscard]] double gaussian(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Fair coin / biased coin.
  [[nodiscard]] bool bernoulli(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// `n` random payload bits.
  [[nodiscard]] std::vector<std::uint8_t> bits(std::size_t n) {
    // rt-check: alloc-ok (convenience wrapper; the hot path uses fill_bits into a pooled buffer)
    std::vector<std::uint8_t> out(n);
    fill_bits(out);
    return out;
  }

  /// Fills a caller-owned buffer with random bits (same draw order as
  /// bits(), so reusable-workspace callers stay bit-identical).
  void fill_bits(std::span<std::uint8_t> out) {
    for (auto& b : out) b = bernoulli() ? 1 : 0;
  }

  /// `n` random payload bytes.
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    for (auto& b : out) b = narrow_cast<std::uint8_t>(uniform_int(0, 255));
    return out;
  }

  /// Derives an independent child stream (for per-component seeding).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Access to the raw engine for std:: distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rt
