// Unit helpers (decibels, time, angles) used across the code base.
//
// RetroTurbo mixes optical power ratios (dB), durations (seconds, with
// millisecond-scale LCM dynamics) and polarization angles (degrees in the
// paper, radians internally). These helpers keep the conversions explicit.
#pragma once

#include <cmath>
#include <numbers>

namespace rt {

inline constexpr double kPi = std::numbers::pi;

/// Power ratio -> decibels.
[[nodiscard]] inline double to_db(double power_ratio) { return 10.0 * std::log10(power_ratio); }

/// Decibels -> power ratio.
[[nodiscard]] inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Amplitude ratio -> decibels (20 log10).
[[nodiscard]] inline double amplitude_to_db(double amp_ratio) {
  return 20.0 * std::log10(amp_ratio);
}

[[nodiscard]] inline constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
[[nodiscard]] inline constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Milliseconds -> seconds (the paper quotes all LCM timings in ms).
[[nodiscard]] inline constexpr double ms(double v) { return v * 1e-3; }

/// Microseconds -> seconds.
[[nodiscard]] inline constexpr double us(double v) { return v * 1e-6; }

/// Kilohertz -> hertz.
[[nodiscard]] inline constexpr double khz(double v) { return v * 1e3; }

}  // namespace rt
