// Error handling primitives shared by every RetroTurbo module.
//
// Per the C++ Core Guidelines (E.2, I.5) we report precondition violations
// and runtime failures with exceptions carrying enough context to diagnose
// the failing call site.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace rt {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a runtime operation cannot complete (numerical failure,
/// malformed trace file, decode failure surfaced as an error, ...).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, const std::string& msg,
                                           const std::source_location& loc) {
  throw PreconditionError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                          ": precondition `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}

}  // namespace detail

/// Verifies a precondition; throws PreconditionError with location info on failure.
inline void ensure(bool cond, const char* expr, const std::string& msg = "",
                   const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail_precondition(expr, msg, loc);
}

}  // namespace rt

/// Precondition check macro that captures the failing expression text.
#define RT_ENSURE(cond, ...) ::rt::ensure(static_cast<bool>(cond), #cond, ##__VA_ARGS__)
