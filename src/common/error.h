// Error handling and contract primitives shared by every RetroTurbo module.
//
// Per the C++ Core Guidelines (E.2, I.5) we report precondition violations
// and runtime failures with exceptions carrying enough context to diagnose
// the failing call site.
//
// Contract macro conventions (see DESIGN.md "Contracts and checking"):
//
//   RT_ENSURE(cond, msg?)       Always-on public-API precondition. Throws
//                               rt::PreconditionError. Use at module entry
//                               points to validate caller-supplied inputs.
//   RT_ASSERT(cond, msg?)       Internal invariant. Checked only when
//                               RT_ENABLE_ASSERTS is 1 (Debug or sanitizer
//                               builds); compiles to nothing in Release.
//   RT_DCHECK_FINITE(value)     Debug-only finiteness check for DSP hot
//                               paths (doubles, Complex, or any range of
//                               them). Catches NaN/Inf propagation at the
//                               point of creation instead of as a corrupted
//                               BER curve. Compiles to nothing in Release.
#pragma once

#include <cmath>
#include <complex>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

// RT_ENABLE_ASSERTS: 1 when debug-only contracts (RT_ASSERT,
// RT_DCHECK_FINITE) are live. Defaults to following NDEBUG; sanitizer
// presets force it to 1 so ASan/UBSan runs also exercise the contracts.
#if !defined(RT_ENABLE_ASSERTS)
#if defined(NDEBUG)
#define RT_ENABLE_ASSERTS 0
#else
#define RT_ENABLE_ASSERTS 1
#endif
#endif

namespace rt {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a runtime operation cannot complete (numerical failure,
/// malformed trace file, decode failure surfaced as an error, ...).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by RT_ASSERT / RT_DCHECK_FINITE when an internal invariant is
/// broken in a checked build. Distinct from PreconditionError so tests can
/// tell "caller misused the API" from "the implementation is wrong".
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, std::string_view msg,
                                           const std::source_location& loc) {
  throw PreconditionError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                          ": precondition `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + std::string(msg))));
}

[[noreturn]] inline void fail_assertion(const char* expr, std::string_view msg,
                                        const std::source_location& loc) {
  throw AssertionError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                       ": assertion `" + expr + "` failed" +
                       (msg.empty() ? "" : (": " + std::string(msg))));
}

/// True when every element of `v` is finite. Overloads cover the value
/// categories that flow through the DSP pipeline: real scalars, complex
/// samples, and ranges of either.
template <typename T>
  requires std::is_arithmetic_v<T>
constexpr bool all_finite(T v) {
  if constexpr (std::is_floating_point_v<T>) return std::isfinite(v);
  return true;  // integral values are always finite
}

template <typename T>
constexpr bool all_finite(const std::complex<T>& v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

template <typename Range>
  requires requires(const Range& r) {
    std::begin(r);
    std::end(r);
  }
constexpr bool all_finite(const Range& r) {
  for (const auto& v : r)
    if (!all_finite(v)) return false;
  return true;
}

}  // namespace detail

/// Verifies a precondition; throws PreconditionError with location info on
/// failure. Literal messages stay `const char*` all the way down, so the
/// success path never materialises a std::string (hot paths call RT_ENSURE
/// per packet and must stay allocation-free).
inline void ensure(bool cond, const char* expr, const char* msg = "",
                   const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail_precondition(expr, msg, loc);
}

/// Overload for call sites that build a dynamic message. The caller pays
/// for the string only when it chooses to construct one.
inline void ensure(bool cond, const char* expr, const std::string& msg,
                   const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail_precondition(expr, msg, loc);
}

/// Verifies an internal invariant; throws AssertionError on failure. Callers
/// normally reach this through RT_ASSERT so release builds pay nothing.
inline void assert_true(bool cond, const char* expr, const char* msg = "",
                        const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail_assertion(expr, msg, loc);
}

/// Dynamic-message overload mirroring ensure().
inline void assert_true(bool cond, const char* expr, const std::string& msg,
                        const std::source_location& loc = std::source_location::current()) {
  if (!cond) detail::fail_assertion(expr, msg, loc);
}

/// Verifies that a scalar / complex sample / range of samples is finite.
template <typename T>
inline void check_finite(const T& value, const char* expr,
                         const std::source_location& loc = std::source_location::current()) {
  if (!detail::all_finite(value)) detail::fail_assertion(expr, "value is not finite", loc);
}

}  // namespace rt

/// Precondition check macro that captures the failing expression text.
#define RT_ENSURE(cond, ...) ::rt::ensure(static_cast<bool>(cond), #cond, ##__VA_ARGS__)

#if RT_ENABLE_ASSERTS
#define RT_ASSERT(cond, ...) ::rt::assert_true(static_cast<bool>(cond), #cond, ##__VA_ARGS__)
#define RT_DCHECK_FINITE(value) ::rt::check_finite((value), #value)
#else
// Compiled out: the operand is not evaluated (sizeof is unevaluated) but
// stays visible to the compiler, so no -Wunused warnings and truly zero cost.
#define RT_ASSERT(cond, ...) static_cast<void>(sizeof((cond) ? 1 : 0))
#define RT_DCHECK_FINITE(value) static_cast<void>(sizeof((value)))
#endif
