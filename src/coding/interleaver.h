// Block interleaver.
//
// RetroTurbo error events are bursty: one wrong DFE decision corrupts
// several adjacent bits (error propagation, section 4.3.2), and a deep
// mobility fade hits a contiguous stretch. A rows x cols block
// interleaver spreads such bursts across Reed-Solomon codewords so the
// per-block error count stays inside the correction radius.
#pragma once

#include <span>
#include <vector>

#include "common/error.h"

namespace rt::coding {

class BlockInterleaver {
 public:
  BlockInterleaver(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    RT_ENSURE(rows >= 1 && cols >= 1, "dimensions must be positive");
  }

  [[nodiscard]] std::size_t block_size() const { return rows_ * cols_; }

  /// Writes row-wise, reads column-wise into a caller-owned buffer
  /// (resized to in.size(); a warm buffer never reallocates). Input must
  /// be a whole number of blocks and must not alias `out`.
  template <typename T>
  void interleave_into(std::span<const T> in, std::vector<T>& out) const {
    RT_ENSURE(in.size() % block_size() == 0, "input must be a whole number of blocks");
    out.resize(in.size());
    for (std::size_t b = 0; b < in.size(); b += block_size()) {
      std::size_t k = 0;
      for (std::size_t c = 0; c < cols_; ++c)
        for (std::size_t r = 0; r < rows_; ++r) out[b + k++] = in[b + r * cols_ + c];
    }
  }

  /// Inverse permutation of interleave_into(); same buffer contract.
  template <typename T>
  void deinterleave_into(std::span<const T> in, std::vector<T>& out) const {
    RT_ENSURE(in.size() % block_size() == 0, "input must be a whole number of blocks");
    out.resize(in.size());
    for (std::size_t b = 0; b < in.size(); b += block_size()) {
      std::size_t k = 0;
      for (std::size_t c = 0; c < cols_; ++c)
        for (std::size_t r = 0; r < rows_; ++r) out[b + r * cols_ + c] = in[b + k++];
    }
  }

  /// Writes row-wise, reads column-wise. Input must be a whole number of
  /// blocks.
  template <typename T>
  [[nodiscard]] std::vector<T> interleave(std::span<const T> in) const {
    std::vector<T> out;
    interleave_into(in, out);
    return out;
  }

  /// Inverse permutation.
  template <typename T>
  [[nodiscard]] std::vector<T> deinterleave(std::span<const T> in) const {
    std::vector<T> out;
    deinterleave_into(in, out);
    return out;
  }

  /// Longest burst (in symbols) guaranteed to be spread so that no more
  /// than one corrupted symbol lands in any row.
  [[nodiscard]] std::size_t burst_tolerance() const { return rows_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace rt::coding
