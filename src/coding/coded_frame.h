// Coded-frame pipeline: whiten -> FEC encode -> interleave on TX, with the
// inverse (deinterleave -> soft decode -> dewhiten -> CRC check) on RX.
//
// This is the paper's Fig. 18b coding stack generalized over a
// CodeDescriptor: Reed-Solomon absorbs DFE burst errors (with LLR-driven
// erasure marking doubling the correction value of flagged symbols), the
// convolutional option trades better random-error performance at low SNR
// via soft-decision Viterbi. Whitening decorrelates the payload from the
// modulator's own scrambler so coded frames see the same DC-balance
// benefit without the two LFSRs cancelling.
//
// Every *_into entry point runs over a caller-owned CodedFrameWorkspace:
// zero steady-state allocations once the buffers are warm (rt_check C2).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/code_descriptor.h"
#include "coding/convolutional.h"
#include "coding/crc.h"
#include "coding/interleaver.h"
#include "coding/reed_solomon.h"
#include "common/error.h"
#include "common/narrow.h"
#include "signal/scrambler.h"

namespace rt::coding {

struct CodedFrameConfig {
  CodeDescriptor code = CodeDescriptor::none();
  /// Block-interleaver depth: a burst of up to `interleaver_rows` coded
  /// symbols lands at most once per deinterleaved row.
  std::size_t interleaver_rows = 4;
  /// Append CRC-16/CCITT-FALSE (big-endian) to the payload before coding.
  bool use_crc = true;
  /// Whitening seed; anything but the modulator scrambler's default 0x7F,
  /// so the frame and symbol keystreams never line up and cancel.
  std::uint8_t whiten_seed = 0x2B;
};

/// All scratch for CodedFrameCodec, pooled in sim::PacketWorkspace so the
/// coded packet path stays allocation-free in steady state.
struct CodedFrameWorkspace {
  std::vector<std::uint8_t> message_bits;  ///< payload + CRC, whitened domain
  std::vector<std::uint8_t> scratch_bits;  ///< conv-coded / deinterleaved bits
  std::vector<float> hard_llrs;            ///< +/-1 view of a hard-bit frame
  std::vector<float> scratch_llrs;         ///< deinterleaved LLRs
  std::vector<std::uint8_t> bytes;         ///< packed message bytes
  std::vector<std::uint8_t> coded_bytes;   ///< RS codewords before interleave
  std::vector<std::uint8_t> il_bytes;      ///< byte-interleaver output
  std::vector<float> byte_rel;             ///< per-byte min-|LLR| reliability
  std::vector<float> rel_scratch;          ///< deinterleaved reliabilities
  std::vector<std::uint32_t> order;        ///< GMD reliability argsort
  std::vector<std::size_t> erasures;       ///< positions handed to the RS decoder
  std::vector<std::uint8_t> block_data;    ///< zero-padded k-byte RS block
  ConvWorkspace conv;
  ReedSolomon::Scratch rs;
};

/// One decode outcome. `payload` views the workspace and is invalidated by
/// the next call on the same workspace.
struct CodedFrameResult {
  bool decode_ok = false;  ///< FEC converged (always true for conv/none)
  bool crc_ok = false;     ///< CRC residue clean (== decode_ok when CRC off)
  std::size_t erasures_used = 0;  ///< total RS erasures in successful retries
  std::span<const std::uint8_t> payload;
};

class CodedFrameCodec {
 public:
  explicit CodedFrameCodec(CodedFrameConfig cfg) : cfg_(cfg), whitener_(cfg.whiten_seed) {
    RT_ENSURE(cfg_.interleaver_rows >= 1, "interleaver depth must be positive");
    switch (cfg_.code.kind) {
      case CodeDescriptor::Kind::kConvolutional:
        conv_.emplace(narrow_cast<int>(cfg_.code.k));
        break;
      case CodeDescriptor::Kind::kReedSolomon:
        rs_.emplace(cfg_.code.n, cfg_.code.k);
        break;
      case CodeDescriptor::Kind::kNone:
        break;
    }
  }

  [[nodiscard]] const CodedFrameConfig& config() const { return cfg_; }
  [[nodiscard]] double code_rate() const { return cfg_.code.rate(); }

  /// Message bits carried inside the code: payload plus the optional CRC.
  [[nodiscard]] std::size_t message_bits(std::size_t payload_bits) const {
    RT_ENSURE(payload_bits > 0 && payload_bits % 8 == 0, "payload must be whole bytes");
    return payload_bits + (cfg_.use_crc ? 16 : 0);
  }

  /// On-air coded bits for a payload, including FEC expansion, the trellis
  /// flush / RS block padding, and interleaver fill.
  [[nodiscard]] std::size_t coded_bits(std::size_t payload_bits) const {
    const std::size_t msg = message_bits(payload_bits);
    const std::size_t rows = cfg_.interleaver_rows;
    switch (cfg_.code.kind) {
      case CodeDescriptor::Kind::kNone:
        return msg;
      case CodeDescriptor::Kind::kConvolutional: {
        const std::size_t raw = conv_->coded_bits(msg);
        return round_up(raw, rows);
      }
      case CodeDescriptor::Kind::kReedSolomon: {
        const std::size_t msg_bytes = msg / 8;
        const std::size_t blocks = (msg_bytes + rs_->k() - 1) / rs_->k();
        return round_up(blocks * rs_->n(), rows) * 8;
      }
    }
    return msg;
  }

  /// payload bits -> CRC -> whiten -> FEC -> interleave. `out` is resized
  /// to coded_bits(payload_bits.size()); warm buffers never reallocate.
  void encode_into(std::span<const std::uint8_t> payload_bits, CodedFrameWorkspace& ws,
                   std::vector<std::uint8_t>& out) const {
    const std::size_t payload_n = payload_bits.size();
    const std::size_t msg_n = message_bits(payload_n);
    ws.message_bits.resize(msg_n);
    std::copy(payload_bits.begin(), payload_bits.end(), ws.message_bits.begin());
    if (cfg_.use_crc) {
      ws.bytes.resize(payload_n / 8);
      pack_bits({ws.message_bits.data(), payload_n}, ws.bytes);
      const std::uint16_t crc = crc16_ccitt(ws.bytes);
      for (std::size_t j = 0; j < 16; ++j)
        ws.message_bits[payload_n + j] = narrow_cast<std::uint8_t>((crc >> (15 - j)) & 1U);
    }
    whitener_.apply_in_place(ws.message_bits);

    const std::size_t rows = cfg_.interleaver_rows;
    switch (cfg_.code.kind) {
      case CodeDescriptor::Kind::kNone:
        out.resize(msg_n);
        std::copy(ws.message_bits.begin(), ws.message_bits.end(), out.begin());
        break;
      case CodeDescriptor::Kind::kConvolutional: {
        conv_->encode_into(ws.message_bits, ws.scratch_bits);
        const std::size_t padded = round_up(ws.scratch_bits.size(), rows);
        ws.scratch_bits.resize(padded, 0);
        const BlockInterleaver il(rows, padded / rows);
        il.interleave_into(std::span<const std::uint8_t>(ws.scratch_bits), out);
        break;
      }
      case CodeDescriptor::Kind::kReedSolomon: {
        const std::size_t msg_bytes = msg_n / 8;
        ws.bytes.resize(msg_bytes);
        pack_bits(ws.message_bits, ws.bytes);
        const std::size_t n = rs_->n();
        const std::size_t k = rs_->k();
        const std::size_t blocks = (msg_bytes + k - 1) / k;
        ws.coded_bytes.resize(blocks * n);
        for (std::size_t b = 0; b < blocks; ++b) {
          const std::size_t start = b * k;
          const std::size_t len = std::min(k, msg_bytes - start);
          ws.block_data.assign(k, 0);
          std::copy_n(ws.bytes.begin() + narrow_cast<std::ptrdiff_t>(start), len,
                      ws.block_data.begin());
          rs_->encode_block_into(ws.block_data, ws.rs, {ws.coded_bytes.data() + b * n, n});
        }
        const std::size_t padded = round_up(blocks * n, rows);
        ws.coded_bytes.resize(padded, 0);
        const BlockInterleaver il(rows, padded / rows);
        il.interleave_into(std::span<const std::uint8_t>(ws.coded_bytes), ws.il_bytes);
        out.resize(padded * 8);
        unpack_bits(ws.il_bytes, out);
        break;
      }
    }
  }

  /// Soft decode from per-bit LLRs (positive = bit 0, the demapper's
  /// convention): deinterleave -> soft Viterbi / RS with GMD erasure
  /// retries -> dewhiten -> CRC. `llrs` must be exactly
  /// coded_bits(payload_bits) long.
  [[nodiscard]] CodedFrameResult decode_soft_into(std::span<const float> llrs,
                                                  std::size_t payload_bits,
                                                  CodedFrameWorkspace& ws) const {
    return decode_frame(llrs, payload_bits, ws, /*gmd=*/true);
  }

  /// Hard decode of sliced coded bits through the same pipeline (bits map
  /// to +/-1 LLRs; RS runs plain errors-only decoding, no erasure retries).
  [[nodiscard]] CodedFrameResult decode_hard_into(std::span<const std::uint8_t> coded,
                                                  std::size_t payload_bits,
                                                  CodedFrameWorkspace& ws) const {
    ws.hard_llrs.resize(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i)
      ws.hard_llrs[i] = (coded[i] & 1U) ? -1.0F : 1.0F;
    return decode_frame(ws.hard_llrs, payload_bits, ws, /*gmd=*/false);
  }

 private:
  [[nodiscard]] static std::size_t round_up(std::size_t v, std::size_t m) {
    return ((v + m - 1) / m) * m;
  }

  /// Packs bits (MSB-first per byte) into bytes; sizes must already match.
  static void pack_bits(std::span<const std::uint8_t> bits, std::span<std::uint8_t> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::uint8_t v = 0;
      for (std::size_t j = 0; j < 8; ++j)
        v = narrow_cast<std::uint8_t>((v << 1) | (bits[i * 8 + j] & 1U));
      bytes[i] = v;
    }
  }

  static void unpack_bits(std::span<const std::uint8_t> bytes, std::span<std::uint8_t> bits) {
    for (std::size_t i = 0; i < bytes.size(); ++i)
      for (std::size_t j = 0; j < 8; ++j)
        bits[i * 8 + j] = narrow_cast<std::uint8_t>((bytes[i] >> (7 - j)) & 1U);
  }

  [[nodiscard]] CodedFrameResult decode_frame(std::span<const float> llrs,
                                              std::size_t payload_bits, CodedFrameWorkspace& ws,
                                              bool gmd) const {
    const std::size_t msg_n = message_bits(payload_bits);
    RT_ENSURE(llrs.size() == coded_bits(payload_bits), "LLR count does not match the frame");
    CodedFrameResult result;
    result.decode_ok = true;

    const std::size_t rows = cfg_.interleaver_rows;
    switch (cfg_.code.kind) {
      case CodeDescriptor::Kind::kNone:
        ws.message_bits.resize(msg_n);
        for (std::size_t i = 0; i < msg_n; ++i)
          ws.message_bits[i] = std::signbit(llrs[i]) ? 1U : 0U;
        break;
      case CodeDescriptor::Kind::kConvolutional: {
        const BlockInterleaver il(rows, llrs.size() / rows);
        il.deinterleave_into(llrs, ws.scratch_llrs);
        const std::size_t raw = conv_->coded_bits(msg_n);
        conv_->decode_soft_into({ws.scratch_llrs.data(), raw}, ws.conv, ws.message_bits);
        break;
      }
      case CodeDescriptor::Kind::kReedSolomon: {
        // Slice hard bytes and a per-byte reliability (the weakest of its
        // eight LLR magnitudes), then deinterleave both side by side so
        // erasure positions line up with codeword positions.
        const std::size_t padded = llrs.size() / 8;
        ws.coded_bytes.resize(padded);
        ws.byte_rel.resize(padded);
        for (std::size_t i = 0; i < padded; ++i) {
          std::uint8_t v = 0;
          float rel = std::fabs(llrs[i * 8]);
          for (std::size_t j = 0; j < 8; ++j) {
            const float l = llrs[i * 8 + j];
            v = narrow_cast<std::uint8_t>((v << 1) | (std::signbit(l) ? 1U : 0U));
            rel = std::min(rel, std::fabs(l));
          }
          ws.coded_bytes[i] = v;
          ws.byte_rel[i] = rel;
        }
        const BlockInterleaver il(rows, padded / rows);
        il.deinterleave_into(std::span<const std::uint8_t>(ws.coded_bytes), ws.il_bytes);
        il.deinterleave_into(std::span<const float>(ws.byte_rel), ws.rel_scratch);

        const std::size_t n = rs_->n();
        const std::size_t k = rs_->k();
        const std::size_t parity = n - k;
        const std::size_t msg_bytes = msg_n / 8;
        const std::size_t blocks = (msg_bytes + k - 1) / k;
        ws.bytes.resize(blocks * k);
        for (std::size_t b = 0; b < blocks; ++b) {
          const std::span<const std::uint8_t> cw(ws.il_bytes.data() + b * n, n);
          const std::span<std::uint8_t> data(ws.bytes.data() + b * k, k);
          if (rs_->decode_block_into(cw, {}, ws.rs, data)) continue;
          // GMD-style retries: erase the weakest 2, 4, ... bytes (each
          // trusted erasure costs half an error) until a decode verifies.
          // Escalation stops at parity - 2: with f = parity erasures the
          // unerased symbols pin a unique codeword, so any unerased error
          // would silently "decode" to valid-but-wrong data. Keeping one
          // error of margin lets the syndrome recheck reject those.
          bool ok = false;
          if (gmd) {
            const float* rel = ws.rel_scratch.data() + b * n;
            ws.order.resize(n);
            for (std::size_t i = 0; i < n; ++i) ws.order[i] = narrow_cast<std::uint32_t>(i);
            std::sort(ws.order.begin(), ws.order.end(),
                      [rel](std::uint32_t a, std::uint32_t c) {
                        return rel[a] < rel[c] || (rel[a] == rel[c] && a < c);
                      });
            for (std::size_t f = 2; f + 2 <= parity && !ok; f += 2) {
              ws.erasures.resize(f);
              for (std::size_t i = 0; i < f; ++i) ws.erasures[i] = ws.order[i];
              ok = rs_->decode_block_into(cw, ws.erasures, ws.rs, data);
              if (ok) result.erasures_used += f;
            }
          }
          result.decode_ok = result.decode_ok && ok;
        }
        ws.message_bits.resize(msg_n);
        unpack_bits({ws.bytes.data(), msg_bytes}, ws.message_bits);
        break;
      }
    }

    whitener_.apply_in_place(ws.message_bits);
    if (cfg_.use_crc) {
      // CRC-16/CCITT-FALSE has zero xorout, so message || crc leaves a
      // zero residue.
      ws.bytes.resize(msg_n / 8);
      pack_bits(ws.message_bits, ws.bytes);
      result.crc_ok = crc16_ccitt(ws.bytes) == 0;
    } else {
      result.crc_ok = result.decode_ok;
    }
    if (cfg_.code.kind == CodeDescriptor::Kind::kReedSolomon && result.erasures_used > 0 &&
        !result.crc_ok) {
      // A GMD "success" that does not yield a clean CRC was a
      // miscorrection: an erasure-filled wrong codeword can sit farther
      // from the transmitted frame than the channel left it. Deliver the
      // received symbols instead, which is what errors-only decoding
      // would have handed up.
      const std::size_t n = rs_->n();
      const std::size_t k = rs_->k();
      const std::size_t msg_bytes = msg_n / 8;
      const std::size_t blocks = (msg_bytes + k - 1) / k;
      ws.bytes.resize(blocks * k);
      for (std::size_t b = 0; b < blocks; ++b)
        std::copy(ws.il_bytes.begin() + static_cast<std::ptrdiff_t>(b * n),
                  ws.il_bytes.begin() + static_cast<std::ptrdiff_t>(b * n + k),
                  ws.bytes.begin() + static_cast<std::ptrdiff_t>(b * k));
      ws.message_bits.resize(msg_n);
      unpack_bits({ws.bytes.data(), msg_bytes}, ws.message_bits);
      whitener_.apply_in_place(ws.message_bits);
      result.erasures_used = 0;
      result.decode_ok = false;
    }
    result.payload = {ws.message_bits.data(), payload_bits};
    return result;
  }

  CodedFrameConfig cfg_;
  std::optional<ConvolutionalCode> conv_;
  std::optional<ReedSolomon> rs_;
  sig::Scrambler whitener_;
};

}  // namespace rt::coding
