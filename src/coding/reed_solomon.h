// Systematic Reed-Solomon codec RS(n, k) over GF(256).
//
// The paper's coding-gain study (Fig. 18b) runs a stop-and-wait link with
// Reed-Solomon error correction at several coding rates; the rate-adaptive
// MAC picks (bit rate, coding rate) pairs from the SNR. This is a complete
// encoder plus Berlekamp-Massey / Chien / Forney hard-decision decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/gf256.h"

namespace rt::coding {

class ReedSolomon {
 public:
  /// Reusable scratch for decode_block_into(): every polynomial buffer of
  /// the Berlekamp-Massey / Chien / Forney pipeline, pooled so the coded
  /// packet path decodes without per-call heap traffic.
  struct Scratch {
    std::vector<std::uint8_t> synd;
    std::vector<std::uint8_t> lambda;
    std::vector<std::uint8_t> b_poly;
    std::vector<std::uint8_t> t_poly;
    std::vector<std::uint8_t> omega;
    std::vector<std::uint8_t> deriv;
    std::vector<std::uint8_t> corrected;
    std::vector<std::size_t> error_pos;
    std::vector<std::uint8_t> rem;  ///< encode_block_into() remainder
  };

  /// n = total symbols per codeword (<= 255), k = data symbols; corrects up
  /// to (n - k) / 2 symbol errors.
  ReedSolomon(std::size_t n, std::size_t k);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t parity_symbols() const { return n_ - k_; }
  [[nodiscard]] std::size_t correctable_errors() const { return (n_ - k_) / 2; }
  [[nodiscard]] double code_rate() const {
    return static_cast<double>(k_) / static_cast<double>(n_);
  }

  /// Encodes exactly k data bytes into an n-byte systematic codeword
  /// (data first, parity appended).
  [[nodiscard]] std::vector<std::uint8_t> encode_block(std::span<const std::uint8_t> data) const;

  /// encode_block() into a caller-owned n-byte buffer (no allocations once
  /// `scratch` is warm); `out` must not alias `data`.
  void encode_block_into(std::span<const std::uint8_t> data, Scratch& scratch,
                         std::span<std::uint8_t> out) const;

  /// Decodes an n-byte (possibly corrupted) codeword. Returns the k data
  /// bytes, or nullopt if more than t errors were detected (decode failure).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode_block(
      std::span<const std::uint8_t> codeword) const;

  /// Errors-and-erasures decode of one n-byte codeword into a caller-owned
  /// buffer. `erasures` lists distinct 0-based codeword positions flagged
  /// unreliable by the demapper (LLR-driven erasure marking); the decoder
  /// corrects e errors plus f erasures whenever 2e + f <= n - k, so each
  /// trusted erasure doubles its correction value. Writes the k data bytes
  /// into `data_out` (which must have size k); returns false on decode
  /// failure, leaving `data_out` holding the received systematic prefix.
  [[nodiscard]] bool decode_block_into(std::span<const std::uint8_t> codeword,
                                       std::span<const std::size_t> erasures, Scratch& scratch,
                                       std::span<std::uint8_t> data_out) const;

  /// Encodes an arbitrary-length message by splitting into k-byte blocks
  /// (zero-padding the last block; original length must be conveyed by the
  /// caller, e.g. in a frame header).
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  /// Inverse of encode(); `message_len` trims the final padding. Returns
  /// nullopt if any block fails to decode.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      std::span<const std::uint8_t> coded, std::size_t message_len) const;

 private:
  std::size_t n_;
  std::size_t k_;
  std::vector<std::uint8_t> generator_;  // generator polynomial, degree n-k
};

}  // namespace rt::coding
