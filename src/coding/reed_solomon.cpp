#include "coding/reed_solomon.h"

#include <algorithm>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::coding {

namespace {

const Gf256& gf() { return Gf256::instance(); }

/// Evaluates polynomial (coefficients low-degree-first) at x.
std::uint8_t poly_eval(std::span<const std::uint8_t> poly, std::uint8_t x) {
  std::uint8_t y = 0;
  // Horner, high-degree first.
  for (std::size_t i = poly.size(); i-- > 0;) y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ poly[i]);
  return y;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  RT_ENSURE(n >= 3 && n <= 255, "RS n must be in [3, 255]");
  RT_ENSURE(k >= 1 && k < n, "RS k must be in [1, n)");
  // Generator g(x) = prod_{i=0}^{n-k-1} (x - alpha^i); low-degree-first.
  generator_ = {1};
  for (std::size_t i = 0; i < n_ - k_; ++i) {
    const std::uint8_t root = gf().pow_alpha(narrow_cast<int>(i));
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      next[j + 1] ^= generator_[j];                  // x * g
      next[j] ^= gf().mul(generator_[j], root);      // root * g
    }
    generator_ = std::move(next);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode_block(std::span<const std::uint8_t> data) const {
  RT_ENSURE(data.size() == k_, "encode_block expects exactly k data bytes");
  const std::size_t parity = n_ - k_;
  // Systematic encoding: remainder of data(x) * x^(n-k) mod g(x).
  std::vector<std::uint8_t> rem(parity, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint8_t feedback = narrow_cast<std::uint8_t>(data[i] ^ rem[parity - 1]);
    for (std::size_t j = parity; j-- > 1;)
      rem[j] = narrow_cast<std::uint8_t>(rem[j - 1] ^ gf().mul(feedback, generator_[j]));
    rem[0] = gf().mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> out(data.begin(), data.end());
  // Parity appended high-degree-first to keep the codeword poly consistent.
  for (std::size_t j = parity; j-- > 0;) out.push_back(rem[j]);
  return out;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode_block(
    std::span<const std::uint8_t> codeword) const {
  RT_ENSURE(codeword.size() == n_, "decode_block expects exactly n bytes");
  const std::size_t parity = n_ - k_;

  // Codeword polynomial: received[0] is the highest-degree coefficient.
  // Syndromes S_i = r(alpha^i), i = 0..parity-1.
  std::vector<std::uint8_t> synd(parity, 0);
  bool all_zero = true;
  for (std::size_t i = 0; i < parity; ++i) {
    const std::uint8_t x = gf().pow_alpha(narrow_cast<int>(i));
    std::uint8_t y = 0;
    for (std::size_t j = 0; j < n_; ++j) y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ codeword[j]);
    synd[i] = y;
    all_zero = all_zero && (y == 0);
  }
  if (all_zero) return std::vector<std::uint8_t>(codeword.begin(), codeword.begin() + k_);

  // Berlekamp-Massey: find error locator sigma(x), low-degree-first.
  std::vector<std::uint8_t> sigma = {1};
  std::vector<std::uint8_t> prev = {1};
  std::uint8_t b = 1;
  std::size_t l = 0;
  std::size_t m = 1;
  for (std::size_t step = 0; step < parity; ++step) {
    std::uint8_t delta = synd[step];
    for (std::size_t i = 1; i <= l && i < sigma.size(); ++i)
      delta = narrow_cast<std::uint8_t>(delta ^ gf().mul(sigma[i], synd[step - i]));
    if (delta == 0) {
      ++m;
    } else if (2 * l <= step) {
      const auto tmp = sigma;
      const std::uint8_t scale = gf().div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i)
        sigma[i + m] = narrow_cast<std::uint8_t>(sigma[i + m] ^ gf().mul(scale, prev[i]));
      l = step + 1 - l;
      prev = tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t scale = gf().div(delta, b);
      if (sigma.size() < prev.size() + m) sigma.resize(prev.size() + m, 0);
      for (std::size_t i = 0; i < prev.size(); ++i)
        sigma[i + m] = narrow_cast<std::uint8_t>(sigma[i + m] ^ gf().mul(scale, prev[i]));
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors > correctable_errors()) return std::nullopt;

  // Chien search: roots of sigma give error positions. With codeword[j] the
  // coefficient of x^(n-1-j), position j errs iff sigma(alpha^-(n-1-j)) = 0.
  std::vector<std::size_t> error_pos;
  for (std::size_t j = 0; j < n_; ++j) {
    const int power = -narrow_cast<int>(n_ - 1 - j);
    if (poly_eval(sigma, gf().pow_alpha(power)) == 0) error_pos.push_back(j);
  }
  if (error_pos.size() != num_errors) return std::nullopt;

  // Forney: error evaluator omega(x) = [S(x) sigma(x)] mod x^parity.
  std::vector<std::uint8_t> omega(parity, 0);
  for (std::size_t i = 0; i < parity; ++i) {
    for (std::size_t j = 0; j < sigma.size() && j <= i; ++j)
      omega[i] = narrow_cast<std::uint8_t>(omega[i] ^ gf().mul(synd[i - j], sigma[j]));
  }
  // Formal derivative of sigma.
  std::vector<std::uint8_t> sigma_deriv;
  for (std::size_t i = 1; i < sigma.size(); i += 2) {
    sigma_deriv.resize(i, 0);
    sigma_deriv[i - 1] = sigma[i];
  }
  // Correct: e_j = omega(Xj^-1) / sigma'(Xj^-1) * Xj^(1-b0), with b0 = 0
  // (first consecutive root alpha^0) => e_j = Xj * omega(Xj^-1)/sigma'(Xj^-1).
  std::vector<std::uint8_t> corrected(codeword.begin(), codeword.end());
  for (const auto j : error_pos) {
    const int loc_power = narrow_cast<int>(n_ - 1 - j);
    const std::uint8_t x_inv = gf().pow_alpha(-loc_power);
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t den = poly_eval(sigma_deriv, x_inv);
    if (den == 0) return std::nullopt;
    const std::uint8_t magnitude = gf().mul(gf().pow_alpha(loc_power), gf().div(num, den));
    corrected[j] = narrow_cast<std::uint8_t>(corrected[j] ^ magnitude);
  }

  // Verify by re-computing syndromes.
  for (std::size_t i = 0; i < parity; ++i) {
    const std::uint8_t x = gf().pow_alpha(narrow_cast<int>(i));
    std::uint8_t y = 0;
    for (std::size_t j = 0; j < n_; ++j)
      y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ corrected[j]);
    if (y != 0) return std::nullopt;
  }
  return std::vector<std::uint8_t>(corrected.begin(), corrected.begin() + k_);
}

std::vector<std::uint8_t> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out;
  const std::size_t blocks = (data.size() + k_ - 1) / k_;
  out.reserve(blocks * n_);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    std::vector<std::uint8_t> block(k_, 0);
    const std::size_t start = bi * k_;
    const std::size_t len = std::min(k_, data.size() - start);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(start), len, block.begin());
    const auto cw = encode_block(block);
    out.insert(out.end(), cw.begin(), cw.end());
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(std::span<const std::uint8_t> coded,
                                                             std::size_t message_len) const {
  RT_ENSURE(coded.size() % n_ == 0, "coded length must be a multiple of n");
  std::vector<std::uint8_t> out;
  out.reserve(message_len);
  for (std::size_t start = 0; start < coded.size(); start += n_) {
    const auto block = decode_block(coded.subspan(start, n_));
    if (!block) return std::nullopt;
    out.insert(out.end(), block->begin(), block->end());
  }
  RT_ENSURE(out.size() >= message_len, "decoded data shorter than message_len");
  out.resize(message_len);
  return out;
}

}  // namespace rt::coding
