#include "coding/reed_solomon.h"

#include <algorithm>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::coding {

namespace {

const Gf256& gf() { return Gf256::instance(); }

/// Evaluates polynomial (coefficients low-degree-first) at x.
std::uint8_t poly_eval(std::span<const std::uint8_t> poly, std::uint8_t x) {
  std::uint8_t y = 0;
  // Horner, high-degree first.
  for (std::size_t i = poly.size(); i-- > 0;) y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ poly[i]);
  return y;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k) : n_(n), k_(k) {
  RT_ENSURE(n >= 3 && n <= 255, "RS n must be in [3, 255]");
  RT_ENSURE(k >= 1 && k < n, "RS k must be in [1, n)");
  // Generator g(x) = prod_{i=0}^{n-k-1} (x - alpha^i); low-degree-first.
  generator_ = {1};
  for (std::size_t i = 0; i < n_ - k_; ++i) {
    const std::uint8_t root = gf().pow_alpha(narrow_cast<int>(i));
    std::vector<std::uint8_t> next(generator_.size() + 1, 0);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      next[j + 1] ^= generator_[j];                  // x * g
      next[j] ^= gf().mul(generator_[j], root);      // root * g
    }
    generator_ = std::move(next);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode_block(std::span<const std::uint8_t> data) const {
  RT_ENSURE(data.size() == k_, "encode_block expects exactly k data bytes");
  const std::size_t parity = n_ - k_;
  // Systematic encoding: remainder of data(x) * x^(n-k) mod g(x).
  std::vector<std::uint8_t> rem(parity, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint8_t feedback = narrow_cast<std::uint8_t>(data[i] ^ rem[parity - 1]);
    for (std::size_t j = parity; j-- > 1;)
      rem[j] = narrow_cast<std::uint8_t>(rem[j - 1] ^ gf().mul(feedback, generator_[j]));
    rem[0] = gf().mul(feedback, generator_[0]);
  }
  std::vector<std::uint8_t> out(data.begin(), data.end());
  // Parity appended high-degree-first to keep the codeword poly consistent.
  for (std::size_t j = parity; j-- > 0;) out.push_back(rem[j]);
  return out;
}

void ReedSolomon::encode_block_into(std::span<const std::uint8_t> data, Scratch& scratch,
                                    std::span<std::uint8_t> out) const {
  RT_ENSURE(data.size() == k_, "encode_block_into expects exactly k data bytes");
  RT_ENSURE(out.size() == n_, "out must have exactly n bytes");
  const std::size_t parity = n_ - k_;
  // Systematic encoding: remainder of data(x) * x^(n-k) mod g(x).
  scratch.rem.assign(parity, 0);
  auto& rem = scratch.rem;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint8_t feedback = narrow_cast<std::uint8_t>(data[i] ^ rem[parity - 1]);
    for (std::size_t j = parity; j-- > 1;)
      rem[j] = narrow_cast<std::uint8_t>(rem[j - 1] ^ gf().mul(feedback, generator_[j]));
    rem[0] = gf().mul(feedback, generator_[0]);
  }
  std::copy(data.begin(), data.end(), out.begin());
  // Parity appended high-degree-first to keep the codeword poly consistent.
  for (std::size_t j = parity; j-- > 0;) out[k_ + (parity - 1 - j)] = rem[j];
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode_block(
    std::span<const std::uint8_t> codeword) const {
  Scratch scratch;
  std::vector<std::uint8_t> data(k_, 0);
  if (!decode_block_into(codeword, {}, scratch, data)) return std::nullopt;
  return data;
}

bool ReedSolomon::decode_block_into(std::span<const std::uint8_t> codeword,
                                    std::span<const std::size_t> erasures, Scratch& ws,
                                    std::span<std::uint8_t> data_out) const {
  RT_ENSURE(codeword.size() == n_, "decode_block_into expects exactly n bytes");
  RT_ENSURE(data_out.size() == k_, "data_out must have exactly k bytes");
  const std::size_t parity = n_ - k_;
  const std::size_t f = erasures.size();
  // The received systematic prefix is the fallback output on failure.
  std::copy_n(codeword.begin(), static_cast<std::ptrdiff_t>(k_), data_out.begin());
  if (f > parity) return false;

  // Syndromes S_i = r(alpha^i); codeword[0] is the highest-degree coeff.
  ws.synd.resize(parity);
  bool all_zero = true;
  for (std::size_t i = 0; i < parity; ++i) {
    const std::uint8_t x = gf().pow_alpha(narrow_cast<int>(i));
    std::uint8_t y = 0;
    for (std::size_t j = 0; j < n_; ++j)
      y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ codeword[j]);
    ws.synd[i] = y;
    all_zero = all_zero && (y == 0);
  }
  if (all_zero) return true;

  // Combined locator seeded with the erasure locator
  // Gamma(x) = prod_j (1 + X_j x), X_j = alpha^(n-1-j) for position j.
  ws.lambda.assign(parity + 1, 0);
  ws.lambda[0] = 1;
  for (std::size_t e = 0; e < f; ++e) {
    RT_ENSURE(erasures[e] < n_, "erasure position out of range");
    const std::uint8_t x = gf().pow_alpha(narrow_cast<int>(n_ - 1 - erasures[e]));
    for (std::size_t i = e + 1; i-- > 0;)
      ws.lambda[i + 1] = narrow_cast<std::uint8_t>(ws.lambda[i + 1] ^ gf().mul(ws.lambda[i], x));
  }
  ws.b_poly.assign(ws.lambda.begin(), ws.lambda.end());
  ws.t_poly.resize(parity + 1);

  // Berlekamp-Massey over the remaining syndromes, erasure-initialized
  // (Karn-style indices: r counts processed syndromes 1-based, el tracks
  // the register length, starting from the erasure count).
  std::size_t el = f;
  const auto shift_b = [&] {
    for (std::size_t i = parity; i-- > 0;) ws.b_poly[i + 1] = ws.b_poly[i];
    ws.b_poly[0] = 0;
  };
  for (std::size_t r = f + 1; r <= parity; ++r) {
    std::uint8_t discr = 0;
    for (std::size_t i = 0; i < r; ++i)
      discr = narrow_cast<std::uint8_t>(discr ^ gf().mul(ws.lambda[i], ws.synd[r - 1 - i]));
    if (discr == 0) {
      shift_b();
      continue;
    }
    ws.t_poly[0] = ws.lambda[0];
    for (std::size_t i = 0; i < parity; ++i)
      ws.t_poly[i + 1] =
          narrow_cast<std::uint8_t>(ws.lambda[i + 1] ^ gf().mul(discr, ws.b_poly[i]));
    if (2 * el <= r + f - 1) {
      el = r + f - el;
      for (std::size_t i = 0; i <= parity; ++i) ws.b_poly[i] = gf().div(ws.lambda[i], discr);
    } else {
      shift_b();
    }
    std::copy(ws.t_poly.begin(), ws.t_poly.end(), ws.lambda.begin());
  }

  std::size_t deg = parity;
  while (deg > 0 && ws.lambda[deg] == 0) --deg;
  // e = deg - f extra errors must satisfy 2e + f <= parity.
  if (deg < f || 2 * deg > parity + f) return false;

  // Chien search over every position; the root count must match the
  // locator degree or the locator is bogus (too many errors).
  ws.error_pos.clear();
  ws.error_pos.reserve(parity);
  const std::span<const std::uint8_t> lambda_poly(ws.lambda.data(), deg + 1);
  for (std::size_t j = 0; j < n_; ++j) {
    const int power = -narrow_cast<int>(n_ - 1 - j);
    if (poly_eval(lambda_poly, gf().pow_alpha(power)) == 0) ws.error_pos.push_back(j);
  }
  if (ws.error_pos.size() != deg) return false;

  // Forney: omega(x) = [S(x) lambda(x)] mod x^parity, then
  // e_j = Xj * omega(Xj^-1) / lambda'(Xj^-1) (first root alpha^0).
  ws.omega.assign(parity, 0);
  for (std::size_t i = 0; i < parity; ++i) {
    for (std::size_t j = 0; j <= deg && j <= i; ++j)
      ws.omega[i] = narrow_cast<std::uint8_t>(ws.omega[i] ^ gf().mul(ws.synd[i - j], ws.lambda[j]));
  }
  ws.deriv.assign(deg == 0 ? 1 : deg, 0);
  for (std::size_t i = 1; i <= deg; i += 2) ws.deriv[i - 1] = ws.lambda[i];

  ws.corrected.assign(codeword.begin(), codeword.end());
  for (const auto j : ws.error_pos) {
    const int loc_power = narrow_cast<int>(n_ - 1 - j);
    const std::uint8_t x_inv = gf().pow_alpha(-loc_power);
    const std::uint8_t num = poly_eval(ws.omega, x_inv);
    const std::uint8_t den = poly_eval(ws.deriv, x_inv);
    if (den == 0) return false;
    const std::uint8_t magnitude = gf().mul(gf().pow_alpha(loc_power), gf().div(num, den));
    ws.corrected[j] = narrow_cast<std::uint8_t>(ws.corrected[j] ^ magnitude);
  }

  // Verify by re-computing syndromes.
  for (std::size_t i = 0; i < parity; ++i) {
    const std::uint8_t x = gf().pow_alpha(narrow_cast<int>(i));
    std::uint8_t y = 0;
    for (std::size_t j = 0; j < n_; ++j)
      y = narrow_cast<std::uint8_t>(gf().mul(y, x) ^ ws.corrected[j]);
    if (y != 0) return false;
  }
  std::copy_n(ws.corrected.begin(), static_cast<std::ptrdiff_t>(k_), data_out.begin());
  return true;
}

std::vector<std::uint8_t> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out;
  const std::size_t blocks = (data.size() + k_ - 1) / k_;
  out.reserve(blocks * n_);
  for (std::size_t bi = 0; bi < blocks; ++bi) {
    std::vector<std::uint8_t> block(k_, 0);
    const std::size_t start = bi * k_;
    const std::size_t len = std::min(k_, data.size() - start);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(start), len, block.begin());
    const auto cw = encode_block(block);
    out.insert(out.end(), cw.begin(), cw.end());
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(std::span<const std::uint8_t> coded,
                                                             std::size_t message_len) const {
  RT_ENSURE(coded.size() % n_ == 0, "coded length must be a multiple of n");
  std::vector<std::uint8_t> out;
  out.reserve(message_len);
  for (std::size_t start = 0; start < coded.size(); start += n_) {
    const auto block = decode_block(coded.subspan(start, n_));
    if (!block) return std::nullopt;
    out.insert(out.end(), block->begin(), block->end());
  }
  RT_ENSURE(out.size() >= message_len, "decoded data shorter than message_len");
  out.resize(message_len);
  return out;
}

}  // namespace rt::coding
