// Which FEC (if any) a coded frame or rate option runs.
//
// The rate-adaptation table used to hardwire Reed-Solomon (rs_n/rs_k
// fields), silently reporting code rate 1.0 for anything else; this
// descriptor generalizes the (modulation rate, code) pairing so goodput
// math and threshold selection stay correct for convolutional options too.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>

#include "common/error.h"

namespace rt::coding {

struct CodeDescriptor {
  enum class Kind { kNone, kReedSolomon, kConvolutional };

  Kind kind = Kind::kNone;
  std::size_t n = 0;  ///< RS: codeword symbols; unused otherwise
  std::size_t k = 0;  ///< RS: data symbols; conv: constraint length

  [[nodiscard]] static CodeDescriptor none() { return {}; }

  [[nodiscard]] static CodeDescriptor reed_solomon(std::size_t n, std::size_t k) {
    RT_ENSURE(n >= 3 && n <= 255 && k >= 1 && k < n, "invalid RS(n, k)");
    return {Kind::kReedSolomon, n, k};
  }

  /// Rate-1/2 convolutional code of the given constraint length (the
  /// K=7 (133, 171) pair by default; see coding::ConvolutionalCode).
  [[nodiscard]] static CodeDescriptor convolutional(std::size_t constraint_length = 7) {
    RT_ENSURE(constraint_length >= 3 && constraint_length <= 10, "invalid constraint length");
    return {Kind::kConvolutional, 0, constraint_length};
  }

  /// Fraction of transmitted bits that carry data. The convolutional
  /// rate ignores the (K-1)-bit trellis flush, which is negligible for
  /// frame-sized messages and keeps the rate frame-length independent.
  [[nodiscard]] double rate() const {
    switch (kind) {
      case Kind::kNone: return 1.0;
      case Kind::kReedSolomon: return static_cast<double>(k) / static_cast<double>(n);
      case Kind::kConvolutional: return 0.5;
    }
    return 1.0;
  }

  /// Human-readable tag: "", "RS(255,223)" or "CC(7,1/2)".
  [[nodiscard]] std::string label() const {
    char buf[32];
    switch (kind) {
      case Kind::kNone: return "";
      case Kind::kReedSolomon:
        std::snprintf(buf, sizeof(buf), "RS(%zu,%zu)", n, k);
        return buf;
      case Kind::kConvolutional:
        std::snprintf(buf, sizeof(buf), "CC(%zu,1/2)", k);
        return buf;
    }
    return "";
  }

  friend bool operator==(const CodeDescriptor&, const CodeDescriptor&) = default;
};

}  // namespace rt::coding
