// GF(2^8) arithmetic with the AES/CCSDS-standard primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), table-driven.
//
// Substrate for the Reed-Solomon codec used in the coding-gain emulation
// (paper Fig. 18b) and the rate-adaptive MAC.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::coding {

class Gf256 {
 public:
  /// Singleton tables (construction fills exp/log tables once).
  [[nodiscard]] static const Gf256& instance() {
    static const Gf256 gf;
    return gf;
  }

  [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return narrow_cast<std::uint8_t>(a ^ b);
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[(log_[a] + log_[b]) % 255];
  }

  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const {
    RT_ENSURE(b != 0, "GF(256) division by zero");
    if (a == 0) return 0;
    return exp_[(log_[a] + 255 - log_[b]) % 255];
  }

  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const {
    RT_ENSURE(a != 0, "GF(256) inverse of zero");
    return exp_[(255 - log_[a]) % 255];
  }

  /// alpha^power, where alpha = 0x02 is the primitive element.
  [[nodiscard]] std::uint8_t pow_alpha(int power) const {
    int p = power % 255;
    if (p < 0) p += 255;
    return exp_[p];
  }

  [[nodiscard]] int log(std::uint8_t a) const {
    RT_ENSURE(a != 0, "GF(256) log of zero");
    return log_[a];
  }

 private:
  Gf256() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[i] = narrow_cast<std::uint8_t>(x);
      log_[exp_[i]] = i;
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
  }

  std::array<std::uint8_t, 255> exp_{};
  std::array<int, 256> log_{};
};

}  // namespace rt::coding
