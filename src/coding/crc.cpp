// rt-lint: no-preconditions (crc16 is total over any byte span, including empty)
#include "coding/crc.h"

#include <array>

#include "common/narrow.h"

namespace rt::coding {

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (const auto b : data) {
    crc ^= narrow_cast<std::uint16_t>(b << 8);
    for (int k = 0; k < 8; ++k)
      crc = (crc & 0x8000U) ? narrow_cast<std::uint16_t>(((crc << 1) ^ 0x1021U) & 0xFFFFU)
                            : narrow_cast<std::uint16_t>((crc << 1) & 0xFFFFU);
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_crc32_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const auto b : data) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

}  // namespace rt::coding
