// CRC-16/CCITT-FALSE and CRC-32 (IEEE 802.3).
//
// The MAC layer CRC-checks every payload and triggers retransmission on
// failure (paper section 4.4).
#pragma once

#include <cstdint>
#include <span>

namespace rt::coding {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE): poly 0xEDB88320 reflected, init/xorout 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace rt::coding
