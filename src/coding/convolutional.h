// Rate-1/2 convolutional code with hard-decision Viterbi decoding.
//
// An alternative inner FEC for the rate-adaptation table: where
// Reed-Solomon handles symbol bursts, a convolutional code trades better
// random-error performance at low SNR. Generator polynomials are given in
// octal (default: the ubiquitous K=7 (133, 171) pair).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::coding {

class ConvolutionalCode {
 public:
  explicit ConvolutionalCode(int constraint_length = 7, std::uint32_t g1_octal = 0133,
                             std::uint32_t g2_octal = 0171)
      : k_(constraint_length), g1_(g1_octal), g2_(g2_octal) {
    RT_ENSURE(k_ >= 3 && k_ <= 10, "constraint length must be in [3, 10]");
    const std::uint32_t mask = (1U << k_) - 1U;
    RT_ENSURE((g1_ & ~mask) == 0 && (g2_ & ~mask) == 0, "generator exceeds constraint length");
    RT_ENSURE(g1_ & 1U && g2_ & 1U, "generators must tap the newest bit");
  }

  [[nodiscard]] int constraint_length() const { return k_; }
  [[nodiscard]] double code_rate() const { return 0.5; }

  /// Encodes `bits` and appends (K-1) flush zeros; output length is
  /// 2 * (bits.size() + K - 1).
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> bits) const {
    std::vector<std::uint8_t> out;
    out.reserve(2 * (bits.size() + static_cast<std::size_t>(k_) - 1));
    std::uint32_t state = 0;
    const auto push = [&](std::uint8_t bit) {
      state = ((state << 1) | bit) & ((1U << k_) - 1U);
      out.push_back(parity(state & g1_));
      out.push_back(parity(state & g2_));
    };
    for (const auto b : bits) push(b & 1U);
    for (int i = 0; i < k_ - 1; ++i) push(0);
    return out;
  }

  /// Hard-decision Viterbi decode; expects encode() framing (flushed
  /// trellis). Returns the message bits.
  [[nodiscard]] std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded) const {
    RT_ENSURE(coded.size() % 2 == 0, "coded stream must be pairs of bits");
    const std::size_t steps = coded.size() / 2;
    RT_ENSURE(steps >= static_cast<std::size_t>(k_ - 1), "stream shorter than the flush");
    const std::uint32_t n_states = 1U << (k_ - 1);
    constexpr int kInf = 1 << 28;
    std::vector<int> metric(n_states, kInf);
    metric[0] = 0;
    // survivors[t][state] = predecessor state and input bit packed.
    std::vector<std::vector<std::uint32_t>> survivors(
        steps, std::vector<std::uint32_t>(n_states, 0));

    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<int> next(n_states, kInf);
      const std::uint8_t r1 = coded[2 * t] & 1U;
      const std::uint8_t r2 = coded[2 * t + 1] & 1U;
      for (std::uint32_t s = 0; s < n_states; ++s) {
        if (metric[s] >= kInf) continue;
        for (std::uint32_t bit = 0; bit <= 1; ++bit) {
          const std::uint32_t full = ((s << 1) | bit) & ((1U << k_) - 1U);
          const std::uint32_t ns = full & (n_states - 1U);
          const std::uint8_t c1 = parity(full & g1_);
          const std::uint8_t c2 = parity(full & g2_);
          const int cost = metric[s] + (c1 != r1) + (c2 != r2);
          if (cost < next[ns]) {
            next[ns] = cost;
            survivors[t][ns] = (s << 1) | bit;
          }
        }
      }
      metric = std::move(next);
    }

    // Traceback from the flushed all-zero state.
    std::vector<std::uint8_t> bits(steps);
    std::uint32_t state = 0;
    for (std::size_t t = steps; t-- > 0;) {
      const std::uint32_t packed = survivors[t][state];
      bits[t] = narrow_cast<std::uint8_t>(packed & 1U);
      state = packed >> 1;
    }
    bits.resize(steps - static_cast<std::size_t>(k_ - 1));  // drop the flush
    return bits;
  }

 private:
  [[nodiscard]] static std::uint8_t parity(std::uint32_t v) {
    return narrow_cast<std::uint8_t>(__builtin_popcount(v) & 1);
  }

  int k_;
  std::uint32_t g1_;
  std::uint32_t g2_;
};

}  // namespace rt::coding
