// Rate-1/2 convolutional code with soft-decision Viterbi decoding.
//
// An alternative inner FEC for the rate-adaptation table: where
// Reed-Solomon handles symbol bursts, a convolutional code trades better
// random-error performance at low SNR. Generator polynomials are given in
// octal (default: the ubiquitous K=7 (133, 171) pair).
//
// The decoder runs one soft-decision core over per-bit LLRs (sign
// convention: positive = bit 0, as exported by phy::Constellation::
// unmap_soft_into); hard-decision decoding maps bits to +/-1 LLRs and is
// bit-identical to a classic Hamming-metric Viterbi, tie-breaking
// included. The `_into` variants run over a caller-owned flat workspace
// (no per-call heap traffic in steady state -- rt_check C2 scans them);
// the allocating encode()/decode() wrappers remain for cold callers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::coding {

/// Flat preallocated trellis for ConvolutionalCode::decode*_into(): two
/// metric generations plus a steps x n_states survivor array, all reused
/// across calls once grown to the deepest frame.
struct ConvWorkspace {
  std::vector<float> metric;              ///< path metric per state
  std::vector<float> next_metric;         ///< next generation being built
  std::vector<std::uint32_t> survivors;   ///< steps x n_states, (prev << 1) | bit
  std::vector<float> hard_llrs;           ///< +/-1 scratch for hard decoding
};

class ConvolutionalCode {
 public:
  explicit ConvolutionalCode(int constraint_length = 7, std::uint32_t g1_octal = 0133,
                             std::uint32_t g2_octal = 0171)
      : k_(constraint_length), g1_(g1_octal), g2_(g2_octal) {
    RT_ENSURE(k_ >= 3 && k_ <= 10, "constraint length must be in [3, 10]");
    const std::uint32_t mask = (1U << k_) - 1U;
    RT_ENSURE((g1_ & ~mask) == 0 && (g2_ & ~mask) == 0, "generator exceeds constraint length");
    RT_ENSURE(g1_ & 1U && g2_ & 1U, "generators must tap the newest bit");
  }

  [[nodiscard]] int constraint_length() const { return k_; }
  [[nodiscard]] double code_rate() const { return 0.5; }

  /// Coded length for a message: 2 * (bits + K - 1) including the flush.
  [[nodiscard]] std::size_t coded_bits(std::size_t message_bits) const {
    return 2 * (message_bits + static_cast<std::size_t>(k_) - 1);
  }
  /// Inverse of coded_bits().
  [[nodiscard]] std::size_t message_bits(std::size_t coded) const {
    RT_ENSURE(coded % 2 == 0 && coded / 2 >= static_cast<std::size_t>(k_ - 1),
              "coded stream shorter than the flush");
    return coded / 2 - static_cast<std::size_t>(k_ - 1);
  }

  /// Encodes `bits` plus (K-1) flush zeros into `out` (resized to
  /// coded_bits(); index writes only, so a warm buffer never reallocates).
  void encode_into(std::span<const std::uint8_t> bits, std::vector<std::uint8_t>& out) const {
    out.resize(coded_bits(bits.size()));
    std::uint32_t state = 0;
    std::size_t w = 0;
    const auto emit = [&](std::uint8_t bit) {
      state = ((state << 1) | bit) & ((1U << k_) - 1U);
      out[w++] = parity(state & g1_);
      out[w++] = parity(state & g2_);
    };
    for (const auto b : bits) emit(b & 1U);
    for (int i = 0; i < k_ - 1; ++i) emit(0);
  }

  /// Encodes `bits` and appends (K-1) flush zeros; output length is
  /// 2 * (bits.size() + K - 1).
  [[nodiscard]] std::vector<std::uint8_t> encode(std::span<const std::uint8_t> bits) const {
    std::vector<std::uint8_t> out;
    encode_into(bits, out);
    return out;
  }

  /// Soft-decision Viterbi over per-bit LLRs (positive = bit 0); expects
  /// encode() framing (flushed trellis). Correlation branch metric: a path
  /// asserting coded bit c at LLR l pays (c ? l : -l), so disagreeing with
  /// a confident bit is expensive and an erased bit (l = 0) is free.
  /// Writes message_bits() decoded bits into `out`.
  void decode_soft_into(std::span<const float> llrs, ConvWorkspace& ws,
                        std::vector<std::uint8_t>& out) const {
    const std::size_t steps = llrs.size() / 2;
    RT_ENSURE(llrs.size() % 2 == 0, "coded stream must be pairs of LLRs");
    RT_ENSURE(steps >= static_cast<std::size_t>(k_ - 1), "stream shorter than the flush");
    const std::uint32_t n_states = 1U << (k_ - 1);
    constexpr float kInf = 1e30F;
    ws.metric.assign(n_states, kInf);
    ws.metric[0] = 0.0F;
    ws.next_metric.resize(n_states);
    ws.survivors.resize(steps * n_states);

    for (std::size_t t = 0; t < steps; ++t) {
      for (std::uint32_t s = 0; s < n_states; ++s) ws.next_metric[s] = kInf;
      const float l1 = llrs[2 * t];
      const float l2 = llrs[2 * t + 1];
      std::uint32_t* surv = ws.survivors.data() + t * n_states;
      for (std::uint32_t s = 0; s < n_states; ++s) {
        if (ws.metric[s] >= kInf) continue;
        for (std::uint32_t bit = 0; bit <= 1; ++bit) {
          const std::uint32_t full = ((s << 1) | bit) & ((1U << k_) - 1U);
          const std::uint32_t ns = full & (n_states - 1U);
          const float c1 = parity(full & g1_) ? l1 : -l1;
          const float c2 = parity(full & g2_) ? l2 : -l2;
          const float cost = ws.metric[s] + c1 + c2;
          if (cost < ws.next_metric[ns]) {
            ws.next_metric[ns] = cost;
            surv[ns] = (s << 1) | bit;
          }
        }
      }
      std::swap(ws.metric, ws.next_metric);
    }

    // Traceback from the flushed all-zero state; drop the flush bits.
    out.resize(steps - static_cast<std::size_t>(k_ - 1));
    std::uint32_t state = 0;
    for (std::size_t t = steps; t-- > 0;) {
      const std::uint32_t packed = ws.survivors[t * n_states + state];
      if (t < out.size()) out[t] = narrow_cast<std::uint8_t>(packed & 1U);
      state = packed >> 1;
    }
  }

  /// Hard-decision decode through the soft core (bits map to +/-1 LLRs;
  /// the path ordering equals the classic Hamming metric's, ties
  /// included). Writes message_bits() decoded bits into `out`.
  void decode_into(std::span<const std::uint8_t> coded, ConvWorkspace& ws,
                   std::vector<std::uint8_t>& out) const {
    ws.hard_llrs.resize(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i)
      ws.hard_llrs[i] = (coded[i] & 1U) ? -1.0F : 1.0F;
    decode_soft_into(ws.hard_llrs, ws, out);
  }

  /// Hard-decision Viterbi decode; expects encode() framing (flushed
  /// trellis). Returns the message bits.
  [[nodiscard]] std::vector<std::uint8_t> decode(std::span<const std::uint8_t> coded) const {
    ConvWorkspace ws;
    std::vector<std::uint8_t> out;
    decode_into(coded, ws, out);
    return out;
  }

  /// Soft-decision decode of per-bit LLRs (positive = bit 0).
  [[nodiscard]] std::vector<std::uint8_t> decode_soft(std::span<const float> llrs) const {
    ConvWorkspace ws;
    std::vector<std::uint8_t> out;
    decode_soft_into(llrs, ws, out);
    return out;
  }

 private:
  [[nodiscard]] static std::uint8_t parity(std::uint32_t v) {
    return narrow_cast<std::uint8_t>(__builtin_popcount(v) & 1);
  }

  int k_;
  std::uint32_t g1_;
  std::uint32_t g2_;
};

}  // namespace rt::coding
