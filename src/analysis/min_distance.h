// Minimum-distance analysis and demodulation thresholds (section 5.1/5.3).
//
// The performance index of a modulation scheme is the minimum Euclidean
// distance D between the emulated waveforms of any two distinct data
// words: larger D tolerates more noise, i.e. a lower demodulation
// threshold. Thresholds are reported relative to a reference scheme, as in
// the paper's Fig. 13 / Tab. 3 (the 1 Kbps optimum anchors 0 dB).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/emulator.h"
#include "analysis/scheme.h"
#include "common/rng.h"
#include "common/units.h"

namespace rt::analysis {

struct MinDistanceOptions {
  /// Exhaustive pair enumeration up to this many data bits (2^k words);
  /// beyond it the neighbour search below is used.
  int exhaustive_bit_limit = 10;
  /// Neighbour search: compare words differing in 1..this many symbol
  /// positions (the minimum distance of an ISI constellation is realized
  /// by low-Hamming-weight differences).
  int neighbour_span = 2;
  /// Random restarts for the neighbour search.
  int random_words = 8;
  std::uint64_t seed = 1;
};

struct MinDistanceResult {
  double d = 0.0;               ///< minimum squared-distance per bit (energy units)
  std::string scheme_name;
  double data_rate_bps = 0.0;
};

/// Squared Euclidean distance between the emulated waveforms of two words,
/// normalized per data bit and per unit slot energy.
[[nodiscard]] double waveform_distance_sq(const LcmTable& table, const Scheme& scheme,
                                          std::span<const std::uint8_t> word_a,
                                          std::span<const std::uint8_t> word_b,
                                          double sample_rate_hz);

/// Minimum distance D of a scheme under the given LCM table.
[[nodiscard]] MinDistanceResult min_distance(const LcmTable& table, const Scheme& scheme,
                                             double sample_rate_hz,
                                             const MinDistanceOptions& options = {});

/// Demodulation threshold (dB) of a scheme relative to a reference D
/// (threshold = 10 log10 (d_ref / d); the reference scheme is 0 dB).
[[nodiscard]] inline double relative_threshold_db(double d, double d_ref) {
  RT_ENSURE(d > 0.0 && d_ref > 0.0, "distances must be positive");
  return rt::to_db(d_ref / d);
}

}  // namespace rt::analysis
