#include "analysis/emulation_error.h"

#include <algorithm>
#include <cmath>

namespace rt::analysis {

EmulationErrorResult emulation_error(const LcmTable& table, const LcmTable& reference,
                                     double sample_rate_hz,
                                     const EmulationErrorOptions& options) {
  RT_ENSURE(table.slot_samples() == reference.slot_samples(),
            "tables must share the characterization grid");
  EmulationErrorResult out;
  out.v = table.order();
  Rng rng(options.seed);
  double sum = 0.0;
  for (int s = 0; s < options.sequences; ++s) {
    const auto bits = rng.bits(options.sequence_slots);
    CodeMatrix cm;
    cm.drive = linalg::RealMatrix(1, bits.size());
    cm.gains = {Complex(1.0, 0.0)};
    for (std::size_t j = 0; j < bits.size(); ++j) cm.drive(0, j) = bits[j] ? 1.0 : 0.0;
    const auto wa = emulate(table, cm, sample_rate_hz);
    const auto wb = emulate(reference, cm, sample_rate_hz);
    double err = 0.0;
    double ref = 0.0;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      err += std::norm(wa[i] - wb[i]);
      ref += std::norm(wb[i]);
    }
    const double rel = ref > 0.0 ? std::sqrt(err / ref) : 0.0;
    out.max_rel_error = std::max(out.max_rel_error, rel);
    sum += rel;
  }
  out.avg_rel_error = sum / static_cast<double>(options.sequences);
  return out;
}

}  // namespace rt::analysis
