#include "analysis/optimizer.h"

#include <cmath>

#include "common/narrow.h"

namespace rt::analysis {

OptimizerResult optimize_parameters(const LcmTable& table, double target_rate_bps,
                                    const OptimizerOptions& options) {
  RT_ENSURE(target_rate_bps > 0.0, "target rate must be positive");
  OptimizerResult out;
  out.target_rate_bps = target_rate_bps;

  const double grid_slot = static_cast<double>(table.slot_samples()) / options.sample_rate_hz;
  for (const int bits : options.bits_per_axis) {
    const int bits_per_symbol = 2 * bits;  // PQAM: both polarization axes
    // T = bits/rate must be an integer number of characterization slots.
    const double t_exact = static_cast<double>(bits_per_symbol) / target_rate_bps;
    const int sps = narrow_cast<int>(std::llround(t_exact / grid_slot));
    if (sps < 1) continue;
    const double t = sps * grid_slot;
    if (std::abs(t - t_exact) / t_exact > 0.01) continue;  // rate not representable
    if (t < options.min_slot_s || t > options.max_slot_s) continue;
    for (const int l : options.dsm_orders) {
      const double w = static_cast<double>(l) * t;
      if (w < options.min_symbol_duration_s) continue;  // ISI would exceed the template span
      const DsmPqamScheme scheme(l, bits, grid_slot, sps, true, options.payload_slots);
      const auto md = min_distance(table, scheme, options.sample_rate_hz, options.distance);
      GridPoint pt;
      pt.dsm_order = l;
      pt.bits_per_axis = bits;
      pt.slot_s = t;
      pt.d = md.d;
      out.grid.push_back(pt);
    }
  }

  if (!out.grid.empty()) {
    const GridPoint* best = &out.grid.front();
    for (const auto& pt : out.grid)
      if (pt.d > best->d) best = &pt;
    for (auto& pt : out.grid) pt.threshold_db_rel = relative_threshold_db(pt.d, best->d);
    out.best = *best;
  }
  return out;
}

}  // namespace rt::analysis
