// Emulation error-bound study (paper Tab. 2).
//
// Quantifies how well the order-V finite-memory table reproduces the LCM
// response by comparing emulated waveforms of random drive sequences
// against a high-order reference table (the paper uses V = 17).
#pragma once

#include "analysis/emulator.h"
#include "common/rng.h"

namespace rt::analysis {

struct EmulationErrorResult {
  int v = 0;
  double max_rel_error = 0.0;  ///< worst relative RMS error over sequences
  double avg_rel_error = 0.0;  ///< mean relative RMS error
};

struct EmulationErrorOptions {
  int sequences = 32;          ///< random drive sequences tested
  std::size_t sequence_slots = 64;
  std::uint64_t seed = 7;
};

/// Relative RMS error of `table` versus `reference` over random drives.
[[nodiscard]] EmulationErrorResult emulation_error(const LcmTable& table,
                                                   const LcmTable& reference,
                                                   double sample_rate_hz,
                                                   const EmulationErrorOptions& options = {});

}  // namespace rt::analysis
