// Distance spectrum and union-bound BER estimation.
//
// Section 5.1 uses the *minimum* distance D as the performance index; the
// full pairwise-distance spectrum refines that into an analytic BER
// estimate: summing Q(d / 2 sigma) over near-neighbour error events gives
// the classic union bound, letting parameter studies predict waterfall
// curves without running the demodulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "analysis/min_distance.h"
#include "common/rng.h"
#include "common/units.h"

namespace rt::analysis {

/// Pairwise error events grouped by (quantized) distance.
struct DistanceSpectrum {
  struct Line {
    double distance = 0.0;   ///< Euclidean waveform distance ||F(A)-F(B)||_2 (sample domain)
    double bit_errors = 0.0; ///< mean payload bit errors of the event
    int multiplicity = 0;    ///< pairs observed at this distance
  };
  std::vector<Line> lines;   ///< ascending by distance
  int data_bits = 0;
  int words_sampled = 0;
};

/// Gaussian tail Q(x).
[[nodiscard]] inline double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Samples the near-neighbour distance spectrum of a scheme: for random
/// base words, enumerate single-bit-flip neighbours (the dominant error
/// events of a Gray-labelled constellation) and histogram the waveform
/// distances.
[[nodiscard]] inline DistanceSpectrum distance_spectrum(const LcmTable& table,
                                                        const Scheme& scheme,
                                                        double sample_rate_hz, int base_words = 8,
                                                        std::uint64_t seed = 3) {
  const int k = scheme.data_bits();
  DistanceSpectrum out;
  out.data_bits = k;
  out.words_sampled = base_words;
  Rng rng(seed);
  std::map<long long, std::pair<double, int>> histogram;  // quantized distance -> (bits, count)
  for (int w = 0; w < base_words; ++w) {
    const auto base = rng.bits(static_cast<std::size_t>(k));
    const auto wave_base = emulate(table, scheme.encode(base), sample_rate_hz);
    for (int i = 0; i < k; ++i) {
      auto flipped = base;
      flipped[i] ^= 1;
      const auto wave = emulate(table, scheme.encode(flipped), sample_rate_hz);
      double d2 = 0.0;
      for (std::size_t s = 0; s < wave.size(); ++s) d2 += std::norm(wave[s] - wave_base[s]);
      const double d = std::sqrt(d2);
      const auto bucket = static_cast<long long>(std::llround(d * 1e4));
      auto& [bits, count] = histogram[bucket];
      bits += 1.0;  // single-bit flip events
      ++count;
    }
  }
  for (const auto& [bucket, entry] : histogram) {
    DistanceSpectrum::Line line;
    line.distance = static_cast<double>(bucket) * 1e-4;
    line.multiplicity = entry.second;
    line.bit_errors = entry.first / entry.second;
    out.lines.push_back(line);
  }
  return out;
}

/// Union-bound BER at the given per-axis complex-noise sigma: each error
/// event contributes Q(d / 2 sigma_total) weighted by its bit errors,
/// averaged per transmitted bit.
[[nodiscard]] inline double union_bound_ber(const DistanceSpectrum& spectrum,
                                            double noise_sigma_per_axis) {
  RT_ENSURE(noise_sigma_per_axis > 0.0, "noise sigma must be positive");
  RT_ENSURE(spectrum.data_bits > 0 && spectrum.words_sampled > 0, "empty spectrum");
  const double sigma_total = noise_sigma_per_axis * std::sqrt(2.0);  // both axes
  double sum = 0.0;
  for (const auto& line : spectrum.lines)
    sum += line.multiplicity * line.bit_errors * q_function(line.distance / (2.0 * sigma_total));
  // Normalize: events per sampled word, per data bit.
  return std::min(0.5, sum / (static_cast<double>(spectrum.words_sampled) *
                              static_cast<double>(spectrum.data_bits)));
}

}  // namespace rt::analysis
