#include "analysis/min_distance.h"

#include <algorithm>
#include <limits>

#include "common/narrow.h"

namespace rt::analysis {

namespace {

double distance_sq_between(const sig::IqWaveform& wa, const sig::IqWaveform& wb, int bits) {
  RT_ENSURE(wa.size() == wb.size(), "emulated lengths differ");
  double d = 0.0;
  for (std::size_t i = 0; i < wa.size(); ++i) d += std::norm(wa[i] - wb[i]);
  // Integrated squared distance over time, per data bit: comparable across
  // schemes with different slot widths and rates.
  return d / wa.sample_rate_hz / static_cast<double>(bits);
}

std::vector<std::uint8_t> word_from_index(std::uint64_t idx, int bits) {
  std::vector<std::uint8_t> w(bits);
  for (int b = 0; b < bits; ++b) w[b] = narrow_cast<std::uint8_t>((idx >> b) & 1ULL);
  return w;
}

}  // namespace

double waveform_distance_sq(const LcmTable& table, const Scheme& scheme,
                            std::span<const std::uint8_t> word_a,
                            std::span<const std::uint8_t> word_b, double sample_rate_hz) {
  const auto wa = emulate(table, scheme.encode(word_a), sample_rate_hz);
  const auto wb = emulate(table, scheme.encode(word_b), sample_rate_hz);
  return distance_sq_between(wa, wb, scheme.data_bits());
}

MinDistanceResult min_distance(const LcmTable& table, const Scheme& scheme,
                               double sample_rate_hz, const MinDistanceOptions& options) {
  const int k = scheme.data_bits();
  RT_ENSURE(k >= 1, "scheme must carry at least one bit");
  double best = std::numeric_limits<double>::infinity();

  if (k <= options.exhaustive_bit_limit) {
    const std::uint64_t n = 1ULL << k;
    std::vector<sig::IqWaveform> cache;
    cache.reserve(n);
    for (std::uint64_t a = 0; a < n; ++a)
      cache.push_back(emulate(table, scheme.encode(word_from_index(a, k)), sample_rate_hz));
    for (std::uint64_t a = 0; a < n; ++a)
      for (std::uint64_t b = a + 1; b < n; ++b)
        best = std::min(best, distance_sq_between(cache[a], cache[b], k));
  } else {
    // Neighbour search: in a linear-superposition ISI channel the minimum
    // distance is realized by words differing in few positions. From random
    // base words, explore single flips and pairs of nearby flips.
    Rng rng(options.seed);
    for (int trial = 0; trial < options.random_words; ++trial) {
      const auto base = rng.bits(static_cast<std::size_t>(k));
      const auto wbase = emulate(table, scheme.encode(base), sample_rate_hz);
      for (int i = 0; i < k; ++i) {
        auto w1 = base;
        w1[i] ^= 1;
        const auto wave1 = emulate(table, scheme.encode(w1), sample_rate_hz);
        best = std::min(best, distance_sq_between(wbase, wave1, k));
        if (options.neighbour_span >= 2) {
          const int window = 16;  // nearby-symbol interactions only
          for (int j = i + 1; j < std::min(k, i + window); ++j) {
            auto w2 = w1;
            w2[j] ^= 1;
            const auto wave2 = emulate(table, scheme.encode(w2), sample_rate_hz);
            best = std::min(best, distance_sq_between(wbase, wave2, k));
          }
        }
      }
    }
  }

  MinDistanceResult out;
  out.d = best;
  out.scheme_name = scheme.name();
  out.data_rate_bps = scheme.data_rate_bps();
  return out;
}

}  // namespace rt::analysis
