#include "analysis/emulator.h"

#include "common/narrow.h"
#include "signal/mls.h"

namespace rt::analysis {

LcmTable characterize_lcm(const lcm::LcTimings& timings, double slot_s, double sample_rate_hz,
                          int v) {
  RT_ENSURE(slot_s > 0.0 && sample_rate_hz > 0.0, "slot and sample rate must be positive");
  const auto slot_samps = static_cast<std::size_t>(std::llround(slot_s * sample_rate_hz));
  RT_ENSURE(slot_samps >= 1, "need at least one sample per slot");
  LcmTable table(v, slot_samps);

  const auto drive_and_fill = [&](std::span<const std::uint8_t> bits, bool record_all_zero) {
    // Two passes over the sequence: the first warms the cell state so
    // wrap-around windows are physically consistent.
    lcm::LcCell cell(timings);
    const std::size_t period = bits.size();
    const double dt = 1.0 / sample_rate_hz;
    std::vector<std::uint8_t> recorded(table.order() > 0 ? (std::size_t{1} << table.order()) : 1,
                                       0);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = 0; j < period; ++j) {
        const bool driven = bits[j] != 0;
        std::vector<double> seg(slot_samps);
        for (std::size_t k = 0; k < slot_samps; ++k) seg[k] = 2.0 * cell.step(driven, dt) - 1.0;
        if (pass == 0) continue;
        // Window key over the last V bits (bit 0 = current).
        std::uint32_t key = 0;
        bool valid = true;
        for (int b = 0; b < table.order(); ++b) {
          const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(j) - b;
          const std::uint8_t bit =
              bits[static_cast<std::size_t>((idx % static_cast<std::ptrdiff_t>(period) +
                                             static_cast<std::ptrdiff_t>(period)) %
                                            static_cast<std::ptrdiff_t>(period))];
          key |= narrow_cast<std::uint32_t>(bit) << b;
          (void)valid;
        }
        if (record_all_zero != (key == 0)) continue;
        if (!recorded[key]) {
          table.set_response(key, std::move(seg));
          recorded[key] = 1;
        }
      }
    }
  };

  // Main pass: order-V MLS covers every non-zero window exactly once.
  const auto seq = sig::mls(narrow_cast<unsigned>(v));
  drive_and_fill(seq, false);

  // All-zero window: pad with a long undriven run (footnote 5). Drive once
  // then idle long enough that the steady relaxed response is reached.
  std::vector<std::uint8_t> zero_run(static_cast<std::size_t>(v) + 32, 0);
  drive_and_fill(zero_run, true);

  return table;
}

sig::IqWaveform emulate(const LcmTable& table, const CodeMatrix& code, double sample_rate_hz) {
  code.validate();
  const std::size_t slot_samps = table.slot_samples();
  const std::size_t n = code.slots() * slot_samps;
  sig::IqWaveform out(sample_rate_hz, n);
  for (std::size_t i = 0; i < code.pixels(); ++i) {
    const Complex g = code.gains[i];
    for (std::size_t j = 0; j < code.slots(); ++j) {
      std::uint32_t key = 0;
      for (int b = 0; b < table.order(); ++b) {
        if (static_cast<std::ptrdiff_t>(j) - b < 0) break;  // pre-start slots undriven
        if (code.drive(i, j - static_cast<std::size_t>(b)) != 0.0)
          key |= 1U << b;
      }
      const auto seg = table.response(key);
      for (std::size_t k = 0; k < slot_samps; ++k) out[j * slot_samps + k] += g * seg[k];
    }
  }
  return out;
}

}  // namespace rt::analysis
