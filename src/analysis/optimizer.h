// Optimal (L, P) parameter search for a target data rate (section 5.3).
//
// For a target rate R the slot duration follows from the PQAM order
// (T = log2(P) / R), so the search space is the (L, P) grid; each point is
// scored by its minimum distance under the LCM emulation, and the best
// combination gives the scheme actually used at that rate (Tab. 3).
#pragma once

#include <optional>
#include <vector>

#include "analysis/min_distance.h"
#include "analysis/scheme.h"

namespace rt::analysis {

struct GridPoint {
  int dsm_order = 0;
  int bits_per_axis = 0;
  double slot_s = 0.0;
  double d = 0.0;
  double threshold_db_rel = 0.0;  ///< relative to the grid's best D
};

struct OptimizerOptions {
  std::vector<int> dsm_orders = {1, 2, 4, 8, 16};
  std::vector<int> bits_per_axis = {1, 2, 3, 4};
  double min_slot_s = 0.1e-3;
  double max_slot_s = 8.0e-3;
  /// W = L*T must cover at least this much discharge time or the scheme is
  /// dominated by uncontrolled ISI; points violating it are skipped.
  double min_symbol_duration_s = 3.0e-3;
  double sample_rate_hz = 40e3;
  MinDistanceOptions distance{};
  int payload_slots = 0;  ///< 0 = scheme default
};

struct OptimizerResult {
  std::vector<GridPoint> grid;        ///< all evaluated points
  std::optional<GridPoint> best;      ///< max-D point
  double target_rate_bps = 0.0;
};

/// Evaluates every (L, P) combination achieving `target_rate_bps` and
/// returns the grid with the best point marked.
[[nodiscard]] OptimizerResult optimize_parameters(const LcmTable& table, double target_rate_bps,
                                                  const OptimizerOptions& options = {});

}  // namespace rt::analysis
