// Finite-memory LCM emulation (paper section 5.2).
//
// The LCM's pulse response is infinite and nonlinear, but it can be
// approximated by a table indexed by the last V drive bits: R_[b1..bV](t)
// gives the response during the current slot given that history. The table
// is collected by driving the physical-model cell with a V-th order
// maximum-length sequence (every non-zero V-window appears exactly once),
// padded with an all-zero run for the missing all-zero window (footnote 5).
//
// Emulated waveforms back the modulation-scheme analysis (minimum distance,
// Fig. 13 / Tab. 3) and the trace-driven emulation of section 7.3; Tab. 2
// quantifies the emulation error versus the table order V.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "lcm/lc_cell.h"
#include "linalg/matrix.h"
#include "signal/waveform.h"

namespace rt::analysis {

using Complex = std::complex<double>;

/// History-indexed slot-response table for one unit pixel. Window key:
/// bit 0 = current slot's drive bit, bit k = drive k slots ago.
class LcmTable {
 public:
  LcmTable(int v, std::size_t slot_samps)
      : v_(v), slot_samps_(slot_samps),
        table_(std::size_t{1} << v, std::vector<double>(slot_samps, 0.0)) {
    RT_ENSURE(v >= 1 && v <= 20, "table order must be in [1, 20]");
    RT_ENSURE(slot_samps >= 1, "need at least one sample per slot");
  }

  [[nodiscard]] int order() const { return v_; }
  [[nodiscard]] std::size_t slot_samples() const { return slot_samps_; }

  [[nodiscard]] std::span<const double> response(std::uint32_t window) const {
    RT_ENSURE(window < table_.size(), "window key out of range");
    return table_[window];
  }

  void set_response(std::uint32_t window, std::vector<double> r) {
    RT_ENSURE(window < table_.size() && r.size() == slot_samps_, "bad response entry");
    table_[window] = std::move(r);
  }

 private:
  int v_;
  std::size_t slot_samps_;
  std::vector<std::vector<double>> table_;
};

/// Collects the order-V table by driving the LC physical model with an
/// MLS-derived bit stream at slot duration `slot_s`.
[[nodiscard]] LcmTable characterize_lcm(const lcm::LcTimings& timings, double slot_s,
                                        double sample_rate_hz, int v);

/// A modulation scheme instance as the paper's code-matrix abstraction: a
/// binary N x M drive matrix (N pixels, M time slots) plus per-pixel
/// complex gains G_i (area x polarization axis).
struct CodeMatrix {
  linalg::RealMatrix drive;       ///< entries 0/1
  std::vector<Complex> gains;     ///< size N

  [[nodiscard]] std::size_t pixels() const { return drive.rows(); }
  [[nodiscard]] std::size_t slots() const { return drive.cols(); }

  void validate() const {
    RT_ENSURE(gains.size() == drive.rows(), "one gain per pixel required");
    for (std::size_t i = 0; i < drive.rows(); ++i)
      for (std::size_t j = 0; j < drive.cols(); ++j)
        RT_ENSURE(drive(i, j) == 0.0 || drive(i, j) == 1.0, "drive matrix must be binary");
  }
};

/// F(A): emulates the superimposed waveform of all pixels,
/// sum_i G_i R_[window_i(j)](t - j dt), via table lookups. Slots before
/// t=0 are treated as undriven.
[[nodiscard]] sig::IqWaveform emulate(const LcmTable& table, const CodeMatrix& code,
                                      double sample_rate_hz);

}  // namespace rt::analysis
