// Modulation schemes expressed as code matrices (paper section 5.1).
//
// A scheme maps k data bits to a binary N x M drive matrix: which of the N
// pixels is driven in which of the M time slots. These builders express
// OOK, PAM, basic DSM and overlapped DSM-PQAM in that common abstraction
// so the minimum-distance machinery can compare them uniformly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/emulator.h"
#include "common/narrow.h"
#include "common/units.h"
#include "phy/constellation.h"

namespace rt::analysis {

/// Abstract scheme: bit count per analysis window and the bits -> code
/// matrix mapping.
class Scheme {
 public:
  virtual ~Scheme() = default;
  [[nodiscard]] virtual int data_bits() const = 0;
  [[nodiscard]] virtual double data_rate_bps() const = 0;
  [[nodiscard]] virtual double slot_duration_s() const = 0;
  /// Total emulation slots (includes tail so trailing pulses count).
  [[nodiscard]] virtual std::size_t total_slots() const = 0;
  [[nodiscard]] virtual CodeMatrix encode(std::span<const std::uint8_t> bits) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Trend-based OOK (PassiveVLC baseline): one pixel, one bit per
/// (tau_1 + tau_0) period -- drive high for the first half of the period
/// if the bit is 1.
class OokScheme final : public Scheme {
 public:
  OokScheme(int bits, double slot_s = rt::ms(0.5), int slots_per_bit = 8)
      : bits_(bits), slot_s_(slot_s), spb_(slots_per_bit) {
    RT_ENSURE(bits >= 1 && slots_per_bit >= 2, "bad OOK parameters");
  }

  [[nodiscard]] int data_bits() const override { return bits_; }
  [[nodiscard]] double data_rate_bps() const override {
    return 1.0 / (slot_s_ * static_cast<double>(spb_));
  }
  [[nodiscard]] double slot_duration_s() const override { return slot_s_; }
  [[nodiscard]] std::size_t total_slots() const override {
    return static_cast<std::size_t>(bits_) * static_cast<std::size_t>(spb_) +
           static_cast<std::size_t>(spb_);
  }
  [[nodiscard]] std::string name() const override { return "OOK"; }

  [[nodiscard]] CodeMatrix encode(std::span<const std::uint8_t> bits) const override {
    RT_ENSURE(bits.size() == static_cast<std::size_t>(bits_), "bit count mismatch");
    CodeMatrix cm;
    cm.drive = linalg::RealMatrix(1, total_slots());
    cm.gains = {Complex(1.0, 0.0)};
    for (int b = 0; b < bits_; ++b) {
      if (!bits[b]) continue;
      // One charge pulse at the start of the bit period; the rest of the
      // period is the tau_0 discharge the slow LCM needs.
      cm.drive(0, static_cast<std::size_t>(b) * static_cast<std::size_t>(spb_)) = 1.0;
    }
    return cm;
  }

 private:
  int bits_;
  double slot_s_;
  int spb_;
};

/// Overlapped DSM-PQAM (the RetroTurbo scheme): L modules per polarization
/// group, each of `bits_per_axis` binary-weighted pixels, fired in
/// interleaved symbol slots; symbols are Gray-mapped PQAM levels.
///
/// Time is expressed on the LCM characterization grid: the DSM interleave
/// T equals `grid_slots_per_symbol` characterization slots, and the drive
/// stays high for `charge_slots` grid slots per firing.
class DsmPqamScheme final : public Scheme {
 public:
  DsmPqamScheme(int dsm_order, int bits_per_axis, double grid_slot_s,
                int grid_slots_per_symbol = 1, bool use_q = true, int payload_symbols = 0,
                int charge_slots = 1)
      : l_(dsm_order),
        bits_axis_(bits_per_axis),
        grid_slot_s_(grid_slot_s),
        sps_(grid_slots_per_symbol),
        use_q_(use_q),
        charge_slots_(charge_slots),
        constellation_(bits_per_axis, use_q) {
    RT_ENSURE(l_ >= 1 && bits_axis_ >= 1 && grid_slot_s_ > 0.0 && sps_ >= 1 && charge_slots_ >= 1,
              "bad DSM-PQAM parameters");
    payload_symbols_ = payload_symbols > 0 ? payload_symbols : 2 * l_;  // default: 2 DSM symbols
  }

  [[nodiscard]] int data_bits() const override {
    return payload_symbols_ * constellation_.bits_per_symbol();
  }
  [[nodiscard]] double data_rate_bps() const override {
    return constellation_.bits_per_symbol() / (grid_slot_s_ * static_cast<double>(sps_));
  }
  [[nodiscard]] double slot_duration_s() const override { return grid_slot_s_; }
  /// DSM symbol duration W = L * T.
  [[nodiscard]] double symbol_duration_s() const {
    return static_cast<double>(l_ * sps_) * grid_slot_s_;
  }
  [[nodiscard]] std::size_t total_slots() const override {
    return static_cast<std::size_t>((payload_symbols_ + 2 * l_) * sps_);
  }
  [[nodiscard]] std::string name() const override {
    return "DSM" + std::to_string(l_) + (use_q_ ? "-PQAM" : "-PAM") +
           std::to_string(constellation_.alphabet().size());
  }

  [[nodiscard]] CodeMatrix encode(std::span<const std::uint8_t> bits) const override {
    RT_ENSURE(bits.size() == static_cast<std::size_t>(data_bits()), "bit count mismatch");
    const int groups = use_q_ ? 2 : 1;
    const std::size_t pixels =
        static_cast<std::size_t>(groups) * static_cast<std::size_t>(l_) *
        static_cast<std::size_t>(bits_axis_);
    CodeMatrix cm;
    cm.drive = linalg::RealMatrix(pixels, total_slots());
    cm.gains.resize(pixels);
    // Pixel layout: group (I=0, Q=1) -> module (0..L-1) -> weight bit
    // (msb..lsb), binary-weighted areas normalized to module sum 1.
    const double denom = static_cast<double>((1 << bits_axis_) - 1);
    for (std::size_t p = 0; p < pixels; ++p) {
      const auto group = p / (static_cast<std::size_t>(l_) * bits_axis_);
      const auto within = p % (static_cast<std::size_t>(l_) * bits_axis_);
      const int weight_bit = bits_axis_ - 1 - narrow_cast<int>(within % bits_axis_);
      const double area = static_cast<double>(1 << weight_bit) / denom;
      cm.gains[p] = area * (group == 0 ? Complex(1.0, 0.0) : Complex(0.0, 1.0));
    }
    const int bps = constellation_.bits_per_symbol();
    for (int n = 0; n < payload_symbols_; ++n) {
      const auto sym =
          constellation_.map(bits.subspan(static_cast<std::size_t>(n) * bps, bps));
      const int m = n % l_;
      const std::size_t fire_slot = static_cast<std::size_t>(n) * static_cast<std::size_t>(sps_);
      const auto drive_level = [&](int group, int level) {
        if (level <= 0) return;
        for (int wb = 0; wb < bits_axis_; ++wb) {
          if (((level >> (bits_axis_ - 1 - wb)) & 1) == 0) continue;
          const std::size_t p = static_cast<std::size_t>(group) * l_ * bits_axis_ +
                                static_cast<std::size_t>(m) * bits_axis_ +
                                static_cast<std::size_t>(wb);
          for (int cs = 0; cs < charge_slots_; ++cs)
            cm.drive(p, fire_slot + static_cast<std::size_t>(cs)) = 1.0;
        }
      };
      drive_level(0, sym.level_i);
      if (use_q_) drive_level(1, sym.level_q);
    }
    return cm;
  }

  [[nodiscard]] const phy::Constellation& constellation() const { return constellation_; }
  [[nodiscard]] int payload_symbols() const { return payload_symbols_; }
  [[nodiscard]] int dsm_order() const { return l_; }
  [[nodiscard]] int bits_per_axis() const { return bits_axis_; }

 private:
  int l_;
  int bits_axis_;
  double grid_slot_s_;
  int sps_;
  bool use_q_;
  int payload_symbols_;
  int charge_slots_;
  phy::Constellation constellation_;
};

}  // namespace rt::analysis
