// Passband receiver chain: the Photodiode-Amplifier-ADC path of the reader
// (section 6), duplicated for the two PQAM polarization channels.
//
// Pipeline per channel:
//   PDR difference (two photodiodes behind orthogonal polarizers)
//   -> band-pass around the 455 kHz carrier (ambient/DC rejection)
//   -> synchronous down-conversion (multiply by carrier fundamental)
//   -> low-pass + decimation to the baseband sample rate.
//
// The sim layer's fast path skips all this and works directly at baseband;
// passband_equivalence tests pin the two paths to each other so the fast
// path is a validated shortcut, not an assumption.
#pragma once

#include "common/rng.h"
#include "frontend/carrier.h"
#include "frontend/photodiode.h"
#include "signal/fir.h"
#include "signal/waveform.h"

namespace rt::frontend {

struct ReceiverChainConfig {
  Carrier carrier{};
  double passband_fs_hz = 4.0e6;   ///< ADC rate before decimation
  double baseband_fs_hz = 40.0e3;  ///< output rate (must divide passband rate)
  double bandpass_half_width_hz = 60.0e3;
  std::size_t bandpass_taps = 257;
  std::size_t lowpass_taps = 257;
  PhotodiodeParams photodiode{};

  void validate() const;
  [[nodiscard]] std::size_t decimation_factor() const;
};

/// The four raw optical intensity streams hitting the reader's photodiodes
/// (polarizer angles 0deg, 90deg, 45deg, 135deg), at the passband rate.
struct PhotodiodeInputs {
  sig::Waveform pd_0;
  sig::Waveform pd_90;
  sig::Waveform pd_45;
  sig::Waveform pd_135;
};

class ReceiverChain {
 public:
  explicit ReceiverChain(const ReceiverChainConfig& config);

  /// Full passband processing: photodetection with noise, band-pass,
  /// synchronous detection, decimation. Returns the complex baseband
  /// (I = 0deg PDR pair, Q = 45deg PDR pair).
  [[nodiscard]] sig::IqWaveform process(const PhotodiodeInputs& inputs, Rng& rng) const;

  /// Builds the photodiode intensity streams for a tag baseband waveform:
  /// the reader's chopped illumination multiplies the retroreflected tag
  /// component while ambient light stays unchopped. `total_intensity` is
  /// the polarization-independent part of the tag return (sum of pixel
  /// intensities); `r_baseband` the complex PDR modulation.
  [[nodiscard]] PhotodiodeInputs illuminate(const sig::IqWaveform& r_baseband,
                                            double total_intensity,
                                            double ambient_intensity) const;

  [[nodiscard]] const ReceiverChainConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] sig::Waveform downconvert(const sig::Waveform& passband) const;

  ReceiverChainConfig cfg_;
  sig::FirFilter bandpass_;
  sig::FirFilter lowpass_;
};

}  // namespace rt::frontend
