// Switching-carrier illumination model.
//
// The reader (section 6) chops its flashlight at 455 kHz and receives in
// the passband, so slow ambient light variations (DC after photodetection)
// are rejected by a band-pass filter and only the retroreflected, chopped
// light carries the tag's modulation.
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace rt::frontend {

struct Carrier {
  double frequency_hz = rt::khz(455.0);
  double duty = 0.5;

  /// Instantaneous illumination factor in {0, 1} (square switching).
  [[nodiscard]] double value(double t) const {
    RT_ENSURE(duty > 0.0 && duty < 1.0, "duty cycle must be in (0, 1)");
    const double phase = t * frequency_hz - std::floor(t * frequency_hz);
    return phase < duty ? 1.0 : 0.0;
  }

  /// Fundamental-component amplitude of the square carrier (used by the
  /// synchronous detector's gain bookkeeping): (2 / pi) sin(pi * duty).
  [[nodiscard]] double fundamental_amplitude() const {
    return 2.0 / rt::kPi * std::sin(rt::kPi * duty);
  }
};

}  // namespace rt::frontend
