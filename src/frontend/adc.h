// ADC quantization model (the STM32H750's integrated ADCs, section 6).
//
// Uniform mid-tread quantizer with configurable resolution and full-scale
// range; saturates at the rails. Lets experiments check that the 12-bit
// converter is not the bottleneck (and what happens when gain control
// fails and it clips).
#pragma once

#include <cmath>

#include "common/error.h"
#include "signal/waveform.h"

namespace rt::frontend {

class Adc {
 public:
  Adc(int bits, double full_scale) : bits_(bits), full_scale_(full_scale) {
    RT_ENSURE(bits >= 2 && bits <= 24, "ADC resolution must be 2..24 bits");
    RT_ENSURE(full_scale > 0.0, "full scale must be positive");
    step_ = 2.0 * full_scale_ / static_cast<double>((1LL << bits_) - 1);
  }

  [[nodiscard]] double quantize(double v) const {
    const double clipped = std::clamp(v, -full_scale_, full_scale_);
    return std::round(clipped / step_) * step_;
  }

  [[nodiscard]] sig::Waveform convert(const sig::Waveform& in) const {
    sig::Waveform out(in.sample_rate_hz, in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = quantize(in[i]);
    return out;
  }

  /// Quantizes I and Q independently (two ADC channels, as in the reader).
  [[nodiscard]] sig::IqWaveform convert(const sig::IqWaveform& in) const {
    sig::IqWaveform out(in.sample_rate_hz, in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      out[i] = {quantize(in[i].real()), quantize(in[i].imag())};
    return out;
  }

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] double step() const { return step_; }
  /// Ideal quantization SNR for a full-scale sine: 6.02 b + 1.76 dB.
  [[nodiscard]] double ideal_snr_db() const { return 6.02 * bits_ + 1.76; }

 private:
  int bits_;
  double full_scale_;
  double step_;
};

}  // namespace rt::frontend
