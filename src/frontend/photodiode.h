// Photodiode + first-stage amplifier model (BPW34 + OPA2356 in the
// prototype).
//
// Converts optical intensity to an electrical sample stream with shot
// noise (scales with sqrt of detected power), input-referred thermal/
// amplifier noise, and soft saturation. The "imperfect linearity in the
// photodiode and high noise floor" the paper blames for capping the
// prototype at 8 Kbps (section 7.3) correspond to the saturation knee and
// noise floor here.
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "signal/waveform.h"

namespace rt::frontend {

struct PhotodiodeParams {
  double responsivity = 1.0;        ///< intensity -> electrical amplitude
  double thermal_noise_sigma = 0.0; ///< input-referred circuit noise
  double shot_noise_coeff = 0.0;    ///< sigma = coeff * sqrt(intensity)
  double saturation_level = 1e12;   ///< soft-clip knee (electrical units)

  void validate() const {
    RT_ENSURE(responsivity > 0.0, "responsivity must be positive");
    RT_ENSURE(thermal_noise_sigma >= 0.0 && shot_noise_coeff >= 0.0, "noise must be >= 0");
    RT_ENSURE(saturation_level > 0.0, "saturation level must be positive");
  }
};

class Photodiode {
 public:
  explicit Photodiode(const PhotodiodeParams& params) : p_(params) { p_.validate(); }

  /// Converts an optical intensity waveform (non-negative) to the
  /// electrical output, adding noise from `rng`.
  [[nodiscard]] sig::Waveform detect(const sig::Waveform& intensity, Rng& rng) const {
    sig::Waveform out(intensity.sample_rate_hz, intensity.size());
    for (std::size_t i = 0; i < intensity.size(); ++i) {
      const double in = std::max(0.0, intensity[i]);
      double v = p_.responsivity * in;
      v += rng.gaussian(0.0, p_.thermal_noise_sigma);
      if (p_.shot_noise_coeff > 0.0) v += rng.gaussian(0.0, p_.shot_noise_coeff * std::sqrt(in));
      out[i] = soft_clip(v);
    }
    return out;
  }

  [[nodiscard]] const PhotodiodeParams& params() const { return p_; }

 private:
  /// tanh soft clip around the saturation knee: linear for |v| << sat.
  [[nodiscard]] double soft_clip(double v) const {
    return p_.saturation_level * std::tanh(v / p_.saturation_level);
  }

  PhotodiodeParams p_;
};

}  // namespace rt::frontend
