// Automatic gain control (the VCA821 variable-gain stage + MCU gain-control
// loop of the prototype reader, section 6).
//
// Keeps the signal amplitude inside the ADC's useful range: a slow
// feedback loop scales the input toward a target RMS, with slew limiting
// so gain changes do not masquerade as modulation within a packet.
#pragma once

#include <cmath>

#include "common/error.h"
#include "signal/waveform.h"

namespace rt::frontend {

struct AgcConfig {
  double target_rms = 1.0;
  double min_gain = 1e-3;
  double max_gain = 1e3;
  /// Averaging window for the power estimate (seconds).
  double window_s = 5e-3;
  /// Max relative gain change per window (slew limit).
  double max_step = 0.25;

  void validate() const {
    RT_ENSURE(target_rms > 0.0, "target RMS must be positive");
    RT_ENSURE(min_gain > 0.0 && max_gain > min_gain, "gain range invalid");
    RT_ENSURE(window_s > 0.0 && max_step > 0.0 && max_step < 1.0, "loop parameters invalid");
  }
};

class Agc {
 public:
  explicit Agc(const AgcConfig& config = {}) : cfg_(config), gain_(1.0) { cfg_.validate(); }

  /// Processes a waveform block-wise; the gain adapts once per window.
  [[nodiscard]] sig::IqWaveform apply(const sig::IqWaveform& in) {
    sig::IqWaveform out(in.sample_rate_hz, in.size());
    const auto window =
        std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.window_s * in.sample_rate_hz));
    for (std::size_t start = 0; start < in.size(); start += window) {
      const std::size_t end = std::min(in.size(), start + window);
      double p = 0.0;
      for (std::size_t i = start; i < end; ++i) p += std::norm(in[i]);
      const double rms = std::sqrt(p / static_cast<double>(end - start));
      if (rms > 0.0) {
        const double desired = cfg_.target_rms / (rms + 1e-300);
        const double lo = gain_ * (1.0 - cfg_.max_step);
        const double hi = gain_ * (1.0 + cfg_.max_step);
        gain_ = std::clamp(std::clamp(desired, lo, hi), cfg_.min_gain, cfg_.max_gain);
      }
      for (std::size_t i = start; i < end; ++i) out[i] = gain_ * in[i];
    }
    return out;
  }

  [[nodiscard]] double gain() const { return gain_; }
  void reset(double gain = 1.0) {
    RT_ENSURE(gain >= cfg_.min_gain && gain <= cfg_.max_gain, "gain outside configured range");
    gain_ = gain;
  }

 private:
  AgcConfig cfg_;
  double gain_;
};

}  // namespace rt::frontend
