#include "frontend/receiver_chain.h"

#include <cmath>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::frontend {

void ReceiverChainConfig::validate() const {
  RT_ENSURE(passband_fs_hz > 2.0 * carrier.frequency_hz,
            "passband rate must exceed Nyquist for the carrier");
  RT_ENSURE(baseband_fs_hz > 0.0, "baseband rate must be positive");
  const double ratio = passband_fs_hz / baseband_fs_hz;
  RT_ENSURE(std::abs(ratio - std::round(ratio)) < 1e-9,
            "baseband rate must divide the passband rate");
  RT_ENSURE(bandpass_half_width_hz > 0.0 &&
                carrier.frequency_hz + bandpass_half_width_hz < passband_fs_hz / 2.0,
            "band-pass edges must stay below Nyquist");
  photodiode.validate();
}

std::size_t ReceiverChainConfig::decimation_factor() const {
  return static_cast<std::size_t>(std::llround(passband_fs_hz / baseband_fs_hz));
}

ReceiverChain::ReceiverChain(const ReceiverChainConfig& config)
    : cfg_(config),
      bandpass_((cfg_.validate(),
                 sig::FirFilter::band_pass(cfg_.passband_fs_hz,
                                           cfg_.carrier.frequency_hz - cfg_.bandpass_half_width_hz,
                                           cfg_.carrier.frequency_hz + cfg_.bandpass_half_width_hz,
                                           cfg_.bandpass_taps | 1))),
      lowpass_(sig::FirFilter::low_pass(cfg_.passband_fs_hz, cfg_.baseband_fs_hz * 0.45,
                                        cfg_.lowpass_taps | 1)) {}

PhotodiodeInputs ReceiverChain::illuminate(const sig::IqWaveform& r_baseband,
                                           double total_intensity,
                                           double ambient_intensity) const {
  RT_ENSURE(total_intensity >= 0.0 && ambient_intensity >= 0.0, "intensities must be >= 0");
  const double fs = cfg_.passband_fs_hz;
  const std::size_t up = cfg_.decimation_factor();
  RT_ENSURE(std::abs(r_baseband.sample_rate_hz - cfg_.baseband_fs_hz) < 1e-6,
            "tag baseband waveform must be at the configured baseband rate");
  const std::size_t n = r_baseband.size() * up;
  PhotodiodeInputs out{
      sig::Waveform(fs, n), sig::Waveform(fs, n), sig::Waveform(fs, n), sig::Waveform(fs, n)};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    // Zero-order hold of the baseband modulation (LC dynamics are orders of
    // magnitude slower than the carrier).
    const auto r = r_baseband[i / up];
    const double chop = cfg_.carrier.value(t);
    // pd(theta) + pd(theta+90) = total intensity; pd(theta) - pd(theta+90)
    // = PDR projection. Invert for the individual diode intensities.
    const double i0 = 0.5 * (total_intensity + r.real());
    const double i90 = 0.5 * (total_intensity - r.real());
    const double i45 = 0.5 * (total_intensity + r.imag());
    const double i135 = 0.5 * (total_intensity - r.imag());
    // Ambient is unpolarized: half passes any polarizer, unchopped.
    const double amb = 0.5 * ambient_intensity;
    out.pd_0[i] = chop * i0 + amb;
    out.pd_90[i] = chop * i90 + amb;
    out.pd_45[i] = chop * i45 + amb;
    out.pd_135[i] = chop * i135 + amb;
  }
  return out;
}

sig::Waveform ReceiverChain::downconvert(const sig::Waveform& passband) const {
  const auto filtered = bandpass_.apply(passband);
  // Synchronous detection. The duty-d square carrier's fundamental is
  // A cos(2 pi f0 t + phi) with A = (2/pi) sin(pi d) and phi = -pi d, so we
  // mix with the complex exponential, low-pass, then rotate the known
  // carrier phase away and rescale by 2/A to recover the modulation.
  sig::IqWaveform mixed(filtered.sample_rate_hz, filtered.size());
  const double f0 = cfg_.carrier.frequency_hz;
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    const double t = static_cast<double>(i) / filtered.sample_rate_hz;
    mixed[i] = filtered[i] * std::polar(1.0, -2.0 * rt::kPi * f0 * t);
  }
  const auto lp = lowpass_.apply(mixed);
  const double a = cfg_.carrier.fundamental_amplitude();
  const double phi = -rt::kPi * cfg_.carrier.duty;
  const auto derotate = std::polar(2.0 / a, -phi);
  sig::Waveform out(lp.sample_rate_hz, lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) out[i] = (lp[i] * derotate).real();
  return out;
}

sig::IqWaveform ReceiverChain::process(const PhotodiodeInputs& inputs, Rng& rng) const {
  RT_ENSURE(inputs.pd_0.size() == inputs.pd_90.size() &&
                inputs.pd_0.size() == inputs.pd_45.size() &&
                inputs.pd_0.size() == inputs.pd_135.size(),
            "photodiode streams must have equal length");
  const Photodiode pd(cfg_.photodiode);
  const auto e0 = pd.detect(inputs.pd_0, rng);
  const auto e90 = pd.detect(inputs.pd_90, rng);
  const auto e45 = pd.detect(inputs.pd_45, rng);
  const auto e135 = pd.detect(inputs.pd_135, rng);

  // PDR differential combination per channel (section 6: two front
  // polarizers orthogonal to each other for SNR improvement).
  sig::Waveform diff_i(e0.sample_rate_hz, e0.size());
  sig::Waveform diff_q(e0.sample_rate_hz, e0.size());
  for (std::size_t i = 0; i < e0.size(); ++i) {
    diff_i[i] = e0[i] - e90[i];
    diff_q[i] = e45[i] - e135[i];
  }

  const auto base_i = downconvert(diff_i);
  const auto base_q = downconvert(diff_q);

  const std::size_t factor = cfg_.decimation_factor();
  const auto dec_i = sig::decimate(base_i, factor);
  const auto dec_q = sig::decimate(base_q, factor);
  sig::IqWaveform out(cfg_.baseband_fs_hz, dec_i.size());
  for (std::size_t i = 0; i < dec_i.size(); ++i) out[i] = {dec_i[i], dec_q[i]};
  return out;
}

}  // namespace rt::frontend
