// rt-lint: no-preconditions (leaf math kernels: size-0 is valid, pointers
// are pre-validated by the owning stages, and a branch per call would sit
// on the hottest loops in the repo)
// Scalar reference backend. These bodies are the SPECIFICATION: each one
// reproduces, operation for operation, the sequential loop it replaced in
// the pipeline (see the per-kernel notes), so a scalar build is
// bit-identical to the pre-kernel-layer pipeline. The AVX2 backend
// (kernels_avx2.cpp) must match these bit-for-bit on elementwise kernels
// and within the documented tolerance on reductions.
#include <algorithm>
#include <cmath>
#include <complex>

#include "kernels/kernels.h"

namespace rt::kernels::scalar {

namespace {
// Mirrors lcm/lc_cell.cpp: 10 us substeps keep RK4 error negligible
// against tau >= 0.1 ms.
constexpr double kMaxSubstep = 10e-6;
}  // namespace

// Replaces lcm::LcCell::step applied pixel-by-pixel: same coupled (c, s)
// RK4 with the same substep schedule, driven/released switch per pixel.
void lc_step(std::size_t n, double dt, const double* drive, double* c, double* s,
             const LcBankParams& p) {
  if (dt <= 0.0) return;
  for (std::size_t i = 0; i < n; ++i) {
    const bool driven = drive[i] != 0.0;
    const double tau_charge = p.tau_charge[i];
    const double tau_relax = p.tau_relax[i];
    double ci = c[i];
    double si = s[i];
    const auto fc = [&](double cc, double ss) {
      if (driven) {
        const double tau = tau_charge * (1.0 + p.k_mem * (1.0 - ss));
        return (1.0 - cc) / tau;
      }
      return -cc * (1.0 - cc) / tau_relax - cc / p.tau_slow;
    };
    const auto fs = [&](double cc, double ss) { return (cc - ss) / p.tau_memory; };
    double remaining = dt;
    while (remaining > 0.0) {
      const double h = std::min(remaining, kMaxSubstep);
      const double k1c = fc(ci, si);
      const double k1s = fs(ci, si);
      const double k2c = fc(ci + 0.5 * h * k1c, si + 0.5 * h * k1s);
      const double k2s = fs(ci + 0.5 * h * k1c, si + 0.5 * h * k1s);
      const double k3c = fc(ci + 0.5 * h * k2c, si + 0.5 * h * k2s);
      const double k3s = fs(ci + 0.5 * h * k2c, si + 0.5 * h * k2s);
      const double k4c = fc(ci + h * k3c, si + h * k3s);
      const double k4s = fs(ci + h * k3c, si + h * k3s);
      ci += h / 6.0 * (k1c + 2.0 * k2c + 2.0 * k3c + k4c);
      si += h / 6.0 * (k1s + 2.0 * k2s + 2.0 * k3s + k4s);
      ci = std::clamp(ci, 0.0, 1.0);
      si = std::clamp(si, 0.0, 1.0);
      remaining -= h;
    }
    c[i] = ci;
    s[i] = si;
  }
}

// Segment form of lc_step for lcm::TagArray::synthesize_into: advances
// every pixel through t_steps consecutive samples of length dt under one
// CONSTANT drive pattern, writing the post-step alignment of sample t to
// c_out[t * n + i]. This body IS t_steps back-to-back lc_step calls plus
// one contiguous row store per sample, so it is bit-identical to the
// per-sample form by construction. The sample loop stays OUTSIDE the
// pixel loop on purpose: successive pixels are independent dependency
// chains the out-of-order core overlaps, whereas a per-pixel sample loop
// would serialize the whole segment behind one chain of divisions.
void lc_step_run(std::size_t n, std::size_t t_steps, double dt, const double* drive, double* c,
                 double* s, double* c_out, const LcBankParams& p) {
  if (dt <= 0.0) {
    // t_steps no-op lc_step calls: state untouched, every row echoes it.
    for (std::size_t t = 0; t < t_steps; ++t)
      for (std::size_t i = 0; i < n; ++i) c_out[t * n + i] = c[i];
    return;
  }
  for (std::size_t t = 0; t < t_steps; ++t) {
    // Qualified: under RT_SIMD, ADL on LcBankParams would also see the
    // rt::kernels-level `using dispatch::lc_step` and call it ambiguous.
    scalar::lc_step(n, dt, drive, c, s, p);
    double* row = c_out + t * n;
    for (std::size_t i = 0; i < n; ++i) row[i] = c[i];
  }
}

// Replaces the widely-linear fit/correction loops in phy/preamble.cpp:
// dst[i] = a*x + b*conj(x) + c. src and dst may alias (in-place correct).
void wl_transform(std::size_t n, const Complex* src, Complex* dst, Complex a, Complex b,
                  Complex c) {
  for (std::size_t i = 0; i < n; ++i) {
    const Complex x = src[i];
    dst[i] = a * x + b * std::conj(x) + c;
  }
}

// Replaces the per-sample channel gain application in sim/channel.cpp:
// x[i] *= g[i].
void cscale(std::size_t n, Complex* x, const Complex* g) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= g[i];
}

// Replaces the training design accumulation in phy/training.cpp
// (column-major form): y[i] += x[i].
void accum_real(std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

// Replaces the MGS projection update in linalg/least_squares.h:
// y[i] -= a * x[i].
void axpy_sub_real(std::size_t n, double a, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= a * x[i];
}

void axpy_sub_cplx(std::size_t n, Complex a, const Complex* x, Complex* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= a * x[i];
}

// Replaces the pulse reconstruction in phy/training.cpp:
// y[i] += a * x[i] with real basis samples x and complex coefficient a.
void caxpy_real(std::size_t n, Complex a, const double* x, Complex* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void split_complex(std::size_t n, const Complex* x, double* re, double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
}

// Replaces the decision-feedback propagation in phy/equalizer.cpp:
// dst[k] = src[k] - sum_t w_t * tmpl_t[k], term-by-term in order.
void dfe_residual(std::size_t n, const Complex* src, Complex* dst, const CTerm* terms,
                  std::size_t n_terms) {
  for (std::size_t k = 0; k < n; ++k) {
    Complex e = src[k];
    for (std::size_t t = 0; t < n_terms; ++t) e -= terms[t].w * terms[t].tmpl[k];
    dst[k] = e;
  }
}

// Replaces stream::PhaseBank::score: max_k Re(rotor_k * c) over the
// split-plane rotor bank. Max is order-independent, so this reduction is
// bit-identical across backends.
double phase_score_max(std::size_t k, const double* rot_re, const double* rot_im, double c_re,
                       double c_im) {
  double best = rot_re[0] * c_re - rot_im[0] * c_im;
  for (std::size_t i = 1; i < k; ++i) {
    const double v = rot_re[i] * c_re - rot_im[i] * c_im;
    if (v > best) best = v;
  }
  return best;
}

// Replaces linalg::dot<double>: sequential left-to-right accumulation.
double dot_real(std::size_t n, const double* a, const double* b) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

// Replaces linalg::dot<Complex>: s += conj(a[i]) * b[i].
Complex cdotc(std::size_t n, const Complex* a, const Complex* b) {
  Complex s{};
  for (std::size_t i = 0; i < n; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

// Plain (unconjugated) complex dot, for the row-contiguous accumulation
// in linalg::residual_norm.
Complex cdotu(std::size_t n, const Complex* a, const Complex* b) {
  Complex s{};
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

// Replaces the ridge column-norm accumulation in phy/training.cpp and
// linalg::norm<double> (caller takes the sqrt).
double sum_sq_real(std::size_t n, const double* x) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

// Replaces the rest-slot metric in phy/equalizer.cpp and
// linalg::norm<Complex> (caller takes the sqrt).
double sum_norm_cplx(std::size_t n, const Complex* x) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::norm(x[i]);
  return s;
}

// Replaces the window statistics loop of sig::correlation_centered_at:
// one pass accumulating conj(ref)*x, sum x, sum |x|^2 in that per-sample
// order.
CorrStats corr_stats(std::size_t n, const Complex* ref, const Complex* x) {
  CorrStats st{};
  for (std::size_t i = 0; i < n; ++i) {
    const Complex v = x[i];
    st.acc += std::conj(ref[i]) * v;
    st.wsum += v;
    st.wenergy += std::norm(v);
  }
  return st;
}

// Split-plane form of corr_stats for the SoA streaming scan buffers.
// conj(ref)*x expands to (rr*xr + ri*xi, rr*xi - ri*xr), which is bitwise
// identical to the interleaved std::complex product (negation and
// x - (-y) are exact).
CorrStats corr_stats_split(std::size_t n, const double* ref_re, const double* ref_im,
                           const double* x_re, const double* x_im) {
  double acc_re = 0.0;
  double acc_im = 0.0;
  double wsum_re = 0.0;
  double wsum_im = 0.0;
  double wenergy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x_re[i];
    const double xi = x_im[i];
    acc_re += ref_re[i] * xr + ref_im[i] * xi;
    acc_im += ref_re[i] * xi - ref_im[i] * xr;
    wsum_re += xr;
    wsum_im += xi;
    wenergy += xr * xr + xi * xi;
  }
  return CorrStats{Complex{acc_re, acc_im}, Complex{wsum_re, wsum_im}, wenergy};
}

// Replaces the fused candidate-scoring loop in phy/equalizer.cpp:
// sum_k |residual[k] - sum_t w_t * tmpl_t[k]|^2.
double dfe_score(std::size_t n, const Complex* residual, const CTerm* terms,
                 std::size_t n_terms) {
  double score = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex e = residual[k];
    for (std::size_t t = 0; t < n_terms; ++t) e -= terms[t].w * terms[t].tmpl[k];
    score += std::norm(e);
  }
  return score;
}

// Replaces the interior (no edge clipping) tap loop of sig::FirFilter:
// sum_k xw[nt-1-k] * taps[k], ascending k exactly as the original loop
// walked it. taps_rev is unused here; the AVX2 backend consumes it.
Complex fir_dot(std::size_t nt, const double* taps, const double* taps_rev, const Complex* xw) {
  static_cast<void>(taps_rev);
  Complex acc{};
  for (std::size_t k = 0; k < nt; ++k) acc += xw[nt - 1 - k] * taps[k];
  return acc;
}

// Real-waveform twin of fir_dot (frontend band-pass on the photodiode
// signal); same tap order contract.
double fir_dot_real(std::size_t nt, const double* taps, const double* taps_rev,
                    const double* xw) {
  static_cast<void>(taps_rev);
  double acc = 0.0;
  for (std::size_t k = 0; k < nt; ++k) acc += xw[nt - 1 - k] * taps[k];
  return acc;
}

}  // namespace rt::kernels::scalar
