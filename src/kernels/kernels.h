// Public kernel API for the hot-path stages (ROADMAP "SIMD/batch across
// pixels" item). Every function exists in two backends:
//
//   kernels::scalar::* -- reference implementation, plain sequential C++,
//     bit-identical to the pre-refactor loops it replaced (golden BER
//     fixtures and the streaming chunk-invariance suite pin this down).
//   kernels::avx2::*   -- compiled only when CMake option RT_SIMD=ON
//     (preset `avx2`), 4-wide double AVX2 with masked tails.
//
// The unqualified kernels::name aliases resolve to the configured backend
// (`dispatch`). Bit-identity contract per kernel family:
//
//   elementwise (lc_step, lc_step_run, wl_transform, cscale, accum_real, axpy_sub_*,
//   caxpy_real, split_complex, dfe_residual, phase_score_max): each output
//   element sees the exact IEEE op chain of the scalar loop, so both
//   backends agree bitwise (the AVX2 TU is built with -ffp-contract=off
//   and uses no FMA here).
//
//   reductions (dot_real, cdotc, cdotu, sum_sq_real, sum_norm_cplx,
//   corr_stats, corr_stats_split, dfe_score, fir_dot): AVX2 accumulates
//   in 4 independent lanes (plus explicit FMA), which reassociates the
//   sum. Tolerance is documented and test-enforced in
//   tests/test_kernels.cpp: relative error <= 1e-12 on the randomized
//   inputs used there (double ULP-scale; the physical pipeline tolerances
//   are orders of magnitude looser).
//
// Intrinsics live in dispatch.h ONLY (rt_check rule C5 bans them
// everywhere else, including the rest of this module).
#pragma once

#include <complex>
#include <cstddef>

namespace rt::kernels {

using Complex = std::complex<double>;

/// Per-pixel LC-cell parameter bank (SoA). `tau_charge`/`tau_relax` are
/// per-pixel (module heterogeneity + yaw timing skew perturb them);
/// `tau_slow`, `tau_memory` and the memory coupling are uniform per tag.
struct LcBankParams {
  const double* tau_charge;
  const double* tau_relax;
  double tau_slow;
  double tau_memory;
  double k_mem;
};

/// One decision-feedback term: weighted pulse template subtracted from the
/// residual (weight = pixel area x complex gain).
struct CTerm {
  const Complex* tmpl;
  Complex w;
};

/// Running sums of correlation_centered_at: acc = sum conj(ref)*x,
/// wsum = sum x, wenergy = sum |x|^2.
struct CorrStats {
  Complex acc;
  Complex wsum;
  double wenergy;
};

// Both backends implement this exact surface; see kernels_scalar.cpp for
// the semantics (the scalar bodies are the specification).
#define RT_KERNELS_DECLARE_BACKEND                                                              \
  /* -- elementwise (bit-identical across backends) -- */                                       \
  void lc_step(std::size_t n, double dt, const double* drive, double* c, double* s,             \
               const LcBankParams& p);                                                          \
  void lc_step_run(std::size_t n, std::size_t t_steps, double dt, const double* drive,          \
                   double* c, double* s, double* c_out, const LcBankParams& p);                 \
  void wl_transform(std::size_t n, const Complex* src, Complex* dst, Complex a, Complex b,      \
                    Complex c);                                                                 \
  void cscale(std::size_t n, Complex* x, const Complex* g);                                     \
  void accum_real(std::size_t n, const double* x, double* y);                                   \
  void axpy_sub_real(std::size_t n, double a, const double* x, double* y);                      \
  void axpy_sub_cplx(std::size_t n, Complex a, const Complex* x, Complex* y);                   \
  void caxpy_real(std::size_t n, Complex a, const double* x, Complex* y);                       \
  void split_complex(std::size_t n, const Complex* x, double* re, double* im);                  \
  void dfe_residual(std::size_t n, const Complex* src, Complex* dst, const CTerm* terms,        \
                    std::size_t n_terms);                                                       \
  double phase_score_max(std::size_t k, const double* rot_re, const double* rot_im,             \
                         double c_re, double c_im);                                             \
  /* -- reductions (AVX2 reassociates; tolerance in tests/test_kernels.cpp) -- */               \
  double dot_real(std::size_t n, const double* a, const double* b);                             \
  Complex cdotc(std::size_t n, const Complex* a, const Complex* b);                             \
  Complex cdotu(std::size_t n, const Complex* a, const Complex* b);                             \
  double sum_sq_real(std::size_t n, const double* x);                                           \
  double sum_norm_cplx(std::size_t n, const Complex* x);                                        \
  CorrStats corr_stats(std::size_t n, const Complex* ref, const Complex* x);                    \
  CorrStats corr_stats_split(std::size_t n, const double* ref_re, const double* ref_im,         \
                             const double* x_re, const double* x_im);                           \
  double dfe_score(std::size_t n, const Complex* residual, const CTerm* terms,                  \
                   std::size_t n_terms);                                                        \
  Complex fir_dot(std::size_t nt, const double* taps, const double* taps_rev,                   \
                  const Complex* xw);                                                           \
  double fir_dot_real(std::size_t nt, const double* taps, const double* taps_rev,               \
                      const double* xw);

namespace scalar {
RT_KERNELS_DECLARE_BACKEND
}  // namespace scalar

#if defined(RT_KERNELS_AVX2)
namespace avx2 {
RT_KERNELS_DECLARE_BACKEND
}  // namespace avx2
namespace dispatch = avx2;
inline constexpr bool kAvx2 = true;
inline constexpr const char* backend_name() { return "avx2"; }
#else
namespace dispatch = scalar;
inline constexpr bool kAvx2 = false;
inline constexpr const char* backend_name() { return "scalar"; }
#endif

#undef RT_KERNELS_DECLARE_BACKEND

using dispatch::lc_step;
using dispatch::lc_step_run;
using dispatch::wl_transform;
using dispatch::cscale;
using dispatch::accum_real;
using dispatch::axpy_sub_real;
using dispatch::axpy_sub_cplx;
using dispatch::caxpy_real;
using dispatch::split_complex;
using dispatch::dfe_residual;
using dispatch::phase_score_max;
using dispatch::dot_real;
using dispatch::cdotc;
using dispatch::cdotu;
using dispatch::sum_sq_real;
using dispatch::sum_norm_cplx;
using dispatch::corr_stats;
using dispatch::corr_stats_split;
using dispatch::dfe_score;
using dispatch::fir_dot;
using dispatch::fir_dot_real;

}  // namespace rt::kernels
