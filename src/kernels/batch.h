// Portable batch abstraction for the kernel layer (ROADMAP "SIMD/batch"
// item). `batch<T, W>` is a fixed-width value pack with elementwise
// arithmetic; the scalar specialization (W = 1) is the reference backend
// and contains no intrinsics. The AVX2 specialization lives in
// dispatch.h -- the single translation-unit-visible place intrinsics may
// appear (enforced by rt_check rule C5).
//
// Backend contract (see DESIGN.md "Kernel layer & SoA layout"):
//  - elementwise kernels (no cross-lane reduction) are bit-identical
//    between backends: each output element sees the exact same chain of
//    IEEE operations in the same order;
//  - reduction kernels may reassociate across lanes under AVX2 and carry
//    a documented, test-enforced tolerance (tests/test_kernels.cpp);
//  - the scalar backend always reproduces today's sequential loops
//    bit-for-bit, so golden BER fixtures pin the pipeline down.
#pragma once

#include <cstddef>

namespace rt::kernels {

/// Scalar reference pack: one lane, plain IEEE double arithmetic. The
/// generic kernels in kernels_scalar.cpp are written against this shape
/// so the scalar and SIMD bodies share structure reviewably.
template <typename T>
struct batch {
  static constexpr std::size_t width = 1;
  T v;

  static batch load(const T* p) { return {p[0]}; }
  static batch broadcast(T x) { return {x}; }
  void store(T* p) const { p[0] = v; }

  friend batch operator+(batch a, batch b) { return {a.v + b.v}; }
  friend batch operator-(batch a, batch b) { return {a.v - b.v}; }
  friend batch operator*(batch a, batch b) { return {a.v * b.v}; }
  friend batch operator/(batch a, batch b) { return {a.v / b.v}; }
};

}  // namespace rt::kernels
