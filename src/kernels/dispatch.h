// Backend dispatch / SIMD pack layer. This header is the ONLY file in the
// repository allowed to contain intrinsics (`immintrin.h`) -- rt_check
// rule C5 enforces that; kernels_avx2.cpp is written entirely against the
// wrappers below.
//
// The AVX2 section is compiled only inside the kernels_avx2.cpp TU (built
// with -mavx2 -mfma -ffp-contract=off when RT_SIMD=ON); everywhere else
// this header degrades to the portable scalar batch from batch.h.
//
// vpack4d / vpack8f are the AVX2 backends of the `kernels::batch<T>`
// abstraction (4 doubles / 8 floats per 256-bit register). They carry the
// extra lane-shuffle helpers the complex-arithmetic kernels need; the
// scalar batch<T> never needs them because one lane has no pairs to
// shuffle.
//
// FMA policy: `fmadd`/`fnmadd` fuse, so they may only be used in
// REDUCTION kernels (whose cross-backend tolerance is documented and
// test-enforced). Elementwise kernels must use the plain operators -- the
// TU is built with -ffp-contract=off, so those never contract and stay
// bit-identical to the scalar backend.
#pragma once

#include <cstddef>

#include "kernels/batch.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rt::kernels::avx2 {

/// Mask with the low `n` (0..4) 64-bit lanes enabled, for maskload /
/// maskstore tail handling.
inline __m256i tail_mask4(std::size_t n) {
  alignas(32) static constexpr long long kLanes[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kLanes + (4 - n)));
}

/// 4-wide double pack (AVX2 backend of kernels::batch<double>).
struct vpack4d {
  __m256d v;
  static constexpr std::size_t width = 4;

  static vpack4d load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static vpack4d load_partial(const double* p, std::size_t n) {
    return {_mm256_maskload_pd(p, tail_mask4(n))};
  }
  static vpack4d broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static vpack4d zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_partial(double* p, std::size_t n) const {
    _mm256_maskstore_pd(p, tail_mask4(n), v);
  }

  friend vpack4d operator+(vpack4d a, vpack4d b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend vpack4d operator-(vpack4d a, vpack4d b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend vpack4d operator*(vpack4d a, vpack4d b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend vpack4d operator/(vpack4d a, vpack4d b) { return {_mm256_div_pd(a.v, b.v)}; }
};

/// 8-wide float pack (AVX2 backend of kernels::batch<float>). Present for
/// completeness of the batch abstraction; the pipeline is double-typed.
struct vpack8f {
  __m256 v;
  static constexpr std::size_t width = 8;

  static vpack8f load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static vpack8f broadcast(float x) { return {_mm256_set1_ps(x)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend vpack8f operator+(vpack8f a, vpack8f b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend vpack8f operator-(vpack8f a, vpack8f b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend vpack8f operator*(vpack8f a, vpack8f b) { return {_mm256_mul_ps(a.v, b.v)}; }
};

inline vpack4d min(vpack4d a, vpack4d b) { return {_mm256_min_pd(a.v, b.v)}; }
inline vpack4d max(vpack4d a, vpack4d b) { return {_mm256_max_pd(a.v, b.v)}; }

/// Lanewise a != b (full mask on true).
inline vpack4d cmp_neq(vpack4d a, vpack4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_OQ)};
}

/// Lanewise a == b (full mask on true). IEEE equality: -0 == +0.
inline vpack4d cmp_eq(vpack4d a, vpack4d b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}

/// Packs each lane's sign bit into the low 4 result bits. On a compare
/// mask this reads "which lanes are true": 0x0 = none, 0xF = all.
inline int movemask(vpack4d x) { return _mm256_movemask_pd(x.v); }

/// Lanewise mask ? yes : no.
inline vpack4d select(vpack4d mask, vpack4d yes, vpack4d no) {
  return {_mm256_blendv_pd(no.v, yes.v, mask.v)};
}

/// [x1, x0, x3, x2] -- swaps re/im within each interleaved complex pair.
inline vpack4d swap_pairs(vpack4d x) { return {_mm256_permute_pd(x.v, 0b0101)}; }

/// [x0, x0, x2, x2] -- duplicates the real (even) lane of each pair.
inline vpack4d dup_even(vpack4d x) { return {_mm256_movedup_pd(x.v)}; }

/// [x1, x1, x3, x3] -- duplicates the imaginary (odd) lane of each pair.
inline vpack4d dup_odd(vpack4d x) { return {_mm256_permute_pd(x.v, 0b1111)}; }

/// Exact sign flip (XOR) of every lane: IEEE negation, not 0 - x.
inline vpack4d neg(vpack4d x) {
  const __m256d sign = _mm256_castsi256_pd(_mm256_set1_epi64x(0x8000000000000000LL));
  return {_mm256_xor_pd(x.v, sign)};
}

/// Exact sign flip (XOR) of the even lanes: [-x0, x1, -x2, x3].
inline vpack4d neg_even(vpack4d x) {
  const __m256d sign = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0x8000000000000000LL, 0, 0x8000000000000000LL, 0));
  return {_mm256_xor_pd(x.v, sign)};
}

/// Exact sign flip (XOR) of the odd lanes: [x0, -x1, x2, -x3].
inline vpack4d neg_odd(vpack4d x) {
  const __m256d sign = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, 0x8000000000000000LL, 0, 0x8000000000000000LL));
  return {_mm256_xor_pd(x.v, sign)};
}

/// [re, im, re, im] -- one complex constant across both pair slots.
inline vpack4d broadcast_pair(double re, double im) {
  return {_mm256_setr_pd(re, im, re, im)};
}

/// Loads 2 doubles and pairwise-duplicates them: [p0, p0, p1, p1] (real
/// taps stretched across interleaved complex lanes).
inline vpack4d load_dup2(const double* p) {
  const __m256d two = _mm256_castpd128_pd256(_mm_loadu_pd(p));
  return {_mm256_permute4x64_pd(two, 0x50)};
}

/// Fused a*b + acc. Reduction kernels only (see FMA policy above).
inline vpack4d fmadd(vpack4d a, vpack4d b, vpack4d acc) {
  return {_mm256_fmadd_pd(a.v, b.v, acc.v)};
}

/// Fused -(a*b) + acc. Reduction kernels only.
inline vpack4d fnmadd(vpack4d a, vpack4d b, vpack4d acc) {
  return {_mm256_fnmadd_pd(a.v, b.v, acc.v)};
}

/// Horizontal sum in the fixed order (l0 + l1) + (l2 + l3).
inline double reduce_add(vpack4d x) {
  alignas(32) double l[4];
  _mm256_store_pd(l, x.v);
  return (l[0] + l[1]) + (l[2] + l[3]);
}

/// Spills the four lanes for custom cross-lane combines (complex
/// reductions recombine re/im lanes themselves).
inline void lanes(vpack4d x, double out[4]) { _mm256_storeu_pd(out, x.v); }

}  // namespace rt::kernels::avx2

#endif  // __AVX2__
