// rt-lint: no-preconditions (leaf math kernels: same contract as
// kernels_scalar.cpp, which is the specification for these bodies)
// AVX2 backend. Built only when RT_SIMD=ON, with per-file flags
// -mavx2 -mfma -ffp-contract=off (src/kernels/CMakeLists.txt).
//
// Written entirely against the pack wrappers in dispatch.h -- no
// intrinsics here (rt_check C5 allows them in dispatch.h only).
//
// Equivalence notes against kernels_scalar.cpp (the specification):
//  - elementwise kernels use only the plain lane operators (+,-,*,/),
//    XOR sign flips and lane selects, with contraction disabled, so each
//    output element runs the scalar op chain bit-for-bit;
//  - reduction kernels accumulate in 4 independent lanes with explicit
//    FMA and combine in a fixed order, which reassociates relative to the
//    scalar left-to-right sum: tests/test_kernels.cpp enforces the
//    documented <= 1e-12 relative tolerance;
//  - small fixed-size or shuffle-only helpers (split_complex,
//    phase_score_max, cdotu) forward to the scalar backend: they are not
//    on the measured hot paths and forwarding keeps them bit-identical
//    by construction.
#include <algorithm>
#include <cmath>
#include <complex>

#include "kernels/dispatch.h"
#include "kernels/kernels.h"

#if !defined(__AVX2__)
#error "kernels_avx2.cpp must be compiled with -mavx2 (see src/kernels/CMakeLists.txt)"
#endif

namespace rt::kernels::avx2 {

namespace {

constexpr double kMaxSubstep = 10e-6;  // mirrors lcm/lc_cell.cpp

constexpr std::size_t kMaxDfeTerms = 32;  // stack cap for hoisted weights

inline const double* as_doubles(const Complex* p) {
  return reinterpret_cast<const double*>(p);
}
inline double* as_doubles(Complex* p) { return reinterpret_cast<double*>(p); }

}  // namespace

void lc_step(std::size_t n, double dt, const double* drive, double* c, double* s,
             const LcBankParams& p) {
  if (dt <= 0.0) return;
  const vpack4d one = vpack4d::broadcast(1.0);
  const vpack4d zero = vpack4d::zero();
  const vpack4d k_mem = vpack4d::broadcast(p.k_mem);
  const vpack4d tau_slow = vpack4d::broadcast(p.tau_slow);
  const vpack4d tau_memory = vpack4d::broadcast(p.tau_memory);
  const vpack4d two = vpack4d::broadcast(2.0);
  for (std::size_t i = 0; i < n; i += vpack4d::width) {
    const std::size_t m = std::min(vpack4d::width, n - i);
    const bool full = m == vpack4d::width;
    const auto part = [&](const double* ptr) {
      return full ? vpack4d::load(ptr) : vpack4d::load_partial(ptr, m);
    };
    // Masked tail lanes load 0.0; their (finite or inf) garbage results
    // are discarded by the masked store below.
    const vpack4d mask_d = cmp_neq(part(drive + i), zero);
    const vpack4d tc = part(p.tau_charge + i);
    const vpack4d tr = part(p.tau_relax + i);
    vpack4d ci = part(c + i);
    vpack4d si = part(s + i);
    const auto fc = [&](vpack4d cc, vpack4d ss) {
      const vpack4d tau = tc * (one + k_mem * (one - ss));
      const vpack4d fd = (one - cc) / tau;
      const vpack4d fr = neg(cc) * (one - cc) / tr - cc / tau_slow;
      return select(mask_d, fd, fr);
    };
    const auto fs = [&](vpack4d cc, vpack4d ss) { return (cc - ss) / tau_memory; };
    double remaining = dt;
    while (remaining > 0.0) {
      const double h = std::min(remaining, kMaxSubstep);
      const vpack4d hh = vpack4d::broadcast(0.5 * h);
      const vpack4d hv = vpack4d::broadcast(h);
      const vpack4d hd6 = vpack4d::broadcast(h / 6.0);
      const vpack4d k1c = fc(ci, si);
      const vpack4d k1s = fs(ci, si);
      const vpack4d k2c = fc(ci + hh * k1c, si + hh * k1s);
      const vpack4d k2s = fs(ci + hh * k1c, si + hh * k1s);
      const vpack4d k3c = fc(ci + hh * k2c, si + hh * k2s);
      const vpack4d k3s = fs(ci + hh * k2c, si + hh * k2s);
      const vpack4d k4c = fc(ci + hv * k3c, si + hv * k3s);
      const vpack4d k4s = fs(ci + hv * k3c, si + hv * k3s);
      ci = ci + hd6 * (k1c + two * k2c + two * k3c + k4c);
      si = si + hd6 * (k1s + two * k2s + two * k3s + k4s);
      ci = min(max(ci, zero), one);
      si = min(max(si, zero), one);
      remaining -= h;
    }
    if (full) {
      ci.store(c + i);
      si.store(s + i);
    } else {
      ci.store_partial(c + i, m);
      si.store_partial(s + i, m);
    }
  }
}

namespace {

// One 4-pixel group's segment state for lc_step_run: the drive mask and
// taus are segment constants, the (c, s) registers carry across samples.
struct LcGroup {
  vpack4d mask_d, tc, tr, ci, si;
  int mm = 0;
  std::size_t i = 0;   // first pixel index
  std::size_t m = 0;   // live lanes (tail groups < width)
};

}  // namespace

// Segment form of lc_step (kernels_scalar.cpp holds the contract). Three
// structural speedups on top of the vector math, all bit-exact:
//  - the drive mask is constant over the segment, so each 4-pixel group
//    commits to a specialized ODE body once: all-released and all-driven
//    groups evaluate only their own branch (lc_step's blend computes
//    both every substep), and only mixed groups pay for the select;
//  - a fully released group sitting exactly at (c, s) = (0, 0) is at a
//    fixed point of the discrete update (every derivative term is a
//    signed zero, and ci + (+/-0) then the clamp land back on +0), so
//    its rows fill with zeros without stepping. This is the idle state
//    between reset and a packet's first firing;
//  - groups advance through the segment in PAIRS: one group's RK4 is a
//    serial chain of divisions the core cannot overlap with itself, so
//    interleaving two independent groups roughly doubles the exposed
//    ILP. Lanes never mix across groups, so results are unchanged.
void lc_step_run(std::size_t n, std::size_t t_steps, double dt, const double* drive, double* c,
                 double* s, double* c_out, const LcBankParams& p) {
  if (dt <= 0.0) {
    for (std::size_t t = 0; t < t_steps; ++t)
      for (std::size_t i = 0; i < n; ++i) c_out[t * n + i] = c[i];
    return;
  }
  const vpack4d one = vpack4d::broadcast(1.0);
  const vpack4d zero = vpack4d::zero();
  const vpack4d k_mem = vpack4d::broadcast(p.k_mem);
  const vpack4d tau_slow = vpack4d::broadcast(p.tau_slow);
  const vpack4d tau_memory = vpack4d::broadcast(p.tau_memory);
  const vpack4d two = vpack4d::broadcast(2.0);

  // Masked tail lanes load 0.0 (a released pixel at rest); their
  // (finite, inf or NaN) garbage results never cross lanes and the
  // masked stores below discard them.
  const auto load_group = [&](std::size_t i) {
    LcGroup g;
    g.i = i;
    g.m = std::min(vpack4d::width, n - i);
    const bool full = g.m == vpack4d::width;
    const auto part = [&](const double* ptr) {
      return full ? vpack4d::load(ptr) : vpack4d::load_partial(ptr, g.m);
    };
    g.mask_d = cmp_neq(part(drive + i), zero);
    g.mm = movemask(g.mask_d);
    g.ci = part(c + i);
    g.si = part(s + i);
    g.tc = part(p.tau_charge + i);
    g.tr = part(p.tau_relax + i);
    return g;
  };
  const auto store_row = [&](const LcGroup& g, std::size_t t, vpack4d v) {
    if (g.m == vpack4d::width) {
      v.store(c_out + t * n + g.i);
    } else {
      v.store_partial(c_out + t * n + g.i, g.m);
    }
  };
  const auto store_state = [&](const LcGroup& g, vpack4d cv, vpack4d sv) {
    if (g.m == vpack4d::width) {
      cv.store(c + g.i);
      sv.store(s + g.i);
    } else {
      cv.store_partial(c + g.i, g.m);
      sv.store_partial(s + g.i, g.m);
    }
  };
  const auto at_rest = [&](const LcGroup& g) {
    return g.mm == 0 && movemask(cmp_eq(g.ci, zero)) == 0xF &&
           movemask(cmp_eq(g.si, zero)) == 0xF;
  };
  const auto fill_zeros = [&](const LcGroup& g) {
    for (std::size_t t = 0; t < t_steps; ++t) store_row(g, t, zero);
    store_state(g, zero, zero);
  };
  const auto fd_for = [&](const LcGroup& g) {
    return [&, tc = g.tc](vpack4d cc, vpack4d ss) {
      const vpack4d tau = tc * (one + k_mem * (one - ss));
      return (one - cc) / tau;
    };
  };
  const auto fr_for = [&](const LcGroup& g) {
    return [&, tr = g.tr](vpack4d cc, vpack4d ss) {
      static_cast<void>(ss);
      return neg(cc) * (one - cc) / tr - cc / tau_slow;
    };
  };
  const auto sel_for = [&](const LcGroup& g) {
    return [&, fd = fd_for(g), fr = fr_for(g), mask = g.mask_d](vpack4d cc, vpack4d ss) {
      return select(mask, fd(cc, ss), fr(cc, ss));
    };
  };
  const auto fs = [&](vpack4d cc, vpack4d ss) { return (cc - ss) / tau_memory; };
  const auto substep = [&](auto& fc, vpack4d& ci, vpack4d& si, vpack4d hh, vpack4d hv,
                           vpack4d hd6) {
    const vpack4d k1c = fc(ci, si);
    const vpack4d k1s = fs(ci, si);
    const vpack4d k2c = fc(ci + hh * k1c, si + hh * k1s);
    const vpack4d k2s = fs(ci + hh * k1c, si + hh * k1s);
    const vpack4d k3c = fc(ci + hh * k2c, si + hh * k2s);
    const vpack4d k3s = fs(ci + hh * k2c, si + hh * k2s);
    const vpack4d k4c = fc(ci + hv * k3c, si + hv * k3s);
    const vpack4d k4s = fs(ci + hv * k3c, si + hv * k3s);
    ci = ci + hd6 * (k1c + two * k2c + two * k3c + k4c);
    si = si + hd6 * (k1s + two * k2s + two * k3s + k4s);
    ci = min(max(ci, zero), one);
    si = min(max(si, zero), one);
  };
  const auto run_one = [&](LcGroup& g, auto fc) {
    for (std::size_t t = 0; t < t_steps; ++t) {
      double remaining = dt;
      while (remaining > 0.0) {
        const double h = std::min(remaining, kMaxSubstep);
        const vpack4d hh = vpack4d::broadcast(0.5 * h);
        const vpack4d hv = vpack4d::broadcast(h);
        const vpack4d hd6 = vpack4d::broadcast(h / 6.0);
        substep(fc, g.ci, g.si, hh, hv, hd6);
        remaining -= h;
      }
      store_row(g, t, g.ci);
    }
    store_state(g, g.ci, g.si);
  };
  const auto run_pair = [&](LcGroup& a, LcGroup& b, auto fca, auto fcb) {
    for (std::size_t t = 0; t < t_steps; ++t) {
      double remaining = dt;
      while (remaining > 0.0) {
        const double h = std::min(remaining, kMaxSubstep);
        const vpack4d hh = vpack4d::broadcast(0.5 * h);
        const vpack4d hv = vpack4d::broadcast(h);
        const vpack4d hd6 = vpack4d::broadcast(h / 6.0);
        substep(fca, a.ci, a.si, hh, hv, hd6);
        substep(fcb, b.ci, b.si, hh, hv, hd6);
        remaining -= h;
      }
      store_row(a, t, a.ci);
      store_row(b, t, b.ci);
    }
    store_state(a, a.ci, a.si);
    store_state(b, b.ci, b.si);
  };
  const auto dispatch_one = [&](LcGroup& g) {
    if (at_rest(g)) {
      fill_zeros(g);
    } else if (g.mm == 0) {
      run_one(g, fr_for(g));
    } else if (g.mm == 0xF) {
      run_one(g, fd_for(g));
    } else {
      run_one(g, sel_for(g));
    }
  };
  std::size_t i = 0;
  for (; i + 2 * vpack4d::width <= n; i += 2 * vpack4d::width) {
    LcGroup a = load_group(i);
    LcGroup b = load_group(i + vpack4d::width);
    const bool rest_a = at_rest(a);
    const bool rest_b = at_rest(b);
    if (rest_a || rest_b) {
      // At most one group steps; the single-group bodies keep their own
      // specialization.
      if (rest_a) fill_zeros(a); else dispatch_one(a);
      if (rest_b) fill_zeros(b); else dispatch_one(b);
      continue;
    }
    if (a.mm == 0 && b.mm == 0) {
      run_pair(a, b, fr_for(a), fr_for(b));
    } else {
      run_pair(a, b, sel_for(a), sel_for(b));
    }
  }
  for (; i < n; i += vpack4d::width) {
    LcGroup g = load_group(i);
    dispatch_one(g);
  }
}

void wl_transform(std::size_t n, const Complex* src, Complex* dst, Complex a, Complex b,
                  Complex c) {
  const std::size_t n2 = n & ~std::size_t{1};
  const vpack4d ar = vpack4d::broadcast(a.real());
  const vpack4d ai = vpack4d::broadcast(a.imag());
  const vpack4d br = vpack4d::broadcast(b.real());
  const vpack4d bi = vpack4d::broadcast(b.imag());
  const vpack4d cv = broadcast_pair(c.real(), c.imag());
  const double* sp = as_doubles(src);
  double* dp = as_doubles(dst);
  for (std::size_t i = 0; i < n2; i += 2) {
    const vpack4d x = vpack4d::load(sp + 2 * i);
    const vpack4d ax = ar * x + neg_even(ai * swap_pairs(x));
    const vpack4d xc = neg_odd(x);  // conj: exact sign flip of im lanes
    const vpack4d bxc = br * xc + neg_even(bi * swap_pairs(xc));
    (ax + bxc + cv).store(dp + 2 * i);
  }
  if (n2 != n) scalar::wl_transform(1, src + n2, dst + n2, a, b, c);
}

void cscale(std::size_t n, Complex* x, const Complex* g) {
  const std::size_t n2 = n & ~std::size_t{1};
  double* xp = as_doubles(x);
  const double* gp = as_doubles(g);
  for (std::size_t i = 0; i < n2; i += 2) {
    const vpack4d xv = vpack4d::load(xp + 2 * i);
    const vpack4d gv = vpack4d::load(gp + 2 * i);
    (dup_even(gv) * xv + neg_even(dup_odd(gv) * swap_pairs(xv))).store(xp + 2 * i);
  }
  if (n2 != n) scalar::cscale(1, x + n2, g + n2);
}

void accum_real(std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < n; i += vpack4d::width) {
    const std::size_t m = std::min(vpack4d::width, n - i);
    if (m == vpack4d::width) {
      (vpack4d::load(y + i) + vpack4d::load(x + i)).store(y + i);
    } else {
      (vpack4d::load_partial(y + i, m) + vpack4d::load_partial(x + i, m))
          .store_partial(y + i, m);
    }
  }
}

void axpy_sub_real(std::size_t n, double a, const double* x, double* y) {
  const vpack4d av = vpack4d::broadcast(a);
  for (std::size_t i = 0; i < n; i += vpack4d::width) {
    const std::size_t m = std::min(vpack4d::width, n - i);
    if (m == vpack4d::width) {
      (vpack4d::load(y + i) - av * vpack4d::load(x + i)).store(y + i);
    } else {
      (vpack4d::load_partial(y + i, m) - av * vpack4d::load_partial(x + i, m))
          .store_partial(y + i, m);
    }
  }
}

void axpy_sub_cplx(std::size_t n, Complex a, const Complex* x, Complex* y) {
  const std::size_t n2 = n & ~std::size_t{1};
  const vpack4d ar = vpack4d::broadcast(a.real());
  const vpack4d ai = vpack4d::broadcast(a.imag());
  const double* xp = as_doubles(x);
  double* yp = as_doubles(y);
  for (std::size_t i = 0; i < n2; i += 2) {
    const vpack4d xv = vpack4d::load(xp + 2 * i);
    const vpack4d p = ar * xv + neg_even(ai * swap_pairs(xv));
    (vpack4d::load(yp + 2 * i) - p).store(yp + 2 * i);
  }
  if (n2 != n) scalar::axpy_sub_cplx(1, a, x + n2, y + n2);
}

void caxpy_real(std::size_t n, Complex a, const double* x, Complex* y) {
  const std::size_t n2 = n & ~std::size_t{1};
  const vpack4d av = broadcast_pair(a.real(), a.imag());
  double* yp = as_doubles(y);
  for (std::size_t i = 0; i < n2; i += 2) {
    (vpack4d::load(yp + 2 * i) + av * load_dup2(x + i)).store(yp + 2 * i);
  }
  if (n2 != n) scalar::caxpy_real(1, a, x + n2, y + n2);
}

void split_complex(std::size_t n, const Complex* x, double* re, double* im) {
  scalar::split_complex(n, x, re, im);
}

void dfe_residual(std::size_t n, const Complex* src, Complex* dst, const CTerm* terms,
                  std::size_t n_terms) {
  if (n_terms > kMaxDfeTerms) {
    scalar::dfe_residual(n, src, dst, terms, n_terms);
    return;
  }
  vpack4d wr[kMaxDfeTerms];
  vpack4d wi[kMaxDfeTerms];
  for (std::size_t t = 0; t < n_terms; ++t) {
    wr[t] = vpack4d::broadcast(terms[t].w.real());
    wi[t] = vpack4d::broadcast(terms[t].w.imag());
  }
  const std::size_t n2 = n & ~std::size_t{1};
  const double* sp = as_doubles(src);
  double* dp = as_doubles(dst);
  for (std::size_t k = 0; k < n2; k += 2) {
    vpack4d e = vpack4d::load(sp + 2 * k);
    for (std::size_t t = 0; t < n_terms; ++t) {
      const vpack4d tm = vpack4d::load(as_doubles(terms[t].tmpl) + 2 * k);
      e = e - (wr[t] * tm + neg_even(wi[t] * swap_pairs(tm)));
    }
    e.store(dp + 2 * k);
  }
  if (n2 != n) {
    // Re-base each template at the tail element before handing off.
    CTerm tail[kMaxDfeTerms];
    for (std::size_t t = 0; t < n_terms; ++t) tail[t] = {terms[t].tmpl + n2, terms[t].w};
    scalar::dfe_residual(1, src + n2, dst + n2, tail, n_terms);
  }
}

double phase_score_max(std::size_t k, const double* rot_re, const double* rot_im, double c_re,
                       double c_im) {
  return scalar::phase_score_max(k, rot_re, rot_im, c_re, c_im);
}

double dot_real(std::size_t n, const double* a, const double* b) {
  const std::size_t n4 = n & ~std::size_t{3};
  vpack4d acc = vpack4d::zero();
  for (std::size_t i = 0; i < n4; i += 4) {
    acc = fmadd(vpack4d::load(a + i), vpack4d::load(b + i), acc);
  }
  double s = reduce_add(acc);
  for (std::size_t i = n4; i < n; ++i) s += a[i] * b[i];
  return s;
}

Complex cdotc(std::size_t n, const Complex* a, const Complex* b) {
  const std::size_t n2 = n & ~std::size_t{1};
  vpack4d acc_rr = vpack4d::zero();  // lanes ar*br, ai*bi -> re
  vpack4d acc_ri = vpack4d::zero();  // lanes ar*bi, ai*br -> im
  const double* ap = as_doubles(a);
  const double* bp = as_doubles(b);
  for (std::size_t i = 0; i < n2; i += 2) {
    const vpack4d va = vpack4d::load(ap + 2 * i);
    const vpack4d vb = vpack4d::load(bp + 2 * i);
    acc_rr = fmadd(va, vb, acc_rr);
    acc_ri = fmadd(va, swap_pairs(vb), acc_ri);
  }
  double lr[4];
  double li[4];
  lanes(acc_rr, lr);
  lanes(acc_ri, li);
  double re = (lr[0] + lr[1]) + (lr[2] + lr[3]);
  double im = (li[0] - li[1]) + (li[2] - li[3]);
  for (std::size_t i = n2; i < n; ++i) {
    const Complex t = std::conj(a[i]) * b[i];
    re += t.real();
    im += t.imag();
  }
  return Complex{re, im};
}

Complex cdotu(std::size_t n, const Complex* a, const Complex* b) {
  return scalar::cdotu(n, a, b);
}

double sum_sq_real(std::size_t n, const double* x) {
  const std::size_t n4 = n & ~std::size_t{3};
  vpack4d acc = vpack4d::zero();
  for (std::size_t i = 0; i < n4; i += 4) {
    const vpack4d v = vpack4d::load(x + i);
    acc = fmadd(v, v, acc);
  }
  double s = reduce_add(acc);
  for (std::size_t i = n4; i < n; ++i) s += x[i] * x[i];
  return s;
}

double sum_norm_cplx(std::size_t n, const Complex* x) {
  // |z|^2 summed over interleaved lanes == sum of squares of 2n doubles.
  return avx2::sum_sq_real(2 * n, as_doubles(x));
}

CorrStats corr_stats(std::size_t n, const Complex* ref, const Complex* x) {
  const std::size_t n2 = n & ~std::size_t{1};
  vpack4d acc_rr = vpack4d::zero();
  vpack4d acc_ri = vpack4d::zero();
  vpack4d acc_w = vpack4d::zero();
  vpack4d acc_e = vpack4d::zero();
  const double* rp = as_doubles(ref);
  const double* xp = as_doubles(x);
  for (std::size_t i = 0; i < n2; i += 2) {
    const vpack4d r = vpack4d::load(rp + 2 * i);
    const vpack4d v = vpack4d::load(xp + 2 * i);
    acc_rr = fmadd(r, v, acc_rr);
    acc_ri = fmadd(r, swap_pairs(v), acc_ri);
    acc_w = acc_w + v;
    acc_e = fmadd(v, v, acc_e);
  }
  double lr[4];
  double li[4];
  double lw[4];
  lanes(acc_rr, lr);
  lanes(acc_ri, li);
  lanes(acc_w, lw);
  CorrStats st{};
  st.acc = Complex{(lr[0] + lr[1]) + (lr[2] + lr[3]), (li[0] - li[1]) + (li[2] - li[3])};
  st.wsum = Complex{lw[0] + lw[2], lw[1] + lw[3]};
  st.wenergy = reduce_add(acc_e);
  for (std::size_t i = n2; i < n; ++i) {
    const Complex v = x[i];
    st.acc += std::conj(ref[i]) * v;
    st.wsum += v;
    st.wenergy += std::norm(v);
  }
  return st;
}

CorrStats corr_stats_split(std::size_t n, const double* ref_re, const double* ref_im,
                           const double* x_re, const double* x_im) {
  const std::size_t n4 = n & ~std::size_t{3};
  vpack4d a_re = vpack4d::zero();
  vpack4d a_im = vpack4d::zero();
  vpack4d a_wr = vpack4d::zero();
  vpack4d a_wi = vpack4d::zero();
  vpack4d a_e = vpack4d::zero();
  for (std::size_t i = 0; i < n4; i += 4) {
    const vpack4d rr = vpack4d::load(ref_re + i);
    const vpack4d ri = vpack4d::load(ref_im + i);
    const vpack4d xr = vpack4d::load(x_re + i);
    const vpack4d xi = vpack4d::load(x_im + i);
    a_re = fmadd(ri, xi, fmadd(rr, xr, a_re));
    a_im = fnmadd(ri, xr, fmadd(rr, xi, a_im));
    a_wr = a_wr + xr;
    a_wi = a_wi + xi;
    a_e = fmadd(xi, xi, fmadd(xr, xr, a_e));
  }
  double re = reduce_add(a_re);
  double im = reduce_add(a_im);
  double wr = reduce_add(a_wr);
  double wi = reduce_add(a_wi);
  double we = reduce_add(a_e);
  for (std::size_t i = n4; i < n; ++i) {
    const double xr = x_re[i];
    const double xi = x_im[i];
    re += ref_re[i] * xr + ref_im[i] * xi;
    im += ref_re[i] * xi - ref_im[i] * xr;
    wr += xr;
    wi += xi;
    we += xr * xr + xi * xi;
  }
  return CorrStats{Complex{re, im}, Complex{wr, wi}, we};
}

double dfe_score(std::size_t n, const Complex* residual, const CTerm* terms,
                 std::size_t n_terms) {
  if (n_terms > kMaxDfeTerms) return scalar::dfe_score(n, residual, terms, n_terms);
  vpack4d wr[kMaxDfeTerms];
  vpack4d wi[kMaxDfeTerms];
  for (std::size_t t = 0; t < n_terms; ++t) {
    wr[t] = vpack4d::broadcast(terms[t].w.real());
    wi[t] = vpack4d::broadcast(terms[t].w.imag());
  }
  const std::size_t n2 = n & ~std::size_t{1};
  const double* rp = as_doubles(residual);
  vpack4d acc = vpack4d::zero();
  for (std::size_t k = 0; k < n2; k += 2) {
    vpack4d e = vpack4d::load(rp + 2 * k);
    for (std::size_t t = 0; t < n_terms; ++t) {
      const vpack4d tm = vpack4d::load(as_doubles(terms[t].tmpl) + 2 * k);
      e = e - (wr[t] * tm + neg_even(wi[t] * swap_pairs(tm)));
    }
    acc = fmadd(e, e, acc);
  }
  double score = reduce_add(acc);
  if (n2 != n) {
    // Re-base each template at the tail element before handing off.
    CTerm tail[kMaxDfeTerms];
    for (std::size_t t = 0; t < n_terms; ++t) tail[t] = {terms[t].tmpl + n2, terms[t].w};
    score += scalar::dfe_score(1, residual + n2, tail, n_terms);
  }
  return score;
}

Complex fir_dot(std::size_t nt, const double* taps, const double* taps_rev, const Complex* xw) {
  static_cast<void>(taps);
  const std::size_t n2 = nt & ~std::size_t{1};
  vpack4d acc = vpack4d::zero();
  const double* xp = as_doubles(xw);
  for (std::size_t k = 0; k < n2; k += 2) {
    acc = fmadd(vpack4d::load(xp + 2 * k), load_dup2(taps_rev + k), acc);
  }
  double l[4];
  lanes(acc, l);
  double re = l[0] + l[2];
  double im = l[1] + l[3];
  for (std::size_t k = n2; k < nt; ++k) {
    re += xw[k].real() * taps_rev[k];
    im += xw[k].imag() * taps_rev[k];
  }
  return Complex{re, im};
}

// sum_k taps[k] * xw[nt-1-k] == dot(taps_rev, xw): the reversed-tap copy
// makes both operands contiguous ascending.
double fir_dot_real(std::size_t nt, const double* taps, const double* taps_rev,
                    const double* xw) {
  static_cast<void>(taps);
  return avx2::dot_real(nt, taps_rev, xw);
}

}  // namespace rt::kernels::avx2
