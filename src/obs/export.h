// Exporters for the observability layer: chrome://tracing JSON, flat
// metrics JSON, and the human-readable per-stage summary table. All of
// this is cold-path code (called once at the end of a bench or test);
// schemas are documented in docs/TELEMETRY.md.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rt::obs {

/// Writes `spans` as a chrome://tracing / Perfetto "traceEvents" array
/// (complete events, ph="X", timestamps in microseconds). Open the file
/// at chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(const std::string& path, std::span<const SpanRecord> spans);

/// Writes the registry as flat JSON (schema "rt-metrics-v2"): a
/// counters object, per-histogram count/min/max with the non-empty
/// log2 buckets as [lower_bound, count] pairs, and per-stage wall-time
/// aggregates (calls/total_us/max_us keyed by span name) when `spans`
/// is provided. `tools/compare_metrics.py` diffs two of these files.
void write_metrics_json(const std::string& path, const MetricsRegistry& m,
                        std::span<const SpanRecord> spans);

/// Overload without span data: the "stages" object is empty.
void write_metrics_json(const std::string& path, const MetricsRegistry& m);

/// Writes `spans` in Brendan Gregg's folded-stack format, one line per
/// distinct span chain: `root;child;leaf <inclusive_us>`, aggregated
/// over every occurrence of that chain (all threads merged) and sorted
/// lexicographically. Feed the file to flamegraph.pl / speedscope, or
/// grep a stage name to read its inclusive share directly.
void write_folded_stacks(const std::string& path, std::span<const SpanRecord> spans);

/// Prints the per-stage wall-time table (aggregated over span names),
/// non-zero counters, and histogram summaries. `out` is typically stdout.
void print_stage_summary(std::FILE* out, const MetricsRegistry& m,
                         std::span<const SpanRecord> spans);

}  // namespace rt::obs
