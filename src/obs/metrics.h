// Pipeline metrics: fixed enum-indexed counters and log2-bucket
// histograms with an associative, commutative merge.
//
// The registry is the numeric half of the observability layer (src/obs):
// every stage of the packet pipeline increments counters / observes
// histogram samples through the RT_OBS_* macros in obs/trace.h. Design
// rules that keep it fit for the zero-allocation hot path and the
// deterministic sweep engine:
//
//   - Fixed shape. Metrics are enum-indexed into std::array storage: no
//     strings, no hashing, no heap, so recording is a load + add and a
//     registry can be copied or returned by value without allocating.
//   - Lock-free by ownership. A registry is only ever written by the one
//     worker that owns it (per PacketWorkspace / per sweep batch);
//     cross-thread aggregation happens by merging snapshots, never by
//     sharing.
//   - Deterministic merge. Counters and histogram buckets are integer
//     sums and min/max is order-free, so any partition of a packet set
//     merges to identical registries -- the same discipline as
//     sim::LinkStats::merge, locked down by tests/test_obs.cpp. (The
//     *samples* of timing histograms such as queue_wait_us are wall-clock
//     readings and therefore run-dependent; every data-derived metric is
//     bit-reproducible.)
//
// The full name/unit/semantics table lives in docs/TELEMETRY.md; the
// rt_lint doc-drift check keeps code and docs in sync.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rt::obs {

/// Monotonic event counters. Keep in sync with kCounterInfo below and the
/// table in docs/TELEMETRY.md.
enum class Counter : std::uint32_t {
  kPacketsSimulated,      ///< packets through the TX->channel->RX pipeline
  kPreambleDetectFail,    ///< packets lost to a failed preamble search
  kPayloadBits,           ///< payload bits carried by simulated packets
  kBitErrors,             ///< payload bit errors (lost packets count all bits)
  kDfeBranchesExpanded,   ///< DFE candidates scored (branches x alphabet)
  kDfeBranchesPruned,     ///< DFE candidates discarded by the K-best cut
  kDfeStateMerges,        ///< Viterbi-style duplicate-state merges
  kLsSolves,              ///< least-squares solves (preamble + training)
  kTrainingSolves,        ///< per-packet online training runs
  kPixelCalSolves,        ///< per-pixel gain-calibration solves
  kSweepBatches,          ///< batches executed by the parallel sweep engine
  kTraceSpansDropped,     ///< spans dropped by full TraceBuffers
  kMacDiscoveryRounds,    ///< slotted-ALOHA discovery rounds run by the MAC
  kMacArqRetries,         ///< stop-and-wait ARQ retransmissions
  kMacRateSwitches,       ///< closed-loop rate-assignment changes
  kStreamSamplesPushed,   ///< IQ samples consumed by the streaming receiver
  kStreamFramesDecoded,   ///< frames the streaming receiver delivered
  kStreamSofRejects,      ///< gate crossings refused by the soft SOF check
  kStreamDecodeRejects,   ///< decode windows the packet pipeline refused
  kStreamTruncatedFrames, ///< frames cut off by end-of-stream at flush
  kFleetRounds,           ///< inventory rounds executed across all readers
  kFleetSlots,            ///< uplink slots granted across all readers
  kFleetPacketsDelivered, ///< fleet uplink packets received intact
  kFleetPacketsLost,      ///< fleet uplink packets lost to channel errors
  kFleetCrossCollisions,  ///< fleet slots corrupted by a neighboring cell
  kFleetTagsDiscovered,   ///< tags resolved by fleet shard discovery
  kCodedFrames,           ///< coded frames through the FEC pipeline
  kCodedCrcFailures,      ///< coded frames whose CRC residue was non-zero
  kCodedSoftDecodes,      ///< coded frames decoded from LLRs (soft path)
  kCodedHardDecodes,      ///< coded frames decoded from sliced bits
  kRsErasuresMarked,      ///< RS byte erasures used by successful GMD retries
  kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

struct CounterInfo {
  const char* name;
  const char* unit;
};

/// Export names and units, indexed by Counter.
inline constexpr std::array<CounterInfo, kNumCounters> kCounterInfo{{
    {"packets_simulated", "packets"},
    {"preamble_detect_failures", "packets"},
    {"payload_bits", "bits"},
    {"bit_errors", "bits"},
    {"dfe_branches_expanded", "candidates"},
    {"dfe_branches_pruned", "candidates"},
    {"dfe_state_merges", "branches"},
    {"ls_solves", "solves"},
    {"training_solves", "solves"},
    {"pixel_cal_solves", "solves"},
    {"sweep_batches", "batches"},
    {"trace_spans_dropped", "spans"},
    {"mac_discovery_rounds", "rounds"},
    {"mac_arq_retries", "retries"},
    {"mac_rate_switches", "switches"},
    {"stream_samples_pushed", "samples"},
    {"stream_frames_decoded", "frames"},
    {"stream_sof_rejects", "windows"},
    {"stream_decode_rejects", "windows"},
    {"stream_truncated_frames", "frames"},
    {"fleet_rounds", "rounds"},
    {"fleet_slots", "slots"},
    {"fleet_packets_delivered", "packets"},
    {"fleet_packets_lost", "packets"},
    {"fleet_cross_collisions", "slots"},
    {"fleet_tags_discovered", "tags"},
    {"coded_frames", "frames"},
    {"coded_crc_failures", "frames"},
    {"coded_soft_decodes", "frames"},
    {"coded_hard_decodes", "frames"},
    {"rs_erasures_marked", "bytes"},
}};

/// Distribution metrics. Keep in sync with kHistogramInfo below and
/// docs/TELEMETRY.md.
enum class Histogram : std::uint32_t {
  kEqualizerResidual,  ///< DFE winning-branch cumulative squared error
  kPreambleResidual,   ///< normalized preamble regression residual
  kQueueWaitUs,        ///< sweep batch queue wait (submit -> start), microseconds
  kAssignedRateIndex,  ///< rate-table index assigned by the closed loop
  kSnrEstimateErrorDb, ///< |estimated - true| uplink SNR, dB
  kFleetDiscoveryRound,///< 1-based round each tag was discovered in
  kFleetShardTags,     ///< tags homed to each reader's shard
  kSoftLlrMeanAbs,     ///< mean |LLR| per soft-decoded frame (margin scale)
  kCount
};

inline constexpr std::size_t kNumHistograms = static_cast<std::size_t>(Histogram::kCount);

struct HistogramInfo {
  const char* name;
  const char* unit;
  bool deterministic;  ///< false: samples are wall-clock, not data-derived
};

/// Export names/units, indexed by Histogram.
inline constexpr std::array<HistogramInfo, kNumHistograms> kHistogramInfo{{
    {"equalizer_residual", "squared-error", true},
    {"preamble_residual", "ratio", true},
    {"queue_wait_us", "us", false},
    {"assigned_rate_index", "index", true},
    {"snr_estimate_error_db", "dB", true},
    {"fleet_discovery_round", "rounds", true},
    {"fleet_shard_tags", "tags", true},
    {"soft_llr_mean_abs", "llr", true},
}};

/// One log2-bucketed distribution. Bucket 0 collects non-positive (and
/// non-finite) samples; bucket i >= 1 covers [2^(i-33), 2^(i-32)), i.e.
/// roughly 2^-32 .. 2^31 with one bucket per octave. Bucket counts,
/// count and min/max all merge associatively and commutatively.
struct HistogramData {
  static constexpr int kBuckets = 64;

  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] static int bucket_index(double v) noexcept {
    if (!(v > 0.0) || !std::isfinite(v)) return 0;
    int e = 0;
    std::frexp(v, &e);  // v = m * 2^e with m in [0.5, 1)
    e += 32;
    return e < 1 ? 1 : (e > kBuckets - 1 ? kBuckets - 1 : e);
  }

  /// Inclusive lower bound of bucket `i` (0 for the sign/zero bucket).
  [[nodiscard]] static double bucket_lower_bound(int i) noexcept {
    return i <= 0 ? 0.0 : std::ldexp(1.0, i - 33);
  }

  void observe(double v) noexcept {
    ++count;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[static_cast<std::size_t>(bucket_index(v))];
  }

  HistogramData& merge(const HistogramData& o) noexcept {
    count += o.count;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    for (int i = 0; i < kBuckets; ++i)
      buckets[static_cast<std::size_t>(i)] += o.buckets[static_cast<std::size_t>(i)];
    return *this;
  }

  void reset() noexcept { *this = HistogramData{}; }

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// The per-worker metrics registry: plain data, value-copyable without
/// heap traffic, merged like sim::LinkStats. A zero-initialized registry
/// is the identity element of merge().
struct MetricsRegistry {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistogramData, kNumHistograms> histograms{};

  void add(Counter c, std::uint64_t n) noexcept {
    counters[static_cast<std::size_t>(c)] += n;
  }
  void observe(Histogram h, double v) noexcept {
    histograms[static_cast<std::size_t>(h)].observe(v);
  }

  [[nodiscard]] std::uint64_t count(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const HistogramData& histogram(Histogram h) const noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }
  [[nodiscard]] HistogramData& histogram(Histogram h) noexcept {
    return histograms[static_cast<std::size_t>(h)];
  }

  /// Accumulates another registry. Integer sums + order-free min/max, so
  /// merging any partition of a run in any order yields identical state.
  MetricsRegistry& merge(const MetricsRegistry& o) noexcept {
    for (std::size_t i = 0; i < kNumCounters; ++i) counters[i] += o.counters[i];
    for (std::size_t i = 0; i < kNumHistograms; ++i) histograms[i].merge(o.histograms[i]);
    return *this;
  }

  void reset() noexcept { *this = MetricsRegistry{}; }

  [[nodiscard]] bool empty() const noexcept {
    for (const auto c : counters)
      if (c != 0) return false;
    for (const auto& h : histograms)
      if (h.count != 0) return false;
    return true;
  }

  friend bool operator==(const MetricsRegistry&, const MetricsRegistry&) = default;
};

}  // namespace rt::obs
