#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>

// rt-lint: no-preconditions (clock/ordinal helpers take no caller input)

namespace rt::obs {

std::int64_t now_ns() noexcept {
  // The epoch is latched on first use; after that a call is one clock
  // read and a subtraction (no allocation, no locks -- safe for the
  // zero-allocation hot path).
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch)
      .count();
}

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::size_t TraceBuffer::default_capacity() {
  if (const char* v = std::getenv("RT_OBS_SPAN_CAPACITY"); v != nullptr && *v != '\0') {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return kDefaultCapacity;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  spans_.reserve(capacity_);
}

bool TraceBuffer::push(const SpanRecord& rec) noexcept {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  spans_.push_back(rec);  // within reserved capacity: cannot allocate or throw
  return true;
}

}  // namespace rt::obs
