// Scoped stage tracing: RT_TRACE_SPAN + the per-workspace TraceBuffer.
//
// This is the timing half of the observability layer. Usage in a stage:
//
//   void Demodulator::demodulate_into(...) {
//     RT_TRACE_SPAN("demodulate");
//     ...
//   }
//
// and once per worker/packet-owner, binding the destination:
//
//   obs::ScopedBind bind(ws.obs);   // thread-local current recorder
//
// Cost model:
//   - RT_OBS=OFF (default): RT_TRACE_SPAN and the RT_OBS_* macros expand
//     to `static_cast<void>(sizeof ...)` -- no code, no data, no
//     dependencies; Recorder is an empty struct so carrying one in
//     PacketWorkspace is free. This mirrors the contract layer's
//     disabled-macro idiom in common/error.h.
//   - RT_OBS=ON: a span is two steady_clock reads plus one push into a
//     TraceBuffer that was fully reserved at construction -- zero
//     steady-state heap allocations (tests/test_alloc.cpp runs against
//     this build in CI). Span names must be string literals (the buffer
//     stores the pointer, not a copy).
//
// The data types (SpanRecord, TraceBuffer) are compiled in both builds so
// exporters, sweep results and tests keep one API; only the recording
// machinery (Recorder, ScopedBind, SpanScope) changes shape.
//
// Span names are part of the documented telemetry schema: every name used
// in src/ or bench/ must appear in docs/TELEMETRY.md (enforced by
// tools/rt_lint.py rule R5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"

#if !defined(RT_OBS_ENABLED)
#define RT_OBS_ENABLED 0
#endif

namespace rt::obs {

/// True when the observability layer is compiled into the hot path
/// (CMake -DRT_OBS=ON). Usable in `if constexpr` from either build.
inline constexpr bool kEnabled = RT_OBS_ENABLED != 0;

/// One closed span. Records are emitted at scope *exit*, so a buffer
/// holds spans in closing order (children before their parent).
struct SpanRecord {
  const char* name = nullptr;  ///< string literal; never owned
  std::int64_t start_ns = 0;   ///< process-epoch monotonic start
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;       ///< dense per-thread ordinal (not the OS id)
  std::uint16_t depth = 0;     ///< nesting depth within the recorder
  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// Fixed-capacity span sink. All storage is reserved at construction, so
/// push() never allocates; once full, further spans are counted as
/// dropped instead of grown into. Defined in every build (exporters and
/// tests use it directly) but only fed by the macros when RT_OBS is on.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

  explicit TraceBuffer(std::size_t capacity = default_capacity());

  /// kDefaultCapacity, overridable via the RT_OBS_SPAN_CAPACITY
  /// environment variable (read once per buffer construction -- cold).
  [[nodiscard]] static std::size_t default_capacity();

  /// Appends a record; returns false (and counts a drop) when full.
  bool push(const SpanRecord& rec) noexcept;

  void clear() noexcept {
    spans_.clear();
    dropped_ = 0;
  }

  [[nodiscard]] std::span<const SpanRecord> spans() const noexcept { return spans_; }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::vector<SpanRecord> spans_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Nanoseconds since a process-local monotonic epoch (first call).
[[nodiscard]] std::int64_t now_ns() noexcept;

/// Dense ordinal of the calling thread (0, 1, 2, ... in first-use order).
[[nodiscard]] std::uint32_t thread_ordinal() noexcept;

#if RT_OBS_ENABLED

/// The per-worker recording context: spans + metrics owned by exactly one
/// thread at a time. Embedded in sim::PacketWorkspace so every pipeline
/// worker gets one for free.
struct Recorder {
  TraceBuffer trace;
  MetricsRegistry metrics;
  std::uint16_t open_depth = 0;  ///< live nesting depth (SpanScope internal)

  void clear() noexcept {
    trace.clear();
    metrics.reset();
    open_depth = 0;
  }
};

namespace detail {
inline Recorder*& current_slot() noexcept {
  thread_local Recorder* cur = nullptr;
  return cur;
}
}  // namespace detail

/// The recorder the calling thread is currently bound to (may be null).
[[nodiscard]] inline Recorder* current_recorder() noexcept { return detail::current_slot(); }

/// RAII thread-local binding of the current recorder. Nests: the previous
/// binding is restored on destruction.
class ScopedBind {
 public:
  explicit ScopedBind(Recorder& r) noexcept : prev_(detail::current_slot()) {
    detail::current_slot() = &r;
  }
  ~ScopedBind() { detail::current_slot() = prev_; }
  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  Recorder* prev_;
};

/// RAII stage timer; emits one SpanRecord into the bound recorder on
/// destruction. No-op (and cheap) when no recorder is bound.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept : rec_(detail::current_slot()) {
    if (rec_ == nullptr) return;
    name_ = name;
    depth_ = rec_->open_depth++;
    start_ns_ = now_ns();
  }
  ~SpanScope() {
    if (rec_ == nullptr) return;
    --rec_->open_depth;
    const std::int64_t end = now_ns();
    if (!rec_->trace.push({name_, start_ns_, end - start_ns_, thread_ordinal(), depth_}))
      rec_->metrics.add(Counter::kTraceSpansDropped, 1);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Recorder* rec_;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint16_t depth_ = 0;
};

inline void add_count(Counter c, std::uint64_t n) noexcept {
  if (Recorder* r = detail::current_slot()) r->metrics.add(c, n);
}
inline void observe(Histogram h, double v) noexcept {
  if (Recorder* r = detail::current_slot()) r->metrics.observe(h, v);
}

#else  // !RT_OBS_ENABLED -- observability compiled out

/// Zero-size placeholder so workspaces can embed a Recorder member
/// unconditionally. test_obs static_asserts that it stays empty.
struct Recorder {
  void clear() noexcept {}
};

/// Accepts (and ignores) a Recorder so call sites compile unchanged.
class ScopedBind {
 public:
  explicit ScopedBind(Recorder& /*unused*/) noexcept {}
  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;
};

inline void add_count(Counter /*c*/, std::uint64_t /*n*/) noexcept {}
inline void observe(Histogram /*h*/, double /*v*/) noexcept {}

#endif  // RT_OBS_ENABLED

}  // namespace rt::obs

// --- Instrumentation macros -------------------------------------------------
// The disabled forms evaluate nothing but keep the operands parsed (the
// same `sizeof` trick as RT_ASSERT in common/error.h), so code cannot
// compile in one configuration and break in the other.

#define RT_OBS_CONCAT_IMPL(a, b) a##b
#define RT_OBS_CONCAT(a, b) RT_OBS_CONCAT_IMPL(a, b)

#if RT_OBS_ENABLED
/// Times the enclosing scope as stage `name` (a string literal; must be
/// documented in docs/TELEMETRY.md).
#define RT_TRACE_SPAN(name) \
  const ::rt::obs::SpanScope RT_OBS_CONCAT(rt_obs_span_, __LINE__)(name)
#else
#define RT_TRACE_SPAN(name) static_cast<void>(sizeof(name))
#endif  // RT_OBS_ENABLED

// Counter/histogram macros expand identically in both builds -- the
// disabled build's add_count/observe are empty inline functions, so the
// enumerator is always name-checked yet the call optimizes away.

/// Adds `n` to counter `c` (an ::rt::obs::Counter enumerator).
#define RT_OBS_COUNT(c, n) ::rt::obs::add_count(::rt::obs::Counter::c, (n))

/// Records sample `v` into histogram `h` (an ::rt::obs::Histogram
/// enumerator).
#define RT_OBS_OBSERVE(h, v) ::rt::obs::observe(::rt::obs::Histogram::h, (v))
