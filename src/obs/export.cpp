#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <map>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace rt::obs {

namespace {

struct StageAgg {
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;
  std::int64_t max_ns = 0;
};

/// Aggregates spans by name, preserving no particular order.
std::map<std::string_view, StageAgg> aggregate(std::span<const SpanRecord> spans) {
  std::map<std::string_view, StageAgg> agg;
  for (const auto& s : spans) {
    if (s.name == nullptr) continue;
    auto& a = agg[s.name];
    ++a.calls;
    a.total_ns += s.dur_ns;
    a.max_ns = std::max(a.max_ns, s.dur_ns);
  }
  return agg;
}

}  // namespace

void write_chrome_trace(const std::string& path, std::span<const SpanRecord> spans) {
  RT_ENSURE(!path.empty(), "trace output path must not be empty");
  std::ofstream out(path, std::ios::trunc);
  RT_ENSURE(out.good(), "failed to open trace output file");
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (s.name == nullptr) continue;
    if (!first) out << ",";
    first = false;
    // Complete ("X") events; chrome://tracing expects microsecond doubles.
    out << "\n{\"name\":\"" << s.name << "\",\"cat\":\"rt\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << s.tid << ",\"ts\":" << static_cast<double>(s.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1e3 << ",\"args\":{\"depth\":"
        << s.depth << "}}";
  }
  out << "\n]}\n";
  RT_ENSURE(out.good(), "failed while writing trace output file");
}

void write_metrics_json(const std::string& path, const MetricsRegistry& m) {
  write_metrics_json(path, m, std::span<const SpanRecord>{});
}

void write_metrics_json(const std::string& path, const MetricsRegistry& m,
                        std::span<const SpanRecord> spans) {
  RT_ENSURE(!path.empty(), "metrics output path must not be empty");
  std::ofstream out(path, std::ios::trunc);
  RT_ENSURE(out.good(), "failed to open metrics output file");
  out << "{\n  \"schema\": \"rt-metrics-v2\",\n  \"counters\": {";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << kCounterInfo[i].name
        << "\": " << m.counters[i];
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const auto& h = m.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << kHistogramInfo[i].name << "\": {\"unit\": \""
        << kHistogramInfo[i].unit << "\", \"count\": " << h.count;
    if (h.count > 0) out << ", \"min\": " << h.min << ", \"max\": " << h.max;
    out << ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < HistogramData::kBuckets; ++b) {
      const auto n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (!first) out << ", ";
      first = false;
      out << "[" << HistogramData::bucket_lower_bound(b) << ", " << n << "]";
    }
    out << "]}";
  }
  out << "\n  },\n  \"stages\": {";
  // std::map keys keep the stage order deterministic across runs.
  const auto agg = aggregate(spans);
  bool first_stage = true;
  for (const auto& [name, a] : agg) {
    out << (first_stage ? "\n" : ",\n") << "    \"" << name << "\": {\"calls\": " << a.calls
        << ", \"total_us\": " << static_cast<double>(a.total_ns) / 1e3
        << ", \"max_us\": " << static_cast<double>(a.max_ns) / 1e3 << "}";
    first_stage = false;
  }
  out << (first_stage ? "}\n}\n" : "\n  }\n}\n");
  RT_ENSURE(out.good(), "failed while writing metrics output file");
}

void write_folded_stacks(const std::string& path, std::span<const SpanRecord> spans) {
  RT_ENSURE(!path.empty(), "folded-stack output path must not be empty");
  // Records are emitted at scope exit (children before parents), so the
  // enclosing chain has to be rebuilt. Sorting by (tid, start, depth)
  // puts every parent immediately before its children; the recorded
  // nesting depth then says exactly how much of the running stack is
  // still open when a span starts.
  std::vector<SpanRecord> sorted(spans.begin(), spans.end());
  std::erase_if(sorted, [](const SpanRecord& s) { return s.name == nullptr; });
  std::sort(sorted.begin(), sorted.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.depth < b.depth;
  });
  std::map<std::string, std::int64_t> agg;  // chain -> inclusive ns
  std::vector<std::string_view> stack;
  std::string chain;
  std::uint32_t cur_tid = 0;
  for (const auto& s : sorted) {
    if (stack.empty() || s.tid != cur_tid) {
      stack.clear();
      cur_tid = s.tid;
    }
    if (stack.size() > s.depth) stack.resize(s.depth);
    stack.push_back(s.name);
    chain.clear();
    for (const auto& frame : stack) {
      if (!chain.empty()) chain.push_back(';');
      chain.append(frame);
    }
    agg[chain] += s.dur_ns;
  }
  std::ofstream out(path, std::ios::trunc);
  RT_ENSURE(out.good(), "failed to open folded-stack output file");
  for (const auto& [key, total_ns] : agg)
    out << key << " " << (total_ns + 500) / 1000 << "\n";
  RT_ENSURE(out.good(), "failed while writing folded-stack output file");
}

void print_stage_summary(std::FILE* out, const MetricsRegistry& m,
                         std::span<const SpanRecord> spans) {
  RT_ENSURE(out != nullptr, "summary output stream must not be null");
  if (spans.empty() && m.empty()) return;

  if (!spans.empty()) {
    const auto agg = aggregate(spans);
    std::vector<std::pair<std::string_view, StageAgg>> rows(agg.begin(), agg.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second.total_ns > b.second.total_ns; });
    std::fprintf(out, "\n  %-18s %10s %12s %12s %12s\n", "stage", "calls", "total_ms",
                 "mean_us", "max_us");
    for (const auto& [name, a] : rows) {
      std::fprintf(out, "  %-18.*s %10" PRIu64 " %12.3f %12.2f %12.2f\n",
                   // rt-lint: narrowing-ok (span names are short string literals)
                   static_cast<int>(name.size()), name.data(), a.calls,
                   static_cast<double>(a.total_ns) / 1e6,
                   static_cast<double>(a.total_ns) / 1e3 / static_cast<double>(a.calls),
                   static_cast<double>(a.max_ns) / 1e3);
    }
  }

  bool header = false;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (m.counters[i] == 0) continue;
    if (!header) {
      std::fprintf(out, "\n  %-28s %14s  %s\n", "counter", "value", "unit");
      header = true;
    }
    std::fprintf(out, "  %-28s %14" PRIu64 "  %s\n", kCounterInfo[i].name, m.counters[i],
                 kCounterInfo[i].unit);
  }

  header = false;
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const auto& h = m.histograms[i];
    if (h.count == 0) continue;
    if (!header) {
      std::fprintf(out, "\n  %-28s %10s %14s %14s  %s\n", "histogram", "count", "min", "max",
                   "unit");
      header = true;
    }
    std::fprintf(out, "  %-28s %10" PRIu64 " %14.6g %14.6g  %s\n", kHistogramInfo[i].name,
                 h.count, h.min, h.max, kHistogramInfo[i].unit);
  }
  std::fprintf(out, "\n");
}

}  // namespace rt::obs
