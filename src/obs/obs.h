// Umbrella header for the observability layer (rt_obs): metrics
// registry, trace spans + instrumentation macros, and exporters.
// See docs/TELEMETRY.md for the telemetry schema and naming rules.
#pragma once

#include "obs/export.h"  // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"  // IWYU pragma: export
