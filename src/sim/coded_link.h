// Coded-frame link harness: FEC-wrapped packets through the LinkSimulator.
//
// Wraps one LinkSimulator with a coding::CodedFrameCodec so every packet
// runs whiten -> FEC encode -> interleave -> TX -> channel -> RX ->
// deinterleave -> (soft or hard) decode -> CRC, measuring the post-decode
// info BER against the raw channel BER -- the soft-vs-hard coding gain the
// Fig. 18b bench sweeps over SNR. Mirrors LinkSimulator's purity contract:
// run_packet is a pure function of (seed, noise_seed, packet_index), and
// CodedLinkStats merges associatively/commutatively, so serial runs equal
// any parallel partition bit for bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

#include "coding/coded_frame.h"
#include "obs/trace.h"
#include "sim/link_sim.h"

namespace rt::sim {

struct CodedPacketOutcome {
  bool preamble_found = false;
  bool decode_ok = false;  ///< FEC converged (RS blocks corrected)
  bool crc_ok = false;
  std::size_t info_bits = 0;
  std::size_t info_bit_errors = 0;  ///< post-decode errors (all bits if lost)
  std::size_t raw_bits = 0;         ///< on-air coded bits
  std::size_t raw_bit_errors = 0;   ///< pre-decode channel errors
  std::size_t erasures_used = 0;    ///< RS erasures in successful GMD retries
  double snr_estimate_db = 0.0;
};

/// Plain-sum statistics (merge is associative and commutative, the same
/// discipline as LinkStats).
struct CodedLinkStats {
  int packets = 0;
  int preamble_failures = 0;
  int crc_failures = 0;  ///< frames with a bad CRC (lost frames included)
  std::size_t info_bits = 0;
  std::size_t info_bit_errors = 0;
  std::size_t raw_bits = 0;
  std::size_t raw_bit_errors = 0;
  std::size_t erasures_used = 0;

  /// Post-decode information-bit error rate.
  [[nodiscard]] double ber() const {
    return info_bits == 0 ? 0.0
                          : static_cast<double>(info_bit_errors) / static_cast<double>(info_bits);
  }
  /// Pre-decode channel bit error rate over the coded stream.
  [[nodiscard]] double raw_ber() const {
    return raw_bits == 0 ? 0.0
                         : static_cast<double>(raw_bit_errors) / static_cast<double>(raw_bits);
  }
  /// Fraction of frames not delivered intact (CRC or preamble failure).
  [[nodiscard]] double frame_error_rate() const {
    return packets == 0 ? 0.0 : static_cast<double>(crc_failures) / packets;
  }

  CodedLinkStats& add(const CodedPacketOutcome& o) {
    ++packets;
    if (!o.preamble_found) ++preamble_failures;
    if (!o.crc_ok) ++crc_failures;
    info_bits += o.info_bits;
    info_bit_errors += o.info_bit_errors;
    raw_bits += o.raw_bits;
    raw_bit_errors += o.raw_bit_errors;
    erasures_used += o.erasures_used;
    return *this;
  }

  CodedLinkStats& merge(const CodedLinkStats& other) {
    packets += other.packets;
    preamble_failures += other.preamble_failures;
    crc_failures += other.crc_failures;
    info_bits += other.info_bits;
    info_bit_errors += other.info_bit_errors;
    raw_bits += other.raw_bits;
    raw_bit_errors += other.raw_bit_errors;
    erasures_used += other.erasures_used;
    return *this;
  }

  friend bool operator==(const CodedLinkStats&, const CodedLinkStats&) = default;
};

class CodedLink {
 public:
  enum class DecodeMode { kSoft, kHard };

  /// `link` must outlive the CodedLink. Soft decoding additionally needs
  /// the simulator built with SimOptions::export_soft_bits.
  CodedLink(const LinkSimulator& link, const coding::CodedFrameConfig& cfg)
      : link_(link), codec_(cfg) {}

  [[nodiscard]] const coding::CodedFrameCodec& codec() const { return codec_; }
  [[nodiscard]] const LinkSimulator& link() const { return link_; }

  /// Runs coded frame `packet_index` carrying `payload_bytes` random info
  /// bytes (drawn from the same payload sub-stream as the uncoded
  /// methodology). Pure in (seed, noise_seed, packet_index); workspaces
  /// must not be shared across threads. A lost preamble counts every info
  /// bit as an error, matching LinkStats' conservative convention.
  [[nodiscard]] CodedPacketOutcome run_packet(std::uint64_t packet_index,
                                              std::size_t payload_bytes, PacketWorkspace& ws,
                                              DecodeMode mode = DecodeMode::kSoft) const {
    RT_ENSURE(payload_bytes >= 1, "need at least one payload byte");
    const obs::ScopedBind obs_bind(ws.obs);
    const std::size_t info_n = payload_bytes * 8;
    // Sub-stream 0 is run_packet's payload stream, so a coded and an
    // uncoded campaign at the same index carry the same info bits.
    Rng info_rng(split_seed(link_.options().seed, packet_index, 0));
    ws.info_bits.resize(info_n);
    info_rng.fill_bits(ws.info_bits);

    {
      RT_TRACE_SPAN("code_encode");
      codec_.encode_into(ws.info_bits, ws.coded, ws.coded_tx_bits);
    }
    const auto raw = link_.run_packet_bits(packet_index, ws.coded_tx_bits, ws);

    CodedPacketOutcome out;
    out.preamble_found = raw.preamble_found;
    out.info_bits = info_n;
    out.raw_bits = raw.bits;
    out.raw_bit_errors = raw.bit_errors;
    out.snr_estimate_db = raw.snr_estimate_db;
    RT_OBS_COUNT(kCodedFrames, 1);
    if (!raw.preamble_found) {
      out.info_bit_errors = info_n;  // whole frame lost
      RT_OBS_COUNT(kCodedCrcFailures, 1);
      return out;
    }

    {
      RT_TRACE_SPAN("code_decode");
      coding::CodedFrameResult res;
      if (mode == DecodeMode::kSoft) {
        RT_ENSURE(link_.options().export_soft_bits,
                  "soft decoding needs SimOptions::export_soft_bits");
        double llr_abs_sum = 0.0;
        for (const float l : raw.soft_bits) llr_abs_sum += std::fabs(l);
        RT_OBS_OBSERVE(kSoftLlrMeanAbs,
                       llr_abs_sum / static_cast<double>(raw.soft_bits.size()));
        res = codec_.decode_soft_into(raw.soft_bits, info_n, ws.coded);
        RT_OBS_COUNT(kCodedSoftDecodes, 1);
      } else {
        const std::span<const std::uint8_t> sliced(ws.result.bits.data(),
                                                   ws.coded_tx_bits.size());
        res = codec_.decode_hard_into(sliced, info_n, ws.coded);
        RT_OBS_COUNT(kCodedHardDecodes, 1);
      }
      out.decode_ok = res.decode_ok;
      out.crc_ok = res.crc_ok;
      out.erasures_used = res.erasures_used;
      RT_OBS_COUNT(kRsErasuresMarked, res.erasures_used);
      if (!res.crc_ok) RT_OBS_COUNT(kCodedCrcFailures, 1);
      for (std::size_t i = 0; i < info_n; ++i)
        out.info_bit_errors += (res.payload[i] != ws.info_bits[i]) ? 1 : 0;
    }
    return out;
  }

  /// Serial reference run over packets 0..packets-1; equals merging any
  /// parallel partition of the same indices.
  [[nodiscard]] CodedLinkStats run(int packets, std::size_t payload_bytes,
                                   DecodeMode mode = DecodeMode::kSoft) const {
    RT_ENSURE(packets >= 1, "need at least one packet");
    CodedLinkStats stats;
    PacketWorkspace ws;
    for (int p = 0; p < packets; ++p)
      stats.add(run_packet(static_cast<std::uint64_t>(p), payload_bytes, ws, mode));
    return stats;
  }

 private:
  const LinkSimulator& link_;
  coding::CodedFrameCodec codec_;
};

}  // namespace rt::sim
