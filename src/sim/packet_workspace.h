// Per-worker packet pipeline workspace.
//
// One PacketWorkspace carries every reusable buffer the TX -> channel -> RX
// pipeline touches for a packet: the modulator scratch and firing schedule,
// the cached channel realization (posed tag array), the synthesis scratch,
// the shared rx waveform that doubles as the corrected-signal stage, and
// the receiver sub-workspaces. After a warm-up packet the steady-state hot
// path performs zero heap allocations (tests/test_alloc.cpp locks this
// down). Workspaces are reused across packets but never shared across
// threads -- the parallel sweep engine keeps one per worker (thread_local).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/coded_frame.h"
#include "obs/trace.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"

namespace rt::sim {

struct PacketWorkspace {
  // TX stage.
  phy::ModulatorWorkspace tx;
  phy::PacketSchedule schedule;
  std::vector<std::uint8_t> payload;  ///< per-packet random payload bits

  // Channel stage. The realization caches the posed tag array; it is
  // rebuilt only when the workspace meets a different channel (id check).
  std::optional<ChannelRealization> channel;
  lcm::SynthScratch synth;

  // RX stage. `rx` is written by the channel and then corrected in place
  // by the receiver (the two stages share one buffer).
  sig::IqWaveform rx;
  phy::DemodWorkspace demod;
  phy::DemodResult result;

  // Coded-frame stage (sim::CodedLink): codec scratch plus the on-air
  // coded bit stream and the decoded info-bit ground truth.
  coding::CodedFrameWorkspace coded;
  std::vector<std::uint8_t> coded_tx_bits;
  std::vector<std::uint8_t> info_bits;

  // Observability. The pipeline binds this recorder (thread-local) for
  // the duration of each packet, so stage spans and metrics land here.
  // Empty (zero-size, zero-cost) unless built with RT_OBS=ON.
  obs::Recorder obs;
};

}  // namespace rt::sim
