#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace rt::sim {

void write_trace_csv(const std::string& path, const sig::IqWaveform& w) {
  std::ofstream out(path);
  RT_ENSURE(out.good(), "cannot open trace file for writing: " + path);
  // max_digits10 = 17: a round-trip through decimal text reproduces every
  // double bit-exactly, so a replayed capture decodes identically to the
  // live stream (tests/test_streaming.cpp locks this down).
  out.precision(17);
  out << "# sample_rate_hz=" << w.sample_rate_hz << "\n";
  out << "index,i,q\n";
  for (std::size_t i = 0; i < w.size(); ++i)
    out << i << ',' << w[i].real() << ',' << w[i].imag() << '\n';
  RT_ENSURE(out.good(), "error while writing trace file: " + path);
}

sig::IqWaveform read_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw RuntimeError("cannot open trace file: " + path);
  std::string line;
  // Header comment with the sample rate.
  if (!std::getline(in, line) || line.rfind("# sample_rate_hz=", 0) != 0)
    throw RuntimeError("trace file missing sample-rate header: " + path);
  const double fs = std::stod(line.substr(std::string("# sample_rate_hz=").size()));
  if (fs <= 0.0) throw RuntimeError("trace file has invalid sample rate: " + path);
  if (!std::getline(in, line) || line != "index,i,q")
    throw RuntimeError("trace file missing column header: " + path);

  std::vector<sig::Complex> samples;
  std::size_t expect = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string idx_s;
    std::string i_s;
    std::string q_s;
    if (!std::getline(row, idx_s, ',') || !std::getline(row, i_s, ',') ||
        !std::getline(row, q_s))
      throw RuntimeError("malformed trace row: " + line);
    if (static_cast<std::size_t>(std::stoull(idx_s)) != expect)
      throw RuntimeError("trace rows out of order at index " + idx_s);
    samples.emplace_back(std::stod(i_s), std::stod(q_s));
    ++expect;
  }
  return {fs, std::move(samples)};
}

}  // namespace rt::sim
