// The end-to-end optical channel: tag LCM array -> retroreflective path ->
// reader baseband.
//
// Combines the link budget (SNR from distance + yaw projection loss), the
// PQAM constellation rotation from roll, ambient-light shot noise, and
// optional human-mobility gain ripple into a WaveformSource the PHY layer
// consumes. Noise is calibrated against the modulated signal power of the
// configuration's own preamble section, so "SNR = x dB" means the same
// thing across schemes.
#pragma once

#include <cmath>
#include <optional>

#include "common/rng.h"
#include "lcm/tag_array.h"
#include "optics/ambient.h"
#include "optics/link_budget.h"
#include "phy/params.h"
#include "phy/pulse_model.h"
#include "sim/geometry.h"
#include "sim/mobility.h"

namespace rt::sim {

/// Continuous relative motion during a packet (section 8 mobility
/// discussion): the pose drifts linearly over the packet duration.
struct ChannelDynamics {
  double roll_rate_deg_s = 0.0;   ///< tag spinning about the optical axis
  double gain_drift_per_s = 0.0;  ///< relative amplitude drift (approach/recede)

  [[nodiscard]] bool any() const { return roll_rate_deg_s != 0.0 || gain_drift_per_s != 0.0; }
};

struct ChannelConfig {
  optics::LinkBudget budget = optics::LinkBudget::narrow_beam();
  Pose pose{};
  optics::AmbientLight ambient = optics::AmbientLight::night();
  MobilityScenario mobility = MobilityScenario::none();
  ChannelDynamics dynamics{};
  /// When set, bypasses the link budget and uses this SNR directly
  /// (trace-driven emulation mode, section 7.3).
  std::optional<double> snr_override_db;
  std::uint64_t noise_seed = 1;

  /// Effective SNR including yaw projection loss.
  [[nodiscard]] double snr_db() const {
    if (snr_override_db) return *snr_override_db;
    return budget.snr_db_at(pose.distance_m) - optics::LinkBudget::yaw_loss_db(pose.yaw_rad);
  }
};

/// Returns a process-unique channel identity (monotonic counter).
[[nodiscard]] std::uint64_t next_channel_id();

/// Copyable identity token: every copy (construction or assignment) draws a
/// fresh id, so a workspace that cached a realization of channel X never
/// mistakes a copied/reassigned channel for X.
struct ChannelId {
  ChannelId() : value(next_channel_id()) {}
  ChannelId(const ChannelId&) : value(next_channel_id()) {}
  ChannelId& operator=(const ChannelId&) {
    value = next_channel_id();
    return *this;
  }
  std::uint64_t value;
};

/// One reusable realization of a channel: the posed tag array plus the
/// constant per-sample gain chain, bound into a stage object. Calling
/// synthesize_into() resets the tag and renders a packet into a
/// caller-owned waveform -- the allocation-free replacement for the
/// std::function returned by Channel::source_with(). Build one via
/// Channel::make_realization() and reuse it for every packet of that
/// channel (it is bit-identical to a fresh source_with() call).
class ChannelRealization {
 public:
  /// Renders `firings` over [0, duration_s) into `out` and adds AWGN drawn
  /// from `noise_rng` (skipped when null or when the channel is noiseless).
  void synthesize_into(std::span<const lcm::Firing> firings, double duration_s, Rng* noise_rng,
                       lcm::SynthScratch& scratch, sig::IqWaveform& out);

  /// Identity of the Channel this realization was built from.
  [[nodiscard]] std::uint64_t channel_id() const { return channel_id_; }

 private:
  friend class Channel;
  ChannelRealization(const lcm::TagConfig& posed_cfg, sig::Complex rot, double sample_rate_hz,
                     MobilityScenario mobility, ChannelDynamics dynamics, double sigma,
                     std::uint64_t channel_id)
      : tag_(posed_cfg),
        rot_(rot),
        sample_rate_hz_(sample_rate_hz),
        mobility_(mobility),
        dynamics_(dynamics),
        sigma_(sigma),
        channel_id_(channel_id) {}

  lcm::TagArray tag_;
  sig::Complex rot_;
  double sample_rate_hz_;
  MobilityScenario mobility_;
  ChannelDynamics dynamics_;
  double sigma_;
  std::uint64_t channel_id_;
  std::vector<sig::Complex> gain_buf_;  ///< per-sample gain scratch (capacity reused)
};

class Channel {
 public:
  /// `tag_config` carries the tag hardware truth (heterogeneity seed, and
  /// the yaw-induced response distortion is applied here from the pose).
  Channel(const phy::PhyParams& params, lcm::TagConfig tag_config, const ChannelConfig& config);

  /// Noisy source at the configured SNR (fresh tag state per call; the
  /// noise stream advances across calls so packets see independent noise).
  [[nodiscard]] phy::WaveformSource source();

  /// Noisy source drawing from a caller-owned noise stream. `noise_rng`
  /// is captured by reference and must outlive the returned source. This
  /// is the thread-safe variant: with per-packet counter-based streams
  /// (rt::split_seed) concurrent packets never share RNG state, which is
  /// what makes parallel sweeps bit-identical to serial ones.
  [[nodiscard]] phy::WaveformSource source_with(Rng& noise_rng) const;

  /// Builds the reusable stage object equivalent of source_with(): one
  /// posed tag array plus the gain chain, rendered through caller buffers.
  [[nodiscard]] ChannelRealization make_realization() const;

  /// Identity for realization caching: stable for this object's lifetime,
  /// distinct across channel instances (including copies).
  [[nodiscard]] std::uint64_t id() const { return id_.value; }

  /// The member noise stream advanced by source() (legacy serial path);
  /// exposed so workspace callers can reproduce source()'s draw order.
  [[nodiscard]] Rng& shared_noise_rng() { return noise_rng_; }

  /// Noise-free source at the same pose (offline training / oracle use).
  [[nodiscard]] phy::WaveformSource noiseless_source() const;

  /// Noise-free source at a different pose of the same tag (offline
  /// training collects fingerprints across orientations).
  [[nodiscard]] phy::WaveformSource noiseless_source_at(const Pose& pose) const;

  /// Per-axis AWGN sigma realizing the configured SNR.
  [[nodiscard]] double noise_sigma_per_axis() const { return sigma_; }
  [[nodiscard]] double snr_db() const { return cfg_.snr_db(); }
  [[nodiscard]] const ChannelConfig& config() const { return cfg_; }

  /// Mean modulated-signal power of this PHY configuration at unit gain
  /// (the SNR reference level).
  [[nodiscard]] double reference_signal_power() const { return ref_power_; }

 private:
  [[nodiscard]] lcm::TagConfig posed_tag_config(const Pose& pose) const;

  phy::PhyParams params_;
  lcm::TagConfig tag_cfg_;
  ChannelConfig cfg_;
  double ref_power_ = 0.0;
  double sigma_ = 0.0;
  Rng noise_rng_;
  ChannelId id_;
};

}  // namespace rt::sim
