// Tag-reader geometry for the end-to-end simulator.
#pragma once

#include "common/error.h"
#include "common/units.h"

namespace rt::sim {

/// Relative pose of a tag with respect to the reader.
struct Pose {
  double distance_m = 2.0;
  double roll_rad = 0.0;  ///< rotation about the optical axis (PQAM rotation)
  double yaw_rad = 0.0;   ///< tag surface tilt away from facing the reader

  void validate() const {
    RT_ENSURE(distance_m > 0.0, "distance must be positive");
    RT_ENSURE(std::abs(yaw_rad) < rt::deg_to_rad(89.0), "yaw must be within +-89deg");
  }
};

}  // namespace rt::sim
