// Waveform trace recording and replay (CSV).
//
// The paper's section 7.3 evaluation is trace-driven: reference waveforms
// are recorded once and emulation superimposes noise offline. These
// helpers persist complex baseband traces so experiments can be replayed
// and inspected outside the simulator.
#pragma once

#include <string>

#include "signal/waveform.h"

namespace rt::sim {

/// Writes `w` as CSV: header line, then one `index,i,q` row per sample.
void write_trace_csv(const std::string& path, const sig::IqWaveform& w);

/// Reads a trace written by write_trace_csv. Throws RuntimeError on
/// malformed input.
[[nodiscard]] sig::IqWaveform read_trace_csv(const std::string& path);

}  // namespace rt::sim
