// Concurrent multi-tag transmission: waveform-level collision study.
//
// Section 8 ("Efficient Multiple Access") notes that concurrent tags could
// in principle be decoded jointly, but the baseline MAC avoids collisions
// via TDMA. This helper superimposes the waveforms of several tags (each
// with its own pose/rotation and gain) so experiments can measure what a
// collision actually does to the single-tag demodulator -- the
// quantitative case for the TDMA design.
#pragma once

#include <vector>

#include "optics/polarization.h"
#include "signal/awgn.h"
#include "sim/channel.h"

namespace rt::sim {

struct ConcurrentTag {
  lcm::TagConfig tag;
  Pose pose;
  double relative_gain = 1.0;  ///< amplitude relative to the tag of interest
  std::vector<lcm::Firing> firings;
};

/// Synthesizes the superposition of every tag's retroreflected waveform
/// (linear optical superposition at the photodiodes), then adds AWGN for
/// the given SNR *of the first (wanted) tag's signal*.
[[nodiscard]] inline sig::IqWaveform superimpose_tags(const phy::PhyParams& params,
                                                      const std::vector<ConcurrentTag>& tags,
                                                      double duration_s, double snr_db,
                                                      Rng& rng) {
  RT_ENSURE(!tags.empty(), "need at least one tag");
  sig::IqWaveform sum(params.sample_rate_hz,
                      static_cast<std::size_t>(std::ceil(duration_s * params.sample_rate_hz)));
  double wanted_power = 0.0;
  for (std::size_t ti = 0; ti < tags.size(); ++ti) {
    const auto& ct = tags[ti];
    lcm::TagConfig cfg = ct.tag;
    cfg.yaw_rad = ct.pose.yaw_rad;
    lcm::TagArray tag(cfg);
    auto w = tag.synthesize(ct.firings, params.sample_rate_hz, duration_s);
    lcm::TagArray idle_tag(cfg);
    const auto idle = idle_tag.synthesize({}, params.sample_rate_hz, duration_s);
    const auto rot = optics::roll_rotation(ct.pose.roll_rad) * ct.relative_gain;
    double p = 0.0;
    for (std::size_t i = 0; i < sum.size() && i < w.size(); ++i) {
      const auto v = rot * w[i];
      sum[i] += v;
      const auto sig_only = rot * (w[i] - idle[i]);
      if (ti == 0) p += std::norm(sig_only);
    }
    if (ti == 0) wanted_power = p / static_cast<double>(sum.size());
  }
  if (wanted_power > 0.0) {
    const double sigma = std::sqrt(wanted_power / rt::from_db(snr_db) / 2.0);
    sig::add_noise_sigma(sum, sigma, rng);
  }
  return sum;
}

/// Seed-slot layout for deterministic collision studies.
///
/// Stream `stream` of trial `trial` of a study seeded `base`. The
/// convention mirrors the sweep engine's (packet, stream) discipline
/// (src/runtime): slots are disjoint across trials and streams, so a
/// parallel collision campaign can reconstruct any trial's randomness
/// from indices alone. Streams 0..tags-1 are reserved for per-tag
/// payload bits; stream == tags is the AWGN draw.
[[nodiscard]] constexpr std::uint64_t collision_slot_seed(std::uint64_t base, std::uint64_t trial,
                                                          std::uint64_t stream) {
  return split_seed(base, trial, stream);
}

/// Pure-seeded overload: the AWGN is drawn from a fresh engine seeded
/// `noise_seed`, so the returned waveform is a pure function of
/// (params, tags, duration_s, snr_db, noise_seed). This is the form the
/// fleet collision campaign batches across the thread pool -- see
/// collision_slot_seed for the slot convention.
[[nodiscard]] inline sig::IqWaveform superimpose_tags(const phy::PhyParams& params,
                                                      const std::vector<ConcurrentTag>& tags,
                                                      double duration_s, double snr_db,
                                                      std::uint64_t noise_seed) {
  Rng rng(noise_seed);
  return superimpose_tags(params, tags, duration_s, snr_db, rng);
}

}  // namespace rt::sim
