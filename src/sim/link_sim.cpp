#include "sim/link_sim.h"

#include <cmath>

#include "common/narrow.h"
#include "obs/trace.h"
#include "phy/training.h"

namespace rt::sim {

namespace {

phy::OfflineModel build_offline_model(const phy::PhyParams& params, const Channel& channel,
                                      const SimOptions& opts, const ChannelConfig& ch_cfg) {
  if (opts.shared_offline_model) return *opts.shared_offline_model;
  std::vector<phy::WaveformSource> sources;
  for (const double yaw_deg : opts.offline_yaws_deg) {
    Pose pose = ch_cfg.pose;
    pose.roll_rad = 0.0;  // offline references are calibrated rotation-free
    pose.yaw_rad = rt::deg_to_rad(yaw_deg);
    sources.push_back(channel.noiseless_source_at(pose));
  }
  return phy::OfflineTrainer::train(params, sources, opts.offline_rank);
}

}  // namespace

phy::OfflineModel train_offline_model(const phy::PhyParams& params,
                                      const lcm::TagConfig& tag_config,
                                      const std::vector<double>& yaws_deg, int rank) {
  RT_ENSURE(!yaws_deg.empty(), "offline training needs at least one yaw orientation");
  ChannelConfig probe;
  probe.snr_override_db = 60.0;  // unused by the noiseless sources
  Channel channel(params, tag_config, probe);
  std::vector<phy::WaveformSource> sources;
  for (const double yaw_deg : yaws_deg) {
    Pose pose;
    pose.yaw_rad = rt::deg_to_rad(yaw_deg);
    sources.push_back(channel.noiseless_source_at(pose));
  }
  return phy::OfflineTrainer::train(params, sources, rank);
}

LinkSimulator::LinkSimulator(const phy::PhyParams& params, const lcm::TagConfig& tag_config,
                             const ChannelConfig& channel_config, const SimOptions& options)
    : params_(params),
      channel_(params, tag_config, channel_config),
      modulator_(params),
      demodulator_(params, build_offline_model(params, channel_, options, channel_config)),
      opts_(options),
      rng_(options.seed) {
  if (opts_.oracle_templates) {
    // Fingerprints measured noiselessly at the oracle pose (default: the
    // operating pose = perfect channel knowledge) but WITHOUT roll (the
    // preamble correction restores the reference frame, so templates live
    // in the rotation-free frame).
    Pose pose = opts_.oracle_pose.value_or(channel_config.pose);
    pose.roll_rad = 0.0;
    oracle_ = phy::collect_fingerprints(params_, channel_.noiseless_source_at(pose));
  }
}

LinkSimulator::PacketOutcome LinkSimulator::send_packet(
    std::span<const std::uint8_t> payload_bits) {
  // Legacy serial path: padding and noise advance the member RNG streams,
  // so outcomes depend on call order. Order-independent runs go through
  // run_packet instead. The per-thread workspace keeps repeated sends on
  // one simulator allocation-free after warm-up.
  static thread_local PacketWorkspace ws;
  auto out = transmit_into(payload_bits, rng_, &channel_.shared_noise_rng(), ws);
  if (out.preamble_found)
    out.received_bits.assign(ws.result.bits.begin(),
                             ws.result.bits.begin() + static_cast<std::ptrdiff_t>(out.bits));
  return out;
}

LinkSimulator::PacketOutcome LinkSimulator::transmit_into(
    std::span<const std::uint8_t> payload_bits, Rng& pad_rng, Rng* noise_rng,
    PacketWorkspace& ws) const {
  RT_ENSURE(!payload_bits.empty(), "packets need a non-empty payload");
  // All stage spans/metrics of this packet land in the workspace recorder.
  const obs::ScopedBind obs_bind(ws.obs);
  RT_TRACE_SPAN("packet");
  render_into(payload_bits, pad_rng, noise_rng, ws);
  const auto& pkt = ws.schedule;

  phy::DemodOptions dopts;
  dopts.online_training = opts_.online_training && !opts_.oracle_templates;
  dopts.oracle = opts_.oracle_templates ? &*oracle_ : nullptr;
  dopts.search_limit = static_cast<std::size_t>(opts_.max_pad_slots + 2) *
                       params_.samples_per_slot();
  dopts.soft_output = opts_.export_soft_bits;
  demodulator_.demodulate_into(ws.rx, pkt.layout.payload_slots, dopts, ws.demod, ws.result);
  const auto& res = ws.result;

  PacketOutcome out;
  out.bits = payload_bits.size();
  out.preamble_found = res.preamble_found;
  if (!res.preamble_found) {
    out.bit_errors = payload_bits.size();  // whole packet lost
  } else {
    RT_ENSURE(res.bits.size() >= payload_bits.size(),
              "demodulator returned fewer bits than the transmitted payload");
    for (std::size_t i = 0; i < payload_bits.size(); ++i)
      out.bit_errors += (res.bits[i] != payload_bits[i]) ? 1 : 0;
    if (opts_.export_soft_bits)
      out.soft_bits = std::span<const float>(res.soft_bits.data(), payload_bits.size());
    out.snr_estimate_db = res.detection.snr.snr_db;
    RT_OBS_OBSERVE(kSnrEstimateErrorDb, std::abs(out.snr_estimate_db - channel_.snr_db()));
  }
  RT_OBS_COUNT(kPacketsSimulated, 1);
  RT_OBS_COUNT(kPayloadBits, out.bits);
  RT_OBS_COUNT(kBitErrors, out.bit_errors);
  return out;
}

std::size_t LinkSimulator::render_into(std::span<const std::uint8_t> payload_bits, Rng& pad_rng,
                                       Rng* noise_rng, PacketWorkspace& ws) const {
  modulator_.modulate_into(payload_bits, ws.tx, ws.schedule);
  auto& pkt = ws.schedule;

  // Random pre-padding: the reader does not know when the packet starts.
  // The shift happens in place; the next modulate_into() rebuilds the
  // schedule from the cached prefix, so the offset never accumulates.
  const int pad_slots =
      opts_.max_pad_slots > 0 ? narrow_cast<int>(pad_rng.uniform_int(0, opts_.max_pad_slots)) : 0;
  const double pad_s = pad_slots * params_.slot_s;
  for (auto& f : pkt.firings) f.time_s += pad_s;
  const double duration = pad_s + pkt.duration_s + params_.symbol_duration_s();

  if (!ws.channel || ws.channel->channel_id() != channel_.id())
    ws.channel.emplace(channel_.make_realization());
  ws.channel->synthesize_into(pkt.firings, duration, noise_rng, ws.synth, ws.rx);
  return static_cast<std::size_t>(pad_slots) * params_.samples_per_slot();
}

namespace {

// Sub-stream tags for run_packet's split_seed derivations. Payload and
// padding split off the simulation seed, noise splits off the channel's
// noise seed, preserving the seed structure the benches already use
// (same payloads across points, independent noise per point).
constexpr std::uint64_t kPayloadStream = 0;
constexpr std::uint64_t kPadStream = 1;
constexpr std::uint64_t kNoiseStream = 2;

}  // namespace

LinkSimulator::PacketOutcome LinkSimulator::run_packet(std::uint64_t packet_index,
                                                       std::size_t payload_bytes) const {
  PacketWorkspace ws;
  auto out = run_packet(packet_index, payload_bytes, ws);
  if (out.preamble_found)
    out.received_bits.assign(ws.result.bits.begin(),
                             ws.result.bits.begin() + static_cast<std::ptrdiff_t>(out.bits));
  return out;
}

LinkSimulator::PacketOutcome LinkSimulator::run_packet(std::uint64_t packet_index,
                                                       std::size_t payload_bytes,
                                                       PacketWorkspace& ws) const {
  RT_ENSURE(payload_bytes >= 1, "need at least one payload byte");
  Rng payload_rng(split_seed(opts_.seed, packet_index, kPayloadStream));
  Rng pad_rng(split_seed(opts_.seed, packet_index, kPadStream));
  Rng noise_rng(split_seed(channel_.config().noise_seed, packet_index, kNoiseStream));
  ws.payload.resize(payload_bytes * 8);
  payload_rng.fill_bits(ws.payload);
  return transmit_into(ws.payload, pad_rng, &noise_rng, ws);
}

LinkSimulator::PacketOutcome LinkSimulator::run_packet_bits(
    std::uint64_t packet_index, std::span<const std::uint8_t> payload_bits,
    PacketWorkspace& ws) const {
  // Same pad/noise sub-streams as run_packet; the payload stream is simply
  // unused because the caller supplies the on-air bits.
  Rng pad_rng(split_seed(opts_.seed, packet_index, kPadStream));
  Rng noise_rng(split_seed(channel_.config().noise_seed, packet_index, kNoiseStream));
  return transmit_into(payload_bits, pad_rng, &noise_rng, ws);
}

LinkSimulator::RenderedPacket LinkSimulator::render_packet_rx(std::uint64_t packet_index,
                                                              std::size_t payload_bytes,
                                                              PacketWorkspace& ws) const {
  RT_ENSURE(payload_bytes >= 1, "need at least one payload byte");
  const obs::ScopedBind obs_bind(ws.obs);
  // Exactly run_packet's seed derivations, so the rendered waveform is
  // bit-identical to what the packet-at-a-time path demodulates.
  Rng payload_rng(split_seed(opts_.seed, packet_index, kPayloadStream));
  Rng pad_rng(split_seed(opts_.seed, packet_index, kPadStream));
  Rng noise_rng(split_seed(channel_.config().noise_seed, packet_index, kNoiseStream));
  ws.payload.resize(payload_bytes * 8);
  payload_rng.fill_bits(ws.payload);
  RenderedPacket out;
  out.pad_samples = render_into(ws.payload, pad_rng, &noise_rng, ws);
  out.payload_bits = ws.payload.size();
  out.payload_slots = ws.schedule.layout.payload_slots;
  return out;
}

LinkStats LinkSimulator::run(int packets, std::size_t payload_bytes) const {
  RT_ENSURE(packets >= 1, "need at least one packet");
  LinkStats stats;
  PacketWorkspace ws;
  for (int p = 0; p < packets; ++p) {
    const auto outcome = run_packet(static_cast<std::uint64_t>(p), payload_bytes, ws);
    ++stats.packets;
    if (!outcome.preamble_found) ++stats.preamble_failures;
    stats.bit_errors += outcome.bit_errors;
    stats.total_bits += outcome.bits;
  }
  return stats;
}

}  // namespace rt::sim
