// End-to-end link simulator: packets through the full RetroTurbo stack.
//
// Owns the modulator, channel and demodulator (with offline training
// performed once at construction, as the paper's one-time offline step),
// and provides the BER harness every experiment bench builds on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"
#include "sim/packet_workspace.h"

namespace rt::sim {

struct SimOptions {
  int offline_rank = 3;                 ///< S: truncated KL basis count
  std::vector<double> offline_yaws_deg = {0.0, 20.0};  ///< offline-training orientations
  bool online_training = true;          ///< per-packet training (vs oracle templates)
  bool oracle_templates = false;        ///< perfect channel knowledge (upper bound)
  int max_pad_slots = 2;                ///< random packet start padding
  std::uint64_t seed = 42;
  /// Reuse an already-trained offline model (the one-time offline step does
  /// not depend on distance/SNR, so sweeps share it across points).
  std::optional<phy::OfflineModel> shared_offline_model;
  /// Pose at which oracle templates are collected (default: the operating
  /// pose). Setting this to the nominal pose while operating elsewhere
  /// models a receiver with stale, non-adaptive references -- the
  /// "channel training disabled" ablation of Fig. 16c.
  std::optional<Pose> oracle_pose;
  /// Export per-bit LLRs from the demapper into PacketOutcome::soft_bits
  /// (workspace overloads only). Off by default: the raw hot path and its
  /// perf baselines are unchanged unless a coded experiment asks for LLRs.
  bool export_soft_bits = false;
};

struct LinkStats {
  int packets = 0;
  int preamble_failures = 0;
  std::size_t bit_errors = 0;
  std::size_t total_bits = 0;

  /// BER counting lost packets as all-bits-lost (conservative, as a failed
  /// preamble loses the whole packet).
  [[nodiscard]] double ber() const {
    return total_bits == 0 ? 0.0
                           : static_cast<double>(bit_errors) / static_cast<double>(total_bits);
  }
  [[nodiscard]] double packet_loss() const {
    return packets == 0 ? 0.0 : static_cast<double>(preamble_failures) / packets;
  }

  /// Accumulates another batch. All fields are plain sums, so merging is
  /// associative and commutative: any partition of a packet set merges to
  /// the same stats, which lets the parallel sweep engine aggregate
  /// batches in any order.
  LinkStats& merge(const LinkStats& other) {
    packets += other.packets;
    preamble_failures += other.preamble_failures;
    bit_errors += other.bit_errors;
    total_bits += other.total_bits;
    return *this;
  }

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

/// Performs the one-time offline training for a (PHY, tag) pair so sweeps
/// can share the model via SimOptions::shared_offline_model.
[[nodiscard]] phy::OfflineModel train_offline_model(const phy::PhyParams& params,
                                                    const lcm::TagConfig& tag_config,
                                                    const std::vector<double>& yaws_deg = {0.0},
                                                    int rank = 3);

class LinkSimulator {
 public:
  LinkSimulator(const phy::PhyParams& params, const lcm::TagConfig& tag_config,
                const ChannelConfig& channel_config, const SimOptions& options = {});

  /// Sends one packet of the given payload bits.
  struct PacketOutcome {
    bool preamble_found = false;
    std::size_t bit_errors = 0;
    std::size_t bits = 0;
    /// Receiver-side uplink SNR estimate from the fitted preamble (dB),
    /// always finite; meaningful only when `preamble_found`. This is the
    /// quantity the closed rate-adaptation loop feeds to mac::RateTable.
    double snr_estimate_db = 0.0;
    std::vector<std::uint8_t> received_bits;  ///< demodulated payload (empty if lost)
    /// Per-bit LLRs aligned with the payload (positive = bit 0). Only
    /// filled by the workspace overloads when SimOptions::export_soft_bits
    /// is set and the preamble was found; views ws.result.soft_bits, so it
    /// is invalidated by the next packet on the same workspace.
    std::span<const float> soft_bits;
  };
  [[nodiscard]] PacketOutcome send_packet(std::span<const std::uint8_t> payload_bits);

  /// Runs packet number `packet_index` of the paper's BER methodology
  /// (random payload, random start padding, fresh channel noise) as a pure
  /// function of (options.seed, channel noise_seed, packet_index): the
  /// payload, padding and noise streams are derived with rt::split_seed,
  /// never from shared engine state. Thread-safe for concurrent calls on
  /// one simulator, and the outcome is independent of call order -- the
  /// property the parallel sweep engine (rt::runtime) is built on.
  [[nodiscard]] PacketOutcome run_packet(std::uint64_t packet_index,
                                         std::size_t payload_bytes) const;

  /// Workspace form of run_packet(): the entire TX -> channel -> RX
  /// pipeline runs through `ws`'s preallocated buffers, so the steady
  /// state (after one warm-up packet) performs no heap allocations. The
  /// outcome is bit-identical to run_packet() regardless of the
  /// workspace's prior contents, EXCEPT that `received_bits` is left empty
  /// to stay allocation-free -- the demodulated payload remains readable
  /// in `ws.result.bits`. Workspaces must not be shared across threads.
  [[nodiscard]] PacketOutcome run_packet(std::uint64_t packet_index, std::size_t payload_bytes,
                                         PacketWorkspace& ws) const;

  /// run_packet() with a caller-supplied bit stream instead of the derived
  /// random payload -- the entry point for coded frames (sim::CodedLink),
  /// whose on-air bits come from the FEC encoder. Padding and noise use
  /// exactly run_packet's split_seed derivations, so a coded and an
  /// uncoded packet at the same index see the same channel realization.
  [[nodiscard]] PacketOutcome run_packet_bits(std::uint64_t packet_index,
                                              std::span<const std::uint8_t> payload_bits,
                                              PacketWorkspace& ws) const;

  /// TX -> channel half of run_packet(): renders packet `packet_index`'s
  /// received waveform into `ws.rx` WITHOUT demodulating it, using exactly
  /// the same seed derivations (payload, padding, noise) as run_packet --
  /// so a streaming receiver decoding the concatenation of these
  /// waveforms sees bit-identical samples to the packet-at-a-time path.
  /// The payload ground truth remains in `ws.payload`.
  struct RenderedPacket {
    std::size_t pad_samples = 0;   ///< random start padding before the preamble
    std::size_t payload_bits = 0;  ///< ground-truth bit count (ws.payload)
    int payload_slots = 0;         ///< frame geometry for the receiver
  };
  [[nodiscard]] RenderedPacket render_packet_rx(std::uint64_t packet_index,
                                                std::size_t payload_bytes,
                                                PacketWorkspace& ws) const;

  /// Paper methodology: `packets` packets of `payload_bytes` random bytes.
  /// Equivalent to merging run_packet(0..packets-1) in order, so a serial
  /// run is bit-identical to any parallel partition of the same indices.
  /// Internally reuses one PacketWorkspace across all packets.
  [[nodiscard]] LinkStats run(int packets, std::size_t payload_bytes = 128) const;

  [[nodiscard]] const Channel& channel() const { return channel_; }
  [[nodiscard]] const phy::PhyParams& params() const { return params_; }
  [[nodiscard]] double snr_db() const { return channel_.snr_db(); }
  /// The trained packet pipeline; the streaming receiver shares it so the
  /// two decode paths are bit-identical.
  [[nodiscard]] const phy::Demodulator& demodulator() const { return demodulator_; }
  [[nodiscard]] const SimOptions& options() const { return opts_; }

 private:
  /// Runs one packet through the workspace pipeline: modulate into
  /// ws.schedule, pad the schedule in place, render through the cached
  /// channel realization into ws.rx, demodulate in place. `noise_rng` may
  /// be null for a noiseless shot. Does not fill `received_bits` (see
  /// run_packet workspace overload).
  [[nodiscard]] PacketOutcome transmit_into(std::span<const std::uint8_t> payload_bits,
                                            Rng& pad_rng, Rng* noise_rng,
                                            PacketWorkspace& ws) const;

  /// TX half of transmit_into(): modulate, pad, render through the cached
  /// channel realization into ws.rx. Returns the padding in samples.
  std::size_t render_into(std::span<const std::uint8_t> payload_bits, Rng& pad_rng,
                          Rng* noise_rng, PacketWorkspace& ws) const;

  phy::PhyParams params_;
  Channel channel_;
  phy::Modulator modulator_;
  phy::Demodulator demodulator_;
  std::optional<phy::PulseBank> oracle_;
  SimOptions opts_;
  Rng rng_;
};

}  // namespace rt::sim
