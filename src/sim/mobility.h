// Ambient human mobility scenarios (paper Tab. 4).
//
// The retroreflective uplink and directional downlink see almost none of
// the multipath that ambient motion creates for RF: a person near (but not
// blocking) the line of sight only perturbs the received gain by a small,
// slowly varying amount. Each test case is modelled as a superposition of
// low-frequency gain ripples; amplitudes are small because the paper's
// cases deliberately keep people off the LoS.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/units.h"

namespace rt::sim {

struct GainRipple {
  double amplitude = 0.0;    ///< relative gain modulation depth
  double frequency_hz = 1.0; ///< body-motion time scale
  double phase = 0.0;
};

struct MobilityScenario {
  std::string name = "no human";
  std::vector<GainRipple> ripples;

  /// Instantaneous relative gain (1 = undisturbed).
  [[nodiscard]] double gain(double t) const {
    double g = 1.0;
    for (const auto& r : ripples)
      g += r.amplitude * std::sin(2.0 * rt::kPi * r.frequency_hz * t + r.phase);
    return g;
  }

  // The five Tab. 4 cases.
  [[nodiscard]] static MobilityScenario none() { return {"no human", {}}; }
  [[nodiscard]] static MobilityScenario walk_10cm_off_los() {
    return {"1 person walks 10 cm off LoS", {{0.010, 1.8, 0.0}}};
  }
  [[nodiscard]] static MobilityScenario walk_behind_tag() {
    return {"1 person walks behind the Tag", {{0.004, 1.2, 0.5}}};
  }
  [[nodiscard]] static MobilityScenario work_5cm_off_los() {
    return {"1 person works 5 cm off LoS", {{0.015, 0.6, 1.1}}};
  }
  [[nodiscard]] static MobilityScenario three_people_around_los() {
    return {"3 people walk around LoS",
            {{0.012, 1.5, 0.0}, {0.008, 2.3, 0.9}, {0.010, 0.9, 2.0}}};
  }
};

}  // namespace rt::sim
