#include "sim/channel.h"

#include "common/error.h"
#include "optics/polarization.h"
#include "phy/frame.h"
#include "signal/awgn.h"

namespace rt::sim {

namespace {

/// Mean power of (preamble waveform - idle baseline) at unit gain: the
/// modulated signal power defining SNR for a PHY configuration.
double reference_power(const phy::PhyParams& params, const lcm::TagConfig& tag_cfg) {
  lcm::TagArray active(tag_cfg);
  lcm::TagArray idle(tag_cfg);
  const auto firings = phy::preamble_firings(params, 0);
  const double duration = (params.preamble_slots + params.dsm_order) * params.slot_s;
  const auto wa = active.synthesize(firings, params.sample_rate_hz, duration);
  const auto wi = idle.synthesize({}, params.sample_rate_hz, duration);
  double p = 0.0;
  for (std::size_t i = 0; i < wa.size(); ++i) p += std::norm(wa[i] - wi[i]);
  return p / static_cast<double>(wa.size());
}

}  // namespace

Channel::Channel(const phy::PhyParams& params, lcm::TagConfig tag_config,
                 const ChannelConfig& config)
    : params_(params), tag_cfg_(tag_config), cfg_(config), noise_rng_(config.noise_seed) {
  params_.validate();
  cfg_.pose.validate();
  ref_power_ = reference_power(params_, posed_tag_config(cfg_.pose));
  RT_ENSURE(ref_power_ > 0.0, "tag configuration produces no modulated signal power");
  // Total per-axis noise: receiver AWGN realizing the target SNR plus the
  // ambient shot-noise floor (complex noise splits across the two axes).
  const double snr_lin = rt::from_db(cfg_.snr_db());
  const double awgn_var = ref_power_ / snr_lin / 2.0;
  const double shot = cfg_.ambient.shot_noise_sigma();
  sigma_ = std::sqrt(awgn_var + shot * shot);
  RT_DCHECK_FINITE(sigma_);
}

lcm::TagConfig Channel::posed_tag_config(const Pose& pose) const {
  lcm::TagConfig cfg = tag_cfg_;
  cfg.yaw_rad = pose.yaw_rad;
  return cfg;
}

phy::WaveformSource Channel::noiseless_source_at(const Pose& pose) const {
  const auto tag_cfg = posed_tag_config(pose);
  const auto rot = optics::roll_rotation(pose.roll_rad);
  const auto params = params_;
  return [tag_cfg, rot, params](std::span<const lcm::Firing> firings, double duration) {
    lcm::TagArray tag(tag_cfg);
    auto w = tag.synthesize(firings, params.sample_rate_hz, duration);
    for (auto& v : w.samples) v *= rot;
    return w;
  };
}

phy::WaveformSource Channel::noiseless_source() const {
  return noiseless_source_at(cfg_.pose);
}

phy::WaveformSource Channel::source() {
  // The member noise RNG advances across calls so successive packets draw
  // independent noise (legacy serial path; parallel runs inject their own
  // per-packet stream via source_with).
  return source_with(noise_rng_);
}

phy::WaveformSource Channel::source_with(Rng& noise_rng) const {
  const auto tag_cfg = posed_tag_config(cfg_.pose);
  const auto rot = optics::roll_rotation(cfg_.pose.roll_rad);
  const auto params = params_;
  const auto mobility = cfg_.mobility;
  const double sigma = sigma_;
  const auto dynamics = cfg_.dynamics;
  return [&noise_rng, tag_cfg, rot, params, mobility, dynamics, sigma](
             std::span<const lcm::Firing> firings, double duration) {
    lcm::TagArray tag(tag_cfg);
    auto w = tag.synthesize(firings, params.sample_rate_hz, duration);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double t = static_cast<double>(i) / params.sample_rate_hz;
      sig::Complex g = rot * mobility.gain(t);
      if (dynamics.any()) {
        g *= optics::roll_rotation(rt::deg_to_rad(dynamics.roll_rate_deg_s) * t);
        g *= std::max(0.05, 1.0 + dynamics.gain_drift_per_s * t);
      }
      w[i] *= g;
    }
    if (sigma > 0.0) sig::add_noise_sigma(w, sigma, noise_rng);
    return w;
  };
}

}  // namespace rt::sim
