#include "sim/channel.h"

#include <atomic>
#include <utility>

#include "common/error.h"
#include "kernels/kernels.h"
#include "obs/trace.h"
#include "optics/polarization.h"
#include "phy/frame.h"
#include "signal/awgn.h"

namespace rt::sim {

std::uint64_t next_channel_id() {
  // rt-check: sync-ok (process-wide id counter; channels are built from any thread)
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ChannelRealization::synthesize_into(std::span<const lcm::Firing> firings, double duration_s,
                                         Rng* noise_rng, lcm::SynthScratch& scratch,
                                         sig::IqWaveform& out) {
  RT_TRACE_SPAN("channel");
  // reset() restores the as-constructed LC state, so a reused realization
  // renders exactly what a freshly built tag would.
  tag_.reset();
  tag_.synthesize_into(firings, sample_rate_hz_, duration_s, scratch, out);
  // Gain chain split into a (scalar, transcendental-heavy) gain fill and a
  // batched complex scale; `out[i] *= g` and cscale apply the identical
  // complex product per sample.
  gain_buf_.resize(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz_;
    sig::Complex g = rot_ * mobility_.gain(t);
    if (dynamics_.any()) {
      g *= optics::roll_rotation(rt::deg_to_rad(dynamics_.roll_rate_deg_s) * t);
      g *= std::max(0.05, 1.0 + dynamics_.gain_drift_per_s * t);
    }
    gain_buf_[i] = g;
  }
  kernels::cscale(out.size(), out.samples.data(), gain_buf_.data());
  if (sigma_ > 0.0 && noise_rng != nullptr) sig::add_noise_sigma(out, sigma_, *noise_rng);
}

namespace {

/// Mean power of (preamble waveform - idle baseline) at unit gain: the
/// modulated signal power defining SNR for a PHY configuration.
double reference_power(const phy::PhyParams& params, const lcm::TagConfig& tag_cfg) {
  lcm::TagArray active(tag_cfg);
  lcm::TagArray idle(tag_cfg);
  const auto firings = phy::preamble_firings(params, 0);
  const double duration = (params.preamble_slots + params.dsm_order) * params.slot_s;
  const auto wa = active.synthesize(firings, params.sample_rate_hz, duration);
  const auto wi = idle.synthesize({}, params.sample_rate_hz, duration);
  double p = 0.0;
  for (std::size_t i = 0; i < wa.size(); ++i) p += std::norm(wa[i] - wi[i]);
  return p / static_cast<double>(wa.size());
}

}  // namespace

Channel::Channel(const phy::PhyParams& params, lcm::TagConfig tag_config,
                 const ChannelConfig& config)
    : params_(params), tag_cfg_(tag_config), cfg_(config), noise_rng_(config.noise_seed) {
  params_.validate();
  cfg_.pose.validate();
  ref_power_ = reference_power(params_, posed_tag_config(cfg_.pose));
  RT_ENSURE(ref_power_ > 0.0, "tag configuration produces no modulated signal power");
  // Total per-axis noise: receiver AWGN realizing the target SNR plus the
  // ambient shot-noise floor (complex noise splits across the two axes).
  const double snr_lin = rt::from_db(cfg_.snr_db());
  const double awgn_var = ref_power_ / snr_lin / 2.0;
  const double shot = cfg_.ambient.shot_noise_sigma();
  sigma_ = std::sqrt(awgn_var + shot * shot);
  RT_DCHECK_FINITE(sigma_);
}

lcm::TagConfig Channel::posed_tag_config(const Pose& pose) const {
  lcm::TagConfig cfg = tag_cfg_;
  cfg.yaw_rad = pose.yaw_rad;
  return cfg;
}

phy::WaveformSource Channel::noiseless_source_at(const Pose& pose) const {
  // A realization with unit mobility, frozen dynamics and zero noise
  // multiplies every sample by exactly `rot` -- the original noiseless
  // source arithmetic.
  ChannelRealization real(posed_tag_config(pose), optics::roll_rotation(pose.roll_rad),
                          params_.sample_rate_hz, MobilityScenario::none(), ChannelDynamics{},
                          0.0, id_.value);
  return [real = std::move(real)](std::span<const lcm::Firing> firings,
                                  double duration) mutable {
    lcm::SynthScratch scratch;
    sig::IqWaveform w;
    real.synthesize_into(firings, duration, nullptr, scratch, w);
    return w;
  };
}

phy::WaveformSource Channel::noiseless_source() const {
  return noiseless_source_at(cfg_.pose);
}

phy::WaveformSource Channel::source() {
  // The member noise RNG advances across calls so successive packets draw
  // independent noise (legacy serial path; parallel runs inject their own
  // per-packet stream via source_with).
  return source_with(noise_rng_);
}

phy::WaveformSource Channel::source_with(Rng& noise_rng) const {
  return [&noise_rng, real = make_realization()](std::span<const lcm::Firing> firings,
                                                 double duration) mutable {
    lcm::SynthScratch scratch;
    sig::IqWaveform w;
    real.synthesize_into(firings, duration, &noise_rng, scratch, w);
    return w;
  };
}

ChannelRealization Channel::make_realization() const {
  return {posed_tag_config(cfg_.pose), optics::roll_rotation(cfg_.pose.roll_rad),
          params_.sample_rate_hz, cfg_.mobility, cfg_.dynamics, sigma_, id_.value};
}

}  // namespace rt::sim
