#include "lcm/lc_cell.h"

#include <algorithm>
#include <cmath>

namespace rt::lcm {

namespace {

constexpr double kMaxSubstep = 10e-6;  // 10 us keeps RK4 error negligible vs tau >= 0.1 ms

}  // namespace

double LcCell::step(bool driven, double dt) {
  RT_ENSURE(dt >= 0.0, "dt must be non-negative");
  if (dt == 0.0) return c_;

  // Coupled ODEs in (c, s); RK4 with substeps so accuracy does not depend
  // on the caller's sample rate.
  const auto fc = [&](double c, double s) {
    if (driven) {
      const double tau = t_.tau_charge_s * (1.0 + t_.memory_coupling * (1.0 - s));
      return (1.0 - c) / tau;
    }
    return -c * (1.0 - c) / t_.tau_relax_s - c / t_.tau_slow_s;
  };
  const auto fs = [&](double c, double s) { return (c - s) / t_.tau_memory_s; };

  double remaining = dt;
  while (remaining > 0.0) {
    const double h = std::min(remaining, kMaxSubstep);
    const double k1c = fc(c_, s_);
    const double k1s = fs(c_, s_);
    const double k2c = fc(c_ + 0.5 * h * k1c, s_ + 0.5 * h * k1s);
    const double k2s = fs(c_ + 0.5 * h * k1c, s_ + 0.5 * h * k1s);
    const double k3c = fc(c_ + 0.5 * h * k2c, s_ + 0.5 * h * k2s);
    const double k3s = fs(c_ + 0.5 * h * k2c, s_ + 0.5 * h * k2s);
    const double k4c = fc(c_ + h * k3c, s_ + h * k3s);
    const double k4s = fs(c_ + h * k3c, s_ + h * k3s);
    c_ += h / 6.0 * (k1c + 2.0 * k2c + 2.0 * k3c + k4c);
    s_ += h / 6.0 * (k1s + 2.0 * k2s + 2.0 * k3s + k4s);
    c_ = std::clamp(c_, 0.0, 1.0);
    s_ = std::clamp(s_, 0.0, 1.0);
    remaining -= h;
  }
  return c_;
}

}  // namespace rt::lcm
