#include "lcm/lc_cell.h"

#include "kernels/kernels.h"

namespace rt::lcm {

double LcCell::step(bool driven, double dt) {
  RT_ENSURE(dt >= 0.0, "dt must be non-negative");
  if (dt == 0.0) return c_;

  // Single-cell slice of the batched director ODE kernel (coupled (c, s)
  // RK4 with 10 us substeps). The kernel is elementwise, so this is
  // bit-identical under both backends to the original in-class loop --
  // kernels_scalar.cpp::lc_step is that loop, verbatim.
  const double drive = driven ? 1.0 : 0.0;
  const kernels::LcBankParams p{&t_.tau_charge_s, &t_.tau_relax_s, t_.tau_slow_s,
                                t_.tau_memory_s, t_.memory_coupling};
  kernels::lc_step(1, dt, &drive, &c_, &s_, p);
  return c_;
}

}  // namespace rt::lcm
