// A single LCM pixel: an LC cell behind a back polarizer, on the
// retroreflector substrate.
//
// Flicker-free configuration (front polarizer detached, section 4.2.1):
// the pixel's retroreflected light is always at full intensity, polarized
// at theta_b (charged) or theta_b + 90deg (relaxed). Mid-transition the
// cell splits energy between the two eigen-polarizations in proportion to
// the alignment state c(t), so the complex two-PDR receiver sees
//   contribution(t) = gain * area * (2 c(t) - 1) * exp(j 2 (theta_b + eps))
// which satisfies the paper's observation p_I(t) = j p_Q(t): I- and Q-
// pixels share the same scalar pulse, placed on orthogonal axes.
#pragma once

#include <complex>

#include "common/units.h"
#include "lcm/lc_cell.h"

namespace rt::lcm {

using Complex = std::complex<double>;

struct PixelParams {
  double area = 1.0;              ///< relative area (binary weights within a module)
  double gain = 1.0;              ///< amplitude heterogeneity (manufacturing, illumination)
  double polarizer_angle_rad = 0.0;  ///< back polarizer angle (0 = I group, pi/4 = Q group)
  double angle_error_rad = 0.0;   ///< polarizer attachment error
  LcTimings timings{};

  void validate() const {
    RT_ENSURE(area > 0.0 && gain > 0.0, "pixel area and gain must be positive");
    timings.validate();
  }
};

class Pixel {
 public:
  explicit Pixel(const PixelParams& params) : p_(params), cell_(params.timings) {
    p_.validate();
    axis_ = std::polar(1.0, 2.0 * (p_.polarizer_angle_rad + p_.angle_error_rad));
  }

  /// Advances the LC cell and returns the pixel's complex contribution to
  /// the two-PDR receiver sample (bipolar: -A relaxed .. +A charged).
  Complex step(bool driven, double dt) {
    const double c = cell_.step(driven, dt);
    return p_.gain * p_.area * (2.0 * c - 1.0) * axis_;
  }

  /// Current contribution without advancing time.
  [[nodiscard]] Complex contribution() const {
    return p_.gain * p_.area * (2.0 * cell_.state() - 1.0) * axis_;
  }

  void reset(double c0 = 0.0) { cell_.reset(c0); }

  [[nodiscard]] const PixelParams& params() const { return p_; }
  [[nodiscard]] double state() const { return cell_.state(); }

 private:
  PixelParams p_;
  LcCell cell_;
  Complex axis_;
};

}  // namespace rt::lcm
