// The full tag-side optical antenna: an array of 2L LCM modules over the
// retroreflector, split into an I group (back polarizers at 0deg) and a Q
// group (45deg), per the paper's PQAM design (section 4.2.2).
//
// The array is a time-stepped simulator: the PHY modulator schedules
// firings (module + drive level + time); synthesize() integrates every LC
// cell and emits the complex two-PDR baseband waveform the reader would
// see at unit link gain. Roll misalignment, link gain, noise and frontend
// effects are applied downstream (sim / frontend layers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "lcm/module.h"
#include "signal/waveform.h"

namespace rt::lcm {

struct TagConfig {
  int dsm_order = 8;            ///< L: modules per polarization group
  int bits_per_axis = 2;        ///< log2(sqrt(P)): pixels per module; P = 4^bits_per_axis
  double slot_s = rt::ms(0.5);  ///< T: DSM interleaving time
  double charge_s = rt::ms(0.5);  ///< drive-on duration per firing (tau_1)
  LcTimings timings{};
  Heterogeneity heterogeneity{};
  double yaw_rad = 0.0;         ///< yaw misalignment; distorts LC response off-axis
  double yaw_timing_skew = 0.52; ///< strength of yaw-induced time-constant stretch
  std::uint64_t seed = 1;       ///< pixel heterogeneity draw

  [[nodiscard]] int pqam_order() const { return 1 << (2 * bits_per_axis); }
  [[nodiscard]] int levels_per_axis() const { return 1 << bits_per_axis; }
  /// DSM symbol duration W = L * T.
  [[nodiscard]] double symbol_duration_s() const {
    return static_cast<double>(dsm_order) * slot_s;
  }

  void validate() const {
    RT_ENSURE(dsm_order >= 1 && dsm_order <= 64, "DSM order must be in [1, 64]");
    RT_ENSURE(bits_per_axis >= 1 && bits_per_axis <= 4, "bits per axis must be in [1, 4]");
    RT_ENSURE(slot_s > 0.0 && charge_s > 0.0, "timings must be positive");
    RT_ENSURE(charge_s <= symbol_duration_s(), "charge duration cannot exceed W");
    timings.validate();
  }
};

/// One scheduled firing: at `time_s`, module `module` of each polarization
/// group is driven with the given level for TagConfig::charge_s seconds.
/// Level -1 means "do not touch this axis" (used by single-channel
/// baselines and calibration patterns).
struct Firing {
  double time_s = 0.0;
  int module = 0;   ///< 0 .. L-1
  int level_i = 0;  ///< 0 .. 2^bits_per_axis - 1, or -1 to skip
  int level_q = 0;
};

/// Reusable event-expansion scratch for TagArray::synthesize_into(). A
/// scratch held across packets stops allocating once it has seen the
/// largest schedule; every buffer is fully overwritten per synthesis.
struct SynthScratch {
  struct Event {
    double t;
    int module;
    std::uint32_t seq;  ///< insertion index: sort ties resolve in push order
    bool is_i;
    int level;  ///< level to apply (release = 0)
  };
  std::vector<Event> events;
  std::vector<std::size_t> event_sample;
  std::vector<double> c_run;  ///< per-sample LC alignment rows for one segment
};

class TagArray {
 public:
  explicit TagArray(const TagConfig& config);

  /// Runs the LC simulation over [0, duration_s) with the given firing
  /// schedule (must be sorted by time) and returns the complex baseband
  /// waveform at sample rate `fs`. The waveform includes the static bias of
  /// relaxed pixels (a DC term the receiver regression removes).
  [[nodiscard]] sig::IqWaveform synthesize(std::span<const Firing> schedule, double fs,
                                           double duration_s);

  /// Workspace form of synthesize(): writes the waveform into `out`
  /// (capacity reused) and expands events into `scratch`. Starts from the
  /// tag's current LC state -- callers reusing one TagArray across packets
  /// must reset() first (reset() provably restores the as-constructed
  /// state, so reset+synthesize_into is bit-identical to a fresh tag).
  void synthesize_into(std::span<const Firing> schedule, double fs, double duration_s,
                       SynthScratch& scratch, sig::IqWaveform& out);

  /// Resets every LC cell to the relaxed state.
  void reset();

  [[nodiscard]] const TagConfig& config() const { return cfg_; }

  /// Per-symbol tag energy in joules-equivalent units: each driven pixel
  /// consumes charge proportional to its area and drive duration. Used by
  /// the power microbenchmark (section 7.2.2): the DSM symbol length, not
  /// the bit rate, fixes the power draw.
  [[nodiscard]] double drive_energy(std::span<const Firing> schedule) const;

  [[nodiscard]] const std::vector<Module>& i_modules() const { return i_modules_; }
  [[nodiscard]] const std::vector<Module>& q_modules() const { return q_modules_; }

 private:
  /// Struct-of-arrays mirror of every pixel's LC state and static
  /// parameters, in bank order [I modules x pixels, then Q modules x
  /// pixels]. synthesize_into() advances ALL cells per sample through one
  /// batched kernels::lc_step call instead of walking the Module/Pixel
  /// object graph; the objects stay authoritative for construction (RNG
  /// draw order, per-pixel params exposed to tests) and for the emulator
  /// paths that still step modules directly.
  struct PixelBank {
    std::vector<double> drive;       ///< 1.0 driven / 0.0 released, per pixel
    std::vector<double> c;           ///< LC alignment state
    std::vector<double> s;           ///< LC surface-memory state
    std::vector<double> tau_charge;  ///< per-pixel (module-granular) time constants
    std::vector<double> tau_relax;
    std::vector<double> w;           ///< gain * area amplitude weight
    std::vector<sig::Complex> axis;  ///< e^{j 2 theta} polarization axis
    double tau_slow = 0.0;           ///< uniform across the tag
    double tau_memory = 0.0;
    double k_mem = 0.0;
  };

  /// First bank index of a module's pixel run.
  [[nodiscard]] std::size_t bank_base(bool is_i, int module) const {
    const auto l = static_cast<std::size_t>(cfg_.dsm_order);
    const auto bits = static_cast<std::size_t>(cfg_.bits_per_axis);
    return ((is_i ? 0 : l) + static_cast<std::size_t>(module)) * bits;
  }

  /// Writes the binary decomposition of `level` into the drive lanes of
  /// one module (pixel 0 carries the top bit, mirroring Module::step).
  void apply_level(bool is_i, int module, int level);

  TagConfig cfg_;
  std::vector<Module> i_modules_;
  std::vector<Module> q_modules_;
  std::vector<double> module_gain_i_;  ///< yaw illumination gradient per module
  std::vector<double> module_gain_q_;
  PixelBank bank_;
};

}  // namespace rt::lcm
