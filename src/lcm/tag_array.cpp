#include "lcm/tag_array.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace rt::lcm {

namespace {

/// Yaw stretches the effective LC time constants (off-axis retardance) and
/// imposes an illumination gradient across the module row. These are the
/// "received symbol deviation" effects of section 7.2.1 that channel
/// training must absorb.
LcTimings yawed_timings(const LcTimings& base, double yaw_rad, double skew) {
  const double s = std::sin(yaw_rad);
  LcTimings t = base;
  const double stretch = 1.0 + skew * s * s;
  t.tau_charge_s *= stretch;
  t.tau_relax_s *= stretch;
  return t;
}

}  // namespace

TagArray::TagArray(const TagConfig& config) : cfg_(config) {
  cfg_.validate();
  Rng rng(cfg_.seed);
  const auto timings = yawed_timings(cfg_.timings, cfg_.yaw_rad, cfg_.yaw_timing_skew);
  const double grad = 0.2 * std::sin(cfg_.yaw_rad);  // illumination gradient across the array
  for (int m = 0; m < cfg_.dsm_order; ++m) {
    Heterogeneity het = cfg_.heterogeneity;
    i_modules_.emplace_back(cfg_.bits_per_axis, 0.0, het, rng, timings);
    q_modules_.emplace_back(cfg_.bits_per_axis, rt::deg_to_rad(45.0), het, rng, timings);
    (void)m;
  }
  // Apply the yaw illumination gradient as a deterministic per-module gain
  // tilt by re-seeding gains is not possible post-construction; instead we
  // fold it into synthesis via module_gain_.
  module_gain_i_.resize(i_modules_.size());
  module_gain_q_.resize(q_modules_.size());
  const int l = cfg_.dsm_order;
  for (int m = 0; m < l; ++m) {
    const double pos = l > 1 ? (static_cast<double>(m) / (l - 1) - 0.5) : 0.0;
    module_gain_i_[m] = 1.0 + grad * pos;
    module_gain_q_[m] = 1.0 + grad * pos;
  }
}

void TagArray::reset() {
  for (auto& m : i_modules_) m.reset();
  for (auto& m : q_modules_) m.reset();
}

sig::IqWaveform TagArray::synthesize(std::span<const Firing> schedule, double fs,
                                     double duration_s) {
  SynthScratch scratch;
  sig::IqWaveform out;
  synthesize_into(schedule, fs, duration_s, scratch, out);
  return out;
}

void TagArray::synthesize_into(std::span<const Firing> schedule, double fs, double duration_s,
                               SynthScratch& scratch, sig::IqWaveform& out) {
  RT_TRACE_SPAN("lc_synthesize");
  RT_ENSURE(fs > 0.0 && duration_s > 0.0, "sample rate and duration must be positive");
  RT_ENSURE(std::is_sorted(schedule.begin(), schedule.end(),
                           [](const Firing& a, const Firing& b) { return a.time_s < b.time_s; }),
            "firing schedule must be sorted by time");

  // Expand firings into set-level / release events.
  using Event = SynthScratch::Event;
  auto& events = scratch.events;
  events.clear();
  events.reserve(schedule.size() * 4);
  std::uint32_t seq = 0;
  for (const auto& f : schedule) {
    RT_ENSURE(f.module >= 0 && f.module < cfg_.dsm_order, "firing module out of range");
    if (f.level_i >= 0) {
      events.push_back({f.time_s, f.module, seq++, true, f.level_i});
      events.push_back({f.time_s + cfg_.charge_s, f.module, seq++, true, 0});
    }
    if (f.level_q >= 0) {
      events.push_back({f.time_s, f.module, seq++, false, f.level_q});
      events.push_back({f.time_s + cfg_.charge_s, f.module, seq++, false, 0});
    }
  }
  // (t, seq) ordering reproduces stable_sort-by-t exactly -- seq breaks
  // ties in insertion order -- while std::sort stays allocation-free
  // (libstdc++ stable_sort grabs a temporary merge buffer per call).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  });

  const auto n = static_cast<std::size_t>(std::ceil(duration_s * fs));
  out.sample_rate_hz = fs;
  out.samples.assign(n, sig::Complex{});
  const double dt = 1.0 / fs;
  // Event times quantized to sample indices up front: comparing raw
  // floating-point times against i/fs makes an event land one sample late
  // or early depending on rounding of the schedule's time sums, which
  // would shift the whole waveform relative to the receiver's slot grid.
  auto& event_sample = scratch.event_sample;
  event_sample.resize(events.size());
  for (std::size_t e = 0; e < events.size(); ++e)
    event_sample[e] = static_cast<std::size_t>(std::llround(events[e].t * fs));
  std::size_t next_event = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (next_event < events.size() && event_sample[next_event] <= i) {
      const auto& e = events[next_event];
      auto& mod = e.is_i ? i_modules_[e.module] : q_modules_[e.module];
      mod.set_level(e.level);
      ++next_event;
    }
    sig::Complex acc{};
    for (std::size_t m = 0; m < i_modules_.size(); ++m)
      acc += module_gain_i_[m] * i_modules_[m].step(dt);
    for (std::size_t m = 0; m < q_modules_.size(); ++m)
      acc += module_gain_q_[m] * q_modules_[m].step(dt);
    out[i] = acc;
  }
}

double TagArray::drive_energy(std::span<const Firing> schedule) const {
  // Charge moved per firing ~ sum of driven pixel areas; drive duration is
  // constant (charge_s), so energy ~ sum of normalized levels.
  double total = 0.0;
  const double max_level = static_cast<double>((1 << cfg_.bits_per_axis) - 1);
  for (const auto& f : schedule) {
    if (f.level_i > 0) total += static_cast<double>(f.level_i) / max_level;
    if (f.level_q > 0) total += static_cast<double>(f.level_q) / max_level;
  }
  return total * cfg_.charge_s;
}

}  // namespace rt::lcm
