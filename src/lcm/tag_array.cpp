#include "lcm/tag_array.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "obs/trace.h"

namespace rt::lcm {

namespace {

/// Yaw stretches the effective LC time constants (off-axis retardance) and
/// imposes an illumination gradient across the module row. These are the
/// "received symbol deviation" effects of section 7.2.1 that channel
/// training must absorb.
LcTimings yawed_timings(const LcTimings& base, double yaw_rad, double skew) {
  const double s = std::sin(yaw_rad);
  LcTimings t = base;
  const double stretch = 1.0 + skew * s * s;
  t.tau_charge_s *= stretch;
  t.tau_relax_s *= stretch;
  return t;
}

}  // namespace

TagArray::TagArray(const TagConfig& config) : cfg_(config) {
  cfg_.validate();
  Rng rng(cfg_.seed);
  const auto timings = yawed_timings(cfg_.timings, cfg_.yaw_rad, cfg_.yaw_timing_skew);
  const double grad = 0.2 * std::sin(cfg_.yaw_rad);  // illumination gradient across the array
  for (int m = 0; m < cfg_.dsm_order; ++m) {
    Heterogeneity het = cfg_.heterogeneity;
    i_modules_.emplace_back(cfg_.bits_per_axis, 0.0, het, rng, timings);
    q_modules_.emplace_back(cfg_.bits_per_axis, rt::deg_to_rad(45.0), het, rng, timings);
    (void)m;
  }
  // Apply the yaw illumination gradient as a deterministic per-module gain
  // tilt by re-seeding gains is not possible post-construction; instead we
  // fold it into synthesis via module_gain_.
  module_gain_i_.resize(i_modules_.size());
  module_gain_q_.resize(q_modules_.size());
  const int l = cfg_.dsm_order;
  for (int m = 0; m < l; ++m) {
    const double pos = l > 1 ? (static_cast<double>(m) / (l - 1) - 0.5) : 0.0;
    module_gain_i_[m] = 1.0 + grad * pos;
    module_gain_q_[m] = 1.0 + grad * pos;
  }

  // Flatten the pixel graph into the SoA bank (I group then Q group,
  // module-major). Static parameters are read back from the constructed
  // pixels so the bank sees exactly the RNG-perturbed values.
  const auto n_px = static_cast<std::size_t>(2 * l * cfg_.bits_per_axis);
  bank_.drive.assign(n_px, 0.0);
  bank_.c.assign(n_px, 0.0);
  bank_.s.assign(n_px, 0.0);
  bank_.tau_charge.resize(n_px);
  bank_.tau_relax.resize(n_px);
  bank_.w.resize(n_px);
  bank_.axis.resize(n_px);
  bank_.tau_slow = timings.tau_slow_s;
  bank_.tau_memory = timings.tau_memory_s;
  bank_.k_mem = timings.memory_coupling;
  std::size_t p = 0;
  for (const auto* group : {&i_modules_, &q_modules_}) {
    for (const auto& mod : *group) {
      for (const auto& px : mod.pixels()) {
        const auto& pp = px.params();
        bank_.tau_charge[p] = pp.timings.tau_charge_s;
        bank_.tau_relax[p] = pp.timings.tau_relax_s;
        // Matches Pixel::step: gain * area rounds once up front; the
        // polarization axis is e^{j 2 (theta_b + eps)}.
        bank_.w[p] = pp.gain * pp.area;
        bank_.axis[p] = std::polar(1.0, 2.0 * (pp.polarizer_angle_rad + pp.angle_error_rad));
        ++p;
      }
    }
  }
}

void TagArray::reset() {
  for (auto& m : i_modules_) m.reset();
  for (auto& m : q_modules_) m.reset();
  std::fill(bank_.drive.begin(), bank_.drive.end(), 0.0);
  std::fill(bank_.c.begin(), bank_.c.end(), 0.0);
  std::fill(bank_.s.begin(), bank_.s.end(), 0.0);
}

void TagArray::apply_level(bool is_i, int module, int level) {
  const int bits = cfg_.bits_per_axis;
  RT_ENSURE(level >= 0 && level < (1 << bits), "drive level out of range");
  const std::size_t base = bank_base(is_i, module);
  for (int i = 0; i < bits; ++i) {
    const int bit = bits - 1 - i;
    bank_.drive[base + static_cast<std::size_t>(i)] = ((level >> bit) & 1) != 0 ? 1.0 : 0.0;
  }
}

sig::IqWaveform TagArray::synthesize(std::span<const Firing> schedule, double fs,
                                     double duration_s) {
  SynthScratch scratch;
  sig::IqWaveform out;
  synthesize_into(schedule, fs, duration_s, scratch, out);
  return out;
}

void TagArray::synthesize_into(std::span<const Firing> schedule, double fs, double duration_s,
                               SynthScratch& scratch, sig::IqWaveform& out) {
  RT_TRACE_SPAN("lc_synthesize");
  RT_ENSURE(fs > 0.0 && duration_s > 0.0, "sample rate and duration must be positive");
  RT_ENSURE(std::is_sorted(schedule.begin(), schedule.end(),
                           [](const Firing& a, const Firing& b) { return a.time_s < b.time_s; }),
            "firing schedule must be sorted by time");

  // Expand firings into set-level / release events.
  using Event = SynthScratch::Event;
  auto& events = scratch.events;
  events.clear();
  events.reserve(schedule.size() * 4);
  std::uint32_t seq = 0;
  for (const auto& f : schedule) {
    RT_ENSURE(f.module >= 0 && f.module < cfg_.dsm_order, "firing module out of range");
    if (f.level_i >= 0) {
      events.push_back({f.time_s, f.module, seq++, true, f.level_i});
      events.push_back({f.time_s + cfg_.charge_s, f.module, seq++, true, 0});
    }
    if (f.level_q >= 0) {
      events.push_back({f.time_s, f.module, seq++, false, f.level_q});
      events.push_back({f.time_s + cfg_.charge_s, f.module, seq++, false, 0});
    }
  }
  // (t, seq) ordering reproduces stable_sort-by-t exactly -- seq breaks
  // ties in insertion order -- while std::sort stays allocation-free
  // (libstdc++ stable_sort grabs a temporary merge buffer per call).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  });

  const auto n = static_cast<std::size_t>(std::ceil(duration_s * fs));
  out.sample_rate_hz = fs;
  out.samples.assign(n, sig::Complex{});
  const double dt = 1.0 / fs;
  // Event times quantized to sample indices up front: comparing raw
  // floating-point times against i/fs makes an event land one sample late
  // or early depending on rounding of the schedule's time sums, which
  // would shift the whole waveform relative to the receiver's slot grid.
  auto& event_sample = scratch.event_sample;
  event_sample.resize(events.size());
  for (std::size_t e = 0; e < events.size(); ++e)
    event_sample[e] = static_cast<std::size_t>(std::llround(events[e].t * fs));
  std::size_t next_event = 0;
  const std::size_t n_px = bank_.c.size();
  const kernels::LcBankParams bp{bank_.tau_charge.data(), bank_.tau_relax.data(),
                                 bank_.tau_slow, bank_.tau_memory, bank_.k_mem};
  const int bits = cfg_.bits_per_axis;
  // Cap constant-drive segments so the per-sample alignment rows stay
  // cache-resident (kMaxRun * n_px doubles). Splitting a segment is free:
  // lc_step_run over k then j samples is the same op sequence as k + j.
  constexpr std::size_t kMaxRun = 128;
  std::size_t i = 0;
  while (i < n) {
    while (next_event < events.size() && event_sample[next_event] <= i) {
      const auto& e = events[next_event];
      apply_level(e.is_i, e.module, e.level);
      ++next_event;
    }
    // Drive is now constant until the next event (or the end), so the
    // whole run advances through one segment kernel call that hands back
    // the per-sample alignment rows.
    std::size_t seg_end = n;
    if (next_event < events.size()) seg_end = std::min(seg_end, event_sample[next_event]);
    const std::size_t run = std::min(seg_end - i, kMaxRun);
    scratch.c_run.resize(run * n_px);
    // All 2*L*bits director ODEs advance in one batched kernel call; the
    // polarization sum below then replays the old object walk's exact
    // accumulation order (pixels into a module sum, module gain, then the
    // I group followed by the Q group), so a scalar-backend build stays
    // bit-identical to the pre-SoA pipeline.
    kernels::lc_step_run(n_px, run, dt, bank_.drive.data(), bank_.c.data(), bank_.s.data(),
                         scratch.c_run.data(), bp);
    for (std::size_t t = 0; t < run; ++t) {
      const double* crow = scratch.c_run.data() + t * n_px;
      sig::Complex acc{};
      std::size_t p = 0;
      for (std::size_t m = 0; m < i_modules_.size(); ++m) {
        sig::Complex macc{};
        for (int b = 0; b < bits; ++b, ++p)
          macc += bank_.w[p] * (2.0 * crow[p] - 1.0) * bank_.axis[p];
        acc += module_gain_i_[m] * macc;
      }
      for (std::size_t m = 0; m < q_modules_.size(); ++m) {
        sig::Complex macc{};
        for (int b = 0; b < bits; ++b, ++p)
          macc += bank_.w[p] * (2.0 * crow[p] - 1.0) * bank_.axis[p];
        acc += module_gain_q_[m] * macc;
      }
      out[i + t] = acc;
    }
    i += run;
  }
}

double TagArray::drive_energy(std::span<const Firing> schedule) const {
  // Charge moved per firing ~ sum of driven pixel areas; drive duration is
  // constant (charge_s), so energy ~ sum of normalized levels.
  double total = 0.0;
  const double max_level = static_cast<double>((1 << cfg_.bits_per_axis) - 1);
  for (const auto& f : schedule) {
    if (f.level_i > 0) total += static_cast<double>(f.level_i) / max_level;
    if (f.level_q > 0) total += static_cast<double>(f.level_q) / max_level;
  }
  return total * cfg_.charge_s;
}

}  // namespace rt::lcm
