// SN74LV595 shift-register daisy chain emulation.
//
// The prototype tag (section 6) controls 4 x 4 x 4 = 64 independent pixels
// without a wire mess by daisy-chaining 74LV595 8-bit shift registers on an
// SPI bus: the MCU clocks bits through the chain (SER -> QH' of each stage)
// and pulses RCLK to latch all storage registers onto the pixel drive
// lines at once. This emulation is bit-exact: shift on SRCLK rising edge,
// latch on RCLK rising edge, asynchronous SRCLR clear.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"

namespace rt::lcm {

class ShiftRegisterChain {
 public:
  /// `num_registers` 8-bit stages; total outputs = 8 * num_registers.
  explicit ShiftRegisterChain(std::size_t num_registers)
      : shift_(num_registers * 8, 0), latch_(num_registers * 8, 0) {
    RT_ENSURE(num_registers >= 1, "need at least one register");
  }

  [[nodiscard]] std::size_t size() const { return shift_.size(); }

  /// SRCLK rising edge with SER = `bit`: every stage shifts toward QH;
  /// bit index 0 is the first bit that will eventually reach the far end.
  void clock_in(bool bit) {
    for (std::size_t i = shift_.size(); i-- > 1;) shift_[i] = shift_[i - 1];
    shift_[0] = bit ? 1 : 0;
  }

  /// RCLK rising edge: copies the shift register to the output latches.
  void latch() { latch_ = shift_; }

  /// SRCLR low: clears the shift register (storage latches unaffected).
  void clear_shift() { std::fill(shift_.begin(), shift_.end(), 0); }

  /// Latched pixel drive lines. Output 0 is the *last* bit clocked in
  /// (nearest stage QA); output size()-1 is the first bit (far end QH).
  [[nodiscard]] const std::vector<std::uint8_t>& outputs() const { return latch_; }

  /// Convenience: one SPI transaction -- clocks in `bits` MSB-first
  /// (bits[0] ends up at the far end of the chain) and latches.
  void spi_write(std::span<const std::uint8_t> bits) {
    RT_ENSURE(bits.size() == shift_.size(), "SPI frame must fill the whole chain");
    for (const auto b : bits) clock_in(b != 0);
    latch();
  }

 private:
  std::vector<std::uint8_t> shift_;
  std::vector<std::uint8_t> latch_;
};

/// Maps a per-module level vector into the SPI frame for the daisy chain,
/// mirroring the prototype wiring where each module's pixels occupy
/// consecutive chain outputs, most significant (largest-area) pixel first.
/// Frame bit order: the LAST module's bits are clocked first so that after
/// a full transaction output i drives pixel i in natural order.
[[nodiscard]] inline std::vector<std::uint8_t> levels_to_spi_frame(std::span<const int> levels,
                                                                   int bits_per_module) {
  RT_ENSURE(bits_per_module >= 1 && bits_per_module <= 8, "bits_per_module in [1, 8]");
  std::vector<std::uint8_t> frame;
  frame.reserve(levels.size() * static_cast<std::size_t>(bits_per_module));
  // clock_in shifts everything away from output 0, so clock the last
  // module's most significant pixel first; after the transaction output
  // 4m + b carries bit b of levels[m].
  for (std::size_t mi = levels.size(); mi-- > 0;) {
    const int level = levels[mi];
    RT_ENSURE(level >= 0 && level < (1 << bits_per_module), "level out of range");
    for (int b = bits_per_module - 1; b >= 0; --b)
      frame.push_back(narrow_cast<std::uint8_t>((level >> b) & 1));
  }
  return frame;
}

}  // namespace rt::lcm
