// An LCM module: a group of binary-weighted pixels acting as one PAM
// (sub-)modulator.
//
// Prototype (section 6): each customized LCM contains pixels with area
// ratio 8:4:2:1, realizing amplitude-shift keying up to 16 levels per
// polarization axis. Driving "level" k charges exactly the pixels of the
// binary decomposition of k, so the module's aggregate swing is
// proportional to k / (2^bits - 1).
#pragma once

#include <vector>

#include "common/narrow.h"
#include "common/rng.h"
#include "lcm/pixel.h"

namespace rt::lcm {

/// Distribution widths for per-pixel manufacturing/illumination spread
/// (paper Fig. 11b). Zero-initialized = ideal homogeneous hardware.
struct Heterogeneity {
  double gain_sigma = 0.0;         ///< relative amplitude spread
  double timing_sigma = 0.0;       ///< relative time-constant spread
  double angle_sigma_rad = 0.0;    ///< polarizer attachment error spread
};

class Module {
 public:
  /// Creates `bits` pixels with areas 2^(bits-1) .. 1 at the given
  /// polarizer angle, drawing deviations from `het` using `rng`.
  ///
  /// Granularity of the spread reflects the hardware: each LCM module is
  /// one liquid-crystal cell behind one back polarizer, so the polarizer
  /// attachment error and the LC time constants are drawn once per module
  /// (and absorbed by the per-module online training), while the
  /// amplitude/transmission gain varies per pixel (etching/ITO spread --
  /// what the pixel-calibration extension estimates).
  Module(int bits, double polarizer_angle_rad, const Heterogeneity& het, Rng& rng,
         const LcTimings& timings = {}) {
    RT_ENSURE(bits >= 1 && bits <= 8, "module supports 1..8 binary-weighted pixels");
    const double total_area = static_cast<double>((1 << bits) - 1);
    const double module_angle_error = het.angle_sigma_rad * rng.gaussian();
    LcTimings module_timings = timings;
    module_timings.tau_charge_s *= 1.0 + het.timing_sigma * rng.gaussian();
    module_timings.tau_relax_s *= 1.0 + het.timing_sigma * rng.gaussian();
    for (int b = bits - 1; b >= 0; --b) {
      PixelParams p;
      p.area = static_cast<double>(1 << b) / total_area;  // normalized: full level -> 1.0
      p.gain = 1.0 + het.gain_sigma * rng.gaussian();
      RT_ENSURE(p.gain > 0.0, "heterogeneity produced non-positive gain");
      p.polarizer_angle_rad = polarizer_angle_rad;
      p.angle_error_rad = module_angle_error;
      p.timings = module_timings;
      pixels_.emplace_back(p);
    }
  }

  [[nodiscard]] int bits() const { return narrow_cast<int>(pixels_.size()); }
  [[nodiscard]] int max_level() const { return (1 << bits()) - 1; }

  /// Sets the drive level for subsequent step() calls: pixels named by the
  /// binary decomposition of `level` are driven.
  void set_level(int level) {
    RT_ENSURE(level >= 0 && level <= max_level(), "drive level out of range");
    level_ = level;
  }

  /// Releases all pixels (level 0).
  void release() { level_ = 0; }

  [[nodiscard]] int level() const { return level_; }

  /// Advances all pixels by dt and returns the module's aggregate complex
  /// contribution. Pixel i (area 2^(bits-1-i)) is driven iff the matching
  /// bit of the current level is set.
  Complex step(double dt) {
    Complex acc{};
    for (std::size_t i = 0; i < pixels_.size(); ++i) {
      const int bit = bits() - 1 - narrow_cast<int>(i);
      const bool driven = ((level_ >> bit) & 1) != 0;
      acc += pixels_[i].step(driven, dt);
    }
    return acc;
  }

  void reset() {
    for (auto& px : pixels_) px.reset();
    level_ = 0;
  }

  [[nodiscard]] const std::vector<Pixel>& pixels() const { return pixels_; }

 private:
  std::vector<Pixel> pixels_;
  int level_ = 0;
};

}  // namespace rt::lcm
