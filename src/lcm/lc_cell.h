// Liquid-crystal cell state dynamics.
//
// Physical picture (paper sections 2.2, 4.1 and ref [16]): a twisted-
// nematic cell rotates light polarization by 90deg relaxed and 0deg when
// charged. The director realigns with the field quickly when driven
// (electric force, tau ~ 0.1 ms) but relaxes slowly when released
// (elastic + viscous forces, ~4 ms) with a ~1 ms near-flat plateau at the
// start of the discharge -- the asymmetry DSM exploits.
//
// We model the alignment state c(t) in [0, 1] (1 = field-aligned/charged)
// coupled to a slow surface-memory state s(t) that tracks recent charge
// history (director pretilt / backflow):
//   driven:   dc/dt = (1 - c) / (tau_charge * (1 + k_mem (1 - s)))
//   released: dc/dt = -c (1 - c) / tau_relax - c / tau_slow
//   always:   ds/dt = (c - s) / tau_memory
// The released form is logistic-like: near c = 1 the (1 - c) factor kills
// the first term, leaving only the slow leak -> plateau; mid-range the
// relaxation dominates -> fast fall; near 0 it tails off exponentially.
// The memory coupling makes a recharge ramp up noticeably slower when the
// cell sat discharged for a while ("010" vs "110", paper Fig. 11a) -- the
// tail effect that the V-bit fingerprint training must absorb.
#pragma once

#include "common/error.h"

namespace rt::lcm {

/// Time constants of one LC cell. Defaults reproduce the paper's Fig. 3
/// shape: ~0.5 ms effective charge time, ~1 ms discharge plateau, ~3.5 ms
/// total discharge.
struct LcTimings {
  double tau_charge_s = 0.10e-3;
  double tau_relax_s = 0.55e-3;
  double tau_slow_s = 20e-3;
  double tau_memory_s = 3.0e-3;    ///< surface-memory tracking time
  double memory_coupling = 0.8;    ///< charge-delay strength of low memory

  void validate() const {
    RT_ENSURE(tau_charge_s > 0.0 && tau_relax_s > 0.0 && tau_slow_s > 0.0 && tau_memory_s > 0.0,
              "LC time constants must be positive");
    RT_ENSURE(memory_coupling >= 0.0, "memory coupling cannot be negative");
  }
};

class LcCell {
 public:
  explicit LcCell(const LcTimings& timings = {}) : t_(timings) { t_.validate(); }

  /// Resets the alignment state (0 = fully relaxed); the memory state
  /// follows the alignment.
  void reset(double c0 = 0.0) {
    RT_ENSURE(c0 >= 0.0 && c0 <= 1.0, "state must be in [0, 1]");
    c_ = c0;
    s_ = c0;
  }

  /// Alignment state in [0, 1].
  [[nodiscard]] double state() const { return c_; }

  /// Surface-memory state in [0, 1].
  [[nodiscard]] double memory() const { return s_; }

  /// Advances the cell by `dt` seconds with the drive voltage on/off.
  /// Internally substeps so accuracy does not depend on the caller's
  /// sample rate. Returns the new state.
  double step(bool driven, double dt);

  [[nodiscard]] const LcTimings& timings() const { return t_; }

 private:
  LcTimings t_;
  double c_ = 0.0;
  double s_ = 0.0;
};

}  // namespace rt::lcm
