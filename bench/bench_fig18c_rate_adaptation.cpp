// Fig. 18c: link-aware rate adaptation in a networked deployment.
//
// Part 1 (paper headline): tags uniformly placed 1..4.3 m from a
// 50deg-FoV reader (65..14 dB SNR per the fitted link budget); the reader
// assigns each tag its best (rate, coding) pair versus a baseline where
// every tag runs the rate the worst tag needs. Mean throughput gain grows
// from ~1.2x at 4 tags to ~3.7x at 100 tags over 100 trials. The study
// threads one Rng through all trials (each trial's placement draw depends
// on the previous), so it stays serial; the 8-tag run also reports the
// per-tag telemetry (discovery round, assigned rate, ARQ retries).
//
// Part 2 (closed loop): the deployable version of the same assignment --
// the reader probes each distance through the real PHY pipeline, reads
// the SNR estimate off the fitted preamble, and drives a hysteresis
// RateController. Reported side by side with a twin controller fed the
// ground-truth SNR (oracle) and the fixed most-robust baseline. The probe
// phase runs once serial and once on the thread pool and the two results
// must be bit-identical (the PR 2 determinism contract).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mac/closed_loop.h"
#include "mac/network.h"

int main() {
  rt::bench::print_header("Fig. 18c -- rate-adaptive MAC throughput gain vs tag count",
                          "section 7.3, Figure 18c",
                          "gain ~1.2x at 4 tags rising toward ~3.7x at 100 tags; "
                          "estimated-SNR loop tracks the oracle loop");
  rt::bench::BenchReport report("fig18c_rate_adaptation");

  const auto table = rt::mac::RateTable::paper_default();
  const rt::mac::GoodputModel model;
  rt::mac::NetworkStudyConfig cfg;
  cfg.trials = rt::bench::env_int("RT_BENCH_TRIALS", 100);
  rt::Rng rng(2020);

  const std::vector<int> tag_counts = {1, 2, 4, 8, 16, 32, 64, 100};
  std::printf("\n%-8s %-16s %-16s %-8s %-12s\n", "tags", "adaptive (Kbps)", "baseline (Kbps)",
              "gain", "disc rounds");
  rt::obs::Recorder obs_rec;
  const rt::obs::ScopedBind obs_bind(obs_rec);
  std::vector<double> gains;
  std::vector<rt::mac::TagTelemetry> per_tag_8;
  for (const int n : tag_counts) {
    RT_TRACE_SPAN("rate_adaptation_trials");
    const auto r = rt::mac::rate_adaptation_study(n, table, model, cfg, rng);
    gains.push_back(r.gain());
    if (n == 8) per_tag_8 = r.per_tag;
    report.add_value("adaptive_bps", n, r.mean_adaptive_bps);
    report.add_value("baseline_bps", n, r.mean_baseline_bps);
    report.add_value("gain", n, r.gain());
    std::printf("%-8d %-16.2f %-16.2f %-8.2f %-12.1f\n", n, r.mean_adaptive_bps / 1000.0,
                r.mean_baseline_bps / 1000.0, r.gain(), r.mean_discovery_rounds);
  }

  // Per-tag telemetry of the 8-tag network (tag id is just an index; the
  // spread across ids shows the counters separate per tag, not that any
  // id is special -- placements are re-drawn every trial).
  std::printf("\nper-tag telemetry (8 tags, %d trials):\n", cfg.trials);
  std::printf("%-6s %-12s %-14s %-12s %-10s\n", "tag", "disc round", "assigned idx",
              "arq retries", "delivery");
  for (std::size_t i = 0; i < per_tag_8.size(); ++i) {
    const auto& t = per_tag_8[i];
    std::printf("%-6zu %-12.2f %-14.2f %-12zu %-10.3f\n", i, t.mean_discovery_round(),
                t.mean_assigned_index(), static_cast<std::size_t>(t.arq_retries),
                t.delivery_rate());
    const double x = static_cast<double>(i);
    report.add_value("tag_mean_discovery_round", x, t.mean_discovery_round());
    report.add_value("tag_mean_assigned_index", x, t.mean_assigned_index());
    report.add_value("tag_arq_retries", x, static_cast<double>(t.arq_retries));
    report.add_value("tag_delivery_rate", x, t.delivery_rate());
  }

  // Part 2: closed loop on estimated SNR, serial vs parallel.
  rt::mac::ClosedLoopConfig loop_cfg;
  loop_cfg.probe_packets = rt::bench::env_int("RT_BENCH_PROBES", 12);
  loop_cfg.threads = 1;
  const auto serial = rt::mac::run_closed_loop_study(table, model, loop_cfg);
  loop_cfg.threads = rt::bench::bench_threads();
  const auto parallel = rt::mac::run_closed_loop_study(table, model, loop_cfg);
  const bool identical = serial.identical(parallel);

  std::printf("\nclosed loop (probe burst %d packets/distance):\n", loop_cfg.probe_packets);
  std::printf("%-8s %-10s %-10s %-9s %-14s %-14s %-14s\n", "dist(m)", "SNR(dB)", "est(dB)",
              "lost", "est (Kbps)", "oracle (Kbps)", "baseline (Kbps)");
  bool estimated_beats_baseline = true;
  double sum_abs_err = 0.0;
  double sum_ratio = 0.0;
  for (const auto& pt : serial.points) {
    std::printf("%-8.2f %-10.2f %-10.2f %-9d %-14.3f %-14.3f %-14.3f\n", pt.distance_m,
                pt.snr_true_db, pt.mean_estimate_db, pt.probes_lost,
                pt.goodput_estimated_bps / 1000.0, pt.goodput_oracle_bps / 1000.0,
                pt.goodput_baseline_bps / 1000.0);
    report.add_value("snr_true_db", pt.distance_m, pt.snr_true_db);
    report.add_value("snr_estimated_db", pt.distance_m, pt.mean_estimate_db);
    report.add_value("goodput_estimated_bps", pt.distance_m, pt.goodput_estimated_bps);
    report.add_value("goodput_oracle_bps", pt.distance_m, pt.goodput_oracle_bps);
    report.add_value("goodput_baseline_bps", pt.distance_m, pt.goodput_baseline_bps);
    estimated_beats_baseline =
        estimated_beats_baseline && pt.goodput_estimated_bps >= pt.goodput_baseline_bps;
    sum_abs_err += std::abs(pt.mean_estimate_db - pt.snr_true_db);
    sum_ratio += pt.goodput_oracle_bps > 0.0 ? pt.goodput_estimated_bps / pt.goodput_oracle_bps
                                             : 1.0;
  }
  const double n_pts = static_cast<double>(serial.points.size());
  const double mean_abs_err = sum_abs_err / n_pts;
  const double est_over_oracle = sum_ratio / n_pts;
  std::printf("serial == %u-thread rerun: %s; mean |est-true| = %.2f dB; "
              "estimated/oracle goodput = %.3f\n",
              loop_cfg.threads, identical ? "bit-identical" : "MISMATCH", mean_abs_err,
              est_over_oracle);

  std::printf("\npaper: 1.2x at 4 tags, up to 3.7x at 100 tags\n");
  const double gain4 = gains[2];
  const double gain100 = gains.back();
  bool growing = true;
  for (std::size_t i = 2; i < gains.size(); ++i) growing = growing && gains[i] >= gains[i - 1] - 0.15;
  const bool ok = gain4 > 1.0 && gain100 > 2.0 && gain100 > gain4 && growing && identical &&
                  estimated_beats_baseline && est_over_oracle > 0.8;
  report.add_scalar("gain_4_tags", gain4);
  report.add_scalar("gain_100_tags", gain100);
  report.add_scalar("closed_loop_identical", identical ? 1.0 : 0.0);
  report.add_scalar("closed_loop_mean_abs_estimate_error_db", mean_abs_err);
  report.add_scalar("closed_loop_estimated_over_oracle", est_over_oracle);
  report.add_scalar("closed_loop_estimated_beats_baseline", estimated_beats_baseline ? 1.0 : 0.0);
  report.add_recorder(obs_rec);
  report.add_metrics(serial.metrics);
  report.write();
  std::printf("shape check: gain(4)=%.2f > 1, gain(100)=%.2f >> gain(4), growing, closed loop "
              "identical + est>=baseline at every distance: %s\n",
              gain4, gain100, ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
