// Fig. 18c: link-aware rate adaptation in a networked deployment.
//
// Paper: tags uniformly placed 1..4.3 m from a 50deg-FoV reader (65..14 dB
// SNR per the fitted link budget); the reader assigns each tag its best
// (rate, coding) pair versus a baseline where every tag runs the rate the
// worst tag needs. Mean throughput gain grows from ~1.2x at 4 tags to
// ~3.7x at 100 tags over 100 trials. Expected shape: gain > 1 and growing
// with the tag count.
//
// The study threads one Rng through all trials (each trial's placement
// draw depends on the previous), so this bench stays serial and only adds
// the JSON report.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mac/network.h"

int main() {
  rt::bench::print_header("Fig. 18c -- rate-adaptive MAC throughput gain vs tag count",
                          "section 7.3, Figure 18c",
                          "gain ~1.2x at 4 tags rising toward ~3.7x at 100 tags");
  rt::bench::BenchReport report("fig18c_rate_adaptation");

  const auto table = rt::mac::RateTable::paper_default();
  const rt::mac::GoodputModel model;
  rt::mac::NetworkStudyConfig cfg;
  cfg.trials = rt::bench::env_int("RT_BENCH_TRIALS", 100);
  rt::Rng rng(2020);

  const std::vector<int> tag_counts = {1, 2, 4, 8, 16, 32, 64, 100};
  std::printf("\n%-8s %-16s %-16s %-8s %-12s\n", "tags", "adaptive (Kbps)", "baseline (Kbps)",
              "gain", "disc rounds");
  rt::obs::Recorder obs_rec;
  const rt::obs::ScopedBind obs_bind(obs_rec);
  std::vector<double> gains;
  for (const int n : tag_counts) {
    RT_TRACE_SPAN("rate_adaptation_trials");
    const auto r = rt::mac::rate_adaptation_study(n, table, model, cfg, rng);
    gains.push_back(r.gain());
    report.add_value("adaptive_bps", n, r.mean_adaptive_bps);
    report.add_value("baseline_bps", n, r.mean_baseline_bps);
    report.add_value("gain", n, r.gain());
    std::printf("%-8d %-16.2f %-16.2f %-8.2f %-12.1f\n", n, r.mean_adaptive_bps / 1000.0,
                r.mean_baseline_bps / 1000.0, r.gain(), r.mean_discovery_rounds);
  }

  std::printf("\npaper: 1.2x at 4 tags, up to 3.7x at 100 tags\n");
  const double gain4 = gains[2];
  const double gain100 = gains.back();
  bool growing = true;
  for (std::size_t i = 2; i < gains.size(); ++i) growing = growing && gains[i] >= gains[i - 1] - 0.15;
  const bool ok = gain4 > 1.0 && gain100 > 2.0 && gain100 > gain4 && growing;
  report.add_scalar("gain_4_tags", gain4);
  report.add_scalar("gain_100_tags", gain100);
  report.add_recorder(obs_rec);
  report.write();
  std::printf("shape check: gain(4)=%.2f > 1, gain(100)=%.2f >> gain(4), growing: %s\n", gain4,
              gain100, ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
