// Fig. 16a: BER versus line-of-sight distance for the 4 and 8 Kbps links.
//
// Paper: the 8 Kbps link works (BER < 1%) to 7.5 m and 4 Kbps to 10.5 m
// under the +-10deg-FoV 4 W reader. Expected shape: BER grows with
// distance; 4 Kbps sustains a longer range than 8 Kbps; both reach metres.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 16a -- BER vs distance for 4 / 8 Kbps",
                          "section 7.2.1, Figure 16a",
                          "monotone BER growth; 4 Kbps range > 8 Kbps range");
  rt::bench::BenchReport report("fig16a_rate_distance");

  struct RateCase {
    const char* name;
    rt::phy::PhyParams params;
  };
  const std::vector<RateCase> cases = {{"4kbps", rt::phy::PhyParams::rate_4kbps()},
                                       {"8kbps", rt::phy::PhyParams::rate_8kbps()}};
  const std::vector<double> distances = {3.0, 5.0, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5};
  const auto budget = rt::optics::LinkBudget::narrow_beam();

  // One sweep point per (rate, distance); the whole figure runs through
  // the engine in a single fan-out.
  std::vector<rt::runtime::SweepPoint> points;
  for (const auto& rc : cases) {
    const auto tag = rt::bench::realistic_tag(rc.params);
    const auto offline = rt::sim::train_offline_model(rc.params, tag);
    for (const double d : distances) {
      rt::sim::ChannelConfig ch;
      ch.budget = budget;
      ch.pose.distance_m = d;
      ch.noise_seed = static_cast<std::uint64_t>(d * 100);
      points.push_back(rt::bench::make_point(rc.params, tag, ch, offline));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-8s", "d (m)");
  for (const double d : distances) std::printf("%12.1f", d);
  std::printf("\n%-8s", "SNR(dB)");
  for (const double d : distances) std::printf("%12.1f", budget.snr_db_at(d));
  std::printf("\n");

  std::vector<double> range_at_1pct;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::printf("%-8s", cases[ci].name);
    double last_good = 0.0;
    for (std::size_t di = 0; di < distances.size(); ++di) {
      const auto& stats = sweep.stats[ci * distances.size() + di];
      if (stats.ber() < 0.01) last_good = distances[di];
      report.add_point(cases[ci].name, distances[di], stats);
      std::printf("%12s", rt::bench::ber_str(stats).c_str());
    }
    range_at_1pct.push_back(last_good);
    std::printf("\n");
  }

  std::printf("\nworking range (last distance with BER < 1%%): 4kbps %.1f m, 8kbps %.1f m\n",
              range_at_1pct[0], range_at_1pct[1]);
  std::printf("paper: 4kbps 10.5 m, 8kbps 7.5 m\n");
  report.add_scalar("range_4kbps_m", range_at_1pct[0]);
  report.add_scalar("range_8kbps_m", range_at_1pct[1]);
  report.write();
  const bool shape = range_at_1pct[0] > range_at_1pct[1] && range_at_1pct[1] >= 3.0;
  std::printf("shape check: lower rate reaches further, both reach metres: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
