// Fig. 16a: BER versus line-of-sight distance for the 4 and 8 Kbps links.
//
// Paper: the 8 Kbps link works (BER < 1%) to 7.5 m and 4 Kbps to 10.5 m
// under the +-10deg-FoV 4 W reader. Expected shape: BER grows with
// distance; 4 Kbps sustains a longer range than 8 Kbps; both reach metres.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 16a -- BER vs distance for 4 / 8 Kbps",
                          "section 7.2.1, Figure 16a",
                          "monotone BER growth; 4 Kbps range > 8 Kbps range");

  struct RateCase {
    const char* name;
    rt::phy::PhyParams params;
  };
  const std::vector<RateCase> cases = {{"4kbps", rt::phy::PhyParams::rate_4kbps()},
                                       {"8kbps", rt::phy::PhyParams::rate_8kbps()}};
  const std::vector<double> distances = {3.0, 5.0, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5};

  std::printf("\n%-8s", "d (m)");
  for (const double d : distances) std::printf("%12.1f", d);
  std::printf("\n%-8s", "SNR(dB)");
  const auto budget = rt::optics::LinkBudget::narrow_beam();
  for (const double d : distances) std::printf("%12.1f", budget.snr_db_at(d));
  std::printf("\n");

  std::vector<double> range_at_1pct;
  for (const auto& rc : cases) {
    const auto tag = rt::bench::realistic_tag(rc.params);
    const auto offline = rt::sim::train_offline_model(rc.params, tag);
    std::printf("%-8s", rc.name);
    double last_good = 0.0;
    for (const double d : distances) {
      rt::sim::ChannelConfig ch;
      ch.budget = budget;
      ch.pose.distance_m = d;
      ch.noise_seed = static_cast<std::uint64_t>(d * 100);
      const auto stats = rt::bench::run_point(rc.params, tag, ch, offline);
      if (stats.ber() < 0.01) last_good = d;
      std::printf("%12s", rt::bench::ber_str(stats).c_str());
      std::fflush(stdout);
    }
    range_at_1pct.push_back(last_good);
    std::printf("\n");
  }

  std::printf("\nworking range (last distance with BER < 1%%): 4kbps %.1f m, 8kbps %.1f m\n",
              range_at_1pct[0], range_at_1pct[1]);
  std::printf("paper: 4kbps 10.5 m, 8kbps 7.5 m\n");
  const bool shape = range_at_1pct[0] > range_at_1pct[1] && range_at_1pct[1] >= 3.0;
  std::printf("shape check: lower rate reaches further, both reach metres: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
