// Fig. 18b: soft-vs-hard decision coding gain over the real link.
//
// Runs FEC-wrapped packets through the full TX -> channel -> RX pipeline
// (sim::CodedLink) instead of modeling coding analytically: every frame is
// whitened, encoded, interleaved, transmitted, DFE-equalized, and decoded
// twice from the *same* received waveform -- once from the demapper's
// exported LLRs (soft Viterbi / RS with GMD erasure retries) and once from
// sliced bits (classic hard decision). The spread between the two curves
// is the soft-decision coding gain the paper's Fig. 18b study motivates.
//
// Parts:
//   1. CC(7,1/2) + RS(63,47) post-decode BER vs SNR at 16 Kbps, soft and
//      hard, against the raw channel BER of the same waveforms.
//   2. Tab. 4 ambient-mobility scenarios: soft decoding must not lose to
//      hard under gain ripple either.
//   3. Expected goodput per (rate, code) option from the *measured*
//      curves (mac::GoodputModel::add_measurements). The raw 16 Kbps link
//      carries a residual BER floor (pixel heterogeneity), so -- exactly
//      as the paper's Fig. 18b finds -- the coded curves dominate raw
//      across the span, and the winning code lightens (higher effective
//      rate) as SNR improves.
//
// Gates (exit non-zero when violated):
//   - soft CC info errors <= hard CC info errors at every SNR point, and
//     strictly fewer summed over the low-SNR half (measurable gain)
//   - RS GMD erasure decoding delivers no more frame failures than
//     errors-only RS at any SNR
//   - soft never loses to hard under any Tab. 4 mobility scenario
//   - coded campaigns are bit-identical serial vs. N-thread
//   - measured goodput: a coded option beats raw 16 Kbps at every point,
//     and the winner's effective rate does not drop as SNR rises
//
// Knobs: RT_BENCH_PACKETS / RT_BENCH_PAYLOAD / RT_BENCH_THREADS.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "coding/code_descriptor.h"
#include "mac/goodput.h"
#include "runtime/thread_pool.h"
#include "sim/coded_link.h"
#include "sim/mobility.h"

namespace {

using rt::sim::CodedLink;
using rt::sim::CodedLinkStats;

/// Runs one coded campaign over packets 0..packets-1, partitioned across
/// the pool. Workspaces are per-partition, stats merge associatively, so
/// the result is bit-identical to CodedLink::run() at any thread count.
CodedLinkStats run_parallel(const CodedLink& clink, int packets, std::size_t payload,
                            CodedLink::DecodeMode mode, rt::runtime::ThreadPool& pool,
                            rt::bench::BenchReport& report) {
  const int threads = std::max(1, static_cast<int>(pool.size()));
  const int chunk = (packets + threads - 1) / threads;
  const std::size_t parts = static_cast<std::size_t>((packets + chunk - 1) / chunk);
  std::vector<rt::sim::PacketWorkspace> wss(parts);  // fixed size: tasks hold pointers
  std::vector<std::future<CodedLinkStats>> futs;
  futs.reserve(parts);
  for (std::size_t t = 0; t < parts; ++t) {
    const int lo = static_cast<int>(t) * chunk;
    const int hi = std::min(packets, lo + chunk);
    auto* ws = &wss[t];
    futs.push_back(pool.submit([&clink, ws, lo, hi, payload, mode] {
      CodedLinkStats s;
      for (int p = lo; p < hi; ++p)
        s.add(clink.run_packet(static_cast<std::uint64_t>(p), payload, *ws, mode));
      return s;
    }));
  }
  CodedLinkStats total;
  for (auto& f : futs) total.merge(f.get());
  for (const auto& ws : wss) report.add_recorder(ws.obs);
  return total;
}

/// Post-decode info BER with the same floor/empty conventions as the raw
/// benches print.
std::string info_ber_str(const CodedLinkStats& s) {
  return rt::bench::ber_str_counts(s.info_bit_errors, s.info_bits);
}

/// SNR at which a measured (snr, ber) curve crosses `target` (log-linear
/// interpolation over the first crossing, curves assumed to improve with
/// SNR). nullopt when the curve never crosses.
std::optional<double> snr_at_ber(const std::vector<std::pair<double, double>>& pts,
                                 double target) {
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const auto [s0, b0] = pts[i - 1];
    const auto [s1, b1] = pts[i];
    if (b0 < target || b1 > target || b0 == b1) continue;
    const double l0 = std::log10(std::max(b0, 1e-12));
    const double l1 = std::log10(std::max(b1, 1e-12));
    const double lt = std::log10(target);
    return s0 + (s1 - s0) * (l0 - lt) / (l0 - l1);
  }
  return std::nullopt;
}

}  // namespace

int main() {
  rt::bench::print_header(
      "Fig. 18b -- soft-vs-hard decision coding gain (measured, end to end)",
      "section 7.2.2, Fig. 18b + Tab. 4 mobility",
      "soft decoding beats hard at low SNR; RS erasures never hurt; coded "
      "options dominate raw goodput, lightening as SNR improves");
  rt::bench::BenchReport report("fig18b_coding_gain");

  const int packets = rt::bench::packets_per_point();
  const std::size_t payload = rt::bench::payload_bytes();
  const unsigned threads = rt::bench::bench_threads();
  rt::runtime::ThreadPool pool(threads);

  const auto params = rt::phy::PhyParams::rate_16kbps();
  const auto tag = rt::bench::realistic_tag(params);
  const auto offline = rt::sim::train_offline_model(params, tag);

  rt::coding::CodedFrameConfig cc_cfg;
  cc_cfg.code = rt::coding::CodeDescriptor::convolutional(7);
  // RS(63,47) matches the CC frame's airtime class at this payload (one
  // block, 16 parity bytes), so the two codes compare at similar overhead.
  rt::coding::CodedFrameConfig rs_cfg;
  rs_cfg.code = rt::coding::CodeDescriptor::reed_solomon(63, 47);

  // Part 1: post-decode BER vs SNR around the 16 Kbps threshold (Tab. 3:
  // 1% raw BER at 33 dB). Every row decodes the same waveforms four ways.
  const std::vector<double> snrs = {29.0, 31.0, 32.0, 33.0, 35.0, 37.0};
  struct Row {
    double snr = 0.0;
    CodedLinkStats cc_soft, cc_hard, rs_soft, rs_hard;
  };
  std::vector<Row> rows;
  std::printf("\n%-7s %-10s | %-10s %-10s | %-10s %-10s %-9s\n", "SNR", "raw BER", "CC hard",
              "CC soft", "RS hard", "RS soft", "erasures");
  CodedLinkStats mid_soft_parallel;  // determinism reference, filled at 33 dB
  const rt::sim::LinkSimulator* mid_link = nullptr;
  std::vector<std::unique_ptr<rt::sim::LinkSimulator>> links;  // outlive the CodedLinks
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    rt::sim::ChannelConfig ch;
    ch.snr_override_db = snrs[i];
    ch.noise_seed = 500 + i;
    rt::sim::SimOptions sopts;
    sopts.shared_offline_model = offline;
    sopts.export_soft_bits = true;
    links.push_back(std::make_unique<rt::sim::LinkSimulator>(params, tag, ch, sopts));
    const auto& link = *links.back();
    const CodedLink cc(link, cc_cfg);
    const CodedLink rs(link, rs_cfg);

    Row row;
    row.snr = snrs[i];
    row.cc_soft = run_parallel(cc, packets, payload, CodedLink::DecodeMode::kSoft, pool, report);
    row.cc_hard = run_parallel(cc, packets, payload, CodedLink::DecodeMode::kHard, pool, report);
    row.rs_soft = run_parallel(rs, packets, payload, CodedLink::DecodeMode::kSoft, pool, report);
    row.rs_hard = run_parallel(rs, packets, payload, CodedLink::DecodeMode::kHard, pool, report);
    if (snrs[i] == 33.0) {
      mid_soft_parallel = row.cc_soft;
      mid_link = &link;
    }

    std::printf("%-7.1f %-10s | %-10s %-10s | %-10s %-10s %-9zu\n", row.snr,
                rt::bench::ber_str_counts(row.cc_soft.raw_bit_errors, row.cc_soft.raw_bits).c_str(),
                info_ber_str(row.cc_hard).c_str(), info_ber_str(row.cc_soft).c_str(),
                info_ber_str(row.rs_hard).c_str(), info_ber_str(row.rs_soft).c_str(),
                row.rs_soft.erasures_used);
    report.add_value("raw_ber", row.snr, row.cc_soft.raw_ber());
    report.add_value("cc_hard_ber", row.snr, row.cc_hard.ber());
    report.add_value("cc_soft_ber", row.snr, row.cc_soft.ber());
    report.add_value("rs_hard_ber", row.snr, row.rs_hard.ber());
    report.add_value("rs_soft_ber", row.snr, row.rs_soft.ber());
    report.add_value("cc_soft_fer", row.snr, row.cc_soft.frame_error_rate());
    report.add_value("cc_hard_fer", row.snr, row.cc_hard.frame_error_rate());
    report.add_value("rs_soft_erasures", row.snr, static_cast<double>(row.rs_soft.erasures_used));
    rows.push_back(row);
  }

  int failures = 0;

  // Gate: soft CC never loses to hard CC, and wins strictly where the
  // channel is actually errored (the low-SNR half of the sweep).
  std::size_t low_soft = 0, low_hard = 0;
  for (const auto& row : rows) {
    if (row.cc_soft.info_bit_errors > row.cc_hard.info_bit_errors) {
      std::printf("FAIL: soft CC worse than hard at %.1f dB (%zu > %zu errors)\n", row.snr,
                  row.cc_soft.info_bit_errors, row.cc_hard.info_bit_errors);
      ++failures;
    }
    if (row.snr <= snrs[snrs.size() / 2]) {
      low_soft += row.cc_soft.info_bit_errors;
      low_hard += row.cc_hard.info_bit_errors;
    }
  }
  if (low_soft >= low_hard) {
    std::printf("FAIL: no measurable soft-decision gain at low SNR (soft %zu vs hard %zu)\n",
                low_soft, low_hard);
    ++failures;
  } else {
    std::printf("\nsoft-decision gain at low SNR: %zu -> %zu info errors (%.1fx)\n", low_hard,
                low_soft, static_cast<double>(low_hard) / std::max<std::size_t>(low_soft, 1));
  }
  report.add_scalar("low_snr_soft_errors", static_cast<double>(low_soft));
  report.add_scalar("low_snr_hard_errors", static_cast<double>(low_hard));

  // Gate: GMD erasure retries only ever rescue frames -- errors-only RS
  // must not beat the LLR-guided decoder anywhere.
  for (const auto& row : rows) {
    if (row.rs_soft.crc_failures > row.rs_hard.crc_failures) {
      std::printf("FAIL: RS erasure decoding lost frames at %.1f dB (%d > %d)\n", row.snr,
                  row.rs_soft.crc_failures, row.rs_hard.crc_failures);
      ++failures;
    }
  }
  std::size_t total_erasures = 0;
  for (const auto& row : rows) total_erasures += row.rs_soft.erasures_used;
  report.add_scalar("rs_erasures_used", static_cast<double>(total_erasures));

  // Coding gain at the paper's 1% reliability bar, when both curves cross.
  std::vector<std::pair<double, double>> soft_curve, hard_curve;
  for (const auto& row : rows) {
    soft_curve.emplace_back(row.snr, row.cc_soft.ber());
    hard_curve.emplace_back(row.snr, row.cc_hard.ber());
  }
  const auto soft_1pc = snr_at_ber(soft_curve, 0.01);
  const auto hard_1pc = snr_at_ber(hard_curve, 0.01);
  if (soft_1pc && hard_1pc) {
    std::printf("coding gain at 1%% info BER: %.1f dB (hard %.1f dB -> soft %.1f dB)\n",
                *hard_1pc - *soft_1pc, *hard_1pc, *soft_1pc);
    report.add_scalar("soft_gain_db_at_1pc", *hard_1pc - *soft_1pc);
  }

  // Gate: serial == N-thread (the coded path keeps the purity contract).
  if (mid_link != nullptr) {
    const CodedLink cc(*mid_link, cc_cfg);
    const auto serial = cc.run(packets, payload, CodedLink::DecodeMode::kSoft);
    if (!(serial == mid_soft_parallel)) {
      std::printf("FAIL: coded campaign serial != %u-thread\n", threads);
      ++failures;
    } else {
      std::printf("determinism: serial == %u-thread coded campaign (bit-identical)\n", threads);
    }
  }

  // Part 2: Tab. 4 ambient mobility at a margin-free operating point. Gain
  // ripple from passing humans must not erase the soft-decision advantage.
  std::printf("\n%-34s %-10s %-10s %-10s\n", "mobility case", "CC hard", "CC soft", "raw BER");
  const std::vector<rt::sim::MobilityScenario> cases = {
      rt::sim::MobilityScenario::none(),
      rt::sim::MobilityScenario::work_5cm_off_los(),
      rt::sim::MobilityScenario::three_people_around_los(),
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    rt::sim::ChannelConfig ch;
    ch.snr_override_db = 31.0;
    ch.mobility = cases[i];
    ch.noise_seed = 700 + i;
    rt::sim::SimOptions sopts;
    sopts.shared_offline_model = offline;
    sopts.export_soft_bits = true;
    links.push_back(std::make_unique<rt::sim::LinkSimulator>(params, tag, ch, sopts));
    const CodedLink cc(*links.back(), cc_cfg);
    const auto soft =
        run_parallel(cc, packets, payload, CodedLink::DecodeMode::kSoft, pool, report);
    const auto hard =
        run_parallel(cc, packets, payload, CodedLink::DecodeMode::kHard, pool, report);
    std::printf("%-34s %-10s %-10s %-10s\n", cases[i].name.c_str(), info_ber_str(hard).c_str(),
                info_ber_str(soft).c_str(),
                rt::bench::ber_str_counts(soft.raw_bit_errors, soft.raw_bits).c_str());
    report.add_value("mobility_cc_soft_ber", static_cast<double>(i), soft.ber());
    report.add_value("mobility_cc_hard_ber", static_cast<double>(i), hard.ber());
    if (soft.info_bit_errors > hard.info_bit_errors) {
      std::printf("FAIL: soft lost to hard under mobility case '%s'\n", cases[i].name.c_str());
      ++failures;
    }
  }

  // Part 3: expected goodput per (rate, code) option, driven by the
  // measured curves above -- the database the rate-adaptive MAC profiles.
  rt::mac::GoodputModel model;
  std::vector<std::pair<double, double>> raw_curve, rs_curve;
  for (const auto& row : rows) {
    raw_curve.emplace_back(row.snr, row.cc_soft.raw_ber());
    rs_curve.emplace_back(row.snr, row.rs_soft.ber());
  }
  const std::vector<rt::mac::RateOption> options = {
      {"16kbps", params, 16000.0, 33.0, rt::coding::CodeDescriptor::none()},
      {"16kbps+CC(7,1/2)", params, 16000.0, 28.0, rt::coding::CodeDescriptor::convolutional(7)},
      {"16kbps+RS(63,47)", params, 16000.0, 30.5,
       rt::coding::CodeDescriptor::reed_solomon(63, 47)},
  };
  model.add_measurements(options[0].name, raw_curve);
  model.add_measurements(options[1].name, soft_curve);
  model.add_measurements(options[2].name, rs_curve);

  std::printf("\n%-7s", "SNR");
  for (const auto& o : options) std::printf(" %17s", o.name.c_str());
  std::printf("  best\n");
  std::size_t best_low = 0, best_high = 0;
  for (const auto& row : rows) {
    std::size_t best = 0;
    double best_g = -1.0;
    std::printf("%-7.1f", row.snr);
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      const double g = model.goodput_bps(options[oi], row.snr, payload);
      std::printf(" %14.0fbps", g);
      if (g > best_g) {
        best_g = g;
        best = oi;
      }
      report.add_value("goodput_" + options[oi].name, row.snr, g);
    }
    const std::string label = options[best].code.label();
    std::printf("  %s [%s]\n", options[best].name.c_str(),
                label.empty() ? "uncoded" : label.c_str());
    report.add_value("goodput_best_option", row.snr, static_cast<double>(best));
    if (best == 0) {
      std::printf("FAIL: raw 16kbps wins measured goodput at %.1f dB (coded should dominate)\n",
                  row.snr);
      ++failures;
    }
    if (row.snr == snrs.front()) best_low = best;
    if (row.snr == snrs.back()) best_high = best;
  }
  if (options[best_high].effective_rate_bps() < options[best_low].effective_rate_bps()) {
    std::printf("FAIL: winning code got heavier as SNR rose (%s at %.1f dB -> %s at %.1f dB)\n",
                options[best_low].name.c_str(), snrs.front(), options[best_high].name.c_str(),
                snrs.back());
    ++failures;
  }

  report.write();
  if (failures > 0) std::printf("\n%d gate(s) FAILED\n", failures);
  return failures == 0 ? 0 : 1;
}
