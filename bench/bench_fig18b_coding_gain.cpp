// Fig. 18b: goodput vs SNR with Reed-Solomon coding under stop-and-wait.
//
// Paper: a coded 32 Kbps link out-delivers both the raw 32 Kbps and raw
// 16 Kbps links over a ~22 dB SNR span, paying only 1/64 of the maximum
// throughput (RS(255,251)-class overhead); heavier coding widens the
// working range at the cost of peak goodput. Expected shape: the coded
// curves dominate in the mid-SNR region and sit (n-k)/n below raw at high
// SNR.
//
// Methodology (as in the paper): raw BER curves come from waveform
// emulation; RS block-failure and stop-and-wait delivery are evaluated on
// top of the measured curves.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mac/goodput.h"

int main() {
  rt::bench::print_header("Fig. 18b -- goodput vs SNR with RS coding + stop-and-wait",
                          "section 7.3, Figure 18b",
                          "coded 32k dominates mid-SNR; costs only (n-k)/n at high SNR");
  rt::bench::BenchReport report("fig18b_coding_gain");

  // Measure raw BER curves for the two rates through the real stack.
  struct RateCurve {
    const char* name;
    rt::phy::PhyParams params;
    std::vector<std::pair<double, double>> snr_ber;
  };
  std::vector<RateCurve> curves = {{"16kbps", rt::phy::PhyParams::rate_16kbps(), {}},
                                   {"32kbps", rt::phy::PhyParams::rate_32kbps(), {}}};
  const std::vector<double> measure_snrs = {25, 30, 35, 40, 45, 50, 55, 60};

  std::printf("measuring raw BER curves (%zu points)...\n",
              curves.size() * measure_snrs.size());
  std::vector<rt::runtime::SweepPoint> points;
  for (auto& c : curves) {
    const auto tag = rt::bench::realistic_tag(c.params);
    const auto offline = rt::sim::train_offline_model(c.params, tag);
    for (const double snr : measure_snrs) {
      rt::sim::ChannelConfig ch;
      ch.snr_override_db = snr;
      ch.noise_seed = static_cast<std::uint64_t>(snr * 3);
      points.push_back(rt::bench::make_point(c.params, tag, ch, offline));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);
  for (std::size_t ci = 0; ci < curves.size(); ++ci) {
    for (std::size_t si = 0; si < measure_snrs.size(); ++si) {
      const auto& stats = sweep.stats[ci * measure_snrs.size() + si];
      // An error-free measurement is recorded as (effectively) zero: a
      // conservative 1/(2N) floor would fabricate ~20% phantom packet loss
      // on 1024-bit frames and distort every goodput ratio.
      const double ber = stats.bit_errors == 0 ? 1e-9 : stats.ber();
      curves[ci].snr_ber.push_back({measure_snrs[si], ber});
      report.add_point(std::string(curves[ci].name) + " raw", measure_snrs[si], stats);
    }
  }

  // Goodput table over the coding options.
  rt::mac::GoodputModel model;
  const auto mk = [&](const char* name, const rt::phy::PhyParams& p, double rate, double th,
                      std::size_t n, std::size_t k) {
    return rt::mac::RateOption{name, p, rate, th, n, k};
  };
  std::vector<rt::mac::RateOption> options = {
      mk("16kbps", curves[0].params, 16000.0, 33.0, 0, 0),
      mk("32kbps", curves[1].params, 32000.0, 55.0, 0, 0),
      mk("32kbps", curves[1].params, 32000.0, 55.0, 255, 251),
      mk("32kbps", curves[1].params, 32000.0, 55.0, 255, 223),
      mk("32kbps", curves[1].params, 32000.0, 55.0, 255, 127),
  };
  model.add_measurements("16kbps", curves[0].snr_ber);
  model.add_measurements("32kbps", curves[1].snr_ber);

  const std::vector<double> snrs = {30, 34, 38, 42, 46, 50, 54, 58, 62};
  const std::size_t payload = 128;
  std::printf("\ngoodput (Kbps), 128 B frames, stop-and-wait:\n%-22s", "SNR (dB)");
  for (const double s : snrs) std::printf("%8.0f", s);
  std::printf("\n");
  std::vector<std::vector<double>> g(options.size());
  for (std::size_t oi = 0; oi < options.size(); ++oi) {
    const auto& o = options[oi];
    char label[64];
    std::snprintf(label, sizeof(label), "%s%s", o.name.c_str(),
                  o.rs_n ? ("+RS(" + std::to_string(o.rs_n) + "," + std::to_string(o.rs_k) + ")")
                               .c_str()
                         : " raw");
    std::printf("%-22s", label);
    for (const double s : snrs) {
      const double gp = model.goodput_bps(o, s, payload);
      g[oi].push_back(gp);
      report.add_value(std::string("goodput_kbps ") + label, s, gp / 1000.0);
      std::printf("%8.1f", gp / 1000.0);
    }
    std::printf("\n");
  }

  // Shape checks.
  // 1. A coded 32k curve beats BOTH raw 32k and raw 16k somewhere.
  int coded_win_span = 0;
  for (std::size_t si = 0; si < snrs.size(); ++si) {
    const double best_coded = std::max({g[2][si], g[3][si], g[4][si]});
    if (best_coded > g[1][si] && best_coded > g[0][si]) ++coded_win_span;
  }
  // 2. High-SNR cost of the light code ~ (n-k)/n.
  const double high_ratio = g[2].back() / g[1].back();
  // 3. Heavier coding extends range: RS(255,127) delivers at SNRs where
  //    the light code does not.
  int heavy_only = 0;
  for (std::size_t si = 0; si < snrs.size(); ++si)
    if (g[4][si] > 0.5 * options[4].effective_rate_bps() &&
        g[2][si] < 0.5 * options[2].effective_rate_bps())
      ++heavy_only;

  std::printf("\ncoded-32k wins over both raw curves at %d/%zu SNR points (paper: a ~22 dB span)\n",
              coded_win_span, snrs.size());
  std::printf("high-SNR cost of RS(255,251): %.3fx of raw (paper: ~1/64 loss => 0.984)\n",
              high_ratio);
  std::printf("heavier RS(255,127) alone healthy at %d low-SNR points (wider working range)\n",
              heavy_only);
  report.add_scalar("coded_win_span", coded_win_span);
  report.add_scalar("high_snr_ratio_rs251", high_ratio);
  report.add_scalar("heavy_only_points", heavy_only);
  report.write();
  // The ratio approaches (n-k)/n = 0.984 as both links saturate; a small
  // residual error floor at the bench's packet budget can leave the coded
  // link slightly ahead, so accept a band around the ideal value.
  const bool ok = coded_win_span >= 2 && high_ratio > 0.9 && high_ratio <= 1.1 && heavy_only >= 1;
  std::printf("shape check: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
