// Microbenchmark: end-to-end packet pipeline throughput (packets/sec).
//
// Times the full TX -> channel -> RX hot path (modulate, synthesize,
// detect/correct, online-train, equalize, unmap) three ways:
//   serial_reuse  one PacketWorkspace reused across packets -- the
//                 steady-state zero-allocation pipeline;
//   serial_fresh  a fresh PacketWorkspace per packet -- the cost of the
//                 allocate-per-call behavior the refactor removed;
//   sweep         the parallel sweep engine at RT_BENCH_THREADS workers
//                 (per-worker thread_local workspaces).
// The bench also cross-checks that reuse and fresh runs produce identical
// outcomes packet by packet (the workspace contract) and exits non-zero on
// any mismatch. Emits BENCH_micro_throughput.json with packets/sec scalars.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace rt;
  bench::BenchReport report("micro_throughput");
  bench::print_header("Microbenchmark: packet pipeline throughput",
                      "engineering (no paper figure); pipeline refactor tracking",
                      "workspace reuse >= fresh-workspace throughput, identical outcomes");

  // The default 8 kbps configuration with realistic tag heterogeneity at
  // moderate SNR: every receiver stage (training, DFE, descrambling) runs.
  phy::PhyParams p = phy::PhyParams::rate_8kbps();
  lcm::TagConfig tag = bench::realistic_tag(p);
  sim::ChannelConfig ch;
  ch.snr_override_db = 14.0;
  ch.noise_seed = 7;
  sim::SimOptions so;
  so.seed = 42;
  const sim::LinkSimulator sim(p, tag, ch, so);

  const std::size_t payload = bench::payload_bytes();
  const int packets = std::max(8, bench::packets_per_point());
  const int warmup = 2;

  // Serial, one reused workspace (steady-state pipeline).
  sim::PacketWorkspace ws;
  for (int i = 0; i < warmup; ++i)
    (void)sim.run_packet(static_cast<std::uint64_t>(i), payload, ws);
  sim::LinkStats reuse_stats;
  const auto t_reuse = Clock::now();
  for (int i = 0; i < packets; ++i) {
    const auto out = sim.run_packet(static_cast<std::uint64_t>(i), payload, ws);
    ++reuse_stats.packets;
    if (!out.preamble_found) ++reuse_stats.preamble_failures;
    reuse_stats.bit_errors += out.bit_errors;
    reuse_stats.total_bits += out.bits;
  }
  const double reuse_s = seconds_since(t_reuse);
  report.add_recorder(ws.obs);  // serial-path stage spans (RT_OBS builds)

  // Serial, fresh workspace per packet (the old allocate-per-call shape),
  // cross-checked against the reuse run packet by packet.
  bool identical = true;
  sim::LinkStats fresh_stats;
  const auto t_fresh = Clock::now();
  for (int i = 0; i < packets; ++i) {
    sim::PacketWorkspace fresh;
    const auto out = sim.run_packet(static_cast<std::uint64_t>(i), payload, fresh);
    ++fresh_stats.packets;
    if (!out.preamble_found) ++fresh_stats.preamble_failures;
    fresh_stats.bit_errors += out.bit_errors;
    fresh_stats.total_bits += out.bits;
  }
  const double fresh_s = seconds_since(t_fresh);
  identical = fresh_stats.packets == reuse_stats.packets &&
              fresh_stats.preamble_failures == reuse_stats.preamble_failures &&
              fresh_stats.bit_errors == reuse_stats.bit_errors &&
              fresh_stats.total_bits == reuse_stats.total_bits;

  // Parallel sweep engine (thread_local per-worker workspaces).
  runtime::SweepPoint point;
  point.params = p;
  point.tag = tag;
  point.channel = ch;
  point.sim = so;
  runtime::SweepOptions sweep_opts;
  sweep_opts.packets = packets;
  sweep_opts.payload_bytes = payload;
  sweep_opts.threads = bench::bench_threads();
  const auto sweep = runtime::parallel_sweep({&point, 1}, sweep_opts);
  report.add_sweep(sweep);
  const sim::LinkStats& sweep_stats = sweep.stats[0];
  identical = identical && sweep_stats.bit_errors == reuse_stats.bit_errors &&
              sweep_stats.total_bits == reuse_stats.total_bits &&
              sweep_stats.preamble_failures == reuse_stats.preamble_failures;

  const double pkt_s_reuse = packets / reuse_s;
  const double pkt_s_fresh = packets / fresh_s;
  const double pkt_s_sweep = packets / sweep.wall_s;
  std::printf("serial_reuse : %7.2f packets/sec (%.4f s/packet)\n", pkt_s_reuse,
              reuse_s / packets);
  std::printf("serial_fresh : %7.2f packets/sec (%.4f s/packet)\n", pkt_s_fresh,
              fresh_s / packets);
  std::printf("sweep %2u thr : %7.2f packets/sec (engine wall %.2fs)\n", sweep.threads,
              pkt_s_sweep, sweep.wall_s);
  std::printf("reuse/fresh speedup: %.2fx | outcomes identical: %s\n", pkt_s_reuse / pkt_s_fresh,
              identical ? "yes" : "NO");

  report.add_value("packets_per_s", 0.0, pkt_s_reuse);
  report.add_value("packets_per_s", 1.0, pkt_s_fresh);
  report.add_value("packets_per_s", 2.0, pkt_s_sweep);
  report.add_scalar("packets_per_s_serial_reuse", pkt_s_reuse);
  report.add_scalar("packets_per_s_serial_fresh", pkt_s_fresh);
  report.add_scalar("packets_per_s_sweep", pkt_s_sweep);
  report.add_scalar("s_per_packet_serial_reuse", reuse_s / packets);
  report.add_scalar("reuse_over_fresh_speedup", pkt_s_reuse / pkt_s_fresh);
  report.add_scalar("sweep_threads", static_cast<double>(sweep.threads));
  report.add_scalar("outcomes_identical", identical ? 1.0 : 0.0);
  report.write();

  if (!identical) {
    std::fprintf(stderr, "FAIL: workspace-reuse outcomes diverged from fresh-workspace run\n");
    return 1;
  }
  return 0;
}
