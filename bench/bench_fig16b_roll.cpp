// Fig. 16b: BER versus roll angular misalignment.
//
// Paper: thanks to the rotation-tolerant PQAM design plus the preamble
// rotation correction, roll has a nearly negligible influence, both inside
// (6 m) and outside (8.5 m) the nominal 7.5 m working range. Expected
// shape: BER flat across all roll angles at each distance.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 16b -- BER vs roll angular misalignment",
                          "section 7.2.1, Figure 16b",
                          "BER essentially flat across 0..180deg of roll");
  rt::bench::BenchReport report("fig16b_roll");

  const auto params = rt::phy::PhyParams::rate_8kbps();
  const auto tag = rt::bench::realistic_tag(params);
  const auto offline = rt::sim::train_offline_model(params, tag);
  const std::vector<double> rolls = {0.0, 22.5, 45.0, 67.5, 90.0, 135.0, 180.0};
  const std::vector<double> distances = {6.0, 8.5};

  std::vector<rt::runtime::SweepPoint> points;
  for (const double d : distances) {
    for (const double roll : rolls) {
      rt::sim::ChannelConfig ch;
      ch.pose.distance_m = d;
      ch.pose.roll_rad = rt::deg_to_rad(roll);
      ch.noise_seed = static_cast<std::uint64_t>(roll * 10 + d);
      points.push_back(rt::bench::make_point(params, tag, ch, offline));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-10s", "roll(deg)");
  for (const double r : rolls) std::printf("%12.1f", r);
  std::printf("\n");

  bool flat = true;
  for (std::size_t di = 0; di < distances.size(); ++di) {
    std::printf("d=%-6.1fm ", distances[di]);
    char series[32];
    std::snprintf(series, sizeof(series), "d=%.1fm", distances[di]);
    std::vector<double> bers;
    for (std::size_t ri = 0; ri < rolls.size(); ++ri) {
      const auto& stats = sweep.stats[di * rolls.size() + ri];
      bers.push_back(stats.ber());
      report.add_point(series, rolls[ri], stats);
      std::printf("%12s", rt::bench::ber_str(stats).c_str());
    }
    std::printf("\n");
    // Flatness: no roll angle catastrophically worse than roll 0.
    const double base = std::max(bers.front(), 0.002);
    for (const double b : bers) flat = flat && b < std::max(10.0 * base, 0.01);
  }

  std::printf("\npaper: influence of roll is almost negligible at both distances\n");
  report.write();
  std::printf("shape check: BER flat in roll (no angle >10x the roll-0 BER): %s\n",
              flat ? "yes" : "NO");
  return flat ? 0 : 1;
}
