// Fig. 17b: channel-training fingerprint memory V vs BER.
//
// Paper: V=1 shows an error floor even at ample SNR (the un-modelled tail
// effect of Fig. 11a is a system error); V=2 (the default) is within a
// hair of V=3 while halving the offline training time, which grows as
// O(2^V). Expected shape: BER(V=1) floor >> BER(V=2) ~= BER(V=3).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 17b -- training memory V vs BER",
                          "section 7.2.2, Figure 17b",
                          "V=1 hits an error floor; V=2 close to V=3");
  rt::bench::BenchReport report("fig17b_training_v");

  const auto base = rt::phy::PhyParams::rate_8kbps();
  const std::vector<int> vs = {1, 2, 3};
  const std::vector<double> distances = {3.0, 5.0, 6.5};

  // The offline model depends on V here, so each V trains its own model
  // (still shared across its distances).
  std::vector<rt::runtime::SweepPoint> points;
  for (std::size_t vi = 0; vi < vs.size(); ++vi) {
    auto params = base;
    params.training_memory = vs[vi];
    const auto tag = rt::bench::realistic_tag(params);
    const auto offline = rt::sim::train_offline_model(params, tag);
    for (std::size_t di = 0; di < distances.size(); ++di) {
      rt::sim::ChannelConfig ch;
      ch.pose.distance_m = distances[di];
      ch.noise_seed = 17 + vi * 10 + di;
      points.push_back(rt::bench::make_point(params, tag, ch, offline));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-16s", "d (m)");
  for (const double d : distances) std::printf("%14.1f", d);
  std::printf("%16s\n", "training size");

  std::vector<double> floor_ber(vs.size());
  for (std::size_t vi = 0; vi < vs.size(); ++vi) {
    std::printf("V=%-14d", vs[vi]);
    char series[16];
    std::snprintf(series, sizeof(series), "V=%d", vs[vi]);
    for (std::size_t di = 0; di < distances.size(); ++di) {
      const auto& stats = sweep.stats[vi * distances.size() + di];
      if (di == 0) floor_ber[vi] = stats.ber();  // ample-SNR point: the floor
      report.add_point(series, distances[di], stats);
      std::printf("%14s", rt::bench::ber_str(stats).c_str());
    }
    // Offline fingerprint collection cost ~ 2^(V+1) cycles per module.
    std::printf("%13d x\n", 1 << (vs[vi] + 1));
  }

  std::printf("\npaper: V=1 inferior even at sufficient SNR; V=2 within a hair of V=3 "
              "at half the training time\n");
  const bool v1_floor = floor_ber[0] > floor_ber[1] + 1e-6;
  const bool v2_close = floor_ber[1] <= floor_ber[2] + 0.005;
  for (std::size_t vi = 0; vi < vs.size(); ++vi)
    report.add_scalar("floor_ber_v" + std::to_string(vs[vi]), floor_ber[vi]);
  report.write();
  std::printf("shape check: V=1 shows a floor above V=2: %s; V=2 ~= V=3: %s\n",
              v1_floor ? "yes" : "NO", v2_close ? "yes" : "NO");
  return (v1_floor && v2_close) ? 0 : 1;
}
