// Tab. 2: relative emulation error of the order-V finite-memory LCM table
// versus MLS order V.
//
// Paper values (reference V=17): max 59/31/21/13/7.3/3.2/0.7 %, average
// 15/4.1/1.2/0.4/0.2/0.2/0.1 % for V = 4/6/8/10/12/14/16. Expected shape:
// both error rows fall monotonically toward zero as V grows.
#include <cstdio>
#include <future>
#include <vector>

#include "analysis/emulation_error.h"
#include "bench/bench_util.h"
#include "runtime/thread_pool.h"

int main() {
  rt::bench::print_header(
      "Tab. 2 -- LCM emulation relative error vs MLS order V",
      "section 5.2, Table 2",
      "errors fall monotonically with V; V=16 is near-exact");
  rt::bench::BenchReport report("tab2_mls_error");

  constexpr double kFs = 40e3;
  constexpr double kSlot = 0.5e-3;
  const int v_ref = rt::bench::env_int("RT_BENCH_VREF", 17);
  std::printf("building reference table (V=%d)...\n", v_ref);
  const auto reference =
      rt::analysis::characterize_lcm(rt::lcm::LcTimings{}, kSlot, kFs, v_ref);

  rt::analysis::EmulationErrorOptions opt;
  opt.sequences = 48;
  opt.sequence_slots = 96;

  // The per-V characterizations and error studies are independent pure
  // functions -- fan them out on the pool.
  const std::vector<int> vs = {4, 6, 8, 10, 12, 14, 16};
  rt::obs::Recorder obs_rec;
  std::vector<double> maxes;
  std::vector<double> avgs;
  {
    const rt::obs::ScopedBind obs_bind(obs_rec);
    RT_TRACE_SPAN("analysis_fanout");
    rt::runtime::ThreadPool pool(rt::bench::bench_threads());
    std::vector<std::future<rt::analysis::EmulationErrorResult>> futures;
    for (const int v : vs) {
      futures.push_back(pool.submit([v, kSlot, kFs, &reference, &opt] {
        const auto table = rt::analysis::characterize_lcm(rt::lcm::LcTimings{}, kSlot, kFs, v);
        return rt::analysis::emulation_error(table, reference, kFs, opt);
      }));
    }
    for (auto& f : futures) {
      const auto e = f.get();
      maxes.push_back(e.max_rel_error);
      avgs.push_back(e.avg_rel_error);
    }
  }
  report.add_recorder(obs_rec);

  std::printf("\n%-14s", "MLS Order (V)");
  for (const int v : vs) std::printf("%8d", v);
  std::printf("\n%-14s", "Maximum");
  for (std::size_t i = 0; i < vs.size(); ++i) {
    report.add_value("max_rel_error", vs[i], maxes[i]);
    std::printf("%7.1f%%", 100.0 * maxes[i]);
  }
  std::printf("\n%-14s", "Average");
  for (std::size_t i = 0; i < vs.size(); ++i) {
    report.add_value("avg_rel_error", vs[i], avgs[i]);
    std::printf("%7.2f%%", 100.0 * avgs[i]);
  }
  std::printf("\n\npaper:    max 59/31/21/13/7.3/3.2/0.7 %%   avg 15/4.1/1.2/0.4/0.2/0.2/0.1 %%\n");

  bool monotone = true;
  for (std::size_t i = 1; i < avgs.size(); ++i) monotone = monotone && avgs[i] <= avgs[i - 1] + 1e-9;
  report.write();
  std::printf("shape check: average error monotonically decreasing: %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
