// Fig. 16d: BER under different ambient light conditions.
//
// Paper: Day (1000 lux), Night (200 lux), Dark (20 lux) behave
// consistently, because indoor ambient light (i) leaves SNR headroom and
// (ii) photodetects to DC, which the 455 kHz band-pass rejects; only its
// shot noise remains. Expected shape: BER roughly constant across lux.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "frontend/receiver_chain.h"

int main() {
  rt::bench::print_header("Fig. 16d -- BER vs ambient light (Dark/Night/Day)",
                          "section 7.2.1, Figure 16d",
                          "BER approximately invariant across 20..1000 lux");
  rt::bench::BenchReport report("fig16d_ambient");

  const auto params = rt::phy::PhyParams::rate_8kbps();
  const auto tag = rt::bench::realistic_tag(params);
  const auto offline = rt::sim::train_offline_model(params, tag);
  struct Condition {
    const char* name;
    double lux;
  };
  const std::vector<Condition> conditions = {{"Dark", 20.0}, {"Night", 200.0}, {"Day", 1000.0}};
  const std::vector<double> distances = {5.0, 7.0};

  std::vector<rt::runtime::SweepPoint> points;
  for (const double d : distances) {
    for (const auto& c : conditions) {
      rt::sim::ChannelConfig ch;
      ch.pose.distance_m = d;
      ch.ambient.illuminance_lux = c.lux;
      ch.noise_seed = static_cast<std::uint64_t>(c.lux + d);
      points.push_back(rt::bench::make_point(params, tag, ch, offline));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-10s", "condition");
  for (const auto& c : conditions) std::printf("%16s", c.name);
  std::printf("\n%-10s", "lux");
  for (const auto& c : conditions) std::printf("%16.0f", c.lux);
  std::printf("\n");

  bool consistent = true;
  for (std::size_t di = 0; di < distances.size(); ++di) {
    std::printf("d=%-7.1fm", distances[di]);
    char series[32];
    std::snprintf(series, sizeof(series), "d=%.1fm", distances[di]);
    for (std::size_t ci = 0; ci < conditions.size(); ++ci) {
      const auto& stats = sweep.stats[di * conditions.size() + ci];
      report.add_point(series, conditions[ci].lux, stats);
      std::printf("%16s", rt::bench::ber_str(stats).c_str());
      // Consistency: all conditions below the 1% reliability bar, or
      // within a small factor of each other.
      consistent = consistent && stats.ber() < 0.01;
    }
    std::printf("\n");
  }

  // Mechanism check through the passband frontend: the DC ambient term is
  // rejected by the band-pass (see frontend tests); here we show the
  // residual shot-noise-driven sigma ratio.
  const double sigma_dark = rt::optics::AmbientLight{20.0}.shot_noise_sigma();
  const double sigma_day = rt::optics::AmbientLight{1000.0}.shot_noise_sigma();
  std::printf("\nambient shot-noise sigma ratio day/dark: %.1fx (DC itself is band-passed out)\n",
              sigma_day / sigma_dark);
  std::printf("paper: consistent behaviour regardless of illumination\n");
  report.add_scalar("shot_sigma_ratio_day_dark", sigma_day / sigma_dark);
  report.write();
  std::printf("shape check: all conditions reliable (BER < 1%%): %s\n",
              consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
