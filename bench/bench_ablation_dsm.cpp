// Ablation: basic DSM (section 4.1.1) vs overlapped DSM (section 4.1.2).
//
// Both schemes run through the full simulator at the same L, P and slot
// timing; the only difference is the tau_0 rest after each L-slot group.
// Expected: overlapped DSM delivers ~(L tau_1 + tau_0)/(L tau_1) = ~1.9x
// the rate at L=8; basic DSM's isolated pulses buy it a slightly lower
// demodulation threshold (each symbol enjoys a clean channel), which is
// exactly the SNR-for-rate trade the paper's Fig. 5 progression makes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Ablation -- basic vs overlapped DSM at L=8, 16-PQAM",
                          "sections 4.1.1 / 4.1.2, Fig. 5",
                          "overlapping multiplies rate ~1.9x at equal (L, P); both reliable");
  rt::bench::BenchReport report("ablation_dsm");

  auto overlapped = rt::phy::PhyParams::rate_8kbps();
  auto basic = overlapped;
  basic.basic_rest_slots = 7;  // tau_0 = 3.5 ms at T = 0.5 ms

  struct Case {
    const char* name;
    rt::phy::PhyParams params;
  };
  const std::vector<Case> cases = {{"basic DSM", basic}, {"overlapped DSM", overlapped}};
  const std::vector<double> snrs = {20.0, 24.0, 28.0, 32.0, 36.0};

  std::vector<rt::runtime::SweepPoint> points;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& c = cases[ci];
    const auto tag = rt::bench::realistic_tag(c.params);
    const auto offline = rt::sim::train_offline_model(c.params, tag);
    for (const double snr : snrs) {
      rt::sim::ChannelConfig ch;
      ch.snr_override_db = snr;
      ch.noise_seed = static_cast<std::uint64_t>(snr * 7 + static_cast<double>(ci));
      points.push_back(rt::bench::make_point(c.params, tag, ch, offline, 73 + ci));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-16s %-12s", "scheme", "rate (bps)");
  for (const double s : snrs) std::printf("%12.0fdB", s);
  std::printf("\n");

  std::vector<double> snr_at_1pct(cases.size(), 999.0);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& c = cases[ci];
    std::printf("%-16s %-12.0f", c.name, c.params.data_rate_bps());
    for (std::size_t si = 0; si < snrs.size(); ++si) {
      const auto& stats = sweep.stats[ci * snrs.size() + si];
      if (stats.ber() < 0.01 && snrs[si] < snr_at_1pct[ci]) snr_at_1pct[ci] = snrs[si];
      report.add_point(c.name, snrs[si], stats);
      std::printf("%14s", rt::bench::ber_str(stats).c_str());
    }
    std::printf("\n");
  }

  const double rate_gain = cases[1].params.data_rate_bps() / cases[0].params.data_rate_bps();
  std::printf("\noverlapping rate gain at equal (L, P): %.2fx (paper: (L tau1 + tau0)/(L tau1) "
              "= 1.88x)\n",
              rate_gain);
  std::printf("1%%-BER threshold: basic %.0f dB, overlapped %.0f dB\n", snr_at_1pct[0],
              snr_at_1pct[1]);
  report.add_scalar("rate_gain", rate_gain);
  report.add_scalar("threshold_db_basic", snr_at_1pct[0]);
  report.add_scalar("threshold_db_overlapped", snr_at_1pct[1]);
  report.write();
  // The 1%-crossing estimate carries +-one grid step of sampling noise at
  // the default packet budget, so basic may only claim its lower-or-equal
  // threshold within that step (raise RT_BENCH_PACKETS to sharpen it).
  const bool ok = rate_gain > 1.8 && rate_gain < 2.0 &&
                  snr_at_1pct[0] <= snr_at_1pct[1] + 4.0 && snr_at_1pct[1] < 999.0;
  std::printf("shape check: ~1.9x rate gain; basic threshold <= overlapped (+-1 step): %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
