// Fig. 17a: decision-feedback equalizer branches vs BER/working range.
//
// Paper: the naive single-branch DFE loses ~0.7 m (~10%) of working range
// against the optimal Viterbi detector, while the 16-branch DFE is nearly
// optimal at 16x the single-branch compute. Expected shape: BER(K=1) >=
// BER(K=4) >= BER(K=16) ~= Viterbi across the distance sweep, with the
// K=1 working range visibly shorter.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 17a -- DFE branch count vs BER across distance",
                          "section 7.2.2, Figure 17a",
                          "1-branch worst; 16-branch nearly matches the Viterbi reference");
  rt::bench::BenchReport report("fig17a_dfe_branches");

  // The default 8 Kbps configuration (16-PQAM): dense constellations are
  // where greedy single-branch decisions go wrong and extra branches pay.
  auto base = rt::phy::PhyParams::rate_8kbps();
  struct EqCase {
    const char* name;
    int branches;
    bool merge;
  };
  const std::vector<EqCase> cases = {
      {"DFE-1", 1, false}, {"DFE-4", 4, false}, {"DFE-16", 16, false}, {"Viterbi", 256, true}};
  const std::vector<double> distances = {5.0, 6.5, 7.5, 8.5, 9.5};
  const int seeds = 3;  // average several noise realizations per point

  const auto tag = rt::bench::realistic_tag(base);
  const auto offline = rt::sim::train_offline_model(base, tag);

  // The offline model only depends on the tag, not the equalizer, so all
  // four equalizer variants share it and the whole grid (cases x
  // distances x seeds) is one engine fan-out.
  std::vector<rt::runtime::SweepPoint> points;
  for (const auto& c : cases) {
    auto params = base;
    params.equalizer_branches = c.branches;
    params.merge_equalizer_states = c.merge;
    for (const double d : distances) {
      for (int s = 0; s < seeds; ++s) {
        rt::sim::ChannelConfig ch;
        ch.pose.distance_m = d;
        ch.noise_seed = static_cast<std::uint64_t>(d * 7) + static_cast<std::uint64_t>(s);
        points.push_back(rt::bench::make_point(params, tag, ch, offline, 5 + s));
      }
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-10s", "d (m)");
  for (const double d : distances) std::printf("%12.1f", d);
  std::printf("\n");

  std::vector<std::vector<double>> ber(cases.size());
  std::vector<double> range(cases.size(), 0.0);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::printf("%-10s", cases[ci].name);
    for (std::size_t di = 0; di < distances.size(); ++di) {
      rt::sim::LinkStats merged;
      for (int s = 0; s < seeds; ++s)
        merged.merge(sweep.stats[(ci * distances.size() + di) * seeds + s]);
      const double b = merged.ber();
      ber[ci].push_back(b);
      if (b < 0.01) range[ci] = distances[di];
      report.add_point(cases[ci].name, distances[di], merged);
      std::printf("%12s", rt::bench::ber_str(merged).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nworking range: DFE-1 %.1f m, DFE-4 %.1f m, DFE-16 %.1f m, Viterbi %.1f m\n",
              range[0], range[1], range[2], range[3]);
  std::printf("paper: DFE-1 loses ~0.7 m (~10%%); DFE-16 nearly optimal\n");

  double sum1 = 0.0;
  double sum16 = 0.0;
  double sumv = 0.0;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    sum1 += ber[0][i];
    sum16 += ber[2][i];
    sumv += ber[3][i];
  }
  const bool order = sum1 >= sum16 - 1e-9 && sum16 >= sumv - 1e-6;
  const bool near_optimal = sum16 <= std::max(2.0 * sumv, sumv + 0.005);
  for (std::size_t ci = 0; ci < cases.size(); ++ci)
    report.add_scalar(std::string("range_m_") + cases[ci].name, range[ci]);
  report.write();
  std::printf("shape check: BER(K=1) >= BER(K=16) >= BER(Viterbi): %s; "
              "16-branch near-optimal: %s\n",
              order ? "yes" : "NO", near_optimal ? "yes" : "NO");
  return (order && near_optimal) ? 0 : 1;
}
