// Microbenchmark: streaming receiver throughput + detection quality.
//
// Runs the sample-level streaming receiver (src/stream) over three
// synthetic streams built from the same channel the packet benches use:
//   frames+noise    N rendered packets separated by idle-channel gaps --
//                   decode throughput (samples/sec, x-realtime) and
//                   payload fidelity against the scenario ground truth;
//   frames+garbage  the same packets separated by random tag-like firing
//                   bursts -- the soft SOF matcher must reject every
//                   burst (false alarms) without losing real frames;
//   pure noise      an idle channel of the same length -- the continuous
//                   preamble scan must stay quiet (scan throughput).
// Exits non-zero if any real frame is missed or any false frame is
// emitted. Emits BENCH_streaming_rx.json; RT_OBS builds also write the
// stream_scan/stream_sync/stream_decode stage spans and stream_* counters
// (BENCH_streaming_rx.metrics.json, compared against the committed
// baseline in CI).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "lcm/tag_array.h"
#include "stream/sim_source.h"
#include "stream/streaming_receiver.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr std::size_t kChunk = 4096;  // samples per push (a typical SDR buffer)

/// Counts frames and payload bit errors against the scenario truth.
struct TruthSink final : rt::stream::FrameSink {
  const rt::stream::StreamTruth* truth = nullptr;
  std::size_t frames = 0;
  std::size_t bit_errors = 0;
  void on_frame(const rt::stream::StreamFrame& f) override {
    if (truth != nullptr && frames < truth->frames.size()) {
      const auto& t = truth->frames[frames];
      for (std::size_t i = 0; i < t.payload_bits && i < f.bits.size(); ++i)
        bit_errors += f.bits[i] != truth->payload_bits[t.first_payload_bit + i] ? 1 : 0;
    }
    ++frames;
  }
};

/// Pushes the whole waveform through `rx` in kChunk-sized pieces.
void run_stream(rt::stream::StreamingReceiver& rx, const rt::sig::IqWaveform& wave,
                TruthSink& sink) {
  const std::span<const rt::sig::Complex> all(wave.samples);
  for (std::size_t off = 0; off < all.size(); off += kChunk)
    rx.push_samples(all.subspan(off, std::min(kChunk, all.size() - off)), sink);
  rx.flush(sink);
}

}  // namespace

int main() {
  using namespace rt;
  bench::BenchReport report("streaming_rx");
  bench::print_header("Microbenchmark: streaming receiver (scan/sync/decode)",
                      "engineering (no paper figure); streaming front-end tracking",
                      "all real frames decoded, zero false alarms in noise/garbage");

  phy::PhyParams p = phy::PhyParams::rate_8kbps();
  lcm::TagConfig tag = bench::realistic_tag(p);
  sim::ChannelConfig ch;
  ch.snr_override_db = 14.0;
  ch.noise_seed = 7;
  sim::SimOptions so;
  so.seed = 42;
  const sim::LinkSimulator sim(p, tag, ch, so);

  const std::size_t payload = bench::payload_bytes();
  const int packets = std::max(4, bench::packets_per_point());

  // --- frames + noise gaps: throughput and fidelity --------------------
  stream::StreamScenario noise_sc;
  noise_sc.packets = packets;
  noise_sc.payload_bytes = payload;
  noise_sc.gap = stream::StreamScenario::Gap::kNoise;
  noise_sc.gap_slots = 48;
  const auto noise_truth = stream::build_stream(sim, noise_sc);

  stream::StreamOptions opts;
  opts.payload_slots = noise_truth.payload_slots;
  stream::StreamingReceiver rx(sim.demodulator(), opts);

  TruthSink warm;
  warm.truth = &noise_truth;
  run_stream(rx, noise_truth.waveform, warm);  // warm-up: buffers reach capacity

  TruthSink timed;
  timed.truth = &noise_truth;
  const auto t0 = Clock::now();
  run_stream(rx, noise_truth.waveform, timed);
  const double stream_s = seconds_since(t0);
  report.add_recorder(rx.recorder());

  const double samples = static_cast<double>(noise_truth.waveform.size());
  const double samples_per_s = samples / stream_s;
  const double realtime = samples_per_s / p.sample_rate_hz;
  const std::size_t missed = static_cast<std::size_t>(packets) - timed.frames;

  // --- frames + garbage gaps: SOF rejection under structured energy ----
  stream::StreamScenario garbage_sc = noise_sc;
  garbage_sc.gap = stream::StreamScenario::Gap::kGarbage;
  garbage_sc.gap_slots = 96;
  const auto garbage_truth = stream::build_stream(sim, garbage_sc);
  stream::StreamingReceiver garbage_rx(sim.demodulator(), opts);
  TruthSink garbage_sink;
  garbage_sink.truth = &garbage_truth;
  run_stream(garbage_rx, garbage_truth.waveform, garbage_sink);
  report.add_recorder(garbage_rx.recorder());
  const std::size_t garbage_false =
      garbage_sink.frames > static_cast<std::size_t>(packets)
          ? garbage_sink.frames - static_cast<std::size_t>(packets)
          : 0;
  const std::size_t garbage_missed =
      garbage_sink.frames < static_cast<std::size_t>(packets)
          ? static_cast<std::size_t>(packets) - garbage_sink.frames
          : 0;

  // --- pure noise, same length: scan throughput and false alarms -------
  auto realization = sim.channel().make_realization();
  Rng noise_rng(split_seed(ch.noise_seed, 0, 99));
  lcm::SynthScratch scratch;
  sig::IqWaveform idle;
  const double idle_duration = samples / p.sample_rate_hz;
  realization.synthesize_into({}, idle_duration, &noise_rng, scratch, idle);
  stream::StreamingReceiver idle_rx(sim.demodulator(), opts);
  TruthSink idle_sink;
  const auto t1 = Clock::now();
  run_stream(idle_rx, idle, idle_sink);
  const double idle_s = seconds_since(t1);
  report.add_recorder(idle_rx.recorder());
  const double idle_samples_per_s = static_cast<double>(idle.size()) / idle_s;

  std::printf("frames+noise  : %8.0f samples/sec (%.1fx realtime), %zu/%d frames, "
              "%zu payload bit errors\n",
              samples_per_s, realtime, timed.frames, packets, timed.bit_errors);
  std::printf("frames+garbage: %zu/%d frames, %zu false alarms, %llu SOF rejects\n",
              garbage_sink.frames - garbage_false, packets, garbage_false,
              static_cast<unsigned long long>(garbage_rx.stats().sof_rejects));
  std::printf("pure noise    : %8.0f samples/sec scan, %zu false alarms\n", idle_samples_per_s,
              idle_sink.frames);

  report.add_scalar("samples_per_s_stream", samples_per_s);
  report.add_scalar("realtime_factor", realtime);
  report.add_scalar("samples_per_s_scan_noise", idle_samples_per_s);
  report.add_scalar("frames_decoded", static_cast<double>(timed.frames));
  report.add_scalar("frames_missed", static_cast<double>(missed));
  report.add_scalar("payload_bit_errors", static_cast<double>(timed.bit_errors));
  report.add_scalar("garbage_false_alarms", static_cast<double>(garbage_false));
  report.add_scalar("garbage_frames_missed", static_cast<double>(garbage_missed));
  report.add_scalar("noise_false_alarms", static_cast<double>(idle_sink.frames));
  report.add_scalar("sof_rejects_garbage",
                    static_cast<double>(garbage_rx.stats().sof_rejects));
  report.write();

  bool ok = true;
  if (missed != 0 || garbage_missed != 0) {
    std::fprintf(stderr, "FAIL: streaming receiver missed real frames (noise gaps: %zu, "
                 "garbage gaps: %zu)\n", missed, garbage_missed);
    ok = false;
  }
  if (garbage_false != 0 || idle_sink.frames != 0) {
    std::fprintf(stderr, "FAIL: streaming receiver emitted false frames (garbage: %zu, "
                 "noise: %zu)\n", garbage_false, idle_sink.frames);
    ok = false;
  }
  return ok ? 0 : 1;
}
