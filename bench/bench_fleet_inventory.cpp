// Fleet-scale MAC inventory: goodput, discovery latency and collision
// rate versus tag population and reader count.
//
// Scales the paper's section 7.3 network study (n ~ 8 tags, one reader)
// to deployment size with src/fleet: sharded TDMA inventory across
// readers with overlapping coverage, cross-reader slot scheduling
// (coordinated = colored, collision-free, 1/colors airtime versus
// uncoordinated = full airtime, cross-cell corruption), and one
// RateController per reader adapting its cell to the shard's worst SNR.
// The waveform-level collision calibration study (fleet/collision.h)
// grounds the campaign's corruption model in the real PHY pipeline.
//
// Gates (exit non-zero when violated):
//   - coordinated schedules register exactly zero cross-cell collisions,
//     uncoordinated overlapping cells register more than zero
//   - the campaign and the collision study are bit-identical serial vs.
//     N-thread (the PR 2 determinism contract at fleet scale)
//   - an equal-power concurrent tag degrades BER by >= 10x over clean
//
// Knobs: RT_FLEET_TAGS (default 1000), RT_FLEET_READERS (default 4),
// RT_BENCH_THREADS. CI runs the smoke scale (64 tags, 2 readers); a
// 10k-tag overnight run is RT_FLEET_TAGS=10000 with epochs/rounds raised
// in fleet::FleetConfig.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/campaign.h"
#include "fleet/collision.h"

namespace {

rt::fleet::FleetConfig fleet_config(int readers, int tags, bool coordinate, unsigned threads) {
  rt::fleet::FleetConfig cfg;
  cfg.deployment.readers = readers;
  cfg.deployment.tags = tags;
  cfg.coordinate_readers = coordinate;
  cfg.threads = threads;
  cfg.seed = 2026;
  return cfg;
}

void print_run(const char* label, const rt::fleet::FleetResult& r) {
  std::printf("%-24s %8llu %10.1f %8.3f %9.3f %7.2f %7u\n", label,
              static_cast<unsigned long long>(r.slots), r.fleet_goodput_bps / 1000.0,
              r.delivery_rate, r.collision_rate, r.mean_discovery_rounds, r.num_colors);
}

}  // namespace

int main() {
  rt::bench::print_header(
      "Fleet inventory -- sharded TDMA across readers at deployment scale",
      "section 7.3 scaled out (ROADMAP: fleet-scale MAC)",
      "coordination trades airtime for zero cross-cell collisions; "
      "goodput scales with readers; serial == N-thread bit-identical");
  rt::bench::BenchReport report("fleet_inventory");

  const int tags = rt::bench::env_int("RT_FLEET_TAGS", 1000);
  const int readers = std::max(1, rt::bench::env_int("RT_FLEET_READERS", 4));
  const unsigned threads = rt::bench::bench_threads();
  const auto table = rt::mac::RateTable::paper_default();
  const rt::mac::GoodputModel model;
  int failures = 0;

  // Part 1: population sweep at the full reader count, coordinated vs
  // uncoordinated. Every campaign result is folded into the obs artifact
  // set (sweep_batch / fleet_discovery / fleet_merge spans + counters).
  std::printf("\n%-24s %8s %10s %8s %9s %7s %7s\n", "campaign", "slots", "kbps", "deliver",
              "collide", "disc", "colors");
  std::vector<int> populations = {std::max(1, tags / 4), std::max(1, tags / 2), tags};
  populations.erase(std::unique(populations.begin(), populations.end()), populations.end());
  rt::fleet::FleetResult full_coordinated;
  for (const int pop : populations) {
    for (const bool coordinate : {true, false}) {
      const auto cfg = fleet_config(readers, pop, coordinate, threads);
      const auto r = rt::fleet::run_fleet_campaign(table, model, cfg);
      char label[64];
      std::snprintf(label, sizeof(label), "%d tags %s", pop,
                    coordinate ? "coordinated" : "uncoordinated");
      print_run(label, r);
      const char* mode = coordinate ? "coordinated" : "uncoordinated";
      report.add_value(std::string("goodput_bps_") + mode, pop, r.fleet_goodput_bps);
      report.add_value(std::string("collision_rate_") + mode, pop, r.collision_rate);
      report.add_value(std::string("discovery_rounds_") + mode, pop, r.mean_discovery_rounds);
      report.add_metrics(r.metrics);
      report.add_trace(r.trace);
      if (coordinate && r.cross_collisions != 0) {
        std::printf("FAIL: coordinated schedule registered %llu cross-cell collisions\n",
                    static_cast<unsigned long long>(r.cross_collisions));
        ++failures;
      }
      if (!coordinate && readers > 1 && r.cross_collisions == 0) {
        std::printf("FAIL: uncoordinated overlapping cells registered no collisions\n");
        ++failures;
      }
      if (coordinate && pop == tags) full_coordinated = r;
    }
  }

  // Part 2: reader-count sweep at the full population (coordinated).
  // More readers shrink the shards (more airtime per tag) faster than
  // coloring splits the frame, so fleet goodput should not collapse.
  std::printf("\n%-24s %8s %10s %8s %9s %7s %7s\n", "reader sweep", "slots", "kbps", "deliver",
              "collide", "disc", "colors");
  for (int rc = 1; rc <= readers; ++rc) {
    const auto cfg = fleet_config(rc, tags, true, threads);
    const auto r = rt::fleet::run_fleet_campaign(table, model, cfg);
    char label[64];
    std::snprintf(label, sizeof(label), "%d readers", rc);
    print_run(label, r);
    report.add_value("goodput_bps_vs_readers", rc, r.fleet_goodput_bps);
    report.add_value("discovery_rounds_vs_readers", rc, r.mean_discovery_rounds);
    report.add_metrics(r.metrics);
    report.add_trace(r.trace);
  }

  // Part 3: the determinism gate. The full-scale campaign re-run serial
  // must be bit-identical to the pooled run from part 1.
  {
    auto cfg = fleet_config(readers, tags, true, 1);
    const auto serial = rt::fleet::run_fleet_campaign(table, model, cfg);
    if (!serial.identical(full_coordinated)) {
      std::printf("FAIL: fleet campaign serial != %u-thread\n", threads);
      ++failures;
    } else {
      std::printf("\ndeterminism: serial == %u-thread campaign (bit-identical)\n", threads);
    }
    report.add_scalar("fleet_goodput_bps", serial.fleet_goodput_bps);
    report.add_scalar("fleet_colors", serial.num_colors);
    report.add_scalar("mean_discovery_rounds", serial.mean_discovery_rounds);
  }

  // Part 4: waveform-level collision calibration (fixed scale regardless
  // of the fleet knobs, so the committed metrics baseline stays stable).
  {
    rt::fleet::CollisionStudyConfig ccfg;
    ccfg.interferer_gains = {0.0, 0.5, 1.0};
    ccfg.trials = 2;
    ccfg.threads = 1;
    const auto serial = rt::fleet::run_collision_study(ccfg);
    ccfg.threads = threads;
    const auto pooled = rt::fleet::run_collision_study(ccfg);
    if (!serial.identical(pooled)) {
      std::printf("FAIL: collision study serial != %u-thread\n", threads);
      ++failures;
    }
    std::printf("\n%-18s %10s %12s\n", "interferer gain", "BER", "pkt loss");
    for (const auto& p : pooled.points) {
      std::printf("%-18.2f %10s %12.2f\n", p.interferer_gain,
                  rt::bench::ber_str(p.stats).c_str(), p.stats.packet_loss());
      report.add_point("collision_ber", p.interferer_gain, p.stats);
    }
    const double clean = pooled.points.front().stats.ber();
    const double collided = pooled.points.back().stats.ber();
    if (collided <= 10.0 * std::max(clean, 0.005)) {
      std::printf("FAIL: equal-power collision did not degrade the link (%.4f vs %.4f)\n",
                  collided, clean);
      ++failures;
    }
    report.add_metrics(pooled.metrics);
    report.add_trace(pooled.trace);
  }

  report.write();
  if (failures > 0) std::printf("\n%d gate(s) FAILED\n", failures);
  return failures == 0 ? 0 : 1;
}
