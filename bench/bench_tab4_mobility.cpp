// Tab. 4: BER with ambient human mobility.
//
// Paper: five cases (no human / walk 10 cm off LoS / walk behind tag /
// work 5 cm off LoS / 3 people around LoS) all stay below 0.3% BER --
// the retroreflective uplink sees almost no ambient multipath. Expected
// shape: no mobility case significantly above the no-human baseline.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/mobility.h"

int main() {
  rt::bench::print_header("Tab. 4 -- BER with ambient human mobility",
                          "section 7.2.1, Table 4",
                          "all mobility cases comparable to the no-human baseline, BER < 1%");
  rt::bench::BenchReport report("tab4_mobility");

  const auto params = rt::phy::PhyParams::rate_8kbps();
  const auto tag = rt::bench::realistic_tag(params);
  const auto offline = rt::sim::train_offline_model(params, tag);
  const std::vector<rt::sim::MobilityScenario> cases = {
      rt::sim::MobilityScenario::none(),
      rt::sim::MobilityScenario::walk_10cm_off_los(),
      rt::sim::MobilityScenario::walk_behind_tag(),
      rt::sim::MobilityScenario::work_5cm_off_los(),
      rt::sim::MobilityScenario::three_people_around_los(),
  };

  std::vector<rt::runtime::SweepPoint> points;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    rt::sim::ChannelConfig ch;
    ch.pose.distance_m = 6.0;
    ch.mobility = cases[i];
    ch.noise_seed = 40 + i;
    points.push_back(rt::bench::make_point(params, tag, ch, offline, 100 + i));
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-34s %-12s\n", "Test case", "BER");
  std::vector<double> bers;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& stats = sweep.stats[i];
    bers.push_back(stats.ber());
    report.add_point(cases[i].name, static_cast<double>(i), stats);
    std::printf("%-34s %-12s\n", cases[i].name.c_str(), rt::bench::ber_str(stats).c_str());
  }

  std::printf("\npaper: 0.25 / 0.25 / 0.11 / 0.29 / 0.17 %% -- all below 0.3%%\n");
  bool ok = true;
  for (const double b : bers) ok = ok && b < 0.01;
  report.write();
  std::printf("shape check: every case below the 1%% reliability bar: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
