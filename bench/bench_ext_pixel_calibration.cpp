// Extension: per-pixel gain calibration for dense constellations.
//
// The paper's footnote 6 assumes the binary-weighted pixels are
// "manufactured identical enough" that a module's response is exactly
// area-proportional -- fine at 16-PQAM, but a realistic ~3% pixel gain
// spread leaves only half an amplitude step of margin on a 256-PQAM grid
// and shows up as an SNR-independent error floor. The extension appends
// bits_per_axis single-pixel training rounds and solves per-pixel gains.
//
// Expected: without calibration, 256-PQAM floors at a few percent BER
// regardless of SNR; with calibration the floor collapses and the
// waterfall continues -- the "scalability" design goal (section 3.1) made
// to hold under manufacturing spread.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Extension -- per-pixel calibration at 256-PQAM (16 kbps)",
                          "extends footnote 6 / design goal 'scalability' (section 3.1)",
                          "calibration removes the heterogeneity error floor");
  rt::bench::BenchReport report("ext_pixel_calibration");

  auto base = rt::phy::PhyParams::rate_16kbps();
  auto calibrated = base;
  calibrated.pixel_calibration = true;

  // Realistic 3% pixel gain spread -- NOT the reduced spread the
  // footnote-6 reproduction benches assume.
  auto tag = base.tag_config();
  tag.heterogeneity = {0.03, 0.02, rt::deg_to_rad(1.0)};
  tag.seed = 11;

  const std::vector<double> snrs = {35.0, 40.0, 45.0, 50.0, 55.0};

  std::vector<rt::runtime::SweepPoint> points;
  for (const bool cal : {false, true}) {
    const auto& params = cal ? calibrated : base;
    const auto offline = rt::sim::train_offline_model(params, tag);
    for (const double snr : snrs) {
      rt::sim::ChannelConfig ch;
      ch.snr_override_db = snr;
      ch.noise_seed = static_cast<std::uint64_t>(snr) * 3 + (cal ? 1 : 0);
      points.push_back(rt::bench::make_point(params, tag, ch, offline, 7 + (cal ? 1 : 0)));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-22s", "SNR (dB)");
  for (const double s : snrs) std::printf("%12.0f", s);
  std::printf("\n");

  std::vector<double> floor_plain;
  std::vector<double> floor_cal;
  for (const bool cal : {false, true}) {
    const char* series = cal ? "with calibration" : "without calibration";
    std::printf("%-22s", series);
    for (std::size_t si = 0; si < snrs.size(); ++si) {
      const auto& stats = sweep.stats[(cal ? 1 : 0) * snrs.size() + si];
      (cal ? floor_cal : floor_plain).push_back(stats.ber());
      report.add_point(series, snrs[si], stats);
      std::printf("%12s", rt::bench::ber_str(stats).c_str());
    }
    std::printf("\n");
  }

  std::printf("\ntraining overhead: +%d single-pixel rounds (+%.0f ms at this configuration)\n",
              base.bits_per_axis,
              base.bits_per_axis * base.symbol_duration_s() * 1e3 +
                  std::max(1, base.training_memory) * base.symbol_duration_s() * 1e3);
  const bool plain_floors = floor_plain.back() > 0.01;
  const bool cal_clears = floor_cal.back() < 0.01 && floor_cal[3] < 0.01;
  report.add_scalar("uncalibrated_floor_ber", floor_plain.back());
  report.add_scalar("calibrated_high_snr_ber", floor_cal.back());
  report.write();
  std::printf("shape check: uncalibrated floor persists at high SNR: %s; "
              "calibrated link clears 1%%: %s\n",
              plain_floors ? "yes" : "NO", cal_clears ? "yes" : "NO");
  return (plain_floors && cal_clears) ? 0 : 1;
}
