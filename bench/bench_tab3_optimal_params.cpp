// Tab. 3: minimum distance D and demodulation threshold of the optimal
// (L, P) parameters per target data rate.
//
// Paper values: rate 1/4/8/12/16 Kbps -> D = 8.7 / 9.0e-2 / 1.5e-2 /
// 7.8e-3 / 4.0e-3 and thresholds 0 / 20 / 28 / 31 / 33 dB (relative to
// the 1 Kbps optimum). Expected shape: D falls steeply and the threshold
// climbs as the target rate grows -- the SNR-for-rate tradeoff DSM-PQAM
// unlocks.
#include <cstdio>
#include <future>
#include <vector>

#include "analysis/optimizer.h"
#include "bench/bench_util.h"
#include "runtime/thread_pool.h"

int main() {
  rt::bench::print_header("Tab. 3 -- D and threshold of optimal parameters per rate",
                          "section 5.3, Table 3",
                          "D decreases / threshold increases monotonically with rate");
  rt::bench::BenchReport report("tab3_optimal_params");

  constexpr double kFs = 40e3;
  constexpr double kSlot = 0.5e-3;
  const auto table = rt::analysis::characterize_lcm(
      rt::lcm::LcTimings{}, kSlot, kFs, rt::bench::env_int("RT_BENCH_V", 8));

  rt::analysis::OptimizerOptions opt;
  opt.dsm_orders = {2, 4, 8, 16};
  opt.bits_per_axis = {1, 2, 3, 4};
  opt.payload_slots = 4;
  opt.distance.exhaustive_bit_limit = 0;
  opt.distance.random_words = 4;

  // Each rate's grid optimization is an independent pure function -- fan
  // them out on the pool.
  const std::vector<double> rates = {1000.0, 4000.0, 8000.0, 12000.0, 16000.0};
  rt::obs::Recorder obs_rec;
  std::vector<rt::analysis::OptimizerResult> results;
  {
    const rt::obs::ScopedBind obs_bind(obs_rec);
    RT_TRACE_SPAN("analysis_fanout");
    rt::runtime::ThreadPool pool(rt::bench::bench_threads());
    std::vector<std::future<rt::analysis::OptimizerResult>> futures;
    for (const double r : rates)
      futures.push_back(pool.submit([r, &table, &opt] {
        return rt::analysis::optimize_parameters(table, r, opt);
      }));
    for (auto& f : futures) results.push_back(f.get());
  }
  report.add_recorder(obs_rec);

  std::vector<double> ds;
  std::printf("\n%-18s", "Data rate (Kbps)");
  for (const double r : rates) std::printf("%10.0f", r / 1000.0);
  std::printf("\n%-18s", "D");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& res = results[i];
    ds.push_back(res.best ? res.best->d : 0.0);
    if (res.best) {
      report.add_value("min_distance", rates[i], res.best->d);
      std::printf("%10.2e", res.best->d);
    } else {
      std::printf("%10s", "-");
    }
  }
  std::printf("\n%-18s", "Threshold");
  const double d_ref = ds.front();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds[i] > 0.0) {
      const double th = rt::analysis::relative_threshold_db(ds[i], d_ref);
      report.add_value("threshold_db", rates[i], th);
      std::printf("%7.0f dB", th);
    } else {
      std::printf("%10s", "-");
    }
  }
  std::printf("\n\npaper: D = 8.7 / 9.0e-2 / 1.5e-2 / 7.8e-3 / 4.0e-3;"
              " thresholds 0 / 20 / 28 / 31 / 33 dB\n");

  bool monotone = true;
  for (std::size_t i = 1; i < ds.size(); ++i)
    monotone = monotone && (ds[i] > 0.0) && ds[i] < ds[i - 1];
  report.write();
  std::printf("shape check: D strictly decreasing with rate: %s\n", monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
