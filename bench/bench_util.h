// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure from the paper's evaluation
// and prints the same rows/series the paper reports. Runtime knobs:
//   RT_BENCH_PACKETS  packets per BER point (default 10; paper used 30)
//   RT_BENCH_PAYLOAD  payload bytes per packet (default 32; paper used 128)
//   RT_BENCH_THREADS  sweep worker threads (default: hardware concurrency)
// Raise the first two for full-fidelity runs. BER points run through the
// deterministic parallel sweep engine (src/runtime), so the numbers are
// bit-identical at any thread count. Each bench also writes a
// machine-readable BENCH_<name>.json next to the working directory so the
// perf/accuracy trajectory stays trackable across PRs (see DESIGN.md).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "runtime/sweep.h"
#include "sim/link_sim.h"

namespace rt::bench {

[[nodiscard]] inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

[[nodiscard]] inline int packets_per_point() { return env_int("RT_BENCH_PACKETS", 10); }
[[nodiscard]] inline std::size_t payload_bytes() {
  return static_cast<std::size_t>(env_int("RT_BENCH_PAYLOAD", 32));
}
[[nodiscard]] inline unsigned bench_threads() { return rt::runtime::sweep_threads(); }

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("packets/point=%d payload=%zuB threads=%u\n", packets_per_point(), payload_bytes(),
              bench_threads());
  std::printf("================================================================\n");
}

/// Formats a BER as the paper plots it (percent, "<floor" when no error
/// was observed in the sample budget, or "n/a" when every preamble was
/// lost and no payload bit was ever counted).
[[nodiscard]] inline std::string ber_str(const sim::LinkStats& stats) {
  char buf[64];
  if (stats.total_bits == 0) return "n/a";
  if (stats.bit_errors == 0) {
    std::snprintf(buf, sizeof(buf), "<%.4f%%", 100.0 / static_cast<double>(stats.total_bits));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f%%", 100.0 * stats.ber());
  }
  return buf;
}

/// Formats an aggregate BER from merged error/bit counts (multi-seed
/// points) with the same floor/empty conventions as ber_str.
[[nodiscard]] inline std::string ber_str_counts(std::size_t errors, std::size_t bits) {
  sim::LinkStats s;
  s.bit_errors = errors;
  s.total_bits = bits;
  return ber_str(s);
}

/// Builds one sweep point with a shared offline model (the offline step
/// does not depend on distance/SNR, so sweeps share it across points).
[[nodiscard]] inline runtime::SweepPoint make_point(const phy::PhyParams& params,
                                                    const lcm::TagConfig& tag,
                                                    const sim::ChannelConfig& channel,
                                                    const phy::OfflineModel& offline,
                                                    std::uint64_t seed = 1) {
  runtime::SweepPoint p;
  p.params = params;
  p.tag = tag;
  p.channel = channel;
  p.sim.shared_offline_model = offline;
  p.sim.seed = seed;
  return p;
}

/// Runs all points through the parallel sweep engine with the bench knobs
/// (RT_BENCH_PACKETS / RT_BENCH_PAYLOAD / RT_BENCH_THREADS).
[[nodiscard]] inline runtime::SweepResult run_points(
    std::span<const runtime::SweepPoint> points) {
  runtime::SweepOptions so;
  so.packets = packets_per_point();
  so.payload_bytes = payload_bytes();
  so.threads = bench_threads();
  return runtime::parallel_sweep(points, so);
}

/// Runs one BER point (single-point sweep: packets still fan out across
/// the worker threads, and the result is identical to a serial run).
[[nodiscard]] inline sim::LinkStats run_point(const phy::PhyParams& params,
                                              const lcm::TagConfig& tag,
                                              const sim::ChannelConfig& channel,
                                              const phy::OfflineModel& offline,
                                              std::uint64_t seed = 1) {
  const runtime::SweepPoint point = make_point(params, tag, channel, offline, seed);
  return run_points({&point, 1}).stats[0];
}

/// Default tag hardware realism used by the experiment benches. The
/// pixel-gain spread scales inversely with the constellation density:
/// 256-PQAM leaves only 1/15 of the swing between amplitude levels, so it
/// presumes the paper's footnote-6 assumption that the binary-weighted
/// pixels are "manufactured identical enough" -- 3% gain spread is fine
/// for 16-PQAM but would swamp the 256-PQAM grid (see
/// bench_ext_pixel_calibration for the extension that lifts this).
/// Configurations with T < tau_1 (the 32 Kbps emulation point) follow the
/// paper's trace-driven methodology -- recorded waveforms of the actual
/// hardware -- which our simulator matches with zero model spread.
[[nodiscard]] inline lcm::TagConfig realistic_tag(const phy::PhyParams& params,
                                                  std::uint64_t seed = 11) {
  auto tag = params.tag_config();
  double gain = 0.03 * std::min(1.0, 3.0 / static_cast<double>(params.levels_per_axis() - 1));
  if (params.slot_s < params.charge_s) gain = 0.0;  // trace-emulation regime
  tag.heterogeneity = {gain, gain * 0.7, rt::deg_to_rad(gain * 33.0)};
  tag.seed = seed;
  return tag;
}

/// Machine-readable record of one bench run, written as BENCH_<name>.json.
/// Schema (all numbers; optional fields omitted when absent):
///   { "bench": str, "threads": u, "packets_per_point": n,
///     "payload_bytes": n, "wall_s": s, "sweep_wall_s": s?,
///     "points": [ { "series": str, "x": f, "ber": f, "packet_loss": f,
///                   "packets": n, "total_bits": n, "bit_errors": n,
///                   "preamble_failures": n } |
///                 { "series": str, "x": f, "value": f } ... ],
///     "scalars": { str: f, ... } }
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Records one BER point of a series (x = the swept coordinate).
  void add_point(const std::string& series, double x, const sim::LinkStats& s) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"series\": \"%s\", \"x\": %.10g, \"ber\": %.10g, \"packet_loss\": %.10g, "
                  "\"packets\": %d, \"total_bits\": %zu, \"bit_errors\": %zu, "
                  "\"preamble_failures\": %d}",
                  escape(series).c_str(), x, s.ber(), s.packet_loss(), s.packets, s.total_bits,
                  s.bit_errors, s.preamble_failures);
    points_.emplace_back(buf);
  }

  /// Records one generic (series, x, value) point for non-BER benches.
  void add_value(const std::string& series, double x, double value) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "{\"series\": \"%s\", \"x\": %.10g, \"value\": %.10g}",
                  escape(series).c_str(), x, value);
    points_.emplace_back(buf);
  }

  /// Records a named summary number (working range, gain, threshold...).
  void add_scalar(const std::string& key, double value) { scalars_.emplace_back(key, value); }

  /// Accumulates engine wall time (summed across multiple sweeps) and, in
  /// RT_OBS builds, the sweep's stage spans + metrics.
  void add_sweep(const runtime::SweepResult& r) {
    sweep_wall_s_ += r.wall_s;
    obs_metrics_.merge(r.metrics);
    obs_trace_.insert(obs_trace_.end(), r.trace.begin(), r.trace.end());
  }

  /// Folds an already-merged metrics registry (e.g. a closed-loop study's)
  /// into the report. No-op outside RT_OBS builds (the registry is empty).
  void add_metrics(const obs::MetricsRegistry& m) { obs_metrics_.merge(m); }

  /// Appends already-collected spans (e.g. a fleet campaign's trace).
  /// No-op outside RT_OBS builds (campaign traces are empty there).
  void add_trace(std::span<const obs::SpanRecord> spans) {
    obs_trace_.insert(obs_trace_.end(), spans.begin(), spans.end());
  }

  /// Folds a serial-path recorder (e.g. a PacketWorkspace's) into the
  /// report. No-op unless built with RT_OBS=ON.
  void add_recorder(const obs::Recorder& rec) {
#if RT_OBS_ENABLED
    obs_metrics_.merge(rec.metrics);
    const auto spans = rec.trace.spans();
    obs_trace_.insert(obs_trace_.end(), spans.begin(), spans.end());
#else
    static_cast<void>(rec);
#endif
  }

  /// Writes BENCH_<name>.json into the working directory.
  void write() const {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\n  \"bench\": \"%s\",\n  \"threads\": %u,\n  \"packets_per_point\": %d,\n"
                  "  \"payload_bytes\": %zu,\n  \"wall_s\": %.6g,\n",
                  escape(name_).c_str(), bench_threads(), packets_per_point(), payload_bytes(),
                  wall_s);
    f << head;
    if (sweep_wall_s_ > 0.0) {
      char sw[64];
      std::snprintf(sw, sizeof(sw), "  \"sweep_wall_s\": %.6g,\n", sweep_wall_s_);
      f << sw;
    }
    f << "  \"points\": [";
    for (std::size_t i = 0; i < points_.size(); ++i)
      f << (i == 0 ? "\n    " : ",\n    ") << points_[i];
    f << (points_.empty() ? "],\n" : "\n  ],\n");
    f << "  \"scalars\": {";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %.10g", i == 0 ? "" : ",",
                    escape(scalars_[i].first).c_str(), scalars_[i].second);
      f << buf;
    }
    f << (scalars_.empty() ? "}\n" : "\n  }\n");
    f << "}\n";
    std::printf("wrote %s (wall %.2fs, %u threads)\n", path.c_str(), wall_s, bench_threads());
    write_obs_artifacts();
  }

 private:
  /// RT_OBS builds: print the per-stage summary and write the
  /// BENCH_<name>.trace.json / BENCH_<name>.metrics.json /
  /// BENCH_<name>.folded.txt artifacts (schemas in docs/TELEMETRY.md).
  /// No-op otherwise.
  void write_obs_artifacts() const {
    if constexpr (obs::kEnabled) {
      if (obs_metrics_.empty() && obs_trace_.empty()) return;
      obs::print_stage_summary(stdout, obs_metrics_, obs_trace_);
      const std::string trace_path = "BENCH_" + name_ + ".trace.json";
      const std::string metrics_path = "BENCH_" + name_ + ".metrics.json";
      const std::string folded_path = "BENCH_" + name_ + ".folded.txt";
      obs::write_chrome_trace(trace_path, obs_trace_);
      obs::write_metrics_json(metrics_path, obs_metrics_, obs_trace_);
      obs::write_folded_stacks(folded_path, obs_trace_);
      std::printf("wrote %s + %s + %s (open the trace at chrome://tracing)\n", trace_path.c_str(),
                  metrics_path.c_str(), folded_path.c_str());
    }
  }

  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double sweep_wall_s_ = 0.0;
  std::vector<std::string> points_;
  std::vector<std::pair<std::string, double>> scalars_;
  obs::MetricsRegistry obs_metrics_;       // stays empty unless RT_OBS=ON
  std::vector<obs::SpanRecord> obs_trace_;  // stays empty unless RT_OBS=ON
};

}  // namespace rt::bench
