// Shared helpers for the experiment benches.
//
// Every bench regenerates one table or figure from the paper's evaluation
// and prints the same rows/series the paper reports. Runtime knobs:
//   RT_BENCH_PACKETS  packets per BER point (default 10; paper used 30)
//   RT_BENCH_PAYLOAD  payload bytes per packet (default 32; paper used 128)
// Raise both for full-fidelity runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/link_sim.h"

namespace rt::bench {

[[nodiscard]] inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

[[nodiscard]] inline int packets_per_point() { return env_int("RT_BENCH_PACKETS", 10); }
[[nodiscard]] inline std::size_t payload_bytes() {
  return static_cast<std::size_t>(env_int("RT_BENCH_PAYLOAD", 32));
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("packets/point=%d payload=%zuB\n", packets_per_point(), payload_bytes());
  std::printf("================================================================\n");
}

/// Formats a BER as the paper plots it (percent, or "<floor" when no error
/// was observed in the sample budget).
[[nodiscard]] inline std::string ber_str(const sim::LinkStats& stats) {
  char buf[64];
  if (stats.bit_errors == 0) {
    std::snprintf(buf, sizeof(buf), "<%.4f%%", 100.0 / static_cast<double>(stats.total_bits));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f%%", 100.0 * stats.ber());
  }
  return buf;
}

/// Runs one BER point with a shared offline model (the offline step does
/// not depend on distance/SNR).
[[nodiscard]] inline sim::LinkStats run_point(const phy::PhyParams& params,
                                              const lcm::TagConfig& tag,
                                              const sim::ChannelConfig& channel,
                                              const phy::OfflineModel& offline,
                                              std::uint64_t seed = 1) {
  sim::SimOptions so;
  so.shared_offline_model = offline;
  so.seed = seed;
  sim::LinkSimulator simulator(params, tag, channel, so);
  return simulator.run(packets_per_point(), payload_bytes());
}

/// Default tag hardware realism used by the experiment benches. The
/// pixel-gain spread scales inversely with the constellation density:
/// 256-PQAM leaves only 1/15 of the swing between amplitude levels, so it
/// presumes the paper's footnote-6 assumption that the binary-weighted
/// pixels are "manufactured identical enough" -- 3% gain spread is fine
/// for 16-PQAM but would swamp the 256-PQAM grid (see
/// bench_ext_pixel_calibration for the extension that lifts this).
/// Configurations with T < tau_1 (the 32 Kbps emulation point) follow the
/// paper's trace-driven methodology -- recorded waveforms of the actual
/// hardware -- which our simulator matches with zero model spread.
[[nodiscard]] inline lcm::TagConfig realistic_tag(const phy::PhyParams& params,
                                                  std::uint64_t seed = 11) {
  auto tag = params.tag_config();
  double gain = 0.03 * std::min(1.0, 3.0 / static_cast<double>(params.levels_per_axis() - 1));
  if (params.slot_s < params.charge_s) gain = 0.0;  // trace-emulation regime
  tag.heterogeneity = {gain, gain * 0.7, rt::deg_to_rad(gain * 33.0)};
  tag.seed = seed;
  return tag;
}

}  // namespace rt::bench
