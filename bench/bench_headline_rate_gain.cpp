// Headline result: RetroTurbo's rate gain over the status-quo VLBC
// baselines.
//
// Paper: 32x over the OOK baseline in experiments (8 Kbps vs 250 bps) and
// 128x in emulation (32 Kbps), with PassiveVLC's ~1 Kbps as the published
// state of the art. Every baseline here runs through the same real
// simulator stack (OOK and PAM are degenerate DSM-PQAM configurations:
// L=1, single polarization channel). Also reports the basic-vs-overlapped
// DSM ablation (section 4.1.1 vs 4.1.2).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Headline -- rate gain over OOK/PAM baselines",
                          "abstract + sections 1, 7.4",
                          "~32x experimental and ~128x emulated gain over OOK, all links reliable");
  rt::bench::BenchReport report("headline_rate_gain");

  struct SchemeCase {
    const char* name;
    rt::phy::PhyParams params;
    double snr_db;  // operated at a comfortable margin for its order
  };
  // OOK: 1 pixel, 1 bit per 4 ms period (trend-based, PassiveVLC-style).
  rt::phy::PhyParams ook;
  ook.dsm_order = 1;
  ook.bits_per_axis = 1;
  ook.slot_s = 4e-3;
  ook.charge_s = 0.5e-3;
  ook.use_q_channel = false;
  ook.preamble_slots = 16;
  // PAM-16: 1 module of 4 binary-weighted pixels, single channel.
  rt::phy::PhyParams pam = ook;
  pam.bits_per_axis = 4;

  const std::vector<SchemeCase> cases = {
      {"OOK (250 bps)", ook, 25.0},
      {"PAM-16 (1 kbps)", pam, 35.0},
      {"DSM-PQAM 8 kbps", rt::phy::PhyParams::rate_8kbps(), 40.0},
      {"DSM-PQAM 32 kbps (emu)", rt::phy::PhyParams::rate_32kbps(), 60.0},
  };

  std::vector<rt::runtime::SweepPoint> points;
  for (const auto& sc : cases) {
    const auto tag = rt::bench::realistic_tag(sc.params);
    const auto offline = rt::sim::train_offline_model(sc.params, tag);
    rt::sim::ChannelConfig ch;
    ch.snr_override_db = sc.snr_db;
    ch.noise_seed = static_cast<std::uint64_t>(sc.snr_db);
    points.push_back(rt::bench::make_point(sc.params, tag, ch, offline));
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-26s %-12s %-12s %-10s\n", "scheme", "rate (bps)", "BER", "gain vs OOK");
  std::vector<double> rates;
  bool all_reliable = true;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& sc = cases[ci];
    const auto& stats = sweep.stats[ci];
    const double rate = sc.params.data_rate_bps();
    rates.push_back(rate);
    all_reliable = all_reliable && stats.ber() < 0.01;
    report.add_point(sc.name, rate, stats);
    std::printf("%-26s %-12.0f %-12s %-10.1fx\n", sc.name, rate,
                rt::bench::ber_str(stats).c_str(), rate / rates.front());
  }

  // Basic vs overlapped DSM (section 4.1.1 vs 4.1.2): with L=8, P=16,
  // tau_1 = 0.5 ms, tau_0 = 3.5 ms the basic symbol is L*tau_1 + tau_0.
  const auto p8 = rt::phy::PhyParams::rate_8kbps();
  const double basic_rate = p8.basic_dsm_rate_bps(3.5e-3);
  std::printf("\nDSM ablation at L=8, 16-PQAM: basic %.0f bps vs overlapped %.0f bps "
              "(%.1fx from overlapping alone)\n",
              basic_rate, p8.data_rate_bps(), p8.data_rate_bps() / basic_rate);

  const double exp_gain = rates[2] / rates[0];
  const double emu_gain = rates[3] / rates[0];
  std::printf("\npaper: 32x experimental, 128x emulated gain over the OOK baseline\n");
  std::printf("measured: %.0fx experimental, %.0fx emulated\n", exp_gain, emu_gain);
  report.add_scalar("exp_gain", exp_gain);
  report.add_scalar("emu_gain", emu_gain);
  report.add_scalar("overlap_gain", p8.data_rate_bps() / basic_rate);
  report.write();
  const bool ok = all_reliable && exp_gain >= 31.0 && emu_gain >= 127.0;
  std::printf("shape check: all links reliable and gains match: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
