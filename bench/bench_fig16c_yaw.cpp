// Fig. 16c: BER versus yaw angular misalignment.
//
// Paper: channel training calibrates the symbol deviation a tilted tag
// introduces, keeping the link reliable to at least +-40deg of yaw;
// preamble detection / training start failing beyond +-55deg. Expected
// shape: flat-ish BER through ~40deg, collapse by ~55-60deg; the ablation
// with online training disabled degrades much earlier.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

/// Training-disabled ablation: templates measured once facing squarely
/// (yaw 0) and never adapted -- what a training-free receiver would use.
rt::sim::LinkStats run_without_training(const rt::phy::PhyParams& params,
                                        const rt::lcm::TagConfig& tag,
                                        const rt::sim::ChannelConfig& ch,
                                        const rt::phy::OfflineModel& offline) {
  rt::sim::SimOptions so;
  so.shared_offline_model = offline;
  so.oracle_templates = true;
  so.oracle_pose = rt::sim::Pose{ch.pose.distance_m, 0.0, 0.0};  // stale yaw-0 references
  rt::sim::LinkSimulator simulator(params, tag, ch, so);
  return simulator.run(rt::bench::packets_per_point(), rt::bench::payload_bytes());
}

}  // namespace

int main() {
  rt::bench::print_header("Fig. 16c -- BER vs yaw angular misalignment",
                          "section 7.2.1, Figure 16c",
                          "reliable to ~+-40deg with channel training, failing by ~55-60deg");

  const auto params = rt::phy::PhyParams::rate_8kbps();
  const auto tag = rt::bench::realistic_tag(params);
  // Offline bases span orientations, as the paper's offline stage does.
  const auto offline = rt::sim::train_offline_model(params, tag, {0.0, 25.0, 45.0});
  const std::vector<double> yaws = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 55.0, 60.0};
  const double distance = 3.5;  // inside the working range so yaw is the limiter

  std::printf("\n%-22s", "yaw (deg)");
  for (const double y : yaws) std::printf("%12.0f", y);
  std::printf("\n%-22s", "SNR (dB)");
  const auto budget = rt::optics::LinkBudget::narrow_beam();
  for (const double y : yaws)
    std::printf("%12.1f",
                budget.snr_db_at(distance) - rt::optics::LinkBudget::yaw_loss_db(rt::deg_to_rad(y)));
  std::printf("\n");

  std::vector<double> trained_ber;
  std::printf("%-22s", "with training");
  for (const double y : yaws) {
    // Aggregate several noise/payload realizations: single 10-packet runs
    // carry +-0.4% sampling noise, too coarse against the 1% bar.
    std::size_t errors = 0;
    std::size_t bits = 0;
    for (int s = 0; s < 3; ++s) {
      rt::sim::ChannelConfig ch;
      ch.pose.distance_m = distance;
      ch.pose.yaw_rad = rt::deg_to_rad(y);
      ch.noise_seed = static_cast<std::uint64_t>(y) + 7 + s * 131;
      const auto stats = rt::bench::run_point(params, tag, ch, offline, 1 + s);
      errors += stats.bit_errors;
      bits += stats.total_bits;
    }
    const double ber = static_cast<double>(errors) / static_cast<double>(bits);
    trained_ber.push_back(ber);
    char buf[32];
    std::snprintf(buf, sizeof(buf), errors == 0 ? "<%.4f%%" : "%.4f%%",
                  errors == 0 ? 100.0 / static_cast<double>(bits) : 100.0 * ber);
    std::printf("%12s", buf);
    std::fflush(stdout);
  }
  std::printf("\n");

  std::printf("%-22s", "no online training");
  std::vector<double> untrained_ber;
  const auto offline_zero_only = rt::sim::train_offline_model(params, tag, {0.0});
  for (const double y : yaws) {
    rt::sim::ChannelConfig ch;
    ch.pose.distance_m = distance;
    ch.pose.yaw_rad = rt::deg_to_rad(y);
    ch.noise_seed = static_cast<std::uint64_t>(y) + 7;
    const auto stats = run_without_training(params, tag, ch, offline_zero_only);
    untrained_ber.push_back(stats.ber());
    std::printf("%12s", rt::bench::ber_str(stats).c_str());
    std::fflush(stdout);
  }
  std::printf("\n");

  std::printf("\npaper: tolerant to at least +-40deg; fails beyond +-55deg\n");
  const bool reliable_40 = trained_ber[4] < 0.01;          // 40 deg
  const bool fails_60 = trained_ber.back() > trained_ber[4] * 3.0 || trained_ber.back() > 0.01;
  // The ablation must be worse at moderate yaw (that is what training buys).
  double trained_mid = 0.0;
  double untrained_mid = 0.0;
  for (std::size_t i = 2; i <= 4; ++i) {
    trained_mid += trained_ber[i];
    untrained_mid += untrained_ber[i];
  }
  const bool ablation = untrained_mid >= trained_mid;
  std::printf("shape check: reliable at 40deg: %s; degrades by 60deg: %s; "
              "training helps at moderate yaw: %s\n",
              reliable_40 ? "yes" : "NO", fails_60 ? "yes" : "NO", ablation ? "yes" : "NO");
  return (reliable_40 && fails_60 && ablation) ? 0 : 1;
}
