// Fig. 16c: BER versus yaw angular misalignment.
//
// Paper: channel training calibrates the symbol deviation a tilted tag
// introduces, keeping the link reliable to at least +-40deg of yaw;
// preamble detection / training start failing beyond +-55deg. Expected
// shape: flat-ish BER through ~40deg, collapse by ~55-60deg; the ablation
// with online training disabled degrades much earlier.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 16c -- BER vs yaw angular misalignment",
                          "section 7.2.1, Figure 16c",
                          "reliable to ~+-40deg with channel training, failing by ~55-60deg");
  rt::bench::BenchReport report("fig16c_yaw");

  const auto params = rt::phy::PhyParams::rate_8kbps();
  const auto tag = rt::bench::realistic_tag(params);
  // Offline bases span orientations, as the paper's offline stage does.
  const auto offline = rt::sim::train_offline_model(params, tag, {0.0, 25.0, 45.0});
  const auto offline_zero_only = rt::sim::train_offline_model(params, tag, {0.0});
  const std::vector<double> yaws = {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 55.0, 60.0};
  const double distance = 3.5;  // inside the working range so yaw is the limiter
  const int seeds = 3;  // aggregate several noise/payload realizations per
                        // point: single 10-packet runs carry +-0.4%
                        // sampling noise, too coarse against the 1% bar

  // Both series of the figure go through one engine fan-out: first the
  // trained points (seeds x yaws), then the training-disabled ablation
  // (templates measured once facing squarely at yaw 0, never adapted --
  // what a training-free receiver would use).
  std::vector<rt::runtime::SweepPoint> points;
  for (const double y : yaws) {
    for (int s = 0; s < seeds; ++s) {
      rt::sim::ChannelConfig ch;
      ch.pose.distance_m = distance;
      ch.pose.yaw_rad = rt::deg_to_rad(y);
      ch.noise_seed = static_cast<std::uint64_t>(y) + 7 + static_cast<std::uint64_t>(s) * 131;
      points.push_back(rt::bench::make_point(params, tag, ch, offline, 1 + s));
    }
  }
  const std::size_t ablation_begin = points.size();
  for (const double y : yaws) {
    rt::sim::ChannelConfig ch;
    ch.pose.distance_m = distance;
    ch.pose.yaw_rad = rt::deg_to_rad(y);
    ch.noise_seed = static_cast<std::uint64_t>(y) + 7;
    auto p = rt::bench::make_point(params, tag, ch, offline_zero_only);
    p.sim.oracle_templates = true;
    p.sim.oracle_pose = rt::sim::Pose{distance, 0.0, 0.0};  // stale yaw-0 references
    points.push_back(p);
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-22s", "yaw (deg)");
  for (const double y : yaws) std::printf("%12.0f", y);
  std::printf("\n%-22s", "SNR (dB)");
  const auto budget = rt::optics::LinkBudget::narrow_beam();
  for (const double y : yaws)
    std::printf("%12.1f",
                budget.snr_db_at(distance) - rt::optics::LinkBudget::yaw_loss_db(rt::deg_to_rad(y)));
  std::printf("\n");

  std::vector<double> trained_ber;
  std::printf("%-22s", "with training");
  for (std::size_t yi = 0; yi < yaws.size(); ++yi) {
    rt::sim::LinkStats merged;
    for (int s = 0; s < seeds; ++s) merged.merge(sweep.stats[yi * seeds + s]);
    trained_ber.push_back(merged.ber());
    report.add_point("with training", yaws[yi], merged);
    std::printf("%12s", rt::bench::ber_str(merged).c_str());
  }
  std::printf("\n");

  std::printf("%-22s", "no online training");
  std::vector<double> untrained_ber;
  for (std::size_t yi = 0; yi < yaws.size(); ++yi) {
    const auto& stats = sweep.stats[ablation_begin + yi];
    untrained_ber.push_back(stats.ber());
    report.add_point("no online training", yaws[yi], stats);
    std::printf("%12s", rt::bench::ber_str(stats).c_str());
  }
  std::printf("\n");

  std::printf("\npaper: tolerant to at least +-40deg; fails beyond +-55deg\n");
  const bool reliable_40 = trained_ber[4] < 0.01;          // 40 deg
  const bool fails_60 = trained_ber.back() > trained_ber[4] * 3.0 || trained_ber.back() > 0.01;
  // The ablation must be worse at moderate yaw (that is what training buys).
  double trained_mid = 0.0;
  double untrained_mid = 0.0;
  for (std::size_t i = 2; i <= 4; ++i) {
    trained_mid += trained_ber[i];
    untrained_mid += untrained_ber[i];
  }
  const bool ablation = untrained_mid >= trained_mid;
  report.add_scalar("trained_ber_40deg", trained_ber[4]);
  report.add_scalar("trained_ber_60deg", trained_ber.back());
  report.write();
  std::printf("shape check: reliable at 40deg: %s; degrades by 60deg: %s; "
              "training helps at moderate yaw: %s\n",
              reliable_40 ? "yes" : "NO", fails_60 ? "yes" : "NO", ablation ? "yes" : "NO");
  return (reliable_40 && fails_60 && ablation) ? 0 : 1;
}
