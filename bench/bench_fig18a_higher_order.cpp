// Fig. 18a: emulated BER vs SNR for higher-order modulation (1..32 Kbps).
//
// Paper: trace-driven emulation with controlled AWGN shows the rate ladder
// -- 1 Kbps demodulates at -5 dB (1% BER) while 32 Kbps (L=16, 256-PQAM,
// T=0.25 ms < tau_1) needs ~55 dB; each doubling of rate shifts the
// waterfall right. Expected shape: BER curves ordered by rate, with the
// 32 Kbps curve needing far more SNR than 16 Kbps (overlapping fast
// edges), and every curve eventually reaching the <1% region.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 18a -- BER vs SNR for 1..32 Kbps (emulation)",
                          "section 7.3, Figure 18a",
                          "waterfalls ordered by rate; 32 Kbps needs dramatically more SNR");
  rt::bench::BenchReport report("fig18a_higher_order");

  struct RateCase {
    const char* name;
    rt::phy::PhyParams params;
  };
  const std::vector<RateCase> cases = {
      {"1kbps", rt::phy::PhyParams::rate_1kbps()},
      {"4kbps", rt::phy::PhyParams::rate_4kbps()},
      {"8kbps", rt::phy::PhyParams::rate_8kbps()},
      {"16kbps", rt::phy::PhyParams::rate_16kbps()},
      {"32kbps", rt::phy::PhyParams::rate_32kbps()},
  };
  const std::vector<double> snrs = {-5, 0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55};

  std::vector<rt::runtime::SweepPoint> points;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& rc = cases[ci];
    const auto tag = rt::bench::realistic_tag(rc.params);
    const auto offline = rt::sim::train_offline_model(rc.params, tag);
    for (const double snr : snrs) {
      rt::sim::ChannelConfig ch;
      ch.snr_override_db = snr;
      ch.noise_seed = static_cast<std::uint64_t>(snr + 50) * 13 + ci;
      points.push_back(rt::bench::make_point(rc.params, tag, ch, offline, 31 + ci));
    }
  }
  const auto sweep = rt::bench::run_points(points);
  report.add_sweep(sweep);

  std::printf("\n%-9s", "SNR(dB)");
  for (const double s : snrs) std::printf("%10.0f", s);
  std::printf("\n");

  std::vector<double> snr_at_1pct(cases.size(), 999.0);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::printf("%-9s", cases[ci].name);
    for (std::size_t si = 0; si < snrs.size(); ++si) {
      const auto& stats = sweep.stats[ci * snrs.size() + si];
      if (stats.ber() < 0.01 && snrs[si] < snr_at_1pct[ci]) snr_at_1pct[ci] = snrs[si];
      report.add_point(cases[ci].name, snrs[si], stats);
      std::printf("%10s", rt::bench::ber_str(stats).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nSNR at first <1%% BER point: ");
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::printf("%s %.0f dB%s", cases[ci].name, snr_at_1pct[ci],
                ci + 1 < cases.size() ? ", " : "\n");
    report.add_scalar(std::string("snr_at_1pct_db_") + cases[ci].name, snr_at_1pct[ci]);
  }
  std::printf("paper thresholds: 1k ~ -5 dB, 4k ~ 20 dB, 8k ~ 28 dB, 16k ~ 33 dB, 32k ~ 55 dB\n");

  bool ordered = true;
  for (std::size_t i = 1; i < cases.size(); ++i)
    ordered = ordered && snr_at_1pct[i] >= snr_at_1pct[i - 1];
  const bool all_reach = snr_at_1pct.back() < 999.0;
  report.write();
  std::printf("shape check: thresholds ordered by rate: %s; every rate reaches <1%%: %s\n",
              ordered ? "yes" : "NO", all_reach ? "yes" : "NO");
  return (ordered && all_reach) ? 0 : 1;
}
