// Section 7.2.2 microbenchmarks: latency and power.
//
// Paper: preamble 50 ms air time + online training 80 ms; 128 B packet
// transmits in 258 ms (8 Kbps) / 386 ms (4 Kbps); 16-branch DFE
// demodulation takes ~90 ms < the 128 ms payload air time, enabling
// pipelined real-time operation, and demodulation cost grows with DSM
// order but not with PQAM order. Tag power is 0.8 mW at BOTH 4 and 8 Kbps
// because the DSM symbol length (hence drive duty) is rate-independent.
//
// Here google-benchmark times the actual receiver stages on this machine,
// and the analytic air times + the tag drive-energy model reproduce the
// structural claims.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "lcm/tag_array.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"
#include "sim/link_sim.h"

namespace {

struct Fixture {
  rt::phy::PhyParams params;
  rt::phy::Modulator modulator;
  rt::phy::Demodulator demodulator;
  rt::phy::PacketSchedule packet;
  rt::sig::IqWaveform rx;

  explicit Fixture(const rt::phy::PhyParams& p, std::size_t payload_bytes = 128)
      : params(p),
        modulator(p),
        demodulator(p, rt::sim::train_offline_model(p, p.tag_config())),
        packet({}),
        rx(p.sample_rate_hz, 1) {
    rt::Rng rng(3);
    packet = modulator.modulate(rng.bits(payload_bytes * 8));
    rt::sim::ChannelConfig ch;
    ch.snr_override_db = 40.0;
    rt::sim::Channel channel(p, p.tag_config(), ch);
    auto src = channel.source();
    rx = src(packet.firings, packet.duration_s + p.symbol_duration_s());
  }
};

Fixture& fixture_8k() {
  static Fixture f(rt::phy::PhyParams::rate_8kbps());
  return f;
}

Fixture& fixture_4k() {
  static Fixture f(rt::phy::PhyParams::rate_4kbps());
  return f;
}

void BM_PreambleDetect(benchmark::State& state) {
  auto& f = fixture_8k();
  for (auto _ : state) {
    auto det = f.demodulator.preamble().detect(f.rx, 4 * f.params.samples_per_slot());
    benchmark::DoNotOptimize(det);
  }
}
BENCHMARK(BM_PreambleDetect);

void BM_OnlineTraining(benchmark::State& state) {
  auto& f = fixture_8k();
  const auto det = f.demodulator.preamble().detect(f.rx, 4 * f.params.samples_per_slot());
  const auto corrected = f.demodulator.preamble().correct(f.rx, det);
  for (auto _ : state) {
    auto bank = rt::phy::OnlineTrainer::train(f.params, f.demodulator.offline_model(),
                                              f.packet.layout, corrected, det.start_sample);
    benchmark::DoNotOptimize(bank);
  }
}
BENCHMARK(BM_OnlineTraining);

void BM_FullDemodulate(benchmark::State& state) {
  auto& f = state.range(0) == 8 ? fixture_8k() : fixture_4k();
  rt::phy::DemodOptions opts;
  opts.search_limit = 4 * f.params.samples_per_slot();
  for (auto _ : state) {
    auto res = f.demodulator.demodulate(f.rx, f.packet.layout.payload_slots, opts);
    benchmark::DoNotOptimize(res);
  }
  state.counters["payload_air_ms"] =
      f.packet.layout.payload_slots * f.params.slot_s * 1e3;
}
BENCHMARK(BM_FullDemodulate)->Arg(4)->Arg(8);

void BM_EqualizerBranches(benchmark::State& state) {
  // Equalizer-only cost vs branch count K (grows ~linearly with K; the
  // paper quotes "16x more computational cost" for the 16-branch DFE).
  auto params = rt::phy::PhyParams::rate_8kbps();
  params.equalizer_branches = static_cast<int>(state.range(0));
  static Fixture& base = fixture_8k();
  // One-time receiver prep outside the timed loop.
  static const auto prep = [] {
    auto& f = fixture_8k();
    const auto det = f.demodulator.preamble().detect(f.rx, 4 * f.params.samples_per_slot());
    auto corrected = f.demodulator.preamble().correct(f.rx, det);
    auto bank = rt::phy::OnlineTrainer::train(f.params, f.demodulator.offline_model(),
                                              f.packet.layout, corrected, det.start_sample);
    return std::tuple{det.start_sample, std::move(corrected), std::move(bank)};
  }();
  const auto& [start, corrected, bank] = prep;
  const rt::phy::DfeEqualizer eq(params, bank);
  const auto hist =
      rt::phy::Demodulator::initial_payload_histories(params, base.packet.layout);
  const std::size_t payload_begin =
      start + base.packet.layout.payload_begin() * params.samples_per_slot();
  for (auto _ : state) {
    auto res = eq.equalize(corrected, payload_begin, base.packet.layout.payload_slots, hist);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_EqualizerBranches)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== section 7.2.2 microbenchmarks: latency & power ===\n\n");
  rt::bench::BenchReport report("micro_latency_power");

  // One recorder for the whole run: the structural section's modulate
  // calls land in the report artifacts; the google-benchmark loops below
  // keep recording into it for the end-of-run stage summary.
  rt::obs::Recorder obs_rec;
  const rt::obs::ScopedBind obs_bind(obs_rec);

  // Air-time latency budget (structural, from the frame layout).
  for (const auto& [name, p] :
       {std::pair{"8kbps", rt::phy::PhyParams::rate_8kbps()},
        std::pair{"4kbps", rt::phy::PhyParams::rate_4kbps()}}) {
    const rt::phy::Modulator mod(p);
    rt::Rng rng(1);
    const auto pkt = mod.modulate(rng.bits(128 * 8));
    const double slot_ms = p.slot_s * 1e3;
    const double rate_kbps = p.data_rate_bps() / 1000.0;
    report.add_value("preamble_air_ms", rate_kbps, p.preamble_slots * slot_ms);
    report.add_value("training_air_ms", rate_kbps, pkt.layout.training_slots() * slot_ms);
    report.add_value("payload_air_ms", rate_kbps, pkt.layout.payload_slots * slot_ms);
    report.add_value("total_air_ms", rate_kbps, pkt.duration_s * 1e3);
    std::printf("%s 128 B packet: preamble %.0f ms, training %.0f ms, payload %.0f ms, "
                "total %.0f ms (paper: 258 / 386 ms total)\n",
                name, p.preamble_slots * slot_ms,
                pkt.layout.training_slots() * slot_ms,
                pkt.layout.payload_slots * slot_ms, pkt.duration_s * 1e3);
  }

  // Tag power: same DSM symbol length at 4 and 8 Kbps => same drive energy
  // per unit time (paper: 0.8 mW at both rates).
  {
    const auto p8 = rt::phy::PhyParams::rate_8kbps();
    const auto p4 = rt::phy::PhyParams::rate_4kbps();
    const auto energy_rate = [](const rt::phy::PhyParams& p) {
      rt::lcm::TagArray tag(p.tag_config());
      rt::Rng rng(5);  // scrambled payload => uniform levels
      std::vector<rt::lcm::Firing> schedule;
      const int slots = 2000;
      for (int n = 0; n < slots; ++n)
        schedule.push_back({n * p.slot_s, n % p.dsm_order,
                            static_cast<int>(rng.uniform_int(0, p.levels_per_axis() - 1)),
                            static_cast<int>(rng.uniform_int(0, p.levels_per_axis() - 1))});
      return tag.drive_energy(schedule) / (slots * p.slot_s);
    };
    const double e8 = energy_rate(p8);
    const double e4 = energy_rate(p4);
    report.add_scalar("drive_energy_rate_8kbps", e8);
    report.add_scalar("drive_energy_rate_4kbps", e4);
    report.add_scalar("drive_energy_ratio", e8 / e4);
    std::printf("\ntag drive-energy rate: 8kbps %.3f, 4kbps %.3f (ratio %.2f; paper: equal "
                "0.8 mW at both rates)\n\n",
                e8, e4, e8 / e4);
  }
  // Written before the timed loops so the structural results land even if
  // the google-benchmark pass is interrupted.
  report.add_recorder(obs_rec);
  report.write();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
#if RT_OBS_ENABLED
  std::printf("\nreceiver-stage spans across the google-benchmark pass:\n");
  rt::obs::print_stage_summary(stdout, obs_rec.metrics, obs_rec.trace.spans());
#endif
  return 0;
}
