// Fig. 13: relative demodulation threshold over the (DSM order, PQAM
// order) grid at a fixed data rate.
//
// Paper shape: neither extreme wins -- pure high-order PQAM (L small) and
// pure DSM (P small) both pay a threshold penalty; a combined middle point
// is best, which is the argument for using DSM and PQAM together.
//
// The map comes from ONE optimize_parameters call (the grid is produced as
// a unit), so this bench stays serial and only adds the JSON report.
#include <cstdio>

#include "analysis/optimizer.h"
#include "bench/bench_util.h"

int main() {
  rt::bench::print_header("Fig. 13 -- relative demodulation threshold map over (L, P)",
                          "section 5.3, Figure 13",
                          "a combined DSM+PQAM point beats both pure extremes");
  rt::bench::BenchReport report("fig13_threshold_map");

  constexpr double kFs = 40e3;
  constexpr double kSlot = 0.5e-3;
  const auto table = rt::analysis::characterize_lcm(
      rt::lcm::LcTimings{}, kSlot, kFs, rt::bench::env_int("RT_BENCH_V", 8));

  const double rate = 4000.0;
  rt::analysis::OptimizerOptions opt;
  opt.dsm_orders = {1, 2, 4, 8, 16};
  opt.bits_per_axis = {1, 2, 3, 4};
  opt.payload_slots = 4;
  opt.min_symbol_duration_s = 0.0;  // show the full map incl. bad corners
  opt.distance.exhaustive_bit_limit = 0;
  opt.distance.random_words = 4;
  rt::obs::Recorder obs_rec;
  const auto res = [&] {
    const rt::obs::ScopedBind obs_bind(obs_rec);
    RT_TRACE_SPAN("threshold_map");
    return rt::analysis::optimize_parameters(table, rate, opt);
  }();
  report.add_recorder(obs_rec);

  std::printf("\nrelative threshold (dB, 0 = best) at %.0f bps\n", rate);
  std::printf("%-8s", "L \\ P");
  for (const int bits : opt.bits_per_axis) std::printf("%10d", 1 << (2 * bits));
  std::printf("\n");
  for (const int l : opt.dsm_orders) {
    std::printf("%-8d", l);
    char series[16];
    std::snprintf(series, sizeof(series), "L=%d", l);
    for (const int bits : opt.bits_per_axis) {
      bool found = false;
      for (const auto& pt : res.grid) {
        if (pt.dsm_order != l || pt.bits_per_axis != bits) continue;
        report.add_value(series, 1 << (2 * bits), pt.threshold_db_rel);
        std::printf("%10.1f", pt.threshold_db_rel);
        found = true;
        break;
      }
      if (!found) std::printf("%10s", "-");
    }
    std::printf("\n");
  }

  if (res.best) {
    std::printf("\nbest point: L=%d, %d-PQAM, T=%.2f ms\n", res.best->dsm_order,
                1 << (2 * res.best->bits_per_axis), res.best->slot_s * 1e3);
    const bool combined = res.best->dsm_order > 1 && res.best->bits_per_axis >= 1;
    report.add_scalar("best_dsm_order", res.best->dsm_order);
    report.add_scalar("best_pqam_order", 1 << (2 * res.best->bits_per_axis));
    report.add_scalar("best_slot_ms", res.best->slot_s * 1e3);
    report.write();
    std::printf("shape check: optimum combines DSM (L>1) with PQAM: %s\n",
                combined ? "yes" : "NO");
    return combined ? 0 : 1;
  }
  report.write();
  std::printf("no feasible grid point\n");
  return 1;
}
