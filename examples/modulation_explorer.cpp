// Modulation design-space explorer: the paper's section-5 analysis as an
// interactive-style tool.
//
// Characterizes the nonlinear LCM once, then walks the (DSM order, PQAM
// order) grid printing minimum distances and relative demodulation
// thresholds -- how a system designer would pick operating points for a
// new liquid-crystal part (e.g. the fast ferroelectric cells the paper's
// conclusion mentions).
#include <cstdio>

#include "analysis/min_distance.h"
#include "analysis/optimizer.h"
#include "analysis/scheme.h"
#include "common/units.h"

int main() {
  constexpr double kFs = 40e3;
  constexpr double kGridSlot = 0.5e-3;

  std::printf("characterizing the LCM (order-8 finite-memory table)...\n");
  const auto table = rt::analysis::characterize_lcm(rt::lcm::LcTimings{}, kGridSlot, kFs, 8);

  // Baseline for context: the sub-Kbps OOK scheme the field started from.
  const rt::analysis::OokScheme ook(4, kGridSlot, 8);
  rt::analysis::MinDistanceOptions mdopt;
  mdopt.exhaustive_bit_limit = 8;
  const auto d_ook = rt::analysis::min_distance(table, ook, kFs, mdopt);
  std::printf("baseline %s: %.0f bps, D = %.3g\n\n", d_ook.scheme_name.c_str(),
              d_ook.data_rate_bps, d_ook.d);

  // Design-space walk at a fixed 4 Kbps target.
  std::printf("=== design space at 4 Kbps ===\n");
  rt::analysis::OptimizerOptions opt;
  opt.dsm_orders = {2, 4, 8};
  opt.bits_per_axis = {1, 2};
  opt.payload_slots = 4;
  opt.distance.exhaustive_bit_limit = 0;
  opt.distance.random_words = 3;
  const auto result = rt::analysis::optimize_parameters(table, 4000.0, opt);
  std::printf("%-6s %-8s %-10s %-12s %-14s\n", "L", "PQAM", "T (ms)", "D", "rel. thr (dB)");
  for (const auto& pt : result.grid)
    std::printf("%-6d %-8d %-10.2f %-12.3g %-14.1f\n", pt.dsm_order,
                1 << (2 * pt.bits_per_axis), pt.slot_s * 1e3, pt.d, pt.threshold_db_rel);
  if (result.best)
    std::printf("\nbest at 4 Kbps: L=%d, %d-PQAM, T=%.2f ms\n", result.best->dsm_order,
                1 << (2 * result.best->bits_per_axis), result.best->slot_s * 1e3);

  // Rate ladder: how the achievable threshold climbs with rate.
  std::printf("\n=== optimal points per target rate ===\n");
  std::printf("%-12s %-8s %-8s %-12s\n", "rate (Kbps)", "L", "PQAM", "D");
  for (const double rate : {1000.0, 2000.0, 4000.0, 8000.0}) {
    const auto r = rt::analysis::optimize_parameters(table, rate, opt);
    if (!r.best) {
      std::printf("%-12.0f (no feasible grid point)\n", rate / 1000.0);
      continue;
    }
    std::printf("%-12.0f %-8d %-8d %-12.3g\n", rate / 1000.0, r.best->dsm_order,
                1 << (2 * r.best->bits_per_axis), r.best->d);
  }
  std::printf("\nlarger D => lower demodulation threshold => longer range at that rate\n");
  return 0;
}
