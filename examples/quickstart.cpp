// Quickstart: send a message over a simulated RetroTurbo VLBC uplink.
//
// Demonstrates the adopter-facing facade: configure a deployment, send
// bytes, inspect delivery and link statistics. Uses the paper's default
// 8 Kbps operating point (L=8 DSM, 16-PQAM, T=0.5 ms) at 5 m.
#include <cstdio>
#include <string>

#include "core/retroturbo.h"

int main() {
  retroturbo::LinkConfig cfg;
  cfg.rate = retroturbo::RatePreset::k8kbps;
  cfg.distance_m = 5.0;
  cfg.roll_deg = 30.0;   // tag rotated about the optical axis: PQAM absorbs it
  cfg.yaw_deg = 10.0;    // tag not facing the reader squarely
  cfg.ambient_lux = 200; // office at night
  cfg.rs_n = 255;        // light Reed-Solomon outer code
  cfg.rs_k = 223;

  std::printf("RetroTurbo %s quickstart\n", retroturbo::version().c_str());
  std::printf("building link (one-time offline channel training)...\n");
  retroturbo::Link link(cfg);
  std::printf("link ready: %.0f bps at %.1f m, SNR %.1f dB\n\n", link.data_rate_bps(),
              cfg.distance_m, link.snr_db());

  const std::string message =
      "Hello from a sub-milliwatt liquid-crystal backscatter tag!";
  const std::vector<std::uint8_t> payload(message.begin(), message.end());

  const auto result = link.send_bytes(payload);
  if (!result.delivered) {
    std::printf("delivery FAILED after %d attempts\n", result.attempts);
    return 1;
  }
  std::printf("delivered in %d attempt(s): \"%s\"\n", result.attempts,
              std::string(result.received.begin(), result.received.end()).c_str());

  std::printf("\nmeasuring raw-PHY BER (paper methodology, abbreviated)...\n");
  const auto stats = link.measure_ber(/*packets=*/5, /*payload_bytes=*/64);
  std::printf("packets %d, preamble failures %d, BER %.4f%%\n", stats.packets,
              stats.preamble_failures, 100.0 * stats.ber());
  return 0;
}
