// Trace inspector: synthesize RetroTurbo waveforms, dump them as CSV for
// plotting, and replay a recorded trace through the receiver.
//
// Reproduces the paper's illustrative figures from our simulator:
//   * the asymmetric LCM pulse response (Fig. 3)
//   * the I/Q pulse orthogonality p_I = j p_Q (Fig. 9)
//   * a full DSM-PQAM packet waveform (Fig. 1)
// and demonstrates trace record -> replay -> demodulate round-tripping,
// the workflow behind the paper's trace-driven emulation (section 7.3).
#include <cstdio>

#include "common/rng.h"
#include "common/units.h"
#include "lcm/tag_array.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"
#include "sim/link_sim.h"
#include "sim/trace.h"

using rt::ms;

int main() {
  rt::phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = ms(1.0);
  p.charge_s = ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;

  // 1. Single-pixel pulse response: charge 0.5 ms, then watch the slow
  //    plateau + discharge (the Fig. 3 asymmetry DSM exploits).
  {
    rt::lcm::TagConfig cfg = p.tag_config();
    cfg.dsm_order = 1;
    cfg.bits_per_axis = 1;
    rt::lcm::TagArray tag(cfg);
    const std::vector<rt::lcm::Firing> firing = {{ms(1.0), 0, 1, -1}};
    const auto w = tag.synthesize(firing, p.sample_rate_hz, ms(10.0));
    rt::sim::write_trace_csv("pulse_response.csv", w);
    // Console sketch of the envelope.
    std::printf("LCM pulse response (I axis, 0.5 ms drive at t=1 ms):\n");
    for (double t = 0.5e-3; t < 9e-3; t += 1e-3) {
      const double v = w[w.index_at(t)].real();
      const int bars = static_cast<int>((v + 2.0) * 15.0);
      std::printf("  t=%4.1f ms %+6.2f |%.*s\n", t * 1e3, v, bars,
                  "##############################################################");
    }
    std::printf("wrote pulse_response.csv\n\n");
  }

  // 2. Full packet: modulate random bits, record the channel waveform.
  const rt::phy::Modulator mod(p);
  rt::Rng rng(7);
  const auto bits = rng.bits(96);
  const auto pkt = mod.modulate(bits);

  rt::sim::ChannelConfig ch;
  ch.snr_override_db = 30.0;
  ch.pose.roll_rad = rt::deg_to_rad(25.0);
  rt::sim::Channel channel(p, p.tag_config(), ch);
  auto source = channel.source();
  const auto rx = source(pkt.firings, pkt.duration_s + p.symbol_duration_s());
  rt::sim::write_trace_csv("packet_trace.csv", rx);
  std::printf("wrote packet_trace.csv (%zu samples, %.0f ms of DSM-PQAM air time)\n",
              rx.size(), rx.duration_s() * 1e3);

  // 3. Replay: read the trace back and demodulate it.
  const auto replayed = rt::sim::read_trace_csv("packet_trace.csv");
  const auto offline = rt::sim::train_offline_model(p, p.tag_config());
  const rt::phy::Demodulator demod(p, offline);
  rt::phy::DemodOptions opts;
  opts.search_limit = 4 * p.samples_per_slot();
  const auto res = demod.demodulate(replayed, pkt.layout.payload_slots, opts);
  if (!res.preamble_found) {
    std::printf("replay: preamble not found\n");
    return 1;
  }
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += res.bits[i] != bits[i];
  std::printf("replayed trace: preamble at sample %zu, rotation corrected "
              "(|a|=%.2f, arg a=%.1f deg), %zu/%zu bit errors\n",
              res.detection.start_sample, std::abs(res.detection.a),
              rt::rad_to_deg(std::arg(res.detection.a)), errors, bits.size());
  return errors == 0 ? 0 : 1;
}
