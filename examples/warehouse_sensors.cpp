// Warehouse sensor fleet: the IoT scenario the paper's introduction
// motivates -- many battery-free tags on shelves, one ceiling reader.
//
// Runs the full MAC stack: slotted-ALOHA tag discovery, SNR-based rate
// adaptation from the paper's operating points, TDMA polling, and CRC +
// stop-and-wait delivery of sensor readings over the real PHY simulator.
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/units.h"
#include "mac/goodput.h"
#include "mac/mac_link.h"
#include "mac/rate_table.h"
#include "mac/tdma.h"
#include "sim/link_sim.h"

namespace {

/// One shelf tag: identity, placement and its synthetic sensor readout.
struct ShelfTag {
  std::uint8_t id;
  double distance_m;
  double roll_deg;

  [[nodiscard]] std::vector<std::uint8_t> sensor_reading(rt::Rng& rng) const {
    // temperature (x10), humidity, battery-free harvest level
    return {static_cast<std::uint8_t>(180 + rng.uniform_int(0, 60)),
            static_cast<std::uint8_t>(30 + rng.uniform_int(0, 40)),
            static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
  }
};

/// Small fast PHY shared by all tags in this demo (a full 8 Kbps stack per
/// tag works too, it just takes longer to train).
rt::phy::PhyParams demo_phy() {
  rt::phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

}  // namespace

int main() {
  rt::Rng rng(2024);
  const auto budget = rt::optics::LinkBudget::wide_beam();
  const auto table = rt::mac::RateTable::paper_default();
  const rt::mac::GoodputModel goodput;

  // Deploy 6 tags across the aisle.
  std::vector<ShelfTag> tags;
  for (std::uint8_t i = 1; i <= 6; ++i)
    tags.push_back({i, rng.uniform(1.0, 4.3), rng.uniform(0.0, 180.0)});

  // Phase 1: discovery (framed slotted ALOHA, adaptive frame size).
  std::vector<std::uint8_t> ids;
  for (const auto& t : tags) ids.push_back(t.id);
  const auto discovery = rt::mac::discover_tags(ids, /*frame_slots=*/0, rng);
  std::printf("discovered %zu tags in %d rounds\n\n", discovery.discovered.size(),
              discovery.rounds);

  // Phase 2: per-tag rate assignment from measured SNR.
  std::printf("%-5s %-10s %-9s %-26s\n", "tag", "dist (m)", "SNR (dB)", "assigned rate");
  std::map<std::uint8_t, const rt::mac::RateOption*> assignment;
  for (const auto& t : tags) {
    const double snr = budget.snr_db_at(t.distance_m);
    const auto& opt = goodput.best_option(table, snr, 16);
    assignment[t.id] = &opt;
    std::printf("%-5u %-10.2f %-9.1f %-26s\n", t.id, t.distance_m, snr, opt.name.c_str());
  }

  // Phase 3: TDMA polling round -- every tag uploads one sensor frame
  // through the real PHY at its own simulated pose.
  rt::mac::TdmaScheduler tdma;
  for (const auto id : discovery.discovered) tdma.register_tag(id);
  std::printf("\nTDMA round (airtime share %.1f%% per tag):\n", 100.0 * tdma.airtime_share());

  const auto phy = demo_phy();
  const auto offline = rt::sim::train_offline_model(phy, phy.tag_config());
  int delivered = 0;
  for (std::size_t slot = 0; slot < tags.size(); ++slot) {
    const auto id = tdma.owner(slot);
    const auto& tag = *std::find_if(tags.begin(), tags.end(),
                                    [&](const ShelfTag& t) { return t.id == id; });
    rt::sim::ChannelConfig ch;
    ch.budget = budget;
    ch.pose.distance_m = tag.distance_m;
    ch.pose.roll_rad = rt::deg_to_rad(tag.roll_deg);
    ch.noise_seed = 100 + id;
    rt::sim::SimOptions so;
    so.offline_yaws_deg = {0.0};
    so.shared_offline_model = offline;
    rt::sim::LinkSimulator sim(phy, phy.tag_config(), ch, so);
    rt::mac::MacLink link(sim, rt::coding::ReedSolomon(15, 11));

    rt::mac::MacFrame frame;
    frame.tag_id = id;
    frame.seq = 0;
    frame.payload = tag.sensor_reading(rng);
    const auto r = link.send(frame, rt::mac::StopAndWaitArq(4));
    std::printf("  slot %zu tag %u: %s (%d attempt%s)", slot, id,
                r.delivered ? "delivered" : "LOST", r.attempts, r.attempts == 1 ? "" : "s");
    if (r.delivered) {
      ++delivered;
      std::printf("  T=%.1fC RH=%u%%", r.received->payload[0] / 10.0, r.received->payload[1]);
    }
    std::printf("\n");
  }
  std::printf("\nround complete: %d/%zu readings delivered\n", delivered, tags.size());
  return delivered == static_cast<int>(tags.size()) ? 0 : 1;
}
