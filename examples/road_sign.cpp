// Infrastructure-to-vehicle road sign: a RetroTurbo tag on a road sign
// read by a passing vehicle's headlight/reader (the scenario of the
// paper's reference [11] and its section-8 mobility discussion).
//
// As the car passes, the relative orientation and range change *during*
// each packet: the constellation rotates and the amplitude drifts. This
// example contrasts the static receiver (one preamble-time correction)
// with the mobility extension (mid-packet sync fields + interpolated
// correction tracking), transmitting a road-sign payload at several
// vehicle speeds.
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "phy/mobile.h"
#include "sim/channel.h"
#include "sim/link_sim.h"

namespace {

struct PassResult {
  double ber_static;
  double ber_mobile;
};

PassResult simulate_pass(double roll_rate_deg_s, double gain_drift_per_s, std::uint64_t seed) {
  rt::phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;

  rt::phy::MobileConfig mc;
  // Section 8: sync insertion "based on the mobility level and packet
  // length" -- faster passes get shorter blocks (more frequent resync).
  const int groups = roll_rate_deg_s > 100.0 ? 2 : 4;
  mc.block_symbols = groups * p.dsm_order;
  mc.sync_slots = 12;

  const std::string sign = "SPEED LIMIT 60 | LANE CLOSED AHEAD";
  std::vector<std::uint8_t> payload_bits;
  for (const char ch : sign)
    for (int b = 7; b >= 0; --b)
      payload_bits.push_back(static_cast<std::uint8_t>((ch >> b) & 1));

  rt::sim::ChannelConfig ch;
  ch.snr_override_db = 33.0;
  ch.dynamics.roll_rate_deg_s = roll_rate_deg_s;
  ch.dynamics.gain_drift_per_s = gain_drift_per_s;
  ch.noise_seed = seed;

  const rt::phy::MobileModulator mod(p, mc);
  const auto pkt = mod.modulate(payload_bits);
  rt::sim::Channel channel(p, p.tag_config(), ch);
  auto src = channel.source();
  const auto rx = src(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  const auto offline = rt::sim::train_offline_model(p, p.tag_config());
  const rt::phy::MobileDemodulator mobile(p, mc, offline);
  const auto res_mobile = mobile.demodulate(rx, pkt);

  // Static ablation: same waveform, one giant block => single correction.
  rt::phy::MobileConfig mono = mc;
  mono.block_symbols =
      ((static_cast<int>(pkt.payload_symbols.size()) + p.dsm_order - 1) / p.dsm_order) *
      p.dsm_order;
  const rt::phy::MobileModulator mono_mod(p, mono);
  const auto mono_pkt = mono_mod.modulate(payload_bits);
  rt::sim::Channel mono_channel(p, p.tag_config(), ch);
  auto mono_src = mono_channel.source();
  const auto mono_rx = mono_src(mono_pkt.firings, mono_pkt.duration_s + p.symbol_duration_s());
  const rt::phy::MobileDemodulator mono_demod(p, mono, offline);
  const auto res_static = mono_demod.demodulate(mono_rx, mono_pkt);

  const auto ber = [&](const rt::phy::MobileDemodulator::Result& r) {
    if (!r.preamble_found) return 1.0;
    std::size_t errors = 0;
    for (std::size_t i = 0; i < payload_bits.size(); ++i) errors += r.bits[i] != payload_bits[i];
    return static_cast<double>(errors) / static_cast<double>(payload_bits.size());
  };
  return {ber(res_static), ber(res_mobile)};
}

}  // namespace

int main() {
  std::printf("RetroTurbo road sign -> passing vehicle (mobility extension demo)\n\n");
  std::printf("%-28s %-18s %-18s\n", "vehicle dynamics", "static receiver", "with resync");
  struct Case {
    const char* name;
    double roll_rate;
    double gain_drift;
  };
  const Case cases[] = {
      {"parked (no motion)", 0.0, 0.0},
      {"creeping (30 deg/s)", 30.0, -0.2},
      {"city speed (90 deg/s)", 90.0, -0.5},
      {"highway (180 deg/s)", 180.0, -0.8},
  };
  bool mobile_always_ok = true;
  for (const auto& c : cases) {
    const auto r = simulate_pass(c.roll_rate, c.gain_drift, 42);
    std::printf("%-28s BER %-13.3f%% BER %-13.3f%%\n", c.name, 100.0 * r.ber_static,
                100.0 * r.ber_mobile);
    mobile_always_ok = mobile_always_ok && r.ber_mobile < 0.01;
  }
  std::printf("\nmid-packet sync fields keep every pass below the 1%% reliability bar: %s\n",
              mobile_always_ok ? "yes" : "no");
  return mobile_always_ok ? 0 : 1;
}
