// Contract-layer tests: RT_ENSURE / RT_ASSERT / RT_DCHECK_FINITE semantics,
// checked narrowing conversions, and a property test asserting the
// demodulator/DFE pipeline stays finite across randomized SNR / pixel-count
// sweeps (designed to run under the ASan/UBSan preset, where the debug
// contracts are live).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/narrow.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/link_sim.h"

namespace rt {
namespace {

// ------------------------------------------------------------ RT_ENSURE --

TEST(Contracts, EnsureThrowsPreconditionErrorWithContext) {
  try {
    RT_ENSURE(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "RT_ENSURE did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, EnsurePassesSilently) { EXPECT_NO_THROW(RT_ENSURE(2 > 1)); }

TEST(Contracts, PreconditionErrorIsNotAssertionError) {
  // API misuse and internal invariant breakage must stay distinguishable.
  EXPECT_THROW(RT_ENSURE(false), PreconditionError);
  EXPECT_THROW(ensure(false, "x"), std::logic_error);
}

// ------------------------------------------------------------ RT_ASSERT --

TEST(Contracts, AssertFollowsBuildMode) {
#if RT_ENABLE_ASSERTS
  EXPECT_THROW(RT_ASSERT(false, "checked build"), AssertionError);
  EXPECT_NO_THROW(RT_ASSERT(true));
#else
  // Release: compiled out entirely, and the operand is NOT evaluated.
  int evaluations = 0;
  RT_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Contracts, DcheckFiniteScalar) {
#if RT_ENABLE_ASSERTS
  EXPECT_NO_THROW(RT_DCHECK_FINITE(1.0));
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(RT_DCHECK_FINITE(nan), AssertionError);
  EXPECT_THROW(RT_DCHECK_FINITE(inf), AssertionError);
#else
  const double nan = std::nan("");
  EXPECT_NO_THROW(RT_DCHECK_FINITE(nan));  // zero-cost: no check in Release
#endif
}

TEST(Contracts, DcheckFiniteComplexAndRanges) {
#if RT_ENABLE_ASSERTS
  const std::complex<double> ok(1.0, -2.0);
  const std::complex<double> bad(0.0, std::nan(""));
  EXPECT_NO_THROW(RT_DCHECK_FINITE(ok));
  EXPECT_THROW(RT_DCHECK_FINITE(bad), AssertionError);

  std::vector<double> v = {0.0, 1.0, -3.5};
  EXPECT_NO_THROW(RT_DCHECK_FINITE(v));
  v.push_back(std::numeric_limits<double>::infinity());
  EXPECT_THROW(RT_DCHECK_FINITE(v), AssertionError);

  std::vector<std::complex<double>> cv = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NO_THROW(RT_DCHECK_FINITE(cv));
  cv.emplace_back(std::nan(""), 0.0);
  EXPECT_THROW(RT_DCHECK_FINITE(cv), AssertionError);
#else
  GTEST_SKIP() << "debug contracts compiled out (RT_ENABLE_ASSERTS=0)";
#endif
}

// ---------------------------------------------------------- rt::narrow --

TEST(NarrowEdges, SignedUnsignedBoundaries) {
  // Exact boundary values survive.
  EXPECT_EQ(narrow<std::int8_t>(127), 127);
  EXPECT_EQ(narrow<std::int8_t>(-128), -128);
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(narrow<std::uint16_t>(65535), 65535);
  // One past the boundary throws.
  EXPECT_THROW(static_cast<void>(narrow<std::int8_t>(128)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<std::int8_t>(-129)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<std::uint8_t>(256)), RuntimeError);
}

TEST(NarrowEdges, SignChangesAreCaught) {
  // -1 -> unsigned round-trips bit-wise but flips sign; must throw.
  EXPECT_THROW(static_cast<void>(narrow<std::uint32_t>(-1)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<std::uint64_t>(std::int64_t{-1})), RuntimeError);
  // Large unsigned -> signed likewise.
  EXPECT_THROW(static_cast<void>(narrow<std::int32_t>(0x80000000U)), RuntimeError);
  EXPECT_EQ(narrow<std::int32_t>(0x7FFFFFFFU), 0x7FFFFFFF);
}

TEST(NarrowEdges, FloatingRoundTrip) {
  EXPECT_EQ(narrow<int>(-7.0), -7);
  EXPECT_THROW(static_cast<void>(narrow<int>(0.5)), RuntimeError);
  EXPECT_THROW(static_cast<void>(narrow<int>(-0.25)), RuntimeError);
  // Doubles that cannot represent the integer exactly fail the round trip.
  EXPECT_THROW(static_cast<void>(narrow<float>((1 << 24) + 1)), RuntimeError);
  EXPECT_EQ(narrow<float>(1 << 24), static_cast<float>(1 << 24));
}

TEST(NarrowEdges, NarrowCastIsCheckedOnlyInDebug) {
  EXPECT_EQ(narrow_cast<std::uint8_t>(200), 200);
  EXPECT_EQ(narrow_cast<int>(std::size_t{12}), 12);
#if RT_ENABLE_ASSERTS
  EXPECT_THROW(static_cast<void>(narrow_cast<std::uint8_t>(300)), AssertionError);
  EXPECT_THROW(static_cast<void>(narrow_cast<std::uint8_t>(-1)), AssertionError);
#else
  EXPECT_EQ(narrow_cast<std::uint8_t>(300), static_cast<std::uint8_t>(300));
#endif
}

TEST(NarrowEdges, SaturateCastClamps) {
  EXPECT_EQ(saturate_cast<std::uint8_t>(300), 255);
  EXPECT_EQ(saturate_cast<std::uint8_t>(-5), 0);
  EXPECT_EQ(saturate_cast<std::int8_t>(1000), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(-1000), -128);
  EXPECT_EQ(saturate_cast<std::int16_t>(123), 123);
  EXPECT_EQ(saturate_cast<std::int32_t>(std::uint64_t{1} << 40),
            std::numeric_limits<std::int32_t>::max());
  // Floating input: clipping quantizer semantics, NaN -> minimum.
  EXPECT_EQ(saturate_cast<std::int16_t>(1e9), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(-1e9), -32768);
  EXPECT_EQ(saturate_cast<std::int16_t>(std::nan("")), -32768);
  EXPECT_EQ(saturate_cast<std::uint8_t>(127.9), 127);
}

// ------------------------------------- finite-output property sweep -----

struct SweepConfig {
  double snr_db;
  int bits_per_axis;  ///< pixel count per module = bits_per_axis weight pixels
  int dsm_order;
  std::uint64_t seed;
};

class FiniteOutputProperty : public ::testing::TestWithParam<SweepConfig> {};

// The DFE/demodulator must produce finite metrics and well-formed bits for
// ANY channel quality — including SNRs far below the decodable threshold,
// where a NaN that slips into the pulse bank or branch metrics would
// otherwise masquerade as "random BER". Under the asan preset this also
// routes every sample through RT_DCHECK_FINITE.
TEST_P(FiniteOutputProperty, DemodulatorStaysFiniteAtAnySnr) {
  const auto cfg = GetParam();
  phy::PhyParams p;
  p.dsm_order = cfg.dsm_order;
  p.bits_per_axis = cfg.bits_per_axis;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 16;
  p.equalizer_branches = 4;

  sim::ChannelConfig chc;
  chc.snr_override_db = cfg.snr_db;
  chc.noise_seed = cfg.seed;

  sim::SimOptions opts;
  opts.seed = cfg.seed;
  opts.offline_rank = 2;
  opts.offline_yaws_deg = {0.0};

  sim::LinkSimulator link(p, p.tag_config(), chc, opts);
  const auto stats = link.run(/*packets=*/2, /*payload_bytes=*/2);

  EXPECT_EQ(stats.packets, 2);
  EXPECT_EQ(stats.total_bits, 2u * 2u * 8u);
  EXPECT_LE(stats.bit_errors, stats.total_bits);
  EXPECT_TRUE(std::isfinite(stats.ber())) << "BER NaN at " << cfg.snr_db << " dB";
}

std::vector<SweepConfig> randomized_sweep() {
  // Deterministic "randomized" grid: seeded draws over SNR in [-10, 40] dB
  // and pixel counts {1, 2}, reproducible across runs and platforms.
  Rng rng(20260805);
  std::vector<SweepConfig> out;
  for (int i = 0; i < 6; ++i) {
    SweepConfig c;
    c.snr_db = rng.uniform(-10.0, 40.0);
    c.bits_per_axis = 1 + static_cast<int>(rng.uniform_int(0, 1));
    c.dsm_order = (i % 2 == 0) ? 2 : 4;
    c.seed = 1000 + static_cast<std::uint64_t>(i);
    out.push_back(c);
  }
  // Pin the pathological corners the random draw may miss.
  out.push_back({-10.0, 2, 4, 7});  // deep noise, dense constellation
  out.push_back({40.0, 1, 2, 8});   // clean channel sanity point
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomizedSnrPixelSweep, FiniteOutputProperty,
                         ::testing::ValuesIn(randomized_sweep()));

}  // namespace
}  // namespace rt
