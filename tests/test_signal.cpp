// Unit + property tests for the DSP substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "signal/awgn.h"
#include "signal/correlate.h"
#include "signal/fir.h"
#include "signal/gray.h"
#include "signal/mls.h"
#include "signal/scrambler.h"
#include "signal/waveform.h"

namespace rt::sig {
namespace {

Waveform make_tone(double fs, double f, std::size_t n, double amp = 1.0) {
  Waveform w(fs, n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = amp * std::sin(2.0 * kPi * f * static_cast<double>(i) / fs);
  return w;
}

TEST(Waveform, DurationAndIndexing) {
  Waveform w(1000.0, 500);
  EXPECT_DOUBLE_EQ(w.duration_s(), 0.5);
  EXPECT_EQ(w.index_at(0.1), 100u);
}

TEST(Waveform, MeanPowerOfTone) {
  const auto w = make_tone(10000.0, 100.0, 10000, 2.0);
  EXPECT_NEAR(w.mean_power(), 2.0, 0.01);  // A^2/2
}

TEST(Waveform, AccumulateWithOffset) {
  Waveform a(100.0, 10);
  Waveform b(100.0, 3);
  b.samples = {1.0, 2.0, 3.0};
  accumulate(a, b, 8);  // only two samples fit
  EXPECT_DOUBLE_EQ(a[8], 1.0);
  EXPECT_DOUBLE_EQ(a[9], 2.0);
}

TEST(Waveform, RmsError) {
  Waveform a(1.0, std::vector<double>{1.0, 1.0});
  Waveform b(1.0, std::vector<double>{1.0, 0.0});
  EXPECT_NEAR(rms_error(a, b), std::sqrt(0.5), 1e-12);
}

TEST(Fir, LowPassPassesDcBlocksHighTone) {
  const double fs = 48000.0;
  auto lp = FirFilter::low_pass(fs, 2000.0, 101);
  // DC gain ~= 1.
  Waveform dc(fs, 2000);
  for (auto& s : dc.samples) s = 1.0;
  const auto dc_out = lp.apply(dc);
  EXPECT_NEAR(dc_out[1000], 1.0, 1e-3);
  // 10 kHz tone strongly attenuated.
  const auto tone = make_tone(fs, 10000.0, 4000);
  const auto out = lp.apply(tone);
  double peak = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_LT(peak, 0.01);
}

TEST(Fir, BandPassSelectsCarrier) {
  const double fs = 1.82e6;  // 4x the 455 kHz carrier
  auto bp = FirFilter::band_pass(fs, 400e3, 510e3, 129);
  const auto in_band = make_tone(fs, 455e3, 8000);
  const auto dc_blocked = [&] {
    Waveform dc(fs, 8000);
    for (auto& s : dc.samples) s = 1.0;
    return bp.apply(dc);
  }();
  const auto carrier_out = bp.apply(in_band);
  double carrier_peak = 0.0;
  double dc_peak = 0.0;
  for (std::size_t i = 2000; i < 6000; ++i) {
    carrier_peak = std::max(carrier_peak, std::abs(carrier_out[i]));
    dc_peak = std::max(dc_peak, std::abs(dc_blocked[i]));
  }
  EXPECT_GT(carrier_peak, 0.9);  // centre-band gain normalized to ~1
  EXPECT_LT(dc_peak, 0.01);      // ambient (DC) light rejected
}

TEST(Fir, GroupDelayCompensated) {
  // A step should stay time-aligned after filtering.
  const double fs = 10000.0;
  auto lp = FirFilter::low_pass(fs, 1000.0, 51);
  Waveform step(fs, 400);
  for (std::size_t i = 200; i < 400; ++i) step[i] = 1.0;
  const auto out = lp.apply(step);
  // The 50% crossing should be within a few samples of 200.
  std::size_t crossing = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] > 0.5) {
      crossing = i;
      break;
    }
  EXPECT_NEAR(static_cast<double>(crossing), 200.0, 3.0);
}

TEST(Fir, DesignValidation) {
  EXPECT_THROW((void)FirFilter::low_pass(1000.0, 600.0, 11), PreconditionError);  // above Nyquist
  EXPECT_THROW((void)FirFilter::low_pass(1000.0, 100.0, 10), PreconditionError);  // even taps
  EXPECT_THROW((void)FirFilter::band_pass(1000.0, 300.0, 200.0, 11), PreconditionError);
}

TEST(Fir, DecimateKeepsEveryNth) {
  Waveform w(1000.0, 10);
  for (std::size_t i = 0; i < 10; ++i) w[i] = static_cast<double>(i);
  const auto d = decimate(w, 3);
  EXPECT_DOUBLE_EQ(d.sample_rate_hz, 1000.0 / 3.0);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[2], 6.0);
}

TEST(Awgn, AchievesRequestedSnr) {
  Rng rng(41);
  auto w = make_tone(40000.0, 250.0, 200000);
  const double p_sig = w.mean_power();
  auto noisy = w;
  add_awgn(noisy, 10.0, rng);
  double p_noise = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double d = noisy[i] - w[i];
    p_noise += d * d;
  }
  p_noise /= static_cast<double>(w.size());
  EXPECT_NEAR(to_db(p_sig / p_noise), 10.0, 0.2);
}

TEST(Awgn, ComplexNoiseSplitsAcrossAxes) {
  Rng rng(43);
  IqWaveform w(1000.0, 100000);
  for (auto& s : w.samples) s = Complex(1.0, 0.0);
  auto noisy = w;
  add_awgn(noisy, 20.0, rng);
  double pi = 0.0;
  double pq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Complex d = noisy[i] - w[i];
    pi += d.real() * d.real();
    pq += d.imag() * d.imag();
  }
  EXPECT_NEAR(pi / pq, 1.0, 0.1);
  EXPECT_NEAR(to_db(w.mean_power() / ((pi + pq) / static_cast<double>(w.size()))), 20.0, 0.3);
}

class MlsOrderTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MlsOrderTest, HasMaximalLengthProperties) {
  const unsigned order = GetParam();
  const auto seq = mls(order);
  EXPECT_EQ(seq.size(), (std::size_t{1} << order) - 1);
  EXPECT_TRUE(is_maximal_length(seq, order)) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(AllSupportedOrders, MlsOrderTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u, 13u, 14u,
                                           15u, 16u, 17u, 18u, 19u, 20u));

TEST(Mls, RejectsUnsupportedOrder) {
  EXPECT_THROW((void)mls(1), PreconditionError);
  EXPECT_THROW((void)mls(25), PreconditionError);
}

TEST(Scrambler, RoundTripIdentity) {
  Rng rng(47);
  const auto bits = rng.bits(1024);
  Scrambler sc(0x55);
  EXPECT_EQ(sc.apply(sc.apply(bits)), bits);
}

TEST(Scrambler, WhitensConstantInput) {
  const std::vector<std::uint8_t> zeros(4096, 0);
  Scrambler sc;
  const auto out = sc.apply(zeros);
  std::size_t ones = 0;
  for (const auto b : out) ones += b;
  // Keystream of a 7-bit LFSR over 4096 bits is near balanced.
  EXPECT_NEAR(static_cast<double>(ones) / 4096.0, 0.5, 0.05);
}

TEST(Gray, RoundTripAndAdjacency) {
  for (std::uint32_t v = 0; v < 256; ++v) EXPECT_EQ(gray_decode(gray_encode(v)), v);
  for (std::uint32_t v = 0; v + 1 < 256; ++v) {
    const std::uint32_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(__builtin_popcount(diff), 1) << v;  // adjacent codes differ in 1 bit
  }
}

TEST(Correlate, FindsEmbeddedReference) {
  Rng rng(53);
  std::vector<Complex> ref(32);
  for (auto& r : ref) r = Complex(rng.gaussian(), rng.gaussian());
  std::vector<Complex> x(256);
  for (auto& v : x) v = Complex(rng.gaussian(0.0, 0.1), rng.gaussian(0.0, 0.1));
  const std::size_t t0 = 100;
  for (std::size_t i = 0; i < ref.size(); ++i) x[t0 + i] += ref[i];
  const auto corr = sliding_correlation(x, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < corr.size(); ++i)
    if (corr[i] > corr[best]) best = i;
  EXPECT_EQ(best, t0);
}

TEST(Correlate, CenteredVariantFlatOnConstantSignal) {
  // A constant (DC-only) signal has zero centred energy everywhere: the
  // centred correlation must return 0, not NaN or spurious peaks.
  std::vector<Complex> ref(8, Complex(1.0, 0.0));
  std::vector<Complex> x(64, Complex(5.0, -2.0));
  const auto corr = sliding_correlation_centered(x, ref);
  for (const auto c : corr) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Correlate, CenteredMatchesPlainOnZeroMeanData) {
  Rng rng(61);
  std::vector<Complex> ref(32);
  Complex mean{};
  for (auto& r : ref) {
    r = Complex(rng.gaussian(), rng.gaussian());
    mean += r;
  }
  mean /= 32.0;
  for (auto& r : ref) r -= mean;  // zero-mean reference
  std::vector<Complex> x(200);
  for (auto& v : x) v = Complex(rng.gaussian(0.0, 0.1), rng.gaussian(0.0, 0.1));
  for (std::size_t i = 0; i < ref.size(); ++i) x[90 + i] += ref[i];
  const auto plain = sliding_correlation(x, ref);
  const auto centred = sliding_correlation_centered(x, ref);
  // Peaks coincide.
  const auto argmax = [](const std::vector<double>& v) {
    return std::distance(v.begin(), std::max_element(v.begin(), v.end()));
  };
  EXPECT_EQ(argmax(plain), argmax(centred));
  EXPECT_EQ(argmax(plain), 90);
}

TEST(Correlate, RotationInvariantMagnitude) {
  Rng rng(59);
  std::vector<Complex> ref(16);
  for (auto& r : ref) r = Complex(rng.gaussian(), rng.gaussian());
  std::vector<Complex> rotated(ref.size());
  const Complex rot = std::polar(1.0, 1.1);
  for (std::size_t i = 0; i < ref.size(); ++i) rotated[i] = ref[i] * rot;
  const auto corr = sliding_correlation(rotated, ref);
  ASSERT_EQ(corr.size(), 1u);
  EXPECT_NEAR(corr[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace rt::sig
