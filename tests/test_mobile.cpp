// Tests for the mobility extension: segmented packets, mid-packet
// resynchronization and the time-varying channel.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "phy/mobile.h"
#include "sim/channel.h"
#include "sim/link_sim.h"

namespace rt::phy {
namespace {

PhyParams fast_params() {
  PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

MobileConfig fast_mobile(const PhyParams& p) {
  MobileConfig m;
  m.block_symbols = 4 * p.dsm_order;
  m.sync_slots = 12;
  return m;
}

struct Scenario {
  PhyParams p = fast_params();
  MobileConfig m = fast_mobile(p);
  sim::ChannelConfig ch;

  [[nodiscard]] double run_ber(std::uint64_t seed = 1) const {
    const MobileModulator mod(p, m);
    Rng rng(seed);
    const auto bits = rng.bits(static_cast<std::size_t>(3 * m.block_symbols) *
                               static_cast<std::size_t>(p.bits_per_slot()));
    const auto pkt = mod.modulate(bits);
    sim::Channel channel(p, p.tag_config(), ch);
    auto src = channel.source();
    const auto rx = src(pkt.firings, pkt.duration_s + p.symbol_duration_s());
    const MobileDemodulator demod(p, m, sim::train_offline_model(p, p.tag_config()));
    DemodOptions opts;
    opts.search_limit = 2 * p.samples_per_slot();
    const auto res = demod.demodulate(rx, pkt, opts);
    if (!res.preamble_found) return 1.0;
    std::size_t errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) errors += res.bits[i] != bits[i];
    return static_cast<double>(errors) / static_cast<double>(bits.size());
  }
};

TEST(Mobile, PacketStructureHasSyncFieldsBetweenBlocks) {
  const auto p = fast_params();
  const auto m = fast_mobile(p);
  const MobileModulator mod(p, m);
  Rng rng(5);
  const auto pkt =
      mod.modulate(rng.bits(static_cast<std::size_t>(3 * m.block_symbols * p.bits_per_slot())));
  ASSERT_EQ(pkt.blocks.size(), 3u);
  EXPECT_EQ(pkt.blocks[0].sync_begin_slot, 0);  // first block follows the header directly
  for (std::size_t b = 1; b < pkt.blocks.size(); ++b) {
    EXPECT_GT(pkt.blocks[b].sync_begin_slot, pkt.blocks[b - 1].payload_begin_slot);
    EXPECT_GT(pkt.blocks[b].payload_begin_slot,
              pkt.blocks[b].sync_begin_slot + m.sync_slots);  // trailing guard present
  }
  EXPECT_EQ(pkt.payload_symbols.size(), static_cast<std::size_t>(3 * m.block_symbols));
}

TEST(Mobile, StaticChannelRoundTripIsExact) {
  Scenario s;
  s.ch.snr_override_db = 35.0;
  EXPECT_EQ(s.run_ber(), 0.0);
}

TEST(Mobile, ResynchronizationTracksFastRotation) {
  // Tag spinning at 150 deg/s: over the packet the constellation
  // rotates by tens of degrees (twice that in the constellation plane) -- fatal for a
  // single preamble-time correction, benign with per-block resync.
  Scenario s;
  s.ch.snr_override_db = 35.0;
  s.ch.dynamics.roll_rate_deg_s = 150.0;
  const double ber = s.run_ber();
  EXPECT_LT(ber, 0.01) << "mid-packet resync should track the drift";

  // Ablation: the standard (single-correction) demodulator on the same
  // waveform -- emulated by a mobile config with one huge block.
  Scenario mono = s;
  mono.m.block_symbols = 3 * s.m.block_symbols;
  const double ber_mono = mono.run_ber();
  EXPECT_GT(ber_mono, 5.0 * std::max(ber, 0.001))
      << "without resync the drifting rotation must hurt";
}

TEST(Mobile, ResynchronizationTracksGainDrift) {
  Scenario s;
  s.ch.snr_override_db = 35.0;
  s.ch.dynamics.gain_drift_per_s = -0.8;  // receding tag: -40% amplitude over 0.5 s
  EXPECT_LT(s.run_ber(), 0.01);
}

TEST(Mobile, ReportsPerBlockRotationEstimates) {
  Scenario s;
  s.ch.snr_override_db = 40.0;
  s.ch.dynamics.roll_rate_deg_s = 45.0;
  const MobileModulator mod(s.p, s.m);
  Rng rng(7);
  const auto bits = rng.bits(static_cast<std::size_t>(3 * s.m.block_symbols) *
                             static_cast<std::size_t>(s.p.bits_per_slot()));
  const auto pkt = mod.modulate(bits);
  sim::Channel channel(s.p, s.p.tag_config(), s.ch);
  auto src = channel.source();
  const auto rx = src(pkt.firings, pkt.duration_s + s.p.symbol_duration_s());
  const MobileDemodulator demod(s.p, s.m, sim::train_offline_model(s.p, s.p.tag_config()));
  const auto res = demod.demodulate(rx, pkt);
  ASSERT_TRUE(res.preamble_found);
  ASSERT_EQ(res.block_rotation_deg.size(), 3u);
  EXPECT_EQ(res.blocks_resynced, 2);
  // Later blocks see a larger accumulated rotation.
  EXPECT_GT(res.block_rotation_deg[2], res.block_rotation_deg[1]);
  EXPECT_GT(res.block_rotation_deg[1], res.block_rotation_deg[0]);
}

TEST(Mobile, ConfigValidation) {
  const auto p = fast_params();
  MobileConfig bad;
  bad.block_symbols = 3;  // not a whole firing group
  EXPECT_THROW(MobileModulator(p, bad), PreconditionError);
  MobileConfig bad2 = fast_mobile(p);
  bad2.sync_slots = 4;
  EXPECT_THROW(MobileModulator(p, bad2), PreconditionError);
  auto basic = p;
  basic.basic_rest_slots = 4;
  EXPECT_THROW(MobileModulator(basic, fast_mobile(p)), PreconditionError);
}

}  // namespace
}  // namespace rt::phy
