// Tests for the analog frontend: carrier, photodiode and the passband
// receiver chain, including the passband <-> baseband equivalence that
// justifies the sim layer's fast path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "frontend/carrier.h"
#include "frontend/photodiode.h"
#include "frontend/receiver_chain.h"

namespace rt::frontend {
namespace {

TEST(Carrier, SquareWaveDutyCycle) {
  const Carrier c{rt::khz(455.0), 0.5};
  int on = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (c.frequency_hz * 100.0);
    on += c.value(t) > 0.5 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(on) / n, 0.5, 0.02);
}

TEST(Carrier, FundamentalAmplitude) {
  const Carrier half{1000.0, 0.5};
  EXPECT_NEAR(half.fundamental_amplitude(), 2.0 / rt::kPi, 1e-12);
  const Carrier quarter{1000.0, 0.25};
  EXPECT_NEAR(quarter.fundamental_amplitude(), 2.0 / rt::kPi * std::sin(rt::kPi * 0.25), 1e-12);
}

TEST(Photodiode, LinearRegionResponsivity) {
  PhotodiodeParams p;
  p.responsivity = 2.0;
  Photodiode pd(p);
  Rng rng(1);
  sig::Waveform in(1000.0, std::vector<double>{0.0, 0.5, 1.0});
  const auto out = pd.detect(in, rng);
  EXPECT_NEAR(out[1], 1.0, 1e-9);
  EXPECT_NEAR(out[2], 2.0, 1e-9);
}

TEST(Photodiode, SaturationCompresses) {
  PhotodiodeParams p;
  p.saturation_level = 1.0;
  Photodiode pd(p);
  Rng rng(1);
  sig::Waveform in(1000.0, std::vector<double>{0.1, 5.0});
  const auto out = pd.detect(in, rng);
  EXPECT_NEAR(out[0], 0.1, 0.001);           // linear region
  EXPECT_LT(out[1], 1.01);                   // clipped near the rail
  EXPECT_GT(out[1], 0.99);
}

TEST(Photodiode, ShotNoiseScalesWithSqrtIntensity) {
  PhotodiodeParams p;
  p.shot_noise_coeff = 0.1;
  Photodiode pd(p);
  Rng rng(5);
  const std::size_t n = 20000;
  sig::Waveform dim(1000.0, std::vector<double>(n, 1.0));
  sig::Waveform bright(1000.0, std::vector<double>(n, 100.0));
  const auto out_dim = pd.detect(dim, rng);
  const auto out_bright = pd.detect(bright, rng);
  double var_dim = 0.0;
  double var_bright = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    var_dim += (out_dim[i] - 1.0) * (out_dim[i] - 1.0);
    var_bright += (out_bright[i] - 100.0) * (out_bright[i] - 100.0);
  }
  EXPECT_NEAR(var_bright / var_dim, 100.0, 15.0);
}

class ReceiverChainTest : public ::testing::Test {
 protected:
  ReceiverChainConfig make_config() {
    ReceiverChainConfig cfg;
    cfg.passband_fs_hz = 4.0e6;
    cfg.baseband_fs_hz = 40.0e3;
    return cfg;
  }

  /// A slow two-tone complex baseband signal comfortably inside the
  /// receiver bandwidth.
  sig::IqWaveform make_baseband(double fs, std::size_t n) {
    sig::IqWaveform w(fs, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / fs;
      w[i] = {0.8 * std::sin(2.0 * rt::kPi * 400.0 * t),
              0.5 * std::cos(2.0 * rt::kPi * 700.0 * t)};
    }
    return w;
  }
};

TEST_F(ReceiverChainTest, PassbandRecoversBaseband) {
  const auto cfg = make_config();
  ReceiverChain chain(cfg);
  const auto baseband = make_baseband(cfg.baseband_fs_hz, 800);  // 20 ms
  const auto inputs = chain.illuminate(baseband, 10.0, 0.0);
  Rng rng(7);
  const auto recovered = chain.process(inputs, rng);
  ASSERT_EQ(recovered.size(), baseband.size());
  // Compare away from the filter edges.
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 100; i + 100 < baseband.size(); ++i) {
    err += std::norm(recovered[i] - baseband[i]);
    ref += std::norm(baseband[i]);
  }
  EXPECT_LT(std::sqrt(err / ref), 0.05) << "passband chain deviates from baseband fast path";
}

TEST_F(ReceiverChainTest, AmbientLightRejected) {
  const auto cfg = make_config();
  ReceiverChain chain(cfg);
  sig::IqWaveform silent(cfg.baseband_fs_hz, 800);  // tag idle: no modulation
  // Huge unchopped ambient level.
  const auto inputs = chain.illuminate(silent, 10.0, 500.0);
  Rng rng(9);
  const auto out = chain.process(inputs, rng);
  double peak = 0.0;
  for (std::size_t i = 100; i + 100 < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_LT(peak, 0.5) << "DC ambient must be filtered by the band-pass";
}

TEST_F(ReceiverChainTest, AmbientShotNoiseRaisesFloorOnlyMildly) {
  // Fig. 16d mechanism: ambient adds shot noise (through the photodiode)
  // but no in-band signal. With shot noise enabled, output noise grows
  // with lux but stays orders below the signal.
  auto cfg = make_config();
  cfg.photodiode.shot_noise_coeff = 1e-3;
  ReceiverChain chain(cfg);
  sig::IqWaveform silent(cfg.baseband_fs_hz, 400);
  Rng rng_a(11);
  Rng rng_b(11);
  const auto dark = chain.process(chain.illuminate(silent, 10.0, 20.0 * 1e-3), rng_a);
  const auto day = chain.process(chain.illuminate(silent, 10.0, 1000.0 * 1e-3), rng_b);
  const double p_dark = dark.mean_power();
  const double p_day = day.mean_power();
  EXPECT_GT(p_day, p_dark);
  EXPECT_LT(p_day, 100.0 * p_dark);
}

TEST_F(ReceiverChainTest, ConfigValidation) {
  auto cfg = make_config();
  cfg.baseband_fs_hz = 37.0e3;  // does not divide 4 MHz
  EXPECT_THROW(ReceiverChain{cfg}, PreconditionError);
  auto cfg2 = make_config();
  cfg2.passband_fs_hz = 500.0e3;  // below carrier Nyquist
  EXPECT_THROW(ReceiverChain{cfg2}, PreconditionError);
}

}  // namespace
}  // namespace rt::frontend
