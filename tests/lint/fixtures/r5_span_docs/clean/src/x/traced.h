// CLEAN exemplar for rt_lint R5 (span-docs): the span name appears in
// docs/TELEMETRY.md.
#pragma once

namespace rt::fixture {

inline void traced() { RT_TRACE_SPAN("fixture_span"); }

}  // namespace rt::fixture
