// BAD exemplar for rt_check C2 (hot-path allocation): a *_into stage
// entry point that declares a fresh owning container and grows vectors
// without reserving.
#pragma once

#include <vector>

namespace rt::phy {

inline void accumulate_into(const std::vector<int>& in, std::vector<int>& out) {
  std::vector<int> scratch;
  for (int v : in) scratch.push_back(v);
  for (int v : scratch) out.push_back(v);
}

}  // namespace rt::phy
