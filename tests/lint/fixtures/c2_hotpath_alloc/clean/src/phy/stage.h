// CLEAN exemplar for rt_check C2 (hot-path allocation): scratch lives in
// a caller-owned workspace and every growing container reserves in the
// same body.
#pragma once

#include <vector>

namespace rt::phy {

struct StageWorkspace {
  std::vector<int> scratch;
};

inline void accumulate_into(const std::vector<int>& in, StageWorkspace& ws,
                            std::vector<int>& out) {
  ws.scratch.clear();
  ws.scratch.reserve(in.size());
  for (int v : in) ws.scratch.push_back(v);
  out.reserve(out.size() + ws.scratch.size());
  for (int v : ws.scratch) out.push_back(v);
}

}  // namespace rt::phy
