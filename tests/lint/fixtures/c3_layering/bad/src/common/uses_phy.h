// BAD exemplar for rt_check C3 (layering): common is the bottom layer
// and must not include phy.
#pragma once

#include "phy/api.h"

namespace rt::common {

inline int answer() { return 42; }

}  // namespace rt::common
