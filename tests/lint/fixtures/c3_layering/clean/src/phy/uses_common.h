// CLEAN exemplar for rt_check C3 (layering): phy depending on common is
// an allowed edge in the spec.
#pragma once

#include "common/api.h"

namespace rt::phy {

inline int answer() { return 42; }

}  // namespace rt::phy
