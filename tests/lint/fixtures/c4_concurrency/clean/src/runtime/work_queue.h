// CLEAN exemplar for rt_check C4 (concurrency): runtime/ is the exempt
// module -- thread coordination primitives live here by design, no
// annotation needed.
#pragma once

#include <condition_variable>
#include <mutex>

namespace rt::runtime {

struct WorkQueue {
  std::mutex guard;
  std::condition_variable ready;
  int pending = 0;

  void post() {
    const std::lock_guard<std::mutex> lock(guard);
    ++pending;
    ready.notify_one();
  }
};

}  // namespace rt::runtime
