// CLEAN exemplar for rt_check C4 (concurrency): stage code stays
// single-threaded pure; the one process-wide atomic carries a justified
// suppression annotation (same contract as channel.cpp's id counter).
#pragma once

#include <atomic>
#include <cstdint>

namespace rt::phy {

inline std::uint64_t next_frame_id() {
  // rt-check: sync-ok (process-wide id counter; frames are built from any thread)
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rt::phy
