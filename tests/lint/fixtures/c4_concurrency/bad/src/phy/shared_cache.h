// BAD exemplar for rt_check C4 (concurrency): a stage header reaches for
// a lock and an atomic, coupling the pure pipeline to shared mutable
// state behind parallel_sweep's back.
#pragma once

#include <atomic>
#include <mutex>

namespace rt::phy {

struct SharedCache {
  std::mutex guard;
  std::atomic<int> hits{0};

  int bump() {
    const std::lock_guard<std::mutex> lock(guard);
    return hits.fetch_add(1) + 1;
  }
};

}  // namespace rt::phy
