// CLEAN exemplar for rt_check C2 (hot-path allocation) with the
// streaming root: `StreamingReceiver::push_samples` reuses member
// scratch whose capacity is reserved in the same body before growth, so
// the steady state performs no heap allocations.
#pragma once

#include <vector>

namespace rt::stream {

class StreamingReceiver {
 public:
  void push_samples(const std::vector<float>& chunk);

 private:
  std::vector<float> scratch_;
  std::vector<float> window_;
};

inline void StreamingReceiver::push_samples(const std::vector<float>& chunk) {
  scratch_.clear();
  scratch_.reserve(chunk.size());
  for (float v : chunk) scratch_.push_back(v);
  window_.reserve(window_.size() + scratch_.size());
  for (float v : scratch_) window_.push_back(v);
}

}  // namespace rt::stream
