// BAD exemplar for rt_check C2 (hot-path allocation) with the streaming
// root: `StreamingReceiver::push_samples` is a call-graph root just like
// run_packet / *_into, so a fresh owning container per push and an
// unreserved push_back inside it (or anything it reaches) must be flagged.
#pragma once

#include <vector>

namespace rt::stream {

class StreamingReceiver {
 public:
  void push_samples(const std::vector<float>& chunk);

 private:
  std::vector<float> window_;
};

inline void StreamingReceiver::push_samples(const std::vector<float>& chunk) {
  std::vector<float> scratch;
  for (float v : chunk) scratch.push_back(v);
  for (float v : scratch) window_.push_back(v);
}

}  // namespace rt::stream
