// CLEAN exemplar for rt_check C1 (determinism): seeds derive from pure
// (seed, index) mixing, and the one wall-clock use is telemetry-only and
// carries a justified suppression annotation.
#pragma once

#include <chrono>

namespace rt::phy {

// rt-check: determinism-ok (queue-wait telemetry only; never feeds results)
using TelemetryClock = std::chrono::steady_clock;

inline unsigned long derive_stream(unsigned long seed, unsigned long index) {
  // splitmix-style pure mix; same shape as rt::split_seed.
  unsigned long z = seed + 0x9e3779b97f4a7c15UL * (index + 1UL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9UL;
  return z ^ (z >> 31);
}

}  // namespace rt::phy
