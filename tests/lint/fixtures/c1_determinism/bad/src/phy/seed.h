// BAD exemplar for rt_check C1 (determinism): std::rand is global-state
// nondeterminism in result-affecting code.
#pragma once

#include <cstdlib>

namespace rt::phy {

inline int noisy_seed() { return std::rand(); }

}  // namespace rt::phy
