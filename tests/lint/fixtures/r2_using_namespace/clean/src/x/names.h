// CLEAN exemplar for rt_lint R2 (using-namespace): function-local using
// directives are allowed.
#pragma once

namespace rt::fixture {

inline int answer() {
  using namespace std;
  return 42;
}

}  // namespace rt::fixture
