// BAD exemplar for rt_lint R2 (using-namespace): namespace-scope using
// directive in a header pollutes every includer.
#pragma once

using namespace std;

namespace rt::fixture {

inline int answer() { return 42; }

}  // namespace rt::fixture
