// CLEAN exemplar for rt_lint R4 (ensure-coverage): the public entry
// point validates its inputs.

namespace rt::fixture {

int checked_identity(int v) {
  RT_ENSURE(v >= 0, "value must be non-negative");
  return v;
}

}  // namespace rt::fixture
