// BAD exemplar for rt_lint R4 (ensure-coverage): a translation unit that
// neither validates preconditions nor carries the waiver annotation.

namespace rt::fixture {

int identity(int v) { return v; }

}  // namespace rt::fixture
