// CLEAN exemplar for rt_lint R3 (narrow-cast): a provably-safe site
// carries the annotation with its justification.
#pragma once

namespace rt::fixture {

// rt-lint: narrowing-ok (v is a validated enum ordinal below 2^31)
inline int truncate(long v) { return static_cast<int>(v); }

}  // namespace rt::fixture
