// BAD exemplar for rt_lint R3 (narrow-cast): raw static_cast to a
// sub-64-bit integer type.
#pragma once

namespace rt::fixture {

inline int truncate(long v) { return static_cast<int>(v); }

}  // namespace rt::fixture
