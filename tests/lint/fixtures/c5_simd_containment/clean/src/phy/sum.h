// CLEAN exemplar for rt_check C5 (simd-containment): stage code keeps
// its loops scalar (or calls kernels::) and leaves vectorization to the
// kernel backends; no intrinsics, no `#pragma omp simd`.
#pragma once

#include <cstddef>

namespace rt::phy {

inline double sum(std::size_t n, const double* x) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += x[i];
  return total;
}

}  // namespace rt::phy
