// CLEAN exemplar for rt_check C5 (simd-containment): the dispatch header
// is the one file where vendor intrinsics may appear -- every other
// module reaches SIMD through the kernels:: API.
#pragma once

#include <immintrin.h>

#include <cstddef>

namespace rt::kernels::detail {

inline double hsum4(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace rt::kernels::detail
