// BAD exemplar for rt_check C5 (simd-containment): raw AVX2 intrinsics
// in stage code bypass the kernels:: API, so the scalar backend is no
// longer the bit-exact specification of this loop.
#pragma once

#include <immintrin.h>

#include <cstddef>

namespace rt::phy {

inline double fast_sum(std::size_t n, const double* x) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += x[i];
  return total;
}

}  // namespace rt::phy
