// CLEAN exemplar for rt_lint R1 (pragma-once).
#pragma once

namespace rt::fixture {

inline int answer() { return 42; }

}  // namespace rt::fixture
