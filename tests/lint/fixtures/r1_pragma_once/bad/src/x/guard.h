// BAD exemplar for rt_lint R1 (pragma-once): header without an include
// guard.

namespace rt::fixture {

inline int answer() { return 42; }

}  // namespace rt::fixture
