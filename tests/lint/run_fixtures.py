#!/usr/bin/env python3
"""Golden-fixture tests for the project linters.

Each rule of tools/rt_lint.py (R1-R5) and tools/rt_check (C1-C5) has a
`bad` fixture that must produce exactly that rule's finding (exit 1) and
a `clean` fixture that must pass (exit 0). The clean exemplars double as
documentation of the approved fix or suppression-annotation style.

Registered with ctest as `lint_fixtures`; runs standalone too:
  python3 tests/lint/run_fixtures.py
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"

# All rule tags either linter can emit; a bad fixture must trigger its own
# tag and none of the others.
ALL_TAGS = (
    "pragma-once",
    "using-namespace",
    "narrow-cast",
    "ensure-coverage",
    "span-docs",
    "determinism",
    "hotpath-alloc",
    "layering",
    "layering-docs",
    "concurrency",
    "simd-containment",
)


def rt_lint_cmd(root: Path) -> list[str]:
    return [sys.executable, str(REPO / "tools" / "rt_lint.py"), str(root)]


def rt_check_cmd(root: Path, rule: str, spec: Path | None = None) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "rt_check",
        "--root",
        str(root),
        "--rules",
        rule,
        "--engine",
        "tokens",
        "--no-doc-drift",
    ]
    if spec is not None:
        cmd += ["--spec", str(spec)]
    return cmd


# fixture directory -> (command builder, expected tag)
C3_SPEC = FIXTURES / "c3_layering" / "spec.json"
CASES: dict[str, tuple] = {
    "r1_pragma_once": (rt_lint_cmd, "pragma-once"),
    "r2_using_namespace": (rt_lint_cmd, "using-namespace"),
    "r3_narrow_cast": (rt_lint_cmd, "narrow-cast"),
    "r4_ensure_coverage": (rt_lint_cmd, "ensure-coverage"),
    "r5_span_docs": (rt_lint_cmd, "span-docs"),
    "c1_determinism": (lambda root: rt_check_cmd(root, "C1"), "determinism"),
    "c2_hotpath_alloc": (lambda root: rt_check_cmd(root, "C2"), "hotpath-alloc"),
    "c2_stream_root": (lambda root: rt_check_cmd(root, "C2"), "hotpath-alloc"),
    "c3_layering": (lambda root: rt_check_cmd(root, "C3", C3_SPEC), "layering"),
    "c4_concurrency": (lambda root: rt_check_cmd(root, "C4"), "concurrency"),
    "c5_simd_containment": (
        lambda root: rt_check_cmd(root, "C5"),
        "simd-containment",
    ),
}


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "tools") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def main() -> int:
    failures: list[str] = []
    for fixture, (builder, tag) in sorted(CASES.items()):
        base = FIXTURES / fixture
        if not base.is_dir():
            failures.append(f"{fixture}: fixture directory missing")
            continue

        bad = run(builder(base / "bad"))
        if bad.returncode != 1:
            failures.append(
                f"{fixture}/bad: expected exit 1, got {bad.returncode}\n"
                f"  stdout: {bad.stdout.strip()}\n  stderr: {bad.stderr.strip()}"
            )
        if f"[{tag}]" not in bad.stdout:
            failures.append(
                f"{fixture}/bad: expected a [{tag}] finding, got:\n"
                f"  stdout: {bad.stdout.strip()}"
            )
        for other in ALL_TAGS:
            if other != tag and f"[{other}]" in bad.stdout:
                failures.append(
                    f"{fixture}/bad: unexpected [{other}] finding "
                    "(bad exemplars must trigger exactly their own rule):\n"
                    f"  stdout: {bad.stdout.strip()}"
                )

        clean = run(builder(base / "clean"))
        if clean.returncode != 0:
            failures.append(
                f"{fixture}/clean: expected exit 0, got {clean.returncode}\n"
                f"  stdout: {clean.stdout.strip()}\n  stderr: {clean.stderr.strip()}"
            )

        status = "FAIL" if any(f.startswith(fixture) for f in failures) else "ok"
        print(f"  {fixture:<22} [{tag}] ... {status}")

    if failures:
        print(f"\n{len(failures)} fixture failure(s):", file=sys.stderr)
        for f in failures:
            print(f"- {f}", file=sys.stderr)
        return 1
    print(f"lint_fixtures: all {len(CASES)} rules verified (bad + clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
