// Tests for the MAC layer: frames, ARQ, TDMA + discovery, rate table,
// goodput model, the rate-adaptation network study and the full-stack
// MacLink path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "mac/arq.h"
#include "mac/frame.h"
#include "mac/goodput.h"
#include "mac/mac_link.h"
#include "mac/network.h"
#include "mac/rate_table.h"
#include "mac/tdma.h"

namespace rt::mac {
namespace {

TEST(MacFrameTest, SerializeParseRoundTrip) {
  Rng rng(1);
  MacFrame f;
  f.tag_id = 7;
  f.seq = 42;
  f.payload = rng.bytes(100);
  const auto bytes = serialize(f);
  EXPECT_EQ(bytes.size(), 106u);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(MacFrameTest, CorruptionDetected) {
  Rng rng(2);
  MacFrame f;
  f.payload = rng.bytes(32);
  auto bytes = serialize(f);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_FALSE(parse(bad).has_value()) << "byte " << i;
  }
  // Truncation and length mismatch rejected.
  EXPECT_FALSE(parse(std::span(bytes).first(10)).has_value());
  EXPECT_FALSE(parse(std::vector<std::uint8_t>{1, 2, 3}).has_value());
}

TEST(Arq, RetriesUntilSuccess) {
  int calls = 0;
  const StopAndWaitArq arq(5);
  const auto r = arq.run([&] { return ++calls == 3; });
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 3);
}

TEST(Arq, GivesUpAfterMaxAttempts) {
  const StopAndWaitArq arq(4);
  const auto r = arq.run([] { return false; });
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, 4);
}

TEST(Tdma, RoundRobinOwnership) {
  TdmaScheduler s;
  s.register_tag(10);
  s.register_tag(20);
  s.register_tag(30);
  EXPECT_EQ(s.owner(0), 10);
  EXPECT_EQ(s.owner(4), 20);
  EXPECT_NEAR(s.airtime_share(), 1.0 / 3.0, 1e-12);
  EXPECT_THROW(s.register_tag(10), PreconditionError);
}

TEST(Discovery, FindsAllTags) {
  Rng rng(3);
  std::vector<std::uint8_t> ids;
  for (int i = 0; i < 30; ++i) ids.push_back(static_cast<std::uint8_t>(i));
  const auto r = discover_tags(ids, 16, rng);
  EXPECT_EQ(r.discovered.size(), ids.size());
  EXPECT_GE(r.rounds, 2);  // 30 tags cannot fit 16 singleton slots in one round
}

TEST(Discovery, SingleTagOneRound) {
  Rng rng(4);
  const auto r = discover_tags({5}, 8, rng);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.discovered, std::vector<std::uint8_t>{5});
  EXPECT_EQ(r.discovery_round, std::vector<int>{1});
}

TEST(Discovery, RecordsPerTagRound) {
  Rng rng(9);
  std::vector<std::uint8_t> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(static_cast<std::uint8_t>(i));
  const auto r = discover_tags(ids, 4, rng);  // small frame forces collisions
  ASSERT_EQ(r.discovery_round.size(), r.discovered.size());
  // Rounds are recorded in discovery order, so they are non-decreasing,
  // start at >= 1, and end at the total round count.
  for (std::size_t k = 0; k < r.discovery_round.size(); ++k) {
    EXPECT_GE(r.discovery_round[k], 1);
    EXPECT_LE(r.discovery_round[k], r.rounds);
    if (k > 0) {
      EXPECT_GE(r.discovery_round[k], r.discovery_round[k - 1]);
    }
  }
  EXPECT_EQ(r.discovery_round.back(), r.rounds);
}

TEST(RateTableTest, SelectsByThresholdAndRate) {
  const auto table = RateTable::paper_default();
  // Plenty of SNR: the fastest uncoded rate wins.
  EXPECT_NEAR(table.select(70.0).effective_rate_bps(), 32000.0, 1.0);
  // At exactly a coded variant's threshold the higher coded rate wins:
  // 16k+RS(255,223) (threshold 31.5 dB) beats 8k uncoded.
  const auto& at_coded = table.select(31.5);
  EXPECT_NEAR(at_coded.raw_rate_bps, 16000.0, 1.0);
  EXPECT_LT(at_coded.code_rate(), 1.0);  // a coded (RS) variant
  // Just below it, the heavily-coded 16k variant loses to 8k uncoded on
  // effective rate: an 8k-family option is picked.
  const auto& mid = table.select(29.0);
  EXPECT_NEAR(mid.raw_rate_bps, 8000.0, 1.0);
  // Hopeless SNR: the most robust option.
  const auto& floor = table.select(-30.0);
  EXPECT_NEAR(floor.raw_rate_bps, 1000.0, 1.0);
  EXPECT_GT(table.most_robust().code_rate(), 0.0);
}

TEST(RateTableTest, FallbackSelectsMinimumThresholdOption) {
  const auto table = RateTable::paper_default();
  // Regression: below every threshold the fallback must be the
  // minimum-threshold option -- 1kbps+RS(255,127) at -7 dB -- not the
  // first table entry (uncoded 1kbps, 0 dB).
  const auto& floor = table.select(-30.0);
  EXPECT_EQ(floor.name, "1kbps+RS(255,127)");
  EXPECT_NEAR(floor.threshold_db, -7.0, 1e-12);
  EXPECT_EQ(table.select_index(-30.0), table.most_robust_index());
  EXPECT_EQ(&table.most_robust(), &table.option(table.most_robust_index()));
  // A margin high enough to disqualify everything falls back the same way.
  EXPECT_EQ(table.select_index(0.0, 1000.0), table.most_robust_index());
}

TEST(RateTableTest, MarginRaisesEntryThresholds) {
  const auto table = RateTable::paper_default();
  // 31.5 dB clears 16k+RS(255,223) (threshold 31.5) with no margin, but
  // with a 1.5 dB margin the requirement becomes 33 and selection drops
  // to the 8k family.
  EXPECT_NEAR(table.option(table.select_index(31.5)).raw_rate_bps, 16000.0, 1.0);
  EXPECT_NEAR(table.option(table.select_index(31.5, 1.5)).raw_rate_bps, 8000.0, 1.0);
}

TEST(RateTableTest, CodedVariantsExtendRange) {
  const auto table = RateTable::paper_default();
  // Just below the uncoded 16k threshold the coded 16k variant (threshold
  // -1.5 dB) beats dropping all the way to 8k uncoded.
  const auto& opt = table.select(32.0);
  EXPECT_NEAR(opt.raw_rate_bps, 16000.0, 1.0);
  EXPECT_LT(opt.code_rate(), 1.0);  // a coded (RS) variant
  // The convolutional option has its own niche where the rate ladder gaps
  // 4x: at 17.5 dB the soft-decoded 4k+CC(7,1/2) (threshold 17 dB,
  // effective 2 Kbps) beats every eligible alternative, including 1k
  // uncoded and the deep-RS 4k variant.
  const auto& cc = table.select(17.5);
  EXPECT_EQ(cc.name, "4kbps+CC(7,1/2)");
  EXPECT_NEAR(cc.effective_rate_bps(), 2000.0, 1.0);
}

TEST(Goodput, WaterfallCalibratedAtThreshold) {
  EXPECT_NEAR(waterfall_ber(28.0, 28.0), 0.01, 0.002);
  EXPECT_LT(waterfall_ber(34.0, 28.0), 1e-4);
  EXPECT_GT(waterfall_ber(22.0, 28.0), 0.05);
}

TEST(Goodput, CodingExtendsWorkingRange) {
  const GoodputModel model;
  RateOption raw{"16k", phy::PhyParams::rate_16kbps(), 16000.0, 33.0,
                 rt::coding::CodeDescriptor::none()};
  RateOption coded{"16k+rs", phy::PhyParams::rate_16kbps(), 16000.0, 33.0,
                   rt::coding::CodeDescriptor::reed_solomon(255, 223)};
  // Slightly below threshold: coded link delivers, raw collapses.
  EXPECT_GT(model.goodput_bps(coded, 32.0), model.goodput_bps(raw, 32.0));
  // Far above threshold: raw wins by the code-rate overhead.
  EXPECT_GT(model.goodput_bps(raw, 45.0), model.goodput_bps(coded, 45.0));
  EXPECT_NEAR(model.goodput_bps(coded, 45.0) / model.goodput_bps(raw, 45.0), 223.0 / 255.0,
              0.01);
}

TEST(Goodput, MeasuredCurveOverridesAnalytic) {
  GoodputModel model;
  RateOption opt{"8k", phy::PhyParams::rate_8kbps(), 8000.0, 28.0,
                 rt::coding::CodeDescriptor::none()};
  model.add_measurements("8k", {{20.0, 0.2}, {30.0, 1e-5}});
  EXPECT_NEAR(model.ber(opt, 20.0), 0.2, 1e-9);
  EXPECT_NEAR(model.ber(opt, 30.0), 1e-5, 1e-9);
  // Log-interpolated midpoint.
  const double mid = model.ber(opt, 25.0);
  EXPECT_GT(mid, 1e-5);
  EXPECT_LT(mid, 0.2);
}

TEST(Goodput, DuplicateMeasurementPointsStayFinite) {
  GoodputModel model;
  RateOption opt{"8k", phy::PhyParams::rate_8kbps(), 8000.0, 28.0,
                 rt::coding::CodeDescriptor::none()};
  // Regression: repeated measurements at one SNR used to produce a
  // zero-width interpolation segment and a NaN BER. Duplicates collapse
  // to their worst (highest) BER.
  model.add_measurements("8k", {{25.0, 1e-3}, {25.0, 5e-2}, {20.0, 0.2}, {30.0, 1e-5}});
  for (double snr = 18.0; snr <= 32.0; snr += 0.5) {
    const double b = model.ber(opt, snr);
    EXPECT_TRUE(std::isfinite(b)) << "BER not finite at " << snr << " dB";
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
  EXPECT_NEAR(model.ber(opt, 25.0), 5e-2, 1e-9);  // worst duplicate kept
  // All-duplicate curve: a single collapsed point clamps everywhere.
  GoodputModel flat;
  flat.add_measurements("8k", {{25.0, 1e-3}, {25.0, 1e-3}, {25.0, 2e-3}});
  EXPECT_NEAR(flat.ber(opt, 10.0), 2e-3, 1e-12);
  EXPECT_NEAR(flat.ber(opt, 40.0), 2e-3, 1e-12);
}

TEST(Network, PerTagTelemetryCountsAndMerges) {
  const auto table = RateTable::paper_default();
  const GoodputModel model;
  NetworkStudyConfig cfg;
  cfg.trials = 25;
  Rng rng(11);
  const auto r = rate_adaptation_study(6, table, model, cfg, rng);
  ASSERT_EQ(r.per_tag.size(), 6u);
  for (const auto& t : r.per_tag) {
    // Every tag is discovered every trial, and runs the full exchange.
    EXPECT_EQ(t.trials, 25u);
    EXPECT_GE(t.discovery_rounds, t.trials);  // rounds are 1-based
    EXPECT_EQ(t.packets_attempted, 25u * static_cast<std::uint64_t>(cfg.arq_packets_per_tag));
    EXPECT_LE(t.packets_delivered, t.packets_attempted);
    EXPECT_GE(t.mean_discovery_round(), 1.0);
  }
  // Same seeds -> bit-identical telemetry (the ARQ stream splits off
  // telemetry_seed per trial, independent of the placement Rng state).
  Rng rng2(11);
  const auto r2 = rate_adaptation_study(6, table, model, cfg, rng2);
  EXPECT_EQ(r.per_tag, r2.per_tag);
  // Merge is a plain sum: two equal runs merge to doubled counters.
  TagTelemetry merged = r.per_tag[0];
  merged.merge(r2.per_tag[0]);
  EXPECT_EQ(merged.trials, 50u);
  EXPECT_EQ(merged.arq_retries, 2 * r.per_tag[0].arq_retries);
  EXPECT_NEAR(merged.mean_discovery_round(), r.per_tag[0].mean_discovery_round(), 1e-12);
}

TEST(Network, TelemetryStreamDoesNotPerturbGoodput) {
  const auto table = RateTable::paper_default();
  const GoodputModel model;
  NetworkStudyConfig a;
  a.trials = 15;
  NetworkStudyConfig b = a;
  b.arq_packets_per_tag = 9;   // different telemetry load...
  b.telemetry_seed = 12345;    // ...on a different ARQ stream
  Rng ra(21);
  Rng rb(21);
  const auto res_a = rate_adaptation_study(8, table, model, a, ra);
  const auto res_b = rate_adaptation_study(8, table, model, b, rb);
  // The goodput aggregates ride only on the placement/discovery stream.
  EXPECT_EQ(res_a.mean_adaptive_bps, res_b.mean_adaptive_bps);
  EXPECT_EQ(res_a.mean_baseline_bps, res_b.mean_baseline_bps);
  EXPECT_EQ(res_a.mean_discovery_rounds, res_b.mean_discovery_rounds);
}

TEST(Network, RateAdaptationGainGrowsWithTags) {
  const auto table = RateTable::paper_default();
  const GoodputModel model;
  NetworkStudyConfig cfg;
  cfg.trials = 40;
  Rng rng(7);
  const auto r4 = rate_adaptation_study(4, table, model, cfg, rng);
  const auto r32 = rate_adaptation_study(32, table, model, cfg, rng);
  const auto r100 = rate_adaptation_study(100, table, model, cfg, rng);
  EXPECT_GT(r4.gain(), 1.0);
  EXPECT_GT(r32.gain(), r4.gain());
  EXPECT_GE(r100.gain(), r32.gain() * 0.9);
  // Paper's shape: ~1.2x at 4 tags growing to ~3.7x at 100.
  EXPECT_LT(r4.gain(), 3.0);
  EXPECT_GT(r100.gain(), 2.0);
  EXPECT_GT(r100.mean_discovery_rounds, r4.mean_discovery_rounds);
}

TEST(MacLinkTest, DeliversFrameOverRealPhy) {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  sim::ChannelConfig ch;
  ch.snr_override_db = 40.0;
  sim::SimOptions so;
  so.offline_yaws_deg = {0.0};
  sim::LinkSimulator simulator(p, p.tag_config(), ch, so);
  MacLink link(simulator, coding::ReedSolomon(15, 11));

  Rng rng(9);
  MacFrame f;
  f.tag_id = 3;
  f.seq = 1;
  f.payload = rng.bytes(20);
  const auto r = link.send(f, StopAndWaitArq(3));
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1);
  ASSERT_TRUE(r.received.has_value());
  EXPECT_EQ(*r.received, f);
  EXPECT_GT(MacLink::efficiency(r, f.payload.size()), 0.3);
}

TEST(MacLinkTest, CodedLinkSurvivesNoiseUncodedFails) {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  sim::ChannelConfig ch;
  ch.snr_override_db = 10.0;  // a few raw bit errors per packet expected
  sim::SimOptions so;
  so.offline_yaws_deg = {0.0};

  sim::LinkSimulator sim_coded(p, p.tag_config(), ch, so);
  MacLink coded(sim_coded, coding::ReedSolomon(63, 39));
  sim::ChannelConfig ch2 = ch;
  ch2.noise_seed = 2;
  sim::LinkSimulator sim_raw(p, p.tag_config(), ch2, so);
  MacLink raw(sim_raw, std::nullopt);

  Rng rng(11);
  int coded_ok = 0;
  int raw_ok = 0;
  for (int i = 0; i < 4; ++i) {
    MacFrame f;
    f.seq = static_cast<std::uint8_t>(i);
    f.payload = rng.bytes(24);
    coded_ok += coded.send(f, StopAndWaitArq(1)).delivered ? 1 : 0;
    raw_ok += raw.send(f, StopAndWaitArq(1)).delivered ? 1 : 0;
  }
  EXPECT_GE(coded_ok, raw_ok);
  EXPECT_GE(coded_ok, 3);
}

}  // namespace
}  // namespace rt::mac
