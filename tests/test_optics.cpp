// Tests for the polarization algebra, link budget and ambient models.
#include <gtest/gtest.h>

#include "common/units.h"
#include "optics/ambient.h"
#include "optics/link_budget.h"
#include "optics/polarization.h"
#include "optics/retroreflector.h"

namespace rt::optics {
namespace {

TEST(Polarization, MalusLawKnownAngles) {
  const LightState in{1.0, 0.0, 1.0};
  EXPECT_NEAR(malus_intensity(in, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(malus_intensity(in, deg_to_rad(90.0)), 0.0, 1e-12);
  EXPECT_NEAR(malus_intensity(in, deg_to_rad(45.0)), 0.5, 1e-12);
  EXPECT_NEAR(malus_intensity(in, deg_to_rad(60.0)), 0.25, 1e-12);
}

TEST(Polarization, UnpolarizedPassesHalf) {
  const LightState ambient{2.0, 0.0, 0.0};
  for (double a = 0.0; a < kPi; a += 0.3)
    EXPECT_NEAR(malus_intensity(ambient, a), 1.0, 1e-12);
}

TEST(Polarization, PolarizeSetsAngleAndFraction) {
  const LightState in{1.0, deg_to_rad(30.0), 1.0};
  const auto out = polarize(in, deg_to_rad(75.0));
  EXPECT_NEAR(out.intensity, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(out.angle_rad, deg_to_rad(75.0));
  EXPECT_DOUBLE_EQ(out.polarized_fraction, 1.0);
}

TEST(Polarization, ChannelCoefficientMatchesPaperFormula) {
  // h_tr = cos 2(theta_t - theta_r): +1 aligned, -1 crossed, 0 at 45deg.
  EXPECT_NEAR(channel_coefficient(0.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(channel_coefficient(deg_to_rad(90.0), 0.0), -1.0, 1e-12);
  EXPECT_NEAR(channel_coefficient(deg_to_rad(45.0), 0.0), 0.0, 1e-12);
}

TEST(Polarization, FortyFiveDegreePairsAreOrthogonal) {
  // Section 4.2.1: transmitters (receivers) 45deg apart form an orthogonal
  // basis; the property holds for any absolute orientation.
  for (double base = 0.0; base < kPi; base += 0.111) {
    EXPECT_NEAR(basis_inner_product(base, base + deg_to_rad(45.0)), 0.0, 1e-12) << base;
    EXPECT_NEAR(basis_inner_product(base, base), 1.0, 1e-12);
  }
}

TEST(Polarization, PdrResponseAxes) {
  // I group (0deg) -> +1; its relaxed state (90deg) -> -1.
  EXPECT_NEAR(std::abs(pdr_response(0.0) - Complex(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(pdr_response(deg_to_rad(90.0)) - Complex(-1, 0)), 0.0, 1e-12);
  // Q group (45deg) -> +j; relaxed (135deg) -> -j.
  EXPECT_NEAR(std::abs(pdr_response(deg_to_rad(45.0)) - Complex(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(pdr_response(deg_to_rad(135.0)) - Complex(0, -1)), 0.0, 1e-12);
}

TEST(Polarization, RollRotatesConstellationByTwiceTheAngle) {
  // A physical roll of dtheta multiplies the constellation by e^{j 2 dtheta}
  // (section 4.2.2) -- the PQAM rotation-tolerance property.
  const double roll = deg_to_rad(20.0);
  const auto rotated = pdr_response(0.0 + roll);
  EXPECT_NEAR(std::arg(rotated), 2.0 * roll, 1e-12);
  EXPECT_NEAR(std::abs(roll_rotation(roll) - rotated), 0.0, 1e-12);
}

TEST(LinkBudget, FitPassesThroughAnchors) {
  const auto lb = LinkBudget::narrow_beam();
  EXPECT_NEAR(lb.snr_db_at(7.5), 28.0, 1e-9);
  EXPECT_NEAR(lb.snr_db_at(10.5), 20.0, 1e-9);
  const auto wb = LinkBudget::wide_beam();
  EXPECT_NEAR(wb.snr_db_at(1.0), 65.0, 1e-9);
  EXPECT_NEAR(wb.snr_db_at(4.3), 14.0, 1e-9);
}

TEST(LinkBudget, MonotonicallyDecreasing) {
  const auto lb = LinkBudget::narrow_beam();
  double prev = 1e9;
  for (double d = 0.5; d < 15.0; d += 0.25) {
    const double snr = lb.snr_db_at(d);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(LinkBudget, InverseMappingRoundTrips) {
  const auto lb = LinkBudget::wide_beam();
  for (double d = 1.0; d <= 4.3; d += 0.37)
    EXPECT_NEAR(lb.distance_at_snr_db(lb.snr_db_at(d)), d, 1e-9);
}

TEST(LinkBudget, YawLossGrowsFromZero) {
  EXPECT_NEAR(LinkBudget::yaw_loss_db(0.0), 0.0, 1e-12);
  EXPECT_GT(LinkBudget::yaw_loss_db(deg_to_rad(40.0)), 2.0);
  EXPECT_GT(LinkBudget::yaw_loss_db(deg_to_rad(55.0)),
            LinkBudget::yaw_loss_db(deg_to_rad(40.0)));
  EXPECT_THROW((void)LinkBudget::yaw_loss_db(deg_to_rad(90.0)), PreconditionError);
}

TEST(LinkBudget, Validation) {
  EXPECT_THROW(LinkBudget(0.0, 10.0, 40.0), PreconditionError);
  EXPECT_THROW(static_cast<void>(LinkBudget::fit(2.0, 10.0, 2.0, 20.0)), PreconditionError);
  const auto lb = LinkBudget::narrow_beam();
  EXPECT_THROW((void)lb.snr_db_at(-1.0), PreconditionError);
}

TEST(Ambient, PresetsAndScaling) {
  EXPECT_DOUBLE_EQ(AmbientLight::day().illuminance_lux, 1000.0);
  EXPECT_DOUBLE_EQ(AmbientLight::night().illuminance_lux, 200.0);
  EXPECT_DOUBLE_EQ(AmbientLight::dark().illuminance_lux, 20.0);
  // Shot noise grows like sqrt(lux).
  const double ratio =
      AmbientLight::day().shot_noise_sigma() / AmbientLight::dark().shot_noise_sigma();
  EXPECT_NEAR(ratio, std::sqrt(1000.0 / 20.0), 1e-9);
}

TEST(Retroreflector, YawShrinksGain) {
  const Retroreflector r;
  EXPECT_GT(r.gain(0.0), r.gain(deg_to_rad(30.0)));
  EXPECT_NEAR(r.gain(deg_to_rad(60.0)) / r.gain(0.0), 0.25, 1e-9);  // cos^2
  EXPECT_THROW((void)r.gain(deg_to_rad(90.0)), PreconditionError);
}

}  // namespace
}  // namespace rt::optics
