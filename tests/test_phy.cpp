// Tests for the PHY layer: constellation, frame layout, fingerprint
// collection, preamble detection/rotation correction, channel training,
// the K-branch DFE, and the end-to-end modulate -> synthesize -> demodulate
// round trip.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitio.h"
#include "common/rng.h"
#include "common/units.h"
#include "lcm/tag_array.h"
#include "optics/polarization.h"
#include "phy/constellation.h"
#include "phy/demodulator.h"
#include "phy/equalizer.h"
#include "phy/frame.h"
#include "phy/modulator.h"
#include "phy/params.h"
#include "phy/preamble.h"
#include "phy/training.h"
#include "signal/awgn.h"

namespace rt::phy {
namespace {

/// Small fast configuration for unit tests. Note W = L * T must cover the
/// ~4 ms LC discharge (the paper's design invariant), so L=4 pairs with
/// T=1 ms here.
PhyParams test_params() {
  PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.sample_rate_hz = 40e3;
  p.training_memory = 2;
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

/// Channel model for PHY tests: fresh tag per call (deterministic state),
/// optional roll rotation, complex gain and AWGN.
struct TestChannel {
  lcm::TagConfig tag_cfg;
  double roll_rad = 0.0;
  double gain = 1.0;
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 99;

  [[nodiscard]] WaveformSource source() const {
    return [*this](std::span<const lcm::Firing> firings, double duration) {
      lcm::TagArray tag(tag_cfg);
      auto w = tag.synthesize(firings, 40e3, duration);
      const auto rot = optics::roll_rotation(roll_rad) * gain;
      for (auto& v : w.samples) v *= rot;
      if (noise_sigma > 0.0) {
        Rng rng(noise_seed);
        sig::add_noise_sigma(w, noise_sigma, rng);
      }
      return w;
    };
  }
};

TEST(Constellation, MapUnmapRoundTrip) {
  const Constellation c(2, true);
  EXPECT_EQ(c.bits_per_symbol(), 4);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto bits = rng.bits(4);
    const auto sym = c.map(bits);
    EXPECT_EQ(c.unmap(sym), bits);
  }
}

TEST(Constellation, AlphabetSizeAndPoints) {
  const Constellation c(2, true);
  const auto alpha = c.alphabet();
  EXPECT_EQ(alpha.size(), 16u);  // 16-PQAM
  // Corner points of the unit square constellation.
  EXPECT_EQ(c.point({0, 0}), Complex(0.0, 0.0));
  EXPECT_EQ(c.point({3, 3}), Complex(1.0, 1.0));
  EXPECT_EQ(c.point({3, 0}), Complex(1.0, 0.0));
}

TEST(Constellation, GrayAdjacency) {
  // Adjacent levels differ in exactly one payload bit.
  const Constellation c(2, false);
  for (int level = 0; level + 1 < 4; ++level) {
    const auto a = c.unmap({level, -1});
    const auto b = c.unmap({level + 1, -1});
    EXPECT_EQ(hamming_distance(a, b), 1u);
  }
}

TEST(Constellation, SingleChannelMode) {
  const Constellation c(2, false);
  EXPECT_EQ(c.bits_per_symbol(), 2);
  EXPECT_EQ(c.alphabet().size(), 4u);
  for (const auto& s : c.alphabet()) EXPECT_EQ(s.level_q, -1);
}

TEST(Frame, LayoutArithmetic) {
  const auto p = test_params();
  const auto f = FrameLayout::for_params(p, 40);
  const int guard = p.training_memory * p.dsm_order;  // V idle cycles
  EXPECT_EQ(f.preamble_begin(), 0);
  EXPECT_EQ(f.training_begin(), p.preamble_slots + guard);
  EXPECT_EQ(f.training_slots(), 2 * p.dsm_order * p.dsm_order);
  EXPECT_EQ(f.guard_cycles(), p.training_memory);
  EXPECT_EQ(f.payload_begin(), f.training_begin() + f.training_slots() + guard);
  EXPECT_EQ(f.total_slots(), f.payload_begin() + 40 + p.dsm_order);
}

TEST(Frame, TrainingScheduleIsLowerTriangularWithHistories) {
  const auto p = test_params();
  const auto layout = FrameLayout::for_params(p, 0);
  const auto sched = training_schedule(p, layout);
  const int modules = 2 * p.dsm_order;
  // Module m fires in rounds m..2L-1: total fired cycles = sum (2L - m).
  std::size_t expected_fired = 0;
  for (int m = 0; m < modules; ++m) expected_fired += static_cast<std::size_t>(modules - m);
  std::size_t fired_count = 0;
  for (const auto& tf : sched) {
    const int round = (tf.slot - layout.training_begin()) / p.dsm_order;
    EXPECT_NE(tf.key(), 0u);  // zero-key cycles are never scheduled
    if (tf.fired) {
      ++fired_count;
      EXPECT_GE(round, tf.module_global);
      EXPECT_LT(round, layout.training_rounds);
    } else {
      // Tail-only cycle: something must have fired within memory reach.
      EXPECT_NE(tf.history, 0u);
    }
    // History bit k-1 set iff the module fired k rounds ago.
    for (int k = 1; k <= p.training_memory; ++k) {
      const int rk = round - k;
      const bool fired_k = rk >= 0 && rk < layout.training_rounds && tf.module_global <= rk;
      EXPECT_EQ((tf.history >> (k - 1)) & 1U, fired_k ? 1U : 0U);
    }
  }
  EXPECT_EQ(fired_count, expected_fired);
}

TEST(Frame, TrainingFiringsMergeIAndQ) {
  const auto p = test_params();
  const auto layout = FrameLayout::for_params(p, 0);
  const auto sched = training_schedule(p, layout);
  const auto firings = training_firings(p, sched);
  // In late rounds both the I and Q module of a slot fire simultaneously:
  // at least one firing must carry both levels.
  bool both = false;
  for (const auto& f : firings) both = both || (f.level_i > 0 && f.level_q > 0);
  EXPECT_TRUE(both);
  // Sorted by time.
  for (std::size_t i = 1; i < firings.size(); ++i)
    EXPECT_LE(firings[i - 1].time_s, firings[i].time_s);
}

TEST(Modulator, PacketScheduleShape) {
  const auto p = test_params();
  const Modulator mod(p);
  Rng rng(5);
  const auto bits = rng.bits(80);  // 40 slots at 2 bits/slot
  const auto pkt = mod.modulate(bits);
  EXPECT_EQ(pkt.layout.payload_slots, 40);
  EXPECT_EQ(pkt.payload_symbols.size(), 40u);
  EXPECT_GT(pkt.duration_s, 0.0);
  // All firing times inside the frame.
  for (const auto& f : pkt.firings) {
    EXPECT_GE(f.time_s, 0.0);
    EXPECT_LT(f.time_s, pkt.duration_s);
  }
}

TEST(Modulator, ScramblingIsInvertedByDescramble) {
  const auto p = test_params();
  const Modulator mod(p);
  Rng rng(7);
  const auto bits = rng.bits(64);
  const auto pkt = mod.modulate(bits);
  // Reconstruct the scrambled stream from the symbols and descramble.
  std::vector<std::uint8_t> recovered;
  for (const auto& s : pkt.payload_symbols) {
    const auto b = mod.constellation().unmap(s);
    recovered.insert(recovered.end(), b.begin(), b.end());
  }
  const auto plain = mod.descramble(recovered);
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(plain[i], bits[i]) << i;
}

TEST(PulseBank, IndexValidation) {
  PulseBank bank(4, 4, 10);
  EXPECT_THROW((void)bank.pulse(4, 0), PreconditionError);
  EXPECT_THROW((void)bank.pulse(0, 4), PreconditionError);
  EXPECT_THROW(bank.set_pulse(0, 0, std::vector<Complex>(5)), PreconditionError);
}

TEST(Fingerprints, TemplatesPredictIsolatedPulse) {
  // A module fired once from rest must match its history-0 template.
  const auto p = test_params();
  TestChannel ch{p.tag_config()};
  const auto bank = collect_fingerprints(p, ch.source());
  ASSERT_EQ(bank.modules(), 2 * p.dsm_order);

  // Synthesize an isolated firing of I module 1 and compare.
  lcm::TagArray tag(p.tag_config());
  const double t0 = p.symbol_duration_s();  // settle one symbol first
  const int max_level = p.levels_per_axis() - 1;
  std::vector<lcm::Firing> fire = {{t0 + 1 * p.slot_s, 1, max_level, -1}};
  auto active = tag.synthesize(fire, p.sample_rate_hz, t0 + 3 * p.symbol_duration_s());
  lcm::TagArray idle(p.tag_config());
  auto base = idle.synthesize({}, p.sample_rate_hz, t0 + 3 * p.symbol_duration_s());

  const auto tmpl = bank.pulse(1, 0b001);  // history 0, fired
  const auto begin = active.index_at(t0 + 1 * p.slot_s);
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t k = 0; k < tmpl.size(); ++k) {
    err += std::norm((active[begin + k] - base[begin + k]) - tmpl[k]);
    ref += std::norm(tmpl[k]);
  }
  EXPECT_LT(std::sqrt(err / ref), 0.02);
}

TEST(Fingerprints, HistoryMattersForTailEffect) {
  // The history-all-ones template must differ measurably from history-0:
  // that difference IS the tail effect the fingerprint model exists for.
  const auto p = test_params();
  TestChannel ch{p.tag_config()};
  const auto bank = collect_fingerprints(p, ch.source());
  const auto h0 = bank.pulse(0, 0b001);  // fired, no recent history
  const auto h3 = bank.pulse(0, 0b111);  // fired, fired both previous cycles
  double diff = 0.0;
  double ref = 0.0;
  for (std::size_t k = 0; k < h0.size(); ++k) {
    diff += std::norm(h0[k] - h3[k]);
    ref += std::norm(h0[k]);
  }
  EXPECT_GT(std::sqrt(diff / ref), 0.01);
  // Tail-only template (not fired, fired last cycle): small but non-zero.
  const auto tail = bank.pulse(0, 0b010);
  double tail_energy = 0.0;
  for (const auto& v : tail) tail_energy += std::norm(v);
  EXPECT_GT(tail_energy, 0.0);
  EXPECT_LT(tail_energy, ref);
}

TEST(Preamble, DetectsOffsetRotationAndGain) {
  const auto p = test_params();
  const PreambleProcessor proc(p);

  // Build a received waveform: idle padding, then the preamble section,
  // under roll rotation and scaling.
  const double roll = rt::deg_to_rad(30.0);
  TestChannel ch{p.tag_config(), roll, 0.7, 0.0};
  const auto src = ch.source();
  const int pad_slots = 7;
  auto firings = preamble_firings(p, pad_slots);
  const double duration = (pad_slots + p.preamble_slots + 2 * p.dsm_order) * p.slot_s;
  const auto rx = src(firings, duration);

  const auto det = proc.detect(rx);
  ASSERT_TRUE(det.found) << "residual " << det.normalized_residual;
  EXPECT_EQ(det.start_sample, static_cast<std::size_t>(pad_slots) * p.samples_per_slot());
  // a must undo the rotation and scaling: a ~ e^{-j 2 roll} / 0.7.
  EXPECT_NEAR(std::abs(det.a), 1.0 / 0.7, 0.05);
  EXPECT_NEAR(std::remainder(std::arg(det.a) + 2.0 * roll, 2.0 * rt::kPi), 0.0, 0.05);
  EXPECT_LT(det.normalized_residual, 0.05);
}

TEST(Preamble, CorrectionRestoresReferenceFrame) {
  const auto p = test_params();
  const PreambleProcessor proc(p);
  TestChannel ch{p.tag_config(), rt::deg_to_rad(77.0), 1.3, 0.0};
  const auto rx = ch.source()(preamble_firings(p, 0),
                              (p.preamble_slots + p.dsm_order) * p.slot_s);
  const auto det = proc.detect(rx);
  ASSERT_TRUE(det.found);
  const auto corrected = proc.correct(rx, det);
  const auto& ref = proc.reference();
  double err = 0.0;
  double refe = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err += std::norm(corrected[det.start_sample + i] - ref[i]);
    refe += std::norm(ref[i]);
  }
  EXPECT_LT(std::sqrt(err / refe), 0.02);
}

TEST(Preamble, SurvivesNoise) {
  const auto p = test_params();
  const PreambleProcessor proc(p);
  TestChannel ch{p.tag_config(), rt::deg_to_rad(10.0), 1.0, 0.15};
  const auto rx = ch.source()(preamble_firings(p, 3),
                              (3 + p.preamble_slots + p.dsm_order) * p.slot_s);
  const auto det = proc.detect(rx);
  ASSERT_TRUE(det.found);
  EXPECT_NEAR(static_cast<double>(det.start_sample),
              static_cast<double>(3 * p.samples_per_slot()), 1.0);
}

TEST(Preamble, NoFalseDetectionOnNoise) {
  const auto p = test_params();
  const PreambleProcessor proc(p);
  Rng rng(13);
  sig::IqWaveform noise(p.sample_rate_hz, 4000);
  sig::add_noise_sigma(noise, 1.0, rng);
  const auto det = proc.detect(noise);
  EXPECT_FALSE(det.found);
}

/// End-to-end helper: modulate random bits, run the channel, demodulate.
struct EndToEnd {
  PhyParams p;
  TestChannel ch;
  std::size_t n_bits = 160;
  DemodOptions opts{};
  std::uint64_t bit_seed = 21;

  struct Outcome {
    bool found;
    double ber;
  };

  [[nodiscard]] Outcome run(const Demodulator& demod) const {
    const Modulator mod(p);
    Rng rng(bit_seed);
    const auto bits = rng.bits(n_bits);
    const auto pkt = mod.modulate(bits);
    const auto rx = ch.source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());
    auto o = opts;
    o.search_limit = 4 * p.samples_per_slot();
    const auto res = demod.demodulate(rx, pkt.layout.payload_slots, o);
    if (!res.preamble_found) return {false, 1.0};
    std::size_t errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) errors += (res.bits[i] != bits[i]) ? 1 : 0;
    return {true, static_cast<double>(errors) / static_cast<double>(bits.size())};
  }
};

OfflineModel make_offline_model(const PhyParams& p, int rank = 3) {
  // Train bases from two mildly different orientations of an ideal tag.
  std::vector<WaveformSource> sources;
  auto cfg_a = p.tag_config();
  auto cfg_b = p.tag_config();
  cfg_b.yaw_rad = rt::deg_to_rad(15.0);
  sources.push_back(TestChannel{cfg_a}.source());
  sources.push_back(TestChannel{cfg_b}.source());
  return OfflineTrainer::train(p, sources, rank);
}

TEST(EndToEnd, NoiselessIdealChannelIsErrorFree) {
  const auto p = test_params();
  EndToEnd e2e{p, TestChannel{p.tag_config()}};
  e2e.opts.online_training = false;
  const auto oracle = collect_fingerprints(p, e2e.ch.source());
  e2e.opts.oracle = &oracle;
  const Demodulator demod(p, make_offline_model(p));
  const auto out = e2e.run(demod);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.ber, 0.0);
}

TEST(EndToEnd, OnlineTrainingHandlesRotationAndHeterogeneity) {
  auto p = test_params();
  auto tag_cfg = p.tag_config();
  tag_cfg.heterogeneity = {0.08, 0.05, rt::deg_to_rad(2.0)};
  tag_cfg.seed = 1234;
  EndToEnd e2e{p, TestChannel{tag_cfg, rt::deg_to_rad(25.0), 0.8, 0.02}};
  const Demodulator demod(p, make_offline_model(p));
  const auto out = e2e.run(demod);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.ber, 0.0);
}

TEST(EndToEnd, SixteenPqamRoundTrip) {
  auto p = test_params();
  p.bits_per_axis = 2;  // 16-PQAM
  auto tag_cfg = p.tag_config();
  tag_cfg.heterogeneity = {0.03, 0.02, rt::deg_to_rad(1.0)};
  EndToEnd e2e{p, TestChannel{tag_cfg, rt::deg_to_rad(-40.0), 1.0, 0.01}};
  const Demodulator demod(p, make_offline_model(p));
  const auto out = e2e.run(demod);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.ber, 0.0);
}

TEST(EndToEnd, BasicDsmRoundTrip) {
  // Section 4.1.1 basic DSM: fire L slots, then rest tau_0 before the next
  // group. Lower rate, isolated pulses, same receiver machinery.
  auto p = test_params();
  p.basic_rest_slots = 4;  // 4 ms rest after each 4-slot group
  EXPECT_NEAR(p.data_rate_bps(), 2.0 * 4.0 / (8.0 * 1e-3), 1e-9);  // 1 kbps
  EndToEnd e2e{p, TestChannel{p.tag_config(), rt::deg_to_rad(20.0), 1.0, 0.02}};
  const Demodulator demod(p, make_offline_model(p));
  const auto out = e2e.run(demod);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.ber, 0.0);
}

TEST(Params, BasicDsmRateFormulaMatchesPaper) {
  // L-th order basic DSM: L log2(P) bits per (L tau_1 + tau_0). With
  // T = tau_1 = 0.5 ms, rest = tau_0 / T slots.
  auto p = PhyParams::rate_8kbps();
  p.basic_rest_slots = 7;  // 3.5 ms
  EXPECT_NEAR(p.data_rate_bps(), 8.0 * 4.0 / (8.0 * 0.5e-3 + 3.5e-3), 1.0);
  EXPECT_NEAR(p.basic_dsm_rate_bps(3.5e-3), p.data_rate_bps(), 1.0);
}

TEST(EndToEnd, SingleChannelBaselineRoundTrip) {
  auto p = test_params();
  p.use_q_channel = false;  // PAM-style baseline on the I axis only
  EndToEnd e2e{p, TestChannel{p.tag_config()}};
  const Demodulator demod(p, make_offline_model(p));
  const auto out = e2e.run(demod);
  ASSERT_TRUE(out.found);
  EXPECT_EQ(out.ber, 0.0);
}

TEST(Equalizer, MoreBranchesNeverWorseUnderNoise) {
  // At an SNR chosen to stress the DFE, K=8 must not lose to K=1 on
  // aggregate BER (Fig. 17a behaviour).
  auto p = test_params();
  const auto oracle = collect_fingerprints(p, TestChannel{p.tag_config()}.source());
  const Demodulator demod1([&] {
    auto q = p;
    q.equalizer_branches = 1;
    return q;
  }(), make_offline_model(p));
  const Demodulator demod8(p, make_offline_model(p));

  double ber1 = 0.0;
  double ber8 = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    EndToEnd e2e{p, TestChannel{p.tag_config(), 0.0, 1.0, 0.35, 100 + seed}};
    e2e.bit_seed = 300 + seed;
    e2e.opts.online_training = false;
    e2e.opts.oracle = &oracle;
    ber1 += e2e.run(demod1).ber;
    ber8 += e2e.run(demod8).ber;
  }
  EXPECT_LE(ber8, ber1 + 1e-9);
}

TEST(Equalizer, StateMergingMatchesPlainBeamWhenKLarge) {
  auto p = test_params();
  p.equalizer_branches = 64;
  auto p_merge = p;
  p_merge.merge_equalizer_states = true;
  const auto oracle = collect_fingerprints(p, TestChannel{p.tag_config()}.source());
  EndToEnd e2e{p, TestChannel{p.tag_config(), 0.0, 1.0, 0.3, 55}};
  e2e.opts.online_training = false;
  e2e.opts.oracle = &oracle;
  const Demodulator demod_a(p, make_offline_model(p));
  const Demodulator demod_b(p_merge, make_offline_model(p));
  const auto a = e2e.run(demod_a);
  const auto b = e2e.run(demod_b);
  ASSERT_TRUE(a.found && b.found);
  // Merging only prunes provably-dominated branches, so it cannot be worse.
  EXPECT_LE(b.ber, a.ber + 0.02);
}

TEST(Training, OnlineReconstructionMatchesOracleTemplates) {
  auto p = test_params();
  auto tag_cfg = p.tag_config();
  tag_cfg.heterogeneity = {0.06, 0.04, rt::deg_to_rad(1.5)};
  tag_cfg.seed = 777;
  TestChannel ch{tag_cfg};

  // Received packet (noiseless) -> detect -> correct -> online train.
  const Modulator mod(p);
  Rng rng(31);
  const auto pkt = mod.modulate(rng.bits(40));
  const auto rx = ch.source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());
  const Demodulator demod(p, make_offline_model(p));
  const auto det = demod.preamble().detect(rx, 2 * p.samples_per_slot());
  ASSERT_TRUE(det.found);
  const auto corrected = demod.preamble().correct(rx, det);
  const auto trained = OnlineTrainer::train(p, demod.offline_model(), pkt.layout, corrected,
                                            det.start_sample);

  const auto oracle = collect_fingerprints(p, ch.source());
  // Compare the dominant (fired, history 0) template of every module.
  for (int m = 0; m < trained.modules(); ++m) {
    const auto a = trained.pulse(m, 0b001);
    const auto b = oracle.pulse(m, 0b001);
    double err = 0.0;
    double ref = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      err += std::norm(a[k] - b[k]);
      ref += std::norm(b[k]);
    }
    EXPECT_LT(std::sqrt(err / ref), 0.15) << "module " << m;
  }
}

TEST(Demodulator, InitialHistoriesFollowFrameStructure) {
  // With V = 2 the guard holds V = 2 idle cycles, so every pixel's history
  // at the first payload firing is all-idle.
  const auto p = test_params();
  const auto layout = FrameLayout::for_params(p, 16);
  const auto hist = Demodulator::initial_payload_histories(p, layout);
  ASSERT_EQ(hist.size(),
            static_cast<std::size_t>(2 * p.dsm_order) * static_cast<std::size_t>(p.bits_per_axis));
  for (const auto h : hist) EXPECT_EQ(h, 0U);

  // The standard frame always allocates V guard cycles, so this holds for
  // every V -- the payload starts from a history-free state by design.
  auto p3 = test_params();
  p3.training_memory = 3;
  const auto layout3 = FrameLayout::for_params(p3, 16);
  EXPECT_EQ(layout3.guard_cycles(), 3);
  const auto hist3 = Demodulator::initial_payload_histories(p3, layout3);
  for (const auto h : hist3) EXPECT_EQ(h, 0U);
}

}  // namespace
}  // namespace rt::phy
