// Unit tests for the src/kernels batch layer: scalar-backend semantics
// against naive references, tail coverage around the 4-wide AVX2 vector
// width (n = 0, 1, W-1, W, W+1, ...), and — in RT_SIMD=ON builds — the
// cross-backend contract from kernels.h: elementwise kernels bit-identical,
// reductions within 1e-12 relative tolerance.
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>
#include <vector>

namespace {

using rt::kernels::Complex;
using rt::kernels::CorrStats;
using rt::kernels::CTerm;
using rt::kernels::LcBankParams;

// Every size a 4-wide kernel with masked tails can get wrong: empty,
// sub-width, one-off-the-width on both sides, and multi-vector spans.
const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33};

std::vector<double> random_reals(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<Complex> random_cplx(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex{dist(rng), dist(rng)};
  return v;
}

void expect_rel_close(double a, double b, double tol = 1e-12) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  EXPECT_LE(std::abs(a - b) / scale, tol) << a << " vs " << b;
}

void expect_rel_close(Complex a, Complex b, double tol = 1e-12) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-30});
  EXPECT_LE(std::abs(a - b) / scale, tol) << a << " vs " << b;
}

// --- scalar backend vs naive references (all tail sizes) -------------------

TEST(ScalarKernelsTest, DotFamilyMatchesNaiveLoops) {
  std::mt19937_64 rng(101);
  for (const std::size_t n : kSizes) {
    const auto a = random_reals(rng, n);
    const auto b = random_reals(rng, n);
    const auto ca = random_cplx(rng, n);
    const auto cb = random_cplx(rng, n);
    double dot = 0.0;
    double sq = 0.0;
    Complex dc{};
    Complex du{};
    double nc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += a[i] * b[i];
      sq += a[i] * a[i];
      dc += std::conj(ca[i]) * cb[i];
      du += ca[i] * cb[i];
      nc += std::norm(ca[i]);
    }
    EXPECT_EQ(rt::kernels::scalar::dot_real(n, a.data(), b.data()), dot);
    EXPECT_EQ(rt::kernels::scalar::sum_sq_real(n, a.data()), sq);
    EXPECT_EQ(rt::kernels::scalar::cdotc(n, ca.data(), cb.data()), dc);
    EXPECT_EQ(rt::kernels::scalar::cdotu(n, ca.data(), cb.data()), du);
    EXPECT_EQ(rt::kernels::scalar::sum_norm_cplx(n, ca.data()), nc);
  }
}

TEST(ScalarKernelsTest, CorrStatsSplitIsBitwiseEqualToInterleaved) {
  std::mt19937_64 rng(102);
  for (const std::size_t n : kSizes) {
    const auto ref = random_cplx(rng, n);
    const auto x = random_cplx(rng, n);
    std::vector<double> rr(n);
    std::vector<double> ri(n);
    std::vector<double> xr(n);
    std::vector<double> xi(n);
    rt::kernels::scalar::split_complex(n, ref.data(), rr.data(), ri.data());
    rt::kernels::scalar::split_complex(n, x.data(), xr.data(), xi.data());
    const CorrStats a = rt::kernels::scalar::corr_stats(n, ref.data(), x.data());
    const CorrStats b =
        rt::kernels::scalar::corr_stats_split(n, rr.data(), ri.data(), xr.data(), xi.data());
    EXPECT_EQ(a.acc, b.acc);
    EXPECT_EQ(a.wsum, b.wsum);
    EXPECT_EQ(a.wenergy, b.wenergy);
  }
}

TEST(ScalarKernelsTest, WlTransformSupportsInPlaceAliasing) {
  std::mt19937_64 rng(103);
  const Complex a{0.8, -0.1};
  const Complex b{0.05, 0.2};
  const Complex c{-0.3, 0.4};
  for (const std::size_t n : kSizes) {
    const auto src = random_cplx(rng, n);
    std::vector<Complex> out(n);
    rt::kernels::scalar::wl_transform(n, src.data(), out.data(), a, b, c);
    auto in_place = src;
    rt::kernels::scalar::wl_transform(n, in_place.data(), in_place.data(), a, b, c);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], a * src[i] + b * std::conj(src[i]) + c);
      EXPECT_EQ(in_place[i], out[i]);
    }
  }
}

TEST(ScalarKernelsTest, FirDotWalksTapsAscendingOverReversedWindow) {
  std::mt19937_64 rng(104);
  for (const std::size_t nt : kSizes) {
    if (nt == 0) continue;  // a FIR always has >= 1 tap
    const auto taps = random_reals(rng, nt);
    std::vector<double> taps_rev(taps.rbegin(), taps.rend());
    const auto xw = random_cplx(rng, nt);
    const auto xw_real = random_reals(rng, nt);
    Complex want{};
    double want_real = 0.0;
    for (std::size_t k = 0; k < nt; ++k) {
      want += xw[nt - 1 - k] * taps[k];
      want_real += xw_real[nt - 1 - k] * taps[k];
    }
    EXPECT_EQ(rt::kernels::scalar::fir_dot(nt, taps.data(), taps_rev.data(), xw.data()), want);
    EXPECT_EQ(
        rt::kernels::scalar::fir_dot_real(nt, taps.data(), taps_rev.data(), xw_real.data()),
        want_real);
  }
}

TEST(ScalarKernelsTest, DfeScoreMatchesResidualPlusNorm) {
  std::mt19937_64 rng(105);
  for (const std::size_t n_terms : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                    std::size_t{31}, std::size_t{32}, std::size_t{33}}) {
    const std::size_t n = 24;
    const auto residual = random_cplx(rng, n);
    std::vector<std::vector<Complex>> tmpls;
    std::vector<CTerm> terms;
    tmpls.reserve(n_terms);
    terms.reserve(n_terms);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t t = 0; t < n_terms; ++t) {
      tmpls.push_back(random_cplx(rng, n));
      terms.push_back({tmpls.back().data(), Complex{dist(rng), dist(rng)}});
    }
    std::vector<Complex> out(n);
    rt::kernels::scalar::dfe_residual(n, residual.data(), out.data(), terms.data(), n_terms);
    double want = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      Complex e = residual[k];
      for (std::size_t t = 0; t < n_terms; ++t) e -= terms[t].w * terms[t].tmpl[k];
      EXPECT_EQ(out[k], e);
      want += std::norm(e);
    }
    EXPECT_EQ(rt::kernels::scalar::dfe_score(n, residual.data(), terms.data(), n_terms), want);
  }
}

TEST(ScalarKernelsTest, PhaseScoreMaxFindsTheArgmaxValue) {
  std::mt19937_64 rng(106);
  for (const std::size_t k : kSizes) {
    if (k == 0) continue;  // the bank always has >= 1 hypothesis
    const auto re = random_reals(rng, k);
    const auto im = random_reals(rng, k);
    const double cr = 0.7;
    const double ci = -0.4;
    double want = re[0] * cr - im[0] * ci;
    for (std::size_t i = 1; i < k; ++i) want = std::max(want, re[i] * cr - im[i] * ci);
    EXPECT_EQ(rt::kernels::scalar::phase_score_max(k, re.data(), im.data(), cr, ci), want);
  }
}

TEST(ScalarKernelsTest, LcStepLeavesStateUntouchedForNonPositiveDt) {
  std::mt19937_64 rng(107);
  const std::size_t n = 5;
  std::vector<double> tau_c(n, 2e-3);
  std::vector<double> tau_r(n, 3e-3);
  const LcBankParams p{tau_c.data(), tau_r.data(), 50e-3, 10e-3, 0.5};
  const auto drive = random_reals(rng, n);
  auto c = random_reals(rng, n);
  auto s = random_reals(rng, n);
  const auto c0 = c;
  const auto s0 = s;
  rt::kernels::scalar::lc_step(n, 0.0, drive.data(), c.data(), s.data(), p);
  EXPECT_EQ(c, c0);
  EXPECT_EQ(s, s0);
  rt::kernels::scalar::lc_step(n, -1e-6, drive.data(), c.data(), s.data(), p);
  EXPECT_EQ(c, c0);
  EXPECT_EQ(s, s0);
}

TEST(ScalarKernelsTest, LcStepRunMatchesRepeatedLcStepCalls) {
  std::mt19937_64 rng(109);
  std::uniform_real_distribution<double> tau(1e-3, 5e-3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (const std::size_t n : kSizes) {
    std::vector<double> tau_c(n);
    std::vector<double> tau_r(n);
    std::vector<double> drive(n);
    std::vector<double> c0(n);
    std::vector<double> s0(n);
    for (std::size_t i = 0; i < n; ++i) {
      tau_c[i] = tau(rng);
      tau_r[i] = tau(rng);
      drive[i] = (i % 3 == 0) ? 1.0 : 0.0;
      c0[i] = unit(rng);
      s0[i] = unit(rng);
    }
    const LcBankParams p{tau_c.data(), tau_r.data(), 50e-3, 10e-3, 0.35};
    const std::size_t t_steps = 4;
    const double dt = 25e-6;  // multiple substeps + a partial tail per sample

    // Reference: one lc_step per sample, snapshotting c after each.
    auto rc = c0;
    auto rs = s0;
    std::vector<double> ref_rows;
    for (std::size_t t = 0; t < t_steps; ++t) {
      rt::kernels::scalar::lc_step(n, dt, drive.data(), rc.data(), rs.data(), p);
      ref_rows.insert(ref_rows.end(), rc.begin(), rc.end());
    }

    auto c = c0;
    auto s = s0;
    std::vector<double> rows(t_steps * n, -1.0);
    rt::kernels::scalar::lc_step_run(n, t_steps, dt, drive.data(), c.data(), s.data(),
                                     rows.data(), p);
    EXPECT_EQ(rows, ref_rows);
    EXPECT_EQ(c, rc);
    EXPECT_EQ(s, rs);

    // Non-positive dt: state untouched, rows echo the current state.
    rt::kernels::scalar::lc_step_run(n, t_steps, 0.0, drive.data(), c.data(), s.data(),
                                     rows.data(), p);
    EXPECT_EQ(c, rc);
    EXPECT_EQ(s, rs);
    std::vector<double> echo;
    for (std::size_t t = 0; t < t_steps; ++t) echo.insert(echo.end(), c.begin(), c.end());
    EXPECT_EQ(rows, echo);
  }
}

// --- cross-backend contract (compiled only under -DRT_SIMD=ON) -------------

#if defined(RT_KERNELS_AVX2)

TEST(Avx2KernelsTest, BackendIsSelected) {
  EXPECT_TRUE(rt::kernels::kAvx2);
  EXPECT_STREQ(rt::kernels::backend_name(), "avx2");
}

TEST(Avx2KernelsTest, ElementwiseKernelsAreBitIdentical) {
  std::mt19937_64 rng(201);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : kSizes) {
    const auto x = random_cplx(rng, n);
    const auto g = random_cplx(rng, n);
    const auto xr = random_reals(rng, n);
    const Complex a{dist(rng), dist(rng)};
    const Complex b{dist(rng), dist(rng)};
    const Complex c{dist(rng), dist(rng)};

    std::vector<Complex> s_out(n);
    std::vector<Complex> v_out(n);
    rt::kernels::scalar::wl_transform(n, x.data(), s_out.data(), a, b, c);
    rt::kernels::avx2::wl_transform(n, x.data(), v_out.data(), a, b, c);
    EXPECT_EQ(s_out, v_out);

    auto s_x = x;
    auto v_x = x;
    rt::kernels::scalar::cscale(n, s_x.data(), g.data());
    rt::kernels::avx2::cscale(n, v_x.data(), g.data());
    EXPECT_EQ(s_x, v_x);

    auto s_acc = random_reals(rng, n);
    auto v_acc = s_acc;
    rt::kernels::scalar::accum_real(n, xr.data(), s_acc.data());
    rt::kernels::avx2::accum_real(n, xr.data(), v_acc.data());
    EXPECT_EQ(s_acc, v_acc);

    auto s_ax = random_reals(rng, n);
    auto v_ax = s_ax;
    rt::kernels::scalar::axpy_sub_real(n, a.real(), xr.data(), s_ax.data());
    rt::kernels::avx2::axpy_sub_real(n, a.real(), xr.data(), v_ax.data());
    EXPECT_EQ(s_ax, v_ax);

    auto s_cax = random_cplx(rng, n);
    auto v_cax = s_cax;
    rt::kernels::scalar::axpy_sub_cplx(n, a, x.data(), s_cax.data());
    rt::kernels::avx2::axpy_sub_cplx(n, a, x.data(), v_cax.data());
    EXPECT_EQ(s_cax, v_cax);

    auto s_cr = random_cplx(rng, n);
    auto v_cr = s_cr;
    rt::kernels::scalar::caxpy_real(n, a, xr.data(), s_cr.data());
    rt::kernels::avx2::caxpy_real(n, a, xr.data(), v_cr.data());
    EXPECT_EQ(s_cr, v_cr);

    std::vector<double> s_re(n);
    std::vector<double> s_im(n);
    std::vector<double> v_re(n);
    std::vector<double> v_im(n);
    rt::kernels::scalar::split_complex(n, x.data(), s_re.data(), s_im.data());
    rt::kernels::avx2::split_complex(n, x.data(), v_re.data(), v_im.data());
    EXPECT_EQ(s_re, v_re);
    EXPECT_EQ(s_im, v_im);

    if (n > 0) {
      EXPECT_EQ(
          rt::kernels::scalar::phase_score_max(n, s_re.data(), s_im.data(), a.real(), a.imag()),
          rt::kernels::avx2::phase_score_max(n, v_re.data(), v_im.data(), a.real(), a.imag()));
    }
  }
}

TEST(Avx2KernelsTest, LcStepIsBitIdenticalAcrossBackends) {
  std::mt19937_64 rng(202);
  std::uniform_real_distribution<double> tau(1e-3, 5e-3);
  for (const std::size_t n : kSizes) {
    std::vector<double> tau_c(n);
    std::vector<double> tau_r(n);
    for (std::size_t i = 0; i < n; ++i) {
      tau_c[i] = tau(rng);
      tau_r[i] = tau(rng);
    }
    const LcBankParams p{tau_c.data(), tau_r.data(), 50e-3, 10e-3, 0.35};
    std::vector<double> drive(n);
    for (std::size_t i = 0; i < n; ++i) drive[i] = (i % 3 == 0) ? 1.0 : 0.0;
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<double> c0(n);
    std::vector<double> s0(n);
    for (std::size_t i = 0; i < n; ++i) {
      c0[i] = unit(rng);
      s0[i] = unit(rng);
    }
    auto sc = c0;
    auto ss = s0;
    auto vc = c0;
    auto vs = s0;
    // 25 us spans multiple RK4 substeps (10 us cap) plus a partial tail.
    rt::kernels::scalar::lc_step(n, 25e-6, drive.data(), sc.data(), ss.data(), p);
    rt::kernels::avx2::lc_step(n, 25e-6, drive.data(), vc.data(), vs.data(), p);
    EXPECT_EQ(sc, vc);
    EXPECT_EQ(ss, vs);
  }
}

TEST(Avx2KernelsTest, LcStepRunIsBitIdenticalAcrossBackends) {
  std::mt19937_64 rng(203);
  std::uniform_real_distribution<double> tau(1e-3, 5e-3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  // Drive patterns exercising every specialization in the AVX2 backend:
  // all released, all driven, and mixed groups.
  const auto drive_for = [](std::size_t i, int pattern) {
    switch (pattern) {
      case 0: return 0.0;
      case 1: return 1.0;
      default: return (i % 3 == 0) ? 1.0 : 0.0;
    }
  };
  for (const std::size_t n : kSizes) {
    for (int pattern = 0; pattern < 3; ++pattern) {
      std::vector<double> tau_c(n);
      std::vector<double> tau_r(n);
      std::vector<double> drive(n);
      std::vector<double> c0(n);
      std::vector<double> s0(n);
      for (std::size_t i = 0; i < n; ++i) {
        tau_c[i] = tau(rng);
        tau_r[i] = tau(rng);
        drive[i] = drive_for(i, pattern);
        c0[i] = unit(rng);
        s0[i] = unit(rng);
      }
      const LcBankParams p{tau_c.data(), tau_r.data(), 50e-3, 10e-3, 0.35};
      const std::size_t t_steps = 5;
      auto sc = c0;
      auto ss = s0;
      auto vc = c0;
      auto vs = s0;
      std::vector<double> s_rows(t_steps * n, -1.0);
      std::vector<double> v_rows(t_steps * n, -2.0);
      rt::kernels::scalar::lc_step_run(n, t_steps, 25e-6, drive.data(), sc.data(), ss.data(),
                                       s_rows.data(), p);
      rt::kernels::avx2::lc_step_run(n, t_steps, 25e-6, drive.data(), vc.data(), vs.data(),
                                     v_rows.data(), p);
      EXPECT_EQ(s_rows, v_rows);
      EXPECT_EQ(sc, vc);
      EXPECT_EQ(ss, vs);
    }
  }
}

TEST(Avx2KernelsTest, LcStepRunFixedPointSkipIsExact) {
  // A fully released bank at (c, s) = (0, 0) must stay exactly at zero --
  // the AVX2 backend fills these rows without stepping, and the result
  // has to match the scalar spec bit-for-bit (positive zeros).
  std::mt19937_64 rng(204);
  std::uniform_real_distribution<double> tau(1e-3, 5e-3);
  const std::size_t n = 9;  // full groups + a masked tail
  std::vector<double> tau_c(n);
  std::vector<double> tau_r(n);
  for (std::size_t i = 0; i < n; ++i) {
    tau_c[i] = tau(rng);
    tau_r[i] = tau(rng);
  }
  const LcBankParams p{tau_c.data(), tau_r.data(), 50e-3, 10e-3, 0.35};
  const std::vector<double> drive(n, 0.0);
  const std::size_t t_steps = 3;
  std::vector<double> sc(n, 0.0);
  std::vector<double> ss(n, 0.0);
  std::vector<double> vc(n, 0.0);
  std::vector<double> vs(n, 0.0);
  std::vector<double> s_rows(t_steps * n, -1.0);
  std::vector<double> v_rows(t_steps * n, -2.0);
  rt::kernels::scalar::lc_step_run(n, t_steps, 25e-6, drive.data(), sc.data(), ss.data(),
                                   s_rows.data(), p);
  rt::kernels::avx2::lc_step_run(n, t_steps, 25e-6, drive.data(), vc.data(), vs.data(),
                                 v_rows.data(), p);
  EXPECT_EQ(s_rows, v_rows);
  EXPECT_EQ(sc, vc);
  EXPECT_EQ(ss, vs);
  for (const double r : v_rows) {
    EXPECT_EQ(r, 0.0);
    EXPECT_FALSE(std::signbit(r));
  }
}

TEST(Avx2KernelsTest, DfeResidualIsBitIdenticalIncludingManyTerms) {
  std::mt19937_64 rng(203);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n_terms : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                    std::size_t{31}, std::size_t{32}, std::size_t{33}}) {
    for (const std::size_t n : kSizes) {
      const auto src = random_cplx(rng, n);
      std::vector<std::vector<Complex>> tmpls;
      std::vector<CTerm> terms;
      tmpls.reserve(n_terms);
      terms.reserve(n_terms);
      for (std::size_t t = 0; t < n_terms; ++t) {
        tmpls.push_back(random_cplx(rng, n));
        terms.push_back({tmpls.back().data(), Complex{dist(rng), dist(rng)}});
      }
      std::vector<Complex> s_out(n);
      std::vector<Complex> v_out(n);
      rt::kernels::scalar::dfe_residual(n, src.data(), s_out.data(), terms.data(), n_terms);
      rt::kernels::avx2::dfe_residual(n, src.data(), v_out.data(), terms.data(), n_terms);
      EXPECT_EQ(s_out, v_out) << "n=" << n << " terms=" << n_terms;
    }
  }
}

TEST(Avx2KernelsTest, ReductionsAgreeWithin1em12Relative) {
  std::mt19937_64 rng(204);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : kSizes) {
    const auto a = random_reals(rng, n);
    const auto b = random_reals(rng, n);
    const auto ca = random_cplx(rng, n);
    const auto cb = random_cplx(rng, n);
    expect_rel_close(rt::kernels::scalar::dot_real(n, a.data(), b.data()),
                     rt::kernels::avx2::dot_real(n, a.data(), b.data()));
    expect_rel_close(rt::kernels::scalar::sum_sq_real(n, a.data()),
                     rt::kernels::avx2::sum_sq_real(n, a.data()));
    expect_rel_close(rt::kernels::scalar::cdotc(n, ca.data(), cb.data()),
                     rt::kernels::avx2::cdotc(n, ca.data(), cb.data()));
    expect_rel_close(rt::kernels::scalar::cdotu(n, ca.data(), cb.data()),
                     rt::kernels::avx2::cdotu(n, ca.data(), cb.data()));
    expect_rel_close(rt::kernels::scalar::sum_norm_cplx(n, ca.data()),
                     rt::kernels::avx2::sum_norm_cplx(n, ca.data()));

    const CorrStats s_st = rt::kernels::scalar::corr_stats(n, ca.data(), cb.data());
    const CorrStats v_st = rt::kernels::avx2::corr_stats(n, ca.data(), cb.data());
    expect_rel_close(s_st.acc, v_st.acc);
    expect_rel_close(s_st.wsum, v_st.wsum);
    expect_rel_close(s_st.wenergy, v_st.wenergy);

    std::vector<double> rr(n);
    std::vector<double> ri(n);
    std::vector<double> xr(n);
    std::vector<double> xi(n);
    rt::kernels::scalar::split_complex(n, ca.data(), rr.data(), ri.data());
    rt::kernels::scalar::split_complex(n, cb.data(), xr.data(), xi.data());
    const CorrStats s_sp =
        rt::kernels::scalar::corr_stats_split(n, rr.data(), ri.data(), xr.data(), xi.data());
    const CorrStats v_sp =
        rt::kernels::avx2::corr_stats_split(n, rr.data(), ri.data(), xr.data(), xi.data());
    expect_rel_close(s_sp.acc, v_sp.acc);
    expect_rel_close(s_sp.wsum, v_sp.wsum);
    expect_rel_close(s_sp.wenergy, v_sp.wenergy);

    if (n > 0) {
      std::vector<double> taps_rev(a.rbegin(), a.rend());
      expect_rel_close(rt::kernels::scalar::fir_dot(n, a.data(), taps_rev.data(), ca.data()),
                       rt::kernels::avx2::fir_dot(n, a.data(), taps_rev.data(), ca.data()));
      expect_rel_close(
          rt::kernels::scalar::fir_dot_real(n, a.data(), taps_rev.data(), b.data()),
          rt::kernels::avx2::fir_dot_real(n, a.data(), taps_rev.data(), b.data()));
    }

    std::vector<std::vector<Complex>> tmpls;
    std::vector<CTerm> terms;
    const std::size_t n_terms = 5;
    tmpls.reserve(n_terms);
    terms.reserve(n_terms);
    for (std::size_t t = 0; t < n_terms; ++t) {
      tmpls.push_back(random_cplx(rng, n));
      terms.push_back({tmpls.back().data(), Complex{dist(rng), dist(rng)}});
    }
    expect_rel_close(rt::kernels::scalar::dfe_score(n, ca.data(), terms.data(), n_terms),
                     rt::kernels::avx2::dfe_score(n, ca.data(), terms.data(), n_terms));
  }
}

#else  // !RT_KERNELS_AVX2

TEST(ScalarDispatchTest, ScalarBackendIsSelected) {
  EXPECT_FALSE(rt::kernels::kAvx2);
  EXPECT_STREQ(rt::kernels::backend_name(), "scalar");
}

#endif  // RT_KERNELS_AVX2

}  // namespace
