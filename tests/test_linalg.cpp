// Unit + property tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <complex>

#include "common/rng.h"
#include "linalg/least_squares.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace rt::linalg {
namespace {

using Complex = std::complex<double>;

TEST(Matrix, BasicIndexingAndDims) {
  RealMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_THROW((void)m(2, 0), PreconditionError);
}

TEST(Matrix, MultiplyKnownResult) {
  RealMatrix a(2, 2, {1, 2, 3, 4});
  RealMatrix b(2, 2, {5, 6, 7, 8});
  const auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Rng rng(5);
  RealMatrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.gaussian();
  const auto i = RealMatrix::identity(4);
  EXPECT_NEAR((a * i - a).frobenius_norm(), 0.0, 1e-12);
  EXPECT_NEAR((i * a - a).frobenius_norm(), 0.0, 1e-12);
}

TEST(Matrix, AdjointConjugates) {
  ComplexMatrix m(1, 2, {Complex(1, 2), Complex(3, -4)});
  const auto a = m.adjoint();
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a(0, 0), Complex(1, -2));
  EXPECT_EQ(a(1, 0), Complex(3, 4));
}

TEST(Matrix, MatrixVectorProduct) {
  RealMatrix a(2, 3, {1, 0, 2, 0, 1, 3});
  const std::vector<double> v = {1, 2, 3};
  const auto y = a * std::span<const double>(v);
  EXPECT_DOUBLE_EQ(y[0], 7);
  EXPECT_DOUBLE_EQ(y[1], 11);
}

TEST(Qr, ReconstructsMatrix) {
  Rng rng(11);
  RealMatrix a(8, 4);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.gaussian();
  const auto [q, r] = qr_decompose(a);
  EXPECT_NEAR((q * r - a).frobenius_norm(), 0.0, 1e-10);
  // Q columns orthonormal.
  const auto qtq = q.adjoint() * q;
  EXPECT_NEAR((qtq - RealMatrix::identity(4)).frobenius_norm(), 0.0, 1e-10);
}

TEST(Qr, ComplexReconstruction) {
  Rng rng(13);
  ComplexMatrix a(6, 3);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = Complex(rng.gaussian(), rng.gaussian());
  const auto [q, r] = qr_decompose(a);
  EXPECT_NEAR((q * r - a).frobenius_norm(), 0.0, 1e-10);
  const auto qhq = q.adjoint() * q;
  EXPECT_NEAR((qhq - ComplexMatrix::identity(3)).frobenius_norm(), 0.0, 1e-10);
}

TEST(Qr, RankDeficientThrows) {
  RealMatrix a(3, 2, {1, 2, 2, 4, 3, 6});  // second column = 2 * first
  EXPECT_THROW((void)qr_decompose(a), PreconditionError);
}

TEST(LeastSquares, ExactSystemRecovered) {
  RealMatrix a(3, 3, {2, 0, 0, 0, 3, 0, 0, 0, 4});
  const std::vector<double> b = {2, 6, 12};
  const auto x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Fit y = 2x + 1 with noise-free data plus one outlier direction check:
  // the LS solution of consistent data is exact.
  RealMatrix a(5, 2);
  std::vector<double> b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double x = static_cast<double>(i);
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0;
  }
  const auto sol = solve_least_squares(a, b);
  EXPECT_NEAR(sol[0], 2.0, 1e-10);
  EXPECT_NEAR(sol[1], 1.0, 1e-10);
  EXPECT_NEAR(residual_norm(a, sol, b), 0.0, 1e-10);
}

TEST(LeastSquares, ComplexRegressionRecoversRotation) {
  // Model the preamble regression: Y = a X + b conj(X) + c.
  Rng rng(17);
  const Complex a_true = std::polar(1.3, 0.7);
  const Complex b_true(0.05, -0.02);
  const Complex c_true(0.4, 0.1);
  const std::size_t n = 64;
  ComplexMatrix design(n, 3);
  std::vector<Complex> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex x(rng.gaussian(), rng.gaussian());
    design(i, 0) = x;
    design(i, 1) = std::conj(x);
    design(i, 2) = Complex(1, 0);
    y[i] = a_true * x + b_true * std::conj(x) + c_true;
  }
  const auto sol = solve_least_squares(design, y);
  EXPECT_NEAR(std::abs(sol[0] - a_true), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(sol[1] - b_true), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(sol[2] - c_true), 0.0, 1e-10);
}

TEST(Svd, DiagonalMatrix) {
  RealMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 2.0;
  a(2, 2) = 1.0;
  const auto s = svd(a);
  ASSERT_EQ(s.sigma.size(), 3u);
  EXPECT_NEAR(s.sigma[0], 3.0, 1e-10);
  EXPECT_NEAR(s.sigma[1], 2.0, 1e-10);
  EXPECT_NEAR(s.sigma[2], 1.0, 1e-10);
}

TEST(Svd, ReconstructsRandomMatrix) {
  Rng rng(23);
  RealMatrix a(20, 6);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.gaussian();
  const auto s = svd(a);
  // Rebuild A = U diag(sigma) V^T.
  RealMatrix us = s.u;
  for (std::size_t c = 0; c < s.sigma.size(); ++c)
    for (std::size_t r = 0; r < us.rows(); ++r) us(r, c) *= s.sigma[c];
  const auto rebuilt = us * s.v.transpose();
  EXPECT_NEAR((rebuilt - a).frobenius_norm() / a.frobenius_norm(), 0.0, 1e-9);
  // U, V orthonormal.
  EXPECT_NEAR((s.u.adjoint() * s.u - RealMatrix::identity(6)).frobenius_norm(), 0.0, 1e-9);
  EXPECT_NEAR((s.v.adjoint() * s.v - RealMatrix::identity(6)).frobenius_norm(), 0.0, 1e-9);
}

TEST(Svd, SingularValuesSortedDescending) {
  Rng rng(29);
  RealMatrix a(15, 5);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.gaussian();
  const auto s = svd(a);
  for (std::size_t i = 1; i < s.sigma.size(); ++i) EXPECT_LE(s.sigma[i], s.sigma[i - 1] + 1e-12);
}

TEST(Svd, TruncatedBasisCapturesLowRankStructure) {
  // Build a rank-2 matrix plus tiny noise; the top-2 basis must capture
  // almost all the energy (this is exactly the offline-training use case).
  Rng rng(31);
  std::vector<double> u1(40);
  std::vector<double> u2(40);
  for (auto& v : u1) v = rng.gaussian();
  for (auto& v : u2) v = rng.gaussian();
  RealMatrix e(40, 10);
  for (std::size_t c = 0; c < 10; ++c) {
    const double a1 = rng.gaussian();
    const double a2 = rng.gaussian();
    for (std::size_t r = 0; r < 40; ++r)
      e(r, c) = a1 * u1[r] + a2 * u2[r] + 1e-8 * rng.gaussian();
  }
  const auto s = svd(e);
  EXPECT_GT(s.sigma[1], 1e-4);
  EXPECT_LT(s.sigma[2], 1e-5);
  const auto basis = truncated_basis(s, 2);
  EXPECT_EQ(basis.cols(), 2u);
  // Projecting any column of E onto the basis reproduces it.
  const auto col = e.col(3);
  const auto coeffs = basis.adjoint() * std::span<const double>(col);
  const auto approx = basis * std::span<const double>(coeffs);
  double err = 0.0;
  for (std::size_t r = 0; r < 40; ++r) err += (approx[r] - col[r]) * (approx[r] - col[r]);
  EXPECT_LT(std::sqrt(err), 1e-6);
}

}  // namespace
}  // namespace rt::linalg
