// Tests for the retroturbo:: public facade.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/retroturbo.h"

namespace retroturbo {
namespace {

/// Fast facade config for tests: low rate preset overridden with the small
/// test PHY, short preamble, good SNR.
LinkConfig fast_config() {
  LinkConfig cfg;
  rt::phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  cfg.custom_phy = p;
  cfg.snr_override_db = 35.0;
  return cfg;
}

TEST(Facade, VersionAndPresets) {
  EXPECT_FALSE(version().empty());
  EXPECT_NEAR(phy_params_for(RatePreset::k8kbps).data_rate_bps(), 8000.0, 1e-9);
  EXPECT_NEAR(phy_params_for(RatePreset::k32kbps).data_rate_bps(), 32000.0, 1e-9);
  EXPECT_NEAR(phy_params_for(RatePreset::k1kbps).data_rate_bps(), 1000.0, 1e-9);
}

TEST(Facade, SendBytesRoundTrip) {
  Link link(fast_config());
  rt::Rng rng(5);
  const auto payload = rng.bytes(24);
  const auto r = link.send_bytes(payload);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.received, payload);
  EXPECT_EQ(r.attempts, 1);
}

TEST(Facade, CodedLinkConfig) {
  auto cfg = fast_config();
  cfg.rs_n = 15;
  cfg.rs_k = 11;
  cfg.snr_override_db = 30.0;
  Link link(cfg);
  rt::Rng rng(6);
  const auto payload = rng.bytes(16);
  const auto r = link.send_bytes(payload);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.received, payload);
}

TEST(Facade, MeasureBerReportsStats) {
  Link link(fast_config());
  const auto stats = link.measure_ber(2, 8);
  EXPECT_EQ(stats.packets, 2);
  EXPECT_EQ(stats.total_bits, 2u * 64u);
  EXPECT_EQ(stats.bit_errors, 0u);
}

TEST(Facade, SnrFollowsDeployment) {
  auto cfg = fast_config();
  cfg.snr_override_db.reset();
  cfg.distance_m = 7.5;
  Link link(cfg);
  EXPECT_NEAR(link.snr_db(), 28.0, 1e-9);  // narrow-beam anchor point
}

TEST(Facade, LinkConfigDefaultsAreUsable) {
  // The default 8 Kbps config must at least construct and report rates
  // (constructing the full L=8 stack is the expensive real configuration).
  const LinkConfig cfg;
  EXPECT_EQ(cfg.rate, RatePreset::k8kbps);
  EXPECT_NEAR(phy_params_for(cfg.rate).data_rate_bps(), 8000.0, 1e-9);
}

}  // namespace
}  // namespace retroturbo
