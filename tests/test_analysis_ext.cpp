// Tests for the analysis extensions (union bound) and the multi-tag
// collision study.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "analysis/union_bound.h"
#include "common/units.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/link_sim.h"
#include "sim/multi_tag.h"

namespace rt {
namespace {

TEST(UnionBound, QFunctionSanity) {
  EXPECT_NEAR(analysis::q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(analysis::q_function(1.0), 0.1587, 1e-3);
  EXPECT_LT(analysis::q_function(5.0), 3e-7);
}

TEST(UnionBound, SpectrumContainsSingleFlipEvents) {
  const auto table = analysis::characterize_lcm(lcm::LcTimings{}, 0.5e-3, 40e3, 6);
  const analysis::DsmPqamScheme scheme(2, 1, 0.5e-3, 2, true, 2);
  const auto spec = analysis::distance_spectrum(table, scheme, 40e3, 4);
  ASSERT_FALSE(spec.lines.empty());
  int total = 0;
  for (const auto& l : spec.lines) {
    EXPECT_GT(l.distance, 0.0);
    total += l.multiplicity;
  }
  EXPECT_EQ(total, 4 * scheme.data_bits());  // every flip of every base word
}

TEST(UnionBound, BerDecreasesWithSnrAndMatchesWaterfallShape) {
  const auto table = analysis::characterize_lcm(lcm::LcTimings{}, 0.5e-3, 40e3, 6);
  const analysis::DsmPqamScheme scheme(2, 1, 0.5e-3, 2, true, 2);
  const auto spec = analysis::distance_spectrum(table, scheme, 40e3, 4);
  double prev = 1.0;
  for (double sigma = 1.0; sigma > 0.01; sigma *= 0.6) {
    const double ber = analysis::union_bound_ber(spec, sigma);
    EXPECT_LE(ber, prev + 1e-12);
    prev = ber;
  }
  EXPECT_LT(prev, 1e-6);  // waterfall reaches deep BER at low noise
  EXPECT_THROW((void)analysis::union_bound_ber(spec, 0.0), PreconditionError);
}

class MultiTagTest : public ::testing::Test {
 protected:
  phy::PhyParams params() {
    phy::PhyParams p;
    p.dsm_order = 4;
    p.bits_per_axis = 1;
    p.slot_s = rt::ms(1.0);
    p.charge_s = rt::ms(0.5);
    p.preamble_slots = 32;
    p.equalizer_branches = 8;
    return p;
  }
};

TEST_F(MultiTagTest, ConcurrentTransmissionBreaksSingleTagDemodulation) {
  // Two tags answering at once (the collision TDMA exists to avoid): the
  // single-tag receiver must degrade badly versus the clean case.
  const auto p = params();
  const phy::Modulator mod(p);
  Rng rng(3);
  const auto bits_a = rng.bits(64);
  const auto bits_b = rng.bits(64);
  const auto pkt_a = mod.modulate(bits_a);
  const auto pkt_b = mod.modulate(bits_b);

  const auto demod_ber = [&](const std::vector<sim::ConcurrentTag>& tags) {
    Rng noise(9);
    const auto rx = sim::superimpose_tags(p, tags, pkt_a.duration_s + p.symbol_duration_s(),
                                          35.0, noise);
    const phy::Demodulator demod(p, sim::train_offline_model(p, p.tag_config()));
    phy::DemodOptions opts;
    opts.search_limit = 2 * p.samples_per_slot();
    const auto res = demod.demodulate(rx, pkt_a.layout.payload_slots, opts);
    if (!res.preamble_found) return 1.0;
    std::size_t errors = 0;
    for (std::size_t i = 0; i < bits_a.size(); ++i) errors += res.bits[i] != bits_a[i];
    return static_cast<double>(errors) / static_cast<double>(bits_a.size());
  };

  sim::ConcurrentTag wanted{p.tag_config(), sim::Pose{}, 1.0, pkt_a.firings};
  const double clean = demod_ber({wanted});
  EXPECT_LT(clean, 0.01);

  sim::ConcurrentTag interferer{p.tag_config(), sim::Pose{2.0, rt::deg_to_rad(30.0), 0.0}, 0.8,
                                pkt_b.firings};
  interferer.tag.seed = 77;
  const double collided = demod_ber({wanted, interferer});
  EXPECT_GT(collided, 10.0 * std::max(clean, 0.005))
      << "a concurrent equal-power tag must corrupt the uplink";
}

TEST_F(MultiTagTest, SeededSuperimposeIsAPureFunctionOfItsSeed) {
  // Repeat-run property: the pure-seeded overload must reproduce the
  // waveform sample-for-sample, and a different noise seed must not.
  const auto p = params();
  const phy::Modulator mod(p);
  Rng rng(21);
  const auto pkt = mod.modulate(rng.bits(16));
  const std::vector<sim::ConcurrentTag> tags = {
      {p.tag_config(), sim::Pose{}, 1.0, pkt.firings}};
  const double dur = pkt.duration_s + p.symbol_duration_s();
  const auto a = sim::superimpose_tags(p, tags, dur, 30.0, std::uint64_t{42});
  const auto b = sim::superimpose_tags(p, tags, dur, 30.0, std::uint64_t{42});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "sample " << i;
  const auto c = sim::superimpose_tags(p, tags, dur, 30.0, std::uint64_t{43});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) any_diff = a[i] != c[i];
  EXPECT_TRUE(any_diff) << "a different noise seed must change the waveform";
}

TEST_F(MultiTagTest, SeededOverloadMatchesExplicitRng) {
  // The seeded form is sugar for drawing from a fresh Rng(seed): the two
  // entry points must stay bit-identical so seeded parallel campaigns
  // reproduce exactly what the serial Rng& path computed.
  const auto p = params();
  const phy::Modulator mod(p);
  Rng rng(22);
  const auto pkt = mod.modulate(rng.bits(16));
  const std::vector<sim::ConcurrentTag> tags = {
      {p.tag_config(), sim::Pose{}, 1.0, pkt.firings}};
  const double dur = pkt.duration_s + p.symbol_duration_s();
  Rng noise(1234);
  const auto via_rng = sim::superimpose_tags(p, tags, dur, 30.0, noise);
  const auto via_seed = sim::superimpose_tags(p, tags, dur, 30.0, std::uint64_t{1234});
  ASSERT_EQ(via_rng.size(), via_seed.size());
  for (std::size_t i = 0; i < via_rng.size(); ++i)
    ASSERT_EQ(via_rng[i], via_seed[i]) << "sample " << i;
}

TEST_F(MultiTagTest, CollisionSlotSeedsPartitionTrialsAndStreams) {
  // Mirror of test_runtime's NoCollisionsOverAPacketGrid: every
  // (trial, stream) slot of a study must get its own seed, and the
  // layout must be a pure function of its indices.
  std::set<std::uint64_t> seen;
  const std::uint64_t bases[] = {0, 1, 99, 0xdeadbeef};
  for (const std::uint64_t base : bases)
    for (std::uint64_t trial = 0; trial < 64; ++trial)
      for (std::uint64_t stream = 0; stream < 3; ++stream)
        seen.insert(sim::collision_slot_seed(base, trial, stream));
  EXPECT_EQ(seen.size(), std::size(bases) * 64 * 3);
  EXPECT_EQ(sim::collision_slot_seed(99, 7, 2), sim::collision_slot_seed(99, 7, 2));
}

TEST_F(MultiTagTest, WeakInterfererOnlyDegradesGracefully) {
  // A far-away tag 20 dB down: the link survives (the directionality
  // argument for why VLBC collisions are rarer than RF ones).
  const auto p = params();
  const phy::Modulator mod(p);
  Rng rng(5);
  const auto bits_a = rng.bits(64);
  const auto pkt_a = mod.modulate(bits_a);
  const auto pkt_b = mod.modulate(rng.bits(64));
  sim::ConcurrentTag wanted{p.tag_config(), sim::Pose{}, 1.0, pkt_a.firings};
  sim::ConcurrentTag weak{p.tag_config(), sim::Pose{}, 0.1, pkt_b.firings};
  weak.tag.seed = 55;
  Rng noise(11);
  const auto rx = sim::superimpose_tags(p, {wanted, weak},
                                        pkt_a.duration_s + p.symbol_duration_s(), 35.0, noise);
  const phy::Demodulator demod(p, sim::train_offline_model(p, p.tag_config()));
  phy::DemodOptions opts;
  opts.search_limit = 2 * p.samples_per_slot();
  const auto res = demod.demodulate(rx, pkt_a.layout.payload_slots, opts);
  ASSERT_TRUE(res.preamble_found);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits_a.size(); ++i) errors += res.bits[i] != bits_a[i];
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(bits_a.size()), 0.05);
}

}  // namespace
}  // namespace rt
