// Tests for the stage-based packet pipeline: workspace reuse must be
// bit-identical to fresh-workspace runs (across packets, simulators and
// channel switches), and the demodulator's oracle-template and descramble
// paths must behave identically through the workspace entry points.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/link_sim.h"
#include "sim/packet_workspace.h"

namespace rt::sim {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

SimOptions fast_options() {
  SimOptions o;
  o.offline_yaws_deg = {0.0};
  return o;
}

ChannelConfig fast_channel(double snr_db, std::uint64_t noise_seed) {
  ChannelConfig cfg;
  cfg.snr_override_db = snr_db;
  cfg.noise_seed = noise_seed;
  return cfg;
}

void expect_same_outcome(const LinkSimulator::PacketOutcome& a,
                         const LinkSimulator::PacketOutcome& b) {
  EXPECT_EQ(a.preamble_found, b.preamble_found);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.bits, b.bits);
}

TEST(PacketPipeline, WorkspaceReuseMatchesFreshWorkspacePerPacket) {
  const auto p = fast_params();
  const LinkSimulator sim(p, p.tag_config(), fast_channel(12.0, 5), fast_options());
  PacketWorkspace reused;
  for (std::uint64_t i = 0; i < 6; ++i) {
    PacketWorkspace fresh;
    const auto a = sim.run_packet(i, 8, fresh);
    const auto b = sim.run_packet(i, 8, reused);
    expect_same_outcome(a, b);
    EXPECT_EQ(fresh.result.bits, reused.result.bits);
  }
}

TEST(PacketPipeline, DirtyWorkspaceDoesNotLeakAcrossPackets) {
  const auto p = fast_params();
  const LinkSimulator sim(p, p.tag_config(), fast_channel(12.0, 5), fast_options());
  PacketWorkspace ws;
  // Dirty the workspace with a different, larger packet first; replaying
  // packet 0 must still match a clean run exactly.
  (void)sim.run_packet(3, 16, ws);
  const auto dirty = sim.run_packet(0, 8, ws);
  PacketWorkspace clean;
  const auto ref = sim.run_packet(0, 8, clean);
  expect_same_outcome(ref, dirty);
  EXPECT_EQ(clean.result.bits, ws.result.bits);
}

TEST(PacketPipeline, WorkspaceFollowsChannelSwitches) {
  const auto p = fast_params();
  const auto tag = p.tag_config();
  const LinkSimulator sim_a(p, tag, fast_channel(12.0, 5), fast_options());
  const LinkSimulator sim_b(p, tag, fast_channel(7.0, 9), fast_options());
  // One workspace bounced between two simulators must reproduce what each
  // simulator computes alone (the cached realization rebuilds on id
  // mismatch, never reusing the wrong channel's tag state).
  PacketWorkspace shared;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto a_shared = sim_a.run_packet(i, 8, shared);
    const auto b_shared = sim_b.run_packet(i, 8, shared);
    PacketWorkspace own_a;
    PacketWorkspace own_b;
    expect_same_outcome(sim_a.run_packet(i, 8, own_a), a_shared);
    expect_same_outcome(sim_b.run_packet(i, 8, own_b), b_shared);
  }
}

TEST(PacketPipeline, CompatRunPacketStillFillsReceivedBits) {
  const auto p = fast_params();
  const LinkSimulator sim(p, p.tag_config(), fast_channel(30.0, 5), fast_options());
  const auto out = sim.run_packet(0, 8);
  ASSERT_TRUE(out.preamble_found);
  ASSERT_EQ(out.received_bits.size(), out.bits);
  // The workspace form leaves received_bits empty but keeps the payload in
  // ws.result.bits.
  PacketWorkspace ws;
  const auto ws_out = sim.run_packet(0, 8, ws);
  EXPECT_TRUE(ws_out.received_bits.empty());
  ASSERT_GE(ws.result.bits.size(), out.bits);
  for (std::size_t i = 0; i < out.received_bits.size(); ++i)
    EXPECT_EQ(out.received_bits[i], ws.result.bits[i]) << "bit " << i;
}

TEST(PacketPipeline, OracleTemplatePathMatchesThroughWorkspace) {
  auto p = fast_params();
  auto opts = fast_options();
  opts.oracle_templates = true;
  opts.online_training = false;
  const LinkSimulator sim(p, p.tag_config(), fast_channel(25.0, 3), opts);
  PacketWorkspace ws;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto a = sim.run_packet(i, 8);
    const auto b = sim.run_packet(i, 8, ws);
    expect_same_outcome(a, b);
  }
  // At this SNR the oracle receiver should actually decode.
  const auto healthy = sim.run_packet(0, 8, ws);
  ASSERT_TRUE(healthy.preamble_found);
  EXPECT_EQ(healthy.bit_errors, 0u);
}

TEST(PacketPipeline, ModulateIntoReplaysPrefixAcrossPayloads) {
  const auto p = fast_params();
  const phy::Modulator mod(p);
  phy::ModulatorWorkspace ws;
  phy::PacketSchedule reused;
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    const auto bits = rng.bits(trial == 2 ? 48 : 16);  // includes a size change
    const auto ref = mod.modulate(bits);
    mod.modulate_into(bits, ws, reused);
    ASSERT_EQ(ref.firings.size(), reused.firings.size());
    for (std::size_t i = 0; i < ref.firings.size(); ++i) {
      EXPECT_EQ(ref.firings[i].time_s, reused.firings[i].time_s);
      EXPECT_EQ(ref.firings[i].module, reused.firings[i].module);
      EXPECT_EQ(ref.firings[i].level_i, reused.firings[i].level_i);
      EXPECT_EQ(ref.firings[i].level_q, reused.firings[i].level_q);
    }
    ASSERT_EQ(ref.payload_symbols.size(), reused.payload_symbols.size());
    for (std::size_t i = 0; i < ref.payload_symbols.size(); ++i) {
      EXPECT_EQ(ref.payload_symbols[i].level_i, reused.payload_symbols[i].level_i);
      EXPECT_EQ(ref.payload_symbols[i].level_q, reused.payload_symbols[i].level_q);
    }
    EXPECT_EQ(ref.payload_symbol_count, reused.payload_symbol_count);
    EXPECT_EQ(ref.duration_s, reused.duration_s);
  }
}

TEST(PacketPipeline, DescramblePathRoundTripsThroughDemodOptions) {
  // descramble=false must return the raw (still scrambled) bit stream:
  // descrambling it by hand recovers exactly what descramble=true returns.
  const auto p = fast_params();
  const auto tag = p.tag_config();
  const phy::Modulator mod(p);
  Rng rng(13);
  const auto bits = rng.bits(16);
  const auto pkt = mod.modulate(bits);
  Channel ch(p, tag, fast_channel(40.0, 2));
  const auto rx = ch.noiseless_source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  const phy::Demodulator demod(p, train_offline_model(p, tag, {0.0}));
  phy::DemodOptions scrambled_opts;
  scrambled_opts.descramble = false;
  const auto raw = demod.demodulate(rx, pkt.layout.payload_slots, scrambled_opts);
  const auto cooked = demod.demodulate(rx, pkt.layout.payload_slots, {});
  ASSERT_TRUE(raw.preamble_found);
  ASSERT_TRUE(cooked.preamble_found);
  EXPECT_EQ(mod.descramble(raw.bits), cooked.bits);
  EXPECT_NE(raw.bits, cooked.bits);  // the scrambler is not the identity here
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(cooked.bits[i], bits[i]) << i;
}

}  // namespace
}  // namespace rt::sim
