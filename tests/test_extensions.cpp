// Tests for the extension modules: SNR estimation, AGC, ADC quantization,
// Stokes/Mueller polarization calculus, the downlink/inventory protocol,
// the block interleaver and the convolutional code.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/convolutional.h"
#include "coding/interleaver.h"
#include "common/rng.h"
#include "common/units.h"
#include "frontend/adc.h"
#include "frontend/agc.h"
#include "mac/inventory.h"
#include "optics/polarization.h"
#include "optics/stokes.h"
#include "signal/awgn.h"
#include "signal/snr_estimator.h"

namespace rt {
namespace {

// ----------------------------------------------------------- SNR est --

TEST(SnrEstimator, ReferenceBasedEstimateIsAccurate) {
  Rng rng(3);
  const std::size_t n = 20000;
  std::vector<sig::Complex> ref(n);
  for (auto& v : ref) v = sig::Complex(rng.gaussian(), rng.gaussian());
  for (const double snr_db : {5.0, 15.0, 30.0}) {
    double p_sig = 0.0;
    for (const auto& v : ref) p_sig += std::norm(v);
    p_sig /= static_cast<double>(n);
    const double sigma = std::sqrt(p_sig / rt::from_db(snr_db) / 2.0);
    std::vector<sig::Complex> rx(n);
    for (std::size_t i = 0; i < n; ++i)
      rx[i] = ref[i] + sig::Complex(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma));
    const auto est = sig::estimate_snr(rx, ref);
    EXPECT_NEAR(est.snr_db, snr_db, 0.3) << snr_db;
  }
}

TEST(SnrEstimator, BlindEstimateOnConstantEnvelope) {
  Rng rng(5);
  std::vector<sig::Complex> rx(50000, sig::Complex(2.0, 1.0));
  const double p_sig = std::norm(sig::Complex(2.0, 1.0));
  const double snr_db = 12.0;
  const double sigma = std::sqrt(p_sig / rt::from_db(snr_db) / 2.0);
  for (auto& v : rx) v += sig::Complex(rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma));
  const auto est = sig::estimate_snr_blind(rx);
  EXPECT_NEAR(est.snr_db, snr_db, 0.4);
}

TEST(SnrEstimator, Validation) {
  const std::vector<sig::Complex> a(4), b(5);
  EXPECT_THROW((void)sig::estimate_snr(a, b), PreconditionError);
  EXPECT_THROW((void)sig::estimate_snr_blind(std::span<const sig::Complex>(a)), PreconditionError);
}

// ---------------------------------------------------------------- AGC --

TEST(Agc, ConvergesToTargetRms) {
  frontend::AgcConfig cfg;
  cfg.target_rms = 1.0;
  frontend::Agc agc(cfg);
  sig::IqWaveform in(40e3, 8000);
  for (auto& v : in.samples) v = sig::Complex(0.02, 0.0);  // 34 dB below target
  const auto out = agc.apply(in);
  // After convergence, the tail of the output sits at the target RMS.
  double p = 0.0;
  for (std::size_t i = out.size() - 500; i < out.size(); ++i) p += std::norm(out[i]);
  EXPECT_NEAR(std::sqrt(p / 500.0), 1.0, 0.05);
}

TEST(Agc, SlewLimitBoundsPerWindowChange) {
  frontend::AgcConfig cfg;
  cfg.max_step = 0.1;
  frontend::Agc agc(cfg);
  sig::IqWaveform in(40e3, 400);  // exactly two 5 ms windows
  for (auto& v : in.samples) v = sig::Complex(1e-3, 0.0);
  (void)agc.apply(in);
  // Two windows => gain grew by at most (1.1)^2.
  EXPECT_LE(agc.gain(), 1.1 * 1.1 + 1e-9);
}

TEST(Agc, GainClampedToConfiguredRange) {
  frontend::AgcConfig cfg;
  cfg.max_gain = 4.0;
  cfg.max_step = 0.9;
  frontend::Agc agc(cfg);
  sig::IqWaveform in(40e3, 40000);
  for (auto& v : in.samples) v = sig::Complex(1e-6, 0.0);
  (void)agc.apply(in);
  EXPECT_LE(agc.gain(), 4.0 + 1e-12);
  EXPECT_THROW(agc.reset(100.0), PreconditionError);
}

// ---------------------------------------------------------------- ADC --

TEST(Adc, QuantizesToGridAndClips) {
  frontend::Adc adc(12, 1.0);
  EXPECT_NEAR(adc.quantize(0.5), 0.5, adc.step());
  EXPECT_DOUBLE_EQ(adc.quantize(2.0), adc.quantize(1.0));  // clipped at the rail
  EXPECT_DOUBLE_EQ(adc.quantize(-5.0), adc.quantize(-1.0));
  EXPECT_NEAR(adc.ideal_snr_db(), 74.0, 0.1);
}

TEST(Adc, QuantizationNoiseMatchesResolution) {
  Rng rng(7);
  frontend::Adc adc(12, 1.0);
  sig::Waveform in(40e3, 50000);
  for (auto& v : in.samples) v = rng.uniform(-0.9, 0.9);
  const auto out = adc.convert(in);
  double err = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) err += (out[i] - in[i]) * (out[i] - in[i]);
  err /= static_cast<double>(in.size());
  // Uniform quantization noise variance = step^2 / 12.
  EXPECT_NEAR(err, adc.step() * adc.step() / 12.0, 0.2 * adc.step() * adc.step() / 12.0);
}

TEST(Adc, TwelveBitsTransparentToPhySignals) {
  // 12-bit conversion must not disturb a signal that uses a healthy chunk
  // of the range: quantization SNR ~74 dB >> link SNR.
  frontend::Adc adc(12, 4.0);
  sig::IqWaveform w(40e3, 1000);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = {2.0 * std::sin(0.01 * static_cast<double>(i)),
            2.0 * std::cos(0.013 * static_cast<double>(i))};
  const auto q = adc.convert(w);
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    err += std::norm(q[i] - w[i]);
    ref += std::norm(w[i]);
  }
  EXPECT_LT(rt::to_db(err / ref), -60.0);
}

// ------------------------------------------------------------- Stokes --

TEST(Stokes, MalusLawEmergesFromMuellerCalculus) {
  for (double in_angle = 0.0; in_angle < rt::kPi; in_angle += 0.2) {
    for (double pol = 0.0; pol < rt::kPi; pol += 0.25) {
      const auto s = optics::Stokes::linear(1.0, in_angle);
      const double direct = optics::malus_intensity({1.0, in_angle, 1.0}, pol);
      EXPECT_NEAR(optics::detect_through_polarizer(s, pol), direct, 1e-12);
    }
  }
}

TEST(Stokes, PdrReadingMatchesChannelCoefficient) {
  // The scalar fast-path coefficient cos 2(theta_t - theta_r) is exactly
  // the Mueller-calculus PDR reading.
  for (double t = 0.0; t < rt::kPi; t += 0.17) {
    for (double r = 0.0; r < rt::kPi; r += 0.23) {
      const auto s = optics::Stokes::linear(1.0, t);
      EXPECT_NEAR(optics::pdr_reading(s, r), optics::channel_coefficient(t, r), 1e-12);
    }
  }
}

TEST(Stokes, LcCellMixtureReproducesPixelModel) {
  // The pixel model's (2c - 1) swing on the e^{j2 theta_b} axis is the
  // incoherent mixture of identity and 90deg rotation.
  const double theta_b = rt::deg_to_rad(30.0);
  for (double c = 0.0; c <= 1.0; c += 0.1) {
    const auto cell = optics::Mueller::lc_cell(c);
    const auto out = cell * optics::Stokes::linear(1.0, theta_b);
    // PDR reading at 0 and 45deg = complex contribution (Re, Im).
    const double re = optics::pdr_reading(out, 0.0);
    const double im = optics::pdr_reading(out, rt::deg_to_rad(45.0));
    const auto expect = (2.0 * c - 1.0) * optics::pdr_response(theta_b);
    EXPECT_NEAR(re, expect.real(), 1e-12) << c;
    EXPECT_NEAR(im, expect.imag(), 1e-12) << c;
  }
}

TEST(Stokes, UnpolarizedLightGivesZeroPdr) {
  const auto amb = optics::Stokes::unpolarized(123.0);
  for (double r = 0.0; r < rt::kPi; r += 0.3) EXPECT_NEAR(optics::pdr_reading(amb, r), 0.0, 1e-9);
  EXPECT_NEAR(amb.degree_of_polarization(), 0.0, 1e-12);
}

TEST(Stokes, QuarterWavePlateMakesCircular) {
  // Linear 45deg light through a QWP at 0deg becomes circular (V = +-I).
  const auto in = optics::Stokes::linear(1.0, rt::deg_to_rad(45.0));
  const auto out = optics::Mueller::retarder(rt::kPi / 2.0, 0.0) * in;
  EXPECT_NEAR(std::abs(out.v), 1.0, 1e-12);
  EXPECT_NEAR(out.q, 0.0, 1e-12);
  EXPECT_NEAR(out.degree_of_polarization(), 1.0, 1e-12);
}

TEST(Stokes, RotatorShiftsLinearAngle) {
  const auto in = optics::Stokes::linear(2.0, rt::deg_to_rad(10.0));
  const auto out = optics::Mueller::rotator(rt::deg_to_rad(35.0)) * in;
  EXPECT_NEAR(rt::rad_to_deg(out.linear_angle_rad()), 45.0, 1e-9);
  EXPECT_NEAR(out.i, 2.0, 1e-12);  // rotation is lossless
}

// ----------------------------------------------------- downlink/inv --

TEST(Downlink, TagStateMachineHappyPath) {
  Rng rng(11);
  mac::TagProtocol tag(7, rng);
  EXPECT_EQ(tag.state(), mac::TagState::kReady);
  // Query with 1 slot: the tag must reply immediately.
  const auto r = tag.on_command({mac::DownlinkType::kQuery, 0, 1, 0, 0});
  EXPECT_TRUE(r.replies_with_id);
  EXPECT_EQ(tag.state(), mac::TagState::kReplied);
  (void)tag.on_command({mac::DownlinkType::kAck, 7, 0, 0, 0});
  EXPECT_EQ(tag.state(), mac::TagState::kInventoried);
  // Rate assignment sticks; polls produce data.
  (void)tag.on_command({mac::DownlinkType::kRateAssign, 7, 0, 3, 1});
  EXPECT_EQ(tag.rate_code(), 3);
  EXPECT_TRUE(tag.on_command({mac::DownlinkType::kPoll, 7, 0, 0, 0}).sends_data);
  // Commands addressed to other tags are ignored.
  EXPECT_FALSE(tag.on_command({mac::DownlinkType::kPoll, 8, 0, 0, 0}).sends_data);
}

TEST(Downlink, UnackedTagRejoinsNextFrame) {
  Rng rng(13);
  mac::TagProtocol tag(9, rng);
  (void)tag.on_command({mac::DownlinkType::kQuery, 0, 1, 0, 0});
  EXPECT_EQ(tag.state(), mac::TagState::kReplied);
  // No Ack (collision); QueryRep moves it back to ready.
  (void)tag.on_command({mac::DownlinkType::kQueryRep, 0, 0, 0, 0});
  EXPECT_EQ(tag.state(), mac::TagState::kReady);
}

TEST(Inventory, DiscoversEveryTagViaCommands) {
  Rng rng(17);
  std::vector<mac::TagProtocol> tags;
  std::vector<double> snrs;
  for (std::uint8_t i = 1; i <= 25; ++i) {
    tags.emplace_back(i, rng);
    snrs.push_back(20.0 + i);
  }
  const auto table = mac::RateTable::paper_default();
  const mac::GoodputModel model;
  const auto out = mac::run_inventory(tags, snrs, table, model, {}, rng);
  EXPECT_EQ(out.discovered.size(), tags.size());
  for (const auto& t : tags) EXPECT_EQ(t.state(), mac::TagState::kInventoried);
  EXPECT_GT(out.collisions, 0);  // 25 tags in adaptive frames collide sometimes
  // Every tag got a rate assignment.
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const auto& opt = model.best_option(table, snrs[i]);
    EXPECT_EQ(tags[i].rate_code(), static_cast<std::uint8_t>(&opt - table.all().data())) << i;
  }
}

TEST(Inventory, SurvivesDownlinkLoss) {
  Rng rng(19);
  std::vector<mac::TagProtocol> tags;
  std::vector<double> snrs;
  for (std::uint8_t i = 1; i <= 10; ++i) {
    tags.emplace_back(i, rng);
    snrs.push_back(30.0);
  }
  mac::InventoryConfig cfg;
  cfg.downlink_loss = 0.1;
  const auto out = mac::run_inventory(tags, snrs, mac::RateTable::paper_default(),
                                      mac::GoodputModel{}, cfg, rng);
  EXPECT_EQ(out.discovered.size(), tags.size());
}

// -------------------------------------------------------- interleaver --

TEST(Interleaver, RoundTripIdentity) {
  coding::BlockInterleaver il(8, 16);
  Rng rng(23);
  const auto data = rng.bytes(il.block_size() * 3);
  const auto mixed = il.interleave(std::span<const std::uint8_t>(data));
  EXPECT_EQ(il.deinterleave(std::span<const std::uint8_t>(mixed)), data);
}

TEST(Interleaver, SpreadsBursts) {
  coding::BlockInterleaver il(8, 16);
  // A burst of 8 consecutive symbols in the interleaved domain lands in 8
  // distinct rows after deinterleaving => <= 1 error per row.
  std::vector<std::uint8_t> clean(il.block_size(), 0);
  auto corrupted = il.interleave(std::span<const std::uint8_t>(clean));
  for (std::size_t i = 40; i < 48; ++i) corrupted[i] = 1;
  const auto restored = il.deinterleave(std::span<const std::uint8_t>(corrupted));
  // Count errors per row of the original layout.
  for (std::size_t r = 0; r < 8; ++r) {
    int row_errors = 0;
    for (std::size_t c = 0; c < 16; ++c) row_errors += restored[r * 16 + c];
    EXPECT_LE(row_errors, 1) << "row " << r;
  }
}

TEST(Interleaver, RejectsPartialBlocks) {
  coding::BlockInterleaver il(4, 4);
  const std::vector<std::uint8_t> partial(10, 0);
  EXPECT_THROW((void)il.interleave(std::span<const std::uint8_t>(partial)), PreconditionError);
}

// ------------------------------------------------------ convolutional --

TEST(Convolutional, EncodeDecodeCleanChannel) {
  coding::ConvolutionalCode cc;
  Rng rng(29);
  const auto bits = rng.bits(200);
  const auto coded = cc.encode(bits);
  EXPECT_EQ(coded.size(), 2 * (bits.size() + 6));
  EXPECT_EQ(cc.decode(coded), bits);
}

TEST(Convolutional, CorrectsScatteredErrors) {
  coding::ConvolutionalCode cc;
  Rng rng(31);
  const auto bits = rng.bits(300);
  auto coded = cc.encode(bits);
  // Flip well-separated bits (inside the free-distance budget per span).
  for (std::size_t i = 10; i + 40 < coded.size(); i += 40) coded[i] ^= 1;
  EXPECT_EQ(cc.decode(coded), bits);
}

TEST(Convolutional, BerImprovesOverUncodedAtModerateNoise) {
  coding::ConvolutionalCode cc;
  Rng rng(37);
  const double p_flip = 0.02;
  std::size_t raw_errors = 0;
  std::size_t dec_errors = 0;
  std::size_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto bits = rng.bits(256);
    auto coded = cc.encode(bits);
    std::size_t flips = 0;
    for (auto& b : coded)
      if (rng.bernoulli(p_flip)) {
        b ^= 1;
        ++flips;
      }
    raw_errors += flips / 2;  // equivalent uncoded exposure
    const auto dec = cc.decode(coded);
    for (std::size_t i = 0; i < bits.size(); ++i) dec_errors += dec[i] != bits[i];
    total += bits.size();
  }
  EXPECT_LT(static_cast<double>(dec_errors) / total,
            0.25 * static_cast<double>(raw_errors) / total);
}

TEST(Convolutional, ParameterValidation) {
  EXPECT_THROW(coding::ConvolutionalCode(2, 07, 05), PreconditionError);
  EXPECT_THROW(coding::ConvolutionalCode(7, 0400, 0171), PreconditionError);  // no newest tap
  EXPECT_THROW(coding::ConvolutionalCode(3, 0777, 05), PreconditionError);    // too wide
}

}  // namespace
}  // namespace rt
