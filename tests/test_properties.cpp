// Parameterized property tests: invariants swept across configuration
// grids (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <tuple>

#include "coding/reed_solomon.h"
#include "common/rng.h"
#include "common/units.h"
#include "lcm/lc_cell.h"
#include "optics/link_budget.h"
#include "phy/constellation.h"
#include "phy/demodulator.h"
#include "phy/modulator.h"
#include "sim/channel.h"
#include "sim/link_sim.h"

namespace rt {
namespace {

// ---------------------------------------------------------------- PQAM --

class ConstellationProperty : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ConstellationProperty, MapUnmapIsIdentityOverAllWords) {
  const auto [bits, use_q] = GetParam();
  const phy::Constellation c(bits, use_q);
  const int n = c.bits_per_symbol();
  for (std::uint32_t word = 0; word < (1U << n); ++word) {
    std::vector<std::uint8_t> in(n);
    for (int b = 0; b < n; ++b) in[b] = (word >> b) & 1U;
    EXPECT_EQ(c.unmap(c.map(in)), in) << "word " << word;
  }
}

TEST_P(ConstellationProperty, AllPointsDistinctAndInUnitSquare) {
  const auto [bits, use_q] = GetParam();
  const phy::Constellation c(bits, use_q);
  const auto alphabet = c.alphabet();
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    const auto pi = c.point(alphabet[i]);
    EXPECT_GE(pi.real(), 0.0);
    EXPECT_LE(pi.real(), 1.0);
    EXPECT_GE(pi.imag(), 0.0);
    EXPECT_LE(pi.imag(), 1.0);
    for (std::size_t j = i + 1; j < alphabet.size(); ++j)
      EXPECT_GT(std::abs(pi - c.point(alphabet[j])), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ConstellationProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

// ------------------------------------------------------- Reed-Solomon --

class RsCodeProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsCodeProperty, CorrectsExactlyUpToDesignRadius) {
  const auto [n, k] = GetParam();
  coding::ReedSolomon rs(n, k);
  Rng rng(static_cast<std::uint64_t>(n * 1000 + k));
  const auto data = rng.bytes(static_cast<std::size_t>(k));
  const auto cw = rs.encode_block(data);
  const auto t = rs.correctable_errors();
  // Exactly t errors: always corrected.
  auto corrupted = cw;
  for (std::size_t e = 0; e < t; ++e) corrupted[e * 2] ^= static_cast<std::uint8_t>(e + 1);
  const auto fixed = rs.decode_block(corrupted);
  ASSERT_TRUE(fixed.has_value()) << "RS(" << n << "," << k << ")";
  EXPECT_EQ(*fixed, data);
}

INSTANTIATE_TEST_SUITE_P(CommonCodes, RsCodeProperty,
                         ::testing::Values(std::pair{15, 11}, std::pair{31, 23},
                                           std::pair{63, 39}, std::pair{255, 223},
                                           std::pair{255, 127}, std::pair{255, 251}));

// ------------------------------------------------------------ LC cell --

/// (tau_charge scale, drive pattern seed)
class LcCellProperty : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(LcCellProperty, StepIsSampleRateInvariantUnderRandomDrive) {
  const auto [tau_scale, seed] = GetParam();
  lcm::LcTimings t;
  t.tau_charge_s *= tau_scale;
  t.tau_relax_s *= tau_scale;
  lcm::LcCell coarse(t);
  lcm::LcCell fine(t);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int step = 0; step < 200; ++step) {
    const bool driven = rng.bernoulli();
    (void)coarse.step(driven, rt::ms(0.2));
    for (int i = 0; i < 20; ++i) (void)fine.step(driven, rt::ms(0.01));
    ASSERT_NEAR(coarse.state(), fine.state(), 1e-6);
    ASSERT_NEAR(coarse.memory(), fine.memory(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(TimingGrid, LcCellProperty,
                         ::testing::Values(std::pair{0.5, 1}, std::pair{1.0, 2},
                                           std::pair{2.0, 3}));

// ------------------------------------------------------- link budget --

class LinkBudgetProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinkBudgetProperty, MonotoneAndInvertible) {
  const auto lb = GetParam() == 0 ? optics::LinkBudget::narrow_beam()
                                  : optics::LinkBudget::wide_beam();
  double prev = 1e18;
  for (double d = 0.5; d <= 12.0; d += 0.5) {
    const double snr = lb.snr_db_at(d);
    EXPECT_LT(snr, prev);
    EXPECT_NEAR(lb.distance_at_snr_db(snr), d, 1e-9);
    prev = snr;
  }
}

INSTANTIATE_TEST_SUITE_P(BothPresets, LinkBudgetProperty, ::testing::Values(0, 1));

// --------------------------------------------- end-to-end PHY configs --

struct E2eConfig {
  int dsm_order;
  int bits_per_axis;
  double slot_ms;
  bool use_q;
};

class EndToEndProperty : public ::testing::TestWithParam<E2eConfig> {};

TEST_P(EndToEndProperty, NoiselessRoundTripIsExact) {
  const auto cfg = GetParam();
  phy::PhyParams p;
  p.dsm_order = cfg.dsm_order;
  p.bits_per_axis = cfg.bits_per_axis;
  p.slot_s = rt::ms(cfg.slot_ms);
  p.charge_s = rt::ms(0.5);
  p.use_q_channel = cfg.use_q;
  p.preamble_slots = 32;
  p.equalizer_branches = 8;

  const phy::Modulator mod(p);
  Rng rng(77);
  const auto bits = rng.bits(static_cast<std::size_t>(8 * p.bits_per_slot()));
  const auto pkt = mod.modulate(bits);

  sim::ChannelConfig chc;
  chc.pose.roll_rad = rt::deg_to_rad(15.0);
  sim::Channel channel(p, p.tag_config(), chc);
  const auto rx =
      channel.noiseless_source()(pkt.firings, pkt.duration_s + p.symbol_duration_s());

  const phy::Demodulator demod(p, sim::train_offline_model(p, p.tag_config()));
  phy::DemodOptions opts;
  opts.search_limit = 2 * p.samples_per_slot();
  const auto res = demod.demodulate(rx, pkt.layout.payload_slots, opts);
  ASSERT_TRUE(res.preamble_found);
  for (std::size_t i = 0; i < bits.size(); ++i) EXPECT_EQ(res.bits[i], bits[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, EndToEndProperty,
    ::testing::Values(E2eConfig{2, 1, 2.0, true},    // small L, wide slots
                      E2eConfig{4, 1, 1.0, true},    // unit-test default
                      E2eConfig{4, 2, 1.0, true},    // 16-PQAM
                      E2eConfig{8, 1, 0.5, true},    // paper 4 kbps
                      E2eConfig{8, 2, 0.5, true},    // paper 8 kbps
                      E2eConfig{4, 3, 1.0, true},    // 64-PQAM
                      E2eConfig{4, 2, 1.0, false},   // single-channel PAM
                      E2eConfig{16, 1, 0.25, true}   // 32 kbps timing, low order
                      ));

// ------------------------------------------------ preamble vs roll -----

class PreambleRollProperty : public ::testing::TestWithParam<double> {};

TEST_P(PreambleRollProperty, RotationEstimateMatchesPhysicalRoll) {
  const double roll_deg = GetParam();
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  const phy::PreambleProcessor pre(p);

  sim::ChannelConfig chc;
  chc.pose.roll_rad = rt::deg_to_rad(roll_deg);
  sim::Channel channel(p, p.tag_config(), chc);
  const auto rx = channel.noiseless_source()(
      phy::preamble_firings(p, 0), (p.preamble_slots + p.dsm_order) * p.slot_s);
  const auto det = pre.detect(rx);
  ASSERT_TRUE(det.found) << roll_deg;
  // a must rotate by -2 * roll (mod 2 pi).
  const double got = std::arg(det.a);
  EXPECT_NEAR(std::remainder(got + 2.0 * rt::deg_to_rad(roll_deg), 2.0 * rt::kPi), 0.0, 0.02)
      << roll_deg;
}

INSTANTIATE_TEST_SUITE_P(RollSweep, PreambleRollProperty,
                         ::testing::Values(0.0, 15.0, 45.0, 90.0, 135.0, 170.0));

}  // namespace
}  // namespace rt
