// Allocation-regression test for the packet pipeline.
//
// Replaces the global allocator with a counting shim and proves that after
// one warm-up packet the entire TX -> channel -> RX hot path
// (LinkSimulator::run_packet through a reused PacketWorkspace) performs
// ZERO heap allocations. This is the contract the workspace refactor
// exists to provide; any new allocation on the steady-state path fails
// this test. Lives in its own binary because the operator new/delete
// replacement is process-global.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/units.h"
#include "sim/coded_link.h"
#include "sim/link_sim.h"
#include "sim/packet_workspace.h"
#include "stream/sim_source.h"
#include "stream/streaming_receiver.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace rt::sim {
namespace {

phy::PhyParams fast_params() {
  phy::PhyParams p;
  p.dsm_order = 4;
  p.bits_per_axis = 1;
  p.slot_s = rt::ms(1.0);
  p.charge_s = rt::ms(0.5);
  p.preamble_slots = 32;
  p.equalizer_branches = 8;
  return p;
}

TEST(AllocationRegression, CounterObservesOrdinaryAllocations) {
  g_allocs.store(0);
  g_counting.store(true);
  {
    std::vector<int> v(100);
    v.push_back(1);
  }
  g_counting.store(false);
  EXPECT_GT(g_allocs.load(), 0u) << "the allocator shim is not active";
}

TEST(AllocationRegression, SteadyStatePacketPipelineIsAllocationFree) {
  // The default receiver shape: Q channel on, per-packet online training,
  // DFE with state merging, scrambled payload, AWGN at moderate SNR.
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 14.0;
  ch.noise_seed = 7;
  SimOptions so;
  so.seed = 42;
  so.offline_yaws_deg = {0.0};
  const LinkSimulator sim(p, p.tag_config(), ch, so);

  PacketWorkspace ws;
  // Warm-up: one pass over the packet indices the measured phase replays,
  // so every buffer has reached its steady-state capacity.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto out = sim.run_packet(i, 8, ws);
    ASSERT_TRUE(out.preamble_found) << "packet " << i << " must decode for full-path coverage";
  }

  g_allocs.store(0);
  g_counting.store(true);
  std::size_t errors = 0;
  bool all_found = true;
  bool estimates_finite = true;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto out = sim.run_packet(i, 8, ws);
    all_found = all_found && out.preamble_found;
    // The closed rate-adaptation loop reads this per packet; producing it
    // must cost no allocations and always be finite.
    estimates_finite = estimates_finite && std::isfinite(out.snr_estimate_db);
    errors += out.bit_errors;
  }
  g_counting.store(false);

  EXPECT_TRUE(all_found);
  EXPECT_TRUE(estimates_finite) << "per-packet SNR estimate must be finite";
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the steady-state packet pipeline allocated on the heap (" << g_allocs.load()
      << " allocations across 3 packets; total bit errors " << errors << ")";
}

TEST(AllocationRegression, SteadyStateCodedPacketPipelineIsAllocationFree) {
  // The coded frame path on top of the packet pipeline: whiten -> FEC ->
  // interleave -> TX -> channel -> RX -> deinterleave -> soft/hard decode
  // -> CRC, through the same reused PacketWorkspace. Covers both code
  // kinds and both decode modes so the Viterbi trellis, the RS scratch,
  // and the GMD erasure ladder all run under the counting allocator.
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 14.0;
  ch.noise_seed = 7;
  SimOptions so;
  so.seed = 42;
  so.offline_yaws_deg = {0.0};
  so.export_soft_bits = true;
  const LinkSimulator sim(p, p.tag_config(), ch, so);

  coding::CodedFrameConfig cc_cfg;
  cc_cfg.code = coding::CodeDescriptor::convolutional(7);
  coding::CodedFrameConfig rs_cfg;
  rs_cfg.code = coding::CodeDescriptor::reed_solomon(63, 47);
  const CodedLink cc(sim, cc_cfg);
  const CodedLink rs(sim, rs_cfg);

  // One workspace per frame shape (the bench's usage: each campaign owns
  // its workspace). Alternating coded sizes through a single workspace
  // would legitimately rebuild the layout-keyed caches every packet.
  PacketWorkspace cc_ws;
  PacketWorkspace rs_ws;  // soft and hard share one shape, hence one ws
  const auto run_once = [&](std::size_t& errors) {
    for (std::uint64_t i = 0; i < 2; ++i) {
      const auto a = cc.run_packet(i, 8, cc_ws, CodedLink::DecodeMode::kSoft);
      const auto b = rs.run_packet(i, 8, rs_ws, CodedLink::DecodeMode::kSoft);
      const auto c = rs.run_packet(i, 8, rs_ws, CodedLink::DecodeMode::kHard);
      ASSERT_TRUE(a.preamble_found && b.preamble_found && c.preamble_found)
          << "packet " << i << " must decode for full-path coverage";
      errors += a.info_bit_errors + b.info_bit_errors + c.info_bit_errors;
    }
  };

  // Warm-up replays the exact packet indices of the measured phase, so
  // the deterministic decode paths (GMD retries included) are identical.
  std::size_t warm_errors = 0;
  run_once(warm_errors);

  g_allocs.store(0);
  g_counting.store(true);
  std::size_t errors = 0;
  run_once(errors);
  g_counting.store(false);

  EXPECT_EQ(errors, warm_errors) << "replayed packets must be bit-identical";
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the steady-state coded packet pipeline allocated on the heap (" << g_allocs.load()
      << " allocations across 6 coded frames)";
}

TEST(AllocationRegression, SteadyStateStreamingReceiverIsAllocationFree) {
  const auto p = fast_params();
  ChannelConfig ch;
  ch.snr_override_db = 20.0;
  ch.noise_seed = 7;
  SimOptions so;
  so.seed = 42;
  so.offline_yaws_deg = {0.0};
  const LinkSimulator sim(p, p.tag_config(), ch, so);

  stream::StreamScenario sc;
  sc.packets = 3;
  sc.payload_bytes = 8;
  sc.gap = stream::StreamScenario::Gap::kNoise;
  const auto truth = stream::build_stream(sim, sc);

  stream::StreamOptions opts;
  opts.payload_slots = truth.payload_slots;
  stream::StreamingReceiver rx(sim.demodulator(), opts);
  struct CountSink final : stream::FrameSink {
    std::uint64_t frames = 0;
    void on_frame(const stream::StreamFrame&) override { ++frames; }
  } sink;
  const auto run_once = [&] {
    const std::span<const sig::Complex> all(truth.waveform.samples);
    for (std::size_t off = 0; off < all.size(); off += 777)
      rx.push_samples(all.subspan(off, std::min<std::size_t>(777, all.size() - off)), sink);
    rx.flush(sink);
  };

  // Warm-up stream: every scratch buffer (scan spans, decode window, the
  // inner packet-pipeline workspace) reaches steady-state capacity.
  run_once();
  ASSERT_EQ(sink.frames, 3u) << "warm-up stream must decode for full-path coverage";

  g_allocs.store(0);
  g_counting.store(true);
  run_once();
  g_counting.store(false);

  EXPECT_EQ(sink.frames, 6u);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "the steady-state streaming receiver allocated on the heap (" << g_allocs.load()
      << " allocations across one stream of 3 frames)";
}

}  // namespace
}  // namespace rt::sim
